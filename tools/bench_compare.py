#!/usr/bin/env python3
"""Compare and gate BENCH_*.json perf artifacts.

Two modes:

  diff BASELINE.json CURRENT.json [--threshold 0.10]
      Walks both JSON trees and flags numeric leaves that regressed by more
      than the threshold (default 10%). Direction is inferred from the key
      name: *_per_sec / speedup / stall_reduction are higher-is-better;
      *_ns* / *_ms* / *_us* / *_bytes / alloc* / ratio are lower-is-better;
      everything else is informational. Exits 1 on any regression.

  gate FILE.json [FILE.json ...]
      Checks the intra-file scaling gates this repo commits to:
        overhead:          ingest refs/s at 4 threads >= 2.5x serial,
                           slab ns/obs <= legacy ns/obs
        clustering_scale:  parallel speedup > 1.0 at the largest N
        multitenant:       fleet refs/s at 4 threads >= serial (warn-only)
        service_scale:     wire refs/s at 4 I/O threads >= 2x single-thread;
                           arena decode allocs/frame <= legacy (any host)
        hoard_fill:        selection identical across modes/threads (any host);
                           incremental fill <= 0.25x scratch at 1% touch
                           (any host); fill allocs <= legacy (any host);
                           parallel scratch fill >= 1.5x serial at 4 threads
      Multi-core gates apply ONLY when the producing host had >= 4 CPUs and
      the bench recorded "scaling_valid": true — a 1-CPU runner measures
      oversubscription, not speedup, and must not fail the build for it.
      Skipped gates are reported loudly and exit 0.

Counting-scale fields (counts, capacities, thread lists) and machine
metadata are never treated as regressions.
"""

import argparse
import json
import sys

# Keys whose values are configuration/metadata, never perf: comparing them
# across runs is meaningless or misleading.
META_KEYS = {
    "host_cpus", "seer_threads", "scaling_valid", "bench", "transport",
    "threads", "files", "references", "refs", "streams", "tenants",
    "refs_per_tenant", "total_refs", "queue_capacity", "encode_threads",
    "clusters", "touched", "segments", "shards", "batches", "barriers",
    "frames_received", "events_ingested", "parallel_folds", "fold_stripes",
    "max_shard_refs", "dirty_files", "files_rescored", "budget_bytes",
    "dirty_clusters", "reused_aggregates", "touched_files",
}

HIGHER_IS_BETTER = ("_per_sec", "speedup", "stall_reduction")
LOWER_IS_BETTER = ("_ns", "ns_", "_ms", "ms_", "_us", "us_", "_bytes",
                   "alloc", "ratio", "_sec", "high_water")


def direction(key):
    k = key.lower()
    for hint in HIGHER_IS_BETTER:
        if hint in k:
            return +1
    for hint in LOWER_IS_BETTER:
        if hint in k:
            return -1
    return 0


def walk(node, path=""):
    """Yields (path, key, numeric value) for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from walk(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            # Sweep rows are keyed by their thread count when present, so
            # baseline/current rows pair up even if row order changes.
            tag = None
            if isinstance(value, dict) and "threads" in value:
                tag = f"threads={value['threads']}"
            elif isinstance(value, dict) and "files" in value:
                tag = f"files={value['files']}"
            yield from walk(value, f"{path}[{tag if tag else i}]")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        key = path.rsplit(".", 1)[-1].split("[")[0]
        yield path, key, float(node)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")


def cmd_diff(args):
    base = load(args.baseline)
    cur = load(args.current)

    if base.get("host_cpus") != cur.get("host_cpus"):
        print(f"WARNING: host_cpus differ (baseline {base.get('host_cpus')}, "
              f"current {cur.get('host_cpus')}) — absolute numbers are not "
              "comparable across machines; treating the diff as informational.")
        args.threshold = float("inf")
    scaling_ok = bool(base.get("scaling_valid", True)) and bool(
        cur.get("scaling_valid", True))

    base_leaves = {p: v for p, _, v in walk(base)}
    regressions = []
    compared = 0
    for path, key, cur_val in walk(cur):
        if key in META_KEYS or path not in base_leaves:
            continue
        sign = direction(key)
        if sign == 0:
            continue
        if not scaling_ok and ("speedup" in key or
                               ("[threads=" in path and
                                "[threads=1]" not in path)):
            continue  # invalid sweep: multi-thread rows are noise; the
            # serial (threads=1) row is still a real measurement
        base_val = base_leaves[path]
        if base_val == 0:
            continue
        compared += 1
        # change > 0 means "got worse" in the metric's own direction.
        change = (base_val - cur_val) / base_val if sign > 0 \
            else (cur_val - base_val) / base_val
        marker = " " if change <= args.threshold else "R"
        if args.verbose or marker == "R":
            print(f"{marker} {path}: {base_val:.2f} -> {cur_val:.2f} "
                  f"({change * 100.0:+.1f}% worse)" if change > 0 else
                  f"{marker} {path}: {base_val:.2f} -> {cur_val:.2f} "
                  f"({-change * 100.0:+.1f}% better)")
        if change > args.threshold:
            regressions.append((path, base_val, cur_val, change))

    print(f"\ncompared {compared} metrics, {len(regressions)} regression(s) "
          f"beyond {args.threshold * 100.0:.0f}%")
    for path, base_val, cur_val, change in regressions:
        print(f"  REGRESSION {path}: {base_val:.2f} -> {cur_val:.2f} "
              f"({change * 100.0:+.1f}%)")
    return 1 if regressions else 0


def sweep_rate(rows, threads, key):
    for row in rows:
        if row.get("threads") == threads:
            return row.get(key, 0.0)
    return 0.0


def gate_overhead(doc, failures):
    host_cpus = doc.get("host_cpus", 1)
    ingest = doc.get("ingest", {})
    if host_cpus >= 4 and doc.get("scaling_valid", False):
        rows = ingest.get("threads", [])
        serial = sweep_rate(rows, 1, "refs_per_sec")
        wide = sweep_rate(rows, 4, "refs_per_sec")
        if serial > 0 and wide < 2.5 * serial:
            failures.append(
                f"overhead: ingest at 4 threads is {wide / serial:.2f}x serial "
                f"({wide:.0f} vs {serial:.0f} refs/s), gate requires >= 2.5x")
        else:
            print(f"  PASS ingest 4t scaling: {wide / serial:.2f}x serial"
                  if serial > 0 else "  SKIP ingest gate: no serial row")
        layout = ingest.get("neighbor_layout", {})
        legacy = layout.get("legacy_ns_per_obs", 0.0)
        slab = layout.get("slab_ns_per_obs", 0.0)
        if legacy > 0 and slab > legacy:
            failures.append(
                f"overhead: slab hot loop {slab:.1f} ns/obs is slower than "
                f"legacy {legacy:.1f} ns/obs")
        elif legacy > 0:
            print(f"  PASS slab layout: {slab:.1f} ns/obs <= legacy {legacy:.1f}")
    else:
        print(f"  SKIPPED overhead scaling gates: host_cpus={host_cpus} "
              f"(< 4) or scaling_valid={doc.get('scaling_valid')} — "
              "multi-thread numbers measure oversubscription on this host")


def gate_clustering(doc, failures):
    host_cpus = doc.get("host_cpus", 1)
    if host_cpus >= 4 and doc.get("scaling_valid", False):
        rows = doc.get("rows", [])
        if rows:
            top = max(rows, key=lambda r: r.get("files", 0))
            speedup = top.get("speedup", 0.0)
            if speedup <= 1.0:
                failures.append(
                    f"clustering_scale: parallel speedup {speedup:.2f}x at "
                    f"N={top.get('files')} — gate requires > 1.0")
            else:
                print(f"  PASS clustering speedup: {speedup:.2f}x at "
                      f"N={top.get('files')}")
    else:
        print(f"  SKIPPED clustering scaling gate: host_cpus={host_cpus} "
              f"(< 4) or scaling_valid={doc.get('scaling_valid')}")


def gate_multitenant(doc, failures):
    del failures  # warn-only: fleet scaling has no hard gate yet
    host_cpus = doc.get("host_cpus", 1)
    if host_cpus >= 4 and doc.get("scaling_valid", False):
        rows = doc.get("thread_sweep", [])
        serial = sweep_rate(rows, 1, "aggregate_refs_per_sec")
        wide = sweep_rate(rows, 4, "aggregate_refs_per_sec")
        if serial > 0 and wide < serial:
            print(f"  WARN multitenant: fleet at 4 threads ({wide:.0f} refs/s) "
                  f"is below serial ({serial:.0f} refs/s)")
        elif serial > 0:
            print(f"  PASS multitenant fleet scaling: {wide / serial:.2f}x serial")
    else:
        print(f"  SKIPPED multitenant scaling check: host_cpus={host_cpus} "
              f"(< 4) or scaling_valid={doc.get('scaling_valid')}")


def gate_service(doc, failures):
    host_cpus = doc.get("host_cpus", 1)
    if host_cpus >= 4 and doc.get("scaling_valid", False):
        rows = doc.get("io_sweep", [])
        serial = sweep_rate(rows, 1, "refs_per_sec")
        wide = sweep_rate(rows, 4, "refs_per_sec")
        if serial > 0 and wide < 2.0 * serial:
            failures.append(
                f"service_scale: wire ingest at 4 I/O threads is "
                f"{wide / serial:.2f}x single-thread ({wide:.0f} vs "
                f"{serial:.0f} refs/s), gate requires >= 2.0x")
        elif serial > 0:
            print(f"  PASS service 4 I/O-thread scaling: {wide / serial:.2f}x "
                  "single-thread")
        else:
            print("  SKIP service scaling gate: no single-thread row")
    else:
        print(f"  SKIPPED service scaling gate: host_cpus={host_cpus} "
              f"(< 4) or scaling_valid={doc.get('scaling_valid')} — "
              "multi-thread numbers measure oversubscription on this host")
    # The decode comparison is single-threaded and holds on any host.
    decode = doc.get("decode", {})
    legacy = decode.get("legacy_allocs_per_frame", 0.0)
    arena = decode.get("arena_allocs_per_frame", 0.0)
    if legacy > 0 and arena > legacy:
        failures.append(
            f"service_scale: arena decode allocates {arena:.1f}/frame, more "
            f"than the legacy path's {legacy:.1f}/frame")
    elif legacy > 0:
        print(f"  PASS arena decode allocs: {arena:.1f}/frame <= legacy "
              f"{legacy:.1f}/frame")


def gate_hoard_fill(doc, failures):
    # Host-independent gates first: ratios and identity within one process.
    if not doc.get("selection_identical", False):
        failures.append(
            "hoard_fill: selections diverged across legacy/scratch/"
            "incremental/thread-sweep fills — the fill plane must be "
            "bit-deterministic")
    else:
        print("  PASS selection identical across all modes and thread counts")
    ratio = doc.get("incremental_vs_scratch", 1.0)
    if ratio > 0.25:
        failures.append(
            f"hoard_fill: incremental fill after a 1% touch is {ratio:.3f}x "
            "the scratch fill — gate requires <= 0.25x")
    elif ratio > 0:
        print(f"  PASS incremental fill: {ratio:.3f}x scratch at 1% touch")
    legacy = doc.get("legacy", {}).get("allocs_per_fill", 0.0)
    current = doc.get("scratch", {}).get("allocs_per_fill", 0.0)
    if legacy > 0 and current > legacy:
        failures.append(
            f"hoard_fill: scratch fill allocates {current:.1f}/fill, more "
            f"than the legacy path's {legacy:.1f}/fill")
    elif legacy > 0:
        print(f"  PASS fill allocations: {current:.1f}/fill <= legacy "
              f"{legacy:.1f}/fill")
    # Parallel scratch scaling only means speedup on a wide-enough host.
    host_cpus = doc.get("host_cpus", 1)
    if host_cpus >= 4 and doc.get("scaling_valid", False):
        rows = doc.get("threads", [])
        serial = sweep_rate(rows, 1, "fills_per_sec")
        wide = sweep_rate(rows, 4, "fills_per_sec")
        if serial > 0 and wide < 1.5 * serial:
            failures.append(
                f"hoard_fill: scratch fill at 4 threads is "
                f"{wide / serial:.2f}x serial ({wide:.1f} vs {serial:.1f} "
                "fills/s), gate requires >= 1.5x")
        elif serial > 0:
            print(f"  PASS parallel scratch fill: {wide / serial:.2f}x serial")
    else:
        print(f"  SKIPPED hoard_fill scaling gate: host_cpus={host_cpus} "
              f"(< 4) or scaling_valid={doc.get('scaling_valid')} — "
              "multi-thread numbers measure oversubscription on this host")


GATES = {
    "overhead": gate_overhead,
    "clustering_scale": gate_clustering,
    "multitenant": gate_multitenant,
    "service_scale": gate_service,
    "hoard_fill": gate_hoard_fill,
}


def cmd_gate(args):
    failures = []
    for path in args.files:
        doc = load(path)
        bench = doc.get("bench", "")
        gate = GATES.get(bench)
        print(f"{path} (bench={bench or '?'}):")
        if gate is None:
            print("  no gates defined for this bench — skipping")
            continue
        gate(doc, failures)
    if failures:
        print(f"\n{len(failures)} gate failure(s):")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("\nall applicable gates passed (or were skipped on this host)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    diff = sub.add_parser("diff", help="compare two BENCH_*.json runs")
    diff.add_argument("baseline")
    diff.add_argument("current")
    diff.add_argument("--threshold", type=float, default=0.10,
                      help="fractional regression to fail on (default 0.10)")
    diff.add_argument("--verbose", action="store_true",
                      help="print every compared metric, not just regressions")
    diff.set_defaults(func=cmd_diff)

    gate = sub.add_parser("gate", help="check intra-file scaling gates")
    gate.add_argument("files", nargs="+")
    gate.set_defaults(func=cmd_gate)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
