// seerctl — command-line front end to the SEER library.
//
//   seerctl gen-trace --machine F --hours 2 --seed 7 -o trace.txt
//       Generate a synthetic reference trace for one of the paper's nine
//       machine profiles.
//
//   seerctl stats trace.txt
//       Per-operation and per-file statistics for a trace.
//
//   seerctl replay trace.txt [--params params.txt] [--control control.txt]
//           [--save db.seer]
//       Replay a trace through the observer and correlator (the paper's
//       "simulation mode"), print what was learned, optionally save the
//       database.
//
//   seerctl clusters db.seer [--min-size N]
//       Dump the project clusters of a saved database.
//
//   seerctl hoard db.seer --budget-mb 50
//       Compute hoard contents from a saved database.
//
//   seerctl check-config control.txt
//       Validate a system control file.
//
//   seerctl pipeline trace.txt
//       Replay a trace through the instrumented observer -> sink-chain ->
//       async-correlator data plane and print per-stage counters, latency
//       percentiles, and queue statistics.
#include <cstdio>
#include <optional>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/async_pipeline.h"
#include "src/core/correlator.h"
#include "src/core/hoard.h"
#include "src/core/params_io.h"
#include "src/core/reorganizer.h"
#include "src/observer/control_file.h"
#include "src/observer/observer.h"
#include "src/observer/sink_chain.h"
#include "src/process/syscall_tracer.h"
#include "src/sim/machine_sim.h"
#include "src/trace/binary_trace.h"
#include "src/trace/trace_io.h"
#include "src/workload/environment.h"
#include "src/workload/machine_profile.h"
#include "src/workload/user_model.h"

namespace seer {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  seerctl gen-trace [--machine A..I] [--hours H] [--seed S] [--binary] -o FILE\n"
               "  seerctl stats TRACE\n"
               "  seerctl replay TRACE [--params FILE] [--control FILE] [--save FILE]\n"
               "  seerctl clusters DB [--min-size N]\n"
               "  seerctl hoard DB --budget-mb MB\n"
               "  seerctl check-config FILE\n"
               "  seerctl suggest-reorg DB [--min-confidence F]\n"
               "  seerctl pipeline TRACE [--control FILE]\n");
  return 2;
}

// Minimal flag scanner: returns the value following `flag`, or nullptr.
const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return argv[i + 1];
    }
  }
  return nullptr;
}

// First non-flag positional argument after the subcommand.
const char* Positional(int argc, char** argv) {
  for (int i = 2; i < argc; ++i) {
    if (argv[i][0] == '-') {
      ++i;  // skip the flag's value
      continue;
    }
    return argv[i];
  }
  return nullptr;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "seerctl: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Applies `fn` to every event of a trace file, auto-detecting the text or
// binary format from the magic header.
template <typename Fn>
bool ForEachTraceEvent(const char* path, Fn&& fn, size_t* malformed = nullptr) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "seerctl: cannot open %s\n", path);
    return false;
  }
  char magic[8] = {};
  in.read(magic, 8);
  in.seekg(0);
  if (std::string_view(magic, 8) == "SEERBT1\n") {
    BinaryTraceReader reader(in);
    while (auto event = reader.Next()) {
      fn(*event);
    }
  } else {
    TraceReader reader(in);
    while (auto event = reader.Next()) {
      fn(*event);
    }
    if (malformed != nullptr) {
      *malformed = reader.malformed_lines();
    }
  }
  return true;
}

// --- gen-trace ----------------------------------------------------------------

class TraceFileSink : public TraceSink {
 public:
  TraceFileSink(std::ostream& out, bool binary) {
    if (binary) {
      binary_.emplace(out);
    } else {
      text_.emplace(out);
    }
  }
  void OnEvent(const TraceEvent& event) override {
    if (binary_.has_value()) {
      binary_->Write(event);
    } else {
      text_->Write(event);
    }
  }
  size_t count() const {
    return binary_.has_value() ? binary_->events_written() : text_->events_written();
  }

 private:
  std::optional<TraceWriter> text_;
  std::optional<BinaryTraceWriter> binary_;
};

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

int GenTrace(int argc, char** argv) {
  const char* machine = FlagValue(argc, argv, "--machine");
  const char* hours = FlagValue(argc, argv, "--hours");
  const char* seed = FlagValue(argc, argv, "--seed");
  const char* out_path = FlagValue(argc, argv, "-o");
  if (out_path == nullptr) {
    return Usage();
  }
  const MachineProfile profile = GetMachineProfile(machine != nullptr ? machine[0] : 'D');
  const double active_hours = hours != nullptr ? std::atof(hours) : 1.0;
  const uint64_t seed_value = seed != nullptr ? std::strtoull(seed, nullptr, 10) : 1;

  SimFilesystem fs;
  Rng rng(seed_value ^ profile.seed_base);
  const UserEnvironment env = BuildEnvironment(&fs, profile.env, &rng);
  ProcessTable processes;
  SimClock clock;
  SyscallTracer tracer(&fs, &processes, &clock);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "seerctl: cannot write %s\n", out_path);
    return 1;
  }
  TraceFileSink sink(out, HasFlag(argc, argv, "--binary"));
  tracer.AddSink(&sink);
  UserModel user(&tracer, &env, profile.user, seed_value);
  user.SeedHistory();
  user.RunActiveHours(active_hours);
  std::printf("wrote %zu events (%c profile, %.1f active hours, seed %llu) to %s\n",
              sink.count(), profile.name, active_hours,
              static_cast<unsigned long long>(seed_value), out_path);
  return 0;
}

// --- stats ---------------------------------------------------------------------

int Stats(int argc, char** argv) {
  const char* path = Positional(argc, argv);
  if (path == nullptr) {
    return Usage();
  }
  std::map<Op, size_t> by_op;
  std::map<OpStatus, size_t> by_status;
  std::map<std::string, size_t> by_file;
  std::map<Pid, size_t> by_pid;
  size_t total = 0;
  Time first = 0;
  Time last = 0;
  size_t malformed = 0;
  const bool opened = ForEachTraceEvent(path, [&](const TraceEvent& event) {
    ++total;
    ++by_op[event.op];
    ++by_status[event.status];
    ++by_pid[event.pid];
    if (!event.path.empty()) {
      ++by_file[event.path];
    }
    if (total == 1) {
      first = event.time;
    }
    last = event.time;
  }, &malformed);
  if (!opened) {
    return 1;
  }
  std::printf("%zu events over %.2f hours, %zu processes, %zu distinct files"
              " (%zu malformed lines)\n\n",
              total, static_cast<double>(last - first) / kMicrosPerHour, by_pid.size(),
              by_file.size(), malformed);
  std::printf("by operation:\n");
  for (const auto& [op, count] : by_op) {
    std::printf("  %-9s %8zu\n", std::string(OpName(op)).c_str(), count);
  }
  std::printf("by status:\n");
  for (const auto& [status, count] : by_status) {
    std::printf("  %-9s %8zu\n", std::string(OpStatusName(status)).c_str(), count);
  }
  std::printf("busiest files:\n");
  std::vector<std::pair<size_t, std::string>> busiest;
  for (const auto& [file, count] : by_file) {
    busiest.emplace_back(count, file);
  }
  std::sort(busiest.rbegin(), busiest.rend());
  for (size_t i = 0; i < busiest.size() && i < 10; ++i) {
    std::printf("  %6zu  %s\n", busiest[i].first, busiest[i].second.c_str());
  }
  return 0;
}

// --- replay ---------------------------------------------------------------------

int Replay(int argc, char** argv) {
  const char* path = Positional(argc, argv);
  if (path == nullptr) {
    return Usage();
  }

  SeerParams params;
  if (const char* params_path = FlagValue(argc, argv, "--params")) {
    std::string error;
    const auto parsed = ParseSeerParams(ReadFileOrDie(params_path), {}, &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "seerctl: %s: %s\n", params_path, error.c_str());
      return 1;
    }
    params = *parsed;
  }
  ObserverConfig observer_config;
  if (const char* control_path = FlagValue(argc, argv, "--control")) {
    std::string error;
    const auto parsed = ParseObserverControlFile(ReadFileOrDie(control_path), {}, &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "seerctl: %s: %s\n", control_path, error.c_str());
      return 1;
    }
    observer_config = *parsed;
  }

  Observer observer(observer_config, nullptr);
  Correlator correlator(params);
  observer.set_sink(&correlator);
  size_t events = 0;
  if (!ForEachTraceEvent(path, [&](const TraceEvent& event) {
        observer.OnEvent(event);
        ++events;
      })) {
    return 1;
  }
  std::printf("replayed %zu events: %llu references kept, %llu filtered\n", events,
              static_cast<unsigned long long>(observer.references_emitted()),
              static_cast<unsigned long long>(observer.references_filtered()));
  std::printf("%zu files tracked, %zu always-hoard, ~%zu KB database\n",
              correlator.files().size(), observer.always_hoard().size(),
              correlator.MemoryBytes() / 1024);
  const ClusterSet clusters = correlator.BuildClusters();
  size_t multi = 0;
  for (const Cluster& c : clusters.clusters) {
    if (c.members.size() > 1) {
      ++multi;
    }
  }
  std::printf("%zu clusters (%zu multi-file)\n", clusters.clusters.size(), multi);

  if (const char* save_path = FlagValue(argc, argv, "--save")) {
    std::ofstream out(save_path);
    if (!out) {
      std::fprintf(stderr, "seerctl: cannot write %s\n", save_path);
      return 1;
    }
    correlator.SaveTo(out);
    std::printf("database saved to %s\n", save_path);
  }
  return 0;
}

// --- clusters --------------------------------------------------------------------

std::unique_ptr<Correlator> LoadDbOrDie(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "seerctl: cannot open %s\n", path);
    std::exit(1);
  }
  std::string error;
  auto correlator = Correlator::LoadFrom(in, &error);
  if (correlator == nullptr) {
    std::fprintf(stderr, "seerctl: %s: %s\n", path, error.c_str());
    std::exit(1);
  }
  return correlator;
}

int Clusters(int argc, char** argv) {
  const char* path = Positional(argc, argv);
  if (path == nullptr) {
    return Usage();
  }
  const auto correlator = LoadDbOrDie(path);
  const char* min_size_arg = FlagValue(argc, argv, "--min-size");
  const size_t min_size = min_size_arg != nullptr ? std::strtoull(min_size_arg, nullptr, 10) : 2;

  const ClusterSet clusters = correlator->BuildClusters();
  size_t shown = 0;
  for (size_t i = 0; i < clusters.clusters.size(); ++i) {
    const Cluster& c = clusters.clusters[i];
    if (c.members.size() < min_size) {
      continue;
    }
    uint64_t priority = 0;
    for (const FileId id : c.members) {
      priority = std::max(priority, correlator->files().Get(id).last_ref_seq);
    }
    std::printf("cluster %zu (%zu files, activity %llu):\n", i, c.members.size(),
                static_cast<unsigned long long>(priority));
    for (const FileId id : c.members) {
      std::printf("  %s\n", std::string(correlator->files().PathOf(id)).c_str());
    }
    ++shown;
  }
  std::printf("%zu clusters with >= %zu members (of %zu total)\n", shown, min_size,
              clusters.clusters.size());
  return 0;
}

// --- hoard -----------------------------------------------------------------------

int Hoard(int argc, char** argv) {
  const char* path = Positional(argc, argv);
  const char* budget_arg = FlagValue(argc, argv, "--budget-mb");
  if (path == nullptr || budget_arg == nullptr) {
    return Usage();
  }
  const auto correlator = LoadDbOrDie(path);
  const double budget_mb = std::atof(budget_arg);

  HoardManager manager(static_cast<uint64_t>(budget_mb * 1024.0 * 1024.0));
  const ClusterSet clusters = correlator->BuildClusters();
  // Sizes are not stored in the database; fall back to the paper's
  // geometric distribution, deterministic per path.
  const auto size_of = [](PathId p) {
    return GeometricSizeForPath(std::string(GlobalPaths().PathOf(p)), 1);
  };
  const HoardSelection sel = manager.ChooseHoard(*correlator, clusters, {}, size_of);
  std::printf("# hoard: %.2f of %.2f MB, %zu projects (%zu skipped)\n",
              static_cast<double>(sel.bytes_used) / 1048576.0, budget_mb, sel.projects_hoarded,
              sel.projects_skipped);
  for (const auto& file : sel.PathStrings()) {
    std::printf("%s\n", file.c_str());
  }
  return 0;
}

// --- pipeline --------------------------------------------------------------------

// Replays a trace through the full instrumented data plane — observer ->
// sink chain -> async correlator — and prints the per-stage reference
// counters, the latency histogram, and the queue statistics. This is the
// observability surface for the Section 5.3 overhead claims.
int Pipeline(int argc, char** argv) {
  const char* path = Positional(argc, argv);
  if (path == nullptr) {
    return Usage();
  }
  ObserverConfig observer_config;
  if (const char* control_path = FlagValue(argc, argv, "--control")) {
    std::string error;
    const auto parsed = ParseObserverControlFile(ReadFileOrDie(control_path), {}, &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "seerctl: %s: %s\n", control_path, error.c_str());
      return 1;
    }
    observer_config = *parsed;
  }

  AsyncCorrelator correlator;
  SinkChain chain(&correlator);
  chain.Instrument("correlator");
  chain.Instrument("observer");
  Observer observer(observer_config, nullptr);
  observer.set_sink(chain.head());

  size_t events = 0;
  if (!ForEachTraceEvent(path, [&](const TraceEvent& event) {
        observer.OnEvent(event);
        ++events;
      })) {
    return 1;
  }
  correlator.Drain();
  std::printf("replayed %zu events (%llu references kept, %llu filtered)\n\n", events,
              static_cast<unsigned long long>(observer.references_emitted()),
              static_cast<unsigned long long>(observer.references_filtered()));
  std::printf("%s", chain.FormatMetrics().c_str());
  std::printf("\nqueue: %zu enqueued, %zu processed, depth %zu, high-water %zu of %zu\n",
              correlator.enqueued(), correlator.processed(), correlator.queue_depth(),
              correlator.high_watermark(), correlator.queue_capacity());
  std::printf("interned paths: %zu, files tracked: %zu\n", GlobalPaths().size(),
              correlator.KnownFiles());
  return 0;
}

// --- suggest-reorg ----------------------------------------------------------------

int SuggestReorg(int argc, char** argv) {
  const char* path = Positional(argc, argv);
  if (path == nullptr) {
    return Usage();
  }
  const auto correlator = LoadDbOrDie(path);
  ReorganizerConfig config;
  if (const char* min_conf = FlagValue(argc, argv, "--min-confidence")) {
    config.min_confidence = std::atof(min_conf);
  }
  const auto suggestions =
      SuggestReorganization(*correlator, correlator->BuildClusters(), config);
  for (const auto& s : suggestions) {
    std::printf("%.0f%%  %-40s ->  %s/   (cluster of %zu)\n", s.confidence * 100.0,
                s.path.c_str(), s.to_dir.c_str(), s.cluster_size);
  }
  std::printf("# %zu suggestions\n", suggestions.size());
  return 0;
}

// --- check-config ---------------------------------------------------------------

int CheckConfig(int argc, char** argv) {
  const char* path = Positional(argc, argv);
  if (path == nullptr) {
    return Usage();
  }
  std::string error;
  const auto config = ParseObserverControlFile(ReadFileOrDie(path), {}, &error);
  if (!config.has_value()) {
    std::fprintf(stderr, "seerctl: %s: %s\n", path, error.c_str());
    return 1;
  }
  std::printf("%s: OK\n", path);
  std::printf("%s", FormatObserverControlFile(*config).c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "gen-trace") {
    return GenTrace(argc, argv);
  }
  if (command == "stats") {
    return Stats(argc, argv);
  }
  if (command == "replay") {
    return Replay(argc, argv);
  }
  if (command == "clusters") {
    return Clusters(argc, argv);
  }
  if (command == "hoard") {
    return Hoard(argc, argv);
  }
  if (command == "check-config") {
    return CheckConfig(argc, argv);
  }
  if (command == "suggest-reorg") {
    return SuggestReorg(argc, argv);
  }
  if (command == "pipeline") {
    return Pipeline(argc, argv);
  }
  return Usage();
}

}  // namespace
}  // namespace seer

int main(int argc, char** argv) { return seer::Main(argc, argv); }
