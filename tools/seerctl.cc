// seerctl — command-line front end to the SEER library.
//
// Commands are dispatched through a small registry; `seerctl help` lists
// them and `seerctl help CMD` (or `seerctl CMD --help`) prints the
// per-command reference. Highlights:
//
//   seerctl gen-trace --machine F --hours 2 --seed 7 -o trace.txt
//       Generate a synthetic reference trace for one of the paper's nine
//       machine profiles.
//
//   seerctl replay trace.txt [--params params.txt] [--save db.seer]
//       Replay a trace through the observer and correlator (the paper's
//       "simulation mode"), print what was learned, optionally save the
//       text database.
//
//   seerctl db {save,load,verify,compact,info} DIR ...
//       Operate on a crash-safe snapshot+WAL store directory (see
//       src/core/snapshot_store.h): build one from a trace or a text
//       database, dump one back to text, check its integrity, compact its
//       generations, or describe its contents.
#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/async_pipeline.h"
#include "src/core/correlator.h"
#include "src/core/hoard.h"
#include "src/core/params_io.h"
#include "src/core/reorganizer.h"
#include "src/core/snapshot_codec.h"
#include "src/core/snapshot_store.h"
#include "src/observer/control_file.h"
#include "src/observer/observer.h"
#include "src/observer/sink_chain.h"
#include "src/process/syscall_tracer.h"
#include "src/server/client.h"
#include "src/server/service.h"
#include "src/server/tenant_router.h"
#include "src/sim/machine_sim.h"
#include "src/trace/binary_trace.h"
#include "src/trace/trace_io.h"
#include "src/util/fs.h"
#include "src/util/thread_pool.h"
#include "src/workload/environment.h"
#include "src/workload/machine_profile.h"
#include "src/workload/user_model.h"

namespace seer {
namespace {

// --- subcommand registry -----------------------------------------------------

// A registered subcommand. `run` receives the index of the first argument
// after the command name(s), so nested registries (`seerctl db save`)
// reuse the same shape one level down.
struct Subcommand {
  const char* name;
  const char* synopsis;  // one line, shown by the global usage
  const char* help;      // full reference, shown by `help CMD` / `--help`
  int (*run)(int argc, char** argv, int start);
  // True when `run` is itself a registry: a trailing --help then belongs
  // to the nested sub-command (`seerctl db save --help`), so dispatch must
  // not intercept it here.
  bool has_subcommands = false;
};

int UsageFor(const char* program, const std::vector<Subcommand>& commands) {
  std::fprintf(stderr, "usage:\n");
  for (const Subcommand& command : commands) {
    std::fprintf(stderr, "  %s %s\n", program, command.synopsis);
  }
  std::fprintf(stderr, "\nrun `%s help COMMAND` for details on one command\n", program);
  return 2;
}

int RunRegistry(const char* program, const std::vector<Subcommand>& commands, int argc,
                char** argv, int start) {
  if (start >= argc) {
    return UsageFor(program, commands);
  }
  std::string name = argv[start];
  char** help_target = nullptr;
  if (name == "help" || name == "--help" || name == "-h") {
    if (start + 1 >= argc) {
      return UsageFor(program, commands);
    }
    name = argv[start + 1];
    help_target = argv + start + 1;
  }
  for (const Subcommand& command : commands) {
    if (name != command.name) {
      continue;
    }
    bool want_help = help_target != nullptr;
    for (int i = start + 1; i < argc && !want_help && !command.has_subcommands; ++i) {
      want_help = std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0;
    }
    if (want_help) {
      std::printf("usage: %s %s\n\n%s", program, command.synopsis, command.help);
      return 0;
    }
    return command.run(argc, argv, start + 1);
  }
  std::fprintf(stderr, "%s: unknown command '%s'\n\n", program, name.c_str());
  return UsageFor(program, commands);
}

// --- argument scanning -------------------------------------------------------

// Returns the value following `flag`, or nullptr.
const char* FlagValue(int argc, char** argv, int start, const char* flag) {
  for (int i = start; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return argv[i + 1];
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, int start, const char* flag) {
  for (int i = start; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

// Flags that take no value, for positional scanning. A flag spelled
// --name=value carries its value inline and is also bare.
bool IsBareFlag(const char* arg) {
  return std::strcmp(arg, "--binary") == 0 || std::strcmp(arg, "--stats") == 0 ||
         std::strcmp(arg, "--deep") == 0 || std::strcmp(arg, "--help") == 0 ||
         std::strcmp(arg, "-h") == 0 || std::strchr(arg, '=') != nullptr;
}

// First non-flag positional argument at or after `start`.
const char* Positional(int argc, char** argv, int start) {
  for (int i = start; i < argc; ++i) {
    if (argv[i][0] == '-') {
      if (!IsBareFlag(argv[i])) {
        ++i;  // skip the flag's value
      }
      continue;
    }
    return argv[i];
  }
  return nullptr;
}

// The `index`-th (0-based) non-flag positional at or after `start`.
const char* PositionalAt(int argc, char** argv, int start, int index) {
  int seen = 0;
  for (int i = start; i < argc; ++i) {
    if (argv[i][0] == '-') {
      if (!IsBareFlag(argv[i])) {
        ++i;  // skip the flag's value
      }
      continue;
    }
    if (seen++ == index) {
      return argv[i];
    }
  }
  return nullptr;
}

// Validated value of --threads K / --threads=K at or after `start`; 0 when
// the flag is absent. An invalid count is fatal: silently running at the
// wrong width would change every parallel phase's sizing.
int ThreadsFlagOrDie(int argc, char** argv, int start) {
  const char* value = nullptr;
  for (int i = start; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      value = argv[i] + 10;
    }
  }
  if (const char* v = FlagValue(argc, argv, start, "--threads")) {
    value = v;
  }
  if (value == nullptr) {
    return 0;
  }
  const StatusOr<int> threads = ParseThreadCount(value);
  if (!threads.ok()) {
    std::fprintf(stderr, "seerctl: --threads: %s\n", threads.status().message().c_str());
    std::exit(2);
  }
  return *threads;
}

// Validated value of --io-threads K / --io-threads=K; 0 when absent
// (serve then sizes the I/O plane with DefaultThreadCount()).
int IoThreadsFlagOrDie(int argc, char** argv, int start) {
  const char* value = nullptr;
  for (int i = start; i < argc; ++i) {
    if (std::strncmp(argv[i], "--io-threads=", 13) == 0) {
      value = argv[i] + 13;
    }
  }
  if (const char* v = FlagValue(argc, argv, start, "--io-threads")) {
    value = v;
  }
  if (value == nullptr) {
    return 0;
  }
  const StatusOr<int> threads = ParseThreadCount(value);
  if (!threads.ok()) {
    std::fprintf(stderr, "seerctl: --io-threads: %s\n", threads.status().message().c_str());
    std::exit(2);
  }
  return *threads;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "seerctl: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

SeerParams ParamsFromFlagOrDie(int argc, char** argv, int start) {
  const char* params_path = FlagValue(argc, argv, start, "--params");
  if (params_path == nullptr) {
    return {};
  }
  const auto parsed = ParseSeerParams(ReadFileOrDie(params_path));
  if (!parsed.ok()) {
    std::fprintf(stderr, "seerctl: %s: %s\n", params_path, parsed.status().message().c_str());
    std::exit(1);
  }
  return *parsed;
}

ObserverConfig ControlFromFlagOrDie(int argc, char** argv, int start) {
  const char* control_path = FlagValue(argc, argv, start, "--control");
  if (control_path == nullptr) {
    return {};
  }
  const auto parsed = ParseObserverControlFile(ReadFileOrDie(control_path));
  if (!parsed.ok()) {
    std::fprintf(stderr, "seerctl: %s: %s\n", control_path, parsed.status().message().c_str());
    std::exit(1);
  }
  return *parsed;
}

// Applies `fn` to every event of a trace file, auto-detecting the text or
// binary format from the magic header.
template <typename Fn>
bool ForEachTraceEvent(const char* path, Fn&& fn, size_t* malformed = nullptr) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "seerctl: cannot open %s\n", path);
    return false;
  }
  char magic[8] = {};
  in.read(magic, 8);
  in.seekg(0);
  if (std::string_view(magic, 8) == "SEERBT1\n") {
    BinaryTraceReader reader(in);
    for (;;) {
      auto event = reader.Next();
      if (!event.ok()) {
        // A torn tail is what a crash-interrupted trace looks like: warn
        // and keep what decoded, mirroring WAL torn-tail recovery.
        std::fprintf(stderr, "seerctl: %s: %s (kept %zu events)\n", path,
                     event.status().ToString().c_str(), reader.events_read());
        break;
      }
      if (!event->has_value()) {
        break;
      }
      fn(**event);
    }
  } else {
    TraceReader reader(in);
    for (;;) {
      auto event = reader.Next();
      if (!event.ok()) {
        continue;  // malformed line: counted by the reader, keep going
      }
      if (!event->has_value()) {
        break;
      }
      fn(**event);
    }
    if (malformed != nullptr) {
      *malformed = reader.malformed_lines();
    }
  }
  return true;
}

// --- gen-trace ----------------------------------------------------------------

class TraceFileSink : public TraceSink {
 public:
  TraceFileSink(std::ostream& out, bool binary) {
    if (binary) {
      binary_.emplace(out);
    } else {
      text_.emplace(out);
    }
  }
  void OnEvent(const TraceEvent& event) override {
    if (binary_.has_value()) {
      binary_->Write(event);
    } else {
      text_->Write(event);
    }
  }
  size_t count() const {
    return binary_.has_value() ? binary_->events_written() : text_->events_written();
  }

 private:
  std::optional<TraceWriter> text_;
  std::optional<BinaryTraceWriter> binary_;
};

int GenTrace(int argc, char** argv, int start) {
  const char* machine = FlagValue(argc, argv, start, "--machine");
  const char* hours = FlagValue(argc, argv, start, "--hours");
  const char* seed = FlagValue(argc, argv, start, "--seed");
  const char* out_path = FlagValue(argc, argv, start, "-o");
  if (out_path == nullptr) {
    std::fprintf(stderr, "seerctl: gen-trace requires -o FILE\n");
    return 2;
  }
  const MachineProfile profile = GetMachineProfile(machine != nullptr ? machine[0] : 'D');
  const double active_hours = hours != nullptr ? std::atof(hours) : 1.0;
  const uint64_t seed_value = seed != nullptr ? std::strtoull(seed, nullptr, 10) : 1;

  SimFilesystem fs;
  Rng rng(seed_value ^ profile.seed_base);
  const UserEnvironment env = BuildEnvironment(&fs, profile.env, &rng);
  ProcessTable processes;
  SimClock clock;
  SyscallTracer tracer(&fs, &processes, &clock);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "seerctl: cannot write %s\n", out_path);
    return 1;
  }
  TraceFileSink sink(out, HasFlag(argc, argv, start, "--binary"));
  tracer.AddSink(&sink);
  UserModel user(&tracer, &env, profile.user, seed_value);
  user.SeedHistory();
  user.RunActiveHours(active_hours);
  std::printf("wrote %zu events (%c profile, %.1f active hours, seed %llu) to %s\n",
              sink.count(), profile.name, active_hours,
              static_cast<unsigned long long>(seed_value), out_path);
  return 0;
}

// --- stats ---------------------------------------------------------------------

int Stats(int argc, char** argv, int start) {
  const char* path = Positional(argc, argv, start);
  if (path == nullptr) {
    std::fprintf(stderr, "seerctl: stats requires a TRACE argument\n");
    return 2;
  }
  std::map<Op, size_t> by_op;
  std::map<OpStatus, size_t> by_status;
  std::map<std::string, size_t> by_file;
  std::map<Pid, size_t> by_pid;
  size_t total = 0;
  Time first = 0;
  Time last = 0;
  size_t malformed = 0;
  const bool opened = ForEachTraceEvent(path, [&](const TraceEvent& event) {
    ++total;
    ++by_op[event.op];
    ++by_status[event.status];
    ++by_pid[event.pid];
    if (!event.path.empty()) {
      ++by_file[event.path];
    }
    if (total == 1) {
      first = event.time;
    }
    last = event.time;
  }, &malformed);
  if (!opened) {
    return 1;
  }
  std::printf("%zu events over %.2f hours, %zu processes, %zu distinct files"
              " (%zu malformed lines)\n\n",
              total, static_cast<double>(last - first) / kMicrosPerHour, by_pid.size(),
              by_file.size(), malformed);
  std::printf("by operation:\n");
  for (const auto& [op, count] : by_op) {
    std::printf("  %-9s %8zu\n", std::string(OpName(op)).c_str(), count);
  }
  std::printf("by status:\n");
  for (const auto& [status, count] : by_status) {
    std::printf("  %-9s %8zu\n", std::string(OpStatusName(status)).c_str(), count);
  }
  std::printf("busiest files:\n");
  std::vector<std::pair<size_t, std::string>> busiest;
  for (const auto& [file, count] : by_file) {
    busiest.emplace_back(count, file);
  }
  std::sort(busiest.rbegin(), busiest.rend());
  for (size_t i = 0; i < busiest.size() && i < 10; ++i) {
    std::printf("  %6zu  %s\n", busiest[i].first, busiest[i].second.c_str());
  }
  return 0;
}

// --- replay ---------------------------------------------------------------------

// Replays a trace file into a fresh observer + correlator pair.
bool ReplayTraceInto(const char* path, const ObserverConfig& observer_config,
                     Correlator* correlator, size_t* events_out) {
  Observer observer(observer_config, nullptr);
  observer.set_sink(correlator);
  size_t events = 0;
  if (!ForEachTraceEvent(path, [&](const TraceEvent& event) {
        observer.OnEvent(event);
        ++events;
      })) {
    return false;
  }
  if (events_out != nullptr) {
    *events_out = events;
  }
  return true;
}

int Replay(int argc, char** argv, int start) {
  const char* path = Positional(argc, argv, start);
  if (path == nullptr) {
    std::fprintf(stderr, "seerctl: replay requires a TRACE argument\n");
    return 2;
  }

  const SeerParams params = ParamsFromFlagOrDie(argc, argv, start);
  const ObserverConfig observer_config = ControlFromFlagOrDie(argc, argv, start);

  const int threads = ThreadsFlagOrDie(argc, argv, start);

  Observer observer(observer_config, nullptr);
  Correlator correlator(params);
  if (threads > 0) {
    correlator.SetIngestThreads(threads);
  }
  // Replay through the batching sink: distance measurement for each batch
  // is sharded across process streams and measured in parallel, and the
  // learned state is bit-identical to serial delivery at any thread count.
  BatchingSink batching(&correlator);
  observer.set_sink(&batching);
  size_t events = 0;
  const auto replay_start = std::chrono::steady_clock::now();
  if (!ForEachTraceEvent(path, [&](const TraceEvent& event) {
        observer.OnEvent(event);
        ++events;
      })) {
    return 1;
  }
  batching.Flush();
  const double replay_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - replay_start)
          .count();
  std::printf("replayed %zu events: %llu references kept, %llu filtered\n", events,
              static_cast<unsigned long long>(observer.references_emitted()),
              static_cast<unsigned long long>(observer.references_filtered()));
  std::printf("%zu files tracked, %zu always-hoard, ~%zu KB database\n",
              correlator.files().size(), observer.always_hoard().size(),
              correlator.MemoryBytes() / 1024);
  const ClusterSet clusters = correlator.BuildClusters();
  size_t multi = 0;
  for (const Cluster& c : clusters.clusters) {
    if (c.members.size() > 1) {
      ++multi;
    }
  }
  std::printf("%zu clusters (%zu multi-file)\n", clusters.clusters.size(), multi);

  if (HasFlag(argc, argv, start, "--stats")) {
    const IngestStats& is = correlator.ingest_stats();
    const double secs = replay_ms / 1000.0;
    std::printf("ingest: %d thread%s, %.2f ms", correlator.ingest_threads(),
                correlator.ingest_threads() == 1 ? "" : "s", replay_ms);
    if (secs > 0.0) {
      std::printf(" (%.0f refs/sec)", static_cast<double>(is.refs) / secs);
    }
    std::printf("\n");
    std::printf("  batches:        %llu\n", static_cast<unsigned long long>(is.batches));
    std::printf("  segments:       %llu\n", static_cast<unsigned long long>(is.segments));
    std::printf("  shards:         %llu (%.1f per segment)\n",
                static_cast<unsigned long long>(is.shards),
                is.segments > 0 ? static_cast<double>(is.shards) / is.segments : 0.0);
    std::printf("  barriers:       %llu\n", static_cast<unsigned long long>(is.barriers));
    std::printf("  max shard refs: %llu\n", static_cast<unsigned long long>(is.max_shard_refs));
    // Phase split: measure (parallel per-stream distance scans) vs fold
    // (stripe-sharded slab accumulation). The remainder of the wall time is
    // trace parsing and sink plumbing outside the correlator.
    const double wall_us = replay_ms * 1000.0;
    const double measure_ms = static_cast<double>(is.measure_us) / 1000.0;
    const double fold_ms = static_cast<double>(is.fold_us) / 1000.0;
    std::printf("  measure:        %.2f ms (%.0f%% of wall)\n", measure_ms,
                wall_us > 0.0 ? 100.0 * static_cast<double>(is.measure_us) / wall_us : 0.0);
    std::printf("  fold:           %.2f ms (%.0f%% of wall)\n", fold_ms,
                wall_us > 0.0 ? 100.0 * static_cast<double>(is.fold_us) / wall_us : 0.0);
    std::printf("  folds:          %llu sharded, %llu serial (%llu stripe tasks)\n",
                static_cast<unsigned long long>(is.parallel_folds),
                static_cast<unsigned long long>(is.serial_folds),
                static_cast<unsigned long long>(is.fold_stripes));
  }

  if (const char* save_path = FlagValue(argc, argv, start, "--save")) {
    std::ofstream out(save_path);
    if (!out) {
      std::fprintf(stderr, "seerctl: cannot write %s\n", save_path);
      return 1;
    }
    correlator.SaveTo(out);
    std::printf("database saved to %s\n", save_path);
  }
  return 0;
}

// --- clusters --------------------------------------------------------------------

std::unique_ptr<Correlator> LoadDbOrDie(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "seerctl: cannot open %s\n", path);
    std::exit(1);
  }
  auto correlator = Correlator::LoadFrom(in);
  if (!correlator.ok()) {
    std::fprintf(stderr, "seerctl: %s: %s\n", path, correlator.status().message().c_str());
    std::exit(1);
  }
  return *std::move(correlator);
}

int Clusters(int argc, char** argv, int start) {
  const char* path = Positional(argc, argv, start);
  if (path == nullptr) {
    std::fprintf(stderr, "seerctl: clusters requires a DB argument\n");
    return 2;
  }
  const auto correlator = LoadDbOrDie(path);
  const char* min_size_arg = FlagValue(argc, argv, start, "--min-size");
  const size_t min_size = min_size_arg != nullptr ? std::strtoull(min_size_arg, nullptr, 10) : 2;

  const ClusterSet clusters = correlator->BuildClusters();
  size_t shown = 0;
  for (size_t i = 0; i < clusters.clusters.size(); ++i) {
    const Cluster& c = clusters.clusters[i];
    if (c.members.size() < min_size) {
      continue;
    }
    uint64_t priority = 0;
    for (const FileId id : c.members) {
      priority = std::max(priority, correlator->files().Get(id).last_ref_seq);
    }
    std::printf("cluster %zu (%zu files, activity %llu):\n", i, c.members.size(),
                static_cast<unsigned long long>(priority));
    for (const FileId id : c.members) {
      std::printf("  %s\n", std::string(correlator->files().PathOf(id)).c_str());
    }
    ++shown;
  }
  std::printf("%zu clusters with >= %zu members (of %zu total)\n", shown, min_size,
              clusters.clusters.size());
  return 0;
}

// --- cluster ---------------------------------------------------------------------

int ClusterStats(int argc, char** argv, int start) {
  const char* path = Positional(argc, argv, start);
  if (path == nullptr) {
    std::fprintf(stderr, "seerctl: cluster requires a DB argument\n");
    return 2;
  }
  auto correlator = LoadDbOrDie(path);

  const int threads = ThreadsFlagOrDie(argc, argv, start);
  if (threads > 0) {
    correlator->SetClusterThreads(threads);
  }

  const ClusterSet clusters = correlator->BuildClusters();
  const ClusterBuildStats& stats = correlator->last_cluster_stats();
  size_t multi = 0;
  for (const Cluster& c : clusters.clusters) {
    if (c.members.size() > 1) {
      ++multi;
    }
  }
  std::printf("%zu clusters (%zu multi-file) from %zu candidates in %.2f ms on %d thread%s\n",
              clusters.clusters.size(), multi, stats.candidates, stats.build_ms, stats.threads,
              stats.threads == 1 ? "" : "s");
  if (HasFlag(argc, argv, start, "--stats")) {
    std::printf("  build mode:     %s\n", stats.incremental ? "incremental" : "full");
    std::printf("  dirty files:    %zu\n", stats.dirty_files);
    std::printf("  files rescored: %zu\n", stats.files_rescored);
    std::printf("  edges scored:   %zu\n", stats.edges_scored);
    const auto pct = [&](double ms) {
      return stats.build_ms > 0.0 ? 100.0 * ms / stats.build_ms : 0.0;
    };
    std::printf("  pack:           %.2f ms (%.0f%% of build)\n", stats.pack_ms,
                pct(stats.pack_ms));
    std::printf("  plan:           %.2f ms (%.0f%% of build)\n", stats.plan_ms,
                pct(stats.plan_ms));
    std::printf("  score:          %.2f ms (%.0f%% of build)\n", stats.score_ms,
                pct(stats.score_ms));
    std::printf("  merge:          %.2f ms (%.0f%% of build)\n", stats.merge_ms,
                pct(stats.merge_ms));
  }
  return 0;
}

// --- hoard -----------------------------------------------------------------------

int Hoard(int argc, char** argv, int start) {
  const char* path = Positional(argc, argv, start);
  const char* budget_arg = FlagValue(argc, argv, start, "--budget-mb");
  if (path == nullptr || budget_arg == nullptr) {
    std::fprintf(stderr, "seerctl: hoard requires DB and --budget-mb MB\n");
    return 2;
  }
  const auto correlator = LoadDbOrDie(path);
  const double budget_mb = std::atof(budget_arg);

  HoardManager manager(static_cast<uint64_t>(budget_mb * 1024.0 * 1024.0));
  const ClusterSet clusters = correlator->BuildClusters();
  // Sizes are not stored in the database; fall back to the paper's
  // geometric distribution, deterministic per path.
  const auto size_of = [](PathId p) {
    return GeometricSizeForPath(std::string(GlobalPaths().PathOf(p)), 1);
  };
  const HoardSelection sel = manager.ChooseHoard(*correlator, clusters, {}, size_of);
  std::printf("# hoard: %.2f of %.2f MB, %zu projects (%zu skipped)\n",
              static_cast<double>(sel.bytes_used) / 1048576.0, budget_mb, sel.projects_hoarded,
              sel.projects_skipped);
  if (HasFlag(argc, argv, start, "--stats")) {
    const HoardFillStats& stats = manager.last_fill_stats();
    std::printf("# fill: %.2f ms on %d thread%s\n", stats.fill_ms, stats.threads,
                stats.threads == 1 ? "" : "s");
    std::printf("#   fill mode:      %s\n", stats.incremental ? "incremental" : "scratch");
    std::printf("#   clusters:       %zu\n", stats.clusters);
    std::printf("#   reused aggs:    %zu\n", stats.reused_aggregates);
    std::printf("#   dirty clusters: %zu\n", stats.dirty_clusters);
    std::printf("#   touched files:  %zu\n", stats.touched_files);
    std::printf("#   sizes resolved: %zu\n", stats.sizes_resolved);
    const auto pct = [&](double ms) {
      return stats.fill_ms > 0.0 ? 100.0 * ms / stats.fill_ms : 0.0;
    };
    std::printf("#   aggregate:      %.2f ms (%.0f%% of fill)\n", stats.agg_ms,
                pct(stats.agg_ms));
    std::printf("#   rank:           %.2f ms (%.0f%% of fill)\n", stats.rank_ms,
                pct(stats.rank_ms));
    std::printf("#   select:         %.2f ms (%.0f%% of fill)\n", stats.select_ms,
                pct(stats.select_ms));
  }
  for (const auto& file : sel.PathStrings()) {
    std::printf("%s\n", file.c_str());
  }
  return 0;
}

// --- pipeline --------------------------------------------------------------------

// Replays a trace through the full instrumented data plane — observer ->
// sink chain -> async correlator — and prints the per-stage reference
// counters, the latency histogram, and the queue statistics. This is the
// observability surface for the Section 5.3 overhead claims.
int Pipeline(int argc, char** argv, int start) {
  const char* path = Positional(argc, argv, start);
  if (path == nullptr) {
    std::fprintf(stderr, "seerctl: pipeline requires a TRACE argument\n");
    return 2;
  }
  const ObserverConfig observer_config = ControlFromFlagOrDie(argc, argv, start);

  AsyncCorrelator correlator;
  SinkChain chain(&correlator);
  chain.Instrument("correlator");
  chain.Instrument("observer");
  Observer observer(observer_config, nullptr);
  observer.set_sink(chain.head());

  size_t events = 0;
  if (!ForEachTraceEvent(path, [&](const TraceEvent& event) {
        observer.OnEvent(event);
        ++events;
      })) {
    return 1;
  }
  correlator.Drain();
  std::printf("replayed %zu events (%llu references kept, %llu filtered)\n\n", events,
              static_cast<unsigned long long>(observer.references_emitted()),
              static_cast<unsigned long long>(observer.references_filtered()));
  std::printf("%s", chain.FormatMetrics().c_str());
  std::printf("\nqueue: %zu enqueued, %zu processed, depth %zu, high-water %zu of %zu\n",
              correlator.enqueued(), correlator.processed(), correlator.queue_depth(),
              correlator.high_watermark(), correlator.queue_capacity());
  std::printf("interned paths: %zu, files tracked: %zu\n", GlobalPaths().size(),
              correlator.KnownFiles());
  return 0;
}

// --- suggest-reorg ----------------------------------------------------------------

int SuggestReorg(int argc, char** argv, int start) {
  const char* path = Positional(argc, argv, start);
  if (path == nullptr) {
    std::fprintf(stderr, "seerctl: suggest-reorg requires a DB argument\n");
    return 2;
  }
  const auto correlator = LoadDbOrDie(path);
  ReorganizerConfig config;
  if (const char* min_conf = FlagValue(argc, argv, start, "--min-confidence")) {
    config.min_confidence = std::atof(min_conf);
  }
  const auto suggestions =
      SuggestReorganization(*correlator, correlator->BuildClusters(), config);
  for (const auto& s : suggestions) {
    std::printf("%.0f%%  %-40s ->  %s/   (cluster of %zu)\n", s.confidence * 100.0,
                s.path.c_str(), s.to_dir.c_str(), s.cluster_size);
  }
  std::printf("# %zu suggestions\n", suggestions.size());
  return 0;
}

// --- check-config ---------------------------------------------------------------

int CheckConfig(int argc, char** argv, int start) {
  const char* path = Positional(argc, argv, start);
  if (path == nullptr) {
    std::fprintf(stderr, "seerctl: check-config requires a FILE argument\n");
    return 2;
  }
  const auto config = ParseObserverControlFile(ReadFileOrDie(path));
  if (!config.ok()) {
    std::fprintf(stderr, "seerctl: %s: %s\n", path, config.status().message().c_str());
    return 1;
  }
  std::printf("%s: OK\n", path);
  std::printf("%s", FormatObserverControlFile(*config).c_str());
  return 0;
}

// --- db --------------------------------------------------------------------------

SnapshotStoreOptions StoreOptions(int argc, char** argv, int start) {
  SnapshotStoreOptions options;
  if (const char* keep = FlagValue(argc, argv, start, "--keep")) {
    options.keep_generations = std::strtoull(keep, nullptr, 10);
  }
  return options;
}

int DbSave(int argc, char** argv, int start) {
  const char* dir = Positional(argc, argv, start);
  const char* from_trace = FlagValue(argc, argv, start, "--from-trace");
  const char* from_db = FlagValue(argc, argv, start, "--from-db");
  if (dir == nullptr || (from_trace == nullptr) == (from_db == nullptr)) {
    std::fprintf(stderr,
                 "seerctl: db save requires DIR and exactly one of --from-trace/--from-db\n");
    return 2;
  }

  std::unique_ptr<Correlator> correlator;
  if (from_db != nullptr) {
    correlator = LoadDbOrDie(from_db);
  } else {
    correlator =
        std::make_unique<Correlator>(ParamsFromFlagOrDie(argc, argv, start));
    size_t events = 0;
    if (!ReplayTraceInto(from_trace, ControlFromFlagOrDie(argc, argv, start),
                         correlator.get(), &events)) {
      return 1;
    }
    std::fprintf(stderr, "replayed %zu events from %s\n", events, from_trace);
  }

  SnapshotStore store(&DefaultFs(), dir, StoreOptions(argc, argv, start));
  Status status = store.Open();
  if (status.ok()) {
    const auto result = store.Checkpoint(*correlator);
    status = result.ok() ? Status::Ok() : result.status();
    if (result.ok()) {
      std::printf("%s: wrote generation %llu (%zu files tracked)\n", dir,
                  static_cast<unsigned long long>(result->generation),
                  correlator->files().size());
    }
  }
  if (!status.ok()) {
    std::fprintf(stderr, "seerctl: %s: %s\n", dir, status.ToString().c_str());
    return 1;
  }
  return 0;
}

int DbLoad(int argc, char** argv, int start) {
  const char* dir = Positional(argc, argv, start);
  if (dir == nullptr) {
    std::fprintf(stderr, "seerctl: db load requires a DIR argument\n");
    return 2;
  }
  SnapshotStore store(&DefaultFs(), dir, StoreOptions(argc, argv, start));
  const auto recovered = store.Recover();
  if (!recovered.ok()) {
    std::fprintf(stderr, "seerctl: %s: %s\n", dir, recovered.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "recovered generation %llu (%llu wal records replayed%s%s)\n",
               static_cast<unsigned long long>(recovered->generation),
               static_cast<unsigned long long>(recovered->wal_records_replayed),
               recovered->torn_wal_tail ? ", torn wal tail" : "",
               recovered->snapshots_discarded > 0 ? ", damaged snapshots skipped" : "");
  if (const char* out_path = FlagValue(argc, argv, start, "-o")) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "seerctl: cannot write %s\n", out_path);
      return 1;
    }
    recovered->correlator->SaveTo(out);
    std::printf("database saved to %s\n", out_path);
  } else {
    std::ostringstream out;
    recovered->correlator->SaveTo(out);
    std::fputs(out.str().c_str(), stdout);
  }
  return 0;
}

int DbVerify(int argc, char** argv, int start) {
  const char* dir = Positional(argc, argv, start);
  if (dir == nullptr) {
    std::fprintf(stderr, "seerctl: db verify requires a DIR argument\n");
    return 2;
  }
  const bool deep = HasFlag(argc, argv, start, "--deep");
  SnapshotStore store(&DefaultFs(), dir);
  const Status status = store.Verify(deep);
  if (!status.ok()) {
    std::printf("%s: %s\n", dir, status.ToString().c_str());
    return 1;
  }
  std::printf("%s: OK%s\n", dir, deep ? " (deep)" : "");
  return 0;
}

int DbCompact(int argc, char** argv, int start) {
  const char* dir = Positional(argc, argv, start);
  if (dir == nullptr) {
    std::fprintf(stderr, "seerctl: db compact requires a DIR argument\n");
    return 2;
  }
  SnapshotStore store(&DefaultFs(), dir, StoreOptions(argc, argv, start));
  const auto recovered = store.Recover();
  if (!recovered.ok()) {
    std::fprintf(stderr, "seerctl: %s: %s\n", dir, recovered.status().ToString().c_str());
    return 1;
  }
  const auto result = store.Checkpoint(*recovered->correlator);
  if (!result.ok()) {
    std::fprintf(stderr, "seerctl: %s: %s\n", dir, result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: compacted into generation %llu (%llu wal records folded in)\n", dir,
              static_cast<unsigned long long>(result->generation),
              static_cast<unsigned long long>(recovered->wal_records_replayed));
  return 0;
}

int DbInfo(int argc, char** argv, int start) {
  const char* dir = Positional(argc, argv, start);
  if (dir == nullptr) {
    std::fprintf(stderr, "seerctl: db info requires a DIR argument\n");
    return 2;
  }
  SnapshotStore store(&DefaultFs(), dir);
  const auto info = store.GetInfo();
  if (!info.ok()) {
    std::fprintf(stderr, "seerctl: %s: %s\n", dir, info.status().ToString().c_str());
    return 1;
  }
  if (info->generations.empty()) {
    std::printf("%s: empty store\n", dir);
    return 0;
  }
  std::printf("%-10s  %-30s  %s\n", "generation", "snapshot", "wal");
  for (const auto& gen : info->generations) {
    std::string snapshot = "-";
    if (gen.has_snapshot) {
      snapshot = std::string(gen.is_delta ? "delta " : "full  ") +
                 std::to_string(gen.snapshot_bytes) + " B " +
                 (gen.snapshot_ok ? "(ok)" : "(DAMAGED)");
    }
    std::string wal = "-";
    if (gen.has_wal) {
      wal = std::to_string(gen.wal_bytes) + " B, " + std::to_string(gen.wal_records) +
            " records";
      switch (gen.wal_tail) {
        case WalReplayStats::Tail::kClean:
          break;
        case WalReplayStats::Tail::kTorn:
          wal += " (torn tail)";
          break;
        case WalReplayStats::Tail::kCorrupt:
          wal += " (CORRUPT)";
          break;
      }
    }
    std::printf("%-10llu  %-30s  %s\n", static_cast<unsigned long long>(gen.generation),
                snapshot.c_str(), wal.c_str());
  }

  if (HasFlag(argc, argv, start, "--stats")) {
    // On-disk delta economics from the table rows...
    uint64_t last_full_bytes = 0;
    uint64_t delta_bytes = 0;
    size_t delta_count = 0;
    for (const auto& gen : info->generations) {
      if (!gen.has_snapshot) {
        continue;
      }
      if (gen.is_delta) {
        delta_bytes += gen.snapshot_bytes;
        ++delta_count;
      } else {
        last_full_bytes = gen.snapshot_bytes;
      }
    }
    // ...plus a live checkpoint-plane measurement: recover the store and
    // time the seal (the only part that stalls ingest) and the parallel
    // encode of a full snapshot.
    const auto recovered = store.Recover();
    if (!recovered.ok()) {
      std::fprintf(stderr, "seerctl: %s: %s\n", dir, recovered.status().ToString().c_str());
      return 1;
    }
    const auto seal_begin = std::chrono::steady_clock::now();
    const SealedSnapshot seal = recovered->correlator->SealSnapshot();
    const auto seal_end = std::chrono::steady_clock::now();
    ThreadPool pool;
    const std::string encoded = EncodeSealedSnapshot(seal, &pool);
    const auto encode_end = std::chrono::steady_clock::now();
    const auto micros = [](auto a, auto b) {
      return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
    };
    std::printf("\ncheckpoint stats (%zu files, %d threads):\n",
                static_cast<size_t>(seal.file_count), pool.threads());
    std::printf("  seal stall      %lld us\n",
                static_cast<long long>(micros(seal_begin, seal_end)));
    std::printf("  full encode     %.3f ms (%zu B)\n",
                static_cast<double>(micros(seal_end, encode_end)) / 1000.0, encoded.size());
    if (delta_count > 0 && last_full_bytes > 0) {
      std::printf("  delta ratio     %.3f (%zu deltas on disk, avg %llu B vs full %llu B)\n",
                  static_cast<double>(delta_bytes) / static_cast<double>(delta_count) /
                      static_cast<double>(last_full_bytes),
                  delta_count,
                  static_cast<unsigned long long>(delta_bytes / delta_count),
                  static_cast<unsigned long long>(last_full_bytes));
    }
  }
  return 0;
}

const std::vector<Subcommand>& DbCommands() {
  static const std::vector<Subcommand> commands = {
      {"save", "db save DIR (--from-trace TRACE [--params FILE] [--control FILE] | --from-db DB)"
               " [--keep N]",
       "Build (or extend) a snapshot store at DIR from a replayed trace or\n"
       "an existing text database, committing one new generation.\n\n"
       "  --from-trace TRACE  replay TRACE through observer + correlator\n"
       "  --from-db DB        load the text database DB\n"
       "  --params FILE       correlator parameters for --from-trace\n"
       "  --control FILE      observer control file for --from-trace\n"
       "  --keep N            snapshot generations to retain (default 2)\n",
       DbSave},
      {"load", "db load DIR [-o FILE]",
       "Recover the newest consistent state from the store at DIR (snapshot\n"
       "plus WAL replay, falling back past torn generations) and write it\n"
       "as a portable text database to FILE, or stdout.\n",
       DbLoad},
      {"verify", "db verify DIR [--deep]",
       "Check the store's integrity: the newest snapshot chain (nearest\n"
       "full plus its deltas) must decode, the WAL chain must be gapless\n"
       "and undamaged except for a possible torn tail on the last log.\n"
       "Per-section CRC failures name the damaged section. Exit 0 iff\n"
       "healthy.\n\n"
       "  --deep   also CRC-check every snapshot file's sections, decode\n"
       "           every full, and validate every delta's base linkage\n",
       DbVerify},
      {"compact", "db compact DIR [--keep N]",
       "Fold the WAL chain into a fresh snapshot generation and prune old\n"
       "generations, bounding recovery replay time.\n\n"
       "  --keep N   snapshot generations to retain (default 2)\n",
       DbCompact},
      {"info", "db info DIR [--stats]",
       "Describe every generation in the store: snapshot kind (full or\n"
       "delta), size and health, WAL size, record count, and tail state.\n\n"
       "  --stats  also recover the store and report checkpoint-plane\n"
       "           numbers: seal stall, parallel full-encode time, and the\n"
       "           on-disk delta-to-full byte ratio\n",
       DbInfo},
  };
  return commands;
}

int Db(int argc, char** argv, int start) {
  return RunRegistry("seerctl", DbCommands(), argc, argv, start);
}

// --- tenant ----------------------------------------------------------------------
//
// A multi-tenant service root (src/server/tenant_router.h) is a directory
// of tenant-NNNNNNNN subdirectories, each an ordinary single-instance
// snapshot+WAL store. Every verb has two backends behind one output
// layer: with --socket SPEC it speaks the control protocol (wire.h) to a
// live `seerctl serve` process; without it, it works offline — read-only
// Recover for list/stats, an ad-hoc TenantRouter for checkpoint/evict —
// exercising the same code paths the live service runs.

// --socket SPEC / --socket=SPEC: the live-service endpoint (net.h spec
// syntax); nullptr selects the offline backend.
const char* SocketFlag(int argc, char** argv, int start) {
  for (int i = start; i < argc; ++i) {
    if (std::strncmp(argv[i], "--socket=", 9) == 0) {
      return argv[i] + 9;
    }
  }
  return FlagValue(argc, argv, start, "--socket");
}

SeerClient ConnectOrDie(const char* socket_spec) {
  StatusOr<SeerClient> client = SeerClient::Connect(socket_spec);
  if (!client.ok()) {
    std::fprintf(stderr, "seerctl: %s: %s\n", socket_spec, client.status().message().c_str());
    std::exit(1);
  }
  return *std::move(client);
}

TenantId TenantIdOrDie(const char* text) {
  uint32_t id = 0;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, id);
  if (ec != std::errc() || ptr != end) {
    std::fprintf(stderr, "seerctl: invalid tenant id '%s'\n", text);
    std::exit(2);
  }
  return id;
}

std::vector<TenantId> ListTenantsOrDie(Fs* fs, const std::string& root) {
  StatusOr<std::vector<TenantId>> tenants = SnapshotStore::ListTenants(fs, root);
  if (!tenants.ok()) {
    std::fprintf(stderr, "seerctl: %s\n", tenants.status().message().c_str());
    std::exit(1);
  }
  return *std::move(tenants);
}

// The tenant whose id is the positional after ROOT (offline) or the first
// positional (--socket). Offline, the tenant must already exist on disk —
// a typo'd id must not create a fresh store; the live server enforces the
// same rule itself.
struct TenantTarget {
  std::string root;          // empty in socket mode
  const char* socket = nullptr;
  TenantId tenant = kInvalidTenantId;
};

TenantTarget TenantTargetOrDie(const char* command, int argc, char** argv, int start) {
  TenantTarget target;
  target.socket = SocketFlag(argc, argv, start);
  const char* id = nullptr;
  if (target.socket != nullptr) {
    id = PositionalAt(argc, argv, start, 0);
    if (id == nullptr) {
      std::fprintf(stderr, "seerctl: tenant %s --socket requires a TENANT argument\n",
                   command);
      std::exit(2);
    }
  } else {
    const char* root = PositionalAt(argc, argv, start, 0);
    id = PositionalAt(argc, argv, start, 1);
    if (root == nullptr || id == nullptr) {
      std::fprintf(stderr, "seerctl: tenant %s requires ROOT and TENANT arguments\n", command);
      std::exit(2);
    }
    target.root = root;
  }
  target.tenant = TenantIdOrDie(id);
  if (target.socket == nullptr) {
    const std::vector<TenantId> present = ListTenantsOrDie(&DefaultFs(), target.root);
    if (std::find(present.begin(), present.end(), target.tenant) == present.end()) {
      std::fprintf(stderr, "seerctl: no tenant %u under %s (try `seerctl tenant list %s`)\n",
                   target.tenant, target.root.c_str(), target.root.c_str());
      std::exit(1);
    }
  }
  return target;
}

// --- the one formatting layer both backends feed -----------------------------

struct TenantRow {
  TenantStats stats;
  std::string state;
};

void PrintTenantRows(const std::vector<TenantRow>& rows) {
  // New columns go on the right: scripts (and CI smoke) address the
  // generation/files columns positionally.
  std::printf("%10s %10s %8s %12s %-9s %8s %12s\n", "tenant", "generation", "files", "memory",
              "state", "refills", "refill_us");
  for (const TenantRow& row : rows) {
    std::printf("%10u %10llu %8llu %12llu %-9s %8llu %12llu\n", row.stats.tenant,
                static_cast<unsigned long long>(row.stats.generation),
                static_cast<unsigned long long>(row.stats.files),
                static_cast<unsigned long long>(row.stats.memory_bytes), row.state.c_str(),
                static_cast<unsigned long long>(row.stats.refills),
                static_cast<unsigned long long>(row.stats.refill_us_total));
  }
}

void PrintCheckpointed(TenantId tenant, const TenantStats& stats) {
  std::printf("tenant %u: checkpointed at generation %llu (%llu files, %llu B resident)\n",
              tenant, static_cast<unsigned long long>(stats.generation),
              static_cast<unsigned long long>(stats.files),
              static_cast<unsigned long long>(stats.memory_bytes));
}

void PrintEvicted(TenantId tenant, uint64_t memory) {
  std::printf("tenant %u: WAL folded, %llu B of in-memory state released\n", tenant,
              static_cast<unsigned long long>(memory));
}

void PrintTenantIds(const std::vector<TenantId>& tenants, const std::string& where) {
  for (const TenantId tenant : tenants) {
    std::printf("%10u\n", tenant);
  }
  std::printf("# %zu tenant%s %s\n", tenants.size(), tenants.size() == 1 ? "" : "s",
              where.c_str());
}

// Single-tenant stats over the socket (the server's Stats view).
StatusOr<TenantStats> LiveStatsOrDie(SeerClient& client, TenantId tenant) {
  SEER_ASSIGN_OR_RETURN(std::vector<TenantStats> stats, client.Stats(tenant));
  if (stats.size() != 1) {
    return Status::Internal("server returned " + std::to_string(stats.size()) +
                            " stats records for one tenant");
  }
  return stats[0];
}

int TenantList(int argc, char** argv, int start) {
  if (const char* socket = SocketFlag(argc, argv, start)) {
    SeerClient client = ConnectOrDie(socket);
    const StatusOr<std::vector<TenantId>> tenants = client.TenantList();
    if (!tenants.ok()) {
      std::fprintf(stderr, "seerctl: %s\n", tenants.status().message().c_str());
      return 1;
    }
    PrintTenantIds(*tenants, std::string("served at ") + socket);
    return 0;
  }
  const char* root = Positional(argc, argv, start);
  if (root == nullptr) {
    std::fprintf(stderr, "seerctl: tenant list requires a ROOT argument (or --socket)\n");
    return 2;
  }
  PrintTenantIds(ListTenantsOrDie(&DefaultFs(), root), std::string("under ") + root);
  return 0;
}

int TenantStatsCmd(int argc, char** argv, int start) {
  const char* one = FlagValue(argc, argv, start, "--tenant");
  if (const char* socket = SocketFlag(argc, argv, start)) {
    SeerClient client = ConnectOrDie(socket);
    const StatusOr<std::vector<TenantStats>> stats =
        client.Stats(one != nullptr ? TenantIdOrDie(one) : kInvalidTenantId);
    if (!stats.ok()) {
      std::fprintf(stderr, "seerctl: %s\n", stats.status().message().c_str());
      return 1;
    }
    std::vector<TenantRow> rows;
    for (const TenantStats& s : *stats) {
      rows.push_back({s, s.resident ? "resident" : "evicted"});
    }
    PrintTenantRows(rows);
    return 0;
  }
  const char* root = Positional(argc, argv, start);
  if (root == nullptr) {
    std::fprintf(stderr, "seerctl: tenant stats requires a ROOT argument (or --socket)\n");
    return 2;
  }
  std::vector<TenantId> tenants;
  if (one != nullptr) {
    tenants.push_back(TenantIdOrDie(one));
  } else {
    tenants = ListTenantsOrDie(&DefaultFs(), root);
  }
  // One pool for every recovery decode; Recover() itself never writes.
  ThreadPool pool(ThreadsFlagOrDie(argc, argv, start));
  std::vector<TenantRow> rows;
  int rc = 0;
  for (const TenantId tenant : tenants) {
    const std::string dir = SnapshotStore::TenantDirectory(root, tenant);
    SnapshotStore store(&DefaultFs(), dir);
    const auto recovered = store.Recover({}, &pool);
    if (!recovered.ok()) {
      std::fprintf(stderr, "seerctl: tenant %u: UNREADABLE: %s\n", tenant,
                   recovered.status().message().c_str());
      rc = 1;
      continue;
    }
    TenantRow row;
    row.stats.tenant = tenant;
    row.stats.generation = recovered->generation;
    row.stats.files = recovered->correlator->files().size();
    row.stats.memory_bytes = recovered->correlator->MemoryBytes();
    row.state = recovered->torn_wal_tail ? "torn-wal-tail"
                : recovered->fresh       ? "empty"
                                         : "healthy";
    rows.push_back(std::move(row));
  }
  PrintTenantRows(rows);
  return rc;
}

int TenantCheckpoint(int argc, char** argv, int start) {
  const TenantTarget target = TenantTargetOrDie("checkpoint", argc, argv, start);
  if (target.socket != nullptr) {
    SeerClient client = ConnectOrDie(target.socket);
    const Status status = client.Checkpoint(target.tenant);
    if (!status.ok()) {
      std::fprintf(stderr, "seerctl: %s\n", status.message().c_str());
      return 1;
    }
    const StatusOr<TenantStats> stats = LiveStatsOrDie(client, target.tenant);
    if (stats.ok()) {
      PrintCheckpointed(target.tenant, *stats);
    }
    return 0;
  }
  TenantRouterConfig config;
  config.threads = ThreadsFlagOrDie(argc, argv, start);
  TenantRouter router(&DefaultFs(), target.root, config);
  const Status status = router.CheckpointTenant(target.tenant);
  if (!status.ok()) {
    std::fprintf(stderr, "seerctl: %s\n", status.message().c_str());
    return 1;
  }
  auto stats = router.Stats(target.tenant);
  const StatusOr<Correlator*> live = router.CorrelatorFor(target.tenant);
  if (stats.ok() && live.ok()) {
    stats->memory_bytes = (*live)->MemoryBytes();
    PrintCheckpointed(target.tenant, *stats);
  }
  return 0;
}

int TenantEvict(int argc, char** argv, int start) {
  const TenantTarget target = TenantTargetOrDie("evict", argc, argv, start);
  if (target.socket != nullptr) {
    SeerClient client = ConnectOrDie(target.socket);
    const StatusOr<TenantStats> before = LiveStatsOrDie(client, target.tenant);
    if (!before.ok()) {
      std::fprintf(stderr, "seerctl: %s\n", before.status().message().c_str());
      return 1;
    }
    const Status status = client.Evict(target.tenant);
    if (!status.ok()) {
      std::fprintf(stderr, "seerctl: %s\n", status.message().c_str());
      return 1;
    }
    PrintEvicted(target.tenant, before->memory_bytes);
    return 0;
  }
  TenantRouterConfig config;
  config.threads = ThreadsFlagOrDie(argc, argv, start);
  TenantRouter router(&DefaultFs(), target.root, config);
  // The router materialises tenants lazily; restore first so the evict
  // path (settle -> fold WAL -> release) runs against live state.
  const StatusOr<Correlator*> live = router.CorrelatorFor(target.tenant);
  if (!live.ok()) {
    std::fprintf(stderr, "seerctl: %s\n", live.status().message().c_str());
    return 1;
  }
  const uint64_t memory = (*live)->MemoryBytes();
  const Status status = router.EvictTenant(target.tenant);
  if (!status.ok()) {
    std::fprintf(stderr, "seerctl: %s\n", status.message().c_str());
    return 1;
  }
  PrintEvicted(target.tenant, memory);
  return 0;
}

int TenantParams(int argc, char** argv, int start) {
  const TenantTarget target = TenantTargetOrDie("params", argc, argv, start);
  const char* set_path = FlagValue(argc, argv, start, "--set");
  if (target.socket != nullptr) {
    SeerClient client = ConnectOrDie(target.socket);
    if (set_path != nullptr) {
      const Status status = client.ParamsSet(target.tenant, ReadFileOrDie(set_path));
      if (!status.ok()) {
        std::fprintf(stderr, "seerctl: %s\n", status.message().c_str());
        return 1;
      }
      std::printf("tenant %u: params override applied and persisted\n", target.tenant);
      return 0;
    }
    const StatusOr<std::string> text = client.ParamsGet(target.tenant);
    if (!text.ok()) {
      std::fprintf(stderr, "seerctl: %s\n", text.status().message().c_str());
      return 1;
    }
    std::fputs(text->c_str(), stdout);
    return 0;
  }
  TenantRouterConfig config;
  config.threads = ThreadsFlagOrDie(argc, argv, start);
  TenantRouter router(&DefaultFs(), target.root, config);
  if (set_path != nullptr) {
    const Status status = router.SetTenantParams(target.tenant, ReadFileOrDie(set_path));
    if (!status.ok()) {
      std::fprintf(stderr, "seerctl: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("tenant %u: params override applied and persisted\n", target.tenant);
    return 0;
  }
  const StatusOr<std::string> text = router.GetTenantParams(target.tenant);
  if (!text.ok()) {
    std::fprintf(stderr, "seerctl: %s\n", text.status().message().c_str());
    return 1;
  }
  std::fputs(text->c_str(), stdout);
  return 0;
}

int TenantShutdown(int argc, char** argv, int start) {
  const char* socket = SocketFlag(argc, argv, start);
  if (socket == nullptr) {
    std::fprintf(stderr, "seerctl: tenant shutdown requires --socket SPEC\n");
    return 2;
  }
  SeerClient client = ConnectOrDie(socket);
  const Status status = client.Shutdown();
  if (!status.ok()) {
    std::fprintf(stderr, "seerctl: %s\n", status.message().c_str());
    return 1;
  }
  std::printf("server at %s draining: sealing and checkpointing every resident tenant\n",
              socket);
  return 0;
}

const std::vector<Subcommand>& TenantCommands() {
  static const std::vector<Subcommand> commands = {
      {"list", "tenant list {ROOT | --socket SPEC}",
       "List the tenants of a multi-tenant service root: one\n"
       "tenant-NNNNNNNN store directory per tenant, each an ordinary\n"
       "single-instance store that `seerctl db` reads unchanged.\n"
       "With --socket, ask a live `seerctl serve` process instead.\n",
       TenantList},
      {"stats", "tenant stats {ROOT | --socket SPEC} [--tenant ID] [--threads K]",
       "Per-tenant durable generation, tracked files, memory bytes, and\n"
       "state. Offline, each store is recovered read-only; with --socket,\n"
       "a live server reports the same counters from its router. On a\n"
       "quiesced (checkpointed) tenant the two backends agree exactly.\n\n"
       "  --socket SPEC live-service endpoint (unix:PATH, tcp:HOST:PORT)\n"
       "  --tenant ID   only this tenant\n"
       "  --threads K   offline recovery-decode threads (default:\n"
       "                SEER_THREADS, else all cores)\n",
       TenantStatsCmd},
      {"checkpoint", "tenant checkpoint {ROOT | --socket SPEC} TENANT [--threads K]",
       "Synchronously checkpoint one tenant through the router: fold its\n"
       "WAL into a fresh snapshot generation and prune, exactly as the\n"
       "live service's staggered scheduler would.\n",
       TenantCheckpoint},
      {"evict", "tenant evict {ROOT | --socket SPEC} TENANT [--threads K]",
       "Run the seal-and-release eviction path for one tenant: settle any\n"
       "in-flight checkpoint, fold the WAL into a synchronous snapshot,\n"
       "release the in-memory state. The store is left with an empty WAL,\n"
       "so the next restore replays nothing.\n",
       TenantEvict},
      {"params", "tenant params {ROOT | --socket SPEC} TENANT [--set FILE]",
       "Print one tenant's effective correlator parameters (params_io\n"
       "text), or with --set FILE install a persisted per-tenant override\n"
       "parsed over the service defaults. Overrides live in the tenant's\n"
       "store directory (params.seer), survive eviction and restart, and\n"
       "apply live when set through a running server (max_neighbors stays\n"
       "pinned until restore; it bakes the relation-table slab geometry).\n",
       TenantParams},
      {"shutdown", "tenant shutdown --socket SPEC",
       "Gracefully stop a live server: it acknowledges, drains buffered\n"
       "frames, then seals and checkpoints every resident tenant before\n"
       "exiting.\n",
       TenantShutdown},
  };
  return commands;
}

int Tenant(int argc, char** argv, int start) {
  return RunRegistry("seerctl", TenantCommands(), argc, argv, start);
}

// --- serve / stream ------------------------------------------------------------

uint64_t U64FlagOr(int argc, char** argv, int start, const char* flag, uint64_t fallback) {
  const char* value = FlagValue(argc, argv, start, flag);
  if (value == nullptr) {
    return fallback;
  }
  uint64_t parsed = 0;
  const char* end = value + std::strlen(value);
  const auto [ptr, ec] = std::from_chars(value, end, parsed);
  if (ec != std::errc() || ptr != end) {
    std::fprintf(stderr, "seerctl: %s: invalid value '%s'\n", flag, value);
    std::exit(2);
  }
  return parsed;
}

int ServeCmd(int argc, char** argv, int start) {
  const char* root = Positional(argc, argv, start);
  const char* socket = SocketFlag(argc, argv, start);
  if (root == nullptr || socket == nullptr) {
    std::fprintf(stderr, "seerctl: serve requires ROOT and --socket SPEC\n");
    return 2;
  }
  HoardServiceConfig config;
  config.router.threads = ThreadsFlagOrDie(argc, argv, start);
  config.io_threads = IoThreadsFlagOrDie(argc, argv, start);
  config.router.defaults = ParamsFromFlagOrDie(argc, argv, start);
  config.observer = ControlFromFlagOrDie(argc, argv, start);
  config.router.checkpoint_interval =
      static_cast<Time>(U64FlagOr(argc, argv, start, "--checkpoint-interval-s",
                                  config.router.checkpoint_interval / kMicrosPerSecond)) *
      kMicrosPerSecond;
  config.router.max_resident_tenants = static_cast<size_t>(
      U64FlagOr(argc, argv, start, "--max-resident", config.router.max_resident_tenants));
  config.router.max_resident_bytes =
      U64FlagOr(argc, argv, start, "--max-resident-mb",
                config.router.max_resident_bytes >> 20) << 20;
  HoardService service(&DefaultFs(), root, config);
  const Status listening = service.Listen(socket);
  if (!listening.ok()) {
    std::fprintf(stderr, "seerctl: %s\n", listening.message().c_str());
    return 1;
  }
  std::printf("seerctl: serving %s on %s\n", root, socket);
  std::fflush(stdout);
  const Status served = service.Serve();
  std::printf("seerctl: server drained: %llu connection%s, %llu frame%s, %llu event%s, "
              "%llu protocol error%s\n",
              static_cast<unsigned long long>(service.connections_accepted()),
              service.connections_accepted() == 1 ? "" : "s",
              static_cast<unsigned long long>(service.frames_received()),
              service.frames_received() == 1 ? "" : "s",
              static_cast<unsigned long long>(service.events_ingested()),
              service.events_ingested() == 1 ? "" : "s",
              static_cast<unsigned long long>(service.protocol_errors()),
              service.protocol_errors() == 1 ? "" : "s");
  if (!served.ok()) {
    std::fprintf(stderr, "seerctl: %s\n", served.message().c_str());
    return 1;
  }
  return 0;
}

int StreamCmd(int argc, char** argv, int start) {
  const char* trace = Positional(argc, argv, start);
  const char* socket = SocketFlag(argc, argv, start);
  const char* tenant_flag = FlagValue(argc, argv, start, "--tenant");
  if (trace == nullptr || socket == nullptr || tenant_flag == nullptr) {
    std::fprintf(stderr, "seerctl: stream requires TRACE, --socket SPEC, and --tenant ID\n");
    return 2;
  }
  const TenantId tenant = TenantIdOrDie(tenant_flag);
  std::vector<TraceEvent> events;
  if (!ForEachTraceEvent(trace, [&](const TraceEvent& event) { events.push_back(event); })) {
    return 1;
  }
  SeerClient client = ConnectOrDie(socket);
  const Status streamed = client.StreamEvents(tenant, events);
  if (!streamed.ok()) {
    std::fprintf(stderr, "seerctl: %s\n", streamed.message().c_str());
    return 1;
  }
  // Frames are processed in connection order, so a control round-trip is
  // a delivery barrier: once it returns, every event above is ingested.
  const Status synced = client.Ping();
  if (!synced.ok()) {
    std::fprintf(stderr, "seerctl: %s\n", synced.message().c_str());
    return 1;
  }
  std::printf("streamed %zu events to tenant %u at %s\n", events.size(), tenant, socket);
  return 0;
}

// --- registry --------------------------------------------------------------------

const std::vector<Subcommand>& Commands() {
  static const std::vector<Subcommand> commands = {
      {"gen-trace", "gen-trace [--machine A..I] [--hours H] [--seed S] [--binary] -o FILE",
       "Generate a synthetic reference trace for one of the paper's nine\n"
       "machine profiles (Section 5).\n\n"
       "  --machine A..I  machine profile (default D)\n"
       "  --hours H       active hours to simulate (default 1.0)\n"
       "  --seed S        RNG seed (default 1)\n"
       "  --binary        write the compact binary trace format\n"
       "  -o FILE         output file (required)\n",
       GenTrace},
      {"stats", "stats TRACE",
       "Per-operation, per-status, and per-file statistics for a trace.\n", Stats},
      {"replay", "replay TRACE [--params FILE] [--control FILE] [--threads K] [--stats] [--save FILE]",
       "Replay a trace through the observer and correlator (simulation\n"
       "mode), print what was learned, optionally save the text database.\n"
       "Ingest runs through the batched pipeline: distance measurement is\n"
       "sharded by process stream and measured in parallel; the learned\n"
       "state is bit-identical to serial ingest at any thread count.\n\n"
       "  --params FILE   correlator parameters\n"
       "  --control FILE  observer control file\n"
       "  --threads K     measure-phase threads (default: SEER_THREADS,\n"
       "                  else all cores); --threads=K is accepted too\n"
       "  --stats         print ingest statistics (refs/sec, batches,\n"
       "                  segments, shards, barriers)\n"
       "  --save FILE     save the learned database (text format)\n",
       Replay},
      {"clusters", "clusters DB [--min-size N]",
       "Dump the project clusters of a saved text database.\n\n"
       "  --min-size N   only clusters with at least N members (default 2)\n",
       Clusters},
      {"cluster", "cluster DB [--stats] [--threads K]",
       "Build project clusters with the parallel engine and print build\n"
       "statistics.\n\n"
       "  --stats        also print dirty-set size, rescored files, edges\n"
       "  --threads K    scoring threads (default: SEER_THREADS, else all\n"
       "                 cores); --threads=K is accepted too\n",
       ClusterStats},
      {"hoard", "hoard DB --budget-mb MB [--stats]",
       "Compute hoard contents from a saved text database under a space\n"
       "budget. --stats prints the fill-plane breakdown (aggregate cache\n"
       "hits, phase times, thread count).\n",
       Hoard},
      {"check-config", "check-config FILE",
       "Validate a system control file and echo the parsed configuration.\n", CheckConfig},
      {"suggest-reorg", "suggest-reorg DB [--min-confidence F]",
       "Suggest directory reorganisations from the cluster structure.\n", SuggestReorg},
      {"pipeline", "pipeline TRACE [--control FILE]",
       "Replay a trace through the instrumented observer -> sink-chain ->\n"
       "async-correlator data plane and print per-stage counters, latency\n"
       "percentiles, and queue statistics.\n",
       Pipeline},
      {"db", "db {save|load|verify|compact|info} DIR ...",
       "Operate on a crash-safe snapshot+WAL store directory.\n"
       "Run `seerctl db` for the sub-command list.\n",
       Db, /*has_subcommands=*/true},
      {"tenant", "tenant {list|stats|evict|checkpoint|params|shutdown} ...",
       "Operate on a multi-tenant hoard-service root: a directory of\n"
       "tenant-NNNNNNNN single-instance stores driven by one TenantRouter\n"
       "(see src/server/tenant_router.h). Every verb works offline against\n"
       "ROOT or live against a server via --socket SPEC. Run\n"
       "`seerctl tenant` for the sub-command list.\n",
       Tenant, /*has_subcommands=*/true},
      {"serve", "serve ROOT --socket SPEC [--threads K] [--io-threads K] [--params FILE] [--control FILE]",
       "Run the hoard service: listen on SPEC (unix:PATH, tcp:HOST:PORT,\n"
       "or a bare UDS path), shard connections over the I/O threads, route\n"
       "kEvents frames into per-tenant correlators over one shared pool,\n"
       "and answer the control protocol (src/server/service.h). Runs until\n"
       "`seerctl tenant shutdown --socket SPEC`, then seals and\n"
       "checkpoints every resident tenant.\n\n"
       "  --socket SPEC             endpoint to listen on (required)\n"
       "  --threads K               shared worker pool width\n"
       "  --io-threads K            connection shards (default: SEER_THREADS,\n"
       "                            else all cores)\n"
       "  --params FILE             fleet-default correlator parameters\n"
       "  --control FILE            observer control file\n"
       "  --checkpoint-interval-s N per-tenant checkpoint period\n"
       "  --max-resident N          tenant residency budget (0 = unbounded)\n"
       "  --max-resident-mb MB      resident-memory budget (0 = unbounded)\n",
       ServeCmd},
      {"stream", "stream TRACE --socket SPEC --tenant ID",
       "Stream a trace file (text or binary) to a live server as one\n"
       "tenant's reference stream, batched into self-contained event\n"
       "frames, and wait until every event is ingested.\n",
       StreamCmd},
  };
  return commands;
}

int Main(int argc, char** argv) {
  // Fail fast on a malformed SEER_THREADS before any command sizes a pool
  // from it — a typo'd width would silently change every parallel phase.
  if (const StatusOr<int> env = SeerThreadsFromEnv(); !env.ok()) {
    std::fprintf(stderr, "seerctl: %s\n", env.status().message().c_str());
    return 2;
  }
  return RunRegistry("seerctl", Commands(), argc, argv, 1);
}

}  // namespace
}  // namespace seer

int main(int argc, char** argv) { return seer::Main(argc, argv); }
