// Tests for hoard selection (whole projects only, activity priority,
// unconditional contents) and the miss log (Section 4.4 severities, manual
// + automatic paths).
#include "src/core/hoard.h"

#include <gtest/gtest.h>

namespace seer {
namespace {

PathId P(std::string_view path) { return GlobalPaths().Intern(path); }

std::set<PathId> Paths(std::initializer_list<std::string_view> paths) {
  std::set<PathId> out;
  for (const auto p : paths) {
    out.insert(P(p));
  }
  return out;
}

FileReference Ref(Pid pid, RefKind kind, const std::string& path, Time time) {
  FileReference r;
  r.pid = pid;
  r.kind = kind;
  r.path = P(path);
  r.time = time;
  return r;
}

class HoardTest : public ::testing::Test {
 protected:
  HoardTest() : correlator_(MakeParams()) {}

  static SeerParams MakeParams() {
    SeerParams p;
    p.dir_distance_weight = 0.0;
    return p;
  }

  // Registers a project of `files` with pairwise investigator relations so
  // it clusters, and touches it at the given time (later = higher
  // priority).
  void MakeProject(const std::vector<std::string>& files, Time time) {
    for (const auto& f : files) {
      correlator_.OnReference(Ref(1, RefKind::kPoint, f, time));
    }
    InvestigatedRelation rel;
    rel.files = files;
    rel.strength = 50.0;
    correlator_.AddInvestigatedRelation(rel);
  }

  static uint64_t FixedSize(PathId) { return 10; }

  Correlator correlator_;
};

TEST_F(HoardTest, WholeProjectsOnly) {
  MakeProject({"/p1/a", "/p1/b", "/p1/c"}, 100);  // 30 bytes
  MakeProject({"/p2/x", "/p2/y"}, 200);           // 20 bytes, more recent

  HoardManager manager(25);
  const auto clusters = correlator_.BuildClusters();
  const auto sel = manager.ChooseHoard(correlator_, clusters, {}, FixedSize);

  // p2 (more recent) fits; p1 would overflow 25 bytes and is skipped whole.
  EXPECT_TRUE(sel.Contains("/p2/x"));
  EXPECT_TRUE(sel.Contains("/p2/y"));
  EXPECT_FALSE(sel.Contains("/p1/a"));
  EXPECT_FALSE(sel.Contains("/p1/b"));
  EXPECT_EQ(sel.projects_skipped, 1u);
  EXPECT_GE(sel.projects_hoarded, 1u);
}

TEST_F(HoardTest, HigherActivityWins) {
  MakeProject({"/old/a", "/old/b"}, 100);
  MakeProject({"/new/a", "/new/b"}, 500);

  HoardManager manager(20);
  const auto sel =
      manager.ChooseHoard(correlator_, correlator_.BuildClusters(), {}, FixedSize);
  EXPECT_TRUE(sel.Contains("/new/a"));
  EXPECT_FALSE(sel.Contains("/old/a"));
}

TEST_F(HoardTest, BothProjectsWhenBudgetAllows) {
  MakeProject({"/p1/a", "/p1/b"}, 100);
  MakeProject({"/p2/x", "/p2/y"}, 200);
  HoardManager manager(1000);
  const auto sel =
      manager.ChooseHoard(correlator_, correlator_.BuildClusters(), {}, FixedSize);
  EXPECT_TRUE(sel.Contains("/p1/a"));
  EXPECT_TRUE(sel.Contains("/p2/x"));
  EXPECT_EQ(sel.projects_skipped, 0u);
}

TEST_F(HoardTest, AlwaysHoardIncludedRegardlessOfBudget) {
  MakeProject({"/p/a"}, 100);
  HoardManager manager(5);  // too small for anything
  const std::set<PathId> always = Paths({"/lib/libc.so", "/etc/passwd"});
  const auto sel =
      manager.ChooseHoard(correlator_, correlator_.BuildClusters(), always, FixedSize);
  EXPECT_TRUE(sel.Contains("/lib/libc.so"));
  EXPECT_TRUE(sel.Contains("/etc/passwd"));
}

TEST_F(HoardTest, PinnedFilesIncluded) {
  MakeProject({"/p/a"}, 100);
  HoardManager manager(1000);
  manager.Pin("/special/file");
  const auto sel =
      manager.ChooseHoard(correlator_, correlator_.BuildClusters(), {}, FixedSize);
  EXPECT_TRUE(sel.Contains("/special/file"));
  manager.Unpin("/special/file");
  const auto sel2 =
      manager.ChooseHoard(correlator_, correlator_.BuildClusters(), {}, FixedSize);
  EXPECT_FALSE(sel2.Contains("/special/file"));
}

TEST_F(HoardTest, DeletedFilesNotHoarded) {
  MakeProject({"/p/a", "/p/b"}, 100);
  correlator_.OnFileDeleted(P("/p/b"), 150);
  HoardManager manager(1000);
  const auto sel =
      manager.ChooseHoard(correlator_, correlator_.BuildClusters(), {}, FixedSize);
  EXPECT_TRUE(sel.Contains("/p/a"));
  EXPECT_FALSE(sel.Contains("/p/b"));
}

TEST_F(HoardTest, BytesAccounting) {
  MakeProject({"/p/a", "/p/b"}, 100);
  HoardManager manager(1000);
  const auto sel =
      manager.ChooseHoard(correlator_, correlator_.BuildClusters(), Paths({"/x"}), FixedSize);
  EXPECT_EQ(sel.bytes_used, 30u);  // /x + /p/a + /p/b
  EXPECT_EQ(sel.budget_bytes, 1000u);
}

TEST_F(HoardTest, PartialModeFillsFromOversizedProject) {
  MakeProject({"/big/a", "/big/b", "/big/c", "/big/d"}, 500);  // 40 bytes
  HoardManager manager(25);
  manager.set_allow_partial_projects(true);
  const auto sel =
      manager.ChooseHoard(correlator_, correlator_.BuildClusters(), {}, FixedSize);
  // Whole project (40) exceeds the budget (25); partial mode takes what
  // fits instead of skipping.
  EXPECT_EQ(sel.projects_skipped, 0u);
  EXPECT_GE(sel.files.size(), 2u);
  EXPECT_LE(sel.bytes_used, 25u);
}

TEST_F(HoardTest, WholeProjectModeSkipsSameProject) {
  MakeProject({"/big/a", "/big/b", "/big/c", "/big/d"}, 500);
  HoardManager manager(25);
  const auto sel =
      manager.ChooseHoard(correlator_, correlator_.BuildClusters(), {}, FixedSize);
  EXPECT_EQ(sel.projects_skipped, 1u);
  EXPECT_FALSE(sel.Contains("/big/a"));
}

TEST_F(HoardTest, ReservedBytesChargeTheBudget) {
  MakeProject({"/p/a", "/p/b"}, 100);  // 20 bytes
  HoardManager manager(25);
  manager.set_reserved_bytes(10);  // directory overhead (Section 4.6)
  const auto sel =
      manager.ChooseHoard(correlator_, correlator_.BuildClusters(), {}, FixedSize);
  // 20-byte project + 10 reserved > 25: skipped.
  EXPECT_FALSE(sel.Contains("/p/a"));
  EXPECT_EQ(sel.projects_skipped, 1u);

  manager.set_reserved_bytes(5);
  const auto sel2 =
      manager.ChooseHoard(correlator_, correlator_.BuildClusters(), {}, FixedSize);
  EXPECT_TRUE(sel2.Contains("/p/a"));
}

// --- MissLog -------------------------------------------------------------------

TEST(MissLog, ManualRecordingWithSeverity) {
  MissLog log;
  log.RecordManual("/p/file", 10, MissSeverity::kTaskChange);
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].severity, MissSeverity::kTaskChange);
  EXPECT_FALSE(log.records()[0].automatic);
  EXPECT_EQ(log.CountAtSeverity(MissSeverity::kTaskChange), 1u);
  EXPECT_EQ(log.CountAtSeverity(MissSeverity::kUnusable), 0u);
}

TEST(MissLog, AutomaticDetectionDedupedPerDisconnection) {
  MissLog log;
  log.StartDisconnection(0);
  log.OnNotLocalAccess(P("/p/file"), 1, 10);
  log.OnNotLocalAccess(P("/p/file"), 1, 20);  // same file again: ignored
  log.OnNotLocalAccess(P("/p/other"), 1, 30);
  EXPECT_EQ(log.automatic_count(), 2u);
  EXPECT_EQ(log.CurrentDisconnectionMissCount(), 2u);

  log.EndDisconnection();
  log.StartDisconnection(100);
  log.OnNotLocalAccess(P("/p/file"), 1, 110);  // new disconnection: recorded
  EXPECT_EQ(log.automatic_count(), 3u);
  EXPECT_EQ(log.CurrentDisconnectionMissCount(), 1u);
}

TEST(MissLog, MissedFilesScheduledForHoarding) {
  MissLog log;
  log.RecordManual("/p/a", 10, MissSeverity::kMinor);
  log.StartDisconnection(0);
  log.OnNotLocalAccess(P("/p/b"), 1, 20);
  auto to_hoard = log.TakeFilesToHoard();
  ASSERT_EQ(to_hoard.size(), 2u);
  EXPECT_TRUE(log.TakeFilesToHoard().empty()) << "taking clears the set";
}

TEST(MissLog, CountersMaintainedAcrossRestore) {
  // CountAtSeverity/automatic_count are maintained counters, not scans:
  // they must stay consistent through every mutation path, including a
  // RestoreState that replaces the log wholesale.
  MissLog log;
  log.RecordManual("/m/a", 1, MissSeverity::kUnusable);
  log.RecordManual("/m/b", 2, MissSeverity::kUnusable);
  log.StartDisconnection(0);
  log.OnNotLocalAccess(P("/m/c"), 1, 3);
  log.EndDisconnection();
  EXPECT_EQ(log.CountAtSeverity(MissSeverity::kUnusable), 2u);
  EXPECT_EQ(log.automatic_count(), 1u);

  std::vector<MissRecord> restored;
  MissRecord manual;
  manual.path = P("/m/x");
  manual.time = 10;
  manual.severity = MissSeverity::kPreload;
  restored.push_back(manual);
  MissRecord automatic;
  automatic.path = P("/m/y");
  automatic.time = 11;
  automatic.severity = MissSeverity::kMinor;
  automatic.automatic = true;
  restored.push_back(automatic);
  restored.push_back(automatic);
  log.RestoreState(restored, {P("/m/x")});
  // Old counts are gone; new ones reflect exactly the restored records.
  EXPECT_EQ(log.CountAtSeverity(MissSeverity::kUnusable), 0u);
  EXPECT_EQ(log.CountAtSeverity(MissSeverity::kPreload), 1u);
  EXPECT_EQ(log.CountAtSeverity(MissSeverity::kMinor), 0u)
      << "automatic records never count toward manual severities";
  EXPECT_EQ(log.automatic_count(), 2u);
  // And counting resumes correctly after a restore.
  log.RecordManual("/m/z", 20, MissSeverity::kMinor);
  EXPECT_EQ(log.CountAtSeverity(MissSeverity::kMinor), 1u);
}

TEST(MissLog, SeverityScaleCoversPaperCodes) {
  MissLog log;
  log.RecordManual("/a", 1, MissSeverity::kUnusable);
  log.RecordManual("/b", 2, MissSeverity::kTaskChange);
  log.RecordManual("/c", 3, MissSeverity::kActivityChange);
  log.RecordManual("/d", 4, MissSeverity::kMinor);
  log.RecordManual("/e", 5, MissSeverity::kPreload);
  for (int s = 0; s <= 4; ++s) {
    EXPECT_EQ(log.CountAtSeverity(static_cast<MissSeverity>(s)), 1u) << s;
  }
}

}  // namespace
}  // namespace seer
