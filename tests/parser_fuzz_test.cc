// Robustness fuzzing for every textual input surface: the trace format,
// the control file, the parameter file, and the persisted database. None
// of them may crash, hang, or accept-and-corrupt on arbitrary bytes.
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/correlator.h"
#include "src/core/params_io.h"
#include "src/observer/control_file.h"
#include "src/trace/trace_io.h"
#include "src/util/rng.h"

namespace seer {
namespace {

std::string RandomText(Rng* rng, size_t max_len) {
  std::string out;
  const size_t len = rng->NextBounded(max_len);
  for (size_t i = 0; i < len; ++i) {
    const int roll = static_cast<int>(rng->NextBounded(100));
    if (roll < 70) {
      out += static_cast<char>(' ' + rng->NextBounded(95));  // printable
    } else if (roll < 85) {
      out += '\n';
    } else if (roll < 95) {
      // Format-relevant tokens, to get past the first parse stages.
      const char* tokens[] = {"SEERDB",  "files",  "list", "end",   "params",
                              "open",    "ok",     "-",    "0x1.8p+1", "meaningless",
                              "critical", "kn",    "42",   "-7",    "relations"};
      out += tokens[rng->NextBounded(15)];
      out += ' ';
    } else {
      out += static_cast<char>(rng->NextBounded(256));  // raw bytes
    }
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<int> {
 protected:
  uint64_t Seed() const { return static_cast<uint64_t>(GetParam()) * 48271 + 11; }
};

TEST_P(ParserFuzz, TraceLinesNeverCrash) {
  Rng rng(Seed());
  for (int i = 0; i < 300; ++i) {
    const std::string text = RandomText(&rng, 200);
    std::istringstream in(text);
    TraceReader reader(in);
    size_t events = 0;
    while (reader.Next().has_value()) {
      ++events;
    }
    // Parsed or rejected — either is fine; no crash is the property.
    EXPECT_LE(events, 300u);
  }
}

TEST_P(ParserFuzz, ControlFileNeverCrashes) {
  Rng rng(Seed() ^ 1);
  for (int i = 0; i < 300; ++i) {
    const auto config = ParseObserverControlFile(RandomText(&rng, 300));
    if (!config.has_value()) {
      EXPECT_FALSE(config.status().message().empty());
    }
  }
}

TEST_P(ParserFuzz, ParamsFileNeverCrashes) {
  Rng rng(Seed() ^ 2);
  for (int i = 0; i < 300; ++i) {
    const auto params = ParseSeerParams(RandomText(&rng, 300));
    if (params.has_value()) {
      // Anything accepted must still satisfy the structural constraint.
      EXPECT_LT(params->cluster_far, params->cluster_near);
    }
  }
}

TEST_P(ParserFuzz, DatabaseLoaderNeverCrashes) {
  Rng rng(Seed() ^ 3);
  for (int i = 0; i < 200; ++i) {
    std::istringstream in(RandomText(&rng, 500));
    const auto loaded = Correlator::LoadFrom(in);
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
}

// Mutate a VALID database at random positions: the loader must either
// reject it or produce a structurally sound correlator (never crash).
TEST_P(ParserFuzz, MutatedDatabaseHandled) {
  Correlator original;
  for (int i = 0; i < 60; ++i) {
    FileReference ref;
    ref.pid = 1;
    ref.kind = RefKind::kPoint;
    ref.path = GlobalPaths().Intern("/m/f" + std::to_string(i % 9));
    ref.time = i + 1;
    original.OnReference(ref);
  }
  std::stringstream buffer;
  original.SaveTo(buffer);
  const std::string valid = buffer.str();

  Rng rng(Seed() ^ 4);
  for (int i = 0; i < 100; ++i) {
    std::string mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>(' ' + rng.NextBounded(95));
    }
    std::istringstream in(mutated);
    const auto loaded = Correlator::LoadFrom(in);
    if (loaded.ok()) {
      // Accepted: must still be usable.
      const ClusterSet clusters = (*loaded)->BuildClusters();
      for (const Cluster& c : clusters.clusters) {
        EXPECT_FALSE(c.members.empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 4));

}  // namespace
}  // namespace seer
