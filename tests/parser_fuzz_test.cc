// Robustness fuzzing for every textual input surface: the trace format,
// the control file, the parameter file, and the persisted database. None
// of them may crash, hang, or accept-and-corrupt on arbitrary bytes.
#include <algorithm>
#include <sstream>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/correlator.h"
#include "src/core/params_io.h"
#include "src/observer/control_file.h"
#include "src/server/wire.h"
#include "src/trace/trace_io.h"
#include "src/util/rng.h"

namespace seer {
namespace {

std::string RandomText(Rng* rng, size_t max_len) {
  std::string out;
  const size_t len = rng->NextBounded(max_len);
  for (size_t i = 0; i < len; ++i) {
    const int roll = static_cast<int>(rng->NextBounded(100));
    if (roll < 70) {
      out += static_cast<char>(' ' + rng->NextBounded(95));  // printable
    } else if (roll < 85) {
      out += '\n';
    } else if (roll < 95) {
      // Format-relevant tokens, to get past the first parse stages.
      const char* tokens[] = {"SEERDB",  "files",  "list", "end",   "params",
                              "open",    "ok",     "-",    "0x1.8p+1", "meaningless",
                              "critical", "kn",    "42",   "-7",    "relations"};
      out += tokens[rng->NextBounded(15)];
      out += ' ';
    } else {
      out += static_cast<char>(rng->NextBounded(256));  // raw bytes
    }
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<int> {
 protected:
  uint64_t Seed() const { return static_cast<uint64_t>(GetParam()) * 48271 + 11; }
};

TEST_P(ParserFuzz, TraceLinesNeverCrash) {
  Rng rng(Seed());
  for (int i = 0; i < 300; ++i) {
    const std::string text = RandomText(&rng, 200);
    std::istringstream in(text);
    TraceReader reader(in);
    size_t events = 0;
    for (;;) {
      const auto next = reader.Next();
      if (!next.ok()) {
        EXPECT_FALSE(next.status().message().empty());
        continue;  // malformed line: reader stays usable
      }
      if (!next->has_value()) {
        break;
      }
      ++events;
    }
    // Parsed or rejected — either is fine; no crash is the property.
    EXPECT_LE(events, 300u);
  }
}

TEST_P(ParserFuzz, ControlFileNeverCrashes) {
  Rng rng(Seed() ^ 1);
  for (int i = 0; i < 300; ++i) {
    const auto config = ParseObserverControlFile(RandomText(&rng, 300));
    if (!config.has_value()) {
      EXPECT_FALSE(config.status().message().empty());
    }
  }
}

TEST_P(ParserFuzz, ParamsFileNeverCrashes) {
  Rng rng(Seed() ^ 2);
  for (int i = 0; i < 300; ++i) {
    const auto params = ParseSeerParams(RandomText(&rng, 300));
    if (params.has_value()) {
      // Anything accepted must still satisfy the structural constraint.
      EXPECT_LT(params->cluster_far, params->cluster_near);
    }
  }
}

TEST_P(ParserFuzz, DatabaseLoaderNeverCrashes) {
  Rng rng(Seed() ^ 3);
  for (int i = 0; i < 200; ++i) {
    std::istringstream in(RandomText(&rng, 500));
    const auto loaded = Correlator::LoadFrom(in);
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
}

// Mutate a VALID database at random positions: the loader must either
// reject it or produce a structurally sound correlator (never crash).
TEST_P(ParserFuzz, MutatedDatabaseHandled) {
  Correlator original;
  for (int i = 0; i < 60; ++i) {
    FileReference ref;
    ref.pid = 1;
    ref.kind = RefKind::kPoint;
    ref.path = GlobalPaths().Intern("/m/f" + std::to_string(i % 9));
    ref.time = i + 1;
    original.OnReference(ref);
  }
  std::stringstream buffer;
  original.SaveTo(buffer);
  const std::string valid = buffer.str();

  Rng rng(Seed() ^ 4);
  for (int i = 0; i < 100; ++i) {
    std::string mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>(' ' + rng.NextBounded(95));
    }
    std::istringstream in(mutated);
    const auto loaded = Correlator::LoadFrom(in);
    if (loaded.ok()) {
      // Accepted: must still be usable.
      const ClusterSet clusters = (*loaded)->BuildClusters();
      for (const Cluster& c : clusters.clusters) {
        EXPECT_FALSE(c.members.empty());
      }
    }
  }
}

// Random bytes through the wire-frame decoder: it must return frames,
// "need more", or a latched typed error — never crash or hang — no matter
// how the stream is chunked or where it is cut off.
TEST_P(ParserFuzz, FrameDecoderNeverCrashes) {
  Rng rng(Seed() ^ 5);
  for (int i = 0; i < 200; ++i) {
    // Mix of raw garbage and valid frame bytes, so the fuzz also walks the
    // accept path and the boundary between consecutive frames.
    std::string stream;
    const int pieces = 1 + static_cast<int>(rng.NextBounded(6));
    for (int p = 0; p < pieces; ++p) {
      if (rng.NextBounded(2) == 0) {
        stream += RandomText(&rng, 64);
      } else {
        const auto type = static_cast<wire::FrameType>(1 + rng.NextBounded(3));
        stream += wire::EncodeFrame(type, static_cast<uint32_t>(rng.NextBounded(1u << 16)),
                                    RandomText(&rng, 96));
      }
    }
    // Truncate at a random point: mid-header, mid-payload, anywhere.
    if (!stream.empty() && rng.NextBounded(2) == 0) {
      stream.resize(rng.NextBounded(stream.size()));
    }

    wire::FrameDecoder decoder;
    size_t pos = 0;
    size_t frames = 0;
    bool dead = false;
    while (pos < stream.size() && !dead) {
      const size_t n = std::min<size_t>(1 + rng.NextBounded(48), stream.size() - pos);
      decoder.Append(std::string_view(stream).substr(pos, n));
      pos += n;
      for (;;) {
        const auto next = decoder.Next();
        if (!next.ok()) {
          EXPECT_FALSE(next.status().message().empty());
          // Latched: every later call reports the same corruption.
          EXPECT_FALSE(decoder.Next().ok());
          dead = true;
          break;
        }
        if (!next->has_value()) {
          break;
        }
        ++frames;
        EXPECT_LE((*next)->payload.size(), wire::kMaxFramePayload);
      }
    }
    EXPECT_LE(frames, static_cast<size_t>(pieces));
  }
}

// Random bytes through the control codec and the event-payload decoder:
// reject or accept, never crash. Event payloads additionally get valid
// prefixes with torn tails (the crash-truncation case).
TEST_P(ParserFuzz, ControlAndEventPayloadsNeverCrash) {
  Rng rng(Seed() ^ 6);
  for (int i = 0; i < 200; ++i) {
    const std::string bytes = RandomText(&rng, 160);
    const auto request = wire::DecodeControlRequest(bytes);
    if (!request.ok()) {
      EXPECT_FALSE(request.status().message().empty());
    }
    const auto response = wire::DecodeControlResponse(bytes);
    if (!response.ok()) {
      EXPECT_FALSE(response.status().message().empty());
    }
    const auto events = wire::DecodeEvents(bytes);
    if (!events.ok()) {
      EXPECT_FALSE(events.status().message().empty());
    }
  }

  std::vector<TraceEvent> events;
  for (int i = 0; i < 40; ++i) {
    TraceEvent e;
    e.seq = static_cast<uint64_t>(i);
    e.time = i * 1000;
    e.pid = 7;
    e.op = Op::kOpen;
    e.path = "/fz/f" + std::to_string(i % 5);
    e.fd = i;
    events.push_back(e);
  }
  const std::string valid = wire::EncodeEvents(events);
  for (int i = 0; i < 100; ++i) {
    const auto torn =
        wire::DecodeEvents(std::string_view(valid).substr(0, rng.NextBounded(valid.size())));
    if (!torn.ok()) {
      EXPECT_EQ(StatusCode::kDataLoss, torn.status().code());
    }
  }
}

// The zero-copy arena decoder against the legacy DecodeEvents on the same
// bytes: same accept/reject verdict, same typed error (code AND message —
// the arena reimplements the binary-trace scan, and its error surface must
// not drift), and identical decoded values on accepts. Inputs cover raw
// garbage, torn valid payloads (including dictionary-definition
// truncations), and bit flips inside the dictionary region.
TEST_P(ParserFuzz, ArenaDecodeMatchesLegacy) {
  Rng rng(Seed() ^ 7);
  wire::EventArena arena;  // reused across every Decode, like a shard's

  const auto check_parity = [&](std::string_view payload) {
    const auto legacy = wire::DecodeEvents(payload);
    const Status arena_status = arena.Decode(payload);
    ASSERT_EQ(legacy.ok(), arena_status.ok()) << "payload size " << payload.size();
    if (!legacy.ok()) {
      EXPECT_EQ(legacy.status().code(), arena_status.code());
      EXPECT_EQ(legacy.status().message(), arena_status.message());
      return;
    }
    const std::vector<InternedEvent>& got = arena.events();
    ASSERT_EQ(legacy->size(), got.size());
    for (size_t i = 0; i < got.size(); ++i) {
      const TraceEvent& want = (*legacy)[i];
      EXPECT_EQ(want.seq, got[i].seq) << i;
      EXPECT_EQ(want.time, got[i].time) << i;
      EXPECT_EQ(want.pid, got[i].pid) << i;
      EXPECT_EQ(want.uid, got[i].uid) << i;
      EXPECT_EQ(want.op, got[i].op) << i;
      EXPECT_EQ(want.status, got[i].status) << i;
      EXPECT_EQ(want.path, GlobalPaths().PathOf(got[i].path)) << i;
      EXPECT_EQ(want.path2, GlobalPaths().PathOf(got[i].path2)) << i;
      EXPECT_EQ(want.fd, got[i].fd) << i;
      EXPECT_EQ(want.write, got[i].write) << i;
      EXPECT_EQ(want.detail, got[i].detail) << i;
    }
  };

  // Raw garbage: both decoders must agree byte-for-byte on the rejection.
  for (int i = 0; i < 150; ++i) {
    check_parity(RandomText(&rng, 160));
  }

  // A valid payload with a path-heavy dictionary (every event defines a
  // new entry), truncated at every interesting point — including inside
  // dictionary definitions, the arena's trickiest region.
  std::vector<TraceEvent> events;
  for (int i = 0; i < 50; ++i) {
    TraceEvent e;
    e.seq = static_cast<uint64_t>(i);
    e.time = i * 1000;
    e.pid = 7;
    e.op = i % 7 == 3 ? Op::kRename : Op::kOpen;
    e.path = "/fz/arena-dict-" + std::to_string(i);  // always a fresh entry
    if (e.op == Op::kRename) {
      e.path2 = "/fz/renamed-" + std::to_string(i);
    }
    e.fd = i;
    events.push_back(e);
  }
  const std::string valid = wire::EncodeEvents(events);
  check_parity(valid);
  for (size_t cut = 0; cut < valid.size(); cut += 1 + rng.NextBounded(3)) {
    check_parity(std::string_view(valid).substr(0, cut));
  }

  // Bit flips in the dictionary region: non-dense ids, oversized lengths,
  // bad op/status bytes — whatever the flip lands on, the two decoders
  // must fail (or accept) identically.
  for (int i = 0; i < 150; ++i) {
    std::string mutated = valid;
    const int flips = 1 + static_cast<int>(rng.NextBounded(3));
    for (int f = 0; f < flips; ++f) {
      mutated[8 + rng.NextBounded(mutated.size() - 8)] ^=
          static_cast<char>(1 << rng.NextBounded(8));
    }
    check_parity(mutated);
  }
}

// NextView must hand out the same frames as Next under any chunking, with
// payload views that stay valid until the next Append — the contract the
// server's read loop leans on.
TEST_P(ParserFuzz, FrameViewMatchesOwnedFrameUnderRandomChunking) {
  Rng rng(Seed() ^ 8);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::string> payloads;
    std::string stream;
    const int count = 1 + static_cast<int>(rng.NextBounded(5));
    for (int p = 0; p < count; ++p) {
      payloads.push_back(RandomText(&rng, 3000));  // big enough to straddle reads
      stream += wire::EncodeFrame(wire::FrameType::kEvents,
                                  static_cast<uint32_t>(p + 1), payloads.back());
    }
    wire::FrameDecoder decoder;
    size_t pos = 0;
    size_t seen = 0;
    while (pos < stream.size()) {
      const size_t n = std::min<size_t>(1 + rng.NextBounded(512), stream.size() - pos);
      decoder.Append(std::string_view(stream).substr(pos, n));
      pos += n;
      for (;;) {
        const auto view = decoder.NextView();
        ASSERT_TRUE(view.ok()) << view.status().message();
        if (!view->has_value()) {
          break;
        }
        ASSERT_LT(seen, payloads.size());
        EXPECT_EQ(static_cast<uint32_t>(seen + 1), (*view)->channel);
        // The view must survive further NextView calls (no compaction
        // until Append) — compare after a copy taken now and again below.
        EXPECT_EQ(payloads[seen], (*view)->payload);
        ++seen;
      }
    }
    EXPECT_EQ(payloads.size(), seen);
    EXPECT_TRUE(decoder.AtFrameBoundary());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 4));

}  // namespace
}  // namespace seer
