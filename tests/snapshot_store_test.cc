// Crash-safety tests for the durability layer: FaultFs semantics, WAL
// round-trip and torn-tail handling, SnapshotStore checkpoint/recover/
// prune/verify, a kill-at-every-operation crash matrix, and the property
// that snapshot + WAL replay reproduces the in-memory correlator exactly.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/correlator.h"
#include "src/core/durable_correlator.h"
#include "src/core/snapshot_store.h"
#include "src/core/wal.h"
#include "src/util/fs.h"
#include "src/util/status.h"

namespace seer {
namespace {

PathId P(std::string_view path) { return GlobalPaths().Intern(path); }

FileReference Ref(Pid pid, const std::string& path, Time time) {
  FileReference r;
  r.pid = pid;
  r.kind = RefKind::kPoint;
  r.path = P(path);
  r.time = time;
  return r;
}

// Fresh, empty scratch directory under the test temp root.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "seer_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Feeds a small but representative event mix: two processes, a fork, a
// rename, a deletion, and an exclusion.
void FeedEvents(ReferenceSink* sink, int rounds, Time* t) {
  for (int pass = 0; pass < rounds; ++pass) {
    for (int proj = 0; proj < 2; ++proj) {
      for (int f = 0; f < 5; ++f) {
        sink->OnReference(Ref(proj + 1,
                              "/p" + std::to_string(proj) + "/f" + std::to_string(f),
                              *t += kMicrosPerSecond));
      }
    }
    sink->OnProcessFork(1, 100 + pass);
    sink->OnReference(Ref(100 + pass, "/p0/forked", *t += kMicrosPerSecond));
    sink->OnProcessExit(100 + pass);
  }
  sink->OnFileRenamed(P("/p0/f4"), P("/p0/f4-renamed"), *t += kMicrosPerSecond);
  sink->OnFileDeleted(P("/p1/f4"), *t += kMicrosPerSecond);
  sink->OnFileExcluded(P("/p1/f3"));
}

// --- FaultFs ---------------------------------------------------------------

TEST(FaultFs, CrashAtOpSuppressesTheOpAndAllLaterOnes) {
  const std::string dir = ScratchDir("faultfs_crash");
  RealFs real;
  ASSERT_TRUE(real.MakeDirs(dir).ok());
  FaultFs fs(&real, {.crash_at_op = 1});

  EXPECT_TRUE(fs.WriteFile(dir + "/a", "first").ok());   // op 0
  EXPECT_FALSE(fs.WriteFile(dir + "/b", "second").ok());  // op 1: crash, no write
  EXPECT_TRUE(fs.crashed());
  EXPECT_FALSE(fs.WriteFile(dir + "/c", "third").ok());  // post-crash: refused
  EXPECT_FALSE(fs.ReadFile(dir + "/a").ok());            // reads refused too

  EXPECT_TRUE(real.Exists(dir + "/a"));
  EXPECT_FALSE(real.Exists(dir + "/b"));
  EXPECT_FALSE(real.Exists(dir + "/c"));
}

TEST(FaultFs, ShortWritePersistsAPrefixThenCrashes) {
  const std::string dir = ScratchDir("faultfs_short");
  RealFs real;
  ASSERT_TRUE(real.MakeDirs(dir).ok());
  FaultFs fs(&real, {.short_write_at_op = 0, .short_write_fraction = 0.5});

  EXPECT_FALSE(fs.WriteFile(dir + "/torn", "0123456789").ok());
  EXPECT_TRUE(fs.crashed());

  const auto content = real.ReadFile(dir + "/torn");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "01234") << "half the payload should be on disk";
}

TEST(FaultFs, OpCountNumbersMutatingOps) {
  const std::string dir = ScratchDir("faultfs_count");
  RealFs real;
  ASSERT_TRUE(real.MakeDirs(dir).ok());
  FaultFs fs(&real);

  ASSERT_TRUE(fs.WriteFile(dir + "/a", "x").ok());
  ASSERT_TRUE(fs.AppendFile(dir + "/a", "y").ok());
  ASSERT_TRUE(fs.SyncFile(dir + "/a").ok());
  ASSERT_TRUE(fs.RenameFile(dir + "/a", dir + "/b").ok());
  EXPECT_EQ(fs.op_count(), 4u);
  EXPECT_FALSE(fs.crashed());
  // Reads are not mutating ops.
  ASSERT_TRUE(fs.ReadFile(dir + "/b").ok());
  EXPECT_EQ(fs.op_count(), 4u);
}

TEST(MemFs, SelfRenameIsANoOp) {
  MemFs fs;
  ASSERT_TRUE(fs.MakeDirs("/d").ok());
  ASSERT_TRUE(fs.WriteFile("/d/a", "payload").ok());
  ASSERT_TRUE(fs.RenameFile("/d/a", "/d/a").ok());
  const auto content = fs.ReadFile("/d/a");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "payload");
  // A missing source is still NotFound, even when from == to.
  EXPECT_FALSE(fs.RenameFile("/d/nope", "/d/nope").ok());
}

// --- WAL -------------------------------------------------------------------

TEST(Wal, RoundTripReplaysEveryRecord) {
  const std::string dir = ScratchDir("wal_roundtrip");
  RealFs fs;
  ASSERT_TRUE(fs.MakeDirs(dir).ok());

  WalWriter writer(&fs, dir + "/wal", 7);
  ASSERT_TRUE(writer.Create().ok());
  Correlator reference;
  Time t = 0;
  FeedEvents(&reference, 2, &t);
  t = 0;
  struct Tee : ReferenceSink {
    WalWriter* w;
    void OnReference(const FileReference& r) override { ASSERT_TRUE(w->AppendReference(r).ok()); }
    void OnProcessFork(Pid p, Pid c) override { ASSERT_TRUE(w->AppendFork(p, c).ok()); }
    void OnProcessExit(Pid p) override { ASSERT_TRUE(w->AppendExit(p).ok()); }
    void OnFileDeleted(PathId p, Time tm) override { ASSERT_TRUE(w->AppendDeleted(p, tm).ok()); }
    void OnFileRenamed(PathId f, PathId to, Time tm) override {
      ASSERT_TRUE(w->AppendRenamed(f, to, tm).ok());
    }
    void OnFileExcluded(PathId p) override { ASSERT_TRUE(w->AppendExcluded(p).ok()); }
  } tee;
  tee.w = &writer;
  FeedEvents(&tee, 2, &t);
  ASSERT_TRUE(writer.Sync().ok());
  EXPECT_GT(writer.records_logged(), 0u);

  const auto bytes = fs.ReadFile(dir + "/wal");
  ASSERT_TRUE(bytes.ok());
  Correlator replayed;
  const auto stats = ReplayWal(*bytes, &replayed);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->generation, 7u);
  EXPECT_EQ(stats->tail, WalReplayStats::Tail::kClean);
  EXPECT_GT(stats->paths_defined, 0u);
  EXPECT_EQ(stats->bytes_applied, bytes->size());

  // Replaying through the WAL must reproduce the direct-fed correlator.
  EXPECT_EQ(replayed.EncodeSnapshot(), reference.EncodeSnapshot());
}

TEST(Wal, TruncatedTailAppliesThePrefix) {
  const std::string dir = ScratchDir("wal_torn");
  RealFs fs;
  ASSERT_TRUE(fs.MakeDirs(dir).ok());
  WalWriter writer(&fs, dir + "/wal", 1);
  ASSERT_TRUE(writer.Create().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.AppendReference(Ref(1, "/t/f" + std::to_string(i), i + 1)).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  const auto full = fs.ReadFile(dir + "/wal");
  ASSERT_TRUE(full.ok());

  // Chop mid-record: replay applies whole records before the tear.
  const std::string torn = full->substr(0, full->size() - 3);
  Correlator sink;
  const auto stats = ReplayWal(torn, &sink);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->tail, WalReplayStats::Tail::kTorn);
  EXPECT_LT(stats->records_applied, writer.records_logged());
  EXPECT_GT(sink.references_processed(), 0u);
}

TEST(Wal, CrcDamagedFinalRecordIsATornTail) {
  const std::string dir = ScratchDir("wal_crc");
  RealFs fs;
  ASSERT_TRUE(fs.MakeDirs(dir).ok());
  WalWriter writer(&fs, dir + "/wal", 1);
  ASSERT_TRUE(writer.Create().ok());
  ASSERT_TRUE(writer.AppendReference(Ref(1, "/c/a", 1)).ok());
  ASSERT_TRUE(writer.AppendReference(Ref(1, "/c/b", 2)).ok());
  ASSERT_TRUE(writer.Sync().ok());
  auto bytes = fs.ReadFile(dir + "/wal");
  ASSERT_TRUE(bytes.ok());

  std::string damaged = *bytes;
  damaged.back() ^= 0x40;  // flip a payload bit in the final record
  const auto stats = ReplayWal(damaged, nullptr);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->tail, WalReplayStats::Tail::kTorn);
}

TEST(Wal, UnusableHeaderFailsOutright) {
  EXPECT_FALSE(ReplayWal("", nullptr).ok());
  EXPECT_FALSE(ReplayWal("NOTAWAL!\x01\x02\x03\x04\x05\x06\x07\x08", nullptr).ok());
}

TEST(Wal, CreateRefusesAnExistingFile) {
  const std::string dir = ScratchDir("wal_exists");
  RealFs fs;
  ASSERT_TRUE(fs.MakeDirs(dir).ok());
  ASSERT_TRUE(fs.WriteFile(dir + "/wal", "leftover").ok());
  WalWriter writer(&fs, dir + "/wal", 1);
  const Status status = writer.Create();
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

// --- SnapshotStore ---------------------------------------------------------

TEST(SnapshotStore, EmptyStoreRecoversFresh) {
  const std::string dir = ScratchDir("store_empty");
  RealFs fs;
  SnapshotStore store(&fs, dir);
  ASSERT_TRUE(store.Open().ok());
  const auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->fresh);
  EXPECT_EQ(recovered->generation, 0u);
  EXPECT_EQ(recovered->correlator->references_processed(), 0u);
  EXPECT_TRUE(store.Verify().ok());
}

TEST(SnapshotStore, CheckpointThenWalReplayRestoresEverything) {
  const std::string dir = ScratchDir("store_checkpoint");
  RealFs fs;
  SnapshotStore store(&fs, dir);
  ASSERT_TRUE(store.Open().ok());

  Correlator live;
  Time t = 0;
  FeedEvents(&live, 2, &t);
  auto checkpoint = store.Checkpoint(live);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  EXPECT_EQ(checkpoint->generation, 1u);

  // Post-checkpoint events go to the WAL only.
  for (int i = 0; i < 8; ++i) {
    const auto ref = Ref(1, "/after/f" + std::to_string(i), t += kMicrosPerSecond);
    live.OnReference(ref);
    ASSERT_TRUE(checkpoint->wal->AppendReference(ref).ok());
  }
  ASSERT_TRUE(checkpoint->wal->Sync().ok());

  const auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(recovered->fresh);
  EXPECT_EQ(recovered->generation, 1u);
  EXPECT_EQ(recovered->wal_records_replayed, 8u + /*path defs*/ 8u);
  EXPECT_EQ(recovered->correlator->EncodeSnapshot(), live.EncodeSnapshot());
  EXPECT_TRUE(store.Verify().ok());
}

TEST(SnapshotStore, FallsBackPastADamagedNewestSnapshot) {
  const std::string dir = ScratchDir("store_fallback");
  RealFs fs;
  SnapshotStore store(&fs, dir);
  ASSERT_TRUE(store.Open().ok());

  Correlator live;
  Time t = 0;
  FeedEvents(&live, 1, &t);
  auto first = store.Checkpoint(live);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->wal->Sync().ok());
  FeedEvents(&live, 1, &t);
  auto second = store.Checkpoint(live);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->wal->Sync().ok());

  // Maul snapshot 2; generation 1 plus its (empty) WALs must still load.
  auto snap2 = fs.ReadFile(store.SnapshotPath(2));
  ASSERT_TRUE(snap2.ok());
  ASSERT_TRUE(fs.WriteFile(store.SnapshotPath(2), snap2->substr(0, snap2->size() / 2)).ok());

  const auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->generation, 1u);
  EXPECT_EQ(recovered->snapshots_discarded, 1u);
  // WAL 1 is empty (checkpoint 2 happened right after), so the recovered
  // state is the generation-1 state.
  EXPECT_GT(recovered->correlator->references_processed(), 0u);
}

TEST(SnapshotStore, PruneKeepsTheNewestGenerations) {
  const std::string dir = ScratchDir("store_prune");
  RealFs fs;
  SnapshotStore store(&fs, dir, {.keep_generations = 2});
  ASSERT_TRUE(store.Open().ok());

  Correlator live;
  Time t = 0;
  for (int round = 0; round < 4; ++round) {
    FeedEvents(&live, 1, &t);
    auto checkpoint = store.Checkpoint(live);
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
    ASSERT_TRUE(checkpoint->wal->Sync().ok());
  }

  const auto snapshots = store.ListSnapshots();
  ASSERT_TRUE(snapshots.ok());
  EXPECT_EQ(*snapshots, (std::vector<uint64_t>{3, 4}));
  const auto wals = store.ListWals();
  ASSERT_TRUE(wals.ok());
  ASSERT_FALSE(wals->empty());
  EXPECT_GE(wals->front(), 3u) << "WALs older than the oldest kept snapshot go too";
  EXPECT_TRUE(store.Verify().ok());
}

TEST(SnapshotStore, AllSnapshotsDamagedIsDataLossNotFresh) {
  const std::string dir = ScratchDir("store_all_bad");
  RealFs fs;
  SnapshotStore store(&fs, dir);
  ASSERT_TRUE(store.Open().ok());
  Correlator live;
  Time t = 0;
  FeedEvents(&live, 1, &t);
  auto checkpoint = store.Checkpoint(live);
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_TRUE(fs.WriteFile(store.SnapshotPath(1), "garbage").ok());

  const auto recovered = store.Recover();
  ASSERT_FALSE(recovered.ok())
      << "silently starting fresh would erase the database";
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(store.Verify().ok());
}

TEST(SnapshotStore, WalsWithoutAnySnapshotAreDataLoss) {
  const std::string dir = ScratchDir("store_orphan_wal");
  RealFs fs;
  SnapshotStore store(&fs, dir);
  ASSERT_TRUE(store.Open().ok());
  WalWriter writer(&fs, store.WalPath(3), 3);
  ASSERT_TRUE(writer.Create().ok());
  ASSERT_TRUE(writer.AppendReference(Ref(1, "/orphan", 1)).ok());
  ASSERT_TRUE(writer.Sync().ok());

  const auto recovered = store.Recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(store.Verify().ok());
}

TEST(SnapshotStore, GetInfoDescribesEveryGeneration) {
  const std::string dir = ScratchDir("store_info");
  RealFs fs;
  SnapshotStore store(&fs, dir);
  ASSERT_TRUE(store.Open().ok());
  Correlator live;
  Time t = 0;
  FeedEvents(&live, 1, &t);
  auto checkpoint = store.Checkpoint(live);
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_TRUE(checkpoint->wal->AppendReference(Ref(1, "/x", t + 1)).ok());
  ASSERT_TRUE(checkpoint->wal->Sync().ok());

  const auto info = store.GetInfo();
  ASSERT_TRUE(info.ok()) << info.status();
  ASSERT_EQ(info->generations.size(), 1u);
  const auto& gen = info->generations[0];
  EXPECT_EQ(gen.generation, 1u);
  EXPECT_TRUE(gen.has_snapshot);
  EXPECT_TRUE(gen.snapshot_ok);
  EXPECT_GT(gen.snapshot_bytes, 0u);
  EXPECT_TRUE(gen.has_wal);
  EXPECT_EQ(gen.wal_records, 2u);  // path def + reference
  EXPECT_EQ(gen.wal_tail, WalReplayStats::Tail::kClean);
}

// --- DurableCorrelator + crash matrix --------------------------------------

// One deterministic daemon run against `fs`: open, observe, checkpoint,
// observe more, sync. Failure statuses are swallowed — with fault injection
// active, failing partway IS the scenario.
void RunScenario(Fs* fs, const std::string& dir) {
  auto durable = DurableCorrelator::Open(fs, dir);
  if (!durable.ok()) {
    return;  // crashed during open/recovery; whatever hit disk, hit disk
  }
  Time t = 0;
  FeedEvents((*durable).get(), 1, &t);
  (void)(*durable)->Checkpoint();
  FeedEvents((*durable).get(), 1, &t);
  (void)(*durable)->Sync();
}

TEST(CrashRecovery, KillAtEveryOperationLeavesARecoverableStore) {
  // Baseline: count the mutating ops a fault-free run performs.
  RealFs real;
  const std::string baseline_dir = ScratchDir("crash_baseline");
  FaultFs counter(&real);
  RunScenario(&counter, baseline_dir);
  const uint64_t total_ops = counter.op_count();
  ASSERT_FALSE(counter.crashed());
  ASSERT_GT(total_ops, 10u) << "scenario too small to be interesting";

  for (const bool short_write : {false, true}) {
    for (uint64_t k = 0; k < total_ops; ++k) {
      const std::string dir = ScratchDir(
          (short_write ? std::string("crash_short_") : std::string("crash_k_")) +
          std::to_string(k));
      FaultFs::Plan plan;
      if (short_write) {
        plan.short_write_at_op = k;
      } else {
        plan.crash_at_op = k;
      }
      FaultFs faulty(&real, plan);
      RunScenario(&faulty, dir);
      ASSERT_TRUE(faulty.crashed()) << "op " << k << " never happened";

      // The machine comes back up: recovery on the real fs must succeed
      // and the store must verify — at any kill point. (Open re-creates
      // the directory when the crash predated even that.)
      SnapshotStore store(&real, dir);
      ASSERT_TRUE(store.Open().ok());
      const auto recovered = store.Recover();
      ASSERT_TRUE(recovered.ok())
          << (short_write ? "short write" : "crash") << " at op " << k << ": "
          << recovered.status();
      EXPECT_TRUE(store.Verify().ok())
          << (short_write ? "short write" : "crash") << " at op " << k;
      // Whatever state came back must be internally consistent enough to
      // cluster and re-serialise.
      const ClusterSet clusters = recovered->correlator->BuildClusters();
      for (const Cluster& c : clusters.clusters) {
        EXPECT_FALSE(c.members.empty());
      }
      const auto reload = Correlator::DecodeSnapshot(recovered->correlator->EncodeSnapshot());
      ASSERT_TRUE(reload.ok()) << reload.status();
    }
  }
}

// Same matrix, but with enough checkpoints that the store holds base+delta
// chains: every kill point must leave either the new chain or the previous
// complete chain recoverable, and a torn (short-written) delta must fall
// back cleanly rather than poison recovery.
void RunDeltaScenario(Fs* fs, const std::string& dir) {
  SnapshotStoreOptions options;
  options.full_checkpoint_every = 3;  // genesis full, two deltas, full, ...
  auto durable = DurableCorrelator::Open(fs, dir, {}, options);
  if (!durable.ok()) {
    return;
  }
  Time t = 0;
  for (int round = 0; round < 4; ++round) {
    FeedEvents((*durable).get(), 1, &t);
    (void)(*durable)->Checkpoint();
  }
  FeedEvents((*durable).get(), 1, &t);
  (void)(*durable)->Sync();
}

TEST(CrashRecovery, KillAtEveryOperationWithDeltaChains) {
  RealFs real;
  const std::string baseline_dir = ScratchDir("chain_baseline");
  FaultFs counter(&real);
  RunDeltaScenario(&counter, baseline_dir);
  const uint64_t total_ops = counter.op_count();
  ASSERT_FALSE(counter.crashed());
  // The fault-free run must actually have produced deltas, or this matrix
  // tests nothing new.
  {
    SnapshotStore baseline(&real, baseline_dir);
    const auto files = baseline.ListSnapshotFiles();
    ASSERT_TRUE(files.ok());
    bool any_delta = false;
    for (const auto& f : *files) {
      any_delta |= f.delta;
    }
    ASSERT_TRUE(any_delta) << "scenario produced no delta checkpoints";
  }

  for (const bool short_write : {false, true}) {
    for (uint64_t k = 0; k < total_ops; ++k) {
      const std::string dir = ScratchDir(
          (short_write ? std::string("chain_short_") : std::string("chain_k_")) +
          std::to_string(k));
      FaultFs::Plan plan;
      if (short_write) {
        plan.short_write_at_op = k;  // torn file: partial bytes land
      } else {
        plan.crash_at_op = k;
      }
      FaultFs faulty(&real, plan);
      RunDeltaScenario(&faulty, dir);
      ASSERT_TRUE(faulty.crashed()) << "op " << k << " never happened";

      SnapshotStore store(&real, dir);
      ASSERT_TRUE(store.Open().ok());
      const auto recovered = store.Recover();
      ASSERT_TRUE(recovered.ok())
          << (short_write ? "short write" : "crash") << " at op " << k << ": "
          << recovered.status();
      EXPECT_TRUE(store.Verify().ok())
          << (short_write ? "short write" : "crash") << " at op " << k;
      const auto reload =
          Correlator::DecodeSnapshot(recovered->correlator->EncodeSnapshot());
      ASSERT_TRUE(reload.ok()) << reload.status();
    }
  }
}

// A delta torn after the fact (bit rot, not a crash mid-write) must fail
// verification loudly but fall back to the last complete chain on recovery;
// tearing the chain's base full discards every dependent delta head.
TEST(CrashRecovery, TornDeltaFallsBackToLastCompleteChain) {
  RealFs fs;
  const std::string dir = ScratchDir("torn_delta");
  SnapshotStoreOptions options;
  options.full_checkpoint_every = 3;
  std::string reference;
  {
    auto durable = DurableCorrelator::Open(&fs, dir, {}, options);
    ASSERT_TRUE(durable.ok()) << durable.status();
    Time t = 0;
    // Genesis full, then deltas at 2 and 3, a full at 4, a delta head at 5.
    for (int round = 0; round < 4; ++round) {
      FeedEvents((*durable).get(), 1, &t);
      ASSERT_TRUE((*durable)->Checkpoint().ok());
    }
  }

  SnapshotStore store(&fs, dir);
  const auto files = store.ListSnapshotFiles();
  ASSERT_TRUE(files.ok());
  ASSERT_TRUE(files->back().delta) << "head must be a delta for this test";
  const std::string head_path = store.DeltaPath(files->back().generation);
  const auto head_bytes = fs.ReadFile(head_path);
  ASSERT_TRUE(head_bytes.ok());

  // Truncate the head delta mid-file.
  ASSERT_TRUE(fs.WriteFile(head_path, head_bytes->substr(0, head_bytes->size() / 2)).ok());
  EXPECT_FALSE(store.Verify().ok()) << "a torn head chain must not verify";
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->snapshots_discarded, 1u);
  EXPECT_LT(recovered->generation, files->back().generation)
      << "recovery must land on the previous complete chain";
  reference = recovered->correlator->EncodeSnapshot();

  // Removing the torn head entirely yields the same state.
  ASSERT_TRUE(fs.RemoveFile(head_path).ok());
  recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->correlator->EncodeSnapshot(), reference);

  // Now tear the base full: every delta chained on it becomes useless, so
  // recovery keeps discarding heads until a self-contained snapshot (the
  // genesis full) is reached.
  std::string full_path;
  for (const auto& f : *files) {
    if (!f.delta) {
      full_path = store.SnapshotPath(f.generation);  // newest full
    }
  }
  ASSERT_FALSE(full_path.empty());
  const auto full_bytes = fs.ReadFile(full_path);
  ASSERT_TRUE(full_bytes.ok());
  ASSERT_TRUE(fs.WriteFile(full_path, full_bytes->substr(0, full_bytes->size() / 3)).ok());
  recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_GT(recovered->snapshots_discarded, 0u);
}

TEST(DurableCorrelator, RecoveredStateIsByteIdenticalToNeverCrashed) {
  RealFs fs;
  const std::string dir = ScratchDir("durable_identity");

  // Reference: the same events fed to a plain in-memory correlator, in the
  // same two slices the durable instance will see.
  Correlator reference;
  Time t = 0;
  FeedEvents(&reference, 1, &t);
  FeedEvents(&reference, 2, &t);

  {
    auto durable = DurableCorrelator::Open(&fs, dir);
    ASSERT_TRUE(durable.ok()) << durable.status();
    Time dt = 0;
    FeedEvents((*durable).get(), 1, &dt);
    ASSERT_TRUE((*durable)->Checkpoint().ok());  // snapshot mid-stream
    FeedEvents((*durable).get(), 2, &dt);
    ASSERT_TRUE((*durable)->Sync().ok());  // tail lives only in the WAL
    ASSERT_TRUE((*durable)->wal_status().ok());
    // The live instance matches the reference before any recovery.
    ASSERT_EQ((*durable)->correlator().EncodeSnapshot(), reference.EncodeSnapshot());
  }

  // "Crash" (drop the instance without a final checkpoint) and recover:
  // snapshot + WAL replay must reproduce the reference byte-for-byte.
  SnapshotStore store(&fs, dir);
  const auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_GT(recovered->wal_records_replayed, 0u);
  EXPECT_EQ(recovered->correlator->EncodeSnapshot(), reference.EncodeSnapshot());

  // And the behavioural check: identical clustering.
  const ClusterSet a = reference.BuildClusters();
  const ClusterSet b = recovered->correlator->BuildClusters();
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].members, b.clusters[i].members) << i;
  }
}

TEST(DurableCorrelator, ReopenResumesAcrossRuns) {
  RealFs fs;
  const std::string dir = ScratchDir("durable_reopen");
  Correlator reference;
  Time t = 0;

  // Three successive runs, each observing a slice and exiting uncleanly
  // (no final checkpoint — only Sync).
  Time dt = 0;
  for (int run = 0; run < 3; ++run) {
    auto durable = DurableCorrelator::Open(&fs, dir);
    ASSERT_TRUE(durable.ok()) << "run " << run << ": " << durable.status();
    EXPECT_EQ((*durable)->open_stats().fresh, run == 0);
    FeedEvents((*durable).get(), 1, &dt);
    ASSERT_TRUE((*durable)->Sync().ok());
  }
  for (int run = 0; run < 3; ++run) {
    FeedEvents(&reference, 1, &t);
  }

  auto final_open = DurableCorrelator::Open(&fs, dir);
  ASSERT_TRUE(final_open.ok()) << final_open.status();
  EXPECT_EQ((*final_open)->correlator().EncodeSnapshot(), reference.EncodeSnapshot());
}

}  // namespace
}  // namespace seer
