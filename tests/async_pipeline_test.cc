// Tests for the asynchronous observer-to-correlator pipeline.
#include "src/core/async_pipeline.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace seer {
namespace {

FileReference Ref(Pid pid, RefKind kind, const std::string& path, Time time) {
  FileReference r;
  r.pid = pid;
  r.kind = kind;
  r.path = GlobalPaths().Intern(path);
  r.time = time;
  return r;
}

TEST(AsyncCorrelator, MatchesSynchronousCorrelator) {
  SeerParams params;
  Correlator sync(params, 99);
  AsyncCorrelator async(params, 99);

  Time t = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (int f = 0; f < 10; ++f) {
      const FileReference ref = Ref(1, RefKind::kPoint, "/p/f" + std::to_string(f),
                                    t += kMicrosPerSecond);
      sync.OnReference(ref);
      async.OnReference(ref);
    }
  }
  const PathId f9 = GlobalPaths().Intern("/p/f9");
  sync.OnFileDeleted(f9, t);
  async.OnFileDeleted(f9, t);

  async.Drain();
  EXPECT_EQ(async.KnownFiles(), sync.files().size());
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < 9; ++j) {
      EXPECT_EQ(async.Distance("/p/f" + std::to_string(i), "/p/f" + std::to_string(j)),
                sync.Distance("/p/f" + std::to_string(i), "/p/f" + std::to_string(j)));
    }
  }
  const ClusterSet a = async.BuildClusters();
  const ClusterSet b = sync.BuildClusters();
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].members, b.clusters[i].members);
  }
}

TEST(AsyncCorrelator, BackpressureWithTinyQueue) {
  // Capacity 2: producers must block rather than drop; everything still
  // arrives.
  AsyncCorrelator async(SeerParams{}, 1, /*queue_capacity=*/2);
  for (int i = 0; i < 500; ++i) {
    async.OnReference(Ref(1, RefKind::kPoint, "/q/f" + std::to_string(i % 7), i + 1));
  }
  async.Drain();
  EXPECT_EQ(async.enqueued(), 500u);
  EXPECT_EQ(async.processed(), 500u);
  EXPECT_LE(async.high_watermark(), 2u);
  EXPECT_EQ(async.KnownFiles(), 7u);
}

TEST(AsyncCorrelator, ConcurrentProducers) {
  AsyncCorrelator async;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::vector<std::thread> producers;
  for (int p = 0; p < kThreads; ++p) {
    producers.emplace_back([&async, p] {
      // Each producer is its own "process": per-process streams keep the
      // interleaving from mattering.
      for (int i = 0; i < kPerThread; ++i) {
        async.OnReference(Ref(100 + p, RefKind::kPoint,
                              "/t" + std::to_string(p) + "/f" + std::to_string(i % 5),
                              static_cast<Time>(p) * 1'000'000 + i + 1));
      }
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  async.Drain();
  EXPECT_EQ(async.processed(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(async.KnownFiles(), static_cast<size_t>(kThreads * 5));
  // Within each producer's namespace the files relate.
  EXPECT_GE(async.Distance("/t0/f0", "/t0/f1"), 0.0);
}

TEST(AsyncCorrelator, DrainWaitsForEverything) {
  AsyncCorrelator async;
  for (int i = 0; i < 2'000; ++i) {
    async.OnReference(Ref(1, RefKind::kPoint, "/d/f" + std::to_string(i % 11), i + 1));
  }
  async.Drain();
  EXPECT_EQ(async.processed(), async.enqueued());
}

TEST(AsyncCorrelator, DestructorDrainsOutstandingWork) {
  size_t known = 0;
  {
    AsyncCorrelator async;
    for (int i = 0; i < 300; ++i) {
      async.OnReference(Ref(1, RefKind::kPoint, "/x/f" + std::to_string(i % 13), i + 1));
    }
    // No explicit Drain: the destructor must finish the queue, not drop it.
    known = 13;
  }
  SUCCEED() << known;
}

TEST(AsyncCorrelator, LifecycleMessagesInOrder) {
  AsyncCorrelator async;
  async.OnReference(Ref(1, RefKind::kPoint, "/p/parent", 1));
  async.OnProcessFork(1, 2);
  async.OnReference(Ref(2, RefKind::kPoint, "/p/child", 2));
  async.OnProcessExit(2);
  async.OnReference(Ref(1, RefKind::kPoint, "/p/after", 3));
  async.Drain();
  // The child's history merged into the parent before /p/after was seen,
  // so the child file relates to the later parent reference.
  EXPECT_GE(async.Distance("/p/child", "/p/after"), 0.0);
}

TEST(AsyncCorrelator, QueryRunsUnderLock) {
  AsyncCorrelator async;
  for (int i = 0; i < 50; ++i) {
    async.OnReference(Ref(1, RefKind::kPoint, "/p/f" + std::to_string(i % 3), i + 1));
  }
  const size_t processed = async.Query([](const Correlator& c) { return c.files().size(); });
  EXPECT_EQ(processed, 3u);
}

}  // namespace
}  // namespace seer
