// Multi-tenant isolation and determinism.
//
// The contract of the tenant-routed server plane (src/server): interleaving
// any number of tenants over one shared ThreadPool — with checkpoints,
// budget evictions, and transparent restores mixed into the stream — leaves
// every tenant's correlator byte-identical (EncodeSnapshot) to a standalone
// single-instance Correlator fed the same events serially, at any thread
// count. Each tenant's store directory must remain an ordinary
// single-instance store readable without the router.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "src/core/correlator.h"
#include "src/core/snapshot_store.h"
#include "src/server/tenant_router.h"
#include "src/util/fs.h"

namespace seer {
namespace {

PathId P(const std::string& path) { return GlobalPaths().Intern(path); }

IngestEvent RefEvent(Pid pid, RefKind kind, const std::string& path, Time time) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kReference;
  e.ref.pid = pid;
  e.ref.kind = kind;
  e.ref.path = P(path);
  e.ref.time = time;
  return e;
}

void ApplySerial(ReferenceSink* sink, const std::vector<IngestEvent>& events) {
  for (const IngestEvent& e : events) {
    switch (e.kind) {
      case IngestEvent::Kind::kReference:
        sink->OnReference(e.ref);
        break;
      case IngestEvent::Kind::kFork:
        sink->OnProcessFork(e.parent, e.child);
        break;
      case IngestEvent::Kind::kExit:
        sink->OnProcessExit(e.child);
        break;
      case IngestEvent::Kind::kDeleted:
        sink->OnFileDeleted(e.path, e.time);
        break;
      case IngestEvent::Kind::kRenamed:
        sink->OnFileRenamed(e.path, e.path2, e.time);
        break;
      case IngestEvent::Kind::kExcluded:
        sink->OnFileExcluded(e.path);
        break;
    }
  }
}

// Randomized per-tenant trace: references dominate, every barrier kind
// appears. All tenants draw from the SAME path universe — the process-wide
// interner is shared across tenants, so colliding PathIds are exactly the
// case isolation must survive.
std::vector<IngestEvent> TenantTrace(uint32_t seed, size_t count) {
  std::mt19937 rng(seed);
  std::vector<IngestEvent> events;
  events.reserve(count);

  std::vector<std::string> paths;
  for (int i = 0; i < 32; ++i) {
    paths.push_back("/mt/f" + std::to_string(i));
  }
  std::vector<Pid> pids = {1, 2, 3};
  Pid next_pid = 100;
  Time time = 0;

  auto rand_path = [&]() -> const std::string& { return paths[rng() % paths.size()]; };
  auto rand_pid = [&]() { return pids[rng() % pids.size()]; };

  for (size_t i = 0; i < count; ++i) {
    time += kMicrosPerSecond / 4;
    const uint32_t roll = rng() % 100;
    if (roll < 88) {
      const uint32_t kind_roll = rng() % 10;
      const RefKind kind = kind_roll < 4   ? RefKind::kBegin
                           : kind_roll < 7 ? RefKind::kEnd
                                           : RefKind::kPoint;
      events.push_back(RefEvent(rand_pid(), kind, rand_path(), time));
    } else if (roll < 92) {
      IngestEvent e;
      e.kind = IngestEvent::Kind::kFork;
      e.parent = rand_pid();
      e.child = next_pid++;
      pids.push_back(e.child);
      events.push_back(e);
    } else if (roll < 95 && pids.size() > 2) {
      const size_t victim = rng() % pids.size();
      IngestEvent e;
      e.kind = IngestEvent::Kind::kExit;
      e.child = pids[victim];
      pids.erase(pids.begin() + victim);
      events.push_back(e);
    } else if (roll < 98) {
      IngestEvent e;
      e.kind = IngestEvent::Kind::kDeleted;
      e.path = P(rand_path());
      e.time = time;
      events.push_back(e);
    } else {
      IngestEvent e;
      e.kind = IngestEvent::Kind::kExcluded;
      e.path = P(rand_path());
      events.push_back(e);
    }
  }
  return events;
}

SeerParams ChurnParams() {
  SeerParams p;
  p.max_neighbors = 4;
  p.distance_horizon = 20;
  p.delete_delay = 3;
  p.aging_updates = 500;
  return p;
}

// The standalone oracle: one plain Correlator fed the trace serially.
std::string StandaloneSnapshot(const std::vector<IngestEvent>& events) {
  Correlator standalone(ChurnParams());
  ApplySerial(&standalone, events);
  return standalone.EncodeSnapshot();
}

// Delivers each tenant's trace through its router sink, round-robin in
// pseudo-random chunk sizes, so tenants genuinely interleave on the shared
// pool. Optionally calls `tick` between chunks.
void Interleave(TenantRouter* router, const std::vector<std::vector<IngestEvent>>& traces,
                uint32_t seed, const std::function<void(size_t chunk_index)>& between = {}) {
  std::vector<ReferenceSink*> sinks;
  std::vector<size_t> cursor(traces.size(), 0);
  for (size_t t = 0; t < traces.size(); ++t) {
    sinks.push_back(router->SinkFor(static_cast<TenantId>(t + 1)));
  }
  std::mt19937 rng(seed);
  size_t chunk_index = 0;
  bool remaining = true;
  while (remaining) {
    remaining = false;
    for (size_t t = 0; t < traces.size(); ++t) {
      const std::vector<IngestEvent>& trace = traces[t];
      if (cursor[t] >= trace.size()) {
        continue;
      }
      const size_t n = std::min<size_t>(1 + rng() % 97, trace.size() - cursor[t]);
      const std::vector<IngestEvent> chunk(trace.begin() + cursor[t],
                                           trace.begin() + cursor[t] + n);
      ApplySerial(sinks[t], chunk);
      cursor[t] += n;
      if (cursor[t] < trace.size()) {
        remaining = true;
      }
      if (between) {
        between(chunk_index++);
      }
    }
  }
}

TenantRouterConfig BaseConfig(int threads) {
  TenantRouterConfig config;
  config.defaults = ChurnParams();
  config.threads = threads;
  return config;
}

TEST(TenantRouter, InterleavedTenantsMatchStandaloneAcrossThreadCounts) {
  constexpr size_t kTenants = 6;
  std::vector<std::vector<IngestEvent>> traces;
  std::vector<std::string> want;
  for (size_t t = 0; t < kTenants; ++t) {
    traces.push_back(TenantTrace(0x7e00 + static_cast<uint32_t>(t), 900));
    want.push_back(StandaloneSnapshot(traces.back()));
  }

  for (const int threads : {1, 2, 8}) {
    MemFs fs;
    TenantRouter router(&fs, "/srv", BaseConfig(threads));
    Interleave(&router, traces, 0xC0FFEE + static_cast<uint32_t>(threads));
    ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();
    for (size_t t = 0; t < kTenants; ++t) {
      const auto correlator = router.CorrelatorFor(static_cast<TenantId>(t + 1));
      ASSERT_TRUE(correlator.ok());
      EXPECT_EQ(want[t], (*correlator)->EncodeSnapshot())
          << "tenant=" << t + 1 << " threads=" << threads;
    }
  }
}

TEST(TenantRouter, EvictRestoreCyclePreservesByteIdentity) {
  constexpr size_t kTenants = 5;
  std::vector<std::vector<IngestEvent>> traces;
  std::vector<std::string> want;
  for (size_t t = 0; t < kTenants; ++t) {
    traces.push_back(TenantTrace(0xE7 + static_cast<uint32_t>(t), 700));
    want.push_back(StandaloneSnapshot(traces[t]));
  }

  for (const int threads : {1, 8}) {
    MemFs fs;
    TenantRouter router(&fs, "/srv", BaseConfig(threads));
    // Evict a rotating victim mid-stream; its next chunk transparently
    // restores it (seal -> snapshot -> release -> recover).
    Interleave(&router, traces, 0xBEEF, [&](size_t chunk) {
      if (chunk % 3 == 0) {
        const TenantId victim = static_cast<TenantId>(1 + chunk % kTenants);
        ASSERT_TRUE(router.EvictTenant(victim).ok());
      }
    });
    ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();
    EXPECT_GT(router.evictions(), 0u);
    EXPECT_GT(router.restores(), 0u);
    for (size_t t = 0; t < kTenants; ++t) {
      const auto correlator = router.CorrelatorFor(static_cast<TenantId>(t + 1));
      ASSERT_TRUE(correlator.ok());
      EXPECT_EQ(want[t], (*correlator)->EncodeSnapshot())
          << "tenant=" << t + 1 << " threads=" << threads;
    }
  }
}

TEST(TenantRouter, ShutdownLeavesStandaloneReadableStores) {
  constexpr size_t kTenants = 4;
  std::vector<std::vector<IngestEvent>> traces;
  std::vector<std::string> want;
  for (size_t t = 0; t < kTenants; ++t) {
    traces.push_back(TenantTrace(0x51a + static_cast<uint32_t>(t), 600));
    want.push_back(StandaloneSnapshot(traces[t]));
  }

  MemFs fs;
  {
    TenantRouter router(&fs, "/srv", BaseConfig(4));
    Interleave(&router, traces, 0xD1CE);
    ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();
    ASSERT_TRUE(router.Shutdown().ok());
    EXPECT_EQ(0u, router.resident_tenants());
  }

  // Each tenant directory is an ordinary single-instance store: recover it
  // with no router involved and compare bytes.
  const auto tenants = SnapshotStore::ListTenants(&fs, "/srv");
  ASSERT_TRUE(tenants.ok());
  ASSERT_EQ(kTenants, tenants->size());
  for (size_t t = 0; t < kTenants; ++t) {
    EXPECT_EQ(static_cast<TenantId>(t + 1), (*tenants)[t]);
    SnapshotStore store(&fs, SnapshotStore::TenantDirectory("/srv", (*tenants)[t]));
    const auto recovered = store.Recover(ChurnParams());
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    EXPECT_EQ(want[t], recovered->correlator->EncodeSnapshot()) << "tenant=" << t + 1;
  }
}

TEST(TenantRouter, MemoryBudgetBoundsResidentTenants) {
  constexpr size_t kTenants = 12;
  constexpr size_t kMaxResident = 4;
  std::vector<std::vector<IngestEvent>> traces;
  std::vector<std::string> want;
  for (size_t t = 0; t < kTenants; ++t) {
    traces.push_back(TenantTrace(0xAB + static_cast<uint32_t>(t), 350));
    want.push_back(StandaloneSnapshot(traces[t]));
  }

  MemFs fs;
  TenantRouterConfig config = BaseConfig(4);
  config.max_resident_tenants = kMaxResident;
  TenantRouter router(&fs, "/srv", config);
  Time now = 0;
  Interleave(&router, traces, 0xFEED, [&](size_t chunk) {
    if (chunk % 4 == 0) {
      now += kMicrosPerSecond;
      ASSERT_TRUE(router.Tick(now).ok());
      EXPECT_LE(router.resident_tenants(), kMaxResident);
    }
  });
  ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();
  ASSERT_TRUE(router.Tick(now + kMicrosPerSecond).ok());
  EXPECT_LE(router.resident_tenants(), kMaxResident);
  EXPECT_GT(router.evictions(), 0u);

  // Budget pressure must never bend the state: every tenant — evicted and
  // restored who knows how many times — still matches its standalone run.
  for (size_t t = 0; t < kTenants; ++t) {
    const auto correlator = router.CorrelatorFor(static_cast<TenantId>(t + 1));
    ASSERT_TRUE(correlator.ok());
    EXPECT_EQ(want[t], (*correlator)->EncodeSnapshot()) << "tenant=" << t + 1;
  }
}

TEST(TenantRouter, StaggeredSchedulerBoundsInflightCheckpoints) {
  constexpr size_t kTenants = 10;
  std::vector<std::vector<IngestEvent>> traces;
  for (size_t t = 0; t < kTenants; ++t) {
    traces.push_back(TenantTrace(0x9a + static_cast<uint32_t>(t), 250));
  }

  MemFs fs;
  TenantRouterConfig config = BaseConfig(4);
  config.checkpoint_interval = kMicrosPerSecond;  // everyone is soon due
  config.max_checkpoints_inflight = 2;
  TenantRouter router(&fs, "/srv", config);
  Interleave(&router, traces, 0x7ead);
  ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();

  Time now = 0;
  for (int tick = 0; tick < 200 && router.checkpoints_harvested() < kTenants; ++tick) {
    now += kMicrosPerSecond;
    ASSERT_TRUE(router.Tick(now).ok());
    EXPECT_LE(router.checkpoints_inflight(), config.max_checkpoints_inflight);
    // Deterministic progress: block until the started pair completes, so
    // the next tick has free slots (Tick itself never blocks).
    ASSERT_TRUE(router.DrainCheckpoints().ok());
  }
  EXPECT_GE(router.checkpoints_harvested(), kTenants);
  EXPECT_EQ(router.checkpoints_inflight(),
            router.checkpoints_started() - router.checkpoints_harvested());
  EXPECT_EQ(router.seal_stall_micros().size(),
            std::min<uint64_t>(router.checkpoints_harvested(), TenantRouter::kSealStallWindow));
}

TEST(TenantRouter, HoardDaemonRefillsOnRouterCadence) {
  MemFs fs;
  TenantRouterConfig config = BaseConfig(2);
  config.hoard_budget_bytes = 1 << 20;
  config.hoard_interval = kMicrosPerSecond;
  config.size_of = [](PathId) -> uint64_t { return 4096; };
  TenantRouter router(&fs, "/srv", config);

  std::vector<std::vector<IngestEvent>> traces;
  traces.push_back(TenantTrace(0x40a, 500));
  Interleave(&router, traces, 0x111);
  // A strong investigated relation guarantees at least one project for the
  // refill's cluster pass to hoard (as in hoard_daemon_test).
  {
    const auto correlator = router.CorrelatorFor(1);
    ASSERT_TRUE(correlator.ok());
    for (int i = 0; i < 3; ++i) {
      InvestigatedRelation rel;
      rel.files = {"/mt/f0", "/mt/f1"};
      rel.strength = 50.0;
      (*correlator)->AddInvestigatedRelation(rel);
    }
  }
  ASSERT_TRUE(router.Tick(10 * kMicrosPerSecond).ok());

  const auto stats = router.Stats(1);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->resident);
  EXPECT_EQ(1u, stats->refills);
  EXPECT_GT(stats->hoard_files, 0u);
  EXPECT_GT(stats->references, 0u);
  EXPECT_GT(stats->memory_bytes, 0u);
}

TEST(TenantRouter, TenantDirectoryLayout) {
  EXPECT_EQ("/srv/tenant-00000007", SnapshotStore::TenantDirectory("/srv", 7));
  EXPECT_EQ("/srv/tenant-12345678", SnapshotStore::TenantDirectory("/srv", 12345678));
  // Ids >= 1e8 outgrow the %08u padding; the directory name simply widens
  // and ListTenants must still round-trip the full uint32 range.
  EXPECT_EQ("/srv/tenant-123456789", SnapshotStore::TenantDirectory("/srv", 123456789));
  EXPECT_EQ("/srv/tenant-4294967294", SnapshotStore::TenantDirectory("/srv", 4294967294u));

  MemFs fs;
  ASSERT_TRUE(fs.MakeDirs("/srv/tenant-00000003").ok());
  ASSERT_TRUE(fs.MakeDirs("/srv/tenant-00000001").ok());
  ASSERT_TRUE(fs.MakeDirs("/srv/tenant-123456789").ok());
  ASSERT_TRUE(fs.MakeDirs("/srv/tenant-4294967294").ok());
  ASSERT_TRUE(fs.MakeDirs("/srv/not-a-tenant").ok());
  ASSERT_TRUE(fs.MakeDirs("/srv/tenant-junk").ok());
  ASSERT_TRUE(fs.MakeDirs("/srv/tenant-99999999999").ok());  // > 10 digits: not a tenant
  const auto tenants = SnapshotStore::ListTenants(&fs, "/srv");
  ASSERT_TRUE(tenants.ok());
  EXPECT_EQ((std::vector<TenantId>{1, 3, 123456789, 4294967294u}), *tenants);

  const auto empty = SnapshotStore::ListTenants(&fs, "/absent");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(TenantRouter, InvalidTenantIdNeverMaterialisesAStore) {
  MemFs fs;
  TenantRouter router(&fs, "/srv", BaseConfig(1));
  ReferenceSink* sink = router.SinkFor(kInvalidTenantId);
  ASSERT_NE(nullptr, sink);
  sink->OnReference(FileReference{1, RefKind::kPoint, P("/mt/f0"), kMicrosPerSecond, false});
  EXPECT_FALSE(router.last_error().ok());
  EXPECT_FALSE(fs.Exists(SnapshotStore::TenantDirectory("/srv", kInvalidTenantId)));
  EXPECT_FALSE(router.CorrelatorFor(kInvalidTenantId).ok());
  EXPECT_FALSE(router.CheckpointTenant(kInvalidTenantId).ok());
}

TEST(TenantRouter, TickSurvivesPersistentEvictionFailure) {
  // Count the mutating ops a clean two-tenant ingest performs, then replay
  // the identical ingest over a filesystem that fails every op afterwards
  // (a disk gone read-only). The eviction pass must give up for the tick —
  // returning the error instead of re-selecting the same unevictable
  // victim forever — and must not debit resident_bytes for memory that
  // was never freed.
  std::vector<std::vector<IngestEvent>> traces;
  traces.push_back(TenantTrace(0xF00, 300));
  traces.push_back(TenantTrace(0xF01, 300));

  TenantRouterConfig config = BaseConfig(1);
  config.max_resident_tenants = 1;

  uint64_t clean_ops = 0;
  {
    MemFs mem;
    FaultFs counting(&mem);
    TenantRouter router(&counting, "/srv", config);
    Interleave(&router, traces, 0x5eed);
    ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();
    clean_ops = counting.op_count();
  }

  MemFs mem;
  FaultFs::Plan plan;
  plan.crash_at_op = clean_ops;  // the first post-ingest write fails, forever
  FaultFs fs(&mem, plan);
  TenantRouter router(&fs, "/srv", config);
  Interleave(&router, traces, 0x5eed);
  ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();

  const Status ticked = router.Tick(kMicrosPerSecond);
  EXPECT_FALSE(ticked.ok());
  EXPECT_EQ(0u, router.evictions());
  EXPECT_EQ(2u, router.resident_tenants());
  uint64_t sum = 0;
  for (const TenantId tenant : {TenantId{1}, TenantId{2}}) {
    const auto stats = router.Stats(tenant);
    ASSERT_TRUE(stats.ok());
    EXPECT_TRUE(stats->resident);
    sum += stats->memory_bytes;
  }
  EXPECT_EQ(router.resident_bytes(), sum);
}

TEST(TenantRouter, SinkAddressStableAcrossEviction) {
  MemFs fs;
  TenantRouter router(&fs, "/srv", BaseConfig(2));
  ReferenceSink* sink = router.SinkFor(42);
  ASSERT_NE(nullptr, sink);
  EXPECT_EQ(sink, router.SinkFor(42));

  std::vector<std::vector<IngestEvent>> traces;
  sink->OnReference(FileReference{1, RefKind::kPoint, P("/mt/f0"), kMicrosPerSecond, false});
  ASSERT_TRUE(router.EvictTenant(42).ok());
  EXPECT_EQ(sink, router.SinkFor(42));  // address survives eviction
  // Next event transparently restores the tenant.
  sink->OnReference(FileReference{1, RefKind::kPoint, P("/mt/f1"), 2 * kMicrosPerSecond, false});
  ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();
  const auto stats = router.Stats(42);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->resident);
  EXPECT_EQ(1u, stats->evictions);
  EXPECT_EQ(1u, stats->restores);
  EXPECT_EQ(2u, stats->references);
}

}  // namespace
}  // namespace seer
