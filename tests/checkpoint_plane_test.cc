// Tests for the stall-free checkpoint plane: versioned section format (v1
// compat, v2 framing), thread-count-invariant parallel encode, delta
// chain recovery byte-equality against the serial full path, async
// begin/finish checkpointing, and per-section damage diagnosis.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/correlator.h"
#include "src/core/durable_correlator.h"
#include "src/core/snapshot_codec.h"
#include "src/core/snapshot_store.h"
#include "src/util/fs.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace seer {
namespace {

PathId P(std::string_view path) { return GlobalPaths().Intern(path); }

FileReference Ref(Pid pid, const std::string& path, Time time) {
  FileReference r;
  r.pid = pid;
  r.kind = RefKind::kPoint;
  r.path = P(path);
  r.time = time;
  return r;
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "seer_ckpt_plane_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// A deterministic pseudo-random event mix: many processes over many files
// with forks, exits, renames, deletions, and exclusions sprinkled in, so
// every section of the snapshot carries real weight.
void FeedRandomEvents(ReferenceSink* sink, std::mt19937* rng, int events, Time* t) {
  std::uniform_int_distribution<int> file_dist(0, 199);
  std::uniform_int_distribution<int> pid_dist(1, 12);
  std::uniform_int_distribution<int> kind_dist(0, 99);
  for (int i = 0; i < events; ++i) {
    const int k = kind_dist(*rng);
    const std::string path = "/w/d" + std::to_string(file_dist(*rng) % 17) + "/f" +
                             std::to_string(file_dist(*rng));
    if (k < 88) {
      sink->OnReference(Ref(pid_dist(*rng), path, *t += kMicrosPerSecond));
    } else if (k < 92) {
      const Pid parent = pid_dist(*rng);
      sink->OnProcessFork(parent, 1000 + i);
      sink->OnReference(Ref(1000 + i, path, *t += kMicrosPerSecond));
      sink->OnProcessExit(1000 + i);
    } else if (k < 95) {
      sink->OnFileRenamed(P(path), P(path + ".moved" + std::to_string(i)),
                          *t += kMicrosPerSecond);
    } else if (k < 98) {
      sink->OnFileDeleted(P(path), *t += kMicrosPerSecond);
    } else {
      sink->OnFileExcluded(P(path));
    }
  }
}

// --- format compatibility ---------------------------------------------------

TEST(CheckpointPlane, V1SnapshotStillDecodes) {
  Correlator original;
  Time t = 0;
  std::mt19937 rng(7);
  FeedRandomEvents(&original, &rng, 400, &t);

  const std::string v1 = original.EncodeSnapshotLegacyV1();
  ASSERT_EQ(v1.substr(0, 8), "SEERSNP1");
  const auto decoded = Correlator::DecodeSnapshot(v1);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  // The state a v1 snapshot restores re-encodes (v2) exactly like the
  // original state does: nothing was lost or invented in translation.
  EXPECT_EQ((*decoded)->EncodeSnapshot(), original.EncodeSnapshot());
}

TEST(CheckpointPlane, V2FullRoundTripsByteIdentically) {
  Correlator original;
  Time t = 0;
  std::mt19937 rng(11);
  FeedRandomEvents(&original, &rng, 600, &t);

  const std::string v2 = original.EncodeSnapshot();
  ASSERT_EQ(v2.substr(0, 8), "SEERSNP2");
  const auto decoded = Correlator::DecodeSnapshot(v2);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ((*decoded)->EncodeSnapshot(), v2);
}

TEST(CheckpointPlane, EncodeIsThreadCountInvariant) {
  Correlator correlator;
  Time t = 0;
  std::mt19937 rng(13);
  FeedRandomEvents(&correlator, &rng, 800, &t);

  const SealedSnapshot seal = correlator.SealSnapshot();
  const std::string serial = EncodeSealedSnapshot(seal, nullptr);
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(EncodeSealedSnapshot(seal, &pool), serial)
        << "encode diverged at " << threads << " threads";
  }
}

TEST(CheckpointPlane, MetaDescribesTheSnapshot) {
  Correlator correlator;
  Time t = 0;
  correlator.OnReference(Ref(1, "/m/a", t += kMicrosPerSecond));
  correlator.OnReference(Ref(1, "/m/b", t += kMicrosPerSecond));

  const auto meta = ReadSnapshotMeta(correlator.EncodeSnapshot());
  ASSERT_TRUE(meta.ok()) << meta.status();
  EXPECT_EQ(meta->version, 2u);
  EXPECT_FALSE(meta->delta);
  EXPECT_EQ(meta->file_count, correlator.files().size());

  const auto v1_meta = ReadSnapshotMeta(correlator.EncodeSnapshotLegacyV1());
  ASSERT_TRUE(v1_meta.ok()) << v1_meta.status();
  EXPECT_EQ(v1_meta->version, 1u);
}

// --- delta chains vs the serial full path -----------------------------------

// The core property of the delta plane: recovering base + deltas from the
// store reproduces, byte for byte, the state the serial full encode
// describes — across randomized workloads and decode thread counts.
TEST(CheckpointPlane, DeltaChainRecoveryMatchesFullSnapshot) {
  RealFs fs;
  for (const uint32_t seed : {3u, 17u, 29u}) {
    const std::string dir = ScratchDir("chain_eq_" + std::to_string(seed));
    SnapshotStoreOptions options;
    options.full_checkpoint_every = 4;
    auto opened = DurableCorrelator::Open(&fs, dir, {}, options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    DurableCorrelator& durable = **opened;

    std::mt19937 rng(seed);
    Time t = 0;
    std::uniform_int_distribution<int> burst(50, 300);
    for (int round = 0; round < 6; ++round) {
      FeedRandomEvents(&durable, &rng, burst(rng), &t);
      ASSERT_TRUE(durable.Checkpoint().ok()) << "seed " << seed << " round " << round;
    }
    const std::string live = durable.correlator().EncodeSnapshot();

    // The store's own recovery (nothing in the WAL after the last
    // checkpoint, so this is pure chain folding).
    const auto recovered = durable.store().Recover();
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ(recovered->correlator->EncodeSnapshot(), live) << "seed " << seed;

    // And the chain decode directly, at several thread counts.
    const auto files = durable.store().ListSnapshotFiles();
    ASSERT_TRUE(files.ok());
    size_t first = files->size() - 1;
    while ((*files)[first].delta) {
      ASSERT_GT(first, 0u);
      --first;
    }
    ASSERT_LT(first, files->size() - 1) << "workload produced no delta chain";
    std::vector<std::string> chain_bytes;
    for (size_t k = first; k < files->size(); ++k) {
      const auto& info = (*files)[k];
      const auto bytes = fs.ReadFile(info.delta ? durable.store().DeltaPath(info.generation)
                                                : durable.store().SnapshotPath(info.generation));
      ASSERT_TRUE(bytes.ok());
      chain_bytes.push_back(*bytes);
    }
    const std::vector<std::string_view> views(chain_bytes.begin(), chain_bytes.end());
    for (const int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      const auto folded = Correlator::DecodeSnapshotChain(views, &pool);
      ASSERT_TRUE(folded.ok()) << folded.status();
      EXPECT_EQ((*folded)->EncodeSnapshot(), live)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// A WAL tail on top of a delta-chain head must replay too.
TEST(CheckpointPlane, ChainPlusWalTailRecoversEverything) {
  RealFs fs;
  const std::string dir = ScratchDir("chain_wal_tail");
  SnapshotStoreOptions options;
  options.full_checkpoint_every = 3;
  auto opened = DurableCorrelator::Open(&fs, dir, {}, options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  DurableCorrelator& durable = **opened;

  std::mt19937 rng(41);
  Time t = 0;
  for (int round = 0; round < 4; ++round) {
    FeedRandomEvents(&durable, &rng, 150, &t);
    ASSERT_TRUE(durable.Checkpoint().ok());
  }
  FeedRandomEvents(&durable, &rng, 120, &t);  // tail: only in the WAL
  ASSERT_TRUE(durable.Sync().ok());
  const std::string live = durable.correlator().EncodeSnapshot();

  const auto recovered = durable.store().Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_GT(recovered->wal_records_replayed, 0u);
  EXPECT_EQ(recovered->correlator->EncodeSnapshot(), live);
}

// --- async checkpointing ----------------------------------------------------

TEST(CheckpointPlane, AsyncCheckpointOverlapsIngest) {
  RealFs fs;
  const std::string dir = ScratchDir("async");
  auto opened = DurableCorrelator::Open(&fs, dir);
  ASSERT_TRUE(opened.ok()) << opened.status();
  DurableCorrelator& durable = **opened;

  std::mt19937 rng(5);
  Time t = 0;
  FeedRandomEvents(&durable, &rng, 500, &t);

  const uint64_t before = durable.generation();
  ASSERT_TRUE(durable.BeginCheckpoint().ok());
  EXPECT_TRUE(durable.checkpoint_in_flight());
  EXPECT_GT(durable.generation(), before) << "WAL rotates before the encode finishes";

  // Ingest keeps going while the encode/write runs behind us; these events
  // land in the new generation's WAL.
  FeedRandomEvents(&durable, &rng, 300, &t);
  ASSERT_TRUE(durable.Sync().ok());
  const std::string live = durable.correlator().EncodeSnapshot();

  ASSERT_TRUE(durable.FinishCheckpoint().ok());
  EXPECT_FALSE(durable.checkpoint_in_flight());
  const CheckpointStats& stats = durable.last_checkpoint_stats();
  EXPECT_EQ(stats.generation, durable.generation());
  EXPECT_TRUE(stats.delta) << "rides the genesis full written by Open()";
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GT(stats.delta_ratio, 0.0);

  // Recovery folds the async snapshot plus the WAL tail written during it.
  const auto recovered = durable.store().Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->correlator->EncodeSnapshot(), live);
  EXPECT_TRUE(durable.store().Verify().ok());
}

TEST(CheckpointPlane, BeginCheckpointSettlesThePreviousOne) {
  RealFs fs;
  const std::string dir = ScratchDir("async_chain");
  SnapshotStoreOptions options;
  options.full_checkpoint_every = 4;
  auto opened = DurableCorrelator::Open(&fs, dir, {}, options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  DurableCorrelator& durable = **opened;

  std::mt19937 rng(23);
  Time t = 0;
  for (int round = 0; round < 5; ++round) {
    FeedRandomEvents(&durable, &rng, 200, &t);
    ASSERT_TRUE(durable.BeginCheckpoint().ok()) << "round " << round;
  }
  ASSERT_TRUE(durable.FinishCheckpoint().ok());
  // Back-to-back Begins produced a healthy base+delta store.
  const auto files = durable.store().ListSnapshotFiles();
  ASSERT_TRUE(files.ok());
  bool any_delta = false;
  for (const auto& f : *files) {
    any_delta |= f.delta;
  }
  EXPECT_TRUE(any_delta);
  EXPECT_TRUE(durable.store().Verify(/*deep=*/true).ok());

  const std::string live = durable.correlator().EncodeSnapshot();
  const auto recovered = durable.store().Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->correlator->EncodeSnapshot(), live);
}

// --- damage diagnosis -------------------------------------------------------

TEST(CheckpointPlane, VerifyNamesTheDamagedSection) {
  Correlator correlator;
  Time t = 0;
  std::mt19937 rng(31);
  FeedRandomEvents(&correlator, &rng, 300, &t);
  std::string bytes = correlator.EncodeSnapshot();

  const auto sections = snapshot_internal::ParseSections(bytes);
  ASSERT_TRUE(sections.ok()) << sections.status();
  ASSERT_GT(sections->size(), 3u);
  // Flip one payload byte of the third section; the error must name it by
  // fourcc and ordinal, not just "corrupt".
  const auto& victim = (*sections)[2];
  ASSERT_FALSE(victim.payload.empty());
  const size_t offset = static_cast<size_t>(victim.payload.data() - bytes.data());
  bytes[offset] ^= 0x40;

  const Status status = VerifySnapshotSections(bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bad crc in section"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find(snapshot_internal::FourCc(victim.tag)), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("#2"), std::string::npos) << status.message();
}

TEST(CheckpointPlane, StoreVerifyReportsDamagedChainFile) {
  RealFs fs;
  const std::string dir = ScratchDir("verify_deep");
  SnapshotStoreOptions options;
  options.full_checkpoint_every = 3;
  auto opened = DurableCorrelator::Open(&fs, dir, {}, options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  DurableCorrelator& durable = **opened;
  std::mt19937 rng(37);
  Time t = 0;
  // Genesis full, deltas at 2/3, full at 4, delta head at 5 — so the
  // newest chain is full-4 + delta-5 and damaging the head delta breaks it.
  for (int round = 0; round < 4; ++round) {
    FeedRandomEvents(&durable, &rng, 150, &t);
    ASSERT_TRUE(durable.Checkpoint().ok());
  }
  ASSERT_TRUE(durable.store().Verify(/*deep=*/true).ok());

  // Damage a delta in the newest chain: shallow Verify (which folds the
  // newest chain) and deep Verify must both fail, naming a section.
  const auto files = durable.store().ListSnapshotFiles();
  ASSERT_TRUE(files.ok());
  std::string delta_path;
  for (const auto& f : *files) {
    if (f.delta) {
      delta_path = durable.store().DeltaPath(f.generation);
    }
  }
  ASSERT_FALSE(delta_path.empty());
  auto bytes = fs.ReadFile(delta_path);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = *bytes;
  damaged[damaged.size() / 2] ^= 0x01;
  ASSERT_TRUE(fs.WriteFile(delta_path, damaged).ok());

  const Status shallow = durable.store().Verify();
  EXPECT_FALSE(shallow.ok());
  const Status deep = durable.store().Verify(/*deep=*/true);
  EXPECT_FALSE(deep.ok());
  // Recovery still works — it falls back past the damaged head.
  const auto recovered = durable.store().Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_GT(recovered->snapshots_discarded, 0u);
}

}  // namespace
}  // namespace seer
