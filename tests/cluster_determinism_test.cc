// Determinism guarantees of the parallel/incremental clustering engine:
//
//   * the ClusterSet is bit-identical at any thread count (scoring is
//     parallel but pure per-edge; the union/emit order is fixed);
//   * an incremental rebuild (cached edge buckets, dirty-set rescore, label
//     replay) produces exactly what a from-scratch full build produces,
//     including across deletes, renames, and exclusions;
//   * the kn/kf two-threshold semantics (combine vs overlap) survive the
//     flat-structure engine when driven through real relation-table rows
//     rather than the investigated-pair side channel.
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/clustering.h"
#include "src/core/correlator.h"

namespace seer {
namespace {

bool SameClusterSet(const ClusterSet& a, const ClusterSet& b) {
  if (a.clusters.size() != b.clusters.size()) {
    return false;
  }
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    if (a.clusters[i].members != b.clusters[i].members) {
      return false;
    }
  }
  return a.membership_offset == b.membership_offset && a.membership_ids == b.membership_ids;
}

// One recorded event stream, replayable into any number of correlators so
// every instance sees byte-identical input.
struct Event {
  enum Kind { kRef, kDelete, kRename, kExclude } kind = kRef;
  Pid pid = 0;
  PathId path = kInvalidPathId;
  PathId to = kInvalidPathId;
  Time time = 0;
};

void Apply(Correlator* c, const std::vector<Event>& events) {
  for (const Event& e : events) {
    switch (e.kind) {
      case Event::kRef: {
        FileReference ref;
        ref.pid = e.pid;
        ref.kind = RefKind::kPoint;
        ref.path = e.path;
        ref.time = e.time;
        c->OnReference(ref);
        break;
      }
      case Event::kDelete:
        c->OnFileDeleted(e.path, e.time);
        break;
      case Event::kRename:
        c->OnFileRenamed(e.path, e.to, e.time);
        break;
      case Event::kExclude:
        c->OnFileExcluded(e.path);
        break;
    }
  }
}

PathId StreamPath(const std::string& ns, int i) {
  return GlobalPaths().Intern("/" + ns + "/p" + std::to_string(i / 12) + "/f" +
                              std::to_string(i % 12));
}

// A deterministic randomized reference round: `count` references over
// `files` paths spread across a handful of process streams.
std::vector<Event> RandomRefs(std::mt19937* rng, const std::string& ns, int files, int count,
                              Time* t) {
  std::uniform_int_distribution<int> file_dist(0, files - 1);
  std::uniform_int_distribution<int> pid_dist(1, 6);
  std::vector<Event> events;
  events.reserve(count);
  for (int i = 0; i < count; ++i) {
    Event e;
    e.kind = Event::kRef;
    e.pid = static_cast<Pid>(pid_dist(*rng));
    e.path = StreamPath(ns, file_dist(*rng));
    e.time = (*t += 500);
    events.push_back(e);
  }
  return events;
}

// Identical streams into builders pinned at 1, 2, and 8 threads must yield
// identical ClusterSets — on the cold build and on a warm incremental one.
TEST(ClusterDeterminism, ThreadCountInvariance) {
  std::mt19937 rng(20260806);
  Time t = 0;
  const std::vector<Event> cold = RandomRefs(&rng, "tc", 96, 700, &t);
  const std::vector<Event> touch = RandomRefs(&rng, "tc", 96, 30, &t);

  Correlator serial;
  Correlator two;
  Correlator eight;
  serial.SetClusterThreads(1);
  two.SetClusterThreads(2);
  eight.SetClusterThreads(8);

  for (Correlator* c : {&serial, &two, &eight}) {
    Apply(c, cold);
  }
  const ClusterSet cold1 = serial.BuildClusters();
  const ClusterSet cold2 = two.BuildClusters();
  const ClusterSet cold8 = eight.BuildClusters();
  ASSERT_FALSE(cold1.clusters.empty());
  EXPECT_TRUE(SameClusterSet(cold1, cold2));
  EXPECT_TRUE(SameClusterSet(cold1, cold8));

  for (Correlator* c : {&serial, &two, &eight}) {
    Apply(c, touch);
  }
  const ClusterSet warm1 = serial.BuildClusters();
  const ClusterSet warm2 = two.BuildClusters();
  const ClusterSet warm8 = eight.BuildClusters();
  EXPECT_TRUE(SameClusterSet(warm1, warm2));
  EXPECT_TRUE(SameClusterSet(warm1, warm8));
}

// Two correlators over the same randomized stream — one rebuilding
// incrementally, one forced to rescore everything — must agree after every
// round, including rounds with deletions, renames, and exclusions (the
// events that invalidate cached rows, candidate sets, and component
// labels). At least one round must actually take the incremental path, or
// the test would only be comparing full builds with themselves — so the
// stream has project locality (as real workloads do): a fully random
// stream dirties most of the table and always falls back to a full pass.
TEST(ClusterDeterminism, IncrementalMatchesFullAcrossRandomizedRounds) {
  std::mt19937 rng(97);
  Time t = 0;
  const int kFiles = 180;   // 15 projects of 12 files
  const int kProject = 12;

  Correlator incremental;
  Correlator scratch;
  scratch.SetIncrementalClustering(false);

  // Cold phase: one process stream per project, two passes — dense
  // in-project relations, none across projects.
  std::vector<Event> cold;
  for (int pass = 0; pass < 2; ++pass) {
    for (int f = 0; f < kFiles; ++f) {
      Event e;
      e.kind = Event::kRef;
      e.pid = static_cast<Pid>(1 + f / kProject);
      e.path = StreamPath("if", f);
      e.time = (t += 500);
      cold.push_back(e);
    }
  }
  Apply(&incremental, cold);
  Apply(&scratch, cold);
  EXPECT_TRUE(SameClusterSet(incremental.BuildClusters(), scratch.BuildClusters()));

  bool any_incremental = false;
  std::uniform_int_distribution<int> file_dist(0, kFiles - 1);
  std::uniform_int_distribution<int> project_dist(0, kFiles / kProject - 1);
  for (int round = 0; round < 10; ++round) {
    // A burst of work inside one randomly chosen project.
    const int base = project_dist(rng) * kProject;
    std::uniform_int_distribution<int> local(0, kProject - 1);
    std::vector<Event> events;
    for (int i = 0; i < 8; ++i) {
      Event e;
      e.kind = Event::kRef;
      e.pid = static_cast<Pid>(1 + base / kProject);
      e.path = StreamPath("if", base + local(rng));
      e.time = (t += 500);
      events.push_back(e);
    }
    if (round % 2 == 1) {
      Event del;
      del.kind = Event::kDelete;
      del.path = StreamPath("if", file_dist(rng));
      del.time = (t += 500);
      events.push_back(del);
    }
    if (round % 3 == 2) {
      Event ren;
      ren.kind = Event::kRename;
      ren.path = StreamPath("if", file_dist(rng));
      ren.to = GlobalPaths().Intern("/if/moved/r" + std::to_string(round));
      ren.time = (t += 500);
      events.push_back(ren);
    }
    if (round % 4 == 3) {
      Event ex;
      ex.kind = Event::kExclude;
      ex.path = StreamPath("if", file_dist(rng));
      events.push_back(ex);
    }
    Apply(&incremental, events);
    Apply(&scratch, events);

    const ClusterSet got = incremental.BuildClusters();
    const ClusterSet want = scratch.BuildClusters();
    EXPECT_TRUE(SameClusterSet(got, want)) << "round " << round;
    any_incremental = any_incremental || incremental.last_cluster_stats().incremental;
  }
  EXPECT_TRUE(any_incremental);
}

// kn/kf semantics through real relation rows: A and B share three live
// neighbors (>= kn: their clusters combine), C shares two with B (>= kf:
// overlap without merging). Everything flows through the flat engine —
// interned rows, packed buckets, CSR membership.
TEST(ClusterDeterminism, KfOverlapThroughRelationTable) {
  SeerParams params;
  params.cluster_near = 3;
  params.cluster_far = 2;
  params.dir_distance_weight = 0.0;
  FileTable files;
  RelationTable relations(params, &files);
  ClusterBuilder builder(params, &files, &relations);

  auto id = [&](const std::string& name) {
    return files.Intern(GlobalPaths().Intern("/kf/" + name));
  };
  const FileId a = id("A");
  const FileId b = id("B");
  const FileId c = id("C");
  const FileId n1 = id("N1");
  const FileId n2 = id("N2");
  const FileId n3 = id("N3");

  // row(A) = {B, N1, N2, N3}; row(B) = {A, N1, N2, N3}: 3 shared -> near.
  relations.Observe(a, b, 0.5);
  relations.Observe(b, a, 0.5);
  for (const FileId n : {n1, n2, n3}) {
    relations.Observe(a, n, 0.5);
    relations.Observe(b, n, 0.5);
  }
  // row(C) = {B, N2, N3}: shares {N2, N3} with row(B) -> far.
  relations.Observe(c, b, 0.5);
  relations.Observe(c, n2, 0.5);
  relations.Observe(c, n3, 0.5);

  const ClusterSet set = builder.Build(files.LiveIds());
  EXPECT_EQ(set.ClustersOf(a).size(), 1u);
  EXPECT_EQ(set.ClustersOf(b).size(), 2u);  // its own cluster + C's
  EXPECT_EQ(set.ClustersOf(c).size(), 2u);  // its own cluster + {A,B}'s

  // The combined cluster holds A, B, and (by far-overlap) C.
  bool found_abc = false;
  for (const uint32_t ci : set.ClustersOf(a)) {
    const std::vector<FileId>& m = set.clusters[ci].members;
    found_abc = found_abc || (m.size() == 3 && m[0] == a && m[1] == b && m[2] == c);
  }
  EXPECT_TRUE(found_abc);
}

}  // namespace
}  // namespace seer
