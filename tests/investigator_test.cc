// Tests for external investigators (Sections 3.2, 3.3.3).
#include "src/core/investigator.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace seer {
namespace {

class InvestigatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_.MkdirAll("/home/u/proj");
    fs_.CreateFile("/home/u/proj/main.c", 0);
    fs_.CreateFile("/home/u/proj/util.h", 0);
    fs_.CreateFile("/home/u/proj/io.h", 0);
    fs_.WriteContent("/home/u/proj/main.c",
                     "#include \"util.h\"\n"
                     "#include \"io.h\"\n"
                     "#include <stdio.h>\n"
                     "int main() { return 0; }\n");
  }
  SimFilesystem fs_;
};

TEST_F(InvestigatorTest, ParseIncludesQuotedOnly) {
  const auto includes = IncludeScanner::ParseIncludes(
      "#include \"a.h\"\n"
      "  #  include   \"sub/b.h\"\n"
      "#include <system.h>\n"
      "// #include \"commented-out.h\" is skipped (line starts with //)\n"
      "int x;\n");
  ASSERT_GE(includes.size(), 2u);
  EXPECT_EQ(includes[0], "a.h");
  EXPECT_EQ(includes[1], "sub/b.h");
  EXPECT_TRUE(std::find(includes.begin(), includes.end(), "system.h") == includes.end());
}

TEST_F(InvestigatorTest, IncludeScannerFindsRelations) {
  IncludeScanner scanner(4.0);
  const auto relations = scanner.Investigate(
      fs_, {"/home/u/proj/main.c", "/home/u/proj/util.h", "/home/u/proj/io.h"});
  ASSERT_EQ(relations.size(), 1u);
  const auto& rel = relations[0];
  EXPECT_DOUBLE_EQ(rel.strength, 4.0);
  ASSERT_EQ(rel.files.size(), 3u);
  EXPECT_EQ(rel.files[0], "/home/u/proj/main.c");
  EXPECT_TRUE(std::find(rel.files.begin(), rel.files.end(), "/home/u/proj/util.h") !=
              rel.files.end());
  EXPECT_TRUE(std::find(rel.files.begin(), rel.files.end(), "/home/u/proj/io.h") !=
              rel.files.end());
}

TEST_F(InvestigatorTest, IncludeScannerSkipsMissingTargets) {
  fs_.CreateFile("/home/u/proj/dangling.c", 0);
  fs_.WriteContent("/home/u/proj/dangling.c", "#include \"ghost.h\"\n");
  IncludeScanner scanner;
  const auto relations = scanner.Investigate(fs_, {"/home/u/proj/dangling.c"});
  EXPECT_TRUE(relations.empty());  // no existing target -> no relation
}

TEST_F(InvestigatorTest, IncludeScannerIgnoresNonSources) {
  fs_.CreateFile("/home/u/proj/data.txt", 0);
  fs_.WriteContent("/home/u/proj/data.txt", "#include \"util.h\"\n");
  IncludeScanner scanner;
  EXPECT_TRUE(scanner.Investigate(fs_, {"/home/u/proj/data.txt"}).empty());
}

TEST_F(InvestigatorTest, MakefileParseRules) {
  const auto rules = MakefileInvestigator::ParseRules(
      "# comment\n"
      "prog: main.o util.o\n"
      "\tcc -o prog main.o util.o\n"
      "main.o: main.c util.h\n"
      "\tcc -c main.c\n"
      ".PHONY: clean\n"
      "clean:\n"
      "\trm -f *.o\n");
  ASSERT_EQ(rules.size(), 3u);  // prog, main.o, clean (.PHONY skipped)
  EXPECT_EQ(rules[0].first, "prog");
  EXPECT_EQ(rules[0].second, (std::vector<std::string>{"main.o", "util.o"}));
  EXPECT_EQ(rules[1].first, "main.o");
  EXPECT_EQ(rules[2].first, "clean");
  EXPECT_TRUE(rules[2].second.empty());
}

TEST_F(InvestigatorTest, MakefileInvestigatorBuildsGroups) {
  fs_.CreateFile("/home/u/proj/Makefile", 0);
  fs_.CreateFile("/home/u/proj/main.o", 0);
  fs_.WriteContent("/home/u/proj/Makefile",
                   "main.o: main.c util.h\n"
                   "\tcc -c main.c\n");
  MakefileInvestigator inv(6.0);
  const auto relations = inv.Investigate(fs_, {"/home/u/proj/Makefile"});
  ASSERT_EQ(relations.size(), 1u);
  const auto& files = relations[0].files;
  // Makefile + target + both deps.
  EXPECT_EQ(files.size(), 4u);
  EXPECT_EQ(files[0], "/home/u/proj/Makefile");
}

TEST_F(InvestigatorTest, MakefileInvestigatorOnlyReadsMakefiles) {
  MakefileInvestigator inv;
  EXPECT_TRUE(inv.Investigate(fs_, {"/home/u/proj/main.c"}).empty());
}

TEST_F(InvestigatorTest, HotLinkParse) {
  const auto links = HotLinkInvestigator::ParseLinks(
      "Title page\n"
      "LINK: figures/plot1.fig\n"
      "  LINK: /abs/target.dat\n"
      "LINK:\n"
      "not a LINK: line\n");
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], "figures/plot1.fig");
  EXPECT_EQ(links[1], "/abs/target.dat");
}

TEST_F(InvestigatorTest, HotLinkInvestigatorResolvesTargets) {
  fs_.MkdirAll("/home/u/doc");
  fs_.CreateFile("/home/u/doc/report.ms", 0);
  fs_.CreateFile("/home/u/doc/fig1.fig", 500);
  fs_.WriteContent("/home/u/doc/report.ms",
                   "LINK: fig1.fig\n"
                   "LINK: missing.fig\n"
                   "body text\n");
  HotLinkInvestigator inv(5.0);
  const auto relations = inv.Investigate(fs_, {"/home/u/doc/report.ms"});
  ASSERT_EQ(relations.size(), 1u);
  ASSERT_EQ(relations[0].files.size(), 2u);
  EXPECT_EQ(relations[0].files[0], "/home/u/doc/report.ms");
  EXPECT_EQ(relations[0].files[1], "/home/u/doc/fig1.fig");
  EXPECT_DOUBLE_EQ(relations[0].strength, 5.0);
}

TEST_F(InvestigatorTest, HotLinkInvestigatorSkipsPlainFiles) {
  HotLinkInvestigator inv;
  EXPECT_TRUE(inv.Investigate(fs_, {"/home/u/proj/main.c"}).empty())
      << "no LINK: markers, no relation";
}

}  // namespace
}  // namespace seer
