// Tests for peer-to-peer anti-entropy reconciliation (the RUMOR model).
#include "src/replication/gossip.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace seer {
namespace {

TEST(Gossip, PairwiseUpdatePropagates) {
  GossipNetwork net(2);
  net.Update(0, "/a");
  net.ReconcilePair(0, 1);
  EXPECT_TRUE(net.Converged("/a"));
  EXPECT_EQ(net.Version(1, "/a").Get(0), 1u);
}

TEST(Gossip, EpidemicPropagationThroughRing) {
  GossipNetwork net(5);
  net.Update(2, "/a");
  const int sweeps = net.SweepsToConverge(10);
  ASSERT_GT(sweeps, 0);
  for (ReplicaId r = 0; r < 5; ++r) {
    EXPECT_EQ(net.Version(r, "/a").Get(2), 1u) << r;
  }
}

TEST(Gossip, ConcurrentUpdatesResolveOnce) {
  GossipNetwork net(4);
  net.Update(0, "/a");
  net.Update(3, "/a");
  const int sweeps = net.SweepsToConverge(10);
  ASSERT_GT(sweeps, 0);
  EXPECT_EQ(net.stats().conflicts_detected, 1u)
      << "the resolution event must dominate everywhere; no re-conflicts";
  EXPECT_EQ(net.stats().conflicts_resolved, 1u);
}

TEST(Gossip, ResolutionIsDeterministic) {
  // Same updates, two reconciliation orders, same final version.
  GossipNetwork a(3);
  a.Update(0, "/f");
  a.Update(2, "/f");
  a.ReconcilePair(0, 2);  // conflict here

  GossipNetwork b(3);
  b.Update(0, "/f");
  b.Update(2, "/f");
  b.ReconcilePair(2, 0);  // opposite direction

  EXPECT_EQ(a.Version(0, "/f").ToString(), b.Version(0, "/f").ToString());
}

TEST(Gossip, ManyFilesManyReplicasConverge) {
  GossipNetwork net(8);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    net.Update(static_cast<ReplicaId>(rng.NextBounded(8)),
               "/f" + std::to_string(rng.NextBounded(40)));
  }
  const int sweeps = net.SweepsToConverge(20);
  EXPECT_GT(sweeps, 0);
  EXPECT_TRUE(net.FullyConverged());
  EXPECT_EQ(net.KnownFiles().size(), net.KnownFiles().size());
  EXPECT_EQ(net.stats().conflicts_detected, net.stats().conflicts_resolved);
}

TEST(Gossip, ConvergenceNeedsAtMostReplicaCountSweeps) {
  // Ring anti-entropy moves information at least one hop per sweep in each
  // direction, so N replicas converge within N sweeps.
  for (int n = 2; n <= 9; ++n) {
    GossipNetwork net(n);
    net.Update(0, "/a");
    const int sweeps = net.SweepsToConverge(n);
    EXPECT_GT(sweeps, 0) << "n=" << n;
  }
}

TEST(Gossip, InterleavedUpdatesAndReconciles) {
  GossipNetwork net(3);
  net.Update(0, "/a");
  net.ReconcilePair(0, 1);
  net.Update(1, "/a");  // builds on the propagated version: NOT a conflict
  net.ReconcilePair(1, 2);
  net.ReconcilePair(0, 1);
  EXPECT_EQ(net.stats().conflicts_detected, 0u);
  EXPECT_TRUE(net.FullyConverged());
  EXPECT_EQ(net.Version(2, "/a").Get(0), 1u);
  EXPECT_EQ(net.Version(2, "/a").Get(1), 1u);
}

TEST(Gossip, UnknownFileVersionIsEmpty) {
  GossipNetwork net(2);
  EXPECT_TRUE(net.Version(0, "/nope").Empty());
  EXPECT_TRUE(net.FullyConverged());  // vacuously
}

}  // namespace
}  // namespace seer
