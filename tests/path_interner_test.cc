// Tests for the process-wide path interner: the single point where path
// strings become PathIds on the observer boundary.
#include "src/util/path_interner.h"

#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace seer {
namespace {

TEST(PathInterner, AssignsDenseIdsInFirstSightOrder) {
  PathInterner interner;
  const PathId a = interner.Intern("/a");
  const PathId b = interner.Intern("/b");
  const PathId c = interner.Intern("/c");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(PathInterner, InternIsIdempotent) {
  PathInterner interner;
  const PathId first = interner.Intern("/home/u/proj/main.c");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(interner.Intern("/home/u/proj/main.c"), first);
  }
  EXPECT_EQ(interner.size(), 1u);
}

TEST(PathInterner, FindDoesNotCreate) {
  PathInterner interner;
  EXPECT_EQ(interner.Find("/missing"), kInvalidPathId);
  EXPECT_EQ(interner.size(), 0u);
  const PathId id = interner.Intern("/present");
  EXPECT_EQ(interner.Find("/present"), id);
}

TEST(PathInterner, PathOfRoundTrips) {
  PathInterner interner;
  const PathId id = interner.Intern("/docs/My Report.doc");
  EXPECT_EQ(interner.PathOf(id), "/docs/My Report.doc");
  EXPECT_TRUE(interner.PathOf(kInvalidPathId).empty());
  EXPECT_TRUE(interner.PathOf(999).empty());
}

// The contract the whole data plane relies on: views handed out early stay
// valid as the table grows (append-only storage never moves strings).
TEST(PathInterner, ViewsStableAcrossGrowth) {
  PathInterner interner;
  const PathId first = interner.Intern("/stable/view");
  const std::string_view early = interner.PathOf(first);
  const char* early_data = early.data();
  for (int i = 0; i < 10'000; ++i) {
    interner.Intern("/filler/" + std::to_string(i));
  }
  const std::string_view late = interner.PathOf(first);
  EXPECT_EQ(late.data(), early_data);
  EXPECT_EQ(late, "/stable/view");
}

// Concurrent interning of the same and of disjoint paths: one id per
// spelling, no id handed out twice. This is the observer-thread /
// async-worker sharing pattern.
TEST(PathInterner, ThreadSafeInterning) {
  PathInterner interner;
  constexpr int kThreads = 8;
  constexpr int kPaths = 500;
  std::vector<std::vector<PathId>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&interner, &per_thread, t]() {
      per_thread[t].reserve(kPaths);
      for (int i = 0; i < kPaths; ++i) {
        // Every thread interns the same path set, in a different order.
        const int p = (i * 7 + t * 13) % kPaths;
        per_thread[t].push_back(interner.Intern("/shared/" + std::to_string(p)));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(interner.size(), static_cast<size_t>(kPaths));
  // Same spelling -> same id regardless of the thread that won the race.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPaths; ++i) {
      const int p = (i * 7 + t * 13) % kPaths;
      EXPECT_EQ(interner.PathOf(per_thread[t][i]), "/shared/" + std::to_string(p));
    }
  }
}

TEST(PathInterner, GlobalInternerAndPathString) {
  const PathId id = GlobalPaths().Intern("/global/egress");
  EXPECT_EQ(GlobalPaths().Find("/global/egress"), id);
  EXPECT_EQ(PathString(id), "/global/egress");
  EXPECT_TRUE(PathString(kInvalidPathId).empty());
}

TEST(PathInterner, DistinctSpellingsDistinctIds) {
  PathInterner interner;
  // The interner does not normalise; the observer does that before ingress.
  std::set<PathId> ids;
  for (const char* p : {"/a/b", "/a/b/", "/a//b", "/a/./b"}) {
    ids.insert(interner.Intern(p));
  }
  EXPECT_EQ(ids.size(), 4u);
}

}  // namespace
}  // namespace seer
