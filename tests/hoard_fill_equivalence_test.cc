// Equivalence tests for the incremental hoard-fill plane: a warm
// HoardManager (cached cluster aggregates, any thread count) must produce a
// selection byte-identical to a cold scratch fill after arbitrary
// touch/delete/rename churn. This is the determinism contract the bench and
// the tenant router rely on.
#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/hoard.h"

namespace seer {
namespace {

PathId P(std::string_view path) { return GlobalPaths().Intern(path); }

FileReference Ref(Pid pid, const std::string& path, Time time) {
  FileReference r;
  r.pid = pid;
  r.kind = RefKind::kPoint;
  r.path = P(path);
  r.time = time;
  return r;
}

// Pure, thread-safe size oracle (the SizeFn contract).
uint64_t SizeOf(PathId p) {
  return 64 + (static_cast<uint64_t>(p) * 2654435761ull) % 512;
}

// A correlator populated with `projects` investigator-bound projects, plus
// seeded random churn (touch / delete / rename) between fills. Project
// counts are chosen large enough that cold fills cross the serial cutoff
// and actually dispatch to the pool.
class ChurnHarness {
 public:
  ChurnHarness(uint32_t seed, size_t projects, size_t files_per,
               const std::string& prefix)
      : correlator_(MakeParams()), rng_(seed) {
    for (size_t p = 0; p < projects; ++p) {
      std::vector<std::string> files;
      for (size_t f = 0; f < files_per; ++f) {
        files.push_back(prefix + "/p" + std::to_string(p) + "/f" +
                        std::to_string(f));
      }
      // One process per project: the reference streams of distinct
      // projects never meet, so only the investigator binds members and
      // the clusters stay project-shaped.
      for (const auto& f : files) {
        correlator_.OnReference(Ref(static_cast<Pid>(2 + p), f, now_++));
      }
      InvestigatedRelation rel;
      rel.files = files;
      rel.strength = 50.0;
      correlator_.AddInvestigatedRelation(rel);
      paths_.insert(paths_.end(), files.begin(), files.end());
    }
  }

  static SeerParams MakeParams() {
    SeerParams p;
    p.dir_distance_weight = 0.0;
    return p;
  }

  const Correlator& correlator() const { return correlator_; }
  size_t file_count() const { return paths_.size(); }

  void TouchRandom(size_t n) {
    // A fresh pid per touch: recency moves without forging new
    // cross-project relations out of the churn stream itself.
    for (size_t i = 0; i < n; ++i) {
      correlator_.OnReference(Ref(next_pid_++, PickPath(), now_++));
    }
  }

  void DeleteRandom(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      correlator_.OnFileDeleted(P(PickPath()), now_++);
    }
  }

  void RenameRandom(size_t n, int tag) {
    for (size_t i = 0; i < n; ++i) {
      const size_t idx = rng_() % paths_.size();
      const std::string to = paths_[idx] + ".r" + std::to_string(tag) + "_" +
                             std::to_string(i);
      correlator_.OnFileRenamed(P(paths_[idx]), P(to), now_++);
      paths_[idx] = to;
    }
  }

 private:
  const std::string& PickPath() { return paths_[rng_() % paths_.size()]; }

  Correlator correlator_;
  std::mt19937 rng_;
  std::vector<std::string> paths_;
  Time now_ = 1;
  Pid next_pid_ = 100'000;
};

void ExpectSameSelection(const HoardSelection& want, const HoardSelection& got,
                         const std::string& what) {
  EXPECT_EQ(want.files, got.files) << what << ": emission order differs";
  EXPECT_EQ(want.sorted_ids, got.sorted_ids) << what;
  EXPECT_EQ(want.bytes_used, got.bytes_used) << what;
  EXPECT_EQ(want.projects_hoarded, got.projects_hoarded) << what;
  EXPECT_EQ(want.projects_skipped, got.projects_skipped) << what;
}

// A cold single-threaded fill: the ground truth each round is compared to.
HoardSelection ScratchFill(const ChurnHarness& h, const ClusterSet& clusters,
                           uint64_t budget, const std::set<PathId>& always,
                           const std::set<PathId>& pins, bool partial) {
  HoardManager scratch(budget);
  scratch.set_threads(1);
  scratch.set_incremental_fill(false);
  scratch.set_allow_partial_projects(partial);
  for (const PathId p : pins) {
    scratch.Pin(p);
  }
  return scratch.ChooseHoard(h.correlator(), clusters, always, SizeOf);
}

TEST(HoardFill, IncrementalMatchesScratchUnderChurn) {
  ChurnHarness h(0xC0FFEE, /*projects=*/600, /*files_per=*/2, "/eqchurn");
  const uint64_t budget = 130'000;  // ~a third of the expected byte total
  const std::set<PathId> always;

  HoardManager inc1(budget), inc2(budget), inc8(budget);
  inc1.set_threads(1);
  inc2.set_threads(2);
  inc8.set_threads(8);
  HoardManager* const warm[] = {&inc1, &inc2, &inc8};

  for (int round = 0; round < 8; ++round) {
    if (round > 0) {
      h.TouchRandom(12);  // ~1% of the files
      if (round % 2 == 0) h.DeleteRandom(5);
      if (round % 3 == 0) h.RenameRandom(3, round);
    }
    if (round == 4) {
      // Mid-sequence cold parallel fill: the cache drop must be invisible.
      inc8.InvalidateFillCache();
    }
    const ClusterSet clusters = h.correlator().BuildClusters();
    const HoardSelection want =
        ScratchFill(h, clusters, budget, always, {}, /*partial=*/false);
    ASSERT_FALSE(want.files.empty());
    for (HoardManager* m : warm) {
      const HoardSelection got =
          m->ChooseHoard(h.correlator(), clusters, always, SizeOf);
      ExpectSameSelection(want, got,
                          "round " + std::to_string(round) + " threads " +
                              std::to_string(m->threads()));
    }
    if (round > 0 && round != 4) {
      // Small churn must hit the cache: a handful of dirty clusters, the
      // rest reused without a member walk.
      const HoardFillStats& s = inc1.last_fill_stats();
      EXPECT_TRUE(s.incremental) << "round " << round;
      EXPECT_GT(s.reused_aggregates, s.dirty_clusters) << "round " << round;
      EXPECT_LE(s.dirty_clusters, 64u) << "round " << round;
      EXPECT_LE(s.touched_files, 64u) << "round " << round;
    }
  }
}

TEST(HoardFill, PartialFillAblationMatches) {
  ChurnHarness h(0xBEEF, /*projects=*/120, /*files_per=*/5, "/eqpartial");
  // Budget small enough that most projects only fit partially.
  const uint64_t budget = 20'000;
  const std::set<PathId> always;

  HoardManager inc1(budget), inc8(budget);
  inc1.set_threads(1);
  inc8.set_threads(8);
  inc1.set_allow_partial_projects(true);
  inc8.set_allow_partial_projects(true);

  for (int round = 0; round < 6; ++round) {
    if (round > 0) {
      h.TouchRandom(8);
      if (round % 2 == 1) h.DeleteRandom(3);
      if (round % 3 == 2) h.RenameRandom(2, round);
    }
    const ClusterSet clusters = h.correlator().BuildClusters();
    const HoardSelection want =
        ScratchFill(h, clusters, budget, always, {}, /*partial=*/true);
    ASSERT_GT(want.files.size(), 0u);
    for (HoardManager* m : {&inc1, &inc8}) {
      const HoardSelection got =
          m->ChooseHoard(h.correlator(), clusters, always, SizeOf);
      ExpectSameSelection(want, got,
                          "partial round " + std::to_string(round));
    }
  }
}

TEST(HoardFill, PinnedAndAlwaysHoardOverlapMatches) {
  ChurnHarness h(0xD00D, /*projects=*/80, /*files_per=*/4, "/eqpin");
  const uint64_t budget = 40'000;

  // Pins and always-hoard deliberately overlap each other and project
  // members: every overlap must be charged exactly once, identically in
  // warm and scratch fills.
  std::set<PathId> pins = {P("/eqpin/p0/f0"), P("/eqpin/p3/f1"),
                           P("/eqpin/outside/pinned")};
  std::set<PathId> always = {P("/eqpin/p0/f0"), P("/eqpin/p5/f2"),
                             P("/eqpin/outside/critical")};

  HoardManager inc2(budget);
  inc2.set_threads(2);
  for (const PathId p : pins) {
    inc2.Pin(p);
  }

  for (int round = 0; round < 5; ++round) {
    if (round > 0) {
      h.TouchRandom(6);
      if (round == 2) h.DeleteRandom(2);
      if (round == 3) h.RenameRandom(2, round);
    }
    const ClusterSet clusters = h.correlator().BuildClusters();
    const HoardSelection want =
        ScratchFill(h, clusters, budget, always, pins, /*partial=*/false);
    const HoardSelection got =
        inc2.ChooseHoard(h.correlator(), clusters, always, SizeOf);
    ExpectSameSelection(want, got, "pin round " + std::to_string(round));
    for (const PathId p : pins) {
      EXPECT_TRUE(got.Contains(p));
    }
    for (const PathId p : always) {
      EXPECT_TRUE(got.Contains(p));
    }
  }
}

// Turning incremental fill off must force a full rewalk every time (the
// benches' scratch baseline) while still matching results.
TEST(HoardFill, DisabledIncrementalAlwaysRewalks) {
  ChurnHarness h(0xABba, /*projects=*/40, /*files_per=*/3, "/eqcold");
  const uint64_t budget = 15'000;
  HoardManager m(budget);
  m.set_threads(1);
  m.set_incremental_fill(false);
  const std::set<PathId> always;

  for (int round = 0; round < 3; ++round) {
    h.TouchRandom(2);
    const ClusterSet clusters = h.correlator().BuildClusters();
    const HoardSelection got =
        m.ChooseHoard(h.correlator(), clusters, always, SizeOf);
    const HoardFillStats& s = m.last_fill_stats();
    EXPECT_FALSE(s.incremental);
    EXPECT_EQ(s.reused_aggregates, 0u);
    EXPECT_EQ(s.dirty_clusters, s.clusters);
    const HoardSelection want =
        ScratchFill(h, clusters, budget, always, {}, /*partial=*/false);
    ExpectSameSelection(want, got, "cold round " + std::to_string(round));
  }
}

}  // namespace
}  // namespace seer
