// The network service plane: wire framing, the control protocol, and the
// socket server/client pair end to end.
//
// The load-bearing contract is loopback equivalence: a trace streamed to
// HoardService over a real UDS — interleaved across tenants, at any worker
// thread count — must leave every tenant's store byte-identical to an
// in-process run that feeds the same events through the same Observer
// pipeline into a plain TenantRouter. The socket is transport, not
// semantics.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/core/correlator.h"
#include "src/core/hoard.h"
#include "src/core/params_io.h"
#include "src/core/snapshot_store.h"
#include "src/observer/observer.h"
#include "src/server/client.h"
#include "src/server/net.h"
#include "src/server/service.h"
#include "src/server/tenant_router.h"
#include "src/server/wire.h"
#include "src/util/fs.h"

namespace seer {
namespace {

PathId P(const std::string& path) { return GlobalPaths().Intern(path); }

// UDS paths must stay short (sun_path is ~108 bytes), so sockets live in
// /tmp, keyed by pid + tag to survive parallel test invocations.
std::string SocketPath(const std::string& tag) {
  return "/tmp/seer-" + std::to_string(::getpid()) + "-" + tag + ".sock";
}

SeerParams ChurnParams() {
  SeerParams p;
  p.max_neighbors = 4;
  p.distance_horizon = 20;
  p.delete_delay = 3;
  p.aging_updates = 500;
  return p;
}

TenantRouterConfig BaseRouterConfig(int threads) {
  TenantRouterConfig config;
  config.defaults = ChurnParams();
  config.threads = threads;
  return config;
}

HoardServiceConfig BaseServiceConfig(int threads) {
  HoardServiceConfig config;
  config.router = BaseRouterConfig(threads);
  // A constant clock: Serve() ticks at most once, so checkpoint scheduling
  // cannot perturb the equivalence comparisons below.
  config.clock = [] { return kMicrosPerSecond; };
  return config;
}

// A randomized syscall trace for one tenant: open/close pairs, stats,
// unlinks, and the occasional kNotLocal miss, over a shared path universe
// (colliding PathIds across tenants are exactly what isolation must
// survive). Paths avoid the observer's filtered prefixes.
std::vector<TraceEvent> TenantEvents(uint32_t seed, size_t count) {
  std::mt19937 rng(seed);
  std::vector<TraceEvent> events;
  events.reserve(count * 2);
  std::vector<Pid> pids = {11, 12, 13};
  Time time = 0;
  uint64_t seq = 0;
  Fd next_fd = 100;
  const auto make = [&](Op op) {
    TraceEvent e;
    e.seq = seq++;
    e.time = (time += kMicrosPerSecond / 5);
    e.pid = pids[rng() % pids.size()];
    e.uid = 1000;
    e.op = op;
    return e;
  };
  for (size_t i = 0; i < count; ++i) {
    const std::string path = "/data/f" + std::to_string(rng() % 24);
    const uint32_t roll = rng() % 100;
    if (roll < 70) {
      TraceEvent open = make(Op::kOpen);
      open.path = path;
      open.fd = next_fd++;
      open.write = rng() % 4 == 0;
      TraceEvent close = make(Op::kClose);
      close.pid = open.pid;  // close pairs by (pid, fd)
      close.fd = open.fd;
      events.push_back(open);
      events.push_back(close);
    } else if (roll < 85) {
      TraceEvent st = make(Op::kStat);
      st.path = path;
      events.push_back(st);
    } else if (roll < 94) {
      TraceEvent rm = make(Op::kUnlink);
      rm.path = path;
      events.push_back(rm);
    } else {
      TraceEvent miss = make(Op::kOpen);
      miss.path = path;
      miss.status = OpStatus::kNotLocal;
      events.push_back(miss);
    }
  }
  return events;
}

// Recovers every tenant store under `root` standalone (no router) and
// returns each correlator's snapshot encoding, indexed by tenant - 1.
std::vector<std::string> RecoveredSnapshots(Fs* fs, const std::string& root,
                                            size_t tenants) {
  std::vector<std::string> out;
  for (size_t t = 0; t < tenants; ++t) {
    SnapshotStore store(fs, SnapshotStore::TenantDirectory(root, static_cast<TenantId>(t + 1)));
    const auto recovered = store.Recover(ChurnParams());
    EXPECT_TRUE(recovered.ok()) << "tenant=" << t + 1 << ": "
                                << recovered.status().message();
    if (!recovered.ok()) {
      out.emplace_back();
      continue;
    }
    EXPECT_FALSE(recovered->torn_wal_tail) << "tenant=" << t + 1;
    out.push_back(recovered->correlator->EncodeSnapshot());
  }
  return out;
}

// Owns a service on its own thread. The caller's fs outlives the harness.
struct ServiceHarness {
  ServiceHarness(Fs* fs, HoardServiceConfig config, const std::string& socket)
      : service(fs, "/srv", std::move(config)) {
    listen_status = service.Listen("unix:" + socket);
    if (listen_status.ok()) {
      thread = std::thread([this] { serve_status = service.Serve(); });
    }
  }

  ~ServiceHarness() {
    service.RequestStop();
    Join();
  }

  void Join() {
    if (thread.joinable()) {
      thread.join();
    }
  }

  HoardService service;
  std::thread thread;
  Status listen_status;
  Status serve_status = Status::IoError("serve never ran");
};

// --- wire codec ---------------------------------------------------------------

TEST(Wire, FrameRoundTripSurvivesByteAtATimeDelivery) {
  const std::string a = wire::EncodeFrame(wire::FrameType::kEvents, 42, "payload-a");
  const std::string b = wire::EncodeFrame(wire::FrameType::kRequest, 7, "");
  const std::string c = wire::EncodeFrame(wire::FrameType::kResponse, 0xDEADBEEF,
                                          std::string(1000, 'x'));

  wire::FrameDecoder decoder;
  std::vector<wire::Frame> frames;
  for (const char byte : a + b + c) {
    decoder.Append(std::string_view(&byte, 1));
    for (;;) {
      const auto next = decoder.Next();
      ASSERT_TRUE(next.ok()) << next.status().message();
      if (!next->has_value()) {
        break;
      }
      frames.push_back(**next);
    }
  }
  ASSERT_EQ(3u, frames.size());
  EXPECT_EQ(wire::FrameType::kEvents, frames[0].type);
  EXPECT_EQ(42u, frames[0].channel);
  EXPECT_EQ("payload-a", frames[0].payload);
  EXPECT_EQ(wire::FrameType::kRequest, frames[1].type);
  EXPECT_EQ(7u, frames[1].channel);
  EXPECT_TRUE(frames[1].payload.empty());
  EXPECT_EQ(wire::FrameType::kResponse, frames[2].type);
  EXPECT_EQ(0xDEADBEEFu, frames[2].channel);
  EXPECT_EQ(1000u, frames[2].payload.size());
  EXPECT_TRUE(decoder.AtFrameBoundary());
  EXPECT_EQ(0u, decoder.buffered());
}

TEST(Wire, ControlRequestRoundTrip) {
  wire::ControlRequest request;
  request.verb = wire::ControlVerb::kParamsSet;
  request.tenant = 12345;
  request.text = "delete-delay 7\nn 4\n";
  const auto decoded = wire::DecodeControlRequest(wire::EncodeControlRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(request.verb, decoded->verb);
  EXPECT_EQ(request.tenant, decoded->tenant);
  EXPECT_EQ(request.text, decoded->text);
}

TEST(Wire, ControlResponseRoundTripAllFields) {
  wire::ControlResponse response;
  response.code = StatusCode::kNotFound;
  response.message = "tenant 9 has no store";
  response.verb = wire::ControlVerb::kTenantStats;
  response.tenants = {1, 3, 4294967294u};
  response.text = "delete-delay 7\n";
  TenantStats s;
  s.tenant = 3;
  s.resident = true;
  s.references = 101;
  s.memory_bytes = 202;
  s.generation = 303;
  s.files = 404;
  s.wal_bytes = 505;
  s.checkpoints = 606;
  s.evictions = 707;
  s.restores = 808;
  s.refills = 909;
  s.hoard_files = 1010;
  response.stats.push_back(s);
  s.tenant = 4294967294u;
  s.resident = false;
  response.stats.push_back(s);

  const auto decoded = wire::DecodeControlResponse(wire::EncodeControlResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(response.code, decoded->code);
  EXPECT_EQ(response.message, decoded->message);
  EXPECT_EQ(response.verb, decoded->verb);
  EXPECT_EQ(response.tenants, decoded->tenants);
  EXPECT_EQ(response.text, decoded->text);
  ASSERT_EQ(2u, decoded->stats.size());
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(response.stats[i].tenant, decoded->stats[i].tenant);
    EXPECT_EQ(response.stats[i].resident, decoded->stats[i].resident);
    EXPECT_EQ(response.stats[i].references, decoded->stats[i].references);
    EXPECT_EQ(response.stats[i].memory_bytes, decoded->stats[i].memory_bytes);
    EXPECT_EQ(response.stats[i].generation, decoded->stats[i].generation);
    EXPECT_EQ(response.stats[i].files, decoded->stats[i].files);
    EXPECT_EQ(response.stats[i].wal_bytes, decoded->stats[i].wal_bytes);
    EXPECT_EQ(response.stats[i].checkpoints, decoded->stats[i].checkpoints);
    EXPECT_EQ(response.stats[i].evictions, decoded->stats[i].evictions);
    EXPECT_EQ(response.stats[i].restores, decoded->stats[i].restores);
    EXPECT_EQ(response.stats[i].refills, decoded->stats[i].refills);
    EXPECT_EQ(response.stats[i].hoard_files, decoded->stats[i].hoard_files);
  }
  const Status status = decoded->ToStatus();
  EXPECT_EQ(StatusCode::kNotFound, status.code());
  EXPECT_EQ("tenant 9 has no store", status.message());
}

TEST(Wire, DecoderLatchesOnEachHeaderCorruption) {
  const std::string good = wire::EncodeFrame(wire::FrameType::kEvents, 1, "ok");
  struct Case {
    const char* name;
    size_t offset;
    char value;
  };
  const Case cases[] = {
      {"bad magic", 0, 'X'},
      {"bad version", 4, 99},
      {"unknown frame type", 5, 77},
      {"nonzero flags", 6, 1},
  };
  for (const Case& c : cases) {
    std::string bytes = good;
    bytes[c.offset] = c.value;
    wire::FrameDecoder decoder;
    decoder.Append(bytes);
    const auto next = decoder.Next();
    EXPECT_FALSE(next.ok()) << c.name;
    EXPECT_EQ(StatusCode::kInvalidArgument, next.status().code()) << c.name;
    // Latched: the stream has no resynchronisation point.
    EXPECT_FALSE(decoder.Next().ok()) << c.name;
    EXPECT_FALSE(decoder.AtFrameBoundary()) << c.name;
  }
}

TEST(Wire, DecoderRejectsOversizedLengthBeforeBuffering) {
  std::string bytes = wire::EncodeFrame(wire::FrameType::kEvents, 1, "ok");
  const uint32_t huge = wire::kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[12 + i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  wire::FrameDecoder decoder;
  decoder.Append(bytes.substr(0, wire::kFrameHeaderSize));  // header alone suffices
  const auto next = decoder.Next();
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, next.status().code());
}

TEST(Wire, PartialFrameIsNotAnErrorUntilEof) {
  const std::string bytes = wire::EncodeFrame(wire::FrameType::kRequest, 5, "abcdef");
  wire::FrameDecoder decoder;
  decoder.Append(std::string_view(bytes).substr(0, bytes.size() - 1));
  const auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  // A disconnect here is mid-frame: the caller maps it to a torn frame.
  EXPECT_FALSE(decoder.AtFrameBoundary());
  decoder.Append(std::string_view(bytes).substr(bytes.size() - 1));
  const auto done = decoder.Next();
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(done->has_value());
  EXPECT_EQ("abcdef", (*done)->payload);
  EXPECT_TRUE(decoder.AtFrameBoundary());
}

TEST(Wire, EventsRoundTripAndTornPayloadIsDataLoss) {
  const std::vector<TraceEvent> events = TenantEvents(0xAB, 50);
  const std::string payload = wire::EncodeEvents(events);
  const auto decoded = wire::DecodeEvents(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  ASSERT_EQ(events.size(), decoded->size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].op, (*decoded)[i].op) << i;
    EXPECT_EQ(events[i].pid, (*decoded)[i].pid) << i;
    EXPECT_EQ(events[i].time, (*decoded)[i].time) << i;
    EXPECT_EQ(events[i].path, (*decoded)[i].path) << i;
    EXPECT_EQ(events[i].status, (*decoded)[i].status) << i;
    EXPECT_EQ(events[i].fd, (*decoded)[i].fd) << i;
    EXPECT_EQ(events[i].write, (*decoded)[i].write) << i;
  }

  const auto torn = wire::DecodeEvents(std::string_view(payload).substr(0, payload.size() - 3));
  EXPECT_FALSE(torn.ok());
  EXPECT_EQ(StatusCode::kDataLoss, torn.status().code());
}

TEST(Wire, TruncatedControlPayloadIsDataLoss) {
  wire::ControlRequest request;
  request.verb = wire::ControlVerb::kParamsSet;
  request.text = "delete-delay 7\n";
  const std::string encoded = wire::EncodeControlRequest(request);
  for (const size_t cut : {size_t{0}, size_t{1}, encoded.size() - 1}) {
    const auto decoded = wire::DecodeControlRequest(std::string_view(encoded).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_EQ(StatusCode::kDataLoss, decoded.status().code()) << "cut=" << cut;
  }
  const auto response = wire::DecodeControlResponse("zz");
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(StatusCode::kDataLoss, response.status().code());
}

// --- service loopback ---------------------------------------------------------

TEST(HoardService, LoopbackEquivalenceAcrossThreadCounts) {
  constexpr size_t kTenants = 4;
  std::vector<std::vector<TraceEvent>> traces;
  size_t total_events = 0;
  for (size_t t = 0; t < kTenants; ++t) {
    traces.push_back(TenantEvents(0x5e00 + static_cast<uint32_t>(t), 300));
    total_events += traces.back().size();
  }

  // The oracle: the identical Observer pipeline feeding a plain router
  // in-process, each tenant's trace applied serially.
  std::vector<std::string> want;
  {
    MemFs fs;
    TenantRouter router(&fs, "/srv", BaseRouterConfig(4));
    for (size_t t = 0; t < kTenants; ++t) {
      Observer observer(ObserverConfig{}, /*fs=*/nullptr);
      const TenantId tenant = static_cast<TenantId>(t + 1);
      observer.set_sink(router.SinkFor(tenant));
      observer.set_miss_listener(router.MissLogFor(tenant));
      for (const TraceEvent& event : traces[t]) {
        observer.OnEvent(event);
      }
    }
    ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();
    ASSERT_TRUE(router.Shutdown().ok());
    want = RecoveredSnapshots(&fs, "/srv", kTenants);
  }

  for (const int threads : {1, 2, 8}) {
    const std::string socket = SocketPath("loopback-" + std::to_string(threads));
    MemFs fs;
    ServiceHarness harness(&fs, BaseServiceConfig(threads), socket);
    ASSERT_TRUE(harness.listen_status.ok()) << harness.listen_status.message();

    auto client = SeerClient::Connect("unix:" + socket);
    ASSERT_TRUE(client.ok()) << client.status().message();
    // Round-robin in pseudo-random chunk sizes, so tenants genuinely
    // interleave on the wire; per-tenant order is all that is preserved.
    std::mt19937 rng(0xC0DE + static_cast<uint32_t>(threads));
    std::vector<size_t> cursor(kTenants, 0);
    bool remaining = true;
    while (remaining) {
      remaining = false;
      for (size_t t = 0; t < kTenants; ++t) {
        if (cursor[t] >= traces[t].size()) {
          continue;
        }
        const size_t n = std::min<size_t>(1 + rng() % 97, traces[t].size() - cursor[t]);
        const std::vector<TraceEvent> chunk(traces[t].begin() + cursor[t],
                                            traces[t].begin() + cursor[t] + n);
        ASSERT_TRUE(client->StreamEvents(static_cast<TenantId>(t + 1), chunk).ok());
        cursor[t] += n;
        remaining |= cursor[t] < traces[t].size();
      }
    }
    ASSERT_TRUE(client->Ping().ok());  // delivery barrier: frames are in-order

    const auto listed = client->TenantList();
    ASSERT_TRUE(listed.ok());
    EXPECT_EQ(kTenants, listed->size());

    ASSERT_TRUE(client->Shutdown().ok());
    harness.Join();
    EXPECT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
    EXPECT_EQ(total_events, harness.service.events_ingested());
    EXPECT_EQ(0u, harness.service.protocol_errors());
    EXPECT_EQ(0u, harness.service.router().resident_tenants());

    const std::vector<std::string> got = RecoveredSnapshots(&fs, "/srv", kTenants);
    for (size_t t = 0; t < kTenants; ++t) {
      EXPECT_EQ(want[t], got[t]) << "tenant=" << t + 1 << " threads=" << threads;
    }
  }
}

TEST(HoardService, LiveStatsMatchOfflineOnQuiescedStore) {
  const std::string socket = SocketPath("stats");
  MemFs fs;
  ServiceHarness harness(&fs, BaseServiceConfig(2), socket);
  ASSERT_TRUE(harness.listen_status.ok()) << harness.listen_status.message();

  auto client = SeerClient::Connect("unix:" + socket);
  ASSERT_TRUE(client.ok()) << client.status().message();
  ASSERT_TRUE(client->StreamEvents(1, TenantEvents(0x57A7, 400)).ok());
  ASSERT_TRUE(client->Checkpoint(1).ok());
  // Quiesce: eviction seals and persists, freezing the durable counters;
  // Shutdown skips non-resident tenants, so the store stays frozen.
  ASSERT_TRUE(client->Evict(1).ok());
  const auto stats = client->Stats(1);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  ASSERT_EQ(1u, stats->size());
  EXPECT_FALSE((*stats)[0].resident);
  EXPECT_GT((*stats)[0].generation, 0u);
  EXPECT_GT((*stats)[0].files, 0u);

  ASSERT_TRUE(client->Shutdown().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();

  // The offline reading (seerctl's Recover path) must agree with what the
  // socket reported for the quiesced store.
  SnapshotStore store(&fs, SnapshotStore::TenantDirectory("/srv", 1));
  const auto recovered = store.Recover(ChurnParams());
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ((*stats)[0].generation, recovered->generation);
  EXPECT_EQ((*stats)[0].files, recovered->correlator->files().size());
}

TEST(HoardService, ParamsOverridePersistsAcrossServerRestart) {
  MemFs fs;
  {
    const std::string socket = SocketPath("params-a");
    ServiceHarness harness(&fs, BaseServiceConfig(1), socket);
    ASSERT_TRUE(harness.listen_status.ok()) << harness.listen_status.message();
    auto client = SeerClient::Connect("unix:" + socket);
    ASSERT_TRUE(client.ok()) << client.status().message();

    // Invalid override text is rejected server-side before anything is
    // written, with the parser's own message crossing the wire.
    const Status bad = client->ParamsSet(5, "bogus nonsense\n");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(StatusCode::kInvalidArgument, bad.code());

    ASSERT_TRUE(client->ParamsSet(5, "delete-delay 7\n").ok());
    const auto text = client->ParamsGet(5);
    ASSERT_TRUE(text.ok()) << text.status().message();
    const auto parsed = ParseSeerParams(*text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    EXPECT_EQ(7, parsed->delete_delay);

    // Unknown tenant with no store: NotFound crosses the wire intact.
    const auto missing = client->ParamsGet(999);
    EXPECT_FALSE(missing.ok());
    EXPECT_EQ(StatusCode::kNotFound, missing.status().code());

    ASSERT_TRUE(client->Shutdown().ok());
    harness.Join();
    ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  }

  // A new server over the same root rediscovers the tenant and serves the
  // persisted override (parsed over the fleet defaults).
  {
    const std::string socket = SocketPath("params-b");
    ServiceHarness harness(&fs, BaseServiceConfig(1), socket);
    ASSERT_TRUE(harness.listen_status.ok()) << harness.listen_status.message();
    auto client = SeerClient::Connect("unix:" + socket);
    ASSERT_TRUE(client.ok()) << client.status().message();
    const auto listed = client->TenantList();
    ASSERT_TRUE(listed.ok());
    EXPECT_EQ((std::vector<TenantId>{5}), *listed);
    const auto text = client->ParamsGet(5);
    ASSERT_TRUE(text.ok()) << text.status().message();
    const auto parsed = ParseSeerParams(*text);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(7, parsed->delete_delay);
    EXPECT_EQ(ChurnParams().aging_updates, parsed->aging_updates);  // defaults shine through
    ASSERT_TRUE(client->Shutdown().ok());
    harness.Join();
    ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  }
}

TEST(HoardService, MalformedFramesCloseOnlyTheirConnection) {
  const std::string socket = SocketPath("malformed");
  MemFs fs;
  ServiceHarness harness(&fs, BaseServiceConfig(1), socket);
  ASSERT_TRUE(harness.listen_status.ok()) << harness.listen_status.message();

  auto good = SeerClient::Connect("unix:" + socket);
  ASSERT_TRUE(good.ok()) << good.status().message();
  ASSERT_TRUE(good->Ping().ok());

  const auto endpoint = net::ParseEndpoint("unix:" + socket);
  ASSERT_TRUE(endpoint.ok());

  // Connection 1: garbage where a frame header belongs. The server must
  // close it; the blocking read below returns EOF only once it has.
  {
    auto raw = net::Connect(*endpoint);
    ASSERT_TRUE(raw.ok()) << raw.status().message();
    ASSERT_TRUE(net::SendAll(raw->get(), "this is not a SERV frame at all....").ok());
    char buf[64];
    bool would_block = false;
    const auto n = net::ReadSome(raw->get(), buf, sizeof(buf), &would_block);
    ASSERT_TRUE(n.ok());
    EXPECT_FALSE(would_block);
    EXPECT_EQ(0u, *n);  // EOF: server dropped the connection
  }

  // Connection 2: a valid frame torn mid-payload by a disconnect. A
  // half-close delivers the EOF while our read side stays open, so the
  // blocking read observes the server counting and dropping the
  // connection before the test moves on to shutdown.
  {
    auto raw = net::Connect(*endpoint);
    ASSERT_TRUE(raw.ok()) << raw.status().message();
    const std::string frame = wire::EncodeFrame(wire::FrameType::kEvents, 3,
                                                std::string(256, 'p'));
    ASSERT_TRUE(net::SendAll(raw->get(), std::string_view(frame).substr(0, 40)).ok());
    ASSERT_EQ(0, ::shutdown(raw->get(), SHUT_WR));
    char buf[64];
    bool would_block = false;
    const auto n = net::ReadSome(raw->get(), buf, sizeof(buf), &would_block);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(0u, *n);  // EOF: torn frame counted, connection dropped
  }

  // The healthy connection is undisturbed.
  ASSERT_TRUE(good->Ping().ok());
  const auto stats = good->Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(good->Shutdown().ok());
  harness.Join();
  EXPECT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  EXPECT_EQ(2u, harness.service.protocol_errors());
  EXPECT_EQ(3u, harness.service.connections_accepted());
}

TEST(HoardService, ShutdownSealsEveryResidentTenant) {
  const std::string socket = SocketPath("seal");
  MemFs fs;
  ServiceHarness harness(&fs, BaseServiceConfig(4), socket);
  ASSERT_TRUE(harness.listen_status.ok()) << harness.listen_status.message();

  auto client = SeerClient::Connect("unix:" + socket);
  ASSERT_TRUE(client.ok()) << client.status().message();
  for (TenantId tenant = 1; tenant <= 3; ++tenant) {
    ASSERT_TRUE(client->StreamEvents(tenant, TenantEvents(0x9000 + tenant, 200)).ok());
  }
  ASSERT_TRUE(client->Shutdown().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  EXPECT_EQ(0u, harness.service.router().resident_tenants());
  // Every store is an ordinary single-instance store, cleanly sealed.
  RecoveredSnapshots(&fs, "/srv", 3);
}

// --- sharded I/O plane --------------------------------------------------------

TEST(HoardService, LoopbackEquivalenceAcrossIoThreadCounts) {
  constexpr size_t kTenants = 4;
  std::vector<std::vector<TraceEvent>> traces;
  size_t total_events = 0;
  for (size_t t = 0; t < kTenants; ++t) {
    traces.push_back(TenantEvents(0x10c0 + static_cast<uint32_t>(t), 300));
    total_events += traces.back().size();
  }

  // The oracle: the identical Observer pipeline feeding a plain router
  // in-process. Byte-equality against it at every I/O shard count is the
  // §16 claim: the serving plane's threading is invisible in the stores.
  std::vector<std::string> want;
  {
    MemFs fs;
    TenantRouter router(&fs, "/srv", BaseRouterConfig(2));
    for (size_t t = 0; t < kTenants; ++t) {
      Observer observer(ObserverConfig{}, /*fs=*/nullptr);
      const TenantId tenant = static_cast<TenantId>(t + 1);
      observer.set_sink(router.SinkFor(tenant));
      observer.set_miss_listener(router.MissLogFor(tenant));
      for (const TraceEvent& event : traces[t]) {
        observer.OnEvent(event);
      }
    }
    ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();
    ASSERT_TRUE(router.Shutdown().ok());
    want = RecoveredSnapshots(&fs, "/srv", kTenants);
  }

  for (const int io_threads : {1, 2, 8}) {
    const std::string socket = SocketPath("io-loopback-" + std::to_string(io_threads));
    MemFs fs;
    HoardServiceConfig config = BaseServiceConfig(2);
    config.io_threads = io_threads;
    ServiceHarness harness(&fs, config, socket);
    ASSERT_TRUE(harness.listen_status.ok()) << harness.listen_status.message();
    EXPECT_EQ(io_threads, harness.service.io_threads());

    // One connection per tenant, streamed concurrently: connections land
    // on different shards, and the per-tenant order each connection
    // carries is all the service may rely on.
    std::vector<std::thread> streamers;
    std::atomic<int> failures{0};
    for (size_t t = 0; t < kTenants; ++t) {
      streamers.emplace_back([&, t] {
        auto client = SeerClient::Connect("unix:" + socket);
        if (!client.ok()) {
          ++failures;
          return;
        }
        const TenantId tenant = static_cast<TenantId>(t + 1);
        std::mt19937 rng(0xD0 + static_cast<uint32_t>(t));
        size_t i = 0;
        while (i < traces[t].size()) {
          const size_t n = std::min<size_t>(1 + rng() % 97, traces[t].size() - i);
          const std::vector<TraceEvent> chunk(traces[t].begin() + i,
                                              traces[t].begin() + i + n);
          if (!client->StreamEvents(tenant, chunk).ok()) {
            ++failures;
            return;
          }
          i += n;
        }
        if (!client->Ping().ok()) {  // per-connection delivery barrier
          ++failures;
        }
      });
    }
    for (std::thread& s : streamers) {
      s.join();
    }
    ASSERT_EQ(0, failures.load());

    auto control = SeerClient::Connect("unix:" + socket);
    ASSERT_TRUE(control.ok()) << control.status().message();
    ASSERT_TRUE(control->Shutdown().ok());
    harness.Join();
    ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
    EXPECT_EQ(total_events, harness.service.events_ingested());
    EXPECT_EQ(0u, harness.service.protocol_errors());

    const std::vector<std::string> got = RecoveredSnapshots(&fs, "/srv", kTenants);
    for (size_t t = 0; t < kTenants; ++t) {
      EXPECT_EQ(want[t], got[t]) << "tenant=" << t + 1 << " io_threads=" << io_threads;
    }
  }
}

TEST(HoardService, MultiConnectionMergeMatchesOracle) {
  // Two connections stream ONE tenant concurrently. The server picks a
  // frame-granularity interleaving (whichever shard wins the tenant's
  // lane); with record_merge_log it reports the serialization it chose,
  // and replaying exactly that order in-process must reproduce the store
  // byte-for-byte — multi-threaded I/O adds arrival nondeterminism, never
  // outcome nondeterminism beyond it.
  const std::string socket = SocketPath("merge");
  MemFs fs;
  HoardServiceConfig config = BaseServiceConfig(2);
  config.io_threads = 2;
  config.record_merge_log = true;
  ServiceHarness harness(&fs, config, socket);
  ASSERT_TRUE(harness.listen_status.ok()) << harness.listen_status.message();

  // Distinct seq ranges so every frame's origin is identifiable from its
  // first event. (Seq is carried verbatim by the wire format.)
  std::vector<TraceEvent> stream_a = TenantEvents(0xA, 300);
  std::vector<TraceEvent> stream_b = TenantEvents(0xB, 300);
  for (TraceEvent& e : stream_a) {
    e.seq += 100'000;
  }
  for (TraceEvent& e : stream_b) {
    e.seq += 200'000;
  }

  std::atomic<int> failures{0};
  const auto stream_one = [&](const std::vector<TraceEvent>& events, uint32_t seed) {
    auto client = SeerClient::Connect("unix:" + socket);
    if (!client.ok()) {
      ++failures;
      return;
    }
    std::mt19937 rng(seed);
    size_t i = 0;
    while (i < events.size()) {
      // One StreamEvents call per small chunk = one frame per chunk, so
      // the two connections' frames genuinely interleave.
      const size_t n = std::min<size_t>(1 + rng() % 53, events.size() - i);
      const std::vector<TraceEvent> chunk(events.begin() + i, events.begin() + i + n);
      if (!client->StreamEvents(1, chunk).ok()) {
        ++failures;
        return;
      }
      i += n;
    }
    if (!client->Ping().ok()) {
      ++failures;
    }
  };
  std::thread ta([&] { stream_one(stream_a, 0x11); });
  std::thread tb([&] { stream_one(stream_b, 0x22); });
  ta.join();
  tb.join();
  ASSERT_EQ(0, failures.load());

  const std::vector<HoardService::MergeRecord> merge = harness.service.MergeLogFor(1);
  ASSERT_FALSE(merge.empty());

  auto control = SeerClient::Connect("unix:" + socket);
  ASSERT_TRUE(control.ok()) << control.status().message();
  ASSERT_TRUE(control->Shutdown().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  EXPECT_EQ(stream_a.size() + stream_b.size(), harness.service.events_ingested());
  EXPECT_EQ(0u, harness.service.protocol_errors());

  // Replay the server's reported merge order through the same pipeline.
  MemFs oracle_fs;
  {
    TenantRouter router(&oracle_fs, "/srv", BaseRouterConfig(2));
    Observer observer(ObserverConfig{}, /*fs=*/nullptr);
    observer.set_sink(router.SinkFor(1));
    observer.set_miss_listener(router.MissLogFor(1));
    size_t cursor_a = 0;
    size_t cursor_b = 0;
    for (const HoardService::MergeRecord& record : merge) {
      const bool from_a = record.first_seq < 200'000;
      const std::vector<TraceEvent>& events = from_a ? stream_a : stream_b;
      size_t& cursor = from_a ? cursor_a : cursor_b;
      ASSERT_LT(cursor, events.size());
      ASSERT_EQ(events[cursor].seq, record.first_seq);
      for (uint32_t i = 0; i < record.count; ++i) {
        ASSERT_LT(cursor, events.size());
        observer.OnEvent(events[cursor]);
        ++cursor;
      }
    }
    EXPECT_EQ(stream_a.size(), cursor_a);
    EXPECT_EQ(stream_b.size(), cursor_b);
    ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();
    ASSERT_TRUE(router.Shutdown().ok());
  }
  const std::vector<std::string> want = RecoveredSnapshots(&oracle_fs, "/srv", 1);
  const std::vector<std::string> got = RecoveredSnapshots(&fs, "/srv", 1);
  EXPECT_EQ(want[0], got[0]);
}

TEST(HoardService, SlowConsumerBackpressureAcrossIoThreads) {
  // A connection buffering more than conn_buffer_limit undecoded bytes
  // stops being polled until its backlog drains. With a tiny limit and
  // several senders blasting frames as fast as the kernel accepts them,
  // the shards must keep cycling read -> decode -> deliver without
  // deadlock or loss, on every shard.
  const std::string socket = SocketPath("backpressure");
  MemFs fs;
  HoardServiceConfig config = BaseServiceConfig(2);
  config.io_threads = 3;
  config.conn_buffer_limit = 2048;  // far below a sender's burst
  ServiceHarness harness(&fs, config, socket);
  ASSERT_TRUE(harness.listen_status.ok()) << harness.listen_status.message();

  constexpr size_t kSenders = 4;
  constexpr size_t kEventsPerSender = 600;
  std::atomic<int> failures{0};
  std::vector<std::thread> senders;
  for (size_t s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      auto client = SeerClient::Connect("unix:" + socket);
      if (!client.ok()) {
        ++failures;
        return;
      }
      const std::vector<TraceEvent> events =
          TenantEvents(0xBb00 + static_cast<uint32_t>(s), kEventsPerSender / 2);
      // Small chunks = many small frames back to back, no pacing.
      for (size_t i = 0; i < events.size(); i += 20) {
        const size_t n = std::min<size_t>(20, events.size() - i);
        const std::vector<TraceEvent> chunk(events.begin() + i, events.begin() + i + n);
        if (!client->StreamEvents(static_cast<TenantId>(s + 1), chunk).ok()) {
          ++failures;
          return;
        }
      }
      if (!client->Ping().ok()) {
        ++failures;
      }
    });
  }
  size_t total_events = 0;
  for (std::thread& s : senders) {
    s.join();
  }
  for (size_t s = 0; s < kSenders; ++s) {
    total_events += TenantEvents(0xBb00 + static_cast<uint32_t>(s), kEventsPerSender / 2).size();
  }
  ASSERT_EQ(0, failures.load());

  auto control = SeerClient::Connect("unix:" + socket);
  ASSERT_TRUE(control.ok()) << control.status().message();
  ASSERT_TRUE(control->Shutdown().ok());
  harness.Join();
  ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  EXPECT_EQ(total_events, harness.service.events_ingested());
  EXPECT_EQ(0u, harness.service.protocol_errors());
}

TEST(HoardService, MidFrameDeathOnWorkerShard) {
  // With io_threads=2 the first accepted connection is assigned to the
  // worker shard (round-robin starts at shard 1), so this exercises the
  // torn-frame EOF path off the Serve() thread.
  const std::string socket = SocketPath("worker-death");
  MemFs fs;
  HoardServiceConfig config = BaseServiceConfig(1);
  config.io_threads = 2;
  ServiceHarness harness(&fs, config, socket);
  ASSERT_TRUE(harness.listen_status.ok()) << harness.listen_status.message();

  const auto endpoint = net::ParseEndpoint("unix:" + socket);
  ASSERT_TRUE(endpoint.ok());
  {
    auto raw = net::Connect(*endpoint);
    ASSERT_TRUE(raw.ok()) << raw.status().message();
    const std::string frame =
        wire::EncodeFrame(wire::FrameType::kEvents, 3, std::string(512, 'q'));
    ASSERT_TRUE(net::SendAll(raw->get(), std::string_view(frame).substr(0, 40)).ok());
    ASSERT_EQ(0, ::shutdown(raw->get(), SHUT_WR));
    char buf[64];
    bool would_block = false;
    const auto n = net::ReadSome(raw->get(), buf, sizeof(buf), &would_block);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(0u, *n);  // EOF: the worker shard counted and dropped it
  }

  // The plane is healthy afterwards: a fresh connection streams and the
  // control plane answers.
  auto client = SeerClient::Connect("unix:" + socket);
  ASSERT_TRUE(client.ok()) << client.status().message();
  ASSERT_TRUE(client->StreamEvents(1, TenantEvents(0xDEAD, 50)).ok());
  ASSERT_TRUE(client->Ping().ok());
  ASSERT_TRUE(client->Shutdown().ok());
  harness.Join();
  EXPECT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
  EXPECT_EQ(1u, harness.service.protocol_errors());
  EXPECT_EQ(2u, harness.service.connections_accepted());
}

TEST(HoardService, PipelinedStreamPreservesDeliveryOrder) {
  // pipeline_depth only paces StreamEvents with periodic Ping barriers;
  // frames travel the same connection in the same order, so the stores
  // must come out byte-identical to the unpipelined run.
  const std::vector<TraceEvent> trace = TenantEvents(0x9199, 400);
  std::vector<std::string> want;
  {
    const std::string socket = SocketPath("pipeline-off");
    MemFs fs;
    ServiceHarness harness(&fs, BaseServiceConfig(2), socket);
    ASSERT_TRUE(harness.listen_status.ok()) << harness.listen_status.message();
    auto client = SeerClient::Connect("unix:" + socket);
    ASSERT_TRUE(client.ok()) << client.status().message();
    ASSERT_TRUE(client->StreamEvents(1, trace).ok());
    ASSERT_TRUE(client->Shutdown().ok());
    harness.Join();
    ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
    want = RecoveredSnapshots(&fs, "/srv", 1);
  }
  {
    const std::string socket = SocketPath("pipeline-on");
    MemFs fs;
    HoardServiceConfig config = BaseServiceConfig(2);
    config.io_threads = 2;
    ServiceHarness harness(&fs, config, socket);
    ASSERT_TRUE(harness.listen_status.ok()) << harness.listen_status.message();
    SeerClientOptions options;
    options.pipeline_depth = 2;
    // A small batch target so the stream cuts many frames and the Ping
    // barrier actually fires repeatedly.
    options.batch_bytes = 512;
    auto client = SeerClient::Connect("unix:" + socket, options);
    ASSERT_TRUE(client.ok()) << client.status().message();
    ASSERT_TRUE(client->StreamEvents(1, trace).ok());
    ASSERT_TRUE(client->Shutdown().ok());
    harness.Join();
    ASSERT_TRUE(harness.serve_status.ok()) << harness.serve_status.message();
    EXPECT_EQ(trace.size(), harness.service.events_ingested());
    const std::vector<std::string> got = RecoveredSnapshots(&fs, "/srv", 1);
    EXPECT_EQ(want[0], got[0]);
  }
}

// --- pin/miss-log persistence (the tenant-store aux section) ------------------

TEST(TenantRouterAux, PinsAndMissLogSurviveRestart) {
  MemFs fs;
  const PathId pinned = P("/data/pinned");
  const PathId missed = P("/data/missed");
  {
    TenantRouter router(&fs, "/srv", BaseRouterConfig(2));
    ReferenceSink* sink = router.SinkFor(9);
    sink->OnReference(FileReference{11, RefKind::kPoint, P("/data/f0"), kMicrosPerSecond, false});
    HoardManager* hoard = router.HoardFor(9);
    ASSERT_NE(nullptr, hoard);
    hoard->Pin(pinned);
    MissLog* log = router.MissLogFor(9);
    ASSERT_NE(nullptr, log);
    log->OnNotLocalAccess(missed, 11, 2 * kMicrosPerSecond);
    log->RecordManual(missed, 3 * kMicrosPerSecond, MissSeverity::kTaskChange);
    ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();
    ASSERT_TRUE(router.Shutdown().ok());
  }
  EXPECT_TRUE(fs.Exists(SnapshotStore::TenantDirectory("/srv", 9) + "/aux.seer"));

  TenantRouter router(&fs, "/srv", BaseRouterConfig(2));
  HoardManager* hoard = router.HoardFor(9);
  ASSERT_NE(nullptr, hoard);
  EXPECT_EQ(1u, hoard->pinned().count(pinned));
  MissLog* log = router.MissLogFor(9);
  ASSERT_NE(nullptr, log);
  ASSERT_EQ(2u, log->records().size());
  EXPECT_EQ(missed, log->records()[0].path);
  EXPECT_TRUE(log->records()[0].automatic);
  EXPECT_EQ(2 * kMicrosPerSecond, log->records()[0].time);
  EXPECT_EQ(missed, log->records()[1].path);
  EXPECT_FALSE(log->records()[1].automatic);
  EXPECT_EQ(MissSeverity::kTaskChange, log->records()[1].severity);
  EXPECT_EQ(1u, log->pending_hoard().count(missed));
  ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();
}

TEST(TenantRouterAux, EvictionPersistsAndRestorePreservesPins) {
  MemFs fs;
  TenantRouter router(&fs, "/srv", BaseRouterConfig(1));
  router.SinkFor(4)->OnReference(
      FileReference{11, RefKind::kPoint, P("/data/f1"), kMicrosPerSecond, false});
  router.HoardFor(4)->Pin(P("/data/keep"));
  ASSERT_TRUE(router.EvictTenant(4).ok());
  EXPECT_TRUE(fs.Exists(SnapshotStore::TenantDirectory("/srv", 4) + "/aux.seer"));
  // The pin set lives outside the evictable state: still there while
  // evicted, and the transparent restore must not clobber it from disk.
  EXPECT_EQ(1u, router.HoardFor(4)->pinned().count(P("/data/keep")));
  router.SinkFor(4)->OnReference(
      FileReference{11, RefKind::kPoint, P("/data/f2"), 2 * kMicrosPerSecond, false});
  ASSERT_TRUE(router.last_error().ok()) << router.last_error().message();
  EXPECT_EQ(1u, router.HoardFor(4)->pinned().count(P("/data/keep")));
}

}  // namespace
}  // namespace seer
