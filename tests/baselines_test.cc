// Tests for the LRU baseline and the Coda-inspired priority schemes,
// including the paper's 4-step miss-free hoard size algorithm for LRU
// (Section 5.1.2).
#include <gtest/gtest.h>

#include "src/baselines/coda_priority.h"
#include "src/baselines/lru.h"
#include "src/sim/missfree.h"

namespace seer {
namespace {

TraceEvent Ev(Op op, const std::string& path, Time time, uint64_t seq,
              OpStatus status = OpStatus::kOk) {
  TraceEvent e;
  e.op = op;
  e.path = path;
  e.time = time;
  e.seq = seq;
  e.status = status;
  return e;
}

TEST(LruTracker, MostRecentFirst) {
  LruTracker lru;
  lru.OnEvent(Ev(Op::kOpen, "/a", 10, 1));
  lru.OnEvent(Ev(Op::kOpen, "/b", 20, 2));
  lru.OnEvent(Ev(Op::kOpen, "/c", 30, 3));
  lru.OnEvent(Ev(Op::kOpen, "/a", 40, 4));  // /a refreshed
  const auto order = lru.CoverageOrder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "/a");
  EXPECT_EQ(order[1], "/c");
  EXPECT_EQ(order[2], "/b");
}

TEST(LruTracker, FailedAccessesIgnored) {
  LruTracker lru;
  lru.OnEvent(Ev(Op::kOpen, "/a", 10, 1, OpStatus::kNoEnt));
  EXPECT_EQ(lru.tracked_files(), 0u);
}

TEST(LruTracker, StatCountsAsReference) {
  LruTracker lru;
  lru.OnEvent(Ev(Op::kOpen, "/a", 10, 1));
  lru.OnEvent(Ev(Op::kStat, "/b", 20, 2));
  EXPECT_EQ(lru.CoverageOrder()[0], "/b");
}

TEST(LruTracker, UnlinkForgets) {
  LruTracker lru;
  lru.OnEvent(Ev(Op::kOpen, "/a", 10, 1));
  lru.OnEvent(Ev(Op::kUnlink, "/a", 20, 2));
  EXPECT_EQ(lru.tracked_files(), 0u);
}

TEST(LruTracker, RenameTransfersRecency) {
  LruTracker lru;
  lru.OnEvent(Ev(Op::kOpen, "/old", 10, 1));
  TraceEvent mv = Ev(Op::kRename, "/old", 20, 2);
  mv.path2 = "/new";
  lru.OnEvent(mv);
  EXPECT_FALSE(lru.LastReference("/old").has_value());
  EXPECT_TRUE(lru.LastReference("/new").has_value());
}

TEST(LruTracker, DirectoryOpsIgnored) {
  LruTracker lru;
  lru.OnEvent(Ev(Op::kOpenDir, "/dir", 10, 1));
  lru.OnEvent(Ev(Op::kReadDir, "/dir", 11, 2));
  EXPECT_EQ(lru.tracked_files(), 0u);
}

TEST(LruTracker, TieBreakBySequence) {
  LruTracker lru;
  lru.OnEvent(Ev(Op::kOpen, "/a", 10, 1));
  lru.OnEvent(Ev(Op::kOpen, "/b", 10, 2));  // same timestamp, later seq
  EXPECT_EQ(lru.CoverageOrder()[0], "/b");
}

// The paper's 4-step LRU miss-free computation: the hoard must reach the
// oldest file referenced during the period.
TEST(LruMissFree, PaperAlgorithm) {
  LruTracker lru;
  // Before disconnection: e (oldest) ... a (newest), sizes all 10.
  lru.OnEvent(Ev(Op::kOpen, "/e", 10, 1));
  lru.OnEvent(Ev(Op::kOpen, "/d", 20, 2));
  lru.OnEvent(Ev(Op::kOpen, "/c", 30, 3));
  lru.OnEvent(Ev(Op::kOpen, "/b", 40, 4));
  lru.OnEvent(Ev(Op::kOpen, "/a", 50, 5));

  // During disconnection the user touches /a and /d. LRU must keep
  // everything down to /d: {a, b, c, d} = 40 bytes.
  const auto result = ComputeMissFree(lru.CoverageOrder(), {"/a", "/d"},
                                      [](const std::string&) -> uint64_t { return 10; });
  EXPECT_EQ(result.bytes, 40u);
  EXPECT_EQ(result.uncovered, 0u);
}

TEST(LruMissFree, UncoveredFilesReported) {
  LruTracker lru;
  lru.OnEvent(Ev(Op::kOpen, "/a", 10, 1));
  const auto result = ComputeMissFree(lru.CoverageOrder(), {"/a", "/never-seen"},
                                      [](const std::string&) -> uint64_t { return 10; });
  EXPECT_EQ(result.uncovered, 1u);
}

// A find-style scan refreshes everything, destroying the recency signal —
// the paper's core criticism of LRU hoarding (Section 4.1).
TEST(LruTracker, FindScanDestroysHistory) {
  LruTracker lru;
  // The user worked on /proj/a then /proj/b.
  lru.OnEvent(Ev(Op::kOpen, "/proj/a", 10, 1));
  lru.OnEvent(Ev(Op::kOpen, "/proj/b", 20, 2));
  // find stats a pile of junk afterwards.
  for (int i = 0; i < 50; ++i) {
    lru.OnEvent(Ev(Op::kStat, "/junk/" + std::to_string(i), 100 + i, 10 + i));
  }
  const auto order = lru.CoverageOrder();
  // The junk now outranks the real working files.
  const auto pos_a = std::find(order.begin(), order.end(), "/proj/a") - order.begin();
  EXPECT_GE(pos_a, 50);
}

// --- Coda variants ----------------------------------------------------------------

TEST(CodaPriority, PureProfileOrdersByPriority) {
  CodaHoardProfile profile;
  profile.SetPriority("/important", 100);
  profile.SetPriority("/meh", 1);
  CodaPriorityTracker coda(CodaVariant::kPureProfile, profile);
  coda.OnEvent(Ev(Op::kOpen, "/meh/x", 100, 1));
  coda.OnEvent(Ev(Op::kOpen, "/important/y", 10, 2));  // older but prioritized
  const auto order = coda.CoverageOrder(200);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "/important/y");
}

TEST(CodaPriority, BoundedRecentFilesFirst) {
  CodaHoardProfile profile;
  profile.SetPriority("/system", 1000);
  CodaPriorityTracker coda(CodaVariant::kBounded, profile, 0.5, /*age_bound_hours=*/1.0);
  const Time now = 10 * kMicrosPerHour;
  coda.OnEvent(Ev(Op::kOpen, "/system/lib", 1 * kMicrosPerHour, 1));  // old, high prio
  coda.OnEvent(Ev(Op::kOpen, "/home/u/doc", now - kMicrosPerHour / 2, 2));  // young
  const auto order = coda.CoverageOrder(now);
  EXPECT_EQ(order[0], "/home/u/doc") << "within the bound, recency governs";
  EXPECT_EQ(order[1], "/system/lib");
}

TEST(CodaPriority, BoundedOldFilesByProfile) {
  CodaHoardProfile profile;
  profile.SetPriority("/system", 1000);
  CodaPriorityTracker coda(CodaVariant::kBounded, profile, 0.5, 1.0);
  const Time now = 100 * kMicrosPerHour;
  coda.OnEvent(Ev(Op::kOpen, "/system/lib", 1 * kMicrosPerHour, 1));
  coda.OnEvent(Ev(Op::kOpen, "/home/u/doc", 2 * kMicrosPerHour, 2));  // old too
  const auto order = coda.CoverageOrder(now);
  EXPECT_EQ(order[0], "/system/lib") << "past the bound, the profile governs";
}

TEST(CodaPriority, HybridBalances) {
  CodaHoardProfile profile;
  profile.SetPriority("/p", 10);
  CodaPriorityTracker coda(CodaVariant::kHybrid, profile, 0.5);
  coda.OnEvent(Ev(Op::kOpen, "/p/prioritized", 0, 1));
  coda.OnEvent(Ev(Op::kOpen, "/q/recent", 9 * kMicrosPerHour, 2));
  // Priority contribution 5 vs age penalty: /p is 10h old (-5), /q 1h (-0.5).
  const auto order = coda.CoverageOrder(10 * kMicrosPerHour);
  EXPECT_EQ(order[0], "/p/prioritized");
}

TEST(CodaProfile, LongestPrefixWins) {
  CodaHoardProfile profile;
  profile.SetPriority("/home", 10);
  profile.SetPriority("/home/u/proj", 99);
  EXPECT_EQ(profile.PriorityOf("/home/u/proj/a.c"), 99);
  EXPECT_EQ(profile.PriorityOf("/home/u/other"), 10);
  EXPECT_EQ(profile.PriorityOf("/elsewhere"), 0);
}

}  // namespace
}  // namespace seer
