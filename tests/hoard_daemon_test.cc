// Tests for automated periodic hoard filling (Section 2).
#include "src/core/hoard_daemon.h"

#include <algorithm>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/core/durable_correlator.h"
#include "src/util/fs.h"

namespace seer {
namespace {

FileReference Ref(Pid pid, RefKind kind, const std::string& path, Time time) {
  FileReference r;
  r.pid = pid;
  r.kind = kind;
  r.path = GlobalPaths().Intern(path);
  r.time = time;
  return r;
}

class HoardDaemonTest : public ::testing::Test {
 protected:
  HoardDaemonTest()
      : observer_(ObserverConfig{}, nullptr),
        manager_(1'000'000),
        daemon_(&correlator_, &observer_, &manager_, &miss_log_,
                [this](const std::vector<std::string>& target) {
                  installed_.clear();
                  installed_.insert(target.begin(), target.end());
                  ++installs_;
                },
                [](PathId) -> uint64_t { return 100; }, MakeConfig()) {
    // A small active project.
    for (int i = 0; i < 3; ++i) {
      InvestigatedRelation rel;
      rel.files = {"/p/a", "/p/b"};
      rel.strength = 50.0;
      correlator_.AddInvestigatedRelation(rel);
      correlator_.OnReference(Ref(1, RefKind::kPoint, "/p/a", i * 10 + 1));
      correlator_.OnReference(Ref(1, RefKind::kPoint, "/p/b", i * 10 + 2));
    }
  }

  static HoardDaemon::Config MakeConfig() {
    HoardDaemon::Config config;
    config.interval = kMicrosPerHour;
    return config;
  }

  Correlator correlator_;
  Observer observer_;
  HoardManager manager_;
  MissLog miss_log_;
  std::set<std::string> installed_;
  size_t installs_ = 0;
  HoardDaemon daemon_;
};

TEST_F(HoardDaemonTest, FirstTickFills) {
  EXPECT_TRUE(daemon_.MaybeRefill(0));
  EXPECT_EQ(installs_, 1u);
  EXPECT_EQ(installed_.count("/p/a"), 1u);
  EXPECT_EQ(installed_.count("/p/b"), 1u);
}

TEST_F(HoardDaemonTest, RespectsInterval) {
  EXPECT_TRUE(daemon_.MaybeRefill(0));
  EXPECT_FALSE(daemon_.MaybeRefill(kMicrosPerHour / 2));
  EXPECT_FALSE(daemon_.MaybeRefill(kMicrosPerHour - 1));
  EXPECT_TRUE(daemon_.MaybeRefill(kMicrosPerHour));
  EXPECT_EQ(daemon_.refill_count(), 2u);
}

TEST_F(HoardDaemonTest, ForceRefillIgnoresInterval) {
  daemon_.MaybeRefill(0);
  const auto selection = daemon_.ForceRefill(1);
  EXPECT_EQ(installs_, 2u);
  EXPECT_TRUE(selection.Contains("/p/a"));
}

TEST_F(HoardDaemonTest, PendingMissesGetPinned) {
  miss_log_.RecordManual("/elsewhere/needed", 5, MissSeverity::kTaskChange);
  daemon_.ForceRefill(10);
  EXPECT_EQ(installed_.count("/elsewhere/needed"), 1u)
      << "a missed file must be pinned into the next hoard";
  EXPECT_EQ(manager_.pinned().count(GlobalPaths().Intern("/elsewhere/needed")), 1u);
}

TEST_F(HoardDaemonTest, LastSelectionRecorded) {
  daemon_.ForceRefill(10);
  EXPECT_GT(daemon_.last_selection().files.size(), 0u);
  EXPECT_EQ(daemon_.last_fill_time(), 10);
}

TEST(HoardDaemonInvestigators, RunsInvestigatorsWhenConfigured) {
  SimFilesystem fs;
  fs.MkdirAll("/p");
  fs.CreateFile("/p/m.c", 0);
  fs.CreateFile("/p/h.h", 100);
  fs.WriteContent("/p/m.c", "#include \"h.h\"\n");

  Correlator correlator;
  correlator.AddInvestigator(std::make_unique<IncludeScanner>(20.0));
  // The two files were referenced by different processes: no semantic
  // distance exists, so only the investigator can bind them.
  FileReference a;
  a.pid = 1;
  a.kind = RefKind::kPoint;
  a.path = GlobalPaths().Intern("/p/m.c");
  a.time = 1;
  correlator.OnReference(a);
  FileReference b = a;
  b.pid = 2;
  b.path = GlobalPaths().Intern("/p/h.h");
  b.time = 2;
  correlator.OnReference(b);

  Observer observer(ObserverConfig{}, &fs);
  HoardManager manager(1'000'000);
  MissLog miss_log;
  std::set<std::string> installed;
  HoardDaemon::Config config;
  config.investigate_fs = &fs;
  HoardDaemon daemon(
      &correlator, &observer, &manager, &miss_log,
      [&installed](const std::vector<std::string>& target) {
        installed = std::set<std::string>(target.begin(), target.end());
      },
      [](PathId) -> uint64_t { return 10; }, config);

  const HoardSelection sel = daemon.ForceRefill(1);
  EXPECT_TRUE(sel.Contains("/p/m.c"));
  EXPECT_TRUE(sel.Contains("/p/h.h"));
  // And the investigator actually bound them into one project.
  const ClusterSet clusters = correlator.BuildClusters();
  const FileId m = correlator.files().FindPath("/p/m.c");
  const FileId h = correlator.files().FindPath("/p/h.h");
  bool together = false;
  for (const uint32_t c : clusters.ClustersOf(m)) {
    const auto& members = clusters.clusters[c].members;
    together |= std::find(members.begin(), members.end(), h) != members.end();
  }
  EXPECT_TRUE(together);
}

TEST(HoardDaemonCheckpoint, RefillsAndFatWalsTriggerCheckpoints) {
  RealFs fs;
  const std::string dir = ::testing::TempDir() + "seer_daemon_ckpt";
  std::filesystem::remove_all(dir);
  auto opened = DurableCorrelator::Open(&fs, dir);
  ASSERT_TRUE(opened.ok()) << opened.status();
  DurableCorrelator& durable = **opened;
  for (int i = 0; i < 4; ++i) {
    durable.OnReference(Ref(1, RefKind::kPoint, "/p/f" + std::to_string(i), i + 1));
  }

  Observer observer(ObserverConfig{}, nullptr);
  HoardManager manager(1'000'000);
  MissLog miss_log;
  HoardDaemon::Config config;
  config.interval = kMicrosPerHour;
  config.durable = &durable;
  config.wal_checkpoint_bytes = 64;  // tiny threshold: a few records trip it
  HoardDaemon daemon(
      &durable.correlator(), &observer, &manager, &miss_log,
      [](const std::vector<std::string>&) {}, [](PathId) -> uint64_t { return 10; },
      config);

  // Every refill checkpoints, regardless of WAL size.
  const uint64_t before = durable.generation();
  daemon.ForceRefill(1);
  EXPECT_EQ(daemon.checkpoint_count(), 1u);
  EXPECT_TRUE(daemon.last_checkpoint_status().ok());
  EXPECT_GT(durable.generation(), before);
  EXPECT_EQ(durable.wal_bytes(), 16u) << "fresh WAL: header only";

  // Between refills, only a WAL past the size threshold compacts.
  ASSERT_FALSE(daemon.MaybeRefill(2));
  EXPECT_EQ(daemon.checkpoint_count(), 1u) << "small WAL, no checkpoint";
  for (int i = 0; i < 40; ++i) {
    durable.OnReference(Ref(1, RefKind::kPoint, "/w/f" + std::to_string(i), 100 + i));
  }
  ASSERT_GT(durable.wal_bytes(), config.wal_checkpoint_bytes);
  const uint64_t grown = durable.generation();
  ASSERT_FALSE(daemon.MaybeRefill(3)) << "interval not elapsed";
  EXPECT_EQ(daemon.checkpoint_count(), 2u) << "fat WAL forces compaction";
  EXPECT_GT(durable.generation(), grown);
  // Settle the in-flight encode/write before inspecting the store: Verify
  // scanning the directory must not race the background rename/prune.
  ASSERT_TRUE(durable.FinishCheckpoint().ok());
  EXPECT_EQ(durable.last_checkpoint_stats().generation, durable.generation());
  EXPECT_GT(durable.last_checkpoint_stats().bytes, 0u);
  EXPECT_TRUE(durable.store().Verify().ok());
}

TEST(HoardDaemonCheckpoint, DaemonHarvestsCheckpointStats) {
  RealFs fs;
  const std::string dir = ::testing::TempDir() + "seer_daemon_ckpt_stats";
  std::filesystem::remove_all(dir);
  auto opened = DurableCorrelator::Open(&fs, dir);
  ASSERT_TRUE(opened.ok()) << opened.status();
  DurableCorrelator& durable = **opened;

  Observer observer(ObserverConfig{}, nullptr);
  HoardManager manager(1'000'000);
  MissLog miss_log;
  HoardDaemon::Config config;
  config.interval = kMicrosPerHour;
  config.durable = &durable;
  HoardDaemon daemon(
      &durable.correlator(), &observer, &manager, &miss_log,
      [](const std::vector<std::string>&) {}, [](PathId) -> uint64_t { return 10; },
      config);

  durable.OnReference(Ref(1, RefKind::kPoint, "/p/a", 1));
  daemon.ForceRefill(1);
  const uint64_t first = durable.generation();
  // The next refill settles the first checkpoint inside BeginCheckpoint;
  // the daemon's snapshot of the stats then names that generation.
  durable.OnReference(Ref(1, RefKind::kPoint, "/p/b", 2));
  daemon.ForceRefill(kMicrosPerHour + 1);
  EXPECT_EQ(daemon.last_checkpoint_stats().generation, first);
  EXPECT_GT(daemon.last_checkpoint_stats().bytes, 0u);
  EXPECT_TRUE(daemon.last_checkpoint_status().ok());
  ASSERT_TRUE(durable.FinishCheckpoint().ok());
  EXPECT_TRUE(durable.store().Verify().ok());
}

}  // namespace
}  // namespace seer
