// Tests for directory reorganisation suggestions (Section 7).
#include "src/core/reorganizer.h"

#include <gtest/gtest.h>

namespace seer {
namespace {

FileReference Ref(Pid pid, const std::string& path, Time time) {
  FileReference r;
  r.pid = pid;
  r.kind = RefKind::kPoint;
  r.path = GlobalPaths().Intern(path);
  r.time = time;
  return r;
}

class ReorganizerTest : public ::testing::Test {
 protected:
  ReorganizerTest() : correlator_(MakeParams()) {}

  static SeerParams MakeParams() {
    SeerParams p;
    p.dir_distance_weight = 0.0;  // let the stray file cluster across dirs
    return p;
  }

  // A project in /home/u/proj with one member stranded in /home/u/misc.
  void BuildStrayScenario() {
    const std::vector<std::string> members = {
        "/home/u/proj/a.c", "/home/u/proj/b.c", "/home/u/proj/c.c",
        "/home/u/proj/d.h", "/home/u/proj/e.h", "/home/u/misc/stray.c",
    };
    InvestigatedRelation rel;
    rel.files = members;
    rel.strength = 50.0;
    correlator_.AddInvestigatedRelation(rel);
    Time t = 0;
    for (const auto& m : members) {
      correlator_.OnReference(Ref(1, m, t += kMicrosPerSecond));
    }
  }

  Correlator correlator_;
};

TEST_F(ReorganizerTest, SuggestsMovingTheStray) {
  BuildStrayScenario();
  const auto suggestions =
      SuggestReorganization(correlator_, correlator_.BuildClusters());
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].path, "/home/u/misc/stray.c");
  EXPECT_EQ(suggestions[0].from_dir, "/home/u/misc");
  EXPECT_EQ(suggestions[0].to_dir, "/home/u/proj");
  EXPECT_DOUBLE_EQ(suggestions[0].confidence, 1.0);
  EXPECT_EQ(suggestions[0].cluster_size, 6u);
}

TEST_F(ReorganizerTest, WellFiledProjectYieldsNothing) {
  const std::vector<std::string> members = {
      "/home/u/proj/a.c", "/home/u/proj/b.c", "/home/u/proj/c.c",
      "/home/u/proj/d.h", "/home/u/proj/e.h",
  };
  InvestigatedRelation rel;
  rel.files = members;
  rel.strength = 50.0;
  correlator_.AddInvestigatedRelation(rel);
  Time t = 0;
  for (const auto& m : members) {
    correlator_.OnReference(Ref(1, m, t += kMicrosPerSecond));
  }
  EXPECT_TRUE(SuggestReorganization(correlator_, correlator_.BuildClusters()).empty());
}

TEST_F(ReorganizerTest, FrozenPrefixesAreNeverMoved) {
  const std::vector<std::string> members = {
      "/home/u/proj/a.c", "/home/u/proj/b.c", "/home/u/proj/c.c",
      "/home/u/proj/d.h", "/home/u/proj/e.h", "/usr/include/shared.h",
  };
  InvestigatedRelation rel;
  rel.files = members;
  rel.strength = 50.0;
  correlator_.AddInvestigatedRelation(rel);
  Time t = 0;
  for (const auto& m : members) {
    correlator_.OnReference(Ref(1, m, t += kMicrosPerSecond));
  }
  for (const auto& s : SuggestReorganization(correlator_, correlator_.BuildClusters())) {
    EXPECT_NE(s.path, "/usr/include/shared.h")
        << "system headers belong to packaging, not projects";
  }
}

TEST_F(ReorganizerTest, ConfidenceThresholdFilters) {
  BuildStrayScenario();
  ReorganizerConfig config;
  config.min_confidence = 1.01;  // impossible
  EXPECT_TRUE(
      SuggestReorganization(correlator_, correlator_.BuildClusters(), config).empty());
}

TEST_F(ReorganizerTest, TinyClustersCarryNoSignal) {
  InvestigatedRelation rel;
  rel.files = {"/home/u/a/x", "/home/u/b/y"};
  rel.strength = 50.0;
  correlator_.AddInvestigatedRelation(rel);
  correlator_.OnReference(Ref(1, "/home/u/a/x", 1));
  correlator_.OnReference(Ref(1, "/home/u/b/y", 2));
  EXPECT_TRUE(SuggestReorganization(correlator_, correlator_.BuildClusters()).empty());
}

TEST_F(ReorganizerTest, OrderedByConfidence) {
  BuildStrayScenario();
  // A second, weaker stray: its cluster is split 3/2 across directories.
  const std::vector<std::string> second = {
      "/home/u/docs/r1", "/home/u/docs/r2", "/home/u/docs/r3",
      "/home/u/old/r4",  "/home/u/old/weak",
  };
  InvestigatedRelation rel;
  rel.files = second;
  rel.strength = 60.0;
  correlator_.AddInvestigatedRelation(rel);
  Time t = 100 * kMicrosPerSecond;
  for (const auto& m : second) {
    correlator_.OnReference(Ref(2, m, t += kMicrosPerSecond));
  }
  ReorganizerConfig config;
  config.min_confidence = 0.5;
  const auto suggestions =
      SuggestReorganization(correlator_, correlator_.BuildClusters(), config);
  ASSERT_GE(suggestions.size(), 2u);
  for (size_t i = 1; i < suggestions.size(); ++i) {
    EXPECT_GE(suggestions[i - 1].confidence, suggestions[i].confidence) << i;
  }
  EXPECT_EQ(suggestions[0].path, "/home/u/misc/stray.c");
}

}  // namespace
}  // namespace seer
