// Tests for the correlator: reference processing, deletion delay, rename
// identity transfer, exclusion, investigators, and end-to-end clustering of
// a compile-like reference pattern.
#include "src/core/correlator.h"

#include <gtest/gtest.h>

namespace seer {
namespace {

PathId P(std::string_view path) { return GlobalPaths().Intern(path); }

FileReference Ref(Pid pid, RefKind kind, const std::string& path, Time time) {
  FileReference r;
  r.pid = pid;
  r.kind = kind;
  r.path = P(path);
  r.time = time;
  return r;
}

class CorrelatorTest : public ::testing::Test {
 protected:
  CorrelatorTest() : correlator_(MakeParams()) {}

  static SeerParams MakeParams() {
    SeerParams p;
    p.cluster_near = 4;
    p.cluster_far = 2;
    p.dir_distance_weight = 0.0;
    p.delete_delay = 3;
    return p;
  }

  // Simulates one compilation: source held open while headers cycle.
  void Compile(Pid pid, const std::string& source, const std::vector<std::string>& headers) {
    correlator_.OnReference(Ref(pid, RefKind::kBegin, source, Now()));
    for (const auto& h : headers) {
      correlator_.OnReference(Ref(pid, RefKind::kBegin, h, Now()));
      correlator_.OnReference(Ref(pid, RefKind::kEnd, h, Now()));
    }
    correlator_.OnReference(Ref(pid, RefKind::kEnd, source, Now()));
  }

  Time Now() { return time_ += kMicrosPerSecond; }

  Correlator correlator_;
  Time time_ = 0;
};

TEST_F(CorrelatorTest, CompilePatternProducesCloseDistances) {
  for (int i = 0; i < 3; ++i) {
    Compile(1, "/p/main.c", {"/p/a.h", "/p/b.h"});
  }
  const double d = correlator_.Distance("/p/main.c", "/p/a.h");
  ASSERT_GE(d, 0.0);
  EXPECT_LT(d, 1.0);  // held-open source: distance ~0 to its headers
}

TEST_F(CorrelatorTest, CompilePatternClustersProject) {
  // Two separate projects compiled repeatedly in different processes.
  for (int i = 0; i < 6; ++i) {
    Compile(1, "/p1/main.c", {"/p1/a.h", "/p1/b.h", "/p1/c.h"});
    Compile(2, "/p2/main.c", {"/p2/x.h", "/p2/y.h", "/p2/z.h"});
  }
  const ClusterSet clusters = correlator_.BuildClusters();

  const FileId p1_main = correlator_.files().FindPath("/p1/main.c");
  const FileId p1_a = correlator_.files().FindPath("/p1/a.h");
  const FileId p2_main = correlator_.files().FindPath("/p2/main.c");

  // p1 files cluster together...
  bool together = false;
  for (const uint32_t c : clusters.ClustersOf(p1_main)) {
    const auto& members = clusters.clusters[c].members;
    if (std::find(members.begin(), members.end(), p1_a) != members.end()) {
      together = true;
    }
    // ...and never with p2.
    EXPECT_TRUE(std::find(members.begin(), members.end(), p2_main) == members.end());
  }
  EXPECT_TRUE(together);
}

TEST_F(CorrelatorTest, DeletionDelayedThenPurged) {
  for (int i = 0; i < 3; ++i) {
    Compile(1, "/p/main.c", {"/p/a.h"});
  }
  ASSERT_GE(correlator_.Distance("/p/main.c", "/p/a.h"), 0.0);

  // Deletion marks but does not purge (delay = 3 deletions).
  correlator_.OnFileDeleted(P("/p/a.h"), Now());
  const FileId id = correlator_.files().FindPath("/p/a.h");
  EXPECT_TRUE(correlator_.files().Get(id).deleted);

  // Three more deletions elsewhere expire the grace period. (Deletions of
  // never-referenced files are invisible to the correlator, so reference
  // the victims first.)
  for (const char* junk : {"/p/junk1", "/p/junk2", "/p/junk3"}) {
    correlator_.OnReference(Ref(1, RefKind::kPoint, junk, Now()));
    correlator_.OnFileDeleted(P(junk), Now());
  }
  EXPECT_LT(correlator_.Distance("/p/main.c", "/p/a.h"), 0.0) << "relations purged";
}

TEST_F(CorrelatorTest, ImmediateRecreationKeepsRelations) {
  for (int i = 0; i < 3; ++i) {
    Compile(1, "/p/main.c", {"/p/a.h"});
  }
  correlator_.OnFileDeleted(P("/p/a.h"), Now());
  // The name is reused right away (delete + recreate, Section 4.8).
  correlator_.OnReference(Ref(1, RefKind::kPoint, "/p/a.h", Now()));
  const FileId id = correlator_.files().FindPath("/p/a.h");
  EXPECT_FALSE(correlator_.files().Get(id).deleted);
  EXPECT_GE(correlator_.Distance("/p/main.c", "/p/a.h"), 0.0);
}

TEST_F(CorrelatorTest, RenameTransfersIdentity) {
  for (int i = 0; i < 3; ++i) {
    Compile(1, "/p/main.c", {"/p/old.h"});
  }
  correlator_.OnFileRenamed(P("/p/old.h"), P("/p/new.h"), Now());
  EXPECT_EQ(correlator_.files().FindPath("/p/old.h"), kInvalidFileId);
  EXPECT_GE(correlator_.Distance("/p/main.c", "/p/new.h"), 0.0)
      << "relationship data survives the rename";
}

TEST_F(CorrelatorTest, RenameOfUnknownFileJustInterns) {
  correlator_.OnFileRenamed(P("/p/ghost"), P("/p/solid"), Now());
  EXPECT_NE(correlator_.files().FindPath("/p/solid"), kInvalidFileId);
}

TEST_F(CorrelatorTest, ExclusionPurgesAndStops) {
  for (int i = 0; i < 3; ++i) {
    Compile(1, "/p/main.c", {"/p/lib.so"});
  }
  correlator_.OnFileExcluded(P("/p/lib.so"));
  EXPECT_LT(correlator_.Distance("/p/main.c", "/p/lib.so"), 0.0);

  // Further references to the excluded file must not recreate relations.
  Compile(1, "/p/main.c", {"/p/lib.so"});
  const FileId id = correlator_.files().FindPath("/p/lib.so");
  EXPECT_TRUE(correlator_.files().Get(id).excluded);
  EXPECT_TRUE(correlator_.relations().LiveNeighborIds(id).empty());
}

TEST_F(CorrelatorTest, InvestigatedRelationFeedsClustering) {
  correlator_.OnReference(Ref(1, RefKind::kPoint, "/p/a", Now()));
  correlator_.OnReference(Ref(2, RefKind::kPoint, "/p/b", Now()));  // different pid: no distance
  InvestigatedRelation rel;
  rel.files = {"/p/a", "/p/b"};
  rel.strength = 10.0;
  correlator_.AddInvestigatedRelation(rel);

  const ClusterSet clusters = correlator_.BuildClusters();
  const FileId a = correlator_.files().FindPath("/p/a");
  const FileId b = correlator_.files().FindPath("/p/b");
  bool together = false;
  for (const uint32_t c : clusters.ClustersOf(a)) {
    const auto& m = clusters.clusters[c].members;
    together |= std::find(m.begin(), m.end(), b) != m.end();
  }
  EXPECT_TRUE(together);
}

TEST_F(CorrelatorTest, RunInvestigatorsAgainstFilesystem) {
  SimFilesystem fs;
  fs.MkdirAll("/p");
  fs.CreateFile("/p/m.c", 0);
  fs.CreateFile("/p/h.h", 0);
  fs.WriteContent("/p/m.c", "#include \"h.h\"\n");

  correlator_.OnReference(Ref(1, RefKind::kPoint, "/p/m.c", Now()));
  correlator_.OnReference(Ref(2, RefKind::kPoint, "/p/h.h", Now()));
  correlator_.AddInvestigator(std::make_unique<IncludeScanner>(10.0));
  correlator_.RunInvestigators(fs);

  const ClusterSet clusters = correlator_.BuildClusters();
  const FileId m = correlator_.files().FindPath("/p/m.c");
  const FileId h = correlator_.files().FindPath("/p/h.h");
  bool together = false;
  for (const uint32_t c : clusters.ClustersOf(m)) {
    const auto& members = clusters.clusters[c].members;
    together |= std::find(members.begin(), members.end(), h) != members.end();
  }
  EXPECT_TRUE(together);
}

TEST_F(CorrelatorTest, MemoryBytesGrowsWithFiles) {
  const size_t before = correlator_.MemoryBytes();
  for (int i = 0; i < 100; ++i) {
    correlator_.OnReference(Ref(1, RefKind::kPoint, "/p/f" + std::to_string(i), Now()));
  }
  EXPECT_GT(correlator_.MemoryBytes(), before);
}

TEST_F(CorrelatorTest, NeighborPathsDiagnostic) {
  for (int i = 0; i < 3; ++i) {
    Compile(1, "/p/main.c", {"/p/a.h"});
  }
  const auto neighbors = correlator_.NeighborPaths("/p/main.c");
  EXPECT_TRUE(std::find(neighbors.begin(), neighbors.end(), "/p/a.h") != neighbors.end());
  EXPECT_TRUE(correlator_.NeighborPaths("/unknown").empty());
}

}  // namespace
}  // namespace seer
