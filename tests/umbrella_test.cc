// The umbrella header must pull in the entire public API and compile
// cleanly; this test exercises one symbol from each major area to keep the
// include list honest.
#include "src/seer.h"

#include <gtest/gtest.h>

namespace seer {
namespace {

TEST(Umbrella, EveryAreaReachable) {
  Rng rng(1);
  (void)rng.Next();
  EXPECT_EQ(NormalizePath("/a//b"), "/a/b");
  EXPECT_EQ(OpName(Op::kOpen), "open");
  SimFilesystem fs;
  EXPECT_TRUE(fs.Exists("/"));
  ProcessTable processes;
  SimClock clock;
  SyscallTracer tracer(&fs, &processes, &clock);
  Observer observer(ObserverConfig{}, &fs);
  Correlator correlator;
  HoardManager hoard(1);
  MissLog miss_log;
  AccessPredictor predictor;
  VersionVector vv;
  EXPECT_TRUE(vv.Empty());
  GossipNetwork gossip(2);
  EXPECT_EQ(gossip.replica_count(), 2);
  LruTracker lru;
  EXPECT_EQ(lru.tracked_files(), 0u);
  EXPECT_EQ(GetMachineProfile('A').name, 'A');
  EXPECT_EQ(ComputeMissFree({}, {}, [](const std::string&) { return 0ull; }).bytes, 0ull);
}

}  // namespace
}  // namespace seer
