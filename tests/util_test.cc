// Tests for the utility layer: deterministic RNG, statistics, path
// handling (including the directory-distance measure of Section 3.2), and
// the clustering engine's support structures (DSU, FlatMap, ThreadPool).
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/dsu.h"
#include "src/util/flat_map.h"
#include "src/util/path.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace seer {
namespace {

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoundedInRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

// The paper's unknown-file-size distribution: geometric with p = 0.00007,
// mean 14284 bytes.
TEST(Rng, GeometricMeanMatchesPaper) {
  Rng rng(11);
  double total = 0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) {
    total += static_cast<double>(rng.NextGeometric(0.00007));
  }
  const double mean = total / kSamples;
  EXPECT_NEAR(mean, 1.0 / 0.00007, 300.0);  // ~14286 +- 2%
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double total = 0;
  for (int i = 0; i < 100'000; ++i) {
    total += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(total / 100'000, 5.0, 0.15);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(17);
  std::vector<double> samples;
  for (int i = 0; i < 20'001; ++i) {
    samples.push_back(rng.NextLogNormal(std::log(2.0), 1.0));
  }
  EXPECT_NEAR(Percentile(samples, 50), 2.0, 0.15);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(19);
  int low = 0;
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t r = rng.NextZipf(100, 1.1);
    ASSERT_LT(r, 100u);
    if (r < 10) {
      ++low;
    }
  }
  EXPECT_GT(low, 5'000);  // top 10% of ranks get most of the mass
}

// --- stats ---------------------------------------------------------------------

TEST(Stats, SummaryBasics) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.total, 10.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummaryOddMedian) {
  EXPECT_DOUBLE_EQ(Summarize({5.0, 1.0, 3.0}).median, 3.0);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, Ci99ShrinksWithSamples) {
  std::vector<double> few = {1, 2, 3, 4, 5};
  std::vector<double> many;
  for (int i = 0; i < 500; ++i) {
    many.push_back(static_cast<double>(i % 5 + 1));
  }
  EXPECT_GT(Summarize(few).ci99_half_width, Summarize(many).ci99_half_width);
}

TEST(Stats, WelfordMatchesSummary) {
  Welford w;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    w.Add(x);
  }
  EXPECT_DOUBLE_EQ(w.Mean(), 5.0);
  EXPECT_NEAR(w.Stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, GeometricMeanOnline) {
  RunningGeometricMean g;
  g.Add(2.0);
  g.Add(8.0);
  EXPECT_NEAR(g.Mean(), 4.0, 1e-12);
}

TEST(Stats, GeometricMeanZeroFloor) {
  RunningGeometricMean g(0.5);
  g.Add(0.0);
  g.Add(0.0);
  EXPECT_NEAR(g.Mean(), 0.5, 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
}

// --- path ---------------------------------------------------------------------

TEST(Path, NormalizeCollapsesAndResolves) {
  EXPECT_EQ(NormalizePath("/a//b/./c"), "/a/b/c");
  EXPECT_EQ(NormalizePath("/a/b/../c"), "/a/c");
  EXPECT_EQ(NormalizePath("/../a"), "/a");
  EXPECT_EQ(NormalizePath("/"), "/");
  EXPECT_EQ(NormalizePath(""), ".");
}

TEST(Path, NormalizeIsIdempotent) {
  for (const char* p : {"/a/b/../c", "a/./b", "/x//y/z/..", "/", "..", "a/.."}) {
    EXPECT_EQ(NormalizePath(NormalizePath(p)), NormalizePath(p)) << p;
  }
}

TEST(Path, AbsoluteAgainstCwd) {
  EXPECT_EQ(AbsolutePath("/home/u", "proj/a.c"), "/home/u/proj/a.c");
  EXPECT_EQ(AbsolutePath("/home/u", "/etc/passwd"), "/etc/passwd");
  EXPECT_EQ(AbsolutePath("/home/u", "../v/x"), "/home/v/x");
}

TEST(Path, DirnameBasename) {
  EXPECT_EQ(Dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(Dirname("/a"), "/");
  EXPECT_EQ(Dirname("/"), "/");
  EXPECT_EQ(Basename("/a/b/c"), "c");
  EXPECT_EQ(Basename("/"), "");
}

TEST(Path, DotFileDetection) {
  EXPECT_TRUE(IsDotFile("/home/u/.login"));
  EXPECT_TRUE(IsDotFile(".cshrc"));
  EXPECT_FALSE(IsDotFile("/home/u/file"));
  EXPECT_FALSE(IsDotFile("/home/.hidden/file"));
}

TEST(Path, IsUnder) {
  EXPECT_TRUE(IsUnder("/tmp/x", "/tmp"));
  EXPECT_TRUE(IsUnder("/tmp", "/tmp"));
  EXPECT_FALSE(IsUnder("/tmpx/y", "/tmp"));
  EXPECT_TRUE(IsUnder("/anything", "/"));
}

// Section 3.2: zero within a directory, growing with tree separation.
TEST(Path, DirectoryDistance) {
  EXPECT_EQ(DirectoryDistance("/a/b/x.c", "/a/b/y.c"), 0);
  EXPECT_EQ(DirectoryDistance("/a/b/x.c", "/a/c/y.c"), 2);
  EXPECT_EQ(DirectoryDistance("/a/b/x.c", "/a/b/c/y.c"), 1);
  EXPECT_EQ(DirectoryDistance("/a/x", "/z/q/r/y"), 4);
  EXPECT_EQ(DirectoryDistance("/x", "/y"), 0);  // both in the root
}

TEST(Path, Extension) {
  EXPECT_EQ(Extension("/p/a.c"), "c");
  EXPECT_EQ(Extension("/p/a.tar.gz"), "gz");
  EXPECT_EQ(Extension("/p/Makefile"), "");
  EXPECT_EQ(Extension("/p/.hidden"), "");
}

// --- dsu ---------------------------------------------------------------------

TEST(Dsu, BasicUnionFind) {
  Dsu dsu(8);
  EXPECT_NE(dsu.Find(0), dsu.Find(1));
  dsu.Union(0, 1);
  dsu.Union(2, 3);
  EXPECT_EQ(dsu.Find(0), dsu.Find(1));
  EXPECT_EQ(dsu.Find(2), dsu.Find(3));
  EXPECT_NE(dsu.Find(1), dsu.Find(2));
  dsu.Union(1, 3);
  EXPECT_EQ(dsu.Find(0), dsu.Find(3));
  EXPECT_NE(dsu.Find(0), dsu.Find(7));
  dsu.Union(4, 4);  // self-union is a no-op
  EXPECT_EQ(dsu.Find(4), dsu.Find(4));
}

// Union by size bounds every root chain at log2(n) regardless of merge
// order. The tournament order (merge equal-size trees pairwise) is the
// worst case for tree height; the singleton-append order used to produce
// near-linear chains with naive linking.
TEST(Dsu, ChainLengthBoundedUnderPathologicalOrders) {
  constexpr uint32_t n = 1024;
  constexpr size_t log2_n = 10;

  Dsu tournament(n);
  for (uint32_t gap = 1; gap < n; gap *= 2) {
    for (uint32_t i = 0; i + gap < n; i += 2 * gap) {
      tournament.Union(i, i + gap);
    }
  }
  for (uint32_t x = 0; x < n; ++x) {
    EXPECT_LE(tournament.ChainLength(x), log2_n) << "element " << x;
  }
  EXPECT_EQ(tournament.Find(0), tournament.Find(n - 1));

  Dsu chain(n);
  for (uint32_t i = 1; i < n; ++i) {
    chain.Union(i, i - 1);  // always append to the growing set
  }
  for (uint32_t x = 0; x < n; ++x) {
    EXPECT_LE(chain.ChainLength(x), log2_n) << "element " << x;
  }
}

// --- flat_map ----------------------------------------------------------------

TEST(FlatMap, InsertFindGrowClear) {
  FlatMap<uint64_t, double> map(static_cast<uint64_t>(-1));
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(42), nullptr);

  // Push well past the initial capacity to exercise Grow().
  for (uint64_t k = 0; k < 1000; ++k) {
    bool inserted = false;
    map.InsertOrGet(k, &inserted) = static_cast<double>(k) * 3.0;
    EXPECT_TRUE(inserted);
  }
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t k = 0; k < 1000; ++k) {
    const double* v = map.Find(k);
    ASSERT_NE(v, nullptr) << "key " << k;
    EXPECT_EQ(*v, static_cast<double>(k) * 3.0);
  }
  EXPECT_EQ(map.Find(1000), nullptr);

  bool inserted = true;
  map.InsertOrGet(7, &inserted) += 1.0;  // accumulate on an existing key
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*map.Find(7), 22.0);
  EXPECT_EQ(map.size(), 1000u);

  size_t visited = 0;
  double sum = 0.0;
  map.ForEach([&](uint64_t, double v) {
    ++visited;
    sum += v;
  });
  EXPECT_EQ(visited, 1000u);
  EXPECT_EQ(sum, 3.0 * (999.0 * 1000.0 / 2.0) + 1.0);

  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);
  map[5] = 9.0;  // reusable after Clear
  EXPECT_EQ(*map.Find(5), 9.0);
}

// --- thread_pool -------------------------------------------------------------

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    constexpr size_t kChunks = 257;  // not a multiple of anything convenient
    std::unique_ptr<std::atomic<int>[]> runs(new std::atomic<int>[kChunks]);
    for (size_t i = 0; i < kChunks; ++i) {
      runs[i].store(0);
    }
    pool.ParallelChunks(kChunks, [&](size_t c) { runs[c].fetch_add(1); });
    for (size_t i = 0; i < kChunks; ++i) {
      EXPECT_EQ(runs[i].load(), 1) << "chunk " << i << " with " << threads << " threads";
    }
    // The pool is reusable for a second job.
    std::atomic<size_t> total{0};
    pool.ParallelChunks(64, [&](size_t c) { total.fetch_add(c); });
    EXPECT_EQ(total.load(), 64u * 63u / 2u);
  }
}

TEST(ThreadPool, ZeroChunksReturnsImmediately) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelChunks(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace seer
