// Tests for the control-file and parameter-file parsers.
#include <gtest/gtest.h>

#include "src/core/params_io.h"
#include "src/observer/control_file.h"

namespace seer {
namespace {

TEST(ControlFile, ParsesFullExample) {
  const char* text = R"(
# SEER system control file
clear
meaningless /usr/bin/xargs
meaningless /usr/bin/rdist
transient /tmp
transient /var/tmp
critical /etc
critical /sbin
dot-files on
frequent-threshold 0.01
frequent-min-total 500
meaningless-mode ratio
meaningless-ratio 0.25
meaningless-min-potential 30
getcwd-threshold 3
collapse-stat-open off
)";
  const auto config = ParseObserverControlFile(text);
  ASSERT_TRUE(config.has_value()) << config.status();
  EXPECT_EQ(config->meaningless_programs.size(), 2u);
  EXPECT_EQ(config->meaningless_programs.count("/usr/bin/xargs"), 1u);
  EXPECT_EQ(config->transient_dirs.size(), 2u);
  EXPECT_EQ(config->critical_prefixes.size(), 2u);
  EXPECT_TRUE(config->exclude_dot_files);
  EXPECT_DOUBLE_EQ(config->frequent_threshold, 0.01);
  EXPECT_EQ(config->frequent_min_total, 500u);
  EXPECT_EQ(config->meaningless_mode, MeaninglessMode::kRatioHeuristic);
  EXPECT_DOUBLE_EQ(config->meaningless_ratio, 0.25);
  EXPECT_EQ(config->meaningless_min_potential, 30u);
  EXPECT_EQ(config->getcwd_climb_threshold, 3);
  EXPECT_FALSE(config->collapse_stat_open);
}

TEST(ControlFile, ExtendsBaseWithoutClear) {
  ObserverConfig base;
  const size_t base_meaningless = base.meaningless_programs.size();
  const auto config = ParseObserverControlFile("meaningless /usr/bin/updatedb\n", base);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->meaningless_programs.size(), base_meaningless + 1);
}

TEST(ControlFile, ClearEmptiesListSettings) {
  const auto config = ParseObserverControlFile("clear\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_TRUE(config->meaningless_programs.empty());
  EXPECT_TRUE(config->transient_dirs.empty());
  EXPECT_TRUE(config->critical_prefixes.empty());
}

TEST(ControlFile, RejectsUnknownDirective) {
  const auto config = ParseObserverControlFile("frobnicate yes\n");
  ASSERT_FALSE(config.has_value());
  EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(config.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(config.status().message().find("frobnicate"), std::string::npos);
}

TEST(ControlFile, RejectsBadValues) {
  EXPECT_FALSE(ParseObserverControlFile("frequent-threshold 2.5\n").has_value());
  EXPECT_FALSE(ParseObserverControlFile("dot-files maybe\n").has_value());
  EXPECT_FALSE(ParseObserverControlFile("meaningless-mode psychic\n").has_value());
  EXPECT_FALSE(ParseObserverControlFile("meaningless\n").has_value());
}

TEST(ControlFile, AllModesParse) {
  for (const auto& [name, mode] :
       std::initializer_list<std::pair<const char*, MeaninglessMode>>{
           {"control-list", MeaninglessMode::kControlListOnly},
           {"any-dir-read", MeaninglessMode::kAnyDirectoryRead},
           {"while-dir-open", MeaninglessMode::kWhileDirectoryOpen},
           {"ratio", MeaninglessMode::kRatioHeuristic}}) {
    const auto config =
        ParseObserverControlFile(std::string("meaningless-mode ") + name + "\n");
    ASSERT_TRUE(config.has_value()) << name;
    EXPECT_EQ(config->meaningless_mode, mode) << name;
  }
}

TEST(ControlFile, FormatRoundTrips) {
  ObserverConfig config;
  config.meaningless_programs = {"/a", "/b"};
  config.transient_dirs = {"/tmp", "/scratch"};
  config.critical_prefixes = {"/etc"};
  config.exclude_dot_files = false;
  config.frequent_threshold = 0.004;
  config.frequent_min_total = 123;
  config.meaningless_mode = MeaninglessMode::kAnyDirectoryRead;
  config.meaningless_ratio = 0.4;
  config.meaningless_min_potential = 7;
  config.getcwd_climb_threshold = 5;
  config.collapse_stat_open = false;

  const auto back = ParseObserverControlFile(FormatObserverControlFile(config));
  ASSERT_TRUE(back.has_value()) << back.status();
  EXPECT_EQ(back->meaningless_programs, config.meaningless_programs);
  EXPECT_EQ(back->transient_dirs, config.transient_dirs);
  EXPECT_EQ(back->critical_prefixes, config.critical_prefixes);
  EXPECT_EQ(back->exclude_dot_files, config.exclude_dot_files);
  EXPECT_DOUBLE_EQ(back->frequent_threshold, config.frequent_threshold);
  EXPECT_EQ(back->frequent_min_total, config.frequent_min_total);
  EXPECT_EQ(back->meaningless_mode, config.meaningless_mode);
  EXPECT_DOUBLE_EQ(back->meaningless_ratio, config.meaningless_ratio);
  EXPECT_EQ(back->getcwd_climb_threshold, config.getcwd_climb_threshold);
}

// --- params ----------------------------------------------------------------------

TEST(ParamsIo, ParsesAllKeys) {
  const char* text = R"(
n 15            # neighbors
M 80
kn 12
kf 5
distance sequence
mean arithmetic
per-process off
aging-updates 9000
delete-delay 32
dir-weight 0.5
investigator-weight 2
temporal-horizon 120
)";
  const auto params = ParseSeerParams(text);
  ASSERT_TRUE(params.has_value()) << params.status();
  EXPECT_EQ(params->max_neighbors, 15);
  EXPECT_EQ(params->distance_horizon, 80);
  EXPECT_EQ(params->cluster_near, 12);
  EXPECT_EQ(params->cluster_far, 5);
  EXPECT_EQ(params->distance_kind, DistanceKind::kSequence);
  EXPECT_EQ(params->mean_kind, MeanKind::kArithmetic);
  EXPECT_FALSE(params->per_process_streams);
  EXPECT_EQ(params->aging_updates, 9000u);
  EXPECT_EQ(params->delete_delay, 32u);
  EXPECT_DOUBLE_EQ(params->dir_distance_weight, 0.5);
  EXPECT_DOUBLE_EQ(params->investigator_weight, 2.0);
  EXPECT_DOUBLE_EQ(params->temporal_horizon_seconds, 120.0);
}

TEST(ParamsIo, RejectsKfNotBelowKn) {
  const auto params = ParseSeerParams("kn 5\nkf 5\n");
  ASSERT_FALSE(params.has_value());
  EXPECT_NE(params.status().message().find("kf"), std::string::npos);
}

TEST(ParamsIo, RejectsUnknownKeyAndBadValues) {
  EXPECT_FALSE(ParseSeerParams("bogus 1\n").has_value());
  EXPECT_FALSE(ParseSeerParams("n zero\n").has_value());
  EXPECT_FALSE(ParseSeerParams("distance psychic\n").has_value());
}

TEST(ParamsIo, FormatRoundTrips) {
  SeerParams params;
  params.max_neighbors = 33;
  params.cluster_near = 9;
  params.cluster_far = 4;
  params.distance_kind = DistanceKind::kTemporal;
  params.per_process_streams = false;
  const auto back = ParseSeerParams(FormatSeerParams(params));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->max_neighbors, params.max_neighbors);
  EXPECT_EQ(back->cluster_near, params.cluster_near);
  EXPECT_EQ(back->cluster_far, params.cluster_far);
  EXPECT_EQ(back->distance_kind, params.distance_kind);
  EXPECT_EQ(back->per_process_streams, params.per_process_streams);
}

}  // namespace
}  // namespace seer
