// Tests for the observer's Section 4 heuristics: meaningless processes,
// getcwd detection, frequent files, critical files, temporaries, non-files,
// stat-open collapse, and miss surfacing.
#include "src/observer/observer.h"

#include <gtest/gtest.h>

#include "src/process/syscall_tracer.h"
#include "src/vfs/sim_filesystem.h"

namespace seer {
namespace {

// Sinks now deal in interned ids; tests compare against literal pathnames
// through the global interner.
std::string PathName(PathId id) { return PathString(id); }

// Records everything the observer emits.
class RecordingSink : public ReferenceSink {
 public:
  void OnReference(const FileReference& ref) override { refs.push_back(ref); }
  void OnProcessFork(Pid parent, Pid child) override { forks.emplace_back(parent, child); }
  void OnProcessExit(Pid pid) override { exits.push_back(pid); }
  void OnFileDeleted(PathId path, Time) override { deleted.push_back(PathName(path)); }
  void OnFileRenamed(PathId from, PathId to, Time) override {
    renamed.emplace_back(PathName(from), PathName(to));
  }
  void OnFileExcluded(PathId path) override { excluded.push_back(PathName(path)); }

  size_t CountRefsTo(const std::string& path) const {
    const PathId id = GlobalPaths().Find(path);
    size_t n = 0;
    for (const auto& r : refs) {
      if (r.path == id && id != kInvalidPathId) {
        ++n;
      }
    }
    return n;
  }

  std::vector<FileReference> refs;
  std::vector<std::pair<Pid, Pid>> forks;
  std::vector<Pid> exits;
  std::vector<std::string> deleted;
  std::vector<std::pair<std::string, std::string>> renamed;
  std::vector<std::string> excluded;
};

class RecordingMissListener : public MissListener {
 public:
  void OnNotLocalAccess(PathId path, Pid, Time) override { misses.push_back(PathName(path)); }
  std::vector<std::string> misses;
};

class ObserverHarness {
 public:
  explicit ObserverHarness(ObserverConfig config = MakeConfig())
      : tracer_(&fs_, &processes_, &clock_), observer_(config, &fs_) {
    observer_.set_sink(&sink_);
    observer_.set_miss_listener(&misses_);
    tracer_.AddSink(&observer_);
    fs_.MkdirAll("/home/u/proj");
    fs_.MkdirAll("/bin");
    fs_.MkdirAll("/tmp");
    fs_.MkdirAll("/etc");
    fs_.CreateFile("/bin/prog", 1000);
    fs_.CreateFile("/bin/editor", 1000);
    fs_.CreateFile("/bin/find", 1000);
    user_ = processes_.SpawnInit(1000, "/home/u");
  }

  static ObserverConfig MakeConfig() {
    ObserverConfig c;
    c.frequent_min_total = 20;     // small thresholds for testing
    c.meaningless_min_potential = 5;
    return c;
  }

  Pid NewProcess(const std::string& program) {
    const Pid pid = tracer_.Fork(user_).pid;
    tracer_.Exec(pid, program);
    return pid;
  }

  SimFilesystem fs_;
  ProcessTable processes_;
  SimClock clock_;
  SyscallTracer tracer_;
  RecordingSink sink_;
  RecordingMissListener misses_;
  Observer observer_;
  Pid user_;
};

TEST(Observer, OpenCloseEmitsBeginEnd) {
  ObserverHarness h;
  h.fs_.CreateFile("/home/u/proj/a.c", 100);
  const Pid p = h.NewProcess("/bin/prog");
  const auto r = h.tracer_.Open(p, "/home/u/proj/a.c", false);
  h.tracer_.Close(p, r.fd);

  ASSERT_GE(h.sink_.refs.size(), 2u);
  bool saw_begin = false;
  bool saw_end = false;
  for (const auto& ref : h.sink_.refs) {
    if (PathName(ref.path) == "/home/u/proj/a.c") {
      saw_begin |= ref.kind == RefKind::kBegin;
      saw_end |= ref.kind == RefKind::kEnd;
    }
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
}

TEST(Observer, ExecIsBeginReferenceToProgram) {
  ObserverHarness h;
  const Pid p = h.NewProcess("/bin/prog");
  (void)p;
  EXPECT_GE(h.sink_.CountRefsTo("/bin/prog"), 1u);
}

TEST(Observer, ExitEmitsEndAndForwardsLifecycle) {
  ObserverHarness h;
  const Pid p = h.NewProcess("/bin/prog");
  h.tracer_.Exit(p);
  EXPECT_FALSE(h.sink_.exits.empty());
  EXPECT_EQ(h.sink_.exits.back(), p);
}

TEST(Observer, ForkForwarded) {
  ObserverHarness h;
  const Pid p = h.NewProcess("/bin/prog");
  const Pid child = h.tracer_.Fork(p).pid;
  ASSERT_FALSE(h.sink_.forks.empty());
  EXPECT_EQ(h.sink_.forks.back().first, p);
  EXPECT_EQ(h.sink_.forks.back().second, child);
}

// Section 4.5: files in transient directories are ignored outright.
TEST(Observer, TransientDirectoryIgnored) {
  ObserverHarness h;
  const Pid p = h.NewProcess("/bin/prog");
  h.tracer_.Create(p, "/tmp/scratch", 10);
  EXPECT_EQ(h.sink_.CountRefsTo("/tmp/scratch"), 0u);
}

// Section 4.3: critical prefixes and dot files are always-hoard, never fed.
TEST(Observer, CriticalPrefixAlwaysHoardedNeverEmitted) {
  ObserverHarness h;
  h.fs_.CreateFile("/etc/passwd", 100);
  const Pid p = h.NewProcess("/bin/prog");
  const auto r = h.tracer_.Open(p, "/etc/passwd", false);
  h.tracer_.Close(p, r.fd);
  EXPECT_EQ(h.sink_.CountRefsTo("/etc/passwd"), 0u);
  EXPECT_TRUE(h.observer_.AlwaysHoards("/etc/passwd"));
}

TEST(Observer, DotFileTreatedAsCritical) {
  ObserverHarness h;
  h.fs_.CreateFile("/home/u/.cshrc", 100);
  const Pid p = h.NewProcess("/bin/prog");
  const auto r = h.tracer_.Open(p, "/home/u/.cshrc", false);
  h.tracer_.Close(p, r.fd);
  EXPECT_EQ(h.sink_.CountRefsTo("/home/u/.cshrc"), 0u);
  EXPECT_TRUE(h.observer_.AlwaysHoards("/home/u/.cshrc"));
}

// Section 4.6: devices are always hoarded, never fed to the correlator.
TEST(Observer, DeviceNodesAlwaysHoarded) {
  ObserverHarness h;
  h.fs_.MkdirAll("/dev");
  h.fs_.CreateSpecial("/dev/tty9", NodeKind::kDevice);
  const Pid p = h.NewProcess("/bin/prog");
  h.tracer_.Stat(p, "/dev/tty9");
  EXPECT_EQ(h.sink_.CountRefsTo("/dev/tty9"), 0u);
  EXPECT_TRUE(h.observer_.AlwaysHoards("/dev/tty9"));
}

// Section 4.2: a file exceeding 1% of all accesses becomes frequent: it is
// excluded from distances and hoarded unconditionally.
TEST(Observer, FrequentFileExcludedAndAlwaysHoarded) {
  ObserverHarness h;
  h.fs_.CreateFile("/home/u/proj/libc.so", 100);
  for (int i = 0; i < 60; ++i) {
    h.fs_.CreateFile("/home/u/proj/f" + std::to_string(i) + ".c", 10);
  }
  const Pid p = h.NewProcess("/bin/prog");
  // The shared object is touched constantly, everything else once.
  for (int i = 0; i < 60; ++i) {
    auto r = h.tracer_.Open(p, "/home/u/proj/libc.so", false);
    h.tracer_.Close(p, r.fd);
    r = h.tracer_.Open(p, "/home/u/proj/f" + std::to_string(i) + ".c", false);
    h.tracer_.Close(p, r.fd);
  }
  EXPECT_EQ(h.observer_.frequent_files().count(GlobalPaths().Find("/home/u/proj/libc.so")), 1u);
  EXPECT_TRUE(h.observer_.AlwaysHoards("/home/u/proj/libc.so"));
  ASSERT_FALSE(h.sink_.excluded.empty());
  EXPECT_EQ(h.sink_.excluded.front(), "/home/u/proj/libc.so");
}

// Section 4.1 heuristic #4: a program that touches (nearly) every file it
// learns about from reading directories becomes meaningless.
TEST(Observer, FindLikeProgramBecomesMeaningless) {
  ObserverHarness h;
  for (int i = 0; i < 20; ++i) {
    h.fs_.CreateFile("/home/u/proj/s" + std::to_string(i), 10);
  }
  const Pid find = h.NewProcess("/bin/find");
  const auto d = h.tracer_.OpenDir(find, "/home/u/proj");
  h.tracer_.ReadDir(find, d.fd);
  for (int i = 0; i < 20; ++i) {
    h.tracer_.Stat(find, "/home/u/proj/s" + std::to_string(i));
  }
  h.tracer_.CloseDir(find, d.fd);
  h.tracer_.Exit(find);
  EXPECT_TRUE(h.observer_.IsMeaninglessProgram("/bin/find"));

  // A later run emits nothing.
  const size_t before = h.sink_.refs.size();
  const Pid find2 = h.NewProcess("/bin/find");
  for (int i = 0; i < 5; ++i) {
    h.tracer_.Stat(find2, "/home/u/proj/s" + std::to_string(i));
  }
  size_t emitted = 0;
  for (size_t i = before; i < h.sink_.refs.size(); ++i) {
    if (PathName(h.sink_.refs[i].path).find("/home/u/proj/s") == 0) {
      ++emitted;
    }
  }
  EXPECT_EQ(emitted, 0u);
}

// An editor that reads a directory for filename completion but touches only
// a couple of files stays meaningful (the failure of approach #2).
TEST(Observer, EditorReadingDirectoryStaysMeaningful) {
  ObserverHarness h;
  for (int i = 0; i < 30; ++i) {
    h.fs_.CreateFile("/home/u/proj/s" + std::to_string(i), 10);
  }
  const Pid ed = h.NewProcess("/bin/editor");
  const auto d = h.tracer_.OpenDir(ed, "/home/u/proj");
  h.tracer_.ReadDir(ed, d.fd);
  h.tracer_.CloseDir(ed, d.fd);
  const auto r = h.tracer_.Open(ed, "/home/u/proj/s1", false);
  h.tracer_.Close(ed, r.fd);
  h.tracer_.Exit(ed);
  EXPECT_FALSE(h.observer_.IsMeaninglessProgram("/bin/editor"));
  EXPECT_GE(h.sink_.CountRefsTo("/home/u/proj/s1"), 1u);
}

// The control-file list (approach #1, retained for a few programs).
TEST(Observer, ControlListProgramIgnored) {
  ObserverHarness h;
  h.fs_.MkdirAll("/usr/bin");
  h.fs_.CreateFile("/usr/bin/xargs", 100);
  h.fs_.CreateFile("/home/u/proj/x.c", 10);
  ObserverConfig config = ObserverHarness::MakeConfig();
  // default config already lists /usr/bin/xargs
  const Pid p = h.NewProcess("/usr/bin/xargs");
  const auto r = h.tracer_.Open(p, "/home/u/proj/x.c", false);
  h.tracer_.Close(p, r.fd);
  EXPECT_EQ(h.sink_.CountRefsTo("/home/u/proj/x.c"), 0u);
  (void)config;
}

// Section 4.1: the getcwd climb pattern suppresses references and does not
// poison the potential-access counters.
TEST(Observer, GetcwdClimbDetected) {
  ObserverHarness h;
  h.fs_.MkdirAll("/home/u/proj/deep");
  h.fs_.CreateFile("/home/u/proj/deep/file", 10);
  const Pid ed = h.NewProcess("/bin/editor");

  // Climb: deep -> proj -> u -> home -> /
  for (const char* dir : {"/home/u/proj/deep", "/home/u/proj", "/home/u", "/home", "/"}) {
    const auto d = h.tracer_.OpenDir(ed, dir);
    if (d.ok()) {
      h.tracer_.ReadDir(ed, d.fd);
      h.tracer_.CloseDir(ed, d.fd);
    }
  }
  // After the climb the editor opens a real file; once it does something
  // other than climbing, tracking resumes.
  const auto r = h.tracer_.Open(ed, "/home/u/proj/deep/file", false);
  h.tracer_.Close(ed, r.fd);
  h.tracer_.Exit(ed);
  EXPECT_FALSE(h.observer_.IsMeaninglessProgram("/bin/editor"));
  EXPECT_GE(h.sink_.CountRefsTo("/home/u/proj/deep/file"), 1u);
}

// Section 4.8: a stat immediately followed by an open of the same file is a
// single access.
TEST(Observer, StatThenOpenCollapsed) {
  ObserverHarness h;
  h.fs_.CreateFile("/home/u/proj/a.c", 10);
  const Pid p = h.NewProcess("/bin/prog");
  h.tracer_.Stat(p, "/home/u/proj/a.c");
  const auto r = h.tracer_.Open(p, "/home/u/proj/a.c", false);
  h.tracer_.Close(p, r.fd);

  size_t points = 0;
  for (const auto& ref : h.sink_.refs) {
    if (PathName(ref.path) == "/home/u/proj/a.c" && ref.kind == RefKind::kPoint) {
      ++points;
    }
  }
  EXPECT_EQ(points, 0u) << "the stat should have been absorbed by the open";
}

TEST(Observer, StatAloneEmitsPointEventually) {
  ObserverHarness h;
  h.fs_.CreateFile("/home/u/proj/a.c", 10);
  h.fs_.CreateFile("/home/u/proj/b.c", 10);
  const Pid p = h.NewProcess("/bin/prog");
  h.tracer_.Stat(p, "/home/u/proj/a.c");
  // A different action flushes the pending stat.
  const auto r = h.tracer_.Open(p, "/home/u/proj/b.c", false);
  h.tracer_.Close(p, r.fd);

  size_t points = 0;
  for (const auto& ref : h.sink_.refs) {
    if (PathName(ref.path) == "/home/u/proj/a.c" && ref.kind == RefKind::kPoint) {
      ++points;
    }
  }
  EXPECT_EQ(points, 1u);
}

TEST(Observer, UnlinkForwardsDeletion) {
  ObserverHarness h;
  h.fs_.CreateFile("/home/u/proj/dead.c", 10);
  const Pid p = h.NewProcess("/bin/prog");
  h.tracer_.Unlink(p, "/home/u/proj/dead.c");
  ASSERT_EQ(h.sink_.deleted.size(), 1u);
  EXPECT_EQ(h.sink_.deleted[0], "/home/u/proj/dead.c");
}

TEST(Observer, RenameForwarded) {
  ObserverHarness h;
  h.fs_.CreateFile("/home/u/proj/old.c", 10);
  const Pid p = h.NewProcess("/bin/prog");
  h.tracer_.Rename(p, "/home/u/proj/old.c", "/home/u/proj/new.c");
  ASSERT_EQ(h.sink_.renamed.size(), 1u);
  EXPECT_EQ(h.sink_.renamed[0].first, "/home/u/proj/old.c");
  EXPECT_EQ(h.sink_.renamed[0].second, "/home/u/proj/new.c");
}

// Section 4.4: failed accesses are not references; ENOENT is silent but
// kNotLocal reaches the miss listener.
TEST(Observer, FailedOpenNotAReference) {
  ObserverHarness h;
  const Pid p = h.NewProcess("/bin/prog");
  h.tracer_.Open(p, "/home/u/proj/nonexistent", false);
  EXPECT_EQ(h.sink_.CountRefsTo("/home/u/proj/nonexistent"), 0u);
  EXPECT_TRUE(h.misses_.misses.empty());
}

TEST(Observer, NotLocalOpenReachesMissListener) {
  ObserverHarness h;
  h.fs_.CreateFile("/home/u/proj/away.c", 10);
  h.tracer_.set_availability_filter(
      [](const std::string& path) { return path != "/home/u/proj/away.c"; });
  const Pid p = h.NewProcess("/bin/prog");
  h.tracer_.Open(p, "/home/u/proj/away.c", false);
  ASSERT_EQ(h.misses_.misses.size(), 1u);
  EXPECT_EQ(h.misses_.misses[0], "/home/u/proj/away.c");
  EXPECT_EQ(h.sink_.CountRefsTo("/home/u/proj/away.c"), 0u);
}

// Superuser calls are not traced (Section 4.10).
TEST(Observer, SuperuserNotTraced) {
  ObserverHarness h;
  h.fs_.CreateFile("/home/u/proj/rootfile", 10);
  const Pid root = h.processes_.SpawnInit(0, "/");
  const auto r = h.tracer_.Open(root, "/home/u/proj/rootfile", false);
  h.tracer_.Close(root, r.fd);
  EXPECT_EQ(h.sink_.CountRefsTo("/home/u/proj/rootfile"), 0u);
}

// SEER's own daemons are exempt from tracing (Section 4.10).
TEST(Observer, UntracedPidInvisible) {
  ObserverHarness h;
  h.fs_.CreateFile("/home/u/proj/seerdata", 10);
  const Pid daemon = h.NewProcess("/bin/prog");
  h.tracer_.MarkUntraced(daemon);
  const auto r = h.tracer_.Open(daemon, "/home/u/proj/seerdata", false);
  h.tracer_.Close(daemon, r.fd);
  EXPECT_EQ(h.sink_.CountRefsTo("/home/u/proj/seerdata"), 0u);
}

}  // namespace
}  // namespace seer
