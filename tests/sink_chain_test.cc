// Tests for the composable ReferenceSink decorators and their metrics
// (the observability layer over the observer-to-correlator data plane).
#include "src/observer/sink_chain.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace seer {
namespace {

PathId P(std::string_view path) { return GlobalPaths().Intern(path); }

FileReference Ref(Pid pid, RefKind kind, std::string_view path, Time time) {
  FileReference r;
  r.pid = pid;
  r.kind = kind;
  r.path = P(path);
  r.time = time;
  return r;
}

// Terminal sink recording everything it receives.
class RecordingSink : public ReferenceSink {
 public:
  void OnReference(const FileReference& ref) override { refs.push_back(ref.path); }
  void OnProcessFork(Pid, Pid) override { ++forks; }
  void OnProcessExit(Pid) override { ++exits; }
  void OnFileDeleted(PathId path, Time) override { deleted.push_back(path); }
  void OnFileRenamed(PathId from, PathId to, Time) override {
    renames.push_back({from, to});
  }
  void OnFileExcluded(PathId path) override { excluded.push_back(path); }

  std::vector<PathId> refs;
  std::vector<PathId> deleted;
  std::vector<std::pair<PathId, PathId>> renames;
  std::vector<PathId> excluded;
  int forks = 0;
  int exits = 0;
};

void DriveAll(ReferenceSink* sink) {
  sink->OnReference(Ref(1, RefKind::kPoint, "/s/a", 1));
  sink->OnReference(Ref(1, RefKind::kBegin, "/s/b", 2));
  sink->OnReference(Ref(1, RefKind::kEnd, "/s/b", 3));
  sink->OnProcessFork(1, 2);
  sink->OnProcessExit(2);
  sink->OnFileDeleted(P("/s/a"), 4);
  sink->OnFileRenamed(P("/s/b"), P("/s/c"), 5);
  sink->OnFileExcluded(P("/s/c"));
}

TEST(InstrumentedSink, CountsEveryCallbackKind) {
  RecordingSink terminal;
  InstrumentedSink instrumented("stage", &terminal);
  DriveAll(&instrumented);

  const SinkCounters& c = instrumented.counters();
  EXPECT_EQ(c.references, 3u);
  EXPECT_EQ(c.forks, 1u);
  EXPECT_EQ(c.exits, 1u);
  EXPECT_EQ(c.deletes, 1u);
  EXPECT_EQ(c.renames, 1u);
  EXPECT_EQ(c.exclusions, 1u);
  EXPECT_EQ(c.total(), 8u);

  // Everything passed through untouched.
  EXPECT_EQ(terminal.refs.size(), 3u);
  EXPECT_EQ(terminal.deleted.size(), 1u);
  ASSERT_EQ(terminal.renames.size(), 1u);
  EXPECT_EQ(terminal.renames[0].first, P("/s/b"));
  EXPECT_EQ(terminal.renames[0].second, P("/s/c"));
}

TEST(InstrumentedSink, RecordsLatencyOfDownstreamCalls) {
  RecordingSink terminal;
  InstrumentedSink instrumented("timed", &terminal);
  for (int i = 0; i < 100; ++i) {
    instrumented.OnReference(Ref(1, RefKind::kPoint, "/t/f", i + 1));
  }
  EXPECT_EQ(instrumented.latency().count(), 100u);
  EXPECT_GT(instrumented.latency().max_ns(), 0u);
  EXPECT_GE(instrumented.latency().PercentileNs(0.99),
            instrumented.latency().PercentileNs(0.50));
}

TEST(LatencyHistogram, PercentileBoundsContainSamples) {
  LatencyHistogram h;
  for (uint64_t ns : {10, 100, 1'000, 10'000, 100'000}) {
    h.Record(ns);
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.max_ns(), 100'000u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), (10 + 100 + 1'000 + 10'000 + 100'000) / 5.0);
  // The p100 bucket upper bound must cover the max sample.
  EXPECT_GE(h.PercentileNs(1.0), 100'000u);
  // The median bucket is far below the tail.
  EXPECT_LT(h.PercentileNs(0.5), h.PercentileNs(1.0));
}

TEST(FilterSink, DropsOnlyFailingReferences) {
  RecordingSink terminal;
  const PathId noisy = P("/tmp/noise");
  FilterSink filter([noisy](const FileReference& ref) { return ref.path != noisy; },
                    &terminal);
  filter.OnReference(Ref(1, RefKind::kPoint, "/keep/me", 1));
  filter.OnReference(Ref(1, RefKind::kPoint, "/tmp/noise", 2));
  filter.OnReference(Ref(1, RefKind::kPoint, "/keep/too", 3));
  EXPECT_EQ(terminal.refs.size(), 2u);
  EXPECT_EQ(filter.passed(), 2u);
  EXPECT_EQ(filter.dropped(), 1u);

  // Namespace and lifecycle messages are structural: never filtered.
  filter.OnFileDeleted(noisy, 4);
  filter.OnProcessFork(1, 2);
  EXPECT_EQ(terminal.deleted.size(), 1u);
  EXPECT_EQ(terminal.forks, 1);
}

TEST(TeeSink, ReplicatesToAllOutputsInOrder) {
  RecordingSink first;
  RecordingSink second;
  TeeSink tee({&first, &second});
  DriveAll(&tee);
  EXPECT_EQ(first.refs, second.refs);
  EXPECT_EQ(first.deleted, second.deleted);
  EXPECT_EQ(first.excluded, second.excluded);
  EXPECT_EQ(first.forks, 1);
  EXPECT_EQ(second.exits, 1);
}

TEST(SinkChain, ComposesProducerToConsumer) {
  RecordingSink terminal;
  RecordingSink archive;
  SinkChain chain(&terminal);
  chain.TeeInto(&archive);                // runs third: fan out
  const PathId drop = P("/chain/drop");
  chain.Filter([drop](const FileReference& ref) { return ref.path != drop; });
  chain.Instrument("observer");           // runs first: sees everything

  chain.head()->OnReference(Ref(1, RefKind::kPoint, "/chain/keep", 1));
  chain.head()->OnReference(Ref(1, RefKind::kPoint, "/chain/drop", 2));

  ASSERT_EQ(chain.instrumented().size(), 1u);
  EXPECT_EQ(chain.instrumented()[0]->counters().references, 2u);  // pre-filter
  EXPECT_EQ(chain.total_dropped(), 1u);
  EXPECT_EQ(terminal.refs.size(), 1u);   // post-filter
  EXPECT_EQ(archive.refs.size(), 1u);    // tee saw the same stream
  EXPECT_EQ(terminal.refs, archive.refs);
}

TEST(SinkChain, FormatMetricsNamesEveryStage) {
  RecordingSink terminal;
  SinkChain chain(&terminal);
  chain.Instrument("correlator");
  chain.Instrument("observer");
  chain.head()->OnReference(Ref(1, RefKind::kPoint, "/m/x", 1));
  const std::string table = chain.FormatMetrics();
  EXPECT_NE(table.find("observer"), std::string::npos);
  EXPECT_NE(table.find("correlator"), std::string::npos);
}

}  // namespace
}  // namespace seer
