// Shareable ThreadPool semantics and SEER_THREADS validation.
//
// The multi-tenant router multiplexes ONE pool across every tenant's
// ingest, scoring, and background checkpoint encode, so the pool must
// tolerate concurrent ParallelChunks dispatches from many threads and
// re-entrant dispatches from inside a worker chunk — by running the
// contended dispatch inline (the caller-runs fallback), never by
// deadlocking and never by changing results.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "src/util/thread_pool.h"

namespace seer {
namespace {

TEST(ThreadPoolShared, ConcurrentDispatchesFromManyThreads) {
  ThreadPool pool(4);
  constexpr size_t kCallers = 8;
  constexpr size_t kChunks = 211;
  std::vector<std::vector<std::atomic<int>>> runs(kCallers);
  for (auto& r : runs) {
    r = std::vector<std::atomic<int>>(kChunks);
  }
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &runs, c]() {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelChunks(kChunks, [&runs, c](size_t i) { runs[c][i].fetch_add(1); });
      }
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }
  for (size_t c = 0; c < kCallers; ++c) {
    for (size_t i = 0; i < kChunks; ++i) {
      ASSERT_EQ(runs[c][i].load(), 20) << "caller " << c << " chunk " << i;
    }
  }
}

TEST(ThreadPoolShared, ReentrantDispatchFromWorkerRunsInline) {
  ThreadPool pool(4);
  std::atomic<size_t> inner_total{0};
  // Each outer chunk dispatches again on the same pool from a worker
  // thread; the inner dispatch must run inline without deadlock.
  pool.ParallelChunks(16, [&](size_t) {
    pool.ParallelChunks(32, [&](size_t i) { inner_total.fetch_add(i); });
  });
  EXPECT_EQ(inner_total.load(), 16u * (32u * 31u / 2u));
}

TEST(ThreadPoolShared, ReentrantDispatchFromDispatchingThreadRunsInline) {
  // The dispatcher participates in its own dispatch, so fn can re-enter
  // ParallelChunks from the thread that owns the dispatch gate; that call
  // must take the inline path rather than probe the mutex its own thread
  // already holds (undefined behavior). Two chunks that each wait for the
  // other to start pin one chunk on the worker and one on the dispatching
  // thread deterministically.
  ThreadPool pool(2);  // one worker + the dispatching caller
  const std::thread::id caller_id = std::this_thread::get_id();
  std::atomic<size_t> arrivals{0};
  std::atomic<size_t> inner_total{0};
  std::atomic<bool> caller_reentered{false};
  pool.ParallelChunks(2, [&](size_t) {
    arrivals.fetch_add(1);
    while (arrivals.load() < 2) {
      std::this_thread::yield();
    }
    if (std::this_thread::get_id() == caller_id) {
      pool.ParallelChunks(16, [&](size_t i) { inner_total.fetch_add(i + 1); });
      caller_reentered.store(true);
    }
  });
  EXPECT_TRUE(caller_reentered.load());
  EXPECT_EQ(inner_total.load(), 16u * 17u / 2u);
}

TEST(ThreadPoolShared, CrossPoolNesting) {
  ThreadPool outer(4);
  ThreadPool inner(4);
  std::atomic<size_t> total{0};
  outer.ParallelChunks(8, [&](size_t) {
    inner.ParallelChunks(8, [&](size_t i) { total.fetch_add(i + 1); });
  });
  EXPECT_EQ(total.load(), 8u * (8u * 9u / 2u));
}

TEST(ThreadPoolShared, DestructionAfterHeavyConcurrentUse) {
  // Destroy the pool immediately after a burst of concurrent dispatches:
  // the destructor must drain cleanly with no worker left waiting.
  for (int round = 0; round < 10; ++round) {
    auto pool = std::make_unique<ThreadPool>(4);
    std::atomic<size_t> done{0};
    std::vector<std::thread> callers;
    for (int c = 0; c < 4; ++c) {
      callers.emplace_back([&]() {
        pool->ParallelChunks(64, [&](size_t) { done.fetch_add(1); });
      });
    }
    for (std::thread& t : callers) {
      t.join();
    }
    EXPECT_EQ(done.load(), 4u * 64u);
    pool.reset();  // join workers with nothing pending
  }
}

TEST(ThreadPoolShared, SingleThreadPoolIsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<size_t> order;
  pool.ParallelChunks(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));  // serial, in order
}

// --- SEER_THREADS validation --------------------------------------------------

TEST(ParseThreadCount, AcceptsPlainPositiveIntegers) {
  for (const auto& [text, want] : std::vector<std::pair<std::string, int>>{
           {"1", 1}, {"8", 8}, {"4096", kMaxThreads}}) {
    const auto got = ParseThreadCount(text);
    ASSERT_TRUE(got.ok()) << text;
    EXPECT_EQ(*got, want) << text;
  }
}

TEST(ParseThreadCount, RejectsGarbage) {
  for (const char* text : {"", "0", "-3", "abc", "8x", " 8", "8 ", "3.5", "0x10",
                           "99999999999999999999", "4097"}) {
    const auto got = ParseThreadCount(text);
    EXPECT_FALSE(got.ok()) << "accepted: " << text;
    EXPECT_FALSE(got.status().message().empty()) << text;
  }
}

TEST(ParseThreadCount, SeerThreadsFromEnvReflectsVariable) {
  // setenv/getenv in a single-threaded test context.
  ASSERT_EQ(0, setenv("SEER_THREADS", "3", 1));
  auto got = SeerThreadsFromEnv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 3);

  ASSERT_EQ(0, setenv("SEER_THREADS", "zebra", 1));
  got = SeerThreadsFromEnv();
  EXPECT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("SEER_THREADS"), std::string::npos);

  ASSERT_EQ(0, unsetenv("SEER_THREADS"));
  got = SeerThreadsFromEnv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 0);  // unset: caller falls back to hardware concurrency
}

}  // namespace
}  // namespace seer
