// Tests for the modified Jarvis-Patrick clustering of Section 3.3,
// including the paper's seven-file worked example (Table 2).
#include "src/core/clustering.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace seer {
namespace {

class ClusterHarness {
 public:
  explicit ClusterHarness(SeerParams params = MakeParams())
      : params_(params), relations_(params_, &files_), builder_(params_, &files_, &relations_) {}

  static SeerParams MakeParams() {
    SeerParams p;
    p.cluster_near = 6;  // kn
    p.cluster_far = 3;   // kf
    p.dir_distance_weight = 0.0;
    return p;
  }

  FileId Id(const std::string& name) {
    // All files share one directory so directory distance is zero.
    return files_.Intern(GlobalPaths().Intern("/w/" + name));
  }

  // Declares that `from` lists `to` with an effective shared-neighbor count
  // of `x` (delivered via the investigated-pair channel, which the builder
  // adds to the raw shared count — zero here since no distances exist).
  void Relate(const std::string& from, const std::string& to, int x) {
    builder_.AddInvestigatedPair(Id(from), Id(to), static_cast<double>(x));
  }

  // Builds clusters over the given files and returns them as sets of names.
  std::vector<std::set<std::string>> Build(const std::vector<std::string>& names) {
    std::vector<FileId> ids;
    for (const auto& n : names) {
      ids.push_back(Id(n));
    }
    const ClusterSet set = builder_.Build(ids);
    std::vector<std::set<std::string>> out;
    for (const Cluster& c : set.clusters) {
      std::set<std::string> members;
      for (const FileId id : c.members) {
        const std::string path = PathString(files_.Get(id).path);
        members.insert(path.substr(3));  // strip "/w/"
      }
      out.push_back(std::move(members));
    }
    return out;
  }

  FileTable& files() { return files_; }
  RelationTable& relations() { return relations_; }
  ClusterBuilder& builder() { return builder_; }

 private:
  SeerParams params_;
  FileTable files_;
  RelationTable relations_;
  ClusterBuilder builder_;
};

bool HasCluster(const std::vector<std::set<std::string>>& clusters,
                const std::set<std::string>& expected) {
  return std::find(clusters.begin(), clusters.end(), expected) != clusters.end();
}

// Table 2 / Section 3.3.2 worked example: files A..G, with kn = 6, kf = 3.
// Phase one combines {A,B,C} (A~B, B~C at kn) and {D,E,F,G} (D~E, F~G, G~D
// at kn). Phase two sees A~C (already together) and C~D (kf): C joins D's
// cluster and D joins C's. Final clusters: {A,B,C,D} and {C,D,E,F,G}.
TEST(Clustering, PaperTable2Example) {
  ClusterHarness h;
  h.Relate("A", "B", 6);
  h.Relate("A", "C", 3);
  h.Relate("B", "C", 6);
  h.Relate("C", "D", 3);
  h.Relate("D", "E", 6);
  h.Relate("F", "G", 6);
  h.Relate("G", "D", 6);

  const auto clusters = h.Build({"A", "B", "C", "D", "E", "F", "G"});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_TRUE(HasCluster(clusters, {"A", "B", "C", "D"}));
  EXPECT_TRUE(HasCluster(clusters, {"C", "D", "E", "F", "G"}));
}

// Files C and D end up in BOTH final clusters — overlapping membership is
// the point of the two-threshold variation.
TEST(Clustering, OverlapMembershipRecorded) {
  ClusterHarness h;
  h.Relate("A", "B", 6);
  h.Relate("B", "C", 6);
  h.Relate("C", "D", 3);
  h.Relate("D", "E", 6);

  std::vector<FileId> ids;
  for (const std::string n : {"A", "B", "C", "D", "E"}) {
    ids.push_back(h.Id(n));
  }
  const ClusterSet set = h.builder().Build(ids);
  EXPECT_EQ(set.ClustersOf(h.Id("C")).size(), 2u);
  EXPECT_EQ(set.ClustersOf(h.Id("D")).size(), 2u);
  EXPECT_EQ(set.ClustersOf(h.Id("A")).size(), 1u);
}

TEST(Clustering, BelowKfNoAction) {
  ClusterHarness h;
  h.Relate("A", "B", 2);  // below kf = 3
  const auto clusters = h.Build({"A", "B"});
  ASSERT_EQ(clusters.size(), 2u);  // two singletons
  EXPECT_TRUE(HasCluster(clusters, {"A"}));
  EXPECT_TRUE(HasCluster(clusters, {"B"}));
}

TEST(Clustering, UnrelatedFilesBecomeSingletons) {
  ClusterHarness h;
  const auto clusters = h.Build({"X", "Y", "Z"});
  EXPECT_EQ(clusters.size(), 3u);
}

// Transitive combination: A~B and B~C at kn puts A and C in one cluster
// even with no direct relationship (as in the paper's walkthrough).
TEST(Clustering, TransitiveCombine) {
  ClusterHarness h;
  h.Relate("A", "B", 6);
  h.Relate("B", "C", 6);
  const auto clusters = h.Build({"A", "B", "C"});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_TRUE(HasCluster(clusters, {"A", "B", "C"}));
}

// Shared-neighbor counting through the relation table: two files whose
// lists overlap in at least kn entries combine.
TEST(Clustering, SharedNeighborsFromRelationTable) {
  SeerParams params = ClusterHarness::MakeParams();
  params.cluster_near = 3;
  params.cluster_far = 2;
  ClusterHarness h(params);

  // A and B each list N1..N3 as close neighbors; A also lists B.
  for (const std::string nb : {"N1", "N2", "N3"}) {
    h.relations().Observe(h.Id("A"), h.Id(nb), 1.0);
    h.relations().Observe(h.Id("B"), h.Id(nb), 1.0);
  }
  h.relations().Observe(h.Id("A"), h.Id("B"), 1.0);

  const auto clusters = h.Build({"A", "B", "N1", "N2", "N3"});
  // A and B share 3 >= kn neighbors -> combined.
  bool combined = false;
  for (const auto& c : clusters) {
    if (c.count("A") != 0 && c.count("B") != 0) {
      combined = true;
    }
  }
  EXPECT_TRUE(combined);
}

// Directory distance is subtracted from the shared-neighbor count
// (Section 3.3.3): widely separated files need more evidence.
TEST(Clustering, DirectoryDistancePenalty) {
  SeerParams params = ClusterHarness::MakeParams();
  params.dir_distance_weight = 1.0;
  FileTable files;
  RelationTable relations(params, &files);
  ClusterBuilder builder(params, &files, &relations);

  const FileId near_a = files.Intern(GlobalPaths().Intern("/p/a"));
  const FileId near_b = files.Intern(GlobalPaths().Intern("/p/b"));
  const FileId far_b = files.Intern(GlobalPaths().Intern("/q/r/s/b"));
  builder.AddInvestigatedPair(near_a, near_b, 6.0);
  builder.AddInvestigatedPair(near_a, far_b, 6.0);

  // Same evidence, but the far pair is 4 tree edges apart: 6 - 4 = 2 < kf.
  EXPECT_GE(builder.AdjustedSharedCount(near_a, near_b), 6.0);
  EXPECT_LT(builder.AdjustedSharedCount(near_a, far_b), 3.0);
}

// A sufficiently strong investigator forces clustering regardless of
// semantic distances (Section 3.3.3).
TEST(Clustering, InvestigatorCanForceCluster) {
  ClusterHarness h;
  h.Relate("lonely1", "lonely2", 100);
  const auto clusters = h.Build({"lonely1", "lonely2"});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_TRUE(HasCluster(clusters, {"lonely1", "lonely2"}));
}

TEST(Clustering, InvestigatedStrengthsAccumulate) {
  ClusterHarness h;
  h.Relate("A", "B", 2);
  h.Relate("A", "B", 2);  // two investigators each contribute 2: total 4 >= kf
  const auto clusters = h.Build({"A", "B"});
  // kf overlap of two singletons produces identical clusters, deduplicated.
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_TRUE(HasCluster(clusters, {"A", "B"}));
}

TEST(Clustering, ClearInvestigatedPairsResets) {
  ClusterHarness h;
  h.Relate("A", "B", 100);
  h.builder().ClearInvestigatedPairs();
  const auto clusters = h.Build({"A", "B"});
  EXPECT_EQ(clusters.size(), 2u);
}

// Every file appears in at least one cluster, and membership indices are
// consistent with cluster contents.
TEST(Clustering, MembershipInvariants) {
  ClusterHarness h;
  h.Relate("A", "B", 6);
  h.Relate("B", "C", 3);
  h.Relate("D", "E", 4);

  std::vector<FileId> ids;
  for (const std::string n : {"A", "B", "C", "D", "E", "F"}) {
    ids.push_back(h.Id(n));
  }
  const ClusterSet set = h.builder().Build(ids);
  for (const FileId id : ids) {
    const auto& clusters_of = set.ClustersOf(id);
    ASSERT_FALSE(clusters_of.empty());
    for (const uint32_t c : clusters_of) {
      const auto& members = set.clusters[c].members;
      EXPECT_TRUE(std::find(members.begin(), members.end(), id) != members.end());
    }
  }
}

}  // namespace
}  // namespace seer
