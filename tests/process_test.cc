// Tests for the process table and the simulated syscall-tracing hook
// (Section 4.10/4.11 semantics).
#include <gtest/gtest.h>

#include "src/process/process_table.h"
#include "src/process/syscall_tracer.h"
#include "src/vfs/sim_filesystem.h"

namespace seer {
namespace {

class CollectingSink : public TraceSink {
 public:
  void OnEvent(const TraceEvent& e) override { events.push_back(e); }

  const TraceEvent* Last(Op op) const {
    for (auto it = events.rbegin(); it != events.rend(); ++it) {
      if (it->op == op) {
        return &*it;
      }
    }
    return nullptr;
  }

  std::vector<TraceEvent> events;
};

class TracerTest : public ::testing::Test {
 protected:
  TracerTest() : tracer_(&fs_, &procs_, &clock_) {
    tracer_.AddSink(&sink_);
    fs_.MkdirAll("/home/u");
    fs_.MkdirAll("/bin");
    fs_.CreateFile("/bin/sh", 1000);
    fs_.CreateFile("/home/u/f", 100);
    user_ = procs_.SpawnInit(1000, "/home/u");
  }

  SimFilesystem fs_;
  ProcessTable procs_;
  SimClock clock_;
  SyscallTracer tracer_;
  CollectingSink sink_;
  Pid user_;
};

// --- ProcessTable -------------------------------------------------------------

TEST(ProcessTable, ForkInheritsAttributes) {
  ProcessTable t;
  const Pid parent = t.SpawnInit(1000, "/home/u");
  t.Exec(parent, "/bin/sh");
  const Pid child = t.Fork(parent);
  ASSERT_GT(child, 0);
  EXPECT_EQ(t.Get(child)->uid, 1000);
  EXPECT_EQ(t.Get(child)->cwd, "/home/u");
  EXPECT_EQ(t.Get(child)->program, "/bin/sh");
  EXPECT_EQ(t.Get(child)->ppid, parent);
}

TEST(ProcessTable, ForkOfDeadProcessFails) {
  ProcessTable t;
  const Pid p = t.SpawnInit(1000, "/");
  t.Exit(p);
  EXPECT_LT(t.Fork(p), 0);
}

TEST(ProcessTable, ExitClosesFds) {
  ProcessTable t;
  const Pid p = t.SpawnInit(1000, "/");
  t.AllocateFd(p, OpenFile{"/a", false, false});
  t.AllocateFd(p, OpenFile{"/b", false, true});
  const auto leaked = t.Exit(p);
  EXPECT_EQ(leaked.size(), 2u);
  EXPECT_FALSE(t.Alive(p));
}

TEST(ProcessTable, FdLifecycle) {
  ProcessTable t;
  const Pid p = t.SpawnInit(1000, "/");
  const Fd fd = t.AllocateFd(p, OpenFile{"/a", false, false});
  ASSERT_GE(fd, 3);
  EXPECT_EQ(t.LookupFd(p, fd)->path, "/a");
  const auto closed = t.CloseFd(p, fd);
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(closed->path, "/a");
  EXPECT_FALSE(t.CloseFd(p, fd).has_value());
}

// --- SyscallTracer -------------------------------------------------------------

TEST_F(TracerTest, OpenResolvesRelativePath) {
  const auto r = tracer_.Open(user_, "f", false);
  ASSERT_TRUE(r.ok());
  const TraceEvent* e = sink_.Last(Op::kOpen);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->path, "/home/u/f");
}

TEST_F(TracerTest, OpenMissingFileFailsWithEvent) {
  const auto r = tracer_.Open(user_, "missing", false);
  EXPECT_EQ(r.status, OpStatus::kNoEnt);
  const TraceEvent* e = sink_.Last(Op::kOpen);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->status, OpStatus::kNoEnt);
}

TEST_F(TracerTest, CloseCarriesPath) {
  const auto r = tracer_.Open(user_, "f", true);
  tracer_.Close(user_, r.fd);
  const TraceEvent* e = sink_.Last(Op::kClose);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->path, "/home/u/f");
  EXPECT_TRUE(e->write);
}

TEST_F(TracerTest, OpenOfDirectoryRejected) {
  const auto r = tracer_.Open(user_, "/home", false);
  EXPECT_EQ(r.status, OpStatus::kAccess);
}

TEST_F(TracerTest, ForkEmitsChildPid) {
  const auto r = tracer_.Fork(user_);
  ASSERT_TRUE(r.ok());
  const TraceEvent* e = sink_.Last(Op::kFork);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->detail, r.pid);
}

TEST_F(TracerTest, ExecUpdatesProgram) {
  const auto r = tracer_.Exec(user_, "/bin/sh");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(procs_.Get(user_)->program, "/bin/sh");
  const TraceEvent* e = sink_.Last(Op::kExec);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->path, "/bin/sh");
}

TEST_F(TracerTest, ExecOfMissingProgramFails) {
  EXPECT_EQ(tracer_.Exec(user_, "/bin/nope").status, OpStatus::kNoEnt);
  EXPECT_NE(procs_.Get(user_)->program, "/bin/nope");
}

TEST_F(TracerTest, ExitTracedBeforeDestruction) {
  tracer_.Exit(user_);
  EXPECT_FALSE(procs_.Alive(user_));
  EXPECT_NE(sink_.Last(Op::kExit), nullptr);
}

TEST_F(TracerTest, CreateNewFileAllocatesFd) {
  const auto r = tracer_.Create(user_, "new.c", 123);
  ASSERT_GE(r.fd, 0);
  EXPECT_TRUE(fs_.Exists("/home/u/new.c"));
  EXPECT_EQ(fs_.Stat("/home/u/new.c")->size, 123u);
}

TEST_F(TracerTest, CreateExistingTruncatesAndOpens) {
  const auto r = tracer_.Create(user_, "f", 7);
  ASSERT_GE(r.fd, 0);
  EXPECT_EQ(fs_.Stat("/home/u/f")->size, 7u);
  const TraceEvent* e = sink_.Last(Op::kOpen);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->write);
}

TEST_F(TracerTest, RenameMovesAndEmitsBothPaths) {
  const auto r = tracer_.Rename(user_, "f", "g");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(fs_.Exists("/home/u/g"));
  const TraceEvent* e = sink_.Last(Op::kRename);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->path, "/home/u/f");
  EXPECT_EQ(e->path2, "/home/u/g");
}

TEST_F(TracerTest, UnlinkRemoves) {
  ASSERT_TRUE(tracer_.Unlink(user_, "f").ok());
  EXPECT_FALSE(fs_.Exists("/home/u/f"));
}

TEST_F(TracerTest, DirectoryReadReportsEntryCount) {
  fs_.CreateFile("/home/u/g", 1);
  const auto d = tracer_.OpenDir(user_, "/home/u");
  ASSERT_TRUE(d.ok());
  const auto r = tracer_.ReadDir(user_, d.fd);
  ASSERT_TRUE(r.ok());
  const TraceEvent* e = sink_.Last(Op::kReadDir);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->detail, 2);  // f and g
  tracer_.CloseDir(user_, d.fd);
  EXPECT_NE(sink_.Last(Op::kCloseDir), nullptr);
}

TEST_F(TracerTest, ChdirChangesResolutionBase) {
  fs_.MkdirAll("/home/u/sub");
  fs_.CreateFile("/home/u/sub/inner", 1);
  ASSERT_TRUE(tracer_.Chdir(user_, "sub").ok());
  const auto r = tracer_.Open(user_, "inner", false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(sink_.Last(Op::kOpen)->path, "/home/u/sub/inner");
}

TEST_F(TracerTest, SymlinkResolvedAtOpen) {
  fs_.CreateSymlink("/home/u/alias", "f");
  const auto r = tracer_.Open(user_, "alias", false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(sink_.Last(Op::kOpen)->path, "/home/u/f");
}

TEST_F(TracerTest, AvailabilityFilterProducesNotLocal) {
  tracer_.set_availability_filter([](const std::string&) { return false; });
  const auto r = tracer_.Open(user_, "f", false);
  EXPECT_EQ(r.status, OpStatus::kNotLocal);
  EXPECT_EQ(sink_.Last(Op::kOpen)->status, OpStatus::kNotLocal);
}

TEST_F(TracerTest, ReadDirHidesUnavailableFiles) {
  fs_.CreateFile("/home/u/g", 1);
  fs_.MkdirAll("/home/u/sub");
  // Without a filter: f, g, sub = 3 entries.
  {
    const auto d = tracer_.OpenDir(user_, "/home/u");
    tracer_.ReadDir(user_, d.fd);
    EXPECT_EQ(sink_.Last(Op::kReadDir)->detail, 3);
    tracer_.CloseDir(user_, d.fd);
  }
  // Disconnected with only /home/u/f hoarded: the listing shows f and the
  // directory, not g — the raw material for implied misses (Section 4.4).
  tracer_.set_availability_filter(
      [](const std::string& path) { return path == "/home/u/f"; });
  const auto d = tracer_.OpenDir(user_, "/home/u");
  tracer_.ReadDir(user_, d.fd);
  EXPECT_EQ(sink_.Last(Op::kReadDir)->detail, 2);
  tracer_.CloseDir(user_, d.fd);
}

TEST_F(TracerTest, SuperuserCallsNotTraced) {
  const Pid root = procs_.SpawnInit(0, "/");
  const size_t before = sink_.events.size();
  tracer_.Stat(root, "/home/u/f");
  EXPECT_EQ(sink_.events.size(), before);

  tracer_.set_trace_superuser(true);
  tracer_.Stat(root, "/home/u/f");
  EXPECT_EQ(sink_.events.size(), before + 1);
}

TEST_F(TracerTest, ClockAdvancesPerSyscall) {
  const Time before = clock_.now();
  tracer_.Stat(user_, "f");
  EXPECT_GT(clock_.now(), before);
}

TEST_F(TracerTest, SequenceNumbersIncrease) {
  tracer_.Stat(user_, "f");
  tracer_.Stat(user_, "f");
  ASSERT_GE(sink_.events.size(), 2u);
  EXPECT_GT(sink_.events.back().seq, sink_.events[sink_.events.size() - 2].seq);
}

}  // namespace
}  // namespace seer
