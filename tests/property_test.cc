// Property-based tests: invariants that must hold for ALL inputs, checked
// over parameterized seed sweeps (TEST_P) with randomly generated
// operation streams.
#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/core/clustering.h"
#include "src/core/correlator.h"
#include "src/core/reference_streams.h"
#include "src/replication/gossip.h"
#include "src/sim/missfree.h"
#include "src/util/path.h"
#include "src/util/rng.h"
#include "src/vfs/sim_filesystem.h"

namespace seer {
namespace {

class SeededTest : public ::testing::TestWithParam<int> {
 protected:
  uint64_t Seed() const { return static_cast<uint64_t>(GetParam()) * 2654435761u + 17; }
};

// --- reference streams ----------------------------------------------------------

using StreamProperty = SeededTest;

// Every observation's distance is within [0, M] (lifetime/sequence) or
// [0, temporal horizon] — the compensation cap is an invariant, not a
// best-effort.
TEST_P(StreamProperty, DistancesAlwaysWithinHorizon) {
  for (const DistanceKind kind :
       {DistanceKind::kLifetime, DistanceKind::kSequence, DistanceKind::kTemporal}) {
    SeerParams params;
    params.distance_kind = kind;
    params.distance_horizon = 40;
    params.temporal_horizon_seconds = 30.0;
    FileTable files;
    ReferenceStreams streams(params);
    Rng rng(Seed());

    std::vector<FileId> ids;
    for (int i = 0; i < 30; ++i) {
      ids.push_back(files.Intern(GlobalPaths().Intern("/f/" + std::to_string(i))));
    }
    std::map<std::pair<Pid, FileId>, int> open_depth;
    Time t = 0;
    for (int step = 0; step < 2'000; ++step) {
      const Pid pid = static_cast<Pid>(1 + rng.NextBounded(3));
      const FileId id = ids[rng.NextBounded(ids.size())];
      t += static_cast<Time>(rng.NextBounded(3 * kMicrosPerSecond));
      const int action = static_cast<int>(rng.NextBounded(3));
      std::vector<DistanceObservation> obs;
      if (action == 0) {
        streams.OnBegin(pid, id, t, &obs);
        ++open_depth[{pid, id}];
      } else if (action == 1) {
        streams.OnPoint(pid, id, t, &obs);
      } else {
        streams.OnEnd(pid, id);
        auto& depth = open_depth[{pid, id}];
        depth = std::max(0, depth - 1);
      }
      const double cap = kind == DistanceKind::kTemporal
                             ? params.temporal_horizon_seconds
                             : static_cast<double>(params.distance_horizon);
      for (const auto& o : obs) {
        EXPECT_GE(o.distance, 0.0);
        EXPECT_LE(o.distance, cap + 1e-9);
        EXPECT_NE(o.from, o.to);
        EXPECT_EQ(o.to, id);
      }
    }
  }
}

// Fork/exit in random order never crashes or corrupts the streams, and the
// stream count stays bounded by the number of live processes.
TEST_P(StreamProperty, ForkExitChaosIsSafe) {
  SeerParams params;
  ReferenceStreams streams(params);
  FileTable files;
  Rng rng(Seed() ^ 0xf0f0);
  std::vector<Pid> live = {1};
  Pid next_pid = 2;
  for (int step = 0; step < 1'000; ++step) {
    const int action = static_cast<int>(rng.NextBounded(4));
    const Pid pid = live[rng.NextBounded(live.size())];
    if (action == 0 && live.size() < 12) {
      streams.OnFork(pid, next_pid);
      live.push_back(next_pid++);
    } else if (action == 1 && live.size() > 1) {
      streams.OnExit(pid);
      live.erase(std::find(live.begin(), live.end(), pid));
    } else {
      const FileId id = files.Intern(GlobalPaths().Intern("/f/" + std::to_string(rng.NextBounded(20))));
      std::vector<DistanceObservation> obs;
      streams.OnPoint(pid, id, static_cast<Time>(step) * kMicrosPerSecond, &obs);
    }
  }
  EXPECT_LE(streams.stream_count(), 16u);
}

// --- relation table ----------------------------------------------------------------

using RelationProperty = SeededTest;

// Lists never exceed n entries, never contain self or duplicates, and the
// stored means are always positive.
TEST_P(RelationProperty, ListInvariantsUnderRandomObservations) {
  SeerParams params;
  params.max_neighbors = 7;
  FileTable files;
  RelationTable table(params, &files, Seed());
  Rng rng(Seed() ^ 1);
  std::vector<FileId> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(files.Intern(GlobalPaths().Intern("/r/" + std::to_string(i))));
  }
  for (int step = 0; step < 5'000; ++step) {
    const FileId from = ids[rng.NextBounded(ids.size())];
    const FileId to = ids[rng.NextBounded(ids.size())];
    table.Observe(from, to, static_cast<double>(rng.NextBounded(120)));
    if (step % 500 == 0) {
      for (const FileId id : ids) {
        const auto& list = table.NeighborsOf(id);
        EXPECT_LE(list.size(), 7u);
        std::set<FileId> seen;
        for (const auto& nb : list) {
          EXPECT_NE(nb.id, id) << "self-relation";
          EXPECT_TRUE(seen.insert(nb.id).second) << "duplicate neighbor";
          EXPECT_GT(nb.MeanDistance(params.mean_kind), 0.0);
          EXPECT_GT(nb.observations, 0u);
        }
      }
    }
  }
}

// After Purge(id), the id appears in no list.
TEST_P(RelationProperty, PurgeErasesEverywhere) {
  SeerParams params;
  params.max_neighbors = 5;
  FileTable files;
  RelationTable table(params, &files, Seed());
  Rng rng(Seed() ^ 2);
  std::vector<FileId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(files.Intern(GlobalPaths().Intern("/r/" + std::to_string(i))));
  }
  for (int step = 0; step < 1'000; ++step) {
    table.Observe(ids[rng.NextBounded(ids.size())], ids[rng.NextBounded(ids.size())],
                  static_cast<double>(1 + rng.NextBounded(50)));
  }
  const FileId victim = ids[rng.NextBounded(ids.size())];
  table.Purge(victim);
  for (const FileId id : ids) {
    for (const auto& nb : table.NeighborsOf(id)) {
      EXPECT_NE(nb.id, victim);
    }
  }
  EXPECT_TRUE(table.NeighborsOf(victim).empty());
}

// --- clustering -------------------------------------------------------------------

using ClusteringProperty = SeededTest;

// For any relation table: every candidate appears in at least one cluster,
// membership is consistent, members are sorted and unique, no cluster is
// duplicated, and the result is deterministic.
TEST_P(ClusteringProperty, StructuralInvariants) {
  SeerParams params;
  params.max_neighbors = 6;
  params.cluster_near = 4;
  params.cluster_far = 2;
  params.dir_distance_weight = 0.5;
  FileTable files;
  RelationTable table(params, &files, Seed());
  Rng rng(Seed() ^ 3);
  std::vector<FileId> ids;
  for (int i = 0; i < 60; ++i) {
    ids.push_back(files.Intern(GlobalPaths().Intern("/d" + std::to_string(i % 7) + "/f" + std::to_string(i))));
  }
  for (int step = 0; step < 3'000; ++step) {
    table.Observe(ids[rng.NextBounded(ids.size())], ids[rng.NextBounded(ids.size())],
                  static_cast<double>(rng.NextBounded(30)));
  }

  ClusterBuilder builder(params, &files, &table);
  const ClusterSet a = builder.Build(ids);
  const ClusterSet b = builder.Build(ids);

  // Determinism.
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].members, b.clusters[i].members);
  }

  // Coverage + consistency + uniqueness.
  std::set<std::vector<FileId>> unique_clusters;
  for (const Cluster& c : a.clusters) {
    EXPECT_FALSE(c.members.empty());
    EXPECT_TRUE(std::is_sorted(c.members.begin(), c.members.end()));
    EXPECT_TRUE(std::adjacent_find(c.members.begin(), c.members.end()) == c.members.end());
    EXPECT_TRUE(unique_clusters.insert(c.members).second) << "duplicate cluster";
  }
  for (const FileId id : ids) {
    const auto& memberships = a.ClustersOf(id);
    EXPECT_FALSE(memberships.empty()) << "file " << id << " in no cluster";
    for (const uint32_t c : memberships) {
      ASSERT_LT(c, a.clusters.size());
      EXPECT_TRUE(std::binary_search(a.clusters[c].members.begin(),
                                     a.clusters[c].members.end(), id));
    }
  }
}

// --- miss-free measure ---------------------------------------------------------------

using MissFreeProperty = SeededTest;

// Monotonicity: a superset of referenced files never needs a smaller hoard;
// and the result never exceeds the total size of the order.
TEST_P(MissFreeProperty, MonotoneInReferencedSet) {
  Rng rng(Seed() ^ 4);
  std::vector<std::string> order;
  for (int i = 0; i < 50; ++i) {
    order.push_back("/f/" + std::to_string(i));
  }
  const auto size_of = [](const std::string& path) -> uint64_t {
    return 100 + (path.back() - '0') * 10;
  };
  uint64_t total = 0;
  for (const auto& p : order) {
    total += size_of(p);
  }

  std::set<std::string> small;
  for (int i = 0; i < 5; ++i) {
    small.insert(order[rng.NextBounded(order.size())]);
  }
  std::set<std::string> big = small;
  for (int i = 0; i < 10; ++i) {
    big.insert(order[rng.NextBounded(order.size())]);
  }

  const auto small_result = ComputeMissFree(order, small, size_of);
  const auto big_result = ComputeMissFree(order, big, size_of);
  EXPECT_LE(small_result.bytes, big_result.bytes);
  EXPECT_LE(big_result.bytes, total);
  EXPECT_EQ(small_result.uncovered, 0u);
}

// The working set is a lower bound for any coverage order that contains
// all referenced files.
TEST_P(MissFreeProperty, WorkingSetIsLowerBound) {
  Rng rng(Seed() ^ 5);
  std::vector<std::string> order;
  for (int i = 0; i < 40; ++i) {
    order.push_back("/f/" + std::to_string(i));
  }
  // Shuffle the order.
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  std::set<std::string> referenced;
  for (int i = 0; i < 12; ++i) {
    referenced.insert(order[rng.NextBounded(order.size())]);
  }
  const auto size_of = [](const std::string&) -> uint64_t { return 64; };
  const auto result = ComputeMissFree(order, referenced, size_of);
  EXPECT_GE(result.bytes, WorkingSetBytes(referenced, size_of));
}

// --- paths ------------------------------------------------------------------------

using PathProperty = SeededTest;

// Directory distance is a tree metric: symmetric, zero iff same directory,
// and obeys the triangle inequality.
TEST_P(PathProperty, DirectoryDistanceIsATreeMetric) {
  Rng rng(Seed() ^ 6);
  auto random_path = [&rng]() {
    std::string p;
    const int depth = 1 + static_cast<int>(rng.NextBounded(5));
    for (int d = 0; d < depth; ++d) {
      p += "/d" + std::to_string(rng.NextBounded(4));
    }
    return p + "/file" + std::to_string(rng.NextBounded(3));
  };
  for (int step = 0; step < 300; ++step) {
    const std::string a = random_path();
    const std::string b = random_path();
    const std::string c = random_path();
    const int ab = DirectoryDistance(a, b);
    const int ba = DirectoryDistance(b, a);
    const int bc = DirectoryDistance(b, c);
    const int ac = DirectoryDistance(a, c);
    EXPECT_EQ(ab, ba) << a << " " << b;
    EXPECT_GE(ab, 0);
    EXPECT_LE(ac, ab + bc) << "triangle inequality: " << a << " " << b << " " << c;
    EXPECT_EQ(DirectoryDistance(a, a), 0);
  }
}

// AbsolutePath output is always absolute and normalised.
TEST_P(PathProperty, AbsolutePathAlwaysAbsoluteNormalized) {
  Rng rng(Seed() ^ 7);
  const char* cwds[] = {"/", "/home/u", "/a/b/c"};
  const char* rels[] = {"x",      "./x",   "../x", "x/../y", "/abs/z",
                        "../../", "a//b",  ".",    "..",     "a/./b/../c"};
  for (int step = 0; step < 200; ++step) {
    const std::string cwd = cwds[rng.NextBounded(3)];
    const std::string rel = rels[rng.NextBounded(10)];
    const std::string abs = AbsolutePath(cwd, rel);
    ASSERT_FALSE(abs.empty());
    EXPECT_EQ(abs.front(), '/') << cwd << " + " << rel;
    EXPECT_EQ(NormalizePath(abs), abs) << "not normalised: " << abs;
  }
}

// --- vfs model check -----------------------------------------------------------------

using VfsProperty = SeededTest;

// Random create/remove/rename/mkdir ops against SimFilesystem, mirrored in
// a simple set-based model; existence must agree at every step.
TEST_P(VfsProperty, AgreesWithSetModel) {
  SimFilesystem fs;
  std::set<std::string> model_files;  // regular files only
  std::set<std::string> model_dirs = {"/"};
  Rng rng(Seed() ^ 8);

  auto random_dir = [&]() {
    auto it = model_dirs.begin();
    std::advance(it, static_cast<long>(rng.NextBounded(model_dirs.size())));
    return *it;
  };
  auto join = [](const std::string& dir, const std::string& name) {
    return dir == "/" ? "/" + name : dir + "/" + name;
  };

  for (int step = 0; step < 2'000; ++step) {
    const int action = static_cast<int>(rng.NextBounded(4));
    const std::string name = "n" + std::to_string(rng.NextBounded(6));
    const std::string dir = random_dir();
    const std::string path = join(dir, name);
    if (action == 0) {  // mkdir
      const VfsStatus st = fs.Mkdir(path);
      if (st == VfsStatus::kOk) {
        EXPECT_EQ(model_files.count(path) + model_dirs.count(path), 0u);
        model_dirs.insert(path);
      }
    } else if (action == 1) {  // create file
      const VfsStatus st = fs.CreateFile(path, 10);
      if (st == VfsStatus::kOk) {
        EXPECT_EQ(model_files.count(path) + model_dirs.count(path), 0u);
        model_files.insert(path);
      }
    } else if (action == 2) {  // remove file
      const VfsStatus st = fs.Remove(path);
      EXPECT_EQ(st == VfsStatus::kOk, model_files.count(path) == 1);
      model_files.erase(path);
    } else {  // rename file to a sibling name
      const std::string to = join(dir, "m" + std::to_string(rng.NextBounded(6)));
      if (model_files.count(path) != 0 && model_dirs.count(to) == 0) {
        const VfsStatus st = fs.Rename(path, to);
        if (st == VfsStatus::kOk) {
          model_files.erase(path);
          model_files.erase(to);  // rename-over replaces
          model_files.insert(to);
        }
      }
    }
    if (step % 100 == 0) {
      for (const auto& f : model_files) {
        EXPECT_TRUE(fs.Exists(f)) << f;
        EXPECT_EQ(fs.Stat(f)->kind, NodeKind::kRegular) << f;
      }
      EXPECT_EQ(fs.AllRegularFiles().size(), model_files.size());
    }
  }
}

// --- gossip -----------------------------------------------------------------------

using GossipProperty = SeededTest;

// Any random mixture of updates and pairwise reconciliations can always be
// driven to convergence by ring sweeps, and conflict resolutions never
// exceed detections.
TEST_P(GossipProperty, AlwaysConvergesUnderChaos) {
  Rng rng(Seed() ^ 9);
  const int replicas = 3 + static_cast<int>(rng.NextBounded(5));
  GossipNetwork net(replicas);
  for (int step = 0; step < 300; ++step) {
    if (rng.NextBool(0.6)) {
      net.Update(static_cast<ReplicaId>(rng.NextBounded(replicas)),
                 "/f" + std::to_string(rng.NextBounded(15)));
    } else {
      const ReplicaId a = static_cast<ReplicaId>(rng.NextBounded(replicas));
      const ReplicaId b = static_cast<ReplicaId>(rng.NextBounded(replicas));
      if (a != b) {
        net.ReconcilePair(a, b);
      }
    }
  }
  EXPECT_GT(net.SweepsToConverge(2 * replicas + 2), 0);
  EXPECT_TRUE(net.FullyConverged());
  EXPECT_EQ(net.stats().conflicts_detected, net.stats().conflicts_resolved);
}

// --- correlator end-to-end -----------------------------------------------------------

using CorrelatorProperty = SeededTest;

// Random reference streams (with deletes, renames, exclusions) never break
// the correlator's structural invariants, and save/load is always the
// identity on distances.
TEST_P(CorrelatorProperty, ChaosThenPersistenceRoundTrip) {
  SeerParams params;
  params.max_neighbors = 8;
  params.delete_delay = 5;
  Correlator correlator(params, Seed());
  Rng rng(Seed() ^ 10);

  std::vector<std::string> paths;
  for (int i = 0; i < 25; ++i) {
    paths.push_back("/c/f" + std::to_string(i));
  }
  Time t = 0;
  for (int step = 0; step < 2'000; ++step) {
    t += kMicrosPerSecond;
    const auto& path = paths[rng.NextBounded(paths.size())];
    const int action = static_cast<int>(rng.NextBounded(10));
    if (action < 7) {
      FileReference ref;
      ref.pid = static_cast<Pid>(1 + rng.NextBounded(2));
      ref.kind = RefKind::kPoint;
      ref.path = GlobalPaths().Intern(path);
      ref.time = t;
      correlator.OnReference(ref);
    } else if (action == 7) {
      correlator.OnFileDeleted(GlobalPaths().Intern(path), t);
    } else if (action == 8) {
      correlator.OnFileRenamed(GlobalPaths().Intern(path), GlobalPaths().Intern(path + "x"), t);
      correlator.OnFileRenamed(GlobalPaths().Intern(path + "x"), GlobalPaths().Intern(path), t);  // rename back
    } else {
      correlator.OnProcessFork(1, static_cast<Pid>(100 + step));
      correlator.OnProcessExit(static_cast<Pid>(100 + step));
    }
  }

  // Structural invariants.
  for (FileId id = 0; id < correlator.files().size(); ++id) {
    EXPECT_LE(correlator.relations().NeighborsOf(id).size(), 8u);
  }
  const ClusterSet clusters = correlator.BuildClusters();
  for (const Cluster& c : clusters.clusters) {
    EXPECT_FALSE(c.members.empty());
  }

  // Persistence identity.
  std::stringstream buffer;
  correlator.SaveTo(buffer);
  const auto loaded = Correlator::LoadFrom(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (int i = 0; i < 25; ++i) {
    for (int j = 0; j < 25; ++j) {
      EXPECT_EQ((*loaded)->Distance(paths[i], paths[j]),
                correlator.Distance(paths[i], paths[j]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamProperty, ::testing::Range(0, 6));
INSTANTIATE_TEST_SUITE_P(Seeds, RelationProperty, ::testing::Range(0, 6));
INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringProperty, ::testing::Range(0, 6));
INSTANTIATE_TEST_SUITE_P(Seeds, MissFreeProperty, ::testing::Range(0, 6));
INSTANTIATE_TEST_SUITE_P(Seeds, PathProperty, ::testing::Range(0, 4));
INSTANTIATE_TEST_SUITE_P(Seeds, VfsProperty, ::testing::Range(0, 4));
INSTANTIATE_TEST_SUITE_P(Seeds, GossipProperty, ::testing::Range(0, 8));
INSTANTIATE_TEST_SUITE_P(Seeds, CorrelatorProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace seer
