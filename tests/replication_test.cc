// Tests for the replication substrate: version vectors, hoard transport,
// and the three simulated replicators' reconciliation semantics.
#include <gtest/gtest.h>

#include "src/replication/replicators.h"
#include "src/replication/version_vector.h"

namespace seer {
namespace {

uint64_t TenBytes(const std::string&) { return 10; }

// --- version vectors -----------------------------------------------------------

TEST(VersionVector, FreshVectorsEqual) {
  VersionVector a;
  VersionVector b;
  EXPECT_EQ(a.Compare(b), VectorOrder::kEqual);
}

TEST(VersionVector, IncrementDominates) {
  VersionVector a;
  VersionVector b;
  a.Increment(0);
  EXPECT_EQ(a.Compare(b), VectorOrder::kDominates);
  EXPECT_EQ(b.Compare(a), VectorOrder::kDominated);
}

TEST(VersionVector, ConcurrentUpdatesConflict) {
  VersionVector a;
  VersionVector b;
  a.Increment(0);
  b.Increment(1);
  EXPECT_EQ(a.Compare(b), VectorOrder::kConcurrent);
  EXPECT_EQ(b.Compare(a), VectorOrder::kConcurrent);
}

TEST(VersionVector, MergeTakesComponentwiseMax) {
  VersionVector a;
  VersionVector b;
  a.Increment(0);
  a.Increment(0);
  b.Increment(1);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get(0), 2u);
  EXPECT_EQ(a.Get(1), 1u);
  EXPECT_EQ(a.Compare(b), VectorOrder::kDominates);
}

TEST(VersionVector, ToStringReadable) {
  VersionVector a;
  a.Increment(0);
  a.Increment(1);
  EXPECT_EQ(a.ToString(), "{0:1,1:1}");
}

// --- hoard transport ------------------------------------------------------------

TEST(ReplicationSystem, SetHoardFetchesAndEvicts) {
  RumorReplicator repl(TenBytes);
  repl.SetHoard({"/a", "/b"});
  EXPECT_TRUE(repl.IsLocal("/a"));
  EXPECT_TRUE(repl.IsLocal("/b"));
  EXPECT_EQ(repl.stats().files_fetched, 2u);
  EXPECT_EQ(repl.stats().bytes_fetched, 20u);

  repl.SetHoard({"/b", "/c"});
  EXPECT_FALSE(repl.IsLocal("/a"));
  EXPECT_TRUE(repl.IsLocal("/c"));
  EXPECT_EQ(repl.stats().files_evicted, 1u);
}

TEST(ReplicationSystem, DirtyFilesNeverEvicted) {
  RumorReplicator repl(TenBytes);
  repl.SetHoard({"/a"});
  repl.RecordLocalUpdate("/a", 1);
  repl.SetHoard({"/b"});
  EXPECT_TRUE(repl.IsLocal("/a")) << "the only up-to-date copy is local";
}

TEST(ReplicationSystem, NoFetchWhileDisconnected) {
  RumorReplicator repl(TenBytes);
  repl.OnDisconnect(0);
  repl.SetHoard({"/a"});
  EXPECT_FALSE(repl.IsLocal("/a"));
}

TEST(ReplicationSystem, AccessSemanticsByCapability) {
  RumorReplicator rumor(TenBytes);
  CodaReplicator coda(TenBytes);
  rumor.SetHoard({"/hoarded"});
  coda.SetHoard({"/hoarded"});

  // Connected: Rumor serves only local replicas; Coda fetches remotely.
  EXPECT_TRUE(rumor.Access("/hoarded"));
  EXPECT_FALSE(rumor.Access("/elsewhere"));
  EXPECT_TRUE(coda.Access("/elsewhere"));
  EXPECT_EQ(coda.stats().remote_accesses, 1u);
  EXPECT_TRUE(coda.IsLocal("/elsewhere")) << "remote access caches the object";

  // Disconnected: nobody can service a non-local access.
  rumor.OnDisconnect(0);
  coda.OnDisconnect(0);
  EXPECT_FALSE(rumor.Access("/other"));
  EXPECT_FALSE(coda.Access("/other2"));
}

TEST(ReplicationSystem, CapabilityProbes) {
  RumorReplicator rumor(TenBytes);
  CheapRumorReplicator cheap(TenBytes);
  CodaReplicator coda(TenBytes);
  EXPECT_FALSE(rumor.SupportsRemoteAccess());
  EXPECT_FALSE(cheap.SupportsRemoteAccess());
  EXPECT_TRUE(coda.SupportsRemoteAccess());
  EXPECT_FALSE(rumor.CanDetectMisses());
  EXPECT_TRUE(coda.CanDetectMisses());
}

// --- Rumor reconciliation -------------------------------------------------------

TEST(RumorReplicator, LocalUpdatePushedAtReconnect) {
  RumorReplicator repl(TenBytes);
  repl.SetHoard({"/a"});
  repl.OnDisconnect(0);
  repl.RecordLocalUpdate("/a", 1);
  repl.OnReconnect(10);
  EXPECT_EQ(repl.stats().pushed_updates, 1u);
  EXPECT_EQ(repl.stats().conflicts_detected, 0u);
}

TEST(RumorReplicator, RemoteUpdatePulled) {
  RumorReplicator repl(TenBytes);
  repl.SetHoard({"/a"});
  repl.RecordRemoteUpdate("/a", 1);
  const auto result = repl.Reconcile(2);
  ASSERT_EQ(result.pulled.size(), 1u);
  EXPECT_EQ(result.pulled[0], "/a");
}

TEST(RumorReplicator, ConcurrentUpdateIsConflict) {
  RumorReplicator repl(TenBytes);
  repl.SetHoard({"/a"});
  repl.OnDisconnect(0);
  repl.RecordLocalUpdate("/a", 1);
  repl.RecordRemoteUpdate("/a", 2);
  const auto result = repl.Reconcile(3);
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_EQ(repl.stats().conflicts_detected, 1u);
  EXPECT_EQ(repl.stats().conflicts_resolved, 1u);
  // After resolution the vectors converge: a second reconcile is a no-op.
  const auto again = repl.Reconcile(4);
  EXPECT_TRUE(again.conflicts.empty());
}

TEST(RumorReplicator, ConflictResolverChoosesWinner) {
  bool called = false;
  RumorReplicator repl(TenBytes, [&called](const std::string&) {
    called = true;
    return false;  // peer wins
  });
  repl.SetHoard({"/a"});
  repl.RecordLocalUpdate("/a", 1);
  repl.RecordRemoteUpdate("/a", 2);
  repl.Reconcile(3);
  EXPECT_TRUE(called);
}

TEST(RumorReplicator, DeleteUpdateConflictRevives) {
  RumorReplicator repl(TenBytes);
  repl.SetHoard({"/a"});
  repl.RecordLocalDelete("/a", 1);
  repl.RecordRemoteUpdate("/a", 2);
  const auto result = repl.Reconcile(3);
  ASSERT_EQ(result.conflicts.size(), 1u);
  EXPECT_TRUE(repl.IsLocal("/a")) << "the peer's updated version survives";
}

TEST(RumorReplicator, PlainDeletePropagates) {
  RumorReplicator repl(TenBytes);
  repl.SetHoard({"/a"});
  repl.RecordLocalDelete("/a", 1);
  const auto result = repl.Reconcile(2);
  ASSERT_EQ(result.pushed.size(), 1u);
  EXPECT_FALSE(repl.IsLocal("/a"));
}

// --- CheapRumor (master-slave) --------------------------------------------------

TEST(CheapRumorReplicator, MasterWinsConflicts) {
  CheapRumorReplicator repl(TenBytes);
  repl.SetHoard({"/a"});
  repl.RecordLocalUpdate("/a", 1);
  repl.RecordRemoteUpdate("/a", 2);
  const auto result = repl.Reconcile(3);
  ASSERT_EQ(result.conflicts.size(), 1u);
  ASSERT_EQ(repl.saved_conflict_copies().size(), 1u);
  EXPECT_EQ(repl.saved_conflict_copies()[0], "/a.conflict");
  // The master's version is pulled back.
  ASSERT_EQ(result.pulled.size(), 1u);
}

TEST(CheapRumorReplicator, CleanPushAndPull) {
  CheapRumorReplicator repl(TenBytes);
  repl.SetHoard({"/mine", "/theirs"});
  repl.RecordLocalUpdate("/mine", 1);
  repl.RecordRemoteUpdate("/theirs", 2);
  const auto result = repl.Reconcile(3);
  EXPECT_EQ(result.pushed.size(), 1u);
  EXPECT_EQ(result.pulled.size(), 1u);
  EXPECT_TRUE(result.conflicts.empty());
}

// --- Coda ------------------------------------------------------------------------

TEST(CodaReplicator, BrokenCallbacksRefreshCache) {
  CodaReplicator repl(TenBytes);
  repl.SetHoard({"/cached"});
  repl.RecordRemoteUpdate("/cached", 1);
  repl.RecordRemoteUpdate("/uncached", 2);
  const auto result = repl.Reconcile(3);
  EXPECT_EQ(repl.callbacks_broken(), 1u);  // only the cached file
  ASSERT_EQ(result.pulled.size(), 1u);
  EXPECT_EQ(result.pulled[0], "/cached");
}

TEST(CodaReplicator, DisconnectedConflictDetected) {
  CodaReplicator repl(TenBytes);
  repl.SetHoard({"/a"});
  repl.OnDisconnect(0);
  repl.RecordLocalUpdate("/a", 1);
  repl.RecordRemoteUpdate("/a", 2);
  repl.OnReconnect(3);
  EXPECT_EQ(repl.stats().conflicts_detected, 1u);
}

}  // namespace
}  // namespace seer
