// Tests for the n-nearest-neighbor relation table (Section 3.1.3): the
// geometric-mean reduction and the three-level replacement priority.
#include "src/core/relation_table.h"

#include <cmath>

#include <gtest/gtest.h>

namespace seer {
namespace {

class RelationHarness {
 public:
  explicit RelationHarness(SeerParams params = MakeParams())
      : params_(params), table_(params_, &files_) {}

  static SeerParams MakeParams() {
    SeerParams p;
    p.max_neighbors = 3;  // small list to exercise replacement
    return p;
  }

  FileId Id(const std::string& name) { return files_.Intern(GlobalPaths().Intern("/r/" + name)); }

  FileTable& files() { return files_; }
  RelationTable& table() { return table_; }
  const SeerParams& params() const { return params_; }

 private:
  SeerParams params_;
  FileTable files_;
  RelationTable table_;
};

TEST(RelationTable, GeometricMeanAccumulation) {
  RelationHarness h;
  const FileId a = h.Id("a");
  const FileId b = h.Id("b");
  h.table().Observe(a, b, 2.0);
  h.table().Observe(a, b, 8.0);
  EXPECT_NEAR(h.table().DistanceOrNegative(a, b), 4.0, 1e-9);  // sqrt(2*8)
}

// Section 3.1.2's motivating example: distances {1, 1, 1498} should read as
// much closer than {500, 500, 500} — the geometric mean gives small values
// more importance, unlike the arithmetic mean (both have mean 500).
TEST(RelationTable, GeometricMeanFavorsSmallDistances) {
  RelationHarness close_pair;
  const FileId a1 = close_pair.Id("a");
  const FileId b1 = close_pair.Id("b");
  close_pair.table().Observe(a1, b1, 1.0);
  close_pair.table().Observe(a1, b1, 1.0);
  close_pair.table().Observe(a1, b1, 1498.0);

  RelationHarness far_pair;
  const FileId a2 = far_pair.Id("a");
  const FileId b2 = far_pair.Id("b");
  far_pair.table().Observe(a2, b2, 500.0);
  far_pair.table().Observe(a2, b2, 500.0);
  far_pair.table().Observe(a2, b2, 500.0);

  EXPECT_LT(close_pair.table().DistanceOrNegative(a1, b1),
            far_pair.table().DistanceOrNegative(a2, b2) / 10.0);
}

TEST(RelationTable, ArithmeticMeanForAblation) {
  SeerParams p = RelationHarness::MakeParams();
  p.mean_kind = MeanKind::kArithmetic;
  RelationHarness h(p);
  const FileId a = h.Id("a");
  const FileId b = h.Id("b");
  h.table().Observe(a, b, 1.0);
  h.table().Observe(a, b, 1.0);
  h.table().Observe(a, b, 1498.0);
  EXPECT_NEAR(h.table().DistanceOrNegative(a, b), 500.0, 1e-9);
}

TEST(RelationTable, ZeroDistanceUsesFloor) {
  RelationHarness h;
  const FileId a = h.Id("a");
  const FileId b = h.Id("b");
  h.table().Observe(a, b, 0.0);
  const double d = h.table().DistanceOrNegative(a, b);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);  // a run of zeros stays below every nonzero distance
}

TEST(RelationTable, ListCappedAtN) {
  RelationHarness h;
  const FileId a = h.Id("a");
  for (int i = 0; i < 10; ++i) {
    h.table().Observe(a, h.Id("n" + std::to_string(i)), 5.0);
  }
  EXPECT_EQ(h.table().NeighborsOf(a).size(), 3u);
}

// Replacement priority 2: the farthest entry yields to a closer candidate.
TEST(RelationTable, FarthestEntryReplacedByCloserCandidate) {
  RelationHarness h;
  const FileId a = h.Id("a");
  const FileId far = h.Id("far");
  h.table().Observe(a, h.Id("n1"), 5.0);
  h.table().Observe(a, h.Id("n2"), 5.0);
  h.table().Observe(a, far, 90.0);

  const FileId close = h.Id("close");
  h.table().Observe(a, close, 2.0);
  EXPECT_LT(h.table().DistanceOrNegative(a, far), 0.0) << "far entry should be gone";
  EXPECT_GT(h.table().DistanceOrNegative(a, close), 0.0);
}

// ...but a candidate farther than everything present is NOT admitted.
TEST(RelationTable, FartherCandidateRejected) {
  RelationHarness h;
  const FileId a = h.Id("a");
  h.table().Observe(a, h.Id("n1"), 5.0);
  h.table().Observe(a, h.Id("n2"), 5.0);
  h.table().Observe(a, h.Id("n3"), 5.0);

  const FileId worse = h.Id("worse");
  h.table().Observe(a, worse, 50.0);
  EXPECT_LT(h.table().DistanceOrNegative(a, worse), 0.0);
  EXPECT_EQ(h.table().NeighborsOf(a).size(), 3u);
}

// Replacement priority 1: a deletion-marked neighbor goes first, even when
// it is not the farthest.
TEST(RelationTable, DeletionMarkedEntryReplacedFirst) {
  RelationHarness h;
  const FileId a = h.Id("a");
  const FileId doomed = h.Id("doomed");
  h.table().Observe(a, doomed, 1.0);  // closest of the three
  h.table().Observe(a, h.Id("n1"), 5.0);
  h.table().Observe(a, h.Id("n2"), 9.0);

  h.files().MarkDeleted(doomed, /*delete_delay=*/1000);
  const FileId fresh = h.Id("fresh");
  h.table().Observe(a, fresh, 8.0);

  EXPECT_LT(h.table().DistanceOrNegative(a, doomed), 0.0);
  EXPECT_GT(h.table().DistanceOrNegative(a, fresh), 0.0);
  EXPECT_GT(h.table().DistanceOrNegative(a, h.Id("n2")), 0.0) << "farthest entry kept";
}

// Replacement priority 3: an aged entry yields even to a farther candidate.
TEST(RelationTable, AgingAllowsReplacement) {
  SeerParams p = RelationHarness::MakeParams();
  p.aging_updates = 10;
  RelationHarness h(p);
  const FileId a = h.Id("a");
  const FileId old_nb = h.Id("old");
  h.table().Observe(a, old_nb, 1.0);
  h.table().Observe(a, h.Id("n1"), 1.0);
  h.table().Observe(a, h.Id("n2"), 1.0);

  // Generate many updates elsewhere to age the entries.
  const FileId busy = h.Id("busy");
  for (int i = 0; i < 20; ++i) {
    h.table().Observe(busy, h.Id("t" + std::to_string(i % 2)), 1.0);
  }
  // Keep n1 and n2 fresh; old_nb stays stale.
  h.table().Observe(a, h.Id("n1"), 1.0);
  h.table().Observe(a, h.Id("n2"), 1.0);

  const FileId newer = h.Id("newer");
  h.table().Observe(a, newer, 30.0);  // farther than everything, but old_nb aged out
  EXPECT_GT(h.table().DistanceOrNegative(a, newer), 0.0);
  EXPECT_LT(h.table().DistanceOrNegative(a, old_nb), 0.0);
}

TEST(RelationTable, PurgeRemovesFromAllLists) {
  RelationHarness h;
  const FileId a = h.Id("a");
  const FileId b = h.Id("b");
  const FileId c = h.Id("c");
  h.table().Observe(a, b, 1.0);
  h.table().Observe(c, b, 1.0);
  h.table().Observe(b, a, 1.0);

  h.table().Purge(b);
  EXPECT_LT(h.table().DistanceOrNegative(a, b), 0.0);
  EXPECT_LT(h.table().DistanceOrNegative(c, b), 0.0);
  EXPECT_TRUE(h.table().NeighborsOf(b).empty());
}

TEST(RelationTable, SelfObservationIgnored) {
  RelationHarness h;
  const FileId a = h.Id("a");
  h.table().Observe(a, a, 1.0);
  EXPECT_TRUE(h.table().NeighborsOf(a).empty());
}

TEST(RelationTable, LiveNeighborIdsSkipDeletedAndExcluded) {
  RelationHarness h;
  const FileId a = h.Id("a");
  const FileId dead = h.Id("dead");
  const FileId excl = h.Id("excl");
  const FileId ok = h.Id("ok");
  h.table().Observe(a, dead, 1.0);
  h.table().Observe(a, excl, 1.0);
  h.table().Observe(a, ok, 1.0);
  h.files().MarkDeleted(dead, /*delete_delay=*/1000);
  h.files().MarkExcluded(excl);

  const auto live = h.table().LiveNeighborIds(a);
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0], ok);
}

TEST(RelationTable, LiveNeighborIdsAppendOverloadDoesNotClear) {
  RelationHarness h;
  const FileId a = h.Id("a");
  const FileId b = h.Id("b");
  h.table().Observe(a, b, 1.0);

  std::vector<FileId> out = {kInvalidFileId};  // pre-existing scratch content
  h.table().LiveNeighborIds(a, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], kInvalidFileId) << "append overload must not clear";
  EXPECT_EQ(out[1], b);
}

TEST(RelationTable, FindSlotAndHintedObserve) {
  RelationHarness h;
  const FileId a = h.Id("a");
  const FileId b = h.Id("b");
  const FileId c = h.Id("c");
  h.table().Observe(a, b, 2.0);
  h.table().Observe(a, c, 3.0);

  EXPECT_EQ(h.table().FindSlot(a, b), 0);
  EXPECT_EQ(h.table().FindSlot(a, c), 1);
  EXPECT_EQ(h.table().FindSlot(a, h.Id("unknown")), -1);
  EXPECT_EQ(h.table().FindSlot(h.Id("nolist"), b), -1);

  // A valid hint folds into the right entry...
  h.table().ObserveHinted(a, b, 8.0, 0);
  EXPECT_NEAR(h.table().DistanceOrNegative(a, b), 4.0, 1e-9);  // sqrt(2*8)
  // ...and a stale or absent hint falls back to the scan with the same
  // result (the batched fold relies on this when an earlier fold in the
  // batch moved entries around).
  h.table().ObserveHinted(a, c, 12.0, 0);    // wrong slot (points at b)
  EXPECT_NEAR(h.table().DistanceOrNegative(a, c), 6.0, 1e-9);  // sqrt(3*12)
  h.table().ObserveHinted(a, b, 32.0, 99);   // out of range
  EXPECT_NEAR(h.table().DistanceOrNegative(a, b), 8.0, 1e-9);  // cbrt(2*8*32)
  h.table().ObserveHinted(a, h.Id("d"), 1.0, 1);  // hint for a brand-new pair
  EXPECT_GT(h.table().DistanceOrNegative(a, h.Id("d")), 0.0);
}

// The lazy mean cache must be invalidated when an entry's accumulators
// change: a priority-2 scan after a fold has to see the new mean, or a
// replacement decision could go the wrong way.
TEST(RelationTable, MeanCacheInvalidatedOnFold) {
  RelationHarness h;
  const FileId a = h.Id("a");
  const FileId x = h.Id("x");
  h.table().Observe(a, x, 80.0);
  h.table().Observe(a, h.Id("n1"), 4.0);
  h.table().Observe(a, h.Id("n2"), 4.0);

  // Full-list miss primes the cache (candidate farther than worst=80 is
  // rejected).
  h.table().Observe(a, h.Id("reject"), 100.0);
  EXPECT_LT(h.table().DistanceOrNegative(a, h.Id("reject")), 0.0);

  // Fold x down: its geometric mean drops from 80 to sqrt(80) ≈ 8.94.
  h.table().Observe(a, x, 1.0);

  // Candidate at 20: with a stale cache the scan would still see x at 80
  // and replace it; with correct invalidation the worst mean is ~8.94 and
  // the candidate is rejected.
  h.table().Observe(a, h.Id("mid"), 20.0);
  EXPECT_GT(h.table().DistanceOrNegative(a, x), 0.0) << "x must survive";
  EXPECT_LT(h.table().DistanceOrNegative(a, h.Id("mid")), 0.0);
}

// Satellite regression: MarkSetChanged used to copy reverse_[id] into a
// temporary vector on every call — a rename storm over a well-connected
// file paid one allocation + full copy per rename. The index-based walk
// must still stamp the file and every reverse owner, every time.
TEST(RelationTable, RenameStormStampsAllReverseOwners) {
  RelationHarness h;
  const FileId hub = h.Id("hub");
  std::vector<FileId> owners;
  for (int i = 0; i < 200; ++i) {
    const FileId o = h.Id("owner" + std::to_string(i));
    h.table().Observe(o, hub, 1.0);
    owners.push_back(o);
  }

  for (int round = 0; round < 50; ++round) {
    const uint64_t epoch = h.table().set_change_epoch();
    h.table().MarkSetChanged(hub);
    std::vector<FileId> changed;
    h.table().CollectChangedSince(epoch, &changed);
    ASSERT_EQ(changed.size(), owners.size() + 1) << "round " << round;
  }

  // Stamping an id the table has never sized for must grow the tables and
  // not touch anyone else.
  const FileId fresh = h.Id("fresh-after-storm");
  const uint64_t epoch = h.table().set_change_epoch();
  h.table().MarkSetChanged(fresh);
  std::vector<FileId> changed;
  h.table().CollectChangedSince(epoch, &changed);
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], fresh);
}

}  // namespace
}  // namespace seer
