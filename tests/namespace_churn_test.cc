// Namespace churn through the interner (Section 4.8): rename, delete with
// delayed purge, exclusion, and name reuse must leave the relation table in
// the state the paper prescribes — rename and temporary deletion preserve
// relationship data; purge expiry and exclusion destroy it.
#include <string>

#include <gtest/gtest.h>

#include "src/core/correlator.h"

namespace seer {
namespace {

PathId P(std::string_view path) { return GlobalPaths().Intern(path); }

FileReference Ref(Pid pid, RefKind kind, std::string_view path, Time time) {
  FileReference r;
  r.pid = pid;
  r.kind = kind;
  r.path = P(path);
  r.time = time;
  return r;
}

// Establishes a relation between `a` and `b` in one process stream.
void Relate(Correlator* correlator, const std::string& a, const std::string& b,
            Time* t, int passes = 4) {
  for (int i = 0; i < passes; ++i) {
    correlator->OnReference(Ref(1, RefKind::kPoint, a, *t += kMicrosPerSecond));
    correlator->OnReference(Ref(1, RefKind::kPoint, b, *t += kMicrosPerSecond));
  }
}

// Rename keeps relationship data under the new name; the old spelling,
// referenced afterwards, is a brand-new file — not an alias of the moved
// one (the id re-binding must not leave the old PathId pointing anywhere).
TEST(NamespaceChurn, RenameThenRereferenceOldNameIsAFreshFile) {
  Correlator correlator;
  Time t = 0;
  Relate(&correlator, "/churn/orig", "/churn/partner", &t);
  const double before = correlator.Distance("/churn/orig", "/churn/partner");
  ASSERT_GE(before, 0.0);
  const FileId moved_id = correlator.files().FindPath("/churn/orig");

  correlator.OnFileRenamed(P("/churn/orig"), P("/churn/moved"), t += kMicrosPerSecond);

  // Relations survive under the new name, attached to the same FileId.
  EXPECT_EQ(correlator.files().FindPath("/churn/moved"), moved_id);
  EXPECT_DOUBLE_EQ(correlator.Distance("/churn/moved", "/churn/partner"), before);
  EXPECT_EQ(correlator.files().FindPath("/churn/orig"), kInvalidFileId);

  // A new file created at the old spelling starts from scratch.
  correlator.OnReference(Ref(2, RefKind::kPoint, "/churn/orig", t += kMicrosPerSecond));
  const FileId reborn = correlator.files().FindPath("/churn/orig");
  ASSERT_NE(reborn, kInvalidFileId);
  EXPECT_NE(reborn, moved_id);
  EXPECT_TRUE(correlator.relations().NeighborsOf(reborn).empty());
  // And the moved file is untouched by the newcomer.
  EXPECT_DOUBLE_EQ(correlator.Distance("/churn/moved", "/churn/partner"), before);
}

// Deletion is soft for `delete_delay` subsequent deletions: a name reused
// within the window resurrects the record with its relations intact; once
// the window expires the relations are purged for real.
TEST(NamespaceChurn, DeletePurgesOnlyAfterDelay) {
  SeerParams params;
  params.delete_delay = 2;
  Correlator correlator(params);
  Time t = 0;
  Relate(&correlator, "/del/victim", "/del/partner", &t);
  ASSERT_GE(correlator.Distance("/del/victim", "/del/partner"), 0.0);

  correlator.OnFileDeleted(P("/del/victim"), t += kMicrosPerSecond);
  // Grace period: relationship data still present (the name may be reused).
  EXPECT_GE(correlator.Distance("/del/victim", "/del/partner"), 0.0);

  // Two unrelated deletions expire the grace period.
  correlator.OnReference(Ref(1, RefKind::kPoint, "/del/x1", t += kMicrosPerSecond));
  correlator.OnFileDeleted(P("/del/x1"), t += kMicrosPerSecond);
  correlator.OnReference(Ref(1, RefKind::kPoint, "/del/x2", t += kMicrosPerSecond));
  correlator.OnFileDeleted(P("/del/x2"), t += kMicrosPerSecond);

  EXPECT_LT(correlator.Distance("/del/victim", "/del/partner"), 0.0)
      << "expired delete must purge the relation table";
}

TEST(NamespaceChurn, NameReuseWithinDelayResurrectsRelations) {
  SeerParams params;
  params.delete_delay = 4;
  Correlator correlator(params);
  Time t = 0;
  Relate(&correlator, "/reuse/f", "/reuse/partner", &t);
  const double before = correlator.Distance("/reuse/f", "/reuse/partner");
  ASSERT_GE(before, 0.0);

  correlator.OnFileDeleted(P("/reuse/f"), t += kMicrosPerSecond);
  // The editor-style delete/recreate cycle: the same name comes right back.
  correlator.OnReference(Ref(1, RefKind::kPoint, "/reuse/f", t += kMicrosPerSecond));

  const FileId id = correlator.files().FindPath("/reuse/f");
  ASSERT_NE(id, kInvalidFileId);
  EXPECT_FALSE(correlator.files().Get(id).deleted);
  EXPECT_DOUBLE_EQ(correlator.Distance("/reuse/f", "/reuse/partner"), before)
      << "recreation within the delay must keep the old relations (Section 4.8)";
}

// Exclusion (frequently-referenced files, Section 4.2) removes the file
// from the distance machinery immediately and keeps it out afterwards.
TEST(NamespaceChurn, ExclusionPurgesAndStays) {
  Correlator correlator;
  Time t = 0;
  Relate(&correlator, "/ex/libc.so", "/ex/app", &t);
  ASSERT_GE(correlator.Distance("/ex/libc.so", "/ex/app"), 0.0);

  correlator.OnFileExcluded(P("/ex/libc.so"));
  EXPECT_LT(correlator.Distance("/ex/libc.so", "/ex/app"), 0.0);

  // Further references to the excluded file do not rebuild relations.
  Relate(&correlator, "/ex/libc.so", "/ex/app", &t);
  const FileId id = correlator.files().FindPath("/ex/libc.so");
  ASSERT_NE(id, kInvalidFileId);
  EXPECT_TRUE(correlator.files().Get(id).excluded);
  EXPECT_TRUE(correlator.relations().NeighborsOf(id).empty());
  // Excluded files never appear in clustering candidates.
  for (const FileId live : correlator.files().LiveIds()) {
    EXPECT_NE(live, id);
  }
}

// Renaming a file while it is an open (kBegin) reference: the per-process
// stream tracks the FileId, so the open survives the rename — references
// made while it is still open observe distance 0, and the close arrives
// under the new name.
TEST(NamespaceChurn, RenameOfOpenFileKeepsLifetimeAndRelations) {
  Correlator correlator;
  Time t = 0;
  correlator.OnReference(Ref(1, RefKind::kBegin, "/open/src.c", t += kMicrosPerSecond));
  correlator.OnFileRenamed(P("/open/src.c"), P("/open/src_v2.c"), t += kMicrosPerSecond);

  // Still open across the rename: a new reference in the same process sees
  // the file at lifetime distance 0.
  correlator.OnReference(Ref(1, RefKind::kPoint, "/open/header.h", t += kMicrosPerSecond));
  // The observation is distance 0 (file still open); the relation table
  // stores zeros at its geometric floor, strictly below any closed-file
  // observation (which is at least 1 intervening open).
  const double while_open = correlator.Distance("/open/src_v2.c", "/open/header.h");
  ASSERT_GE(while_open, 0.0);
  EXPECT_LT(while_open, 1.0);

  // The close arrives under the new name and lands on the same lifetime.
  correlator.OnReference(Ref(1, RefKind::kEnd, "/open/src_v2.c", t += kMicrosPerSecond));

  // Closed now: the next reference sees a positive distance, proving the
  // kEnd reached the original open's stream entry.
  correlator.OnReference(Ref(1, RefKind::kPoint, "/open/other.h", t += kMicrosPerSecond));
  const double after_close = correlator.Distance("/open/src_v2.c", "/open/other.h");
  ASSERT_GE(after_close, 0.0);
  EXPECT_GT(after_close, 0.0);
}

}  // namespace
}  // namespace seer
