// End-to-end integration tests: full SEER stack against the synthetic
// workload, checking the *direction* of the paper's headline results
// (Section 5.2): SEER's miss-free hoard tracks the working set while LRU
// needs more; live usage completes with sensible miss accounting and no
// severity-0 failures.
#include <gtest/gtest.h>

#include "src/sim/live_sim.h"
#include "src/sim/machine_sim.h"

namespace seer {
namespace {

// A small machine so the test stays fast: ~2 weeks of daily periods.
MachineProfile TestProfile() {
  MachineProfile p = GetMachineProfile('D');
  p.days_measured = 16;
  p.active_hours_per_day = 0.4;
  p.env.num_projects = 5;
  p.env.size_scale = 3.0;
  return p;
}

TEST(Integration, MissFreeSimulationProducesSaneNumbers) {
  MissFreeSimConfig config;
  config.seed = 11;
  const MissFreeSimResult r = RunMissFreeSimulation(TestProfile(), config);

  ASSERT_GE(r.periods.size(), 10u);
  EXPECT_GT(r.trace_events, 1'000u);
  EXPECT_GT(r.files_tracked, 50u);

  for (const auto& p : r.periods) {
    // The working set is a lower bound for every algorithm.
    EXPECT_GE(p.seer_mb, p.working_set_mb - 1e-6);
    EXPECT_GE(p.lru_mb, p.working_set_mb - 1e-6);
    EXPECT_EQ(p.uncovered_seer, 0u);
    EXPECT_EQ(p.uncovered_lru, 0u);
  }
}

TEST(Integration, SeerBeatsLruOnAverage) {
  MissFreeSimConfig config;
  config.seed = 12;
  const MissFreeSimResult r = RunMissFreeSimulation(TestProfile(), config);
  ASSERT_GT(r.periods.size(), 0u);
  // The paper's central claim, directionally: the clustering manager needs
  // less space than strict LRU, and stays near the working set.
  EXPECT_LT(r.seer_mb.mean, r.lru_mb.mean);
  EXPECT_LT(r.seer_mb.mean, 3.0 * r.working_set_mb.mean + 1.0);
}

TEST(Integration, WeeklyPeriodsAggregateDays) {
  MachineProfile p = TestProfile();
  p.days_measured = 21;
  MissFreeSimConfig daily;
  daily.seed = 13;
  MissFreeSimConfig weekly;
  weekly.seed = 13;
  weekly.period = 7 * kMicrosPerDay;
  const auto rd = RunMissFreeSimulation(p, daily);
  const auto rw = RunMissFreeSimulation(p, weekly);
  ASSERT_GT(rw.periods.size(), 0u);
  // Weekly working sets are at least as large as daily ones on average.
  EXPECT_GE(rw.working_set_mb.mean, rd.working_set_mb.mean * 0.9);
  EXPECT_EQ(rw.periods.size(), 2u);  // 21 days, one warmup week
}

TEST(Integration, InvestigatorsRunWithoutBreakingResults) {
  MissFreeSimConfig with;
  with.seed = 14;
  with.use_investigators = true;
  const auto r = RunMissFreeSimulation(TestProfile(), with);
  ASSERT_GT(r.periods.size(), 0u);
  for (const auto& p : r.periods) {
    EXPECT_EQ(p.uncovered_seer, 0u);
  }
}

TEST(Integration, LiveUsageRunsAndAccountsMisses) {
  MachineProfile p = TestProfile();
  LiveSimConfig config;
  config.seed = 15;
  config.disconnections_override = 12;
  const LiveSimResult r = RunLiveUsage(p, config);

  ASSERT_EQ(r.disconnections.size(), 12u);
  EXPECT_GT(r.trace_events, 1'000u);
  EXPECT_GT(r.replication.files_fetched, 0u);
  for (const auto& d : r.disconnections) {
    EXPECT_GT(d.wall_hours, 0.0);
    EXPECT_LE(d.active_hours, d.wall_hours + 1e-9);
    for (const auto& m : d.misses) {
      EXPECT_GE(m.time, 0);  // offsets into the disconnection
    }
  }
  // The paper observed no severity-0 (machine unusable) misses, ever;
  // critical files are always hoarded, so none should appear here either.
  EXPECT_EQ(r.failures_by_severity()[0], 0u);
}

TEST(Integration, TinyHoardForcesMisses) {
  MachineProfile p = TestProfile();
  LiveSimConfig config;
  config.seed = 16;
  config.disconnections_override = 15;
  config.hoard_mb_override = 0.2;  // absurdly small: projects cannot fit
  const LiveSimResult r = RunLiveUsage(p, config);
  size_t total_misses = 0;
  for (const auto& d : r.disconnections) {
    total_misses += d.misses.size();
  }
  EXPECT_GT(total_misses, 0u);
}

TEST(Integration, GenerousHoardIsMissFree) {
  MachineProfile p = TestProfile();
  LiveSimConfig config;
  config.seed = 17;
  config.disconnections_override = 10;
  config.hoard_mb_override = 10'000.0;  // everything fits
  const LiveSimResult r = RunLiveUsage(p, config);
  EXPECT_EQ(r.failures_any_severity(), 0u);
}

TEST(Integration, CodaSubstrateServicesConnectedMissesRemotely) {
  MachineProfile p = TestProfile();
  LiveSimConfig config;
  config.seed = 18;
  config.disconnections_override = 6;
  config.replicator = ReplicatorKind::kCoda;
  const LiveSimResult r = RunLiveUsage(p, config);
  EXPECT_EQ(r.disconnections.size(), 6u);
}

TEST(Integration, CodaBaselineTracked) {
  MissFreeSimConfig config;
  config.seed = 21;
  config.include_coda = true;
  const MissFreeSimResult r = RunMissFreeSimulation(TestProfile(), config);
  ASSERT_GT(r.periods.size(), 0u);
  EXPECT_GT(r.coda_mb.count, 0u);
  for (const auto& p : r.periods) {
    EXPECT_GE(p.coda_mb, p.working_set_mb - 1e-6)
        << "the working set lower-bounds every manager";
  }
}

TEST(Integration, PartialHoardPolicyRuns) {
  MachineProfile p = TestProfile();
  LiveSimConfig config;
  config.seed = 22;
  config.disconnections_override = 8;
  config.hoard_mb_override = 2.0;  // force pressure
  config.allow_partial_projects = true;
  const LiveSimResult r = RunLiveUsage(p, config);
  EXPECT_EQ(r.disconnections.size(), 8u);
}

TEST(Integration, DeterministicAcrossRuns) {
  MissFreeSimConfig config;
  config.seed = 19;
  const auto a = RunMissFreeSimulation(TestProfile(), config);
  const auto b = RunMissFreeSimulation(TestProfile(), config);
  ASSERT_EQ(a.periods.size(), b.periods.size());
  for (size_t i = 0; i < a.periods.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.periods[i].seer_mb, b.periods[i].seer_mb);
    EXPECT_DOUBLE_EQ(a.periods[i].lru_mb, b.periods[i].lru_mb);
  }
}

}  // namespace
}  // namespace seer
