// Tests for the correlator database save/load format.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/correlator.h"

namespace seer {
namespace {

PathId P(std::string_view path) { return GlobalPaths().Intern(path); }

FileReference Ref(Pid pid, RefKind kind, const std::string& path, Time time) {
  FileReference r;
  r.pid = pid;
  r.kind = kind;
  r.path = P(path);
  r.time = time;
  return r;
}

// Loads the correlator with a couple of projects' worth of relations.
void Populate(Correlator* correlator) {
  Time t = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (int proj = 0; proj < 2; ++proj) {
      for (int f = 0; f < 6; ++f) {
        correlator->OnReference(Ref(proj + 1, RefKind::kPoint,
                                    "/p" + std::to_string(proj) + "/f" + std::to_string(f),
                                    t += kMicrosPerSecond));
      }
    }
  }
  correlator->OnFileDeleted(P("/p0/f5"), t);
}

TEST(Persistence, SaveLoadRoundTrip) {
  SeerParams params;
  params.max_neighbors = 12;
  params.cluster_near = 7;
  params.cluster_far = 4;
  Correlator original(params);
  Populate(&original);

  std::stringstream buffer;
  original.SaveTo(buffer);

  const auto result = Correlator::LoadFrom(buffer);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& loaded = *result;

  // Same parameters.
  EXPECT_EQ(loaded->params().max_neighbors, 12);
  EXPECT_EQ(loaded->params().cluster_near, 7);

  // Same files (including the deleted mark).
  ASSERT_EQ(loaded->files().size(), original.files().size());
  const FileId deleted = loaded->files().FindPath("/p0/f5");
  ASSERT_NE(deleted, kInvalidFileId);
  EXPECT_TRUE(loaded->files().Get(deleted).deleted);

  // Identical distances for every tracked pair.
  for (int f = 1; f < 5; ++f) {
    const std::string from = "/p0/f0";
    const std::string to = "/p0/f" + std::to_string(f);
    EXPECT_DOUBLE_EQ(loaded->Distance(from, to), original.Distance(from, to)) << to;
  }

  // Identical clustering.
  const ClusterSet a = original.BuildClusters();
  const ClusterSet b = loaded->BuildClusters();
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].members, b.clusters[i].members) << i;
  }
}

TEST(Persistence, LoadedCorrelatorKeepsLearning) {
  Correlator original;
  Populate(&original);
  std::stringstream buffer;
  original.SaveTo(buffer);
  const auto result = Correlator::LoadFrom(buffer);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& loaded = *result;

  // New references extend the old database; the global sequence resumes
  // past the saved point so recency ordering stays monotone.
  const uint64_t before = loaded->files().Get(loaded->files().FindPath("/p0/f0")).last_ref_seq;
  loaded->OnReference(Ref(1, RefKind::kPoint, "/p0/f0", 999 * kMicrosPerSecond));
  EXPECT_GT(loaded->files().Get(loaded->files().FindPath("/p0/f0")).last_ref_seq, before);
  loaded->OnReference(Ref(1, RefKind::kPoint, "/p0/new", 1000 * kMicrosPerSecond));
  EXPECT_NE(loaded->files().FindPath("/p0/new"), kInvalidFileId);
}

TEST(Persistence, DeletionDelayResumesAfterLoad) {
  SeerParams params;
  params.delete_delay = 2;
  Correlator original(params);
  Populate(&original);  // one deletion recorded

  std::stringstream buffer;
  original.SaveTo(buffer);
  const auto result = Correlator::LoadFrom(buffer);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& loaded = *result;

  // Two more deletions expire /p0/f5's grace period in the LOADED instance.
  loaded->OnReference(Ref(1, RefKind::kPoint, "/x1", 1));
  loaded->OnFileDeleted(P("/x1"), 2);
  loaded->OnReference(Ref(1, RefKind::kPoint, "/x2", 3));
  loaded->OnFileDeleted(P("/x2"), 4);
  EXPECT_LT(loaded->Distance("/p0/f0", "/p0/f5"), 0.0)
      << "purge queue should survive the reload";
}

TEST(Persistence, PathsWithSpacesSurvive) {
  Correlator original;
  original.OnReference(Ref(1, RefKind::kPoint, "/docs/My Report.doc", 1));
  original.OnReference(Ref(1, RefKind::kPoint, "/docs/figure one.fig", 2));
  std::stringstream buffer;
  original.SaveTo(buffer);
  const auto loaded = Correlator::LoadFrom(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_NE((*loaded)->files().FindPath("/docs/My Report.doc"), kInvalidFileId);
  EXPECT_GE((*loaded)->Distance("/docs/My Report.doc", "/docs/figure one.fig"), 0.0);
}

TEST(Persistence, RejectsGarbage) {
  {
    std::stringstream s("not a database\n");
    const auto loaded = Correlator::LoadFrom(s);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(loaded.status().message().find("header"), std::string::npos);
  }
  {
    std::stringstream s("SEERDB 99\n");
    EXPECT_FALSE(Correlator::LoadFrom(s).ok());
  }
  {
    std::stringstream s;  // empty
    EXPECT_FALSE(Correlator::LoadFrom(s).ok());
  }
}

TEST(Persistence, RejectsTruncation) {
  Correlator original;
  Populate(&original);
  std::stringstream buffer;
  original.SaveTo(buffer);
  const std::string full = buffer.str();

  // Chop the file at several points; every prefix must be rejected (except
  // none — the format ends with an explicit end marker).
  for (const double frac : {0.2, 0.5, 0.9}) {
    std::stringstream cut(full.substr(0, static_cast<size_t>(full.size() * frac)));
    const auto loaded = Correlator::LoadFrom(cut);
    EXPECT_FALSE(loaded.ok()) << frac;
    EXPECT_FALSE(loaded.status().message().empty());
  }
}

TEST(Persistence, HexFloatExactness) {
  Correlator original;
  // Distances with awkward log values.
  for (int i = 0; i < 50; ++i) {
    original.OnReference(Ref(1, RefKind::kPoint, "/a", i * 2 + 1));
    original.OnReference(Ref(1, RefKind::kPoint, "/b", i * 2 + 2));
  }
  std::stringstream buffer;
  original.SaveTo(buffer);
  const auto loaded = Correlator::LoadFrom(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->Distance("/a", "/b"), original.Distance("/a", "/b"))
      << "hex-float serialisation must be bit-exact";
}

// Builds a minimal valid database text with one relation entry whose
// log-sum field is `log_sum_text`.
std::string DbWithLogSum(const std::string& log_sum_text) {
  Correlator original;
  original.OnReference(Ref(1, RefKind::kPoint, "/a", 1));
  original.OnReference(Ref(1, RefKind::kPoint, "/b", 2));
  std::stringstream buffer;
  original.SaveTo(buffer);
  std::string text = buffer.str();
  // The neighbor lines are the only ones carrying hex floats; rewrite the
  // first one's log-sum field.
  const size_t list_pos = text.find("list ");
  EXPECT_NE(list_pos, std::string::npos);
  const size_t line_start = text.find('\n', list_pos) + 1;
  const size_t field_start = text.find(' ', line_start) + 1;
  const size_t field_end = text.find(' ', field_start);
  return text.substr(0, field_start) + log_sum_text + text.substr(field_end);
}

TEST(Persistence, RejectsNonFiniteDistances) {
  // from_chars happily parses "nan" and "inf", but no real accumulator sum
  // is either — a NaN here would poison every mean distance downstream.
  for (const char* bad : {"nan", "-nan", "inf", "-inf", "infinity"}) {
    std::stringstream in(DbWithLogSum(bad));
    const auto loaded = Correlator::LoadFrom(in);
    EXPECT_FALSE(loaded.ok()) << bad;
  }
}

TEST(Persistence, RejectsPartiallyConsumedNumbers) {
  // Locale-style decimals and trailing junk must not half-parse: the whole
  // word has to be consumed.
  for (const char* bad : {"1,5", "0x1.8p+1junk", "12abc", "0x", "--3", ""}) {
    std::stringstream in(DbWithLogSum(bad));
    EXPECT_FALSE(Correlator::LoadFrom(in).ok()) << '"' << bad << '"';
  }
}

TEST(Persistence, AcceptsPlainAndHexFloatSpellings) {
  for (const char* good : {"0x1.8p+1", "-0x1.8p+1", "3.25", "-3.25", "0"}) {
    std::stringstream in(DbWithLogSum(good));
    EXPECT_TRUE(Correlator::LoadFrom(in).ok()) << good;
  }
}

}  // namespace
}  // namespace seer
