// Tests reproducing the paper's evaluation of the four meaningless-process
// detection approaches (Section 4.1): the simple approaches fail in exactly
// the ways the paper describes, and the ratio heuristic gets both cases
// right.
#include <gtest/gtest.h>

#include "src/observer/observer.h"
#include "src/process/syscall_tracer.h"
#include "src/vfs/sim_filesystem.h"

namespace seer {
namespace {

class CountingSink : public ReferenceSink {
 public:
  void OnReference(const FileReference& ref) override {
    if (ref.kind != RefKind::kEnd) {
      ++refs;
      last_path = PathString(ref.path);
    }
  }
  void OnProcessFork(Pid, Pid) override {}
  void OnProcessExit(Pid) override {}
  void OnFileDeleted(PathId, Time) override {}
  void OnFileRenamed(PathId, PathId, Time) override {}
  void OnFileExcluded(PathId) override {}

  size_t refs = 0;
  std::string last_path;
};

class ModeHarness {
 public:
  explicit ModeHarness(MeaninglessMode mode) : tracer_(&fs_, &procs_, &clock_) {
    ObserverConfig config;
    config.meaningless_mode = mode;
    config.meaningless_min_potential = 5;
    observer_ = std::make_unique<Observer>(config, &fs_);
    observer_->set_sink(&sink_);
    tracer_.AddSink(observer_.get());

    fs_.MkdirAll("/bin");
    fs_.CreateFile("/bin/editor", 1000);
    fs_.CreateFile("/bin/find", 1000);
    fs_.MkdirAll("/home/u/proj");
    for (int i = 0; i < 20; ++i) {
      fs_.CreateFile("/home/u/proj/f" + std::to_string(i), 100);
    }
    user_ = procs_.SpawnInit(1000, "/home/u");
  }

  // An editor session: read the directory for completion (open/read/close),
  // then edit one file. Returns references emitted for the edited file.
  size_t EditorSession() {
    const Pid ed = tracer_.Fork(user_).pid;
    tracer_.Exec(ed, "/bin/editor");
    const auto d = tracer_.OpenDir(ed, "/home/u/proj");
    tracer_.ReadDir(ed, d.fd);
    tracer_.CloseDir(ed, d.fd);
    const size_t before = sink_.refs;
    const auto r = tracer_.Open(ed, "/home/u/proj/f1", false);
    tracer_.Close(ed, r.fd);
    tracer_.Exit(ed);
    return sink_.refs - before;
  }

  // A find scan: read the directory, CLOSE it, then stat every entry (the
  // order that defeated approach #3). Returns stat references emitted.
  size_t FindScan() {
    const Pid find = tracer_.Fork(user_).pid;
    tracer_.Exec(find, "/bin/find");
    const auto d = tracer_.OpenDir(find, "/home/u/proj");
    tracer_.ReadDir(find, d.fd);
    tracer_.CloseDir(find, d.fd);
    const size_t before = sink_.refs;
    for (int i = 0; i < 20; ++i) {
      tracer_.Stat(find, "/home/u/proj/f" + std::to_string(i));
    }
    // Flush the last pending stat by exiting.
    tracer_.Exit(find);
    return sink_.refs - before;
  }

  SimFilesystem fs_;
  ProcessTable procs_;
  SimClock clock_;
  SyscallTracer tracer_;
  CountingSink sink_;
  std::unique_ptr<Observer> observer_;
  Pid user_ = 0;
};

// Approach 2 wrongly silences the editor (the paper: "many meaningful
// programs read directories ... filename completion").
TEST(MeaninglessModes, AnyDirectoryReadSilencesEditors) {
  ModeHarness h(MeaninglessMode::kAnyDirectoryRead);
  EXPECT_EQ(h.EditorSession(), 0u) << "approach #2 filters the editor's real work";
}

// ...while the ratio heuristic keeps the editor meaningful.
TEST(MeaninglessModes, RatioKeepsEditors) {
  ModeHarness h(MeaninglessMode::kRatioHeuristic);
  EXPECT_GT(h.EditorSession(), 0u);
}

// Approach 3 fails to catch find, because find closes the directory before
// visiting the entries (the paper: "this assumption turned out to be
// false").
TEST(MeaninglessModes, WhileDirectoryOpenMissesFind) {
  ModeHarness h(MeaninglessMode::kWhileDirectoryOpen);
  EXPECT_GT(h.FindScan(), 10u) << "approach #3 lets the scan pollute the correlator";
}

// The ratio heuristic shuts find down (mostly mid-run on first execution,
// completely on the second).
TEST(MeaninglessModes, RatioCatchesFind) {
  ModeHarness h(MeaninglessMode::kRatioHeuristic);
  h.FindScan();  // first run: learning
  EXPECT_TRUE(h.observer_->IsMeaninglessProgram("/bin/find"));
  EXPECT_EQ(h.FindScan(), 0u) << "second run must be fully filtered";
}

// ...but approach 3 does suppress references made WHILE a directory is
// actually open.
TEST(MeaninglessModes, WhileDirectoryOpenSuppressesDuringOpen) {
  ModeHarness h(MeaninglessMode::kWhileDirectoryOpen);
  const Pid p = h.tracer_.Fork(h.user_).pid;
  h.tracer_.Exec(p, "/bin/editor");
  const auto d = h.tracer_.OpenDir(p, "/home/u/proj");
  const size_t before = h.sink_.refs;
  const auto r = h.tracer_.Open(p, "/home/u/proj/f1", false);  // dir still open
  h.tracer_.Close(p, r.fd);
  EXPECT_EQ(h.sink_.refs, before);
  h.tracer_.CloseDir(p, d.fd);
  const auto r2 = h.tracer_.Open(p, "/home/u/proj/f2", false);  // dir closed
  h.tracer_.Close(p, r2.fd);
  EXPECT_GT(h.sink_.refs, before);
}

// Approach 1 (control list only) passes both editor and find — unless the
// administrator lists find by hand.
TEST(MeaninglessModes, ControlListOnlyNeedsHandListing) {
  ModeHarness unlisted(MeaninglessMode::kControlListOnly);
  EXPECT_GT(unlisted.FindScan(), 10u);

  ObserverConfig config;
  config.meaningless_mode = MeaninglessMode::kControlListOnly;
  config.meaningless_programs.insert("/bin/find");
  // Fresh harness with the hand-listed config.
  SimFilesystem fs;
  ProcessTable procs;
  SimClock clock;
  SyscallTracer tracer(&fs, &procs, &clock);
  Observer observer(config, &fs);
  CountingSink sink;
  observer.set_sink(&sink);
  tracer.AddSink(&observer);
  fs.MkdirAll("/bin");
  fs.CreateFile("/bin/find", 1000);
  fs.MkdirAll("/home/u/proj");
  fs.CreateFile("/home/u/proj/f1", 100);
  const Pid user = procs.SpawnInit(1000, "/home/u");
  const Pid find = tracer.Fork(user).pid;
  tracer.Exec(find, "/bin/find");
  const size_t before = sink.refs;
  tracer.Stat(find, "/home/u/proj/f1");
  tracer.Exit(find);
  EXPECT_EQ(sink.refs - before, 0u);
}

// PretrainProgramHistory makes the very first traced run of a scanner
// silent under the ratio heuristic.
TEST(MeaninglessModes, PretrainedHistorySilencesFirstRun) {
  ModeHarness h(MeaninglessMode::kRatioHeuristic);
  h.observer_->PretrainProgramHistory("/bin/find", 10'000, 9'000);
  EXPECT_EQ(h.FindScan(), 0u);
}

}  // namespace
}  // namespace seer
