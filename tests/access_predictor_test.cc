// Tests for the generalised access predictor (Section 7 future work).
#include "src/core/access_predictor.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace seer {
namespace {

TEST(AccessPredictor, LearnsCoAccessPatterns) {
  AccessPredictor predictor;
  for (int i = 0; i < 5; ++i) {
    predictor.OnAccess("page");
    predictor.OnAccess("style.css");
    predictor.OnAccess("logo.png");
  }
  const auto related = predictor.PredictRelated("page");
  ASSERT_GE(related.size(), 2u);
  EXPECT_TRUE(std::find(related.begin(), related.end(), "style.css") != related.end());
  EXPECT_TRUE(std::find(related.begin(), related.end(), "logo.png") != related.end());
}

TEST(AccessPredictor, ClosestFirst) {
  AccessPredictor predictor;
  for (int i = 0; i < 5; ++i) {
    predictor.OnAccess("a");
    predictor.OnAccess("immediately-after");  // distance 1 from a
    predictor.OnAccess("x");
    predictor.OnAccess("y");
    predictor.OnAccess("later");  // distance 4 from a
  }
  const auto related = predictor.PredictRelated("a");
  ASSERT_GE(related.size(), 2u);
  EXPECT_EQ(related[0], "immediately-after");
}

TEST(AccessPredictor, UnknownKeyPredictsNothing) {
  AccessPredictor predictor;
  predictor.OnAccess("a");
  EXPECT_TRUE(predictor.PredictRelated("never-seen").empty());
  EXPECT_TRUE(predictor.PrefetchSet("never-seen").empty());
}

TEST(AccessPredictor, StreamsAreIndependent) {
  AccessPredictor predictor;
  for (int i = 0; i < 5; ++i) {
    predictor.OnAccess("tab1-page", /*stream=*/1);
    predictor.OnAccess("tab2-page", /*stream=*/2);
  }
  const auto related = predictor.PredictRelated("tab1-page");
  EXPECT_TRUE(std::find(related.begin(), related.end(), "tab2-page") == related.end())
      << "interleaved independent streams must not relate";
}

TEST(AccessPredictor, PrefetchSetCoversCluster) {
  // A 13-key working group: each key's neighbor list holds the other 12,
  // so every pair shares well over kn neighbors and clusters as one unit.
  AccessPredictor predictor;
  for (int i = 0; i < 8; ++i) {
    for (int k = 0; k < 13; ++k) {
      predictor.OnAccess("g" + std::to_string(k));
    }
  }
  const auto set = predictor.PrefetchSet("g0");
  EXPECT_GE(set.size(), 10u);
  EXPECT_TRUE(std::find(set.begin(), set.end(), "g0") == set.end())
      << "the key itself is excluded from its prefetch set";
  EXPECT_TRUE(std::find(set.begin(), set.end(), "g7") != set.end());
}

TEST(AccessPredictor, RespectsLimit) {
  AccessPredictor predictor;
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 12; ++k) {
      predictor.OnAccess("k" + std::to_string(k));
    }
  }
  EXPECT_LE(predictor.PredictRelated("k0", 3).size(), 3u);
  EXPECT_LE(predictor.PrefetchSet("k0", 5).size(), 5u);
}

}  // namespace
}  // namespace seer
