// Tests for the simulated filesystem substrate.
#include "src/vfs/sim_filesystem.h"

#include <gtest/gtest.h>

namespace seer {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(fs_.MkdirAll("/home/u/proj"), VfsStatus::kOk);
    ASSERT_EQ(fs_.CreateFile("/home/u/proj/a.c", 100), VfsStatus::kOk);
  }
  SimFilesystem fs_;
};

TEST_F(VfsTest, RootAlwaysExists) {
  SimFilesystem fresh;
  EXPECT_TRUE(fresh.Exists("/"));
  EXPECT_EQ(fresh.Stat("/")->kind, NodeKind::kDirectory);
}

TEST_F(VfsTest, CreateRequiresParent) {
  EXPECT_EQ(fs_.CreateFile("/no/such/dir/f", 1), VfsStatus::kNoEnt);
}

TEST_F(VfsTest, CreateRejectsDuplicate) {
  EXPECT_EQ(fs_.CreateFile("/home/u/proj/a.c", 1), VfsStatus::kExists);
}

TEST_F(VfsTest, CreateUnderFileIsNotDir) {
  EXPECT_EQ(fs_.CreateFile("/home/u/proj/a.c/x", 1), VfsStatus::kNotDir);
}

TEST_F(VfsTest, MkdirAllIdempotent) {
  EXPECT_EQ(fs_.MkdirAll("/home/u/proj"), VfsStatus::kOk);
  EXPECT_EQ(fs_.MkdirAll("/home/u/proj/deep/deeper"), VfsStatus::kOk);
  EXPECT_TRUE(fs_.Exists("/home/u/proj/deep/deeper"));
}

TEST_F(VfsTest, StatReportsSizeAndKind) {
  const auto info = fs_.Stat("/home/u/proj/a.c");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->kind, NodeKind::kRegular);
  EXPECT_EQ(info->size, 100u);
  EXPECT_FALSE(fs_.Stat("/nope").has_value());
}

TEST_F(VfsTest, DirectorySizeScalesWithEntries) {
  const uint64_t before = fs_.Stat("/home/u/proj")->size;
  fs_.CreateFile("/home/u/proj/b.c", 1);
  fs_.CreateFile("/home/u/proj/c.c", 1);
  EXPECT_GT(fs_.Stat("/home/u/proj")->size, before);
}

TEST_F(VfsTest, RemoveFileAndRmdir) {
  EXPECT_EQ(fs_.Remove("/home/u/proj/a.c"), VfsStatus::kOk);
  EXPECT_FALSE(fs_.Exists("/home/u/proj/a.c"));
  EXPECT_EQ(fs_.Remove("/home/u/proj/a.c"), VfsStatus::kNoEnt);
  EXPECT_EQ(fs_.Rmdir("/home/u/proj"), VfsStatus::kOk);
  EXPECT_EQ(fs_.Rmdir("/home"), VfsStatus::kNotEmpty);  // /home/u still inside
}

TEST_F(VfsTest, RmdirRefusesNonEmpty) {
  EXPECT_EQ(fs_.Rmdir("/home/u/proj"), VfsStatus::kNotEmpty);
  EXPECT_EQ(fs_.Remove("/home/u/proj"), VfsStatus::kIsDir);
}

TEST_F(VfsTest, RenameFile) {
  EXPECT_EQ(fs_.Rename("/home/u/proj/a.c", "/home/u/proj/b.c"), VfsStatus::kOk);
  EXPECT_FALSE(fs_.Exists("/home/u/proj/a.c"));
  EXPECT_EQ(fs_.Stat("/home/u/proj/b.c")->size, 100u);
}

TEST_F(VfsTest, RenameOverExistingReplaces) {
  fs_.CreateFile("/home/u/proj/b.c", 5);
  EXPECT_EQ(fs_.Rename("/home/u/proj/a.c", "/home/u/proj/b.c"), VfsStatus::kOk);
  EXPECT_EQ(fs_.Stat("/home/u/proj/b.c")->size, 100u);
}

TEST_F(VfsTest, RenameDirectoryMovesSubtree) {
  fs_.MkdirAll("/home/u/proj/sub");
  fs_.CreateFile("/home/u/proj/sub/x", 7);
  fs_.WriteContent("/home/u/proj/sub/x", "hello");
  EXPECT_EQ(fs_.Rename("/home/u/proj", "/home/u/newproj"), VfsStatus::kOk);
  EXPECT_TRUE(fs_.Exists("/home/u/newproj/a.c"));
  EXPECT_TRUE(fs_.Exists("/home/u/newproj/sub/x"));
  EXPECT_FALSE(fs_.Exists("/home/u/proj"));
  EXPECT_EQ(fs_.ReadContent("/home/u/newproj/sub/x").value_or(""), "hello");
}

TEST_F(VfsTest, RenameIntoOwnSubtreeRejected) {
  fs_.MkdirAll("/home/u/proj/sub");
  EXPECT_NE(fs_.Rename("/home/u/proj", "/home/u/proj/sub/inner"), VfsStatus::kOk);
}

TEST_F(VfsTest, SymlinkResolution) {
  fs_.CreateSymlink("/home/u/link", "proj/a.c");
  const auto resolved = fs_.Resolve("/home/u/link");
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, "/home/u/proj/a.c");
}

TEST_F(VfsTest, SymlinkChainAndLoop) {
  fs_.CreateSymlink("/home/u/l1", "l2");
  fs_.CreateSymlink("/home/u/l2", "proj/a.c");
  EXPECT_EQ(fs_.Resolve("/home/u/l1").value_or(""), "/home/u/proj/a.c");

  fs_.CreateSymlink("/home/u/loop1", "loop2");
  fs_.CreateSymlink("/home/u/loop2", "loop1");
  EXPECT_FALSE(fs_.Resolve("/home/u/loop1").has_value());
}

TEST_F(VfsTest, ListDirAndEntryCount) {
  fs_.CreateFile("/home/u/proj/b.c", 1);
  fs_.MkdirAll("/home/u/proj/sub");
  fs_.CreateFile("/home/u/proj/sub/deep.c", 1);
  const auto entries = fs_.ListDir("/home/u/proj");
  EXPECT_EQ(entries.size(), 3u);  // a.c, b.c, sub — not deep.c
  EXPECT_EQ(fs_.DirEntryCount("/home/u/proj"), 3u);
  EXPECT_TRUE(fs_.ListDir("/home/u/proj/a.c").empty());
}

TEST_F(VfsTest, ListRootDir) {
  const auto entries = fs_.ListDir("/");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0], "home");
}

TEST_F(VfsTest, AllRegularFilesAndTotals) {
  fs_.CreateFile("/home/u/proj/b.c", 50);
  fs_.CreateSpecial("/home/u/proj/dev", NodeKind::kDevice);
  const auto files = fs_.AllRegularFiles();
  EXPECT_EQ(files.size(), 2u);
  EXPECT_EQ(fs_.TotalRegularBytes(), 150u);
}

TEST_F(VfsTest, ContentRoundTripUpdatesSize) {
  EXPECT_EQ(fs_.WriteContent("/home/u/proj/a.c", "#include \"x.h\"\n"), VfsStatus::kOk);
  EXPECT_EQ(fs_.Stat("/home/u/proj/a.c")->size, 15u);
  EXPECT_EQ(fs_.ReadContent("/home/u/proj/a.c").value_or(""), "#include \"x.h\"\n");
  EXPECT_FALSE(fs_.ReadContent("/nope").has_value());
}

TEST_F(VfsTest, RemoveDropsContent) {
  fs_.WriteContent("/home/u/proj/a.c", "data");
  fs_.Remove("/home/u/proj/a.c");
  fs_.CreateFile("/home/u/proj/a.c", 1);
  EXPECT_FALSE(fs_.ReadContent("/home/u/proj/a.c").has_value());
}

TEST_F(VfsTest, RenameMovesContent) {
  fs_.WriteContent("/home/u/proj/a.c", "data");
  fs_.Rename("/home/u/proj/a.c", "/home/u/proj/b.c");
  EXPECT_EQ(fs_.ReadContent("/home/u/proj/b.c").value_or(""), "data");
  EXPECT_FALSE(fs_.ReadContent("/home/u/proj/a.c").has_value());
}

TEST_F(VfsTest, TruncateAndTouch) {
  EXPECT_EQ(fs_.Truncate("/home/u/proj/a.c", 5'000, 99), VfsStatus::kOk);
  EXPECT_EQ(fs_.Stat("/home/u/proj/a.c")->size, 5'000u);
  EXPECT_EQ(fs_.Touch("/home/u/proj/a.c", 123), VfsStatus::kOk);
  EXPECT_EQ(fs_.Stat("/home/u/proj/a.c")->mtime, 123);
  EXPECT_EQ(fs_.Truncate("/nope", 1, 0), VfsStatus::kNoEnt);
}

TEST_F(VfsTest, SpecialNodeKinds) {
  fs_.MkdirAll("/dev");
  fs_.CreateSpecial("/dev/null", NodeKind::kDevice);
  fs_.CreateSpecial("/dev/proc0", NodeKind::kPseudo);
  EXPECT_EQ(fs_.Stat("/dev/null")->kind, NodeKind::kDevice);
  EXPECT_EQ(fs_.Stat("/dev/proc0")->kind, NodeKind::kPseudo);
}

}  // namespace
}  // namespace seer
