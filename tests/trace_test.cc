// Tests for the trace event model and on-disk format.
#include <sstream>

#include <gtest/gtest.h>

#include "src/trace/event.h"
#include "src/trace/trace_io.h"
#include "src/util/rng.h"

namespace seer {
namespace {

TraceEvent SampleEvent() {
  TraceEvent e;
  e.seq = 42;
  e.time = 1'000'000;
  e.pid = 7;
  e.uid = 1000;
  e.op = Op::kOpen;
  e.status = OpStatus::kOk;
  e.path = "/home/u/a.c";
  e.fd = 5;
  e.write = true;
  e.detail = 0;
  return e;
}

TEST(Event, OpNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(Op::kChdir); ++i) {
    const Op op = static_cast<Op>(i);
    Op parsed;
    ASSERT_TRUE(ParseOp(OpName(op), &parsed)) << OpName(op);
    EXPECT_EQ(parsed, op);
  }
  Op unused;
  EXPECT_FALSE(ParseOp("bogus", &unused));
}

TEST(Event, StatusNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(OpStatus::kNotLocal); ++i) {
    const OpStatus st = static_cast<OpStatus>(i);
    OpStatus parsed;
    ASSERT_TRUE(ParseOpStatus(OpStatusName(st), &parsed));
    EXPECT_EQ(parsed, st);
  }
}

TEST(Event, PointReferenceClassification) {
  EXPECT_TRUE(IsPointReference(Op::kStat));
  EXPECT_TRUE(IsPointReference(Op::kRename));
  EXPECT_FALSE(IsPointReference(Op::kOpen));
  EXPECT_FALSE(IsPointReference(Op::kClose));
}

TEST(TraceIo, EscapeRoundTrip) {
  const std::string nasty = "/home/u/my file %20\twith\nnoise";
  EXPECT_EQ(UnescapePath(EscapePath(nasty)), nasty);
  EXPECT_EQ(EscapePath(nasty).find(' '), std::string::npos);
  EXPECT_EQ(EscapePath(nasty).find('\n'), std::string::npos);
}

TEST(TraceIo, FormatParseRoundTrip) {
  const TraceEvent e = SampleEvent();
  const auto parsed = ParseEventLine(FormatEvent(e));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, e.seq);
  EXPECT_EQ(parsed->time, e.time);
  EXPECT_EQ(parsed->pid, e.pid);
  EXPECT_EQ(parsed->uid, e.uid);
  EXPECT_EQ(parsed->op, e.op);
  EXPECT_EQ(parsed->status, e.status);
  EXPECT_EQ(parsed->path, e.path);
  EXPECT_EQ(parsed->path2, e.path2);
  EXPECT_EQ(parsed->fd, e.fd);
  EXPECT_EQ(parsed->write, e.write);
}

TEST(TraceIo, MalformedLinesRejected) {
  EXPECT_FALSE(ParseEventLine("").has_value());
  EXPECT_FALSE(ParseEventLine("1 2 3").has_value());
  EXPECT_FALSE(ParseEventLine("x 0 7 1000 open ok /a - -1 0 0").has_value());
  EXPECT_FALSE(ParseEventLine("1 0 7 1000 bogus ok /a - -1 0 0").has_value());
}

TEST(TraceIo, ReaderSkipsCommentsAndBlanks) {
  std::stringstream s;
  s << "# a trace\n\n" << FormatEvent(SampleEvent()) << "\ngarbage line here bla bla\n";
  TraceReader reader(s);
  const auto e = reader.Next();
  ASSERT_TRUE(e.ok()) << e.status();
  ASSERT_TRUE(e->has_value());
  EXPECT_EQ((*e)->path, "/home/u/a.c");
  // The garbage line surfaces as a typed parse error; the reader then
  // continues to a clean end of stream.
  const auto bad = reader.Next();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reader.malformed_lines(), 1u);
  const auto end = reader.Next();
  ASSERT_TRUE(end.ok()) << end.status();
  EXPECT_FALSE(end->has_value());
}

TEST(TraceIo, WriteReadAllEvents) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 50; ++i) {
    TraceEvent e = SampleEvent();
    e.seq = static_cast<uint64_t>(i);
    e.path = "/f/" + std::to_string(i);
    events.push_back(e);
  }
  std::stringstream s;
  WriteAllEvents(s, events);
  const auto back = ReadAllEvents(s);
  ASSERT_EQ(back.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].path, events[i].path);
    EXPECT_EQ(back[i].seq, events[i].seq);
  }
}

// Property-style fuzz: random events round-trip through the text format.
class TraceIoFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(TraceIoFuzzTest, RandomEventRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  for (int i = 0; i < 200; ++i) {
    TraceEvent e;
    e.seq = rng.Next();
    e.time = static_cast<Time>(rng.NextBounded(1'000'000'000));
    e.pid = static_cast<Pid>(rng.NextBounded(30'000));
    e.uid = static_cast<Uid>(rng.NextBounded(3));
    e.op = static_cast<Op>(rng.NextBounded(17));
    e.status = static_cast<OpStatus>(rng.NextBounded(4));
    e.fd = static_cast<Fd>(rng.NextInRange(-1, 100));
    e.write = rng.NextBool(0.5);
    e.detail = static_cast<int32_t>(rng.NextBounded(1000));
    std::string path = "/";
    const int len = static_cast<int>(rng.NextBounded(30));
    for (int c = 0; c < len; ++c) {
      path += static_cast<char>(rng.NextBounded(96) + 32);  // printable + space
    }
    e.path = path;
    if (rng.NextBool(0.3)) {
      e.path2 = path + "2";
    }
    const auto parsed = ParseEventLine(FormatEvent(e));
    ASSERT_TRUE(parsed.has_value()) << FormatEvent(e);
    EXPECT_EQ(parsed->path, e.path);
    EXPECT_EQ(parsed->path2, e.path2);
    EXPECT_EQ(parsed->op, e.op);
    EXPECT_EQ(parsed->seq, e.seq);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIoFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace seer
