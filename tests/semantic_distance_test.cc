// Tests for per-process reference streams and the three semantic-distance
// definitions of Section 3.1.1, including the paper's worked example
// (Figure 1).
#include "src/core/reference_streams.h"

#include <map>

#include <gtest/gtest.h>

namespace seer {
namespace {

constexpr Pid kPid = 42;

class StreamHarness {
 public:
  explicit StreamHarness(SeerParams params = {}) : streams_(params) {}

  // Interns a single-letter file name.
  FileId Id(char name) {
    const auto it = ids_.find(name);
    if (it != ids_.end()) {
      return it->second;
    }
    const FileId id = files_.Intern(GlobalPaths().Intern(std::string("/f/") + name));
    ids_.emplace(name, id);
    return id;
  }

  std::map<char, double> Open(char name, Pid pid = kPid) {
    std::vector<DistanceObservation> obs;
    streams_.OnBegin(pid, Id(name), NextTime(), &obs);
    return Collect(obs);
  }

  std::map<char, double> Point(char name, Pid pid = kPid) {
    std::vector<DistanceObservation> obs;
    streams_.OnPoint(pid, Id(name), NextTime(), &obs);
    return Collect(obs);
  }

  void Close(char name, Pid pid = kPid) { streams_.OnEnd(pid, Id(name)); }

  ReferenceStreams& streams() { return streams_; }

 private:
  std::map<char, double> Collect(const std::vector<DistanceObservation>& obs) {
    std::map<char, double> out;
    for (const auto& o : obs) {
      for (const auto& [name, id] : ids_) {
        if (id == o.from) {
          out[name] = o.distance;
        }
      }
    }
    return out;
  }

  Time NextTime() { return time_ += kMicrosPerSecond; }

  FileTable files_;
  ReferenceStreams streams_;
  std::map<char, FileId> ids_;
  Time time_ = 0;
};

// The paper's Figure 1 sequence: {Ao, Bo, Bc, Co, Cc, Ac, Do, Dc}.
// Expected lifetime distances: A->B = 0, A->C = 0, A->D = 3,
// B->C = 1, B->D = 2, C->D = 1.
TEST(LifetimeDistance, PaperFigure1Example) {
  StreamHarness h;
  EXPECT_TRUE(h.Open('A').empty());

  const auto at_b = h.Open('B');
  EXPECT_DOUBLE_EQ(at_b.at('A'), 0.0);  // A still open
  h.Close('B');

  const auto at_c = h.Open('C');
  EXPECT_DOUBLE_EQ(at_c.at('A'), 0.0);  // A still open
  EXPECT_DOUBLE_EQ(at_c.at('B'), 1.0);
  h.Close('C');
  h.Close('A');

  const auto at_d = h.Open('D');
  EXPECT_DOUBLE_EQ(at_d.at('A'), 3.0);  // A closed before D opened
  EXPECT_DOUBLE_EQ(at_d.at('B'), 2.0);
  EXPECT_DOUBLE_EQ(at_d.at('C'), 1.0);
  h.Close('D');
}

// Footnote 1: in {A, C, C, C, B} the strict sequence distance A->B is 3 —
// repeated references are counted, capturing intensive work on one file.
TEST(SequenceDistance, StrictRepeatCounting) {
  SeerParams params;
  params.distance_kind = DistanceKind::kSequence;
  StreamHarness h(params);
  h.Point('A');
  h.Point('C');
  h.Point('C');
  h.Point('C');
  const auto at_b = h.Point('B');
  EXPECT_DOUBLE_EQ(at_b.at('A'), 3.0);
  // The closest pair rule: distance from C uses C's most recent reference.
  EXPECT_DOUBLE_EQ(at_b.at('C'), 0.0);
}

TEST(SequenceDistance, ClosestPairRule) {
  SeerParams params;
  params.distance_kind = DistanceKind::kSequence;
  StreamHarness h(params);
  h.Point('A');
  h.Point('B');
  h.Point('A');  // A again: the later reference is the relevant one
  const auto at_c = h.Point('C');
  EXPECT_DOUBLE_EQ(at_c.at('A'), 0.0);
  EXPECT_DOUBLE_EQ(at_c.at('B'), 1.0);
}

TEST(TemporalDistance, ElapsedClockTime) {
  SeerParams params;
  params.distance_kind = DistanceKind::kTemporal;
  StreamHarness h(params);
  h.Point('A');  // t = 1s
  h.Point('B');  // t = 2s
  const auto at_c = h.Point('C');  // t = 3s
  EXPECT_DOUBLE_EQ(at_c.at('A'), 2.0);
  EXPECT_DOUBLE_EQ(at_c.at('B'), 1.0);
}

TEST(TemporalDistance, CappedAtHorizon) {
  SeerParams params;
  params.distance_kind = DistanceKind::kTemporal;
  params.temporal_horizon_seconds = 1.5;
  StreamHarness h(params);
  h.Point('A');
  h.Point('B');
  const auto at_c = h.Point('C');
  EXPECT_DOUBLE_EQ(at_c.at('A'), 1.5);  // 2s clamped to the horizon
}

// The compilation motif: the source file stays open while headers cycle, so
// every header is at distance 0 from the source regardless of position.
TEST(LifetimeDistance, HeldOpenFileIsDistanceZeroToAll) {
  StreamHarness h;
  h.Open('S');
  for (char header : {'1', '2', '3', '4', '5', '6', '7', '8', '9'}) {
    const auto obs = h.Open(header);
    EXPECT_DOUBLE_EQ(obs.at('S'), 0.0) << "header " << header;
    h.Close(header);
  }
  h.Close('S');
}

TEST(LifetimeDistance, DistancesCappedAtHorizonM) {
  SeerParams params;
  params.distance_horizon = 10;
  StreamHarness h(params);
  h.Point('A');
  for (int i = 0; i < 9; ++i) {
    h.Point('x');  // same filler file keeps A inside the window
    h.Point('y');
  }
  // A's last open is beyond 10 opens ago now; it must have been pruned.
  const auto obs = h.Point('B');
  EXPECT_EQ(obs.count('A'), 0u);
}

// Compensation (Section 3.1.3): a file held open past the horizon reports
// exactly M when it finally participates again.
TEST(LifetimeDistance, CompensationInsertsM) {
  SeerParams params;
  params.distance_horizon = 10;
  StreamHarness h(params);
  h.Open('A');
  for (int i = 0; i < 15; ++i) {
    h.Point('x');
    h.Point('y');
    h.Point('z');
  }
  h.Close('A');  // open was 45 references ago: true distance > M
  const auto obs = h.Point('B');
  ASSERT_EQ(obs.count('A'), 1u);
  EXPECT_DOUBLE_EQ(obs.at('A'), 10.0);
}

// Section 4.7: separate streams per process; no cross-process distances.
TEST(ReferenceStreams, PerProcessSeparation) {
  StreamHarness h;
  h.Point('A', 1);
  const auto obs = h.Point('B', 2);
  EXPECT_TRUE(obs.empty());
}

TEST(ReferenceStreams, GlobalStreamWhenDisabled) {
  SeerParams params;
  params.per_process_streams = false;
  StreamHarness h(params);
  h.Point('A', 1);
  const auto obs = h.Point('B', 2);
  ASSERT_EQ(obs.count('A'), 1u);
  EXPECT_DOUBLE_EQ(obs.at('A'), 1.0);
}

// Fork: the child inherits the parent's history.
TEST(ReferenceStreams, ForkInheritsHistory) {
  StreamHarness h;
  h.Point('A', 1);
  h.streams().OnFork(1, 2);
  const auto obs = h.Point('B', 2);
  ASSERT_EQ(obs.count('A'), 1u);
  EXPECT_DOUBLE_EQ(obs.at('A'), 1.0);
}

// A file held open by the parent is not "open" in the child.
TEST(ReferenceStreams, ForkDoesNotInheritOpenState) {
  StreamHarness h;
  h.Open('A', 1);
  h.streams().OnFork(1, 2);
  const auto obs = h.Point('B', 2);
  ASSERT_EQ(obs.count('A'), 1u);
  EXPECT_GT(obs.at('A'), 0.0);  // would be 0 if still considered open
}

// Exit: the child's recent files become visible to the parent's future
// references (merge, Section 4.7).
TEST(ReferenceStreams, ExitMergesChildHistoryIntoParent) {
  StreamHarness h;
  h.Point('P', 1);                 // parent activity so the stream exists
  h.streams().OnFork(1, 2);
  h.Point('C', 2);                 // child references C
  h.streams().OnExit(2);
  const auto obs = h.Point('B', 1);
  EXPECT_EQ(obs.count('C'), 1u) << "child history should merge into parent";
}

TEST(ReferenceStreams, ExitWithoutParentIsSafe) {
  StreamHarness h;
  h.Point('A', 7);
  h.streams().OnExit(7);   // parent 0 does not exist
  h.streams().OnExit(99);  // never seen at all
  SUCCEED();
}

TEST(ReferenceStreams, CloseWithoutOpenIgnored) {
  StreamHarness h;
  h.Close('Z');
  const auto obs = h.Point('A');
  EXPECT_TRUE(obs.empty());
}

// Nested opens: the file stays at distance 0 until the last close.
TEST(LifetimeDistance, NestedOpensStayOpen) {
  StreamHarness h;
  h.Open('A');
  h.Open('A');
  h.Close('A');  // still open once
  const auto obs = h.Point('B');
  EXPECT_DOUBLE_EQ(obs.at('A'), 0.0);
  h.Close('A');
  const auto obs2 = h.Point('C');
  EXPECT_GT(obs2.at('A'), 0.0);
}

}  // namespace
}  // namespace seer
