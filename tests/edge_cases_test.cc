// Edge-case coverage across modules: boundary parameters, unusual call
// sequences, and corner semantics not exercised by the main suites.
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/correlator.h"
#include "src/core/hoard.h"
#include "src/core/reference_streams.h"
#include "src/observer/observer.h"
#include "src/process/syscall_tracer.h"
#include "src/sim/disconnect_model.h"
#include "src/util/stats.h"
#include "src/vfs/sim_filesystem.h"

namespace seer {
namespace {

PathId P(std::string_view path) { return GlobalPaths().Intern(path); }

FileReference Ref(Pid pid, RefKind kind, const std::string& path, Time time) {
  FileReference r;
  r.pid = pid;
  r.kind = kind;
  r.path = P(path);
  r.time = time;
  return r;
}

// --- reference streams at boundary parameters -----------------------------------

TEST(EdgeCases, HorizonOfOne) {
  SeerParams params;
  params.distance_horizon = 1;
  FileTable files;
  ReferenceStreams streams(params);
  const FileId a = files.Intern(P("/a"));
  const FileId b = files.Intern(P("/b"));
  const FileId c = files.Intern(P("/c"));
  std::vector<DistanceObservation> scratch;
  streams.OnPoint(1, a, 1, &scratch);
  std::vector<DistanceObservation> at_b;
  streams.OnPoint(1, b, 2, &at_b);  // a is exactly 1 open back
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_DOUBLE_EQ(at_b[0].distance, 1.0);
  std::vector<DistanceObservation> at_c;
  streams.OnPoint(1, c, 3, &at_c);  // a now out of the window
  ASSERT_EQ(at_c.size(), 1u);
  EXPECT_EQ(at_c[0].from, b);
}

TEST(EdgeCases, NeighborListOfOne) {
  SeerParams params;
  params.max_neighbors = 1;
  FileTable files;
  RelationTable table(params, &files);
  const FileId a = files.Intern(P("/a"));
  const FileId close = files.Intern(P("/close"));
  const FileId far = files.Intern(P("/far"));
  table.Observe(a, far, 50.0);
  table.Observe(a, close, 1.0);  // closer candidate displaces the only slot
  EXPECT_LT(table.DistanceOrNegative(a, far), 0.0);
  EXPECT_GT(table.DistanceOrNegative(a, close), 0.0);
  EXPECT_EQ(table.NeighborsOf(a).size(), 1u);
}

TEST(EdgeCases, RepeatedOpenOnlyCountsClosestPair) {
  // Footnote 1: {A, A, ..., B} uses the closest pair.
  SeerParams params;
  FileTable files;
  ReferenceStreams streams(params);
  const FileId a = files.Intern(P("/a"));
  const FileId b = files.Intern(P("/b"));
  std::vector<DistanceObservation> scratch;
  for (int i = 0; i < 5; ++i) {
    streams.OnPoint(1, a, i + 1, &scratch);
    scratch.clear();
  }
  std::vector<DistanceObservation> obs;
  streams.OnPoint(1, b, 10, &obs);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_DOUBLE_EQ(obs[0].distance, 1.0);  // from the LAST open of a
}

// --- correlator rename chains -----------------------------------------------------

TEST(EdgeCases, RenameChainPreservesIdentity) {
  Correlator correlator;
  for (int i = 0; i < 4; ++i) {
    correlator.OnReference(Ref(1, RefKind::kPoint, "/p/v1", i * 2 + 1));
    correlator.OnReference(Ref(1, RefKind::kPoint, "/p/partner", i * 2 + 2));
  }
  correlator.OnFileRenamed(P("/p/v1"), P("/p/v2"), 100);
  correlator.OnFileRenamed(P("/p/v2"), P("/p/v3"), 101);
  correlator.OnFileRenamed(P("/p/v3"), P("/p/v1"), 102);  // full circle
  EXPECT_GE(correlator.Distance("/p/v1", "/p/partner"), 0.0);
  EXPECT_EQ(correlator.files().FindPath("/p/v2"), kInvalidFileId);
  EXPECT_EQ(correlator.files().FindPath("/p/v3"), kInvalidFileId);
}

TEST(EdgeCases, RenameOntoTrackedFileRetiresTarget) {
  Correlator correlator;
  correlator.OnReference(Ref(1, RefKind::kPoint, "/p/old", 1));
  correlator.OnReference(Ref(1, RefKind::kPoint, "/p/target", 2));
  correlator.OnFileRenamed(P("/p/old"), P("/p/target"), 3);
  const FileId id = correlator.files().FindPath("/p/target");
  ASSERT_NE(id, kInvalidFileId);
  // Exactly one live record answers for /p/target.
  size_t live_with_name = 0;
  for (const FileId candidate : correlator.files().LiveIds()) {
    if (correlator.files().Get(candidate).path == GlobalPaths().Find("/p/target")) {
      ++live_with_name;
    }
  }
  EXPECT_EQ(live_with_name, 1u);
}

// --- observer getcwd bookkeeping ---------------------------------------------------

TEST(EdgeCases, GetcwdDoesNotPoisonPotentialCounters) {
  SimFilesystem fs;
  fs.MkdirAll("/home/u/a/b/c");
  for (int i = 0; i < 50; ++i) {
    fs.CreateFile("/home/u/f" + std::to_string(i), 10);
  }
  fs.MkdirAll("/bin");
  fs.CreateFile("/bin/editor", 100);
  ProcessTable procs;
  SimClock clock;
  SyscallTracer tracer(&fs, &procs, &clock);
  ObserverConfig config;
  config.meaningless_min_potential = 10;
  Observer observer(config, &fs);
  tracer.AddSink(&observer);

  const Pid user = procs.SpawnInit(1000, "/home/u/a/b/c");
  const Pid ed = tracer.Fork(user).pid;
  tracer.Exec(ed, "/bin/editor");
  // getcwd climb from the deep cwd to root: /home/u has 50+ entries; if
  // these readdir results counted as "potential", the editor would look
  // like find.
  for (const char* dir : {"/home/u/a/b/c", "/home/u/a/b", "/home/u/a", "/home/u", "/home", "/"}) {
    const auto d = tracer.OpenDir(ed, dir);
    if (d.ok()) {
      tracer.ReadDir(ed, d.fd);
      tracer.CloseDir(ed, d.fd);
    }
  }
  const auto r = tracer.Open(ed, "/home/u/f0", false);
  if (r.ok()) {
    tracer.Close(ed, r.fd);
  }
  tracer.Exit(ed);
  EXPECT_FALSE(observer.IsMeaninglessProgram("/bin/editor"));
}

// --- hoard manager corner cases -----------------------------------------------------

TEST(EdgeCases, ZeroBudgetStillTakesUnconditionals) {
  Correlator correlator;
  correlator.OnReference(Ref(1, RefKind::kPoint, "/p/a", 1));
  HoardManager manager(0);
  const std::set<PathId> always = {P("/etc/passwd")};
  const auto sel = manager.ChooseHoard(correlator, correlator.BuildClusters(), always,
                                       [](PathId) { return 100ull; });
  EXPECT_TRUE(sel.Contains("/etc/passwd"));
  EXPECT_FALSE(sel.Contains("/p/a"));
}

TEST(EdgeCases, EmptyCorrelatorHoardsNothingButAlways) {
  Correlator correlator;
  HoardManager manager(1'000'000);
  const auto sel = manager.ChooseHoard(correlator, correlator.BuildClusters(), {P("/x")},
                                       [](PathId) { return 1ull; });
  EXPECT_EQ(sel.files.size(), 1u);
  EXPECT_EQ(sel.projects_hoarded, 0u);
}

// --- disconnect sampler clamps -------------------------------------------------------

TEST(EdgeCases, SamplerClampsToFilterFloorAndMax) {
  DisconnectionSampler sampler(2.0, 1.0, 3.0);
  Rng rng(3);
  for (int i = 0; i < 5'000; ++i) {
    const double h = sampler.SampleHours(rng);
    EXPECT_GE(h, 0.25);
    EXPECT_LE(h, 3.0);
  }
}

TEST(EdgeCases, DegenerateSamplerParameters) {
  // median >= mean would give sigma^2 <= 0; the sampler must stay sane.
  DisconnectionSampler sampler(1.0, 5.0, 10.0);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const double h = sampler.SampleHours(rng);
    EXPECT_GE(h, 0.25);
    EXPECT_LE(h, 10.0);
  }
}

// --- stats singletons ---------------------------------------------------------------

TEST(EdgeCases, SummaryOfOneSample) {
  const Summary s = Summarize({7.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci99_half_width, 0.0);
}

// --- vfs pathological paths -----------------------------------------------------------

TEST(EdgeCases, VfsHandlesWeirdButLegalPaths) {
  SimFilesystem fs;
  EXPECT_EQ(fs.MkdirAll("/a/./b/../b/c"), VfsStatus::kOk);
  EXPECT_TRUE(fs.Exists("/a/b/c"));
  EXPECT_EQ(fs.CreateFile("/a/b/c//file", 1), VfsStatus::kOk);
  EXPECT_TRUE(fs.Exists("/a/b/c/file"));
  EXPECT_EQ(fs.Rmdir("/"), VfsStatus::kNotEmpty);
  EXPECT_EQ(fs.Remove("/"), VfsStatus::kIsDir);
}

// --- tracer fd exhaustion-ish behaviour -----------------------------------------------

TEST(EdgeCases, ManyOpenFilesInOneProcess) {
  SimFilesystem fs;
  fs.MkdirAll("/d");
  for (int i = 0; i < 200; ++i) {
    fs.CreateFile("/d/f" + std::to_string(i), 1);
  }
  ProcessTable procs;
  SimClock clock;
  SyscallTracer tracer(&fs, &procs, &clock);
  const Pid p = procs.SpawnInit(1000, "/d");
  std::vector<Fd> fds;
  for (int i = 0; i < 200; ++i) {
    const auto r = tracer.Open(p, "f" + std::to_string(i), false);
    ASSERT_TRUE(r.ok());
    fds.push_back(r.fd);
  }
  // All fds distinct; closing in reverse order works.
  std::set<Fd> unique(fds.begin(), fds.end());
  EXPECT_EQ(unique.size(), fds.size());
  for (auto it = fds.rbegin(); it != fds.rend(); ++it) {
    EXPECT_TRUE(tracer.Close(p, *it).ok());
  }
  // Implicit close on exit leaks nothing after explicit closes.
  EXPECT_TRUE(procs.Exit(p).empty());
}

}  // namespace
}  // namespace seer
