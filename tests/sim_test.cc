// Tests for the simulation layer: miss-free computation, coverage orders,
// working-set tracking, the disconnection filter pipeline, and the
// calibrated duration sampler.
#include <gtest/gtest.h>

#include "src/sim/disconnect_model.h"
#include "src/sim/machine_sim.h"
#include "src/sim/missfree.h"
#include "src/sim/trackers.h"

namespace seer {
namespace {

uint64_t TenBytes(const std::string&) { return 10; }

// --- ComputeMissFree ----------------------------------------------------------

TEST(MissFree, EmptyReferenceSetIsFree) {
  const auto r = ComputeMissFree({"/a", "/b"}, {}, TenBytes);
  EXPECT_EQ(r.bytes, 0u);
  EXPECT_EQ(r.uncovered, 0u);
}

TEST(MissFree, StopsAtDeepestReferencedFile) {
  const auto r = ComputeMissFree({"/a", "/b", "/c", "/d"}, {"/b"}, TenBytes);
  EXPECT_EQ(r.bytes, 20u);  // /a + /b
}

TEST(MissFree, DuplicatesInOrderCountedOnce) {
  const auto r = ComputeMissFree({"/a", "/a", "/b"}, {"/b"}, TenBytes);
  EXPECT_EQ(r.bytes, 20u);
}

TEST(MissFree, WorkingSetBytesSums) {
  EXPECT_EQ(WorkingSetBytes({"/a", "/b", "/c"}, TenBytes), 30u);
}

TEST(MissFree, WithTailAppendsMissingUniverse) {
  const auto order = WithTail({"/b"}, {"/a", "/b", "/c"});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "/b");
  EXPECT_EQ(order[1], "/a");
  EXPECT_EQ(order[2], "/c");
}

TEST(MissFree, GeometricSizeDeterministicPerPath) {
  EXPECT_EQ(GeometricSizeForPath("/x/y", 7), GeometricSizeForPath("/x/y", 7));
  EXPECT_NE(GeometricSizeForPath("/x/y", 7), GeometricSizeForPath("/x/z", 7));
}

// --- WorkingSetTracker ----------------------------------------------------------

TEST(WorkingSetTracker, TracksReferencesAndCreations) {
  WorkingSetTracker ws;
  TraceEvent open;
  open.op = Op::kOpen;
  open.path = "/old";
  ws.OnEvent(open);
  TraceEvent create;
  create.op = Op::kCreate;
  create.path = "/fresh";
  ws.OnEvent(create);

  EXPECT_EQ(ws.referenced().size(), 2u);
  const auto pre = ws.ReferencedPreexisting();
  ASSERT_EQ(pre.size(), 1u);
  EXPECT_EQ(*pre.begin(), "/old");

  ws.Reset();
  EXPECT_TRUE(ws.referenced().empty());
}

TEST(WorkingSetTracker, FailedEventsIgnored) {
  WorkingSetTracker ws;
  TraceEvent open;
  open.op = Op::kOpen;
  open.path = "/a";
  open.status = OpStatus::kNoEnt;
  ws.OnEvent(open);
  EXPECT_TRUE(ws.referenced().empty());
}

TEST(WorkingSetTracker, RenameTargetCountsAsCreated) {
  WorkingSetTracker ws;
  TraceEvent mv;
  mv.op = Op::kRename;
  mv.path = "/old";
  mv.path2 = "/new";
  ws.OnEvent(mv);
  const auto pre = ws.ReferencedPreexisting();
  EXPECT_EQ(pre.count("/old"), 1u);
  EXPECT_EQ(pre.count("/new"), 0u);
}

// --- disconnection filtering (Section 5.1.1) ------------------------------------

constexpr Time kMin15 = 15 * 60 * kMicrosPerSecond;

TEST(DisconnectFilter, UnreachableIntervalsFromPings) {
  std::vector<PingSample> pings = {
      {0, true}, {100, false}, {200, false}, {300, true}, {400, false},
  };
  const auto intervals = UnreachableIntervals(pings);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].begin, 100);
  EXPECT_EQ(intervals[0].end, 300);
  EXPECT_EQ(intervals[1].begin, 400);
}

TEST(DisconnectFilter, ShortDisconnectionsDropped) {
  const auto filtered = FilterDisconnections({{0, kMin15 / 2}}, {});
  EXPECT_TRUE(filtered.empty());
}

TEST(DisconnectFilter, ShortReconnectionsMerge) {
  // Two 20-minute disconnections separated by a 5-minute reconnection
  // merge into one 45-minute disconnection.
  const Time m = 60 * kMicrosPerSecond;
  const auto filtered = FilterDisconnections({{0, 20 * m}, {25 * m, 45 * m}}, {});
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].interval.begin, 0);
  EXPECT_EQ(filtered[0].interval.end, 45 * m);
}

TEST(DisconnectFilter, LongReconnectionsKeepSeparate) {
  const Time m = 60 * kMicrosPerSecond;
  const auto filtered = FilterDisconnections({{0, 20 * m}, {40 * m, 60 * m}}, {});
  EXPECT_EQ(filtered.size(), 2u);
}

TEST(DisconnectFilter, SuspensionsSubtracted) {
  const Time h = kMicrosPerHour;
  // A 16-hour overnight disconnection with 14 hours suspended: 2 active.
  const auto filtered = FilterDisconnections({{0, 16 * h}}, {{1 * h, 15 * h}});
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].active_duration, 2 * h);
}

TEST(DisconnectFilter, FullySuspendedExcluded) {
  const Time h = kMicrosPerHour;
  const auto filtered = FilterDisconnections({{0, 10 * h}}, {{0, 10 * h}});
  EXPECT_TRUE(filtered.empty());  // vacations don't count
}

// --- calibrated sampler ----------------------------------------------------------

TEST(DisconnectionSampler, MatchesTable3Shape) {
  // Machine F: mean 9.30, median 2.00, max 90.62 hours.
  DisconnectionSampler sampler(9.30, 2.00, 90.62);
  Rng rng(42);
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) {
    samples.push_back(sampler.SampleHours(rng));
  }
  const Summary s = Summarize(samples);
  EXPECT_NEAR(s.median, 2.0, 0.3);
  // Clamping at max biases the mean down a little; accept a band.
  EXPECT_GT(s.mean, 5.0);
  EXPECT_LT(s.mean, 12.0);
  EXPECT_GE(s.min, 0.25);
  EXPECT_LE(s.max, 90.62);
}

TEST(DisconnectionSampler, HeavyTailForMachineB) {
  // B: mean 43.2, median 0.57 — extremely skewed.
  DisconnectionSampler sampler(43.20, 0.57, 404.94);
  Rng rng(7);
  int over_100h = 0;
  for (int i = 0; i < 5'000; ++i) {
    if (sampler.SampleHours(rng) > 100.0) {
      ++over_100h;
    }
  }
  EXPECT_GT(over_100h, 50);  // the tail really is heavy
}

TEST(DisconnectionSampler, ProfileFactory) {
  const auto profile = GetMachineProfile('F');
  const auto sampler = SamplerFor(profile);
  EXPECT_NEAR(std::exp(sampler.mu()), 2.0, 1e-9);
}

}  // namespace
}  // namespace seer
