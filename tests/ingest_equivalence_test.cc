// Serial-vs-batched ingest equivalence.
//
// The sharded ingest pipeline (Correlator::IngestBatch) must produce state
// bit-identical to one-at-a-time serial sink delivery at any thread count
// and any batch size: same relation table (update counter, aging, RNG
// tie-break stream), same reference streams, same file table. The binary
// snapshot covers all of it, so equality of EncodeSnapshot() bytes is the
// strongest practical assertion. Traces here are randomized with
// fork/exit/delete/rename/exclude interleavings to exercise every segment
// barrier, plus deletion→re-reference runs to exercise the resurrection
// cut inside a single batch.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/core/async_pipeline.h"
#include "src/core/correlator.h"

namespace seer {
namespace {

PathId P(const std::string& path) { return GlobalPaths().Intern(path); }

IngestEvent RefEvent(Pid pid, RefKind kind, const std::string& path, Time time) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kReference;
  e.ref.pid = pid;
  e.ref.kind = kind;
  e.ref.path = P(path);
  e.ref.time = time;
  return e;
}

// Feeds events through the plain serial sink interface (works for any
// ReferenceSink: Correlator, BatchingSink, AsyncCorrelator).
void ApplySerial(ReferenceSink* c, const std::vector<IngestEvent>& events) {
  for (const IngestEvent& e : events) {
    switch (e.kind) {
      case IngestEvent::Kind::kReference:
        c->OnReference(e.ref);
        break;
      case IngestEvent::Kind::kFork:
        c->OnProcessFork(e.parent, e.child);
        break;
      case IngestEvent::Kind::kExit:
        c->OnProcessExit(e.child);
        break;
      case IngestEvent::Kind::kDeleted:
        c->OnFileDeleted(e.path, e.time);
        break;
      case IngestEvent::Kind::kRenamed:
        c->OnFileRenamed(e.path, e.path2, e.time);
        break;
      case IngestEvent::Kind::kExcluded:
        c->OnFileExcluded(e.path);
        break;
    }
  }
}

void ApplyBatched(Correlator* c, const std::vector<IngestEvent>& events, size_t batch) {
  for (size_t i = 0; i < events.size(); i += batch) {
    const size_t n = std::min(batch, events.size() - i);
    c->IngestBatch(events.data() + i, n);
  }
}

// A randomized trace over a small path universe and a churning process
// tree. References dominate; every barrier kind appears; deleted paths get
// re-referenced so batches hit the resurrection cut.
std::vector<IngestEvent> RandomTrace(uint32_t seed, size_t count) {
  std::mt19937 rng(seed);
  std::vector<IngestEvent> events;
  events.reserve(count);

  std::vector<std::string> paths;
  for (int i = 0; i < 40; ++i) {
    paths.push_back("/eq/f" + std::to_string(i));
  }
  std::vector<Pid> pids = {1, 2, 3};
  Pid next_pid = 100;
  int next_rename = 0;
  Time time = 0;

  auto rand_path = [&]() -> const std::string& {
    return paths[rng() % paths.size()];
  };
  auto rand_pid = [&]() { return pids[rng() % pids.size()]; };

  for (size_t i = 0; i < count; ++i) {
    time += kMicrosPerSecond / 4;
    const uint32_t roll = rng() % 100;
    if (roll < 85) {
      const uint32_t kind_roll = rng() % 10;
      const RefKind kind = kind_roll < 4   ? RefKind::kBegin
                           : kind_roll < 7 ? RefKind::kEnd
                                           : RefKind::kPoint;
      events.push_back(RefEvent(rand_pid(), kind, rand_path(), time));
    } else if (roll < 89) {
      IngestEvent e;
      e.kind = IngestEvent::Kind::kFork;
      e.parent = rand_pid();
      e.child = next_pid++;
      pids.push_back(e.child);
      events.push_back(e);
    } else if (roll < 92 && pids.size() > 2) {
      const size_t victim = rng() % pids.size();
      IngestEvent e;
      e.kind = IngestEvent::Kind::kExit;
      e.child = pids[victim];
      pids.erase(pids.begin() + victim);
      events.push_back(e);
    } else if (roll < 96) {
      IngestEvent e;
      e.kind = IngestEvent::Kind::kDeleted;
      e.path = P(rand_path());
      e.time = time;
      events.push_back(e);
    } else if (roll < 98) {
      IngestEvent e;
      e.kind = IngestEvent::Kind::kRenamed;
      e.path = P(rand_path());
      // Alternate between renaming onto an existing name (replacement) and
      // a fresh one (plain move).
      e.path2 = (rng() % 2 == 0)
                    ? P(rand_path())
                    : P("/eq/renamed" + std::to_string(next_rename++));
      e.time = time;
      events.push_back(e);
    } else {
      IngestEvent e;
      e.kind = IngestEvent::Kind::kExcluded;
      e.path = P(rand_path());
      events.push_back(e);
    }
  }
  return events;
}

SeerParams ChurnParams() {
  SeerParams p;
  p.max_neighbors = 4;      // force replacement scans + RNG tie-breaks
  p.distance_horizon = 20;  // force window expiry + compensation
  p.delete_delay = 3;       // force real purges
  p.aging_updates = 500;    // force priority-3 replacements
  return p;
}

TEST(IngestEquivalence, BatchedMatchesSerialAcrossThreadCounts) {
  const std::vector<IngestEvent> events = RandomTrace(0xA11CE, 3000);

  Correlator serial(ChurnParams());
  ApplySerial(&serial, events);
  const std::string want = serial.EncodeSnapshot();

  for (const int threads : {1, 2, 4, 8}) {
    Correlator batched(ChurnParams());
    batched.SetIngestThreads(threads);
    ApplyBatched(&batched, events, 256);
    EXPECT_EQ(want, batched.EncodeSnapshot()) << "threads=" << threads;
    EXPECT_EQ(serial.references_processed(), batched.references_processed());
  }
}

TEST(IngestEquivalence, BatchedMatchesSerialAcrossBatchSizes) {
  const std::vector<IngestEvent> events = RandomTrace(0xB0B, 2000);

  Correlator serial(ChurnParams());
  ApplySerial(&serial, events);
  const std::string want = serial.EncodeSnapshot();

  for (const size_t batch : {size_t{1}, size_t{7}, size_t{64}, size_t{4096}}) {
    Correlator batched(ChurnParams());
    batched.SetIngestThreads(4);
    ApplyBatched(&batched, events, batch);
    EXPECT_EQ(want, batched.EncodeSnapshot()) << "batch=" << batch;
  }
}

TEST(IngestEquivalence, ManySeedsManyConfigs) {
  for (const uint32_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (const bool per_process : {true, false}) {
      SeerParams params = ChurnParams();
      params.per_process_streams = per_process;

      const std::vector<IngestEvent> events = RandomTrace(seed, 1200);
      Correlator serial(params);
      ApplySerial(&serial, events);

      Correlator batched(params);
      batched.SetIngestThreads(8);
      ApplyBatched(&batched, events, 128);
      EXPECT_EQ(serial.EncodeSnapshot(), batched.EncodeSnapshot())
          << "seed=" << seed << " per_process=" << per_process;
    }
  }
}

TEST(IngestEquivalence, AlternateDistanceAndMeanKinds) {
  for (const DistanceKind dk :
       {DistanceKind::kLifetime, DistanceKind::kSequence, DistanceKind::kTemporal}) {
    for (const MeanKind mk : {MeanKind::kGeometric, MeanKind::kArithmetic}) {
      SeerParams params = ChurnParams();
      params.distance_kind = dk;
      params.mean_kind = mk;

      const std::vector<IngestEvent> events = RandomTrace(77, 1500);
      Correlator serial(params);
      ApplySerial(&serial, events);

      Correlator batched(params);
      batched.SetIngestThreads(4);
      ApplyBatched(&batched, events, 200);
      EXPECT_EQ(serial.EncodeSnapshot(), batched.EncodeSnapshot())
          << "distance_kind=" << static_cast<int>(dk)
          << " mean_kind=" << static_cast<int>(mk);
    }
  }
}

// The resurrection cut: delete a file, then — inside ONE batch — reference
// other files (building a pending segment) and then the deleted file again.
// Interning resurrects it; the pending observations must still be filtered
// against the pre-resurrection liveness flag, exactly as serial ingest
// filters them.
TEST(IngestEquivalence, ResurrectionWithinOneBatch) {
  auto build = [](Time* time) {
    std::vector<IngestEvent> events;
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < 6; ++i) {
        *time += kMicrosPerSecond;
        events.push_back(
            RefEvent(1, RefKind::kPoint, "/res/f" + std::to_string(i), *time));
      }
    }
    IngestEvent del;
    del.kind = IngestEvent::Kind::kDeleted;
    del.path = P("/res/f2");
    del.time = *time;
    events.push_back(del);
    // One long run with the resurrecting reference in the middle: the cut
    // must flush the first half before interning /res/f2 again.
    for (int i = 0; i < 4; ++i) {
      *time += kMicrosPerSecond;
      events.push_back(RefEvent(1, RefKind::kPoint, "/res/f" + std::to_string(i), *time));
    }
    *time += kMicrosPerSecond;
    events.push_back(RefEvent(1, RefKind::kPoint, "/res/f2", *time));
    for (int i = 0; i < 6; ++i) {
      *time += kMicrosPerSecond;
      events.push_back(RefEvent(1, RefKind::kPoint, "/res/f" + std::to_string(i), *time));
    }
    return events;
  };

  Time t1 = 0;
  Time t2 = 0;
  const std::vector<IngestEvent> trace_serial = build(&t1);
  const std::vector<IngestEvent> trace_batched = build(&t2);

  Correlator serial(ChurnParams());
  ApplySerial(&serial, trace_serial);

  Correlator batched(ChurnParams());
  batched.SetIngestThreads(4);
  // The whole trace as a single batch: the only cuts are the delete barrier
  // and the resurrection.
  batched.IngestBatch(trace_batched.data(), trace_batched.size());

  EXPECT_EQ(serial.EncodeSnapshot(), batched.EncodeSnapshot());
  EXPECT_GE(batched.ingest_stats().segments, 3u);  // pre-delete, pre-resurrect, rest
}

// Fork/exit under batching: the child's inherited history and the exit
// merge-back must land between exactly the same references as under serial
// ingest, across randomized interleavings batched at awkward sizes.
TEST(IngestEquivalence, ForkMergeUnderBatching) {
  std::mt19937 rng(0xF02C);
  for (int round = 0; round < 8; ++round) {
    std::vector<IngestEvent> events;
    Time time = 0;
    const Pid parent = 1;
    const Pid child = 50 + round;

    auto ref = [&](Pid pid, int file) {
      time += kMicrosPerSecond;
      events.push_back(
          RefEvent(pid, rng() % 2 == 0 ? RefKind::kPoint : RefKind::kBegin,
                   "/fork/f" + std::to_string(file), time));
    };

    const int before = 3 + static_cast<int>(rng() % 6);
    for (int i = 0; i < before; ++i) {
      ref(parent, static_cast<int>(rng() % 8));
    }
    IngestEvent fork;
    fork.kind = IngestEvent::Kind::kFork;
    fork.parent = parent;
    fork.child = child;
    events.push_back(fork);
    const int during = 3 + static_cast<int>(rng() % 8);
    for (int i = 0; i < during; ++i) {
      ref(rng() % 2 == 0 ? parent : child, static_cast<int>(rng() % 8));
    }
    IngestEvent exit_event;
    exit_event.kind = IngestEvent::Kind::kExit;
    exit_event.child = child;
    events.push_back(exit_event);
    const int after = 3 + static_cast<int>(rng() % 6);
    for (int i = 0; i < after; ++i) {
      ref(parent, static_cast<int>(rng() % 8));
    }

    Correlator serial(ChurnParams());
    ApplySerial(&serial, events);

    for (const size_t batch : {size_t{2}, size_t{5}, events.size()}) {
      Correlator batched(ChurnParams());
      batched.SetIngestThreads(4);
      ApplyBatched(&batched, events, batch);
      EXPECT_EQ(serial.EncodeSnapshot(), batched.EncodeSnapshot())
          << "round=" << round << " batch=" << batch;
    }
  }
}

TEST(IngestEquivalence, BatchingSinkMatchesSerial) {
  const std::vector<IngestEvent> events = RandomTrace(0x51Bc, 1500);

  Correlator serial(ChurnParams());
  ApplySerial(&serial, events);

  Correlator batched(ChurnParams());
  batched.SetIngestThreads(4);
  {
    // Tiny capacity so the sink flushes many partial batches; the tail
    // flush rides the destructor.
    BatchingSink sink(&batched, 17);
    ApplySerial(&sink, events);  // BatchingSink is itself a ReferenceSink
  }
  EXPECT_EQ(serial.EncodeSnapshot(), batched.EncodeSnapshot());
  EXPECT_GT(batched.ingest_stats().batches, 1u);
}

TEST(IngestEquivalence, AsyncPipelineMatchesSerial) {
  const std::vector<IngestEvent> events = RandomTrace(0xD00D, 2000);

  Correlator serial(ChurnParams());
  ApplySerial(&serial, events);
  const std::string want = serial.EncodeSnapshot();

  // Small queue: the worker repeatedly drains full rings as batches.
  AsyncCorrelator async(ChurnParams(), 0x5ee8, /*queue_capacity=*/64);
  async.SetIngestThreads(4);
  ApplySerial(&async, events);  // producer side of the pipeline
  const std::string got =
      async.Query([](const Correlator& c) { return c.EncodeSnapshot(); });
  EXPECT_EQ(want, got);
  EXPECT_EQ(events.size(), async.processed());
}

// BatchingSink::ApplySerial above relies on this: the sink forwards every
// callback kind, and a flush mid-stream leaves no event behind.
TEST(IngestEquivalence, IngestStatsAccounting) {
  const std::vector<IngestEvent> events = RandomTrace(0xCAFE, 1000);
  size_t refs = 0;
  size_t barriers = 0;
  for (const IngestEvent& e : events) {
    if (e.kind == IngestEvent::Kind::kReference) {
      ++refs;
    } else {
      ++barriers;
    }
  }

  Correlator batched(ChurnParams());
  batched.SetIngestThreads(2);
  ApplyBatched(&batched, events, 100);
  const IngestStats& stats = batched.ingest_stats();
  EXPECT_EQ(10u, stats.batches);
  EXPECT_EQ(barriers, stats.barriers);
  // Invalid references (none here: all paths intern) all reach segments.
  EXPECT_EQ(refs, stats.refs);
  EXPECT_GE(stats.segments, 1u);
  EXPECT_GE(stats.shards, stats.segments);  // at least one shard per segment
  EXPECT_GE(stats.max_shard_refs, 1u);
}

// --- stripe-sharded fold -----------------------------------------------------
//
// The fold phase partitions observations by the relation table's 256-file
// stripes and folds each stripe on its own worker. These traces span
// several stripes (file ids are assigned in intern order, so referencing
// `files` distinct paths up front populates ids [0, files)), keep barriers
// rare enough that segments clear the parallel-fold cutoff, and still
// include every barrier kind plus deletes/renames of files sitting right
// at stripe boundaries.
std::vector<IngestEvent> StripeTrace(uint32_t seed, size_t count, size_t files) {
  std::mt19937 rng(seed);
  std::vector<IngestEvent> events;
  events.reserve(count + files);

  std::vector<std::string> paths;
  paths.reserve(files);
  for (size_t i = 0; i < files; ++i) {
    paths.push_back("/stripe/f" + std::to_string(i));
  }
  std::vector<Pid> pids = {1, 2, 3, 4};
  Time time = 0;

  // Touch every path once, in order: ids come out 0..files-1, so the
  // boundary files below sit exactly at multiples of kStripeSize.
  for (size_t i = 0; i < files; ++i) {
    time += kMicrosPerSecond / 8;
    events.push_back(RefEvent(pids[i % pids.size()], RefKind::kPoint, paths[i], time));
  }

  auto rand_path = [&]() -> const std::string& {
    // Half the references cluster around stripe boundaries (ids 248..264,
    // 504..520, ...) so observation pairs straddle stripes constantly; the
    // rest spread over the whole universe.
    if (rng() % 2 == 0) {
      const size_t boundary = RelationTable::kStripeSize * (1 + rng() % (files / RelationTable::kStripeSize));
      const size_t id = boundary - 8 + rng() % 16;
      return paths[std::min(id, files - 1)];
    }
    return paths[rng() % files];
  };

  for (size_t i = 0; i < count; ++i) {
    time += kMicrosPerSecond / 4;
    const uint32_t roll = rng() % 1000;
    if (roll < 975) {
      const uint32_t kind_roll = rng() % 10;
      const RefKind kind = kind_roll < 4   ? RefKind::kBegin
                           : kind_roll < 6 ? RefKind::kEnd
                                           : RefKind::kPoint;
      events.push_back(RefEvent(pids[rng() % pids.size()], kind, rand_path(), time));
    } else if (roll < 985) {
      IngestEvent e;
      e.kind = IngestEvent::Kind::kDeleted;
      e.path = P(rand_path());
      e.time = time;
      events.push_back(e);
    } else if (roll < 992) {
      IngestEvent e;
      e.kind = IngestEvent::Kind::kRenamed;
      e.path = P(rand_path());
      e.path2 = (rng() % 2 == 0) ? P(rand_path())
                                 : P("/stripe/renamed" + std::to_string(i));
      e.time = time;
      events.push_back(e);
    } else if (roll < 996) {
      IngestEvent e;
      e.kind = IngestEvent::Kind::kFork;
      e.parent = pids[rng() % pids.size()];
      e.child = static_cast<Pid>(1000 + i);
      pids.push_back(e.child);
      events.push_back(e);
    } else if (roll < 998 && pids.size() > 2) {
      const size_t victim = rng() % pids.size();
      IngestEvent e;
      e.kind = IngestEvent::Kind::kExit;
      e.child = pids[victim];
      pids.erase(pids.begin() + victim);
      events.push_back(e);
    } else {
      IngestEvent e;
      e.kind = IngestEvent::Kind::kExcluded;
      e.path = P(rand_path());
      events.push_back(e);
    }
  }
  return events;
}

TEST(IngestEquivalence, StripeShardedFoldMatchesSerialAcrossThreadCounts) {
  // 640 files = 2.5 stripes; long barrier-free runs so segments clear the
  // parallel-fold cutoff.
  const std::vector<IngestEvent> events = StripeTrace(0x57121BE, 4000, 640);

  Correlator serial(ChurnParams());
  ApplySerial(&serial, events);
  const std::string want = serial.EncodeSnapshot();

  for (const int threads : {1, 2, 4, 8}) {
    Correlator batched(ChurnParams());
    batched.SetIngestThreads(threads);
    ApplyBatched(&batched, events, 4096);
    EXPECT_EQ(want, batched.EncodeSnapshot()) << "threads=" << threads;
    if (threads > 1) {
      // The point of the suite: the sharded fold actually ran.
      EXPECT_GT(batched.ingest_stats().parallel_folds, 0u) << "threads=" << threads;
      EXPECT_GT(batched.ingest_stats().fold_stripes, 1u) << "threads=" << threads;
    }
  }
}

TEST(IngestEquivalence, StripeShardedFoldAcrossBatchSizesAndSeeds) {
  for (const uint32_t seed : {11u, 22u, 33u}) {
    const std::vector<IngestEvent> events = StripeTrace(seed, 2500, 512);

    Correlator serial(ChurnParams());
    ApplySerial(&serial, events);
    const std::string want = serial.EncodeSnapshot();

    for (const size_t batch : {size_t{512}, size_t{4096}}) {
      Correlator batched(ChurnParams());
      batched.SetIngestThreads(8);
      ApplyBatched(&batched, events, batch);
      EXPECT_EQ(want, batched.EncodeSnapshot()) << "seed=" << seed << " batch=" << batch;
    }
  }
}

// Observations straddling one stripe boundary, with the boundary files
// themselves deleted and renamed mid-trace: the from-file picks the worker,
// the to-file lives one stripe over, and the replacement scans read
// liveness flags of cross-stripe neighbors.
TEST(IngestEquivalence, StripeBoundaryStraddleWithBarriers) {
  std::vector<IngestEvent> events;
  Time time = 0;
  // Populate ids 0..299: the boundary of interest is 255|256.
  for (int i = 0; i < 300; ++i) {
    time += kMicrosPerSecond / 8;
    events.push_back(RefEvent(1, RefKind::kPoint, "/straddle/f" + std::to_string(i), time));
  }
  std::mt19937 rng(0xB0DE);
  auto boundary_path = [&](int round) {
    // Ping-pong across the boundary with a little jitter.
    const int id = (round % 2 == 0 ? 255 : 256) + static_cast<int>(rng() % 3) - 1;
    return "/straddle/f" + std::to_string(id);
  };
  for (int burst = 0; burst < 6; ++burst) {
    for (int i = 0; i < 220; ++i) {
      time += kMicrosPerSecond / 4;
      events.push_back(RefEvent(1 + (i % 2), i % 3 == 0 ? RefKind::kBegin : RefKind::kPoint,
                                boundary_path(i), time));
    }
    IngestEvent barrier;
    if (burst % 2 == 0) {
      barrier.kind = IngestEvent::Kind::kDeleted;
      barrier.path = P("/straddle/f" + std::to_string(255 + burst / 2));
    } else {
      barrier.kind = IngestEvent::Kind::kRenamed;
      barrier.path = P("/straddle/f" + std::to_string(256 - burst / 2));
      barrier.path2 = P("/straddle/moved" + std::to_string(burst));
    }
    barrier.time = time;
    events.push_back(barrier);
  }

  Correlator serial(ChurnParams());
  ApplySerial(&serial, events);
  const std::string want = serial.EncodeSnapshot();

  for (const int threads : {2, 8}) {
    Correlator batched(ChurnParams());
    batched.SetIngestThreads(threads);
    batched.IngestBatch(events.data(), events.size());
    EXPECT_EQ(want, batched.EncodeSnapshot()) << "threads=" << threads;
    EXPECT_GT(batched.ingest_stats().parallel_folds, 0u);
  }
}

}  // namespace
}  // namespace seer
