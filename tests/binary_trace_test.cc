// Tests for the compact binary trace format.
#include "src/trace/binary_trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/process/syscall_tracer.h"
#include "src/trace/trace_io.h"
#include "src/util/rng.h"
#include "src/vfs/sim_filesystem.h"
#include "src/workload/environment.h"
#include "src/workload/user_model.h"

namespace seer {
namespace {

TraceEvent RandomEvent(Rng* rng, uint64_t seq, Time time) {
  TraceEvent e;
  e.seq = seq;
  e.time = time;
  e.pid = static_cast<Pid>(1 + rng->NextBounded(500));
  e.uid = static_cast<Uid>(rng->NextBounded(2000));
  e.op = static_cast<Op>(rng->NextBounded(17));
  e.status = static_cast<OpStatus>(rng->NextBounded(4));
  e.write = rng->NextBool(0.3);
  e.fd = static_cast<Fd>(rng->NextInRange(-1, 200));
  e.detail = static_cast<int32_t>(rng->NextInRange(-5, 1000));
  e.path = "/dir" + std::to_string(rng->NextBounded(20)) + "/file" +
           std::to_string(rng->NextBounded(40));
  if (rng->NextBool(0.2)) {
    e.path2 = e.path + ".new";
  }
  return e;
}

TEST(BinaryTrace, RoundTripRandomEvents) {
  Rng rng(41);
  std::vector<TraceEvent> events;
  uint64_t seq = 0;
  Time t = 0;
  for (int i = 0; i < 2'000; ++i) {
    seq += 1 + rng.NextBounded(3);
    t += static_cast<Time>(rng.NextBounded(1'000'000));
    events.push_back(RandomEvent(&rng, seq, t));
  }

  std::stringstream buffer;
  BinaryTraceWriter writer(buffer);
  for (const auto& e : events) {
    writer.Write(e);
  }
  EXPECT_EQ(writer.events_written(), events.size());

  BinaryTraceReader reader(buffer);
  ASSERT_TRUE(reader.ok());
  for (const auto& expected : events) {
    const auto got = reader.Next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->seq, expected.seq);
    EXPECT_EQ(got->time, expected.time);
    EXPECT_EQ(got->pid, expected.pid);
    EXPECT_EQ(got->uid, expected.uid);
    EXPECT_EQ(got->op, expected.op);
    EXPECT_EQ(got->status, expected.status);
    EXPECT_EQ(got->write, expected.write);
    EXPECT_EQ(got->fd, expected.fd);
    EXPECT_EQ(got->detail, expected.detail);
    EXPECT_EQ(got->path, expected.path);
    EXPECT_EQ(got->path2, expected.path2);
  }
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(BinaryTrace, MuchSmallerThanText) {
  // A realistic workload trace, both encodings.
  SimFilesystem fs;
  Rng rng(4);
  const UserEnvironment env = BuildEnvironment(&fs, EnvironmentConfig{}, &rng);
  ProcessTable processes;
  SimClock clock;
  SyscallTracer tracer(&fs, &processes, &clock);

  std::stringstream text;
  std::stringstream binary;
  struct Both : TraceSink {
    TraceWriter* t;
    BinaryTraceWriter* b;
    void OnEvent(const TraceEvent& e) override {
      t->Write(e);
      b->Write(e);
    }
  } sink;
  TraceWriter text_writer(text);
  BinaryTraceWriter binary_writer(binary);
  sink.t = &text_writer;
  sink.b = &binary_writer;
  tracer.AddSink(&sink);

  UserModel user(&tracer, &env, UserModelConfig{}, 4);
  user.RunActiveHours(0.3);
  ASSERT_GT(text_writer.events_written(), 500u);

  const size_t text_bytes = text.str().size();
  const size_t binary_bytes = binary.str().size();
  EXPECT_LT(binary_bytes * 4, text_bytes)
      << "binary " << binary_bytes << " vs text " << text_bytes
      << ": expected at least 4x compaction";

  // And it round-trips identically.
  BinaryTraceReader reader(binary);
  ASSERT_TRUE(reader.ok());
  std::istringstream text_in(text.str());
  TraceReader text_reader(text_in);
  while (auto expected = text_reader.Next()) {
    const auto got = reader.Next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->seq, expected->seq);
    EXPECT_EQ(got->path, expected->path);
  }
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(BinaryTrace, BadMagicRejected) {
  std::stringstream buffer("not a binary trace");
  BinaryTraceReader reader(buffer);
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(BinaryTrace, TruncationStopsCleanly) {
  std::stringstream buffer;
  BinaryTraceWriter writer(buffer);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    writer.Write(RandomEvent(&rng, i + 1, (i + 1) * 1'000));
  }
  const std::string full = buffer.str();

  for (const double frac : {0.3, 0.6, 0.95}) {
    std::stringstream cut(full.substr(0, static_cast<size_t>(full.size() * frac)));
    BinaryTraceReader reader(cut);
    ASSERT_TRUE(reader.ok());
    size_t read = 0;
    while (reader.Next().has_value()) {
      ++read;
    }
    EXPECT_LT(read, 50u) << frac;
  }
}

TEST(BinaryTrace, GarbageAfterHeaderHandled) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::string data = "SEERBT1\n";
    const size_t len = 5 + rng.NextBounded(200);
    for (size_t i = 0; i < len; ++i) {
      data += static_cast<char>(rng.NextBounded(256));
    }
    std::stringstream buffer(data);
    BinaryTraceReader reader(buffer);
    ASSERT_TRUE(reader.ok());
    size_t read = 0;
    while (reader.Next().has_value() && read < 10'000) {
      ++read;  // must terminate without crashing
    }
  }
}

TEST(BinaryTrace, DictionaryDeduplicatesPaths) {
  std::stringstream buffer;
  BinaryTraceWriter writer(buffer);
  TraceEvent e;
  e.op = Op::kOpen;
  e.path = "/the/same/long/path/every/time/file.c";
  for (int i = 0; i < 100; ++i) {
    e.seq = static_cast<uint64_t>(i);
    e.time = i;
    writer.Write(e);
  }
  EXPECT_EQ(writer.dictionary_size(), 2u);  // the path and ""
  // 100 events referencing a 38-byte path must cost far less than
  // 100 * 38 bytes.
  EXPECT_LT(buffer.str().size(), 1'500u);
}

}  // namespace
}  // namespace seer
