// Tests for the compact binary trace format.
#include "src/trace/binary_trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/process/syscall_tracer.h"
#include "src/trace/trace_io.h"
#include "src/util/rng.h"
#include "src/vfs/sim_filesystem.h"
#include "src/workload/environment.h"
#include "src/workload/user_model.h"

namespace seer {
namespace {

TraceEvent RandomEvent(Rng* rng, uint64_t seq, Time time) {
  TraceEvent e;
  e.seq = seq;
  e.time = time;
  e.pid = static_cast<Pid>(1 + rng->NextBounded(500));
  e.uid = static_cast<Uid>(rng->NextBounded(2000));
  e.op = static_cast<Op>(rng->NextBounded(17));
  e.status = static_cast<OpStatus>(rng->NextBounded(4));
  e.write = rng->NextBool(0.3);
  e.fd = static_cast<Fd>(rng->NextInRange(-1, 200));
  e.detail = static_cast<int32_t>(rng->NextInRange(-5, 1000));
  e.path = "/dir" + std::to_string(rng->NextBounded(20)) + "/file" +
           std::to_string(rng->NextBounded(40));
  if (rng->NextBool(0.2)) {
    e.path2 = e.path + ".new";
  }
  return e;
}

TEST(BinaryTrace, RoundTripRandomEvents) {
  Rng rng(41);
  std::vector<TraceEvent> events;
  uint64_t seq = 0;
  Time t = 0;
  for (int i = 0; i < 2'000; ++i) {
    seq += 1 + rng.NextBounded(3);
    t += static_cast<Time>(rng.NextBounded(1'000'000));
    events.push_back(RandomEvent(&rng, seq, t));
  }

  std::stringstream buffer;
  BinaryTraceWriter writer(buffer);
  for (const auto& e : events) {
    writer.Write(e);
  }
  EXPECT_EQ(writer.events_written(), events.size());

  BinaryTraceReader reader(buffer);
  ASSERT_TRUE(reader.ok());
  for (const auto& expected : events) {
    const auto got = reader.Next();
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(got->has_value());
    const TraceEvent& e = **got;
    EXPECT_EQ(e.seq, expected.seq);
    EXPECT_EQ(e.time, expected.time);
    EXPECT_EQ(e.pid, expected.pid);
    EXPECT_EQ(e.uid, expected.uid);
    EXPECT_EQ(e.op, expected.op);
    EXPECT_EQ(e.status, expected.status);
    EXPECT_EQ(e.write, expected.write);
    EXPECT_EQ(e.fd, expected.fd);
    EXPECT_EQ(e.detail, expected.detail);
    EXPECT_EQ(e.path, expected.path);
    EXPECT_EQ(e.path2, expected.path2);
  }
  const auto end = reader.Next();
  ASSERT_TRUE(end.ok()) << end.status();
  EXPECT_FALSE(end->has_value());
}

TEST(BinaryTrace, MuchSmallerThanText) {
  // A realistic workload trace, both encodings.
  SimFilesystem fs;
  Rng rng(4);
  const UserEnvironment env = BuildEnvironment(&fs, EnvironmentConfig{}, &rng);
  ProcessTable processes;
  SimClock clock;
  SyscallTracer tracer(&fs, &processes, &clock);

  std::stringstream text;
  std::stringstream binary;
  struct Both : TraceSink {
    TraceWriter* t;
    BinaryTraceWriter* b;
    void OnEvent(const TraceEvent& e) override {
      t->Write(e);
      b->Write(e);
    }
  } sink;
  TraceWriter text_writer(text);
  BinaryTraceWriter binary_writer(binary);
  sink.t = &text_writer;
  sink.b = &binary_writer;
  tracer.AddSink(&sink);

  UserModel user(&tracer, &env, UserModelConfig{}, 4);
  user.RunActiveHours(0.3);
  ASSERT_GT(text_writer.events_written(), 500u);

  const size_t text_bytes = text.str().size();
  const size_t binary_bytes = binary.str().size();
  EXPECT_LT(binary_bytes * 4, text_bytes)
      << "binary " << binary_bytes << " vs text " << text_bytes
      << ": expected at least 4x compaction";

  // And it round-trips identically.
  BinaryTraceReader reader(binary);
  ASSERT_TRUE(reader.ok());
  std::istringstream text_in(text.str());
  TraceReader text_reader(text_in);
  for (;;) {
    const auto expected = text_reader.Next();
    ASSERT_TRUE(expected.ok()) << expected.status();
    if (!expected->has_value()) {
      break;
    }
    const auto got = reader.Next();
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ((*got)->seq, (*expected)->seq);
    EXPECT_EQ((*got)->path, (*expected)->path);
  }
  const auto end = reader.Next();
  ASSERT_TRUE(end.ok()) << end.status();
  EXPECT_FALSE(end->has_value());
}

TEST(BinaryTrace, BadMagicRejected) {
  std::stringstream buffer("not a binary trace");
  BinaryTraceReader reader(buffer);
  EXPECT_FALSE(reader.ok());
  const auto next = reader.Next();
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
}

TEST(BinaryTrace, TruncationSurfacesDataLoss) {
  std::stringstream buffer;
  BinaryTraceWriter writer(buffer);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    writer.Write(RandomEvent(&rng, i + 1, (i + 1) * 1'000));
  }
  const std::string full = buffer.str();

  for (const double frac : {0.3, 0.6, 0.95}) {
    std::stringstream cut(full.substr(0, static_cast<size_t>(full.size() * frac)));
    BinaryTraceReader reader(cut);
    ASSERT_TRUE(reader.ok());
    size_t read = 0;
    for (;;) {
      const auto next = reader.Next();
      if (!next.ok()) {
        // The torn final event is a typed error, and it latches.
        EXPECT_EQ(next.status().code(), StatusCode::kDataLoss) << next.status();
        EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
        break;
      }
      if (!next->has_value()) {
        break;  // the cut landed exactly on an event boundary: clean end
      }
      ++read;
    }
    EXPECT_LT(read, 50u) << frac;
    EXPECT_EQ(read, reader.events_read()) << frac;
  }
}

TEST(BinaryTrace, GarbageAfterHeaderHandled) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::string data = "SEERBT1\n";
    const size_t len = 5 + rng.NextBounded(200);
    for (size_t i = 0; i < len; ++i) {
      data += static_cast<char>(rng.NextBounded(256));
    }
    std::stringstream buffer(data);
    BinaryTraceReader reader(buffer);
    ASSERT_TRUE(reader.ok());
    size_t read = 0;
    for (;;) {
      const auto next = reader.Next();
      if (!next.ok()) {
        EXPECT_FALSE(next.status().message().empty());
        break;
      }
      if (!next->has_value() || ++read >= 10'000) {
        break;  // must terminate without crashing
      }
    }
  }
}

TEST(BinaryTrace, DictionaryDeduplicatesPaths) {
  std::stringstream buffer;
  BinaryTraceWriter writer(buffer);
  TraceEvent e;
  e.op = Op::kOpen;
  e.path = "/the/same/long/path/every/time/file.c";
  for (int i = 0; i < 100; ++i) {
    e.seq = static_cast<uint64_t>(i);
    e.time = i;
    writer.Write(e);
  }
  EXPECT_EQ(writer.dictionary_size(), 2u);  // the path and ""
  // 100 events referencing a 38-byte path must cost far less than
  // 100 * 38 bytes.
  EXPECT_LT(buffer.str().size(), 1'500u);
}

}  // namespace
}  // namespace seer
