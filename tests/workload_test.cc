// Tests for the synthetic environment and user-behaviour model.
#include <gtest/gtest.h>

#include "src/core/investigator.h"
#include "src/workload/environment.h"
#include "src/workload/machine_profile.h"
#include "src/workload/user_model.h"

namespace seer {
namespace {

class EnvironmentTest : public ::testing::Test {
 protected:
  EnvironmentTest() : rng_(1) { env_ = BuildEnvironment(&fs_, EnvironmentConfig{}, &rng_); }

  SimFilesystem fs_;
  Rng rng_;
  UserEnvironment env_;
};

TEST_F(EnvironmentTest, SystemTreePresent) {
  EXPECT_TRUE(fs_.Exists("/lib/libc.so"));
  EXPECT_TRUE(fs_.Exists("/usr/bin/cc"));
  EXPECT_TRUE(fs_.Exists("/etc/passwd"));
  EXPECT_EQ(fs_.Stat("/dev/console")->kind, NodeKind::kDevice);
  EXPECT_EQ(fs_.Stat("/proc/meminfo")->kind, NodeKind::kPseudo);
}

TEST_F(EnvironmentTest, ProjectsHaveRealIncludeStructure) {
  ASSERT_FALSE(env_.projects.empty());
  const ProjectInfo& proj = env_.projects[0];
  ASSERT_FALSE(proj.sources.empty());
  const auto content = fs_.ReadContent(proj.sources[0]);
  ASSERT_TRUE(content.has_value());
  const auto includes = IncludeScanner::ParseIncludes(*content);
  EXPECT_FALSE(includes.empty()) << "sources must carry quoted includes";
  // Every quoted include resolves to an existing project header.
  for (const auto& inc : includes) {
    EXPECT_TRUE(fs_.Exists(proj.dir + "/" + inc)) << inc;
  }
}

TEST_F(EnvironmentTest, MakefilesParseable) {
  const ProjectInfo& proj = env_.projects[0];
  const auto content = fs_.ReadContent(proj.makefile);
  ASSERT_TRUE(content.has_value());
  const auto rules = MakefileInvestigator::ParseRules(*content);
  EXPECT_GE(rules.size(), proj.sources.size());  // prog rule + one per object
  EXPECT_EQ(rules[0].first, "prog");
}

TEST_F(EnvironmentTest, DocumentsCarryHotLinks) {
  ASSERT_FALSE(env_.documents.empty());
  const auto content = fs_.ReadContent(env_.documents[0].path);
  ASSERT_TRUE(content.has_value());
  const auto links = HotLinkInvestigator::ParseLinks(*content);
  ASSERT_EQ(links.size(), env_.documents[0].support.size());
  for (const auto& link : links) {
    EXPECT_TRUE(fs_.Exists(link)) << link;
  }
}

TEST_F(EnvironmentTest, DotFilesExist) {
  ASSERT_FALSE(env_.dot_files.empty());
  for (const auto& dot : env_.dot_files) {
    EXPECT_TRUE(fs_.Exists(dot));
  }
}

TEST_F(EnvironmentTest, ObjectsNotYetBuilt) {
  // Objects and binaries appear only after the first simulated build.
  EXPECT_FALSE(fs_.Exists(env_.projects[0].objects[0]));
  EXPECT_FALSE(fs_.Exists(env_.projects[0].binary));
}

TEST_F(EnvironmentTest, ScaleGrowsSizes) {
  SimFilesystem big_fs;
  Rng rng(1);
  EnvironmentConfig big;
  big.size_scale = 10.0;
  BuildEnvironment(&big_fs, big, &rng);
  EXPECT_GT(big_fs.TotalRegularBytes(), fs_.TotalRegularBytes());
}

class UserModelTest : public ::testing::Test {
 protected:
  UserModelTest() : tracer_(&fs_, &procs_, &clock_), env_rng_(2) {
    env_ = BuildEnvironment(&fs_, EnvironmentConfig{}, &env_rng_);
  }

  SimFilesystem fs_;
  ProcessTable procs_;
  SimClock clock_;
  SyscallTracer tracer_;
  Rng env_rng_;
  UserEnvironment env_;
};

TEST_F(UserModelTest, SessionsGenerateEventsAndAdvanceClock) {
  UserModel user(&tracer_, &env_, UserModelConfig{}, 3);
  const Time before = clock_.now();
  user.RunActiveHours(0.5);
  EXPECT_GT(tracer_.events_emitted(), 100u);
  EXPECT_GE(clock_.now() - before, static_cast<Time>(0.5 * 3600) * kMicrosPerSecond);
  EXPECT_GT(user.sessions_run(), 0u);
}

TEST_F(UserModelTest, BuildsProduceObjectsEventually) {
  UserModelConfig config;
  config.dev_weight = 1.0;
  config.doc_weight = 0.0;
  config.mail_weight = 0.0;
  UserModel user(&tracer_, &env_, config, 4);
  for (int i = 0; i < 10; ++i) {
    user.RunOneSession();
  }
  bool any_object = false;
  for (const auto& proj : env_.projects) {
    for (const auto& obj : proj.objects) {
      any_object |= fs_.Exists(obj);
    }
  }
  EXPECT_TRUE(any_object);
}

TEST_F(UserModelTest, DeterministicForSeed) {
  SimFilesystem fs_a;
  SimFilesystem fs_b;
  Rng ra(9);
  Rng rb(9);
  const UserEnvironment env_a = BuildEnvironment(&fs_a, EnvironmentConfig{}, &ra);
  const UserEnvironment env_b = BuildEnvironment(&fs_b, EnvironmentConfig{}, &rb);
  ProcessTable pa;
  ProcessTable pb;
  SimClock ca;
  SimClock cb;
  SyscallTracer ta(&fs_a, &pa, &ca);
  SyscallTracer tb(&fs_b, &pb, &cb);
  UserModel ua(&ta, &env_a, UserModelConfig{}, 5);
  UserModel ub(&tb, &env_b, UserModelConfig{}, 5);
  for (int i = 0; i < 5; ++i) {
    ua.RunOneSession();
    ub.RunOneSession();
  }
  EXPECT_EQ(ta.events_emitted(), tb.events_emitted());
  EXPECT_EQ(ca.now(), cb.now());
}

TEST_F(UserModelTest, DisconnectedUserAvoidsUnavailableProjects) {
  UserModelConfig config;
  config.attention_shift_prob = 1.0;        // shift every session
  config.unavailable_attempt_prob = 0.0;    // perfectly disciplined user
  UserModel user(&tracer_, &env_, config, 6);

  // Only project 0 is "hoarded": a path is available iff it is outside
  // every other project's directory.
  user.set_availability([this](const std::string& path) {
    for (size_t p = 1; p < env_.projects.size(); ++p) {
      const auto& dir = env_.projects[p].dir;
      if (path.compare(0, dir.size(), dir) == 0) {
        return false;
      }
    }
    return true;
  });
  for (int i = 0; i < 20; ++i) {
    user.RunOneSession();
    EXPECT_EQ(user.current_project(), 0);
  }
}

TEST_F(UserModelTest, MissReportedWhenTrippingOverUnavailableFile) {
  UserModelConfig config;
  config.dev_weight = 1.0;
  config.doc_weight = 0.0;
  config.mail_weight = 0.0;
  config.attention_shift_prob = 1.0;
  config.unavailable_attempt_prob = 1.0;  // always forgets
  UserModel user(&tracer_, &env_, config, 7);
  MissLog log;
  user.set_miss_log(&log);
  // Nothing under any project is available.
  user.set_availability([this](const std::string& path) {
    for (const auto& proj : env_.projects) {
      if (path.compare(0, proj.dir.size(), proj.dir) == 0) {
        return false;
      }
    }
    return true;
  });
  tracer_.set_availability_filter([this](const std::string& path) {
    for (const auto& proj : env_.projects) {
      if (path.compare(0, proj.dir.size(), proj.dir) == 0) {
        return false;
      }
    }
    return true;
  });
  for (int i = 0; i < 10; ++i) {
    user.RunOneSession();
  }
  EXPECT_FALSE(log.records().empty());
}

TEST_F(UserModelTest, LsSessionRecordsImpliedMisses) {
  UserModelConfig config;
  config.ls_prob = 1.0;  // list the project directory every session
  config.dev_weight = 0.0;
  config.doc_weight = 0.0;
  config.mail_weight = 1.0;  // keep sessions away from the project files
  config.attention_shift_prob = 0.0;
  UserModel user(&tracer_, &env_, config, 8);
  MissLog log;
  user.set_miss_log(&log);
  // The current project's notes are not hoarded; everything else is.
  const std::string missing = env_.projects[0].notes[0];
  user.set_availability([&missing](const std::string& path) { return path != missing; });
  tracer_.set_availability_filter(
      [&missing](const std::string& path) { return path != missing; });
  for (int i = 0; i < 5; ++i) {
    user.RunOneSession();
  }
  bool implied = false;
  for (const auto& rec : log.records()) {
    implied |= PathString(rec.path) == missing && !rec.automatic;
  }
  EXPECT_TRUE(implied) << "the user should notice the short directory listing";
}

TEST(MachineProfiles, AllNinePresent) {
  const auto all = AllMachineProfiles();
  ASSERT_EQ(all.size(), 9u);
  EXPECT_EQ(all[0].name, 'A');
  EXPECT_EQ(all[8].name, 'I');
}

TEST(MachineProfiles, Table3ValuesEncoded) {
  const auto f = GetMachineProfile('F');
  EXPECT_EQ(f.days_measured, 252);
  EXPECT_EQ(f.disconnections, 184);
  EXPECT_DOUBLE_EQ(f.mean_disc_hours, 9.30);
  EXPECT_DOUBLE_EQ(f.median_disc_hours, 2.00);
  EXPECT_DOUBLE_EQ(f.hoard_mb, 50.0);
  EXPECT_TRUE(f.investigator_variant);

  const auto g = GetMachineProfile('G');
  EXPECT_DOUBLE_EQ(g.hoard_mb, 98.0);

  const auto b = GetMachineProfile('B');
  EXPECT_EQ(b.disconnections, 10);
  EXPECT_DOUBLE_EQ(b.max_disc_hours, 404.94);
}

TEST(MachineProfiles, RelativeUsageLevels) {
  // F and G were the heavy users; C and H the lightest.
  const auto f = GetMachineProfile('F');
  const auto c = GetMachineProfile('C');
  EXPECT_GT(f.active_hours_per_day, 5 * c.active_hours_per_day);
}

}  // namespace
}  // namespace seer
