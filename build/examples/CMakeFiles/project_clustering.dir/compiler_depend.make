# Empty compiler generated dependencies file for project_clustering.
# This may be replaced when dependencies are built.
