file(REMOVE_RECURSE
  "CMakeFiles/project_clustering.dir/project_clustering.cpp.o"
  "CMakeFiles/project_clustering.dir/project_clustering.cpp.o.d"
  "project_clustering"
  "project_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
