file(REMOVE_RECURSE
  "CMakeFiles/daemon_mode.dir/daemon_mode.cpp.o"
  "CMakeFiles/daemon_mode.dir/daemon_mode.cpp.o.d"
  "daemon_mode"
  "daemon_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daemon_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
