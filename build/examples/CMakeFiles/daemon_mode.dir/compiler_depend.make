# Empty compiler generated dependencies file for daemon_mode.
# This may be replaced when dependencies are built.
