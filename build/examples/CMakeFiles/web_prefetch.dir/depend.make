# Empty dependencies file for web_prefetch.
# This may be replaced when dependencies are built.
