file(REMOVE_RECURSE
  "CMakeFiles/web_prefetch.dir/web_prefetch.cpp.o"
  "CMakeFiles/web_prefetch.dir/web_prefetch.cpp.o.d"
  "web_prefetch"
  "web_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
