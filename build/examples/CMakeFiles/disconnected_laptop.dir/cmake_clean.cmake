file(REMOVE_RECURSE
  "CMakeFiles/disconnected_laptop.dir/disconnected_laptop.cpp.o"
  "CMakeFiles/disconnected_laptop.dir/disconnected_laptop.cpp.o.d"
  "disconnected_laptop"
  "disconnected_laptop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disconnected_laptop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
