# Empty dependencies file for disconnected_laptop.
# This may be replaced when dependencies are built.
