
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/disconnected_laptop.cpp" "examples/CMakeFiles/disconnected_laptop.dir/disconnected_laptop.cpp.o" "gcc" "examples/CMakeFiles/disconnected_laptop.dir/disconnected_laptop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/seer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/seer_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/seer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/observer/CMakeFiles/seer_observer.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/seer_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/seer_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/seer_process.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/seer_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/seer_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
