file(REMOVE_RECURSE
  "CMakeFiles/fig2_missfree_hoard.dir/fig2_missfree_hoard.cc.o"
  "CMakeFiles/fig2_missfree_hoard.dir/fig2_missfree_hoard.cc.o.d"
  "fig2_missfree_hoard"
  "fig2_missfree_hoard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_missfree_hoard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
