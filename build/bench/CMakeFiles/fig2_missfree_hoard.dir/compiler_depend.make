# Empty compiler generated dependencies file for fig2_missfree_hoard.
# This may be replaced when dependencies are built.
