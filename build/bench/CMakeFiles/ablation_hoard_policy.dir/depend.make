# Empty dependencies file for ablation_hoard_policy.
# This may be replaced when dependencies are built.
