file(REMOVE_RECURSE
  "CMakeFiles/ablation_hoard_policy.dir/ablation_hoard_policy.cc.o"
  "CMakeFiles/ablation_hoard_policy.dir/ablation_hoard_policy.cc.o.d"
  "ablation_hoard_policy"
  "ablation_hoard_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hoard_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
