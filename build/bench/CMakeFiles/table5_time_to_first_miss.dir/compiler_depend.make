# Empty compiler generated dependencies file for table5_time_to_first_miss.
# This may be replaced when dependencies are built.
