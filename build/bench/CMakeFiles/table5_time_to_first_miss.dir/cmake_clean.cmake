file(REMOVE_RECURSE
  "CMakeFiles/table5_time_to_first_miss.dir/table5_time_to_first_miss.cc.o"
  "CMakeFiles/table5_time_to_first_miss.dir/table5_time_to_first_miss.cc.o.d"
  "table5_time_to_first_miss"
  "table5_time_to_first_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_time_to_first_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
