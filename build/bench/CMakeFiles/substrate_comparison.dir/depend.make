# Empty dependencies file for substrate_comparison.
# This may be replaced when dependencies are built.
