file(REMOVE_RECURSE
  "CMakeFiles/fig3_weekly_series.dir/fig3_weekly_series.cc.o"
  "CMakeFiles/fig3_weekly_series.dir/fig3_weekly_series.cc.o.d"
  "fig3_weekly_series"
  "fig3_weekly_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_weekly_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
