# Empty compiler generated dependencies file for fig3_weekly_series.
# This may be replaced when dependencies are built.
