file(REMOVE_RECURSE
  "CMakeFiles/clustering_scale.dir/clustering_scale.cc.o"
  "CMakeFiles/clustering_scale.dir/clustering_scale.cc.o.d"
  "clustering_scale"
  "clustering_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
