# Empty dependencies file for clustering_scale.
# This may be replaced when dependencies are built.
