file(REMOVE_RECURSE
  "CMakeFiles/table3_disconnections.dir/table3_disconnections.cc.o"
  "CMakeFiles/table3_disconnections.dir/table3_disconnections.cc.o.d"
  "table3_disconnections"
  "table3_disconnections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_disconnections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
