# Empty compiler generated dependencies file for table3_disconnections.
# This may be replaced when dependencies are built.
