# Empty dependencies file for table4_failures.
# This may be replaced when dependencies are built.
