file(REMOVE_RECURSE
  "CMakeFiles/table4_failures.dir/table4_failures.cc.o"
  "CMakeFiles/table4_failures.dir/table4_failures.cc.o.d"
  "table4_failures"
  "table4_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
