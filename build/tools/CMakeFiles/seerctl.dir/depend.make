# Empty dependencies file for seerctl.
# This may be replaced when dependencies are built.
