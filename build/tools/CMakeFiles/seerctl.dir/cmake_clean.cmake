file(REMOVE_RECURSE
  "CMakeFiles/seerctl.dir/seerctl.cc.o"
  "CMakeFiles/seerctl.dir/seerctl.cc.o.d"
  "seerctl"
  "seerctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seerctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
