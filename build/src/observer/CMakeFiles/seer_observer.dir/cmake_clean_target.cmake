file(REMOVE_RECURSE
  "libseer_observer.a"
)
