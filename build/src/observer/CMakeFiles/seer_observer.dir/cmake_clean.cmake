file(REMOVE_RECURSE
  "CMakeFiles/seer_observer.dir/control_file.cc.o"
  "CMakeFiles/seer_observer.dir/control_file.cc.o.d"
  "CMakeFiles/seer_observer.dir/observer.cc.o"
  "CMakeFiles/seer_observer.dir/observer.cc.o.d"
  "libseer_observer.a"
  "libseer_observer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
