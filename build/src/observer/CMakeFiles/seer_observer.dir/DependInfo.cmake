
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/observer/control_file.cc" "src/observer/CMakeFiles/seer_observer.dir/control_file.cc.o" "gcc" "src/observer/CMakeFiles/seer_observer.dir/control_file.cc.o.d"
  "/root/repo/src/observer/observer.cc" "src/observer/CMakeFiles/seer_observer.dir/observer.cc.o" "gcc" "src/observer/CMakeFiles/seer_observer.dir/observer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/seer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/seer_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/seer_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/seer_process.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
