# Empty dependencies file for seer_observer.
# This may be replaced when dependencies are built.
