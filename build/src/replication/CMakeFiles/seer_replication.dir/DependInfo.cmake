
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/gossip.cc" "src/replication/CMakeFiles/seer_replication.dir/gossip.cc.o" "gcc" "src/replication/CMakeFiles/seer_replication.dir/gossip.cc.o.d"
  "/root/repo/src/replication/replication_system.cc" "src/replication/CMakeFiles/seer_replication.dir/replication_system.cc.o" "gcc" "src/replication/CMakeFiles/seer_replication.dir/replication_system.cc.o.d"
  "/root/repo/src/replication/replicators.cc" "src/replication/CMakeFiles/seer_replication.dir/replicators.cc.o" "gcc" "src/replication/CMakeFiles/seer_replication.dir/replicators.cc.o.d"
  "/root/repo/src/replication/version_vector.cc" "src/replication/CMakeFiles/seer_replication.dir/version_vector.cc.o" "gcc" "src/replication/CMakeFiles/seer_replication.dir/version_vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/seer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/seer_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
