file(REMOVE_RECURSE
  "CMakeFiles/seer_replication.dir/gossip.cc.o"
  "CMakeFiles/seer_replication.dir/gossip.cc.o.d"
  "CMakeFiles/seer_replication.dir/replication_system.cc.o"
  "CMakeFiles/seer_replication.dir/replication_system.cc.o.d"
  "CMakeFiles/seer_replication.dir/replicators.cc.o"
  "CMakeFiles/seer_replication.dir/replicators.cc.o.d"
  "CMakeFiles/seer_replication.dir/version_vector.cc.o"
  "CMakeFiles/seer_replication.dir/version_vector.cc.o.d"
  "libseer_replication.a"
  "libseer_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
