# Empty dependencies file for seer_replication.
# This may be replaced when dependencies are built.
