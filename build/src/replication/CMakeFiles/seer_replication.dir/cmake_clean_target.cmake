file(REMOVE_RECURSE
  "libseer_replication.a"
)
