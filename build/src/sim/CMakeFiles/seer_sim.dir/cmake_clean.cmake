file(REMOVE_RECURSE
  "CMakeFiles/seer_sim.dir/disconnect_model.cc.o"
  "CMakeFiles/seer_sim.dir/disconnect_model.cc.o.d"
  "CMakeFiles/seer_sim.dir/live_sim.cc.o"
  "CMakeFiles/seer_sim.dir/live_sim.cc.o.d"
  "CMakeFiles/seer_sim.dir/machine_sim.cc.o"
  "CMakeFiles/seer_sim.dir/machine_sim.cc.o.d"
  "CMakeFiles/seer_sim.dir/missfree.cc.o"
  "CMakeFiles/seer_sim.dir/missfree.cc.o.d"
  "CMakeFiles/seer_sim.dir/trackers.cc.o"
  "CMakeFiles/seer_sim.dir/trackers.cc.o.d"
  "libseer_sim.a"
  "libseer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
