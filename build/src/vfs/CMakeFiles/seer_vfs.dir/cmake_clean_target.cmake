file(REMOVE_RECURSE
  "libseer_vfs.a"
)
