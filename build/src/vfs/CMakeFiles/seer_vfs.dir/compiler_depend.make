# Empty compiler generated dependencies file for seer_vfs.
# This may be replaced when dependencies are built.
