file(REMOVE_RECURSE
  "CMakeFiles/seer_vfs.dir/sim_filesystem.cc.o"
  "CMakeFiles/seer_vfs.dir/sim_filesystem.cc.o.d"
  "libseer_vfs.a"
  "libseer_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
