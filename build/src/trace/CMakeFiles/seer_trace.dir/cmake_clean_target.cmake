file(REMOVE_RECURSE
  "libseer_trace.a"
)
