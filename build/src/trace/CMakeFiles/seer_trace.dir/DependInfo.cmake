
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/binary_trace.cc" "src/trace/CMakeFiles/seer_trace.dir/binary_trace.cc.o" "gcc" "src/trace/CMakeFiles/seer_trace.dir/binary_trace.cc.o.d"
  "/root/repo/src/trace/event.cc" "src/trace/CMakeFiles/seer_trace.dir/event.cc.o" "gcc" "src/trace/CMakeFiles/seer_trace.dir/event.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/seer_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/seer_trace.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/seer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
