# Empty dependencies file for seer_trace.
# This may be replaced when dependencies are built.
