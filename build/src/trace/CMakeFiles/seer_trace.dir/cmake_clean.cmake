file(REMOVE_RECURSE
  "CMakeFiles/seer_trace.dir/binary_trace.cc.o"
  "CMakeFiles/seer_trace.dir/binary_trace.cc.o.d"
  "CMakeFiles/seer_trace.dir/event.cc.o"
  "CMakeFiles/seer_trace.dir/event.cc.o.d"
  "CMakeFiles/seer_trace.dir/trace_io.cc.o"
  "CMakeFiles/seer_trace.dir/trace_io.cc.o.d"
  "libseer_trace.a"
  "libseer_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
