file(REMOVE_RECURSE
  "CMakeFiles/seer_workload.dir/environment.cc.o"
  "CMakeFiles/seer_workload.dir/environment.cc.o.d"
  "CMakeFiles/seer_workload.dir/machine_profile.cc.o"
  "CMakeFiles/seer_workload.dir/machine_profile.cc.o.d"
  "CMakeFiles/seer_workload.dir/user_model.cc.o"
  "CMakeFiles/seer_workload.dir/user_model.cc.o.d"
  "libseer_workload.a"
  "libseer_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
