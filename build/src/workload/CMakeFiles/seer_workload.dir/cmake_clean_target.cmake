file(REMOVE_RECURSE
  "libseer_workload.a"
)
