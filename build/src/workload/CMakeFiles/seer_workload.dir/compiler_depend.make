# Empty compiler generated dependencies file for seer_workload.
# This may be replaced when dependencies are built.
