file(REMOVE_RECURSE
  "libseer_baselines.a"
)
