file(REMOVE_RECURSE
  "CMakeFiles/seer_baselines.dir/coda_priority.cc.o"
  "CMakeFiles/seer_baselines.dir/coda_priority.cc.o.d"
  "CMakeFiles/seer_baselines.dir/lru.cc.o"
  "CMakeFiles/seer_baselines.dir/lru.cc.o.d"
  "libseer_baselines.a"
  "libseer_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
