# Empty compiler generated dependencies file for seer_baselines.
# This may be replaced when dependencies are built.
