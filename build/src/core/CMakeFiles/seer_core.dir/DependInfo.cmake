
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_predictor.cc" "src/core/CMakeFiles/seer_core.dir/access_predictor.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/access_predictor.cc.o.d"
  "/root/repo/src/core/async_pipeline.cc" "src/core/CMakeFiles/seer_core.dir/async_pipeline.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/async_pipeline.cc.o.d"
  "/root/repo/src/core/clustering.cc" "src/core/CMakeFiles/seer_core.dir/clustering.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/clustering.cc.o.d"
  "/root/repo/src/core/correlator.cc" "src/core/CMakeFiles/seer_core.dir/correlator.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/correlator.cc.o.d"
  "/root/repo/src/core/file_table.cc" "src/core/CMakeFiles/seer_core.dir/file_table.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/file_table.cc.o.d"
  "/root/repo/src/core/hoard.cc" "src/core/CMakeFiles/seer_core.dir/hoard.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/hoard.cc.o.d"
  "/root/repo/src/core/hoard_daemon.cc" "src/core/CMakeFiles/seer_core.dir/hoard_daemon.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/hoard_daemon.cc.o.d"
  "/root/repo/src/core/investigator.cc" "src/core/CMakeFiles/seer_core.dir/investigator.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/investigator.cc.o.d"
  "/root/repo/src/core/params_io.cc" "src/core/CMakeFiles/seer_core.dir/params_io.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/params_io.cc.o.d"
  "/root/repo/src/core/persistence.cc" "src/core/CMakeFiles/seer_core.dir/persistence.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/persistence.cc.o.d"
  "/root/repo/src/core/reference_streams.cc" "src/core/CMakeFiles/seer_core.dir/reference_streams.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/reference_streams.cc.o.d"
  "/root/repo/src/core/relation_table.cc" "src/core/CMakeFiles/seer_core.dir/relation_table.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/relation_table.cc.o.d"
  "/root/repo/src/core/reorganizer.cc" "src/core/CMakeFiles/seer_core.dir/reorganizer.cc.o" "gcc" "src/core/CMakeFiles/seer_core.dir/reorganizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/seer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/seer_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/seer_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/observer/CMakeFiles/seer_observer.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/seer_process.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
