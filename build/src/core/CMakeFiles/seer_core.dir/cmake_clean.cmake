file(REMOVE_RECURSE
  "CMakeFiles/seer_core.dir/access_predictor.cc.o"
  "CMakeFiles/seer_core.dir/access_predictor.cc.o.d"
  "CMakeFiles/seer_core.dir/async_pipeline.cc.o"
  "CMakeFiles/seer_core.dir/async_pipeline.cc.o.d"
  "CMakeFiles/seer_core.dir/clustering.cc.o"
  "CMakeFiles/seer_core.dir/clustering.cc.o.d"
  "CMakeFiles/seer_core.dir/correlator.cc.o"
  "CMakeFiles/seer_core.dir/correlator.cc.o.d"
  "CMakeFiles/seer_core.dir/file_table.cc.o"
  "CMakeFiles/seer_core.dir/file_table.cc.o.d"
  "CMakeFiles/seer_core.dir/hoard.cc.o"
  "CMakeFiles/seer_core.dir/hoard.cc.o.d"
  "CMakeFiles/seer_core.dir/hoard_daemon.cc.o"
  "CMakeFiles/seer_core.dir/hoard_daemon.cc.o.d"
  "CMakeFiles/seer_core.dir/investigator.cc.o"
  "CMakeFiles/seer_core.dir/investigator.cc.o.d"
  "CMakeFiles/seer_core.dir/params_io.cc.o"
  "CMakeFiles/seer_core.dir/params_io.cc.o.d"
  "CMakeFiles/seer_core.dir/persistence.cc.o"
  "CMakeFiles/seer_core.dir/persistence.cc.o.d"
  "CMakeFiles/seer_core.dir/reference_streams.cc.o"
  "CMakeFiles/seer_core.dir/reference_streams.cc.o.d"
  "CMakeFiles/seer_core.dir/relation_table.cc.o"
  "CMakeFiles/seer_core.dir/relation_table.cc.o.d"
  "CMakeFiles/seer_core.dir/reorganizer.cc.o"
  "CMakeFiles/seer_core.dir/reorganizer.cc.o.d"
  "libseer_core.a"
  "libseer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
