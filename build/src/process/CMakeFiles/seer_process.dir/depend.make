# Empty dependencies file for seer_process.
# This may be replaced when dependencies are built.
