file(REMOVE_RECURSE
  "CMakeFiles/seer_process.dir/process_table.cc.o"
  "CMakeFiles/seer_process.dir/process_table.cc.o.d"
  "CMakeFiles/seer_process.dir/syscall_tracer.cc.o"
  "CMakeFiles/seer_process.dir/syscall_tracer.cc.o.d"
  "libseer_process.a"
  "libseer_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
