
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/process/process_table.cc" "src/process/CMakeFiles/seer_process.dir/process_table.cc.o" "gcc" "src/process/CMakeFiles/seer_process.dir/process_table.cc.o.d"
  "/root/repo/src/process/syscall_tracer.cc" "src/process/CMakeFiles/seer_process.dir/syscall_tracer.cc.o" "gcc" "src/process/CMakeFiles/seer_process.dir/syscall_tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/seer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/seer_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/seer_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
