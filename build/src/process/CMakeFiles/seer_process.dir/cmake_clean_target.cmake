file(REMOVE_RECURSE
  "libseer_process.a"
)
