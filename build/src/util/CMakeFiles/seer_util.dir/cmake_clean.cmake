file(REMOVE_RECURSE
  "CMakeFiles/seer_util.dir/path.cc.o"
  "CMakeFiles/seer_util.dir/path.cc.o.d"
  "CMakeFiles/seer_util.dir/rng.cc.o"
  "CMakeFiles/seer_util.dir/rng.cc.o.d"
  "CMakeFiles/seer_util.dir/stats.cc.o"
  "CMakeFiles/seer_util.dir/stats.cc.o.d"
  "libseer_util.a"
  "libseer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
