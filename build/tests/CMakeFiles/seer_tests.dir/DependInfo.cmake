
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/access_predictor_test.cc" "tests/CMakeFiles/seer_tests.dir/access_predictor_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/access_predictor_test.cc.o.d"
  "/root/repo/tests/async_pipeline_test.cc" "tests/CMakeFiles/seer_tests.dir/async_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/async_pipeline_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/seer_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/binary_trace_test.cc" "tests/CMakeFiles/seer_tests.dir/binary_trace_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/binary_trace_test.cc.o.d"
  "/root/repo/tests/clustering_test.cc" "tests/CMakeFiles/seer_tests.dir/clustering_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/clustering_test.cc.o.d"
  "/root/repo/tests/control_file_test.cc" "tests/CMakeFiles/seer_tests.dir/control_file_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/control_file_test.cc.o.d"
  "/root/repo/tests/correlator_test.cc" "tests/CMakeFiles/seer_tests.dir/correlator_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/correlator_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/seer_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/gossip_test.cc" "tests/CMakeFiles/seer_tests.dir/gossip_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/gossip_test.cc.o.d"
  "/root/repo/tests/hoard_daemon_test.cc" "tests/CMakeFiles/seer_tests.dir/hoard_daemon_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/hoard_daemon_test.cc.o.d"
  "/root/repo/tests/hoard_test.cc" "tests/CMakeFiles/seer_tests.dir/hoard_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/hoard_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/seer_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/investigator_test.cc" "tests/CMakeFiles/seer_tests.dir/investigator_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/investigator_test.cc.o.d"
  "/root/repo/tests/meaningless_modes_test.cc" "tests/CMakeFiles/seer_tests.dir/meaningless_modes_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/meaningless_modes_test.cc.o.d"
  "/root/repo/tests/observer_test.cc" "tests/CMakeFiles/seer_tests.dir/observer_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/observer_test.cc.o.d"
  "/root/repo/tests/parser_fuzz_test.cc" "tests/CMakeFiles/seer_tests.dir/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/persistence_test.cc" "tests/CMakeFiles/seer_tests.dir/persistence_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/persistence_test.cc.o.d"
  "/root/repo/tests/process_test.cc" "tests/CMakeFiles/seer_tests.dir/process_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/process_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/seer_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/relation_table_test.cc" "tests/CMakeFiles/seer_tests.dir/relation_table_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/relation_table_test.cc.o.d"
  "/root/repo/tests/reorganizer_test.cc" "tests/CMakeFiles/seer_tests.dir/reorganizer_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/reorganizer_test.cc.o.d"
  "/root/repo/tests/replication_test.cc" "tests/CMakeFiles/seer_tests.dir/replication_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/replication_test.cc.o.d"
  "/root/repo/tests/semantic_distance_test.cc" "tests/CMakeFiles/seer_tests.dir/semantic_distance_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/semantic_distance_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/seer_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/seer_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/umbrella_test.cc" "tests/CMakeFiles/seer_tests.dir/umbrella_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/umbrella_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/seer_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/vfs_test.cc" "tests/CMakeFiles/seer_tests.dir/vfs_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/vfs_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/seer_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/seer_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/seer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/seer_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/seer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/observer/CMakeFiles/seer_observer.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/seer_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/seer_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/seer_process.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/seer_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/seer_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
