# Empty compiler generated dependencies file for seer_tests.
# This may be replaced when dependencies are built.
