// Trace event model.
//
// SEER's observer consumes a stream of completed system calls delivered by a
// kernel trace hook (Section 4.11). We reproduce the same schema: each event
// carries the issuing process, the operation, the path(s) involved, the
// completion status, and a timestamp. Events are also the unit of the
// on-disk trace format used by the trace-driven simulations of Section 5.
#ifndef SRC_TRACE_EVENT_H_
#define SRC_TRACE_EVENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/path_interner.h"

namespace seer {

using Pid = int32_t;
using Uid = int32_t;
using Fd = int32_t;

// Microseconds since the start of the trace.
using Time = int64_t;

constexpr Time kMicrosPerSecond = 1'000'000;
constexpr Time kMicrosPerHour = 3'600 * kMicrosPerSecond;
constexpr Time kMicrosPerDay = 24 * kMicrosPerHour;

// Operation kinds, modelled on the Linux syscalls SEER traced.
enum class Op : uint8_t {
  kOpen,      // open(path) for read and/or write; fd on success
  kClose,     // close(fd)
  kExec,      // execve(path) — traced before execution (Section 4.11)
  kExit,      // process exit — traced before execution
  kFork,      // fork(); `child` holds the new pid
  kStat,      // attribute examination (stat/access)
  kChmod,     // attribute modification (chmod/chown/utime)
  kCreate,    // creation of a regular file (open with O_CREAT on a new file)
  kUnlink,    // file deletion
  kRename,    // rename(path -> path2)
  kLink,      // alternative name creation (hard or symbolic link)
  kMkdir,     // directory creation
  kRmdir,     // directory removal
  kOpenDir,   // opening a directory for reading (the `find` signature)
  kReadDir,   // reading directory entries; `detail` = entries returned
  kCloseDir,  // closing a directory fd
  kChdir,     // change of working directory
};

// Completion status. The observer needs success/failure because failed opens
// are common (Section 4.4) and must not be treated as references — yet a
// failed open of a file known to exist elsewhere is an automatic hoard miss.
enum class OpStatus : uint8_t {
  kOk,
  kNoEnt,    // target does not exist
  kAccess,   // permission denied
  kNotLocal, // exists in the namespace but is not in the local hoard
};

struct TraceEvent {
  uint64_t seq = 0;    // monotonically increasing sequence number
  Time time = 0;       // microseconds since trace start
  Pid pid = 0;
  Uid uid = 0;
  Op op = Op::kOpen;
  OpStatus status = OpStatus::kOk;
  std::string path;    // primary path (absolute once past the observer)
  std::string path2;   // rename/link target; empty otherwise
  Fd fd = -1;          // fd for open/close pairing; -1 when not applicable
  bool write = false;  // open-for-write intent
  int32_t detail = 0;  // op-specific: fork child pid, readdir entry count

  bool ok() const { return status == OpStatus::kOk; }
};

// A TraceEvent whose paths have been resolved to process-wide interned
// ids. The zero-copy wire decoder (wire::EventArena) produces these
// straight out of a network frame: the path bytes are interned once per
// dictionary entry, so replaying an event costs no string allocation.
// Both ids are always valid — an event without a secondary path carries
// the interned empty string, mirroring TraceEvent's empty `path2`.
struct InternedEvent {
  uint64_t seq = 0;
  Time time = 0;
  Pid pid = 0;
  Uid uid = 0;
  Op op = Op::kOpen;
  OpStatus status = OpStatus::kOk;
  PathId path = kInvalidPathId;
  PathId path2 = kInvalidPathId;
  Fd fd = -1;
  bool write = false;
  int32_t detail = 0;

  bool ok() const { return status == OpStatus::kOk; }
};

// Human-readable op name ("open", "unlink", ...).
std::string_view OpName(Op op);

// Inverse of OpName; returns false on an unknown name.
bool ParseOp(std::string_view name, Op* out);

std::string_view OpStatusName(OpStatus status);
bool ParseOpStatus(std::string_view name, OpStatus* out);

// True for operations that SEER treats as point-in-time references — an
// open immediately followed by a close (Section 4.8).
bool IsPointReference(Op op);

// True for ops that carry a meaningful primary path.
bool HasPath(Op op);

}  // namespace seer

#endif  // SRC_TRACE_EVENT_H_
