// Trace serialisation.
//
// Traces are stored one event per line in a plain-text format so they can be
// inspected, grepped, and diffed:
//
//   seq time pid uid op status path path2 fd write detail
//
// Paths are %-escaped (space, '%', and control characters), and an absent
// path is written as "-". The reader is tolerant of blank lines and
// '#'-comments so traces can be annotated by hand.
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/trace/event.h"
#include "src/util/status.h"

namespace seer {

// Escapes a path for the trace format.
std::string EscapePath(std::string_view path);

// Reverses EscapePath.
std::string UnescapePath(std::string_view escaped);

// Formats one event as a trace line (no trailing newline).
std::string FormatEvent(const TraceEvent& event);

// Parses one trace line; kInvalidArgument naming the bad field for
// malformed input.
StatusOr<TraceEvent> ParseEventLine(std::string_view line);

// Streaming writer.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out) : out_(out) {}

  void Write(const TraceEvent& event);
  size_t events_written() const { return events_written_; }

 private:
  std::ostream& out_;
  size_t events_written_ = 0;
};

// Streaming reader. Blank lines and '#'-comments are skipped silently.
class TraceReader {
 public:
  explicit TraceReader(std::istream& in) : in_(in) {}

  // The next event, an empty optional at end of stream, or the parse
  // error for a malformed line (kInvalidArgument naming the bad field).
  // A malformed line is counted and consumed, and the reader stays
  // usable: lenient callers log the status and call Next() again, strict
  // ones propagate it.
  StatusOr<std::optional<TraceEvent>> Next();

  size_t malformed_lines() const { return malformed_lines_; }

 private:
  std::istream& in_;
  size_t malformed_lines_ = 0;
};

// Convenience: parse an entire stream into memory.
std::vector<TraceEvent> ReadAllEvents(std::istream& in);

// Convenience: write all events to a stream.
void WriteAllEvents(std::ostream& out, const std::vector<TraceEvent>& events);

}  // namespace seer

#endif  // SRC_TRACE_TRACE_IO_H_
