#include "src/trace/binary_trace.h"

#include <istream>
#include <ostream>

namespace seer {

namespace {

constexpr const char* kMagic = kBinaryTraceMagic;
constexpr size_t kMagicLen = kBinaryTraceMagicLen;
constexpr uint64_t kMaxPathLen = kBinaryTraceMaxPathLen;
constexpr uint64_t kMaxDictionary = kBinaryTraceMaxDictionary;

uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t Unzigzag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out) : out_(out) {
  out_.write(kMagic, kMagicLen);
}

void BinaryTraceWriter::PutVarint(uint64_t value) {
  while (value >= 0x80) {
    out_.put(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out_.put(static_cast<char>(value));
}

void BinaryTraceWriter::PutZigzag(int64_t value) { PutVarint(Zigzag(value)); }

void BinaryTraceWriter::PutPath(const std::string& path) {
  const auto it = dictionary_.find(path);
  if (it != dictionary_.end()) {
    PutVarint(it->second);
    return;
  }
  const uint32_t id = static_cast<uint32_t>(dictionary_.size());
  dictionary_.emplace(path, id);
  PutVarint(id);  // == current dictionary size: signals a new entry
  PutVarint(path.size());
  out_.write(path.data(), static_cast<std::streamsize>(path.size()));
}

void BinaryTraceWriter::Write(const TraceEvent& e) {
  PutZigzag(static_cast<int64_t>(e.seq) - static_cast<int64_t>(last_seq_));
  last_seq_ = e.seq;
  PutZigzag(e.time - last_time_);
  last_time_ = e.time;
  PutVarint(static_cast<uint64_t>(e.pid));
  PutZigzag(e.uid);
  const uint8_t op_and_flags =
      static_cast<uint8_t>(static_cast<uint8_t>(e.op) | (e.write ? 0x80 : 0));
  out_.put(static_cast<char>(op_and_flags));
  out_.put(static_cast<char>(e.status));
  PutPath(e.path);
  PutPath(e.path2);
  PutZigzag(e.fd);
  PutZigzag(e.detail);
  ++events_written_;
}

BinaryTraceReader::BinaryTraceReader(std::istream& in) : in_(in) {
  char magic[kMagicLen] = {};
  in_.read(magic, kMagicLen);
  const auto got = static_cast<size_t>(in_.gcount());
  if (got == kMagicLen && std::equal(magic, magic + kMagicLen, kMagic)) {
    return;
  }
  // A short stream whose bytes are a prefix of the magic is truncation
  // (a crash-cut file or torn frame), not a different format.
  if (got < kMagicLen && std::equal(magic, magic + got, kMagic)) {
    status_ = Status::DataLoss("binary trace: truncated magic header");
  } else {
    status_ = Status::InvalidArgument("binary trace: missing or bad magic header");
  }
}

Status BinaryTraceReader::Fail(Status status) {
  status_ = status;
  return status_;
}

Status BinaryTraceReader::GetVarint(const char* field, uint64_t* value) {
  *value = 0;
  int shift = 0;
  for (;;) {
    const int byte = in_.get();
    if (byte == EOF) {
      return Status::DataLoss(std::string("binary trace: truncated ") + field + " after " +
                              std::to_string(events_read_) + " events");
    }
    if (shift > 63) {
      return Status::DataLoss(std::string("binary trace: oversized varint in ") + field);
    }
    *value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return Status::Ok();
    }
    shift += 7;
  }
}

Status BinaryTraceReader::GetZigzag(const char* field, int64_t* value) {
  uint64_t raw = 0;
  SEER_RETURN_IF_ERROR(GetVarint(field, &raw));
  *value = Unzigzag(raw);
  return Status::Ok();
}

Status BinaryTraceReader::GetPath(const char* field, std::string* path) {
  uint64_t id = 0;
  SEER_RETURN_IF_ERROR(GetVarint(field, &id));
  if (id < dictionary_.size()) {
    *path = dictionary_[id];
    return Status::Ok();
  }
  if (id != dictionary_.size() || id >= kMaxDictionary) {
    // Ids are assigned densely; a gap means the stream is corrupt.
    return Status::DataLoss(std::string("binary trace: non-dense dictionary id in ") + field);
  }
  uint64_t len = 0;
  SEER_RETURN_IF_ERROR(GetVarint(field, &len));
  if (len > kMaxPathLen) {
    return Status::DataLoss(std::string("binary trace: path length ") + std::to_string(len) +
                            " exceeds limit in " + field);
  }
  std::string bytes(len, '\0');
  in_.read(bytes.data(), static_cast<std::streamsize>(len));
  if (in_.gcount() != static_cast<std::streamsize>(len)) {
    return Status::DataLoss(std::string("binary trace: truncated path bytes in ") + field);
  }
  dictionary_.push_back(bytes);
  *path = std::move(bytes);
  return Status::Ok();
}

StatusOr<std::optional<TraceEvent>> BinaryTraceReader::Next() {
  if (!status_.ok()) {
    return status_;
  }
  if (in_.peek() == EOF) {
    // The previous event ended exactly at end of stream: a clean end.
    return std::optional<TraceEvent>();
  }
  TraceEvent e;
  int64_t seq_delta = 0;
  int64_t time_delta = 0;
  uint64_t pid = 0;
  int64_t uid = 0;
  Status s = GetZigzag("seq", &seq_delta);
  if (s.ok()) s = GetZigzag("time", &time_delta);
  if (s.ok()) s = GetVarint("pid", &pid);
  if (s.ok()) s = GetZigzag("uid", &uid);
  if (!s.ok()) {
    return Fail(std::move(s));
  }
  const int op_and_flags = in_.get();
  const int status = in_.get();
  if (op_and_flags == EOF || status == EOF) {
    return Fail(Status::DataLoss("binary trace: truncated op/status after " +
                                 std::to_string(events_read_) + " events"));
  }
  if ((op_and_flags & 0x7f) > static_cast<int>(Op::kChdir)) {
    return Fail(Status::DataLoss("binary trace: unknown op byte " +
                                 std::to_string(op_and_flags & 0x7f)));
  }
  if (status > static_cast<int>(OpStatus::kNotLocal)) {
    return Fail(Status::DataLoss("binary trace: unknown status byte " + std::to_string(status)));
  }
  int64_t fd = 0;
  int64_t detail = 0;
  s = GetPath("path", &e.path);
  if (s.ok()) s = GetPath("path2", &e.path2);
  if (s.ok()) s = GetZigzag("fd", &fd);
  if (s.ok()) s = GetZigzag("detail", &detail);
  if (!s.ok()) {
    return Fail(std::move(s));
  }
  last_seq_ = static_cast<uint64_t>(static_cast<int64_t>(last_seq_) + seq_delta);
  last_time_ += time_delta;
  e.seq = last_seq_;
  e.time = last_time_;
  e.pid = static_cast<Pid>(pid);
  e.uid = static_cast<Uid>(uid);
  e.op = static_cast<Op>(op_and_flags & 0x7f);
  e.write = (op_and_flags & 0x80) != 0;
  e.status = static_cast<OpStatus>(status);
  e.fd = static_cast<Fd>(fd);
  e.detail = static_cast<int32_t>(detail);
  ++events_read_;
  return std::optional<TraceEvent>(std::move(e));
}

}  // namespace seer
