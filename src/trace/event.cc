#include "src/trace/event.h"

#include <array>

namespace seer {

namespace {

struct OpNameEntry {
  Op op;
  std::string_view name;
};

constexpr std::array<OpNameEntry, 17> kOpNames = {{
    {Op::kOpen, "open"},
    {Op::kClose, "close"},
    {Op::kExec, "exec"},
    {Op::kExit, "exit"},
    {Op::kFork, "fork"},
    {Op::kStat, "stat"},
    {Op::kChmod, "chmod"},
    {Op::kCreate, "create"},
    {Op::kUnlink, "unlink"},
    {Op::kRename, "rename"},
    {Op::kLink, "link"},
    {Op::kMkdir, "mkdir"},
    {Op::kRmdir, "rmdir"},
    {Op::kOpenDir, "opendir"},
    {Op::kReadDir, "readdir"},
    {Op::kCloseDir, "closedir"},
    {Op::kChdir, "chdir"},
}};

constexpr std::array<std::string_view, 4> kStatusNames = {"ok", "noent", "access", "notlocal"};

}  // namespace

std::string_view OpName(Op op) {
  for (const auto& e : kOpNames) {
    if (e.op == op) {
      return e.name;
    }
  }
  return "unknown";
}

bool ParseOp(std::string_view name, Op* out) {
  for (const auto& e : kOpNames) {
    if (e.name == name) {
      *out = e.op;
      return true;
    }
  }
  return false;
}

std::string_view OpStatusName(OpStatus status) {
  return kStatusNames[static_cast<size_t>(status)];
}

bool ParseOpStatus(std::string_view name, OpStatus* out) {
  for (size_t i = 0; i < kStatusNames.size(); ++i) {
    if (kStatusNames[i] == name) {
      *out = static_cast<OpStatus>(i);
      return true;
    }
  }
  return false;
}

bool IsPointReference(Op op) {
  switch (op) {
    case Op::kStat:
    case Op::kChmod:
    case Op::kCreate:
    case Op::kUnlink:
    case Op::kRename:
    case Op::kLink:
    case Op::kMkdir:
    case Op::kRmdir:
      return true;
    default:
      return false;
  }
}

bool HasPath(Op op) {
  switch (op) {
    case Op::kClose:
    case Op::kExit:
    case Op::kFork:
    case Op::kCloseDir:
      return false;
    default:
      return true;
  }
}

}  // namespace seer
