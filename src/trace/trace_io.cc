#include "src/trace/trace_io.h"

#include <cctype>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

namespace seer {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

bool NeedsEscape(char c) {
  return c == ' ' || c == '%' || static_cast<unsigned char>(c) < 0x20;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

// Splits a line on single spaces.
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') {
      ++i;
    }
    size_t start = i;
    while (i < line.size() && line[i] != ' ') {
      ++i;
    }
    if (i > start) {
      fields.push_back(line.substr(start, i - start));
    }
  }
  return fields;
}

template <typename T>
bool ParseInt(std::string_view s, T* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

std::string EscapePath(std::string_view path) {
  std::string out;
  out.reserve(path.size());
  for (char c : path) {
    if (NeedsEscape(c)) {
      out += '%';
      out += kHexDigits[(static_cast<unsigned char>(c) >> 4) & 0xf];
      out += kHexDigits[static_cast<unsigned char>(c) & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapePath(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '%' && i + 2 < escaped.size()) {
      const int hi = HexValue(escaped[i + 1]);
      const int lo = HexValue(escaped[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
        continue;
      }
    }
    out += escaped[i];
  }
  return out;
}

std::string FormatEvent(const TraceEvent& e) {
  std::ostringstream out;
  out << e.seq << ' ' << e.time << ' ' << e.pid << ' ' << e.uid << ' ' << OpName(e.op) << ' '
      << OpStatusName(e.status) << ' ' << (e.path.empty() ? "-" : EscapePath(e.path)) << ' '
      << (e.path2.empty() ? "-" : EscapePath(e.path2)) << ' ' << e.fd << ' ' << (e.write ? 1 : 0)
      << ' ' << e.detail;
  return out.str();
}

StatusOr<TraceEvent> ParseEventLine(std::string_view line) {
  const auto fields = SplitFields(line);
  if (fields.size() != 11) {
    return Status::InvalidArgument("expected 11 fields, got " +
                                   std::to_string(fields.size()));
  }
  TraceEvent e;
  int write_flag = 0;
  static constexpr const char* kFieldNames[] = {"seq",    "time", "pid", "uid",
                                                "op",     "status", "path", "path2",
                                                "fd",     "write",  "detail"};
  const auto bad = [&](int i) {
    return Status::InvalidArgument("bad " + std::string(kFieldNames[i]) + " field '" +
                                   std::string(fields[i]) + "'");
  };
  if (!ParseInt(fields[0], &e.seq)) {
    return bad(0);
  }
  if (!ParseInt(fields[1], &e.time)) {
    return bad(1);
  }
  if (!ParseInt(fields[2], &e.pid)) {
    return bad(2);
  }
  if (!ParseInt(fields[3], &e.uid)) {
    return bad(3);
  }
  if (!ParseOp(fields[4], &e.op)) {
    return bad(4);
  }
  if (!ParseOpStatus(fields[5], &e.status)) {
    return bad(5);
  }
  if (!ParseInt(fields[8], &e.fd)) {
    return bad(8);
  }
  if (!ParseInt(fields[9], &write_flag)) {
    return bad(9);
  }
  if (!ParseInt(fields[10], &e.detail)) {
    return bad(10);
  }
  e.write = write_flag != 0;
  if (fields[6] != "-") {
    e.path = UnescapePath(fields[6]);
  }
  if (fields[7] != "-") {
    e.path2 = UnescapePath(fields[7]);
  }
  return e;
}

void TraceWriter::Write(const TraceEvent& event) {
  out_ << FormatEvent(event) << '\n';
  ++events_written_;
}

StatusOr<std::optional<TraceEvent>> TraceReader::Next() {
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    auto event = ParseEventLine(line);
    if (event.ok()) {
      return std::optional<TraceEvent>(*std::move(event));
    }
    ++malformed_lines_;
    return event.status();
  }
  return std::optional<TraceEvent>();
}

std::vector<TraceEvent> ReadAllEvents(std::istream& in) {
  TraceReader reader(in);
  std::vector<TraceEvent> events;
  for (;;) {
    auto next = reader.Next();
    if (!next.ok()) {
      continue;  // skip malformed lines, as before
    }
    if (!next->has_value()) {
      break;
    }
    events.push_back(std::move(**next));
  }
  return events;
}

void WriteAllEvents(std::ostream& out, const std::vector<TraceEvent>& events) {
  TraceWriter writer(out);
  for (const auto& e : events) {
    writer.Write(e);
  }
}

}  // namespace seer
