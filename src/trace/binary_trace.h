// Compact binary trace format.
//
// The paper's heaviest machine logged ~326 million operations; at that
// scale the human-readable text format (trace_io.h) is too bulky for
// archival. The binary format keeps long-running trace collection cheap:
//
//   * magic header "SEERBT1\n";
//   * varint (LEB128) integers, zigzag for signed fields;
//   * sequence numbers and timestamps delta-encoded against the previous
//     event (monotone streams shrink to 1-2 bytes each);
//   * paths interned in a growing dictionary: an event carries only the
//     dictionary index, with the bytes emitted once on first use.
//
// The reader is streaming and stops cleanly at truncation (a partial final
// event is dropped, matching how a crash-interrupted trace file looks).
#ifndef SRC_TRACE_BINARY_TRACE_H_
#define SRC_TRACE_BINARY_TRACE_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/trace/event.h"

namespace seer {

class BinaryTraceWriter {
 public:
  // Writes the header immediately.
  explicit BinaryTraceWriter(std::ostream& out);

  void Write(const TraceEvent& event);

  size_t events_written() const { return events_written_; }
  size_t dictionary_size() const { return dictionary_.size(); }

 private:
  void PutVarint(uint64_t value);
  void PutZigzag(int64_t value);
  // Emits the dictionary index for `path` (adding it on first use).
  void PutPath(const std::string& path);

  std::ostream& out_;
  std::unordered_map<std::string, uint32_t> dictionary_;
  uint64_t last_seq_ = 0;
  Time last_time_ = 0;
  size_t events_written_ = 0;
};

class BinaryTraceReader {
 public:
  // Validates the header; ok() is false on a bad magic.
  explicit BinaryTraceReader(std::istream& in);

  bool ok() const { return ok_; }

  // Next event, or nullopt at end of stream / truncation.
  std::optional<TraceEvent> Next();

  size_t events_read() const { return events_read_; }

 private:
  bool GetVarint(uint64_t* value);
  bool GetZigzag(int64_t* value);
  bool GetPath(std::string* path);

  std::istream& in_;
  bool ok_ = false;
  std::vector<std::string> dictionary_;
  uint64_t last_seq_ = 0;
  Time last_time_ = 0;
  size_t events_read_ = 0;
};

}  // namespace seer

#endif  // SRC_TRACE_BINARY_TRACE_H_
