// Compact binary trace format.
//
// The paper's heaviest machine logged ~326 million operations; at that
// scale the human-readable text format (trace_io.h) is too bulky for
// archival. The binary format keeps long-running trace collection cheap:
//
//   * magic header "SEERBT1\n";
//   * varint (LEB128) integers, zigzag for signed fields;
//   * sequence numbers and timestamps delta-encoded against the previous
//     event (monotone streams shrink to 1-2 bytes each);
//   * paths interned in a growing dictionary: an event carries only the
//     dictionary index, with the bytes emitted once on first use.
//
// The reader is streaming and reports decode failures as typed Status
// values, the same error surface as the persistence layer: a stream that
// ends mid-event (a crash-interrupted trace, a torn network frame)
// surfaces kDataLoss naming the field it died in, while a stream that
// ends exactly on an event boundary is a clean end. Lenient callers
// (seerctl replay warning about a torn tail) branch on the code; strict
// ones (the wire decoder) propagate it.
#ifndef SRC_TRACE_BINARY_TRACE_H_
#define SRC_TRACE_BINARY_TRACE_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/trace/event.h"
#include "src/util/status.h"

namespace seer {

// Format constants, shared with the zero-copy wire decoder
// (wire::EventArena) so both readers reject the same corruption.
inline constexpr char kBinaryTraceMagic[] = "SEERBT1\n";
inline constexpr size_t kBinaryTraceMagicLen = 8;
// Paths longer than this are rejected as corruption when reading.
inline constexpr uint64_t kBinaryTraceMaxPathLen = 4096;
inline constexpr uint64_t kBinaryTraceMaxDictionary = 1u << 28;

class BinaryTraceWriter {
 public:
  // Writes the header immediately.
  explicit BinaryTraceWriter(std::ostream& out);

  void Write(const TraceEvent& event);

  size_t events_written() const { return events_written_; }
  size_t dictionary_size() const { return dictionary_.size(); }

 private:
  void PutVarint(uint64_t value);
  void PutZigzag(int64_t value);
  // Emits the dictionary index for `path` (adding it on first use).
  void PutPath(const std::string& path);

  std::ostream& out_;
  std::unordered_map<std::string, uint32_t> dictionary_;
  uint64_t last_seq_ = 0;
  Time last_time_ = 0;
  size_t events_written_ = 0;
};

class BinaryTraceReader {
 public:
  // Validates the header; a missing or wrong magic latches
  // kInvalidArgument (ok() stays usable as a cheap format sniff).
  explicit BinaryTraceReader(std::istream& in);

  bool ok() const { return status_.ok(); }
  // The first error encountered, or OK. Errors latch: once a decode
  // fails, every later Next() returns the same status.
  const Status& status() const { return status_; }

  // Three outcomes: an event; an empty optional when the stream ends
  // exactly on an event boundary (clean end); or an error — kDataLoss
  // when an event is cut short or carries corrupt values, naming the
  // field, kInvalidArgument when the header was bad.
  StatusOr<std::optional<TraceEvent>> Next();

  size_t events_read() const { return events_read_; }

 private:
  Status GetVarint(const char* field, uint64_t* value);
  Status GetZigzag(const char* field, int64_t* value);
  Status GetPath(const char* field, std::string* path);
  // Latches and returns the given error.
  Status Fail(Status status);

  std::istream& in_;
  Status status_;
  std::vector<std::string> dictionary_;
  uint64_t last_seq_ = 0;
  Time last_time_ = 0;
  size_t events_read_ = 0;
};

}  // namespace seer

#endif  // SRC_TRACE_BINARY_TRACE_H_
