// Write-ahead log for the correlator's reference stream.
//
// Between snapshots, every sink event the correlator consumes — references,
// forks/exits, deletes, renames, exclusions — is appended here, so a crash
// loses at most the records not yet synced and recovery replays forward
// from the last checkpoint. The log is a flat record stream:
//
//   header  "SEERWAL1" | u64 generation
//   record  u8 type | u32 payload-size | u32 crc32(payload) | payload
//
// Pathnames are interned into a WAL-local dictionary: the first record
// mentioning a path emits a kPathDef assigning it the next dense index, and
// later records refer to the index. Replay rebuilds the dictionary as it
// scans, so the log is self-contained — PathIds are process-local and never
// written to disk.
//
// Replay is torn-tail tolerant: a truncated or CRC-damaged record ends the
// scan (everything before it is applied, the tail is reported), because a
// ragged final record is exactly what a crash mid-append leaves behind.
// Damage *before* the tail — an undefined path index, an unknown record
// type with a valid CRC — is corruption and fails with kDataLoss.
#ifndef SRC_CORE_WAL_H_
#define SRC_CORE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/observer/reference.h"
#include "src/util/bytes.h"
#include "src/util/fs.h"
#include "src/util/status.h"

namespace seer {

// Appends sink events to a single log file through an Fs. Records are
// buffered in memory and pushed to the Fs when the buffer passes
// flush_bytes (or on Flush/Sync); Sync additionally fsyncs, which is the
// durability point.
class WalWriter {
 public:
  WalWriter(Fs* fs, std::string path, uint64_t generation, size_t flush_bytes = 1 << 16);

  // Writes the header. Fails with kAlreadyExists if the file is present —
  // a generation's log is created exactly once, at checkpoint.
  Status Create();

  Status AppendReference(const FileReference& ref);
  Status AppendFork(Pid parent, Pid child);
  Status AppendExit(Pid pid);
  Status AppendDeleted(PathId path, Time time);
  Status AppendRenamed(PathId from, PathId to, Time time);
  Status AppendExcluded(PathId path);

  // Pushes buffered records to the Fs.
  Status Flush();
  // Flush + fsync: records before this call survive a crash after it.
  Status Sync();

  const std::string& path() const { return path_; }
  uint64_t generation() const { return generation_; }
  // Logical log size (header + everything appended, buffered or not);
  // drives the size-triggered checkpoint.
  uint64_t bytes_logged() const { return bytes_logged_; }
  uint64_t records_logged() const { return records_logged_; }

 private:
  // Dictionary index for `path`, emitting a kPathDef record first when new.
  uint32_t PathIndex(PathId path);
  Status AppendRecord(uint8_t type, const ByteWriter& payload);

  Fs* fs_;
  std::string path_;
  uint64_t generation_;
  size_t flush_bytes_;
  std::unordered_map<PathId, uint32_t> dictionary_;
  std::string buffer_;
  uint64_t bytes_logged_ = 0;
  uint64_t records_logged_ = 0;
};

struct WalReplayStats {
  uint64_t generation = 0;
  uint64_t records_applied = 0;
  uint64_t paths_defined = 0;
  // How the scan ended:
  //   kClean   — the log ends exactly on a record boundary.
  //   kTorn    — a truncated or CRC-damaged final record; the expected
  //              artifact of a crash mid-append. The prefix was applied.
  //   kCorrupt — an intact (CRC-valid) record whose contents are
  //              semantically impossible (undefined path index, unknown
  //              type). The prefix before it was applied, but this is
  //              damage, not a crash artifact; `corruption` explains it.
  enum class Tail { kClean, kTorn, kCorrupt };
  Tail tail = Tail::kClean;
  std::string corruption;
  uint64_t bytes_applied = 0;  // offset of the first unapplied byte
};

// Applies every intact record in `bytes` to `sink` in order, stopping at a
// torn or corrupt record (see WalReplayStats::Tail — records already
// applied stay applied). Fails outright only when the header itself is
// unusable, in which case nothing was applied. A null sink scans and
// validates without applying (`seerctl db verify`).
StatusOr<WalReplayStats> ReplayWal(std::string_view bytes, ReferenceSink* sink);

}  // namespace seer

#endif  // SRC_CORE_WAL_H_
