#include "src/core/hoard_daemon.h"

namespace seer {

HoardDaemon::HoardDaemon(Correlator* correlator, Observer* observer, HoardManager* manager,
                         MissLog* miss_log, InstallFn install, HoardManager::SizeFn size_of,
                         Config config)
    : correlator_(correlator),
      observer_(observer),
      manager_(manager),
      miss_log_(miss_log),
      install_(std::move(install)),
      size_of_(std::move(size_of)),
      config_(config) {}

bool HoardDaemon::MaybeRefill(Time now) {
  if (last_fill_ >= 0 && now - last_fill_ < config_.interval) {
    // No refill due, but a fat WAL still forces a compaction checkpoint so
    // crash recovery never has to replay an unbounded log.
    MaybeCheckpoint(/*after_refill=*/false);
    return false;
  }
  ForceRefill(now);
  return true;
}

HoardSelection HoardDaemon::ForceRefill(Time now) {
  // Files the user missed since the last fill are pinned so they (and, via
  // clustering, their projects) come along this time (Section 4.4).
  if (miss_log_ != nullptr) {
    for (const PathId path : miss_log_->TakeFilesToHoard()) {
      manager_->Pin(path);
    }
  }
  if (config_.investigate_fs != nullptr) {
    correlator_->RunInvestigators(*config_.investigate_fs);
  }
  if (config_.cluster_threads > 0) {
    correlator_->SetClusterThreads(config_.cluster_threads);
  }
  const ClusterSet clusters = correlator_->BuildClusters();
  // Server-side tenants have no local Observer; the always-hoard set is
  // then empty (that list is per-device user configuration).
  static const std::set<PathId> kNoAlwaysHoard;
  last_selection_ = manager_->ChooseHoard(
      *correlator_, clusters, observer_ != nullptr ? observer_->always_hoard() : kNoAlwaysHoard,
      size_of_);
  if (install_) {
    // Egress: the replication substrate deals in pathnames, so strings
    // reappear exactly here.
    install_(last_selection_.PathStrings());
  }
  last_fill_ = now;
  ++refills_;
  MaybeCheckpoint(/*after_refill=*/true);
  return last_selection_;
}

void HoardDaemon::MaybeCheckpoint(bool after_refill) {
  if (config_.durable == nullptr) {
    return;
  }
  DurableCorrelator& durable = *config_.durable;
  // Opportunistic harvest: a background checkpoint that finished since the
  // last tick surfaces its outcome and stats here, even when no new
  // trigger fires this tick.
  if (durable.CheckpointDone()) {
    last_checkpoint_status_ = durable.FinishCheckpoint();
    last_checkpoint_stats_ = durable.last_checkpoint_stats();
  }
  if (!after_refill && durable.wal_bytes() < config_.wal_checkpoint_bytes) {
    return;
  }
  // BeginCheckpoint settles any still-running checkpoint, stalls only for
  // the seal + WAL rotation, and leaves encode/write running off-thread —
  // the refill path never waits on the disk. A non-ok return is either the
  // settled previous checkpoint's failure or a failure to rotate; either
  // way the next trigger retries (forced full).
  const Status begun = durable.BeginCheckpoint();
  last_checkpoint_stats_ = durable.last_checkpoint_stats();
  if (durable.checkpoint_in_flight()) {
    ++checkpoints_;
  }
  if (!begun.ok()) {
    last_checkpoint_status_ = begun;
  }
}

}  // namespace seer
