// Per-process reference streams and semantic-distance measurement.
//
// Implements the three distance definitions of Section 3.1.1 — temporal,
// sequence-based, and lifetime-based — on a per-process basis (Section 4.7):
// each process has its own reference history, histories are inherited at
// fork, and a child's recent history is merged back into its parent at exit
// so relationships spanning the two can still be detected.
//
// For the production lifetime measure (Definition 3) the distance from an
// open of A to a later open of B is 0 when A is still open, and otherwise
// the number of intervening opens including B's own (equivalently,
// openindex(B) - openindex(A) for the most recent open of A — the "closest
// pair" rule of the paper's footnote). Distances larger than the horizon M
// are clamped to M (the compensation insertion of Section 3.1.3), and only
// files opened within the last M opens generate updates at all.
//
// Storage is allocation-free in steady state: per-stream file state lives in
// an open-addressing FlatMap (no node allocation per tracked file) and the
// recent-open window is a power-of-two ring buffer (no deque block churn).
// Files currently held open are additionally tracked in a sorted id vector,
// which makes the distance-0 emission order deterministic — ascending
// FileId — rather than hash-iteration order, so a stream restored from a
// snapshot emits byte-identical observations to the live instance.
#ifndef SRC_CORE_REFERENCE_STREAMS_H_
#define SRC_CORE_REFERENCE_STREAMS_H_

#include <unordered_map>
#include <vector>

#include "src/core/file_table.h"
#include "src/core/params.h"
#include "src/trace/event.h"
#include "src/util/flat_map.h"

namespace seer {

// One measured distance from an earlier reference to the current one.
struct DistanceObservation {
  FileId from = kInvalidFileId;
  FileId to = kInvalidFileId;
  double distance = 0.0;
};

class ReferenceStreams {
 public:
  struct FileState {
    uint64_t last_open_index = 0;
    uint64_t last_ref_index = 0;
    Time last_open_time = 0;
    uint32_t open_nesting = 0;
    // Set when a long-held file closed outside the horizon: its true
    // distance to later references exceeds M, so M is reported instead
    // (the compensation insertion of Section 3.1.3).
    bool compensated = false;
  };

  // Fixed-stride ring of recent opens, (file, open index); oldest first.
  // Stale entries (superseded by a more recent open of the same file) are
  // skipped lazily by readers. Grows by linearizing into a doubled buffer.
  class WindowRing {
   public:
    struct Entry {
      FileId file = kInvalidFileId;
      uint64_t idx = 0;
    };

    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    const Entry& front() const { return slots_[head_]; }

    void push_back(FileId file, uint64_t idx) {
      if (count_ == slots_.size()) {
        Grow();
      }
      slots_[(head_ + count_) & (slots_.size() - 1)] = {file, idx};
      ++count_;
    }

    void pop_front() {
      head_ = (head_ + 1) & (slots_.size() - 1);
      --count_;
    }

    // Visits (file, idx) oldest to newest.
    template <typename Fn>
    void ForEach(Fn&& fn) const {
      const size_t mask = slots_.size() - 1;
      for (size_t i = 0; i < count_; ++i) {
        const Entry& e = slots_[(head_ + i) & mask];
        fn(e.file, e.idx);
      }
    }

    size_t MemoryBytes() const { return slots_.capacity() * sizeof(Entry); }

   private:
    void Grow() {
      std::vector<Entry> bigger(slots_.size() * 2);
      const size_t mask = slots_.size() - 1;
      for (size_t i = 0; i < count_; ++i) {
        bigger[i] = slots_[(head_ + i) & mask];
      }
      slots_ = std::move(bigger);
      head_ = 0;
    }

    std::vector<Entry> slots_ = std::vector<Entry>(16);
    size_t head_ = 0;
    size_t count_ = 0;
  };

  // One process's reference history. Copyable (fork inherits by copy).
  struct Stream {
    Pid parent = 0;
    uint64_t open_counter = 0;
    uint64_t ref_counter = 0;
    FlatMap<FileId, FileState> files{kInvalidFileId};
    WindowRing window;
    // Files with open_nesting > 0, sorted ascending — the deterministic
    // iteration order for distance-0 emission.
    std::vector<FileId> open_files;
    // Last mutation epoch, for delta checkpoints. Stamped at the sequential
    // entry points only (GetStream/Prepare/OnFork/OnExit): the parallel
    // measure phase mutates streams Prepare already handed out, so the
    // shared epoch counter is never touched off the sequential path.
    uint64_t dirty_stamp = 0;
  };

  explicit ReferenceStreams(const SeerParams& params) : params_(params) {}

  // Live-tuning override: distance measurement picks up the new horizon /
  // distance-kind knobs from the next reference on.
  void OverrideParams(const SeerParams& params) { params_ = params; }

  // An open of `file` by `pid`: appends to `out` the distance observations
  // from every file referenced within the horizon to `file`. Out-param so
  // the correlator can reuse one scratch buffer — the per-reference hot
  // path allocates nothing in steady state.
  void OnBegin(Pid pid, FileId file, Time time, std::vector<DistanceObservation>* out);

  // The matching close.
  void OnEnd(Pid pid, FileId file);

  // A point reference (open immediately followed by close).
  void OnPoint(Pid pid, FileId file, Time time, std::vector<DistanceObservation>* out);

  // Fork: the child inherits a copy of the parent's history.
  void OnFork(Pid parent, Pid child);

  // Exit: the process's recent history is merged into its parent's stream
  // (quietly — no new observations; future parent references will see the
  // child's files), then discarded.
  void OnExit(Pid pid);

  // --- batched ingest support ----------------------------------------------
  //
  // The sharded ingest pipeline resolves each reference's stream up front
  // (sequentially — Prepare may create the stream) and then measures whole
  // shards in parallel. Measure* touch only the given stream plus the
  // immutable params, so concurrent calls on distinct streams are safe.

  // Stream handle for `pid` (created if absent; honors the global-stream
  // ablation). Pointers are stable across Prepare calls for other pids.
  Stream* Prepare(Pid pid);

  void MeasureBegin(Stream* s, FileId file, Time time,
                    std::vector<DistanceObservation>* out) {
    Reference(*s, file, time, /*keep_open=*/true, out);
  }
  void MeasurePoint(Stream* s, FileId file, Time time,
                    std::vector<DistanceObservation>* out) {
    Reference(*s, file, time, /*keep_open=*/false, out);
  }
  void MeasureEnd(Stream* s, FileId file) { EndOn(*s, file); }

  size_t stream_count() const { return streams_.size(); }

  // Approximate bytes used (Section 5.3 memory accounting).
  size_t MemoryBytes() const;

  // --- persistence support --------------------------------------------------
  //
  // Streams are part of the crash-consistent snapshot: a recovered
  // correlator must measure the same distances for post-checkpoint
  // references as the never-crashed instance, and those distances depend on
  // the open windows live at checkpoint time. The exported form is fully
  // ordered (streams by pid, files by id) so snapshot bytes are
  // deterministic regardless of hash-map iteration order.

  struct ExportedFileState {
    FileId file = kInvalidFileId;
    uint64_t last_open_index = 0;
    uint64_t last_ref_index = 0;
    Time last_open_time = 0;
    uint32_t open_nesting = 0;
    bool compensated = false;
  };

  struct ExportedStream {
    Pid pid = 0;
    Pid parent = 0;
    uint64_t open_counter = 0;
    uint64_t ref_counter = 0;
    std::vector<ExportedFileState> files;              // sorted by file id
    std::vector<std::pair<FileId, uint64_t>> window;   // oldest first
  };

  std::vector<ExportedStream> Export() const;  // sorted by pid
  void Restore(const std::vector<ExportedStream>& streams);

  // --- delta-checkpoint support --------------------------------------------
  //
  // A delta snapshot carries only the streams touched since the last sealed
  // cut, plus the pids of streams that exited since then (so recovery can
  // drop them from the base). Stamps are conservative: a stamped stream may
  // be byte-identical to its base copy, but an unstamped one never differs.

  // Current mutation epoch (stamped value of the latest stream mutation).
  uint64_t mutation_epoch() const { return mutation_epoch_; }

  // Exported copies of streams stamped after `epoch`, sorted by pid.
  std::vector<ExportedStream> ExportDirtySince(uint64_t epoch) const;

  // Pids of streams removed (process exit) after `epoch`, sorted + deduped.
  std::vector<Pid> RemovedSince(uint64_t epoch) const;

  // Drops removal-log entries at or before `epoch` (called once the cut
  // they were exported under is durably committed).
  void TrimRemovalLog(uint64_t epoch);

 private:
  Stream& GetStream(Pid pid);
  void Reference(Stream& s, FileId file, Time time, bool keep_open,
                 std::vector<DistanceObservation>* out);
  void EndOn(Stream& s, FileId file);
  void PruneWindow(Stream& s);
  static void OpenAdd(Stream& s, FileId file);
  static void OpenRemove(Stream& s, FileId file);
  static ExportedStream ExportOne(Pid pid, const Stream& s);

  SeerParams params_;
  std::unordered_map<Pid, Stream> streams_;
  uint64_t mutation_epoch_ = 0;
  // (epoch, pid) per OnExit-erased stream, append-ordered (epoch ascending).
  std::vector<std::pair<uint64_t, Pid>> removals_;
};

}  // namespace seer

#endif  // SRC_CORE_REFERENCE_STREAMS_H_
