// Per-process reference streams and semantic-distance measurement.
//
// Implements the three distance definitions of Section 3.1.1 — temporal,
// sequence-based, and lifetime-based — on a per-process basis (Section 4.7):
// each process has its own reference history, histories are inherited at
// fork, and a child's recent history is merged back into its parent at exit
// so relationships spanning the two can still be detected.
//
// For the production lifetime measure (Definition 3) the distance from an
// open of A to a later open of B is 0 when A is still open, and otherwise
// the number of intervening opens including B's own (equivalently,
// openindex(B) - openindex(A) for the most recent open of A — the "closest
// pair" rule of the paper's footnote). Distances larger than the horizon M
// are clamped to M (the compensation insertion of Section 3.1.3), and only
// files opened within the last M opens generate updates at all.
#ifndef SRC_CORE_REFERENCE_STREAMS_H_
#define SRC_CORE_REFERENCE_STREAMS_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "src/core/file_table.h"
#include "src/core/params.h"
#include "src/trace/event.h"

namespace seer {

// One measured distance from an earlier reference to the current one.
struct DistanceObservation {
  FileId from = kInvalidFileId;
  FileId to = kInvalidFileId;
  double distance = 0.0;
};

class ReferenceStreams {
 public:
  explicit ReferenceStreams(const SeerParams& params) : params_(params) {}

  // An open of `file` by `pid`: appends to `out` the distance observations
  // from every file referenced within the horizon to `file`. Out-param so
  // the correlator can reuse one scratch buffer — the per-reference hot
  // path allocates nothing in steady state.
  void OnBegin(Pid pid, FileId file, Time time, std::vector<DistanceObservation>* out);

  // The matching close.
  void OnEnd(Pid pid, FileId file);

  // A point reference (open immediately followed by close).
  void OnPoint(Pid pid, FileId file, Time time, std::vector<DistanceObservation>* out);

  // Fork: the child inherits a copy of the parent's history.
  void OnFork(Pid parent, Pid child);

  // Exit: the process's recent history is merged into its parent's stream
  // (quietly — no new observations; future parent references will see the
  // child's files), then discarded.
  void OnExit(Pid pid);

  size_t stream_count() const { return streams_.size(); }

  // Approximate bytes used (Section 5.3 memory accounting).
  size_t MemoryBytes() const;

  // --- persistence support --------------------------------------------------
  //
  // Streams are part of the crash-consistent snapshot: a recovered
  // correlator must measure the same distances for post-checkpoint
  // references as the never-crashed instance, and those distances depend on
  // the open windows live at checkpoint time. The exported form is fully
  // ordered (streams by pid, files by id) so snapshot bytes are
  // deterministic regardless of hash-map iteration order.

  struct ExportedFileState {
    FileId file = kInvalidFileId;
    uint64_t last_open_index = 0;
    uint64_t last_ref_index = 0;
    Time last_open_time = 0;
    uint32_t open_nesting = 0;
    bool compensated = false;
  };

  struct ExportedStream {
    Pid pid = 0;
    Pid parent = 0;
    uint64_t open_counter = 0;
    uint64_t ref_counter = 0;
    std::vector<ExportedFileState> files;              // sorted by file id
    std::vector<std::pair<FileId, uint64_t>> window;   // oldest first
  };

  std::vector<ExportedStream> Export() const;  // sorted by pid
  void Restore(const std::vector<ExportedStream>& streams);

 private:
  struct FileState {
    uint64_t last_open_index = 0;
    uint64_t last_ref_index = 0;
    Time last_open_time = 0;
    uint32_t open_nesting = 0;
    // Set when a long-held file closed outside the horizon: its true
    // distance to later references exceeds M, so M is reported instead
    // (the compensation insertion of Section 3.1.3).
    bool compensated = false;
  };

  struct Stream {
    Pid parent = 0;
    uint64_t open_counter = 0;
    uint64_t ref_counter = 0;
    std::unordered_map<FileId, FileState> files;
    // Recent opens, (file, open index); stale entries (superseded by a more
    // recent open of the same file) are skipped lazily.
    std::deque<std::pair<FileId, uint64_t>> window;
  };

  Stream& GetStream(Pid pid);
  void Reference(Stream& s, FileId file, Time time, bool keep_open,
                 std::vector<DistanceObservation>* out);
  void PruneWindow(Stream& s);

  SeerParams params_;
  std::unordered_map<Pid, Stream> streams_;
};

}  // namespace seer

#endif  // SRC_CORE_REFERENCE_STREAMS_H_
