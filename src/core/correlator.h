// The SEER correlator.
//
// Consumes the observer's cleaned reference stream, measures semantic
// distances between file references on a per-process basis, maintains the
// per-file nearest-neighbor relation table, and — when new hoard contents
// are to be chosen — runs the clustering algorithm to group files into
// projects (Section 2). External investigators can be registered; their
// relations are folded into the clustering decision (Sections 3.2, 3.3.3).
//
// The per-reference hot path is identity-only: the observer hands over
// interned PathIds, the file table maps them to dense FileIds with a flat
// array, and distance observations accumulate in a reused scratch buffer —
// no heap allocation once a path has been seen. Strings reappear only on
// the query egress (Distance/NeighborPaths diagnostics, persistence).
//
// Two ingest paths produce identical state:
//
//  * the serial ReferenceSink methods (one event at a time), and
//  * IngestBatch — a batched, sharded pipeline that partitions each batch
//    of events by owning process stream, measures semantic distances for
//    all shards in parallel (measurement is pure per-stream), and folds
//    the observations into the relation table partitioned by the table's
//    256-file stripes: one worker folds each stripe's observations in
//    trace order, and the cross-stripe side effects are replayed
//    sequentially afterwards. Per-file relation state depends only on that
//    file's own observation subsequence (same stripe, same worker, trace
//    order), the observations' global ordinals, liveness flags frozen for
//    the segment, and stateless tie-break draws — all invariant in the
//    thread count — so the resulting state is bit-identical to serial
//    ingest at any thread count (DESIGN.md §15).
#ifndef SRC_CORE_CORRELATOR_H_
#define SRC_CORE_CORRELATOR_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/clustering.h"
#include "src/core/file_table.h"
#include "src/core/investigator.h"
#include "src/core/params.h"
#include "src/core/reference_streams.h"
#include "src/core/relation_table.h"
#include "src/core/snapshot_codec.h"
#include "src/observer/reference.h"
#include "src/util/flat_map.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace seer {

// One queued sink event, POD so ring buffers and batch vectors never
// allocate per event. Shared by the AsyncCorrelator queue and IngestBatcher.
struct IngestEvent {
  enum class Kind : uint8_t {
    kReference,
    kFork,
    kExit,
    kDeleted,
    kRenamed,
    kExcluded,
  };
  Kind kind = Kind::kReference;
  FileReference ref;                 // kReference
  Pid parent = 0;                    // kFork
  Pid child = 0;                     // kFork / kExit (child doubles as the pid)
  PathId path = kInvalidPathId;      // kDeleted / kRenamed(from) / kExcluded
  PathId path2 = kInvalidPathId;     // kRenamed(to)
  Time time = 0;
};

// Counters describing what the batched ingest path actually did.
struct IngestStats {
  uint64_t batches = 0;         // IngestBatch calls
  uint64_t segments = 0;        // parallel measure/fold rounds
  uint64_t shards = 0;          // per-segment stream shards, summed
  uint64_t refs = 0;            // reference events ingested via batches
  uint64_t barriers = 0;        // non-reference events (segment cuts)
  uint64_t max_shard_refs = 0;  // largest single shard seen
  // Phase timing (accumulated wall time) and fold-plane shape, for the
  // `seerctl replay --stats` per-phase breakdown.
  uint64_t measure_us = 0;       // parallel distance measurement
  uint64_t fold_us = 0;          // relation fold (either mode) + log replay
  uint64_t parallel_folds = 0;   // segments folded by the sharded path
  uint64_t serial_folds = 0;     // segments under the serial cutoff
  uint64_t fold_stripes = 0;     // stripes folded by the sharded path, summed
};

class Correlator : public ReferenceSink {
 public:
  explicit Correlator(const SeerParams& params = SeerParams(), uint64_t seed = 0x5ee8);

  // --- ReferenceSink ------------------------------------------------------
  void OnReference(const FileReference& ref) override;
  void OnProcessFork(Pid parent, Pid child) override;
  void OnProcessExit(Pid pid) override;
  void OnFileDeleted(PathId path, Time time) override;
  void OnFileRenamed(PathId from, PathId to, Time time) override;
  void OnFileExcluded(PathId path) override;

  // --- Batched ingest ------------------------------------------------------

  // Applies `count` events as the sharded pipeline: consecutive reference
  // events form segments (cut by the non-reference barrier events and by
  // references that would resurrect a deleted file, which flips a liveness
  // flag mid-run); each segment is partitioned by owning stream, measured
  // in parallel, and folded into the relation table in trace order. End
  // state is bit-identical to feeding the same events through the serial
  // sink methods, at any thread count.
  void IngestBatch(const IngestEvent* events, size_t count);

  // Measure-phase thread count for batched ingest; 0 restores the default
  // (SEER_THREADS / hardware concurrency).
  void SetIngestThreads(int threads);
  int ingest_threads() const;

  // Run all parallel phases (ingest measurement and cluster scoring) on a
  // caller-owned pool instead of private ones. The multi-tenant router
  // multiplexes one pool across every resident tenant this way; per-tenant
  // worker threads would not scale. nullptr restores private pools.
  // Results are unchanged either way — every parallel phase is
  // bit-identical at any thread count, and contended dispatches fall back
  // to inline execution (see ThreadPool).
  void UseSharedPool(ThreadPool* pool);

  const IngestStats& ingest_stats() const { return ingest_stats_; }

  // --- Investigators ------------------------------------------------------

  // Registers an investigator; it runs against all known live files each
  // time RunInvestigators() is called (typically just before clustering).
  void AddInvestigator(std::unique_ptr<Investigator> investigator);
  void RunInvestigators(const SimFilesystem& fs);

  // Direct injection of relations (e.g. from a replayed investigator log).
  void AddInvestigatedRelation(const InvestigatedRelation& relation);

  // --- Clustering & queries ----------------------------------------------

  // Groups all live files into (possibly overlapping) projects.
  ClusterSet BuildClusters() const;

  // Scoring-phase thread count for cluster builds; 0 restores the default
  // (SEER_THREADS / hardware concurrency).
  void SetClusterThreads(int threads) { clusters_.set_threads(threads); }
  int cluster_threads() const { return clusters_.threads(); }

  // Incremental cluster rebuilds are on by default; benches turn them off
  // to measure the full-build baseline.
  void SetIncrementalClustering(bool on) { clusters_.set_incremental(on); }

  // What the most recent BuildClusters actually did.
  const ClusterBuildStats& last_cluster_stats() const {
    return clusters_.last_build_stats();
  }

  const FileTable& files() const { return files_; }
  const RelationTable& relations() const { return relations_; }
  const SeerParams& params() const { return params_; }

  // Live-tuning override (`seerctl params set` against a running
  // service): swaps the dynamically-read knobs on this correlator and its
  // relation table, streams, and cluster builder. max_neighbors is pinned
  // to the current value — it bakes the relation slab's geometry at
  // construction, so changing it takes an evict/restore cycle with new
  // defaults, not an override. Call with no batched ingest in flight
  // (flush the batcher first) so the boundary between old- and new-params
  // measurement is deterministic.
  void OverrideTuningParams(const SeerParams& params);

  // Mean semantic distance from -> to, or negative when untracked.
  // String-keyed diagnostic egress.
  double Distance(const std::string& from, const std::string& to) const;

  // Neighbor paths of a file, for diagnostics.
  std::vector<std::string> NeighborPaths(const std::string& path) const;

  uint64_t references_processed() const { return references_processed_; }

  // Approximate resident bytes (file table + relation lists + streams),
  // for the Section 5.3 memory bench.
  size_t MemoryBytes() const;

  // --- persistence ------------------------------------------------------------
  // Two formats serve two jobs:
  //
  //  * SaveTo/LoadFrom — the versioned *text* format: greppable, diffable,
  //    hand-editable. Per-process reference streams and the tie-break RNG
  //    are not saved; after a reload, distance accumulation resumes with
  //    fresh windows. This is the portable dump (`seerctl db load -o ...`).
  //
  //  * EncodeSnapshot/DecodeSnapshot — the *binary* crash-consistent
  //    snapshot used by SnapshotStore: CRC32-checksummed sections covering
  //    params, the path table, the file table (purge queue included), the
  //    relation table (RNG state included), and the live reference
  //    streams. Decoding a snapshot restores the complete learning state,
  //    so replaying the WAL on top reproduces the never-crashed
  //    correlator byte for byte.
  void SaveTo(std::ostream& out) const;
  static StatusOr<std::unique_ptr<Correlator>> LoadFrom(std::istream& in);

  std::string EncodeSnapshot() const;
  static StatusOr<std::unique_ptr<Correlator>> DecodeSnapshot(std::string_view bytes);

  // --- checkpoint plane ----------------------------------------------------
  //
  // SealSnapshot deep-copies everything a checkpoint needs (the only work
  // done while ingest is paused); EncodeSealedSnapshot then serializes the
  // copy off-thread. EncodeSnapshot() above is now a convenience wrapper:
  // a full seal encoded serially, used by tests and the equality oracle.

  struct SealRequest {
    bool delta = false;
    uint64_t base_generation = 0;  // generation the delta applies over
    // Epoch cuts of the base generation; the seal exports only relation
    // stripes / streams touched after them. Ignored for a full seal.
    uint64_t relation_epoch = 0;
    uint64_t stream_epoch = 0;
  };
  SealedSnapshot SealSnapshot(const SealRequest& req) const;
  SealedSnapshot SealSnapshot() const { return SealSnapshot(SealRequest()); }

  // v1 single-RELS-section encoding, kept for wire-compat tests.
  std::string EncodeSnapshotLegacyV1() const;

  // Decodes a base snapshot plus its delta chain (oldest first; a single
  // full snapshot is the one-element chain). v2 relation stripes decode in
  // parallel on `pool` straight into the slab; nullptr decodes serially.
  static StatusOr<std::unique_ptr<Correlator>> DecodeSnapshotChain(
      const std::vector<std::string_view>& chain, ThreadPool* pool = nullptr);

  // Drops stream-removal log entries up to `epoch` once the checkpoint
  // that exported them is durable.
  void TrimStreamRemovals(uint64_t epoch) { streams_.TrimRemovalLog(epoch); }

 private:
  static StatusOr<std::unique_ptr<Correlator>> DecodeSnapshotV1(std::string_view bytes);

  // --- batched ingest plumbing (state reused across segments) --------------
  struct PendingRef {
    RefKind kind = RefKind::kPoint;
    FileId id = kInvalidFileId;
    Time time = 0;
  };
  struct MeasuredObs {
    FileId from = kInvalidFileId;
    FileId to = kInvalidFileId;
    double distance = 0.0;
    int32_t hint = -1;  // pre-computed relation-table slot of (from, to)
  };
  struct RefLoc {
    uint32_t shard = 0;
    uint32_t index = 0;  // position within the shard's ref list
  };
  struct IngestShard {
    ReferenceStreams::Stream* stream = nullptr;
    std::vector<PendingRef> refs;
    std::vector<MeasuredObs> obs;       // filtered observations, ref-ordered
    std::vector<uint32_t> offsets;      // obs range of ref i: [off[i], off[i+1])
    std::vector<DistanceObservation> scratch;
  };

  // Observations below this count fold serially: dispatching a handful of
  // folds across workers costs more than the folds themselves.
  static constexpr size_t kParallelFoldMinObs = 512;

  // One observation's position in the stripe-partitioned fold worklist.
  struct FoldItem {
    uint32_t shard = 0;  // owning IngestShard
    uint32_t index = 0;  // index into that shard's obs array
    uint32_t ord = 0;    // 1-based position in the segment's trace order
  };

  void AddRefToSegment(RefKind kind, Pid pid, FileId id, Time time);
  void FlushSegment();
  void FoldSegmentSharded(size_t total_obs);
  void MeasureShard(IngestShard* shard);
  ThreadPool* IngestPool();

  SeerParams params_;
  FileTable files_;
  RelationTable relations_;
  ReferenceStreams streams_;
  ClusterBuilder clusters_;
  std::vector<std::unique_ptr<Investigator>> investigators_;
  std::vector<DistanceObservation> scratch_obs_;  // reused per reference
  uint64_t references_processed_ = 0;
  uint64_t global_ref_seq_ = 0;

  std::vector<IngestShard> shards_;
  size_t active_shards_ = 0;
  FlatMap<uint64_t, uint32_t> shard_of_pid_{0};  // key = pid + 1 (0 reserved)
  std::vector<RefLoc> ref_order_;                // segment refs in trace order
  // Sharded-fold scratch, reused across segments: per-stripe observation
  // counts / bucket cursors, the stripe-partitioned worklist (trace order
  // within each bucket), the touched-stripe list, and per-stripe logs.
  std::vector<uint32_t> stripe_offsets_;
  std::vector<uint32_t> stripe_cursor_;
  std::vector<FoldItem> fold_items_;
  std::vector<uint32_t> touched_stripes_;
  std::vector<RelationTable::StripeFoldLog> fold_logs_;
  IngestStats ingest_stats_;
  int ingest_threads_ = 0;
  std::unique_ptr<ThreadPool> ingest_pool_;
  int ingest_pool_threads_ = 0;
  ThreadPool* shared_pool_ = nullptr;  // not owned; overrides ingest_pool_
};

// Accumulates sink events and applies them to a Correlator via IngestBatch
// once `capacity` have gathered (or on explicit Flush). Not thread-safe;
// flush before reading the correlator.
class IngestBatcher {
 public:
  explicit IngestBatcher(Correlator* correlator, size_t capacity = 1024)
      : correlator_(correlator), capacity_(capacity == 0 ? 1 : capacity) {
    events_.reserve(capacity_);
  }

  void Add(const IngestEvent& event) {
    events_.push_back(event);
    if (events_.size() >= capacity_) {
      Flush();
    }
  }

  void Flush() {
    if (events_.empty()) {
      return;
    }
    correlator_->IngestBatch(events_.data(), events_.size());
    events_.clear();
  }

  bool empty() const { return events_.empty(); }

 private:
  Correlator* correlator_;
  size_t capacity_;
  std::vector<IngestEvent> events_;
};

// ReferenceSink adapter over IngestBatcher: drop it between an observer and
// a correlator to get batched (parallel-measure) replay with unchanged
// semantics. The destructor flushes the tail batch.
class BatchingSink : public ReferenceSink {
 public:
  explicit BatchingSink(Correlator* correlator, size_t capacity = 1024)
      : batcher_(correlator, capacity) {}
  ~BatchingSink() override { batcher_.Flush(); }

  void OnReference(const FileReference& ref) override {
    IngestEvent e;
    e.kind = IngestEvent::Kind::kReference;
    e.ref = ref;
    batcher_.Add(e);
  }
  void OnProcessFork(Pid parent, Pid child) override {
    IngestEvent e;
    e.kind = IngestEvent::Kind::kFork;
    e.parent = parent;
    e.child = child;
    batcher_.Add(e);
  }
  void OnProcessExit(Pid pid) override {
    IngestEvent e;
    e.kind = IngestEvent::Kind::kExit;
    e.child = pid;
    batcher_.Add(e);
  }
  void OnFileDeleted(PathId path, Time time) override {
    IngestEvent e;
    e.kind = IngestEvent::Kind::kDeleted;
    e.path = path;
    e.time = time;
    batcher_.Add(e);
  }
  void OnFileRenamed(PathId from, PathId to, Time time) override {
    IngestEvent e;
    e.kind = IngestEvent::Kind::kRenamed;
    e.path = from;
    e.path2 = to;
    e.time = time;
    batcher_.Add(e);
  }
  void OnFileExcluded(PathId path) override {
    IngestEvent e;
    e.kind = IngestEvent::Kind::kExcluded;
    e.path = path;
    batcher_.Add(e);
  }

  void Flush() { batcher_.Flush(); }

 private:
  IngestBatcher batcher_;
};

}  // namespace seer

#endif  // SRC_CORE_CORRELATOR_H_
