// The SEER correlator.
//
// Consumes the observer's cleaned reference stream, measures semantic
// distances between file references on a per-process basis, maintains the
// per-file nearest-neighbor relation table, and — when new hoard contents
// are to be chosen — runs the clustering algorithm to group files into
// projects (Section 2). External investigators can be registered; their
// relations are folded into the clustering decision (Sections 3.2, 3.3.3).
//
// The per-reference hot path is identity-only: the observer hands over
// interned PathIds, the file table maps them to dense FileIds with a flat
// array, and distance observations accumulate in a reused scratch buffer —
// no heap allocation once a path has been seen. Strings reappear only on
// the query egress (Distance/NeighborPaths diagnostics, persistence).
#ifndef SRC_CORE_CORRELATOR_H_
#define SRC_CORE_CORRELATOR_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/clustering.h"
#include "src/core/file_table.h"
#include "src/core/investigator.h"
#include "src/core/params.h"
#include "src/core/reference_streams.h"
#include "src/core/relation_table.h"
#include "src/observer/reference.h"
#include "src/util/status.h"

namespace seer {

class Correlator : public ReferenceSink {
 public:
  explicit Correlator(const SeerParams& params = SeerParams(), uint64_t seed = 0x5ee8);

  // --- ReferenceSink ------------------------------------------------------
  void OnReference(const FileReference& ref) override;
  void OnProcessFork(Pid parent, Pid child) override;
  void OnProcessExit(Pid pid) override;
  void OnFileDeleted(PathId path, Time time) override;
  void OnFileRenamed(PathId from, PathId to, Time time) override;
  void OnFileExcluded(PathId path) override;

  // --- Investigators ------------------------------------------------------

  // Registers an investigator; it runs against all known live files each
  // time RunInvestigators() is called (typically just before clustering).
  void AddInvestigator(std::unique_ptr<Investigator> investigator);
  void RunInvestigators(const SimFilesystem& fs);

  // Direct injection of relations (e.g. from a replayed investigator log).
  void AddInvestigatedRelation(const InvestigatedRelation& relation);

  // --- Clustering & queries ----------------------------------------------

  // Groups all live files into (possibly overlapping) projects.
  ClusterSet BuildClusters() const;

  // Scoring-phase thread count for cluster builds; 0 restores the default
  // (SEER_THREADS / hardware concurrency).
  void SetClusterThreads(int threads) { clusters_.set_threads(threads); }
  int cluster_threads() const { return clusters_.threads(); }

  // Incremental cluster rebuilds are on by default; benches turn them off
  // to measure the full-build baseline.
  void SetIncrementalClustering(bool on) { clusters_.set_incremental(on); }

  // What the most recent BuildClusters actually did.
  const ClusterBuildStats& last_cluster_stats() const {
    return clusters_.last_build_stats();
  }

  const FileTable& files() const { return files_; }
  const RelationTable& relations() const { return relations_; }
  const SeerParams& params() const { return params_; }

  // Mean semantic distance from -> to, or negative when untracked.
  // String-keyed diagnostic egress.
  double Distance(const std::string& from, const std::string& to) const;

  // Neighbor paths of a file, for diagnostics.
  std::vector<std::string> NeighborPaths(const std::string& path) const;

  uint64_t references_processed() const { return references_processed_; }

  // Approximate resident bytes (file table + relation lists + streams),
  // for the Section 5.3 memory bench.
  size_t MemoryBytes() const;

  // --- persistence ------------------------------------------------------------
  // Two formats serve two jobs:
  //
  //  * SaveTo/LoadFrom — the versioned *text* format: greppable, diffable,
  //    hand-editable. Per-process reference streams and the tie-break RNG
  //    are not saved; after a reload, distance accumulation resumes with
  //    fresh windows. This is the portable dump (`seerctl db load -o ...`).
  //
  //  * EncodeSnapshot/DecodeSnapshot — the *binary* crash-consistent
  //    snapshot used by SnapshotStore: CRC32-checksummed sections covering
  //    params, the path table, the file table (purge queue included), the
  //    relation table (RNG state included), and the live reference
  //    streams. Decoding a snapshot restores the complete learning state,
  //    so replaying the WAL on top reproduces the never-crashed
  //    correlator byte for byte.
  void SaveTo(std::ostream& out) const;
  static StatusOr<std::unique_ptr<Correlator>> LoadFrom(std::istream& in);

  std::string EncodeSnapshot() const;
  static StatusOr<std::unique_ptr<Correlator>> DecodeSnapshot(std::string_view bytes);

 private:
  SeerParams params_;
  FileTable files_;
  RelationTable relations_;
  ReferenceStreams streams_;
  ClusterBuilder clusters_;
  std::vector<std::unique_ptr<Investigator>> investigators_;
  std::vector<DistanceObservation> scratch_obs_;  // reused per reference
  uint64_t references_processed_ = 0;
  uint64_t global_ref_seq_ = 0;
};

}  // namespace seer

#endif  // SRC_CORE_CORRELATOR_H_
