// The SEER correlator.
//
// Consumes the observer's cleaned reference stream, measures semantic
// distances between file references on a per-process basis, maintains the
// per-file nearest-neighbor relation table, and — when new hoard contents
// are to be chosen — runs the clustering algorithm to group files into
// projects (Section 2). External investigators can be registered; their
// relations are folded into the clustering decision (Sections 3.2, 3.3.3).
//
// The per-reference hot path is identity-only: the observer hands over
// interned PathIds, the file table maps them to dense FileIds with a flat
// array, and distance observations accumulate in a reused scratch buffer —
// no heap allocation once a path has been seen. Strings reappear only on
// the query egress (Distance/NeighborPaths diagnostics, persistence).
#ifndef SRC_CORE_CORRELATOR_H_
#define SRC_CORE_CORRELATOR_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/core/clustering.h"
#include "src/core/file_table.h"
#include "src/core/investigator.h"
#include "src/core/params.h"
#include "src/core/reference_streams.h"
#include "src/core/relation_table.h"
#include "src/observer/reference.h"

namespace seer {

class Correlator : public ReferenceSink {
 public:
  explicit Correlator(const SeerParams& params = SeerParams(), uint64_t seed = 0x5ee8);

  // --- ReferenceSink ------------------------------------------------------
  void OnReference(const FileReference& ref) override;
  void OnProcessFork(Pid parent, Pid child) override;
  void OnProcessExit(Pid pid) override;
  void OnFileDeleted(PathId path, Time time) override;
  void OnFileRenamed(PathId from, PathId to, Time time) override;
  void OnFileExcluded(PathId path) override;

  // --- Investigators ------------------------------------------------------

  // Registers an investigator; it runs against all known live files each
  // time RunInvestigators() is called (typically just before clustering).
  void AddInvestigator(std::unique_ptr<Investigator> investigator);
  void RunInvestigators(const SimFilesystem& fs);

  // Direct injection of relations (e.g. from a replayed investigator log).
  void AddInvestigatedRelation(const InvestigatedRelation& relation);

  // --- Clustering & queries ----------------------------------------------

  // Groups all live files into (possibly overlapping) projects.
  ClusterSet BuildClusters() const;

  const FileTable& files() const { return files_; }
  const RelationTable& relations() const { return relations_; }
  const SeerParams& params() const { return params_; }

  // Mean semantic distance from -> to, or negative when untracked.
  // String-keyed diagnostic egress.
  double Distance(const std::string& from, const std::string& to) const;

  // Neighbor paths of a file, for diagnostics.
  std::vector<std::string> NeighborPaths(const std::string& path) const;

  uint64_t references_processed() const { return references_processed_; }

  // Approximate resident bytes (file table + relation lists + streams),
  // for the Section 5.3 memory bench.
  size_t MemoryBytes() const;

  // --- persistence ------------------------------------------------------------
  // Saves the learned database (parameters, file table, relation table) in
  // a versioned text format; per-process reference streams are transient
  // and not saved. LoadFrom reconstructs a correlator; returns null and
  // fills `error` on malformed input.
  void SaveTo(std::ostream& out) const;
  static std::unique_ptr<Correlator> LoadFrom(std::istream& in, std::string* error = nullptr);

 private:
  SeerParams params_;
  FileTable files_;
  RelationTable relations_;
  ReferenceStreams streams_;
  ClusterBuilder clusters_;
  std::vector<std::unique_ptr<Investigator>> investigators_;
  std::vector<DistanceObservation> scratch_obs_;  // reused per reference
  uint64_t references_processed_ = 0;
  uint64_t global_ref_seq_ = 0;
};

}  // namespace seer

#endif  // SRC_CORE_CORRELATOR_H_
