// Hoard selection and hoard-miss accounting.
//
// When new hoard contents are to be chosen, SEER examines the projects, in
// order of how recently they were active, and selects the highest-priority
// projects until the maximum hoard size is reached — only complete projects
// are hoarded, under the assumption that a partial project is not enough to
// make progress (Section 2). Frequently-referenced files, critical files,
// and non-file objects are included unconditionally (Sections 4.2, 4.3,
// 4.6), as are any files the user pinned by hand (rarely needed, Section 2).
//
// Hoard contents are identity sets: selections, pins and miss records all
// carry interned PathIds. Strings enter only through the ingress
// conveniences (user pin/miss commands) and leave only when a caller
// renders a listing or hands the set to the replication substrate.
//
// The fill plane is incremental: HoardManager caches one ClusterAggregate
// (priority, live bytes, live count) per cluster, keyed by the cluster's
// representative member and membership hash, and invalidated by the file
// table's touch epoch. A refill after touching 1% of the files recomputes
// ~1% of the aggregates; everything else is an O(1) cache hit. Dirty
// aggregates are recomputed in parallel on a ThreadPool with a sequential
// deterministic merge, so the selection is bit-identical at any thread
// count — the same determinism recipe the clustering plane uses.
//
// MissLog implements the two miss-tracking paths of Section 4.4: the manual
// reporting program (with the 0-4 severity scale) and the automatic
// detector that notices accesses to files that exist but are not hoarded.
#ifndef SRC_CORE_HOARD_H_
#define SRC_CORE_HOARD_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/clustering.h"
#include "src/core/correlator.h"
#include "src/observer/observer.h"
#include "src/util/flat_map.h"

namespace seer {

class ThreadPool;

// Severity scale of Section 4.4 (lower is worse).
enum class MissSeverity : uint8_t {
  kUnusable = 0,        // computer unusable until reconnection
  kTaskChange = 1,      // current task must change
  kActivityChange = 2,  // same task, different activity
  kMinor = 3,           // little or no trouble
  kPreload = 4,         // not needed now; preload for the future
};

struct HoardSelection {
  // Chosen paths in deterministic emission order: always-hoard (ascending),
  // pins (ascending), then ranked clusters with members in ascending id
  // order (most-recent-first within a cluster in partial-fill mode). The
  // order is identical for scratch and incremental fills at any thread
  // count, so byte-comparing two selections is a valid equivalence check.
  std::vector<PathId> files;
  // The same ids sorted ascending — the membership index behind Contains().
  std::vector<PathId> sorted_ids;
  uint64_t bytes_used = 0;
  uint64_t budget_bytes = 0;
  size_t projects_hoarded = 0;
  size_t projects_skipped = 0;  // complete projects that did not fit

  bool Contains(PathId path) const;
  bool Contains(std::string_view path) const {
    const PathId id = GlobalPaths().Find(path);
    return id != kInvalidPathId && Contains(id);
  }

  // Egress: selection rendered as sorted path strings (replication
  // substrate, user-facing listings).
  std::vector<std::string> PathStrings() const;
};

// What the last ChooseHoard actually did, for the perf surfaces
// (`seerctl hoard --stats`, bench/hoard_fill, the tenant router).
struct HoardFillStats {
  size_t clusters = 0;
  size_t reused_aggregates = 0;  // cache hits (no member walk)
  size_t dirty_clusters = 0;     // aggregates recomputed this fill
  size_t touched_files = 0;      // files moved since the cached epoch
  size_t sizes_resolved = 0;     // size_of calls made this fill
  bool incremental = false;      // cached aggregates were usable
  int threads = 1;
  double fill_ms = 0.0;
  // Phase split of fill_ms, mirroring ClusterBuildStats.
  double agg_ms = 0.0;     // size column refresh + aggregate recompute
  double rank_ms = 0.0;    // deterministic (priority, index) sort
  double select_ms = 0.0;  // greedy budgeted selection
};

class HoardManager {
 public:
  // Per-file size oracle. Must be pure for a given fill (same path -> same
  // size) and thread-safe: sizes are resolved in parallel and cached in a
  // PathId-indexed column that is refreshed only for files the file table
  // reports touched — a size change must be accompanied by a file-table
  // event (reference, delete, rename), which is how every ingest path
  // already behaves.
  using SizeFn = std::function<uint64_t(PathId path)>;

  explicit HoardManager(uint64_t budget_bytes) : budget_bytes_(budget_bytes) {}
  ~HoardManager();

  void set_budget_bytes(uint64_t bytes) { budget_bytes_ = bytes; }
  uint64_t budget_bytes() const { return budget_bytes_; }

  // Space charged before any file is chosen. Directory hoarding is the
  // replication substrate's decision, but SEER conservatively assumes all
  // directories are hoarded when computing space (Section 4.6).
  void set_reserved_bytes(uint64_t bytes) { reserved_bytes_ = bytes; }
  uint64_t reserved_bytes() const { return reserved_bytes_; }

  // The paper hoards only complete projects, assuming partial projects are
  // not enough to make progress (Section 2). Enabling partial fill makes a
  // project that does not fit contribute its most recently used members
  // instead — the ablation bench/live sim quantify the difference.
  void set_allow_partial_projects(bool allow) { allow_partial_ = allow; }
  bool allow_partial_projects() const { return allow_partial_; }

  // Explicit user hoarding instructions (kept across selections). The
  // string overload is the user-command ingress: it interns.
  void Pin(PathId path) { pinned_.insert(path); }
  void Pin(std::string_view path) { pinned_.insert(GlobalPaths().Intern(path)); }
  void Unpin(PathId path) { pinned_.erase(path); }
  void Unpin(std::string_view path) {
    const PathId id = GlobalPaths().Find(path);
    if (id != kInvalidPathId) {
      pinned_.erase(id);
    }
  }
  const std::set<PathId>& pinned() const { return pinned_; }

  // Aggregate-recompute thread count; 0 (the default) selects
  // DefaultThreadCount() (the SEER_THREADS override, else hardware
  // concurrency). Below the serial cutoff the fill never touches a pool.
  void set_threads(int threads);
  int threads() const;

  // Recompute aggregates on a caller-owned pool instead of a private one
  // (multi-tenant pool multiplexing, same idiom as
  // Correlator::UseSharedPool). nullptr restores the private pool.
  void set_shared_pool(ThreadPool* pool);

  // Incremental fills are on by default; turning them off forces every
  // ChooseHoard to re-walk all clusters (the benches' scratch baseline).
  void set_incremental_fill(bool on) { incremental_fill_ = on; }
  bool incremental_fill() const { return incremental_fill_; }
  void InvalidateFillCache() const { fill_cache_valid_ = false; }

  const HoardFillStats& last_fill_stats() const { return fill_stats_; }

  // Chooses hoard contents: always-hoard and pinned files first, then whole
  // projects by descending activity until the budget is exhausted.
  // `size_of` supplies per-file sizes (unknown files may be given a
  // synthetic size by the caller). Logically const: the mutable aggregate
  // cache it maintains is invisible in the result (callers must serialise
  // ChooseHoard with table mutation, which every current caller does).
  HoardSelection ChooseHoard(const Correlator& correlator, const ClusterSet& clusters,
                             const std::set<PathId>& always_hoard,
                             const SizeFn& size_of) const;

 private:
  // One cached per-cluster summary; identified across builds by
  // (rep, member_hash) since cluster indices are not stable.
  struct ClusterAggregate {
    uint64_t priority = 0;    // max last_ref_seq over ALL members
    uint64_t live_bytes = 0;  // size sum over live members
    uint32_t live_count = 0;  // live members
    FileId rep = kInvalidFileId;  // members[0] (members are sorted unique)
    uint64_t member_hash = 0;
  };

  ThreadPool* Pool() const;

  uint64_t budget_bytes_;
  uint64_t reserved_bytes_ = 0;
  std::set<PathId> pinned_;
  bool allow_partial_ = false;
  bool incremental_fill_ = true;

  int threads_ = 0;
  ThreadPool* shared_pool_ = nullptr;  // not owned; overrides pool_
  mutable std::unique_ptr<ThreadPool> pool_;
  mutable int pool_threads_ = 0;

  // --- fill cache (valid between fills) ------------------------------------
  mutable std::vector<ClusterAggregate> agg_cache_;    // last fill's table
  mutable FlatMap<FileId, uint32_t> rep_index_{kInvalidFileId};  // rep -> agg_cache_ index
  mutable std::vector<uint64_t> size_col_;  // PathId-indexed resolved sizes
  mutable uint64_t cache_epoch_ = 0;        // touch epoch the cache covers
  mutable const void* cache_source_ = nullptr;  // correlator identity guard
  mutable bool fill_cache_valid_ = false;
  mutable HoardFillStats fill_stats_;

  // --- per-fill scratch (persisted to keep warm fills allocation-free) -----
  mutable std::vector<ClusterAggregate> agg_scratch_;
  mutable std::vector<FileId> touched_;
  mutable std::vector<FileId> resolve_;
  mutable std::vector<uint32_t> dirty_;
  mutable std::vector<uint8_t> cluster_dirty_;
  mutable std::vector<uint32_t> rank_order_;
  mutable std::vector<uint64_t> sel_in_cluster_;
  mutable std::vector<uint32_t> in_sel_mark_;  // PathId-indexed, == sel_mark_
  mutable uint32_t sel_mark_ = 0;
  mutable std::vector<std::pair<uint64_t, FileId>> by_recency_;
};

struct MissRecord {
  PathId path = kInvalidPathId;
  Time time = 0;
  MissSeverity severity = MissSeverity::kMinor;
  bool automatic = false;
};

class MissLog : public MissListener {
 public:
  // Manual reporting: the user runs the miss program, which records the
  // event and arranges for the file (and its project) to be hoarded at the
  // next reconnection. The string overload is the command-line ingress.
  void RecordManual(PathId path, Time time, MissSeverity severity);
  void RecordManual(std::string_view path, Time time, MissSeverity severity) {
    RecordManual(GlobalPaths().Intern(path), time, severity);
  }

  // Automatic detection (fed by the observer's kNotLocal signal). At most
  // one automatic record per path per disconnection.
  void OnNotLocalAccess(PathId path, Pid pid, Time time) override;

  // Disconnection bracketing for per-disconnection queries.
  void StartDisconnection(Time time);
  void EndDisconnection();

  const std::vector<MissRecord>& records() const { return records_; }

  // Misses recorded during the current disconnection.
  size_t CurrentDisconnectionMissCount() const;

  // Files to force into the hoard at the next reconnection; clears the
  // pending set.
  std::vector<PathId> TakeFilesToHoard();

  // The pending force-hoard set, without consuming it (persistence).
  const std::set<PathId>& pending_hoard() const { return pending_hoard_; }

  // Rebuilds the log from persisted state (the tenant store's aux
  // section). Replaces current contents; disconnection bracketing resets
  // to "connected" — a router restart ends any open disconnection.
  void RestoreState(std::vector<MissRecord> records, std::set<PathId> pending_hoard);

  // O(1): counters are maintained at record/restore time, not scanned.
  size_t CountAtSeverity(MissSeverity severity) const {
    return manual_by_severity_[static_cast<size_t>(severity)];
  }
  size_t automatic_count() const { return automatic_count_; }

 private:
  void CountRecord(const MissRecord& rec);

  std::vector<MissRecord> records_;
  std::set<PathId> pending_hoard_;
  std::set<PathId> seen_this_disconnection_;
  size_t disconnection_start_index_ = 0;
  bool disconnected_ = false;
  // Maintained counters mirroring records_ (stats calls are O(1)).
  size_t manual_by_severity_[5] = {0, 0, 0, 0, 0};
  size_t automatic_count_ = 0;
};

}  // namespace seer

#endif  // SRC_CORE_HOARD_H_
