// Hoard selection and hoard-miss accounting.
//
// When new hoard contents are to be chosen, SEER examines the projects, in
// order of how recently they were active, and selects the highest-priority
// projects until the maximum hoard size is reached — only complete projects
// are hoarded, under the assumption that a partial project is not enough to
// make progress (Section 2). Frequently-referenced files, critical files,
// and non-file objects are included unconditionally (Sections 4.2, 4.3,
// 4.6), as are any files the user pinned by hand (rarely needed, Section 2).
//
// Hoard contents are identity sets: selections, pins and miss records all
// carry interned PathIds. Strings enter only through the ingress
// conveniences (user pin/miss commands) and leave only when a caller
// renders a listing or hands the set to the replication substrate.
//
// MissLog implements the two miss-tracking paths of Section 4.4: the manual
// reporting program (with the 0-4 severity scale) and the automatic
// detector that notices accesses to files that exist but are not hoarded.
#ifndef SRC_CORE_HOARD_H_
#define SRC_CORE_HOARD_H_

#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/clustering.h"
#include "src/core/correlator.h"
#include "src/observer/observer.h"

namespace seer {

// Severity scale of Section 4.4 (lower is worse).
enum class MissSeverity : uint8_t {
  kUnusable = 0,        // computer unusable until reconnection
  kTaskChange = 1,      // current task must change
  kActivityChange = 2,  // same task, different activity
  kMinor = 3,           // little or no trouble
  kPreload = 4,         // not needed now; preload for the future
};

struct HoardSelection {
  std::set<PathId> files;
  uint64_t bytes_used = 0;
  uint64_t budget_bytes = 0;
  size_t projects_hoarded = 0;
  size_t projects_skipped = 0;  // complete projects that did not fit

  bool Contains(PathId path) const { return files.count(path) != 0; }
  bool Contains(std::string_view path) const {
    const PathId id = GlobalPaths().Find(path);
    return id != kInvalidPathId && files.count(id) != 0;
  }

  // Egress: selection rendered as path strings (replication substrate,
  // user-facing listings).
  std::set<std::string> PathStrings() const;
};

class HoardManager {
 public:
  using SizeFn = std::function<uint64_t(PathId path)>;

  explicit HoardManager(uint64_t budget_bytes) : budget_bytes_(budget_bytes) {}

  void set_budget_bytes(uint64_t bytes) { budget_bytes_ = bytes; }
  uint64_t budget_bytes() const { return budget_bytes_; }

  // Space charged before any file is chosen. Directory hoarding is the
  // replication substrate's decision, but SEER conservatively assumes all
  // directories are hoarded when computing space (Section 4.6).
  void set_reserved_bytes(uint64_t bytes) { reserved_bytes_ = bytes; }
  uint64_t reserved_bytes() const { return reserved_bytes_; }

  // The paper hoards only complete projects, assuming partial projects are
  // not enough to make progress (Section 2). Enabling partial fill makes a
  // project that does not fit contribute its most recently used members
  // instead — the ablation bench/live sim quantify the difference.
  void set_allow_partial_projects(bool allow) { allow_partial_ = allow; }
  bool allow_partial_projects() const { return allow_partial_; }

  // Explicit user hoarding instructions (kept across selections). The
  // string overload is the user-command ingress: it interns.
  void Pin(PathId path) { pinned_.insert(path); }
  void Pin(std::string_view path) { pinned_.insert(GlobalPaths().Intern(path)); }
  void Unpin(PathId path) { pinned_.erase(path); }
  void Unpin(std::string_view path) {
    const PathId id = GlobalPaths().Find(path);
    if (id != kInvalidPathId) {
      pinned_.erase(id);
    }
  }
  const std::set<PathId>& pinned() const { return pinned_; }

  // Chooses hoard contents: always-hoard and pinned files first, then whole
  // projects by descending activity until the budget is exhausted.
  // `size_of` supplies per-file sizes (unknown files may be given a
  // synthetic size by the caller).
  HoardSelection ChooseHoard(const Correlator& correlator, const ClusterSet& clusters,
                             const std::set<PathId>& always_hoard,
                             const SizeFn& size_of) const;

 private:
  uint64_t budget_bytes_;
  uint64_t reserved_bytes_ = 0;
  std::set<PathId> pinned_;
  bool allow_partial_ = false;
};

struct MissRecord {
  PathId path = kInvalidPathId;
  Time time = 0;
  MissSeverity severity = MissSeverity::kMinor;
  bool automatic = false;
};

class MissLog : public MissListener {
 public:
  // Manual reporting: the user runs the miss program, which records the
  // event and arranges for the file (and its project) to be hoarded at the
  // next reconnection. The string overload is the command-line ingress.
  void RecordManual(PathId path, Time time, MissSeverity severity);
  void RecordManual(std::string_view path, Time time, MissSeverity severity) {
    RecordManual(GlobalPaths().Intern(path), time, severity);
  }

  // Automatic detection (fed by the observer's kNotLocal signal). At most
  // one automatic record per path per disconnection.
  void OnNotLocalAccess(PathId path, Pid pid, Time time) override;

  // Disconnection bracketing for per-disconnection queries.
  void StartDisconnection(Time time);
  void EndDisconnection();

  const std::vector<MissRecord>& records() const { return records_; }

  // Misses recorded during the current disconnection.
  size_t CurrentDisconnectionMissCount() const;

  // Files to force into the hoard at the next reconnection; clears the
  // pending set.
  std::vector<PathId> TakeFilesToHoard();

  // The pending force-hoard set, without consuming it (persistence).
  const std::set<PathId>& pending_hoard() const { return pending_hoard_; }

  // Rebuilds the log from persisted state (the tenant store's aux
  // section). Replaces current contents; disconnection bracketing resets
  // to "connected" — a router restart ends any open disconnection.
  void RestoreState(std::vector<MissRecord> records, std::set<PathId> pending_hoard);

  size_t CountAtSeverity(MissSeverity severity) const;
  size_t automatic_count() const;

 private:
  std::vector<MissRecord> records_;
  std::set<PathId> pending_hoard_;
  std::set<PathId> seen_this_disconnection_;
  size_t disconnection_start_index_ = 0;
  bool disconnected_ = false;
};

}  // namespace seer

#endif  // SRC_CORE_HOARD_H_
