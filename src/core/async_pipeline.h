// Asynchronous observer-to-correlator pipeline.
//
// In the deployed system the observer and the correlator are separate
// daemons: the observer must add at most microseconds to each traced
// syscall, while the correlator's table updates can lag behind
// (Sections 2, 5.3). AsyncCorrelator reproduces that decoupling inside one
// process: it is a ReferenceSink whose methods enqueue onto a bounded
// queue and return immediately; a worker thread drains the queue in whole
// batches into the correlator's sharded IngestBatch pipeline, so distance
// measurement for a backlog parallelises across process streams while the
// applied state stays bit-identical to one-at-a-time serial delivery.
// Queries (clustering, distances) synchronise with the
// worker so callers always see a fully drained correlator — exactly the
// semantics of asking the correlator daemon for a hoard fill.
//
// Messages carry interned PathIds, never strings, so a queued message is a
// trivially-copyable POD and the queue itself is a fixed ring buffer
// allocated once at construction: the per-reference producer path performs
// no heap allocation at any queue depth.
//
// Backpressure: when the queue is full the enqueueing thread blocks (the
// kernel hook in the real system buffers a bounded amount of trace data
// and must not drop references, or lifetimes would unbalance).
#ifndef SRC_CORE_ASYNC_PIPELINE_H_
#define SRC_CORE_ASYNC_PIPELINE_H_

#include <condition_variable>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/core/correlator.h"

namespace seer {

class AsyncCorrelator : public ReferenceSink {
 public:
  explicit AsyncCorrelator(const SeerParams& params = SeerParams(), uint64_t seed = 0x5ee8,
                           size_t queue_capacity = 4096);

  // Drains the queue and joins the worker.
  ~AsyncCorrelator() override;

  AsyncCorrelator(const AsyncCorrelator&) = delete;
  AsyncCorrelator& operator=(const AsyncCorrelator&) = delete;

  // --- ReferenceSink (producer side; thread-safe, non-blocking unless the
  // queue is full) ----------------------------------------------------------
  void OnReference(const FileReference& ref) override;
  void OnProcessFork(Pid parent, Pid child) override;
  void OnProcessExit(Pid pid) override;
  void OnFileDeleted(PathId path, Time time) override;
  void OnFileRenamed(PathId from, PathId to, Time time) override;
  void OnFileExcluded(PathId path) override;

  // --- consumer-side queries (block until the queue is drained) -------------

  // Blocks until every message enqueued before the call has been applied.
  void Drain();

  // Runs `fn` against the drained correlator under the pipeline lock.
  // The reference must not be retained past the call.
  template <typename Fn>
  auto Query(Fn&& fn) -> decltype(fn(std::declval<const Correlator&>())) {
    Drain();
    std::lock_guard<std::mutex> lock(correlator_mutex_);
    return fn(static_cast<const Correlator&>(correlator_));
  }

  // Convenience queries.
  ClusterSet BuildClusters();
  double Distance(const std::string& from, const std::string& to);
  size_t KnownFiles();

  // Cluster-engine controls, applied under the pipeline lock.
  void SetClusterThreads(int threads);
  ClusterBuildStats LastClusterStats();

  // Ingest-pipeline controls: measure-phase thread count for the batched
  // drain, and the ingest counters (batches, segments, shards, barriers).
  void SetIngestThreads(int threads);
  IngestStats LastIngestStats();

  // Statistics.
  size_t enqueued() const;
  size_t processed() const;
  size_t high_watermark() const;
  size_t queue_depth() const;
  size_t queue_capacity() const { return capacity_; }

 private:
  // The queue carries the correlator's own batch-event POD, so a drained
  // batch feeds IngestBatch directly — no per-message translation.
  using Message = IngestEvent;
  static_assert(std::is_trivially_copyable_v<Message>,
                "queued messages must stay POD: the ring buffer is the "
                "allocation-free hot path");

  void Enqueue(const Message& message);
  void WorkerLoop();

  const size_t capacity_;
  Correlator correlator_;
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::condition_variable drained_;
  // Fixed ring buffer: allocated once, indices wrap modulo capacity_.
  std::vector<Message> ring_;
  size_t head_ = 0;   // next message to dequeue
  size_t count_ = 0;  // messages currently queued
  bool stopping_ = false;
  size_t enqueued_ = 0;
  size_t processed_ = 0;
  size_t high_watermark_ = 0;

  std::mutex correlator_mutex_;
  std::thread worker_;
};

}  // namespace seer

#endif  // SRC_CORE_ASYNC_PIPELINE_H_
