// Generalised access prediction (Section 7, future work).
//
// The paper closes by observing that SEER's predictive and inferential
// methods should apply beyond hoarding — to Web caching, network file
// systems, and directory reorganisation. AccessPredictor packages the
// machinery for such uses: it accepts a stream of accesses to arbitrary
// keys (URLs, file names, database pages) on one or more logical streams,
// runs the same per-stream semantic-distance measurement and shared-
// neighbor clustering, and answers "what is likely to be wanted next,
// given this access?" — the question a prefetching cache asks.
#ifndef SRC_CORE_ACCESS_PREDICTOR_H_
#define SRC_CORE_ACCESS_PREDICTOR_H_

#include <string>
#include <vector>

#include "src/core/correlator.h"

namespace seer {

class AccessPredictor {
 public:
  // Keys are opaque, so the directory-distance adjustment is disabled by
  // default; pass custom params to re-enable it for path-like keys.
  static SeerParams DefaultParams();

  explicit AccessPredictor(const SeerParams& params = DefaultParams(), uint64_t seed = 0xacce55);

  // Records one access to `key` on logical stream `stream` (a browser tab,
  // a client connection, ...). Time is a logical tick unless provided.
  void OnAccess(const std::string& key, int stream = 0);
  void OnAccess(const std::string& key, int stream, Time time);

  // Keys semantically nearest to `key`, closest first (up to `limit`).
  std::vector<std::string> PredictRelated(const std::string& key, size_t limit = 8) const;

  // The whole project/cluster around `key` — a prefetch set.
  std::vector<std::string> PrefetchSet(const std::string& key, size_t limit = 32) const;

  size_t known_keys() const { return correlator_.files().size(); }
  const Correlator& correlator() const { return correlator_; }

 private:
  Correlator correlator_;
  Time logical_clock_ = 0;
};

}  // namespace seer

#endif  // SRC_CORE_ACCESS_PREDICTOR_H_
