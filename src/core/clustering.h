// Project clustering — the modified Jarvis-Patrick algorithm of
// Section 3.3.2 plus the shared-neighbor-count adjustments of
// Section 3.3.3.
//
// The classic Jarvis-Patrick algorithm computes each point's n nearest
// neighbors (O(N^2)) and merges the clusters of any two points sharing more
// than k of them. SEER's variation:
//   * reuses the relation table's existing per-file neighbor lists, giving
//     O(N) time;
//   * uses two thresholds, kn (near) and kf (far) with kn > kf: sharing at
//     least kn neighbors combines the two clusters outright, while sharing
//     at least kf (but fewer than kn) *overlaps* them — each file is added
//     to the other's cluster, without merging, so files can belong to
//     several projects at once;
//   * adjusts the shared-neighbor count with extra evidence: directory
//     distance is subtracted (files far apart in the tree are less likely
//     to cluster), and external-investigator relation strengths are added —
//     and investigated pairs are tested even when no semantic distance was
//     ever stored, so a sufficiently strong investigator can force files
//     into one project.
//
// Engine shape (see DESIGN.md §10): edge *scoring* — the expensive phase —
// is a pure function of fixed neighbor sets, so it runs in parallel over
// candidate files on a chunked thread pool, writing each file's scored
// edges into a per-file bucket. The *union* phase then walks the buckets
// in candidate order on one thread, so the output is bit-identical at any
// thread count. Buckets are cached between builds: the relation table
// stamps files whose live neighbor sets changed (dirty epoch), and an
// incremental rebuild rescores only stamped files and their
// reverse-neighbors, falling back to a full pass when the dirty fraction
// is large.
#ifndef SRC_CORE_CLUSTERING_H_
#define SRC_CORE_CLUSTERING_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/core/file_table.h"
#include "src/core/params.h"
#include "src/core/relation_table.h"
#include "src/util/flat_map.h"

namespace seer {

class ThreadPool;

struct Cluster {
  std::vector<FileId> members;  // sorted, unique
};

// Cluster indices of one file: a borrowed view into ClusterSet's flat
// membership table (valid while the ClusterSet lives).
class ClusterIndexSpan {
 public:
  ClusterIndexSpan() = default;
  ClusterIndexSpan(const uint32_t* data, size_t size) : data_(data), size_(size) {}
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t operator[](size_t i) const { return data_[i]; }
  const uint32_t* begin() const { return data_; }
  const uint32_t* end() const { return data_ + size_; }

 private:
  const uint32_t* data_ = nullptr;
  size_t size_ = 0;
};

struct ClusterSet {
  std::vector<Cluster> clusters;
  // file -> indices into `clusters` (a file may belong to several), as a
  // FileId-indexed CSR table: two flat arrays instead of a vector-per-file,
  // so emitting membership costs two allocations, not one per file.
  std::vector<uint32_t> membership_offset;  // size files+1 (empty when no files)
  std::vector<uint32_t> membership_ids;
  // Per-cluster order-sensitive hash of the sorted member list. Cluster
  // indices are not stable across builds, so the incremental hoard-fill
  // plane identifies a cluster by (members[0], member_hash): equal hash on
  // the same representative means the membership is unchanged and the
  // cached aggregate can be reused without re-walking the members.
  std::vector<uint64_t> member_hash;

  // Clusters containing `id` (ascending); empty if unknown.
  ClusterIndexSpan ClustersOf(FileId id) const;
};

// What the last Build() actually did, for the perf surfaces
// (`seerctl cluster --stats`, bench/clustering_scale, the hoard daemon).
struct ClusterBuildStats {
  size_t candidates = 0;
  size_t dirty_files = 0;     // set-changed files detected since last build
  size_t files_rescored = 0;  // edge buckets recomputed this build
  size_t edges_scored = 0;    // adjusted-count evaluations performed
  bool incremental = false;   // cached buckets were reused
  int threads = 1;
  double build_ms = 0.0;
  // Phase split of build_ms, for the perf harness.
  double pack_ms = 0.0;   // candidate packing (rows, paths, dir components)
  double plan_ms = 0.0;   // dirty-set collection and rescore planning
  double score_ms = 0.0;  // parallel edge scoring
  double merge_ms = 0.0;  // union + materialise + emit
};

class ClusterBuilder {
 public:
  ClusterBuilder(const SeerParams& params, const FileTable* files,
                 const RelationTable* relations);
  ~ClusterBuilder();

  // Registers investigator evidence for an unordered pair; strengths from
  // multiple investigators accumulate (Section 3.3.3).
  void AddInvestigatedPair(FileId a, FileId b, double strength);
  void ClearInvestigatedPairs();

  // Runs both phases over the given candidate files (normally
  // FileTable::LiveIds()). Files related to nothing become singleton
  // clusters. Logically const: the mutable edge cache it maintains is
  // invisible in the result (callers must serialise Build with table
  // mutation, which the correlator/async-pipeline query path already does).
  ClusterSet Build(const std::vector<FileId>& candidates) const;

  // Adjusted shared-neighbor count for an ordered pair (x in Table 1).
  // Reference implementation; Build uses an allocation-free equivalent.
  double AdjustedSharedCount(FileId from, FileId to) const;

  // Scoring-phase thread count; 0 (the default) selects DefaultThreadCount()
  // (the SEER_THREADS override, else hardware concurrency).
  void set_threads(int threads);
  int threads() const;

  // Score on a caller-owned pool instead of a private one (multi-tenant
  // pool multiplexing; see Correlator::UseSharedPool). nullptr restores
  // the private pool.
  void set_shared_pool(ThreadPool* pool);

  // Incremental rebuilds are on by default; turning them off forces every
  // Build to rescore all edges (the benches' serial/full baseline).
  void set_incremental(bool on) { incremental_enabled_ = on; }
  void InvalidateCache() const { cache_valid_ = false; }

  // Live-tuning override: new near/far thresholds and weights take effect
  // on the next Build. The incremental cache is invalidated — scores
  // computed under the old params must not survive.
  void OverrideParams(const SeerParams& params) {
    params_ = params;
    InvalidateCache();
  }

  const ClusterBuildStats& last_build_stats() const { return stats_; }

  // Rescore-set fraction above which an incremental rebuild falls back to
  // a full pass (rescoring nearly everything costs more than a clean run).
  static constexpr double kIncrementalFallbackFraction = 0.25;

 private:
  struct ScoreScratch;  // per-chunk scoring buffers (defined in the .cc)

  uint64_t PairKey(FileId a, FileId b) const;
  double InvestigatedStrength(FileId a, FileId b) const;
  ThreadPool* Pool() const;
  // Rebuilds one file's cached scoring inputs: sorted live-neighbor row,
  // interner path view, dirname components.
  void RefreshFileInputs(FileId f) const;
  // Decides which candidate slots need rescoring (rescore_: keep, partial
  // or full) and which files' inputs must be refreshed (refresh_); returns
  // false when the cache cannot be used (full rebuild required).
  bool PlanIncremental(const std::vector<FileId>& candidates) const;
  // Rebuilds one candidate's edge bucket. Partial mode keeps cached edges
  // to clean targets and rescores only edges to dirty files. When
  // `removed_flag` is non-null, sets the pointed-to byte if a
  // previously-near edge did not survive — the signal that this slot's
  // cached component label cannot be reused.
  void ScoreSlot(uint32_t slot, const std::vector<FileId>& candidates, uint8_t mode,
                 ScoreScratch* scratch, size_t* edges_scored, uint8_t* removed_flag) const;
  int DirDistance(FileId a, FileId b) const;

  SeerParams params_;
  const FileTable* files_;
  const RelationTable* relations_;

  FlatMap<uint64_t, double> investigated_;
  // Per-file investigated partners (both directions), in insertion order.
  std::vector<std::vector<FileId>> inv_partners_;
  // Endpoints touched since last build; consumed (and reset) by Build.
  mutable std::vector<FileId> inv_dirty_;
  mutable bool inv_cleared_ = false;
  bool incremental_enabled_ = true;
  int threads_ = 0;
  ThreadPool* shared_pool_ = nullptr;  // not owned; overrides pool_

  // --- build-time cache & scratch (logically transparent) ------------------
  mutable std::unique_ptr<ThreadPool> pool_;
  mutable int pool_threads_ = 0;
  mutable ClusterBuildStats stats_;
  // Per-file scored edges (x >= kf) from the last build, partitioned: the
  // first near_count_[f] entries are near edges (x >= kn), the rest far.
  mutable std::vector<std::vector<FileId>> edge_cache_;
  mutable std::vector<uint32_t> near_count_;
  mutable std::vector<uint8_t> has_far_;  // bucket holds any far edge
  // Phase-one component representative per file from the last build. When
  // no near edge or candidate was removed since, the union phase replays
  // these labels (O(candidates) trivial unions) plus the rescored buckets'
  // near edges instead of walking every cached bucket.
  mutable std::vector<FileId> comp_rep_;
  mutable bool comp_valid_ = false;
  mutable bool fast_union_ok_ = false;
  mutable bool cache_valid_ = false;
  mutable uint64_t built_epoch_ = 0;
  mutable std::vector<FileId> cached_candidates_;
  mutable std::vector<uint8_t> was_candidate_;  // by FileId, previous build
  // Persistent per-file scoring inputs, refreshed only for dirty files
  // (interner views are stable for the process lifetime, so the cached
  // path and component views never dangle):
  mutable std::vector<std::vector<FileId>> live_row_;  // sorted live neighbors
  mutable std::vector<std::string_view> file_path_;
  mutable std::vector<std::vector<std::string_view>> file_dirs_;
  // Scratch reused across builds:
  mutable std::vector<uint32_t> slot_of_;   // FileId -> slot, sentinel
  mutable std::vector<uint8_t> rescore_;    // per slot: keep/partial/full
  mutable std::vector<uint8_t> dirty_flag_; // by FileId, this build's D
  mutable std::vector<FileId> refresh_;     // files whose inputs to rebuild
};

}  // namespace seer

#endif  // SRC_CORE_CLUSTERING_H_
