// Project clustering — the modified Jarvis-Patrick algorithm of
// Section 3.3.2 plus the shared-neighbor-count adjustments of
// Section 3.3.3.
//
// The classic Jarvis-Patrick algorithm computes each point's n nearest
// neighbors (O(N^2)) and merges the clusters of any two points sharing more
// than k of them. SEER's variation:
//   * reuses the relation table's existing per-file neighbor lists, giving
//     O(N) time;
//   * uses two thresholds, kn (near) and kf (far) with kn > kf: sharing at
//     least kn neighbors combines the two clusters outright, while sharing
//     at least kf (but fewer than kn) *overlaps* them — each file is added
//     to the other's cluster, without merging, so files can belong to
//     several projects at once;
//   * adjusts the shared-neighbor count with extra evidence: directory
//     distance is subtracted (files far apart in the tree are less likely
//     to cluster), and external-investigator relation strengths are added —
//     and investigated pairs are tested even when no semantic distance was
//     ever stored, so a sufficiently strong investigator can force files
//     into one project.
#ifndef SRC_CORE_CLUSTERING_H_
#define SRC_CORE_CLUSTERING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/file_table.h"
#include "src/core/params.h"
#include "src/core/relation_table.h"

namespace seer {

struct Cluster {
  std::vector<FileId> members;  // sorted, unique
};

struct ClusterSet {
  std::vector<Cluster> clusters;
  // file -> indices into `clusters` (a file may belong to several).
  std::unordered_map<FileId, std::vector<uint32_t>> membership;

  // Clusters containing `id`; empty if unknown.
  const std::vector<uint32_t>& ClustersOf(FileId id) const;
};

class ClusterBuilder {
 public:
  ClusterBuilder(const SeerParams& params, const FileTable* files,
                 const RelationTable* relations);

  // Registers investigator evidence for an unordered pair; strengths from
  // multiple investigators accumulate (Section 3.3.3).
  void AddInvestigatedPair(FileId a, FileId b, double strength);
  void ClearInvestigatedPairs();

  // Runs both phases over the given candidate files (normally
  // FileTable::LiveIds()). Files related to nothing become singleton
  // clusters.
  ClusterSet Build(const std::vector<FileId>& candidates) const;

  // Adjusted shared-neighbor count for an ordered pair (x in Table 1).
  double AdjustedSharedCount(FileId from, FileId to) const;

 private:
  uint64_t PairKey(FileId a, FileId b) const;
  double InvestigatedStrength(FileId a, FileId b) const;

  SeerParams params_;
  const FileTable* files_;
  const RelationTable* relations_;
  std::unordered_map<uint64_t, double> investigated_;
};

}  // namespace seer

#endif  // SRC_CORE_CLUSTERING_H_
