#include "src/core/access_predictor.h"

#include <algorithm>

namespace seer {

SeerParams AccessPredictor::DefaultParams() {
  SeerParams params;
  params.dir_distance_weight = 0.0;  // keys are opaque, not tree paths
  return params;
}

AccessPredictor::AccessPredictor(const SeerParams& params, uint64_t seed)
    : correlator_(params, seed) {}

void AccessPredictor::OnAccess(const std::string& key, int stream) {
  OnAccess(key, stream, logical_clock_ += kMicrosPerSecond);
}

void AccessPredictor::OnAccess(const std::string& key, int stream, Time time) {
  FileReference ref;
  ref.pid = stream;
  ref.kind = RefKind::kPoint;
  ref.path = GlobalPaths().Intern(key);
  ref.time = time;
  correlator_.OnReference(ref);
}

std::vector<std::string> AccessPredictor::PredictRelated(const std::string& key,
                                                         size_t limit) const {
  std::vector<std::string> out;
  const FileId id = correlator_.files().FindPath(key);
  if (id == kInvalidFileId) {
    return out;
  }
  struct Scored {
    double distance;
    FileId id;
  };
  std::vector<Scored> scored;
  for (const Neighbor& nb : correlator_.relations().NeighborsOf(id)) {
    const FileRecord& rec = correlator_.files().Get(nb.id);
    if (!rec.deleted && !rec.excluded) {
      scored.push_back({nb.MeanDistance(correlator_.params().mean_kind), nb.id});
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.distance < b.distance; });
  for (const Scored& s : scored) {
    if (out.size() >= limit) {
      break;
    }
    out.emplace_back(correlator_.files().PathOf(s.id));
  }
  return out;
}

std::vector<std::string> AccessPredictor::PrefetchSet(const std::string& key,
                                                      size_t limit) const {
  std::vector<std::string> out;
  const FileId id = correlator_.files().FindPath(key);
  if (id == kInvalidFileId) {
    return out;
  }
  const ClusterSet clusters = correlator_.BuildClusters();
  for (const uint32_t c : clusters.ClustersOf(id)) {
    for (const FileId member : clusters.clusters[c].members) {
      if (member == id || out.size() >= limit) {
        continue;
      }
      const FileRecord& rec = correlator_.files().Get(member);
      const std::string_view path = correlator_.files().PathOf(member);
      if (!rec.deleted && std::find(out.begin(), out.end(), path) == out.end()) {
        out.emplace_back(path);
      }
    }
  }
  return out;
}

}  // namespace seer
