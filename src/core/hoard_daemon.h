// Automated periodic hoard filling.
//
// SEER normally learns about an imminent disconnection from the user, but
// even that interaction can be eliminated by refilling the hoard on a
// timer (Section 2). The daemon owns the refill recipe: run investigators
// (optional), cluster, honour pending miss pins, choose the hoard, and
// hand the target set to the replication substrate through an install
// callback — keeping this module free of any substrate dependency.
#ifndef SRC_CORE_HOARD_DAEMON_H_
#define SRC_CORE_HOARD_DAEMON_H_

#include <functional>
#include <set>
#include <string>

#include "src/core/correlator.h"
#include "src/core/hoard.h"
#include "src/observer/observer.h"

namespace seer {

struct HoardDaemonConfig {
  Time interval = 6 * kMicrosPerHour;  // refill period
  // When set, investigators run against this filesystem before each
  // clustering pass.
  const SimFilesystem* investigate_fs = nullptr;
};

class HoardDaemon {
 public:
  // Receives the chosen hoard contents (the replication substrate's
  // SetHoard, typically).
  using InstallFn = std::function<void(const std::set<std::string>& target)>;

  using Config = HoardDaemonConfig;

  HoardDaemon(Correlator* correlator, Observer* observer, HoardManager* manager,
              MissLog* miss_log, InstallFn install, HoardManager::SizeFn size_of,
              Config config = {});

  // Refills if the interval has elapsed since the last fill. Returns true
  // when a refill happened. Call this from the simulation's event loop (or
  // a timer in a live deployment).
  bool MaybeRefill(Time now);

  // Unconditional refill (the "disconnection imminent" path).
  HoardSelection ForceRefill(Time now);

  Time last_fill_time() const { return last_fill_; }
  size_t refill_count() const { return refills_; }
  const HoardSelection& last_selection() const { return last_selection_; }

 private:
  Correlator* correlator_;
  Observer* observer_;
  HoardManager* manager_;
  MissLog* miss_log_;
  InstallFn install_;
  HoardManager::SizeFn size_of_;
  Config config_;
  Time last_fill_ = -1;
  size_t refills_ = 0;
  HoardSelection last_selection_;
};

}  // namespace seer

#endif  // SRC_CORE_HOARD_DAEMON_H_
