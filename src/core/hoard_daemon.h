// Automated periodic hoard filling.
//
// SEER normally learns about an imminent disconnection from the user, but
// even that interaction can be eliminated by refilling the hoard on a
// timer (Section 2). The daemon owns the refill recipe: run investigators
// (optional), cluster, honour pending miss pins, choose the hoard, and
// hand the target set to the replication substrate through an install
// callback — keeping this module free of any substrate dependency.
#ifndef SRC_CORE_HOARD_DAEMON_H_
#define SRC_CORE_HOARD_DAEMON_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/core/correlator.h"
#include "src/core/durable_correlator.h"
#include "src/core/hoard.h"
#include "src/observer/observer.h"
#include "src/util/status.h"

namespace seer {

struct HoardDaemonConfig {
  Time interval = 6 * kMicrosPerHour;  // refill period
  // When set, investigators run against this filesystem before each
  // clustering pass.
  const SimFilesystem* investigate_fs = nullptr;
  // When set, the daemon owns checkpointing: after every refill, and
  // whenever the current WAL outgrows wal_checkpoint_bytes (compaction —
  // replay-on-recovery stays bounded even if refills are rare). The
  // durable wrapper must be driving the same correlator this daemon
  // refills from.
  DurableCorrelator* durable = nullptr;
  uint64_t wal_checkpoint_bytes = 4u << 20;
  // Scoring-phase thread count for the clustering pass of each refill;
  // 0 keeps the engine default (SEER_THREADS / hardware concurrency).
  int cluster_threads = 0;
};

class HoardDaemon {
 public:
  // Receives the chosen hoard contents as sorted path strings (the
  // replication substrate's SetHoard, typically).
  using InstallFn = std::function<void(const std::vector<std::string>& target)>;

  using Config = HoardDaemonConfig;

  // `observer` may be nullptr (a server-side tenant has no local Observer);
  // the always-hoard set is then empty.
  HoardDaemon(Correlator* correlator, Observer* observer, HoardManager* manager,
              MissLog* miss_log, InstallFn install, HoardManager::SizeFn size_of,
              Config config = {});

  // Refills if the interval has elapsed since the last fill. Returns true
  // when a refill happened. Call this from the simulation's event loop (or
  // a timer in a live deployment).
  bool MaybeRefill(Time now);

  // Unconditional refill (the "disconnection imminent" path).
  HoardSelection ForceRefill(Time now);

  Time last_fill_time() const { return last_fill_; }
  size_t refill_count() const { return refills_; }
  const HoardSelection& last_selection() const { return last_selection_; }

  // Stats of the clustering pass of the most recent refill.
  const ClusterBuildStats& last_cluster_stats() const {
    return correlator_->last_cluster_stats();
  }

  size_t checkpoint_count() const { return checkpoints_; }
  // Outcome of the most recent harvested checkpoint (OK when none ran
  // yet). A failed checkpoint never blocks the refill itself: hoarding
  // keeps working from memory and the next trigger retries.
  const Status& last_checkpoint_status() const { return last_checkpoint_status_; }
  // Stats of the most recent harvested checkpoint: generation, seal stall,
  // encode/write time, bytes, delta ratio. Zeros until one completes.
  const CheckpointStats& last_checkpoint_stats() const { return last_checkpoint_stats_; }

 private:
  void MaybeCheckpoint(bool after_refill);

  Correlator* correlator_;
  Observer* observer_;
  HoardManager* manager_;
  MissLog* miss_log_;
  InstallFn install_;
  HoardManager::SizeFn size_of_;
  Config config_;
  Time last_fill_ = -1;
  size_t refills_ = 0;
  size_t checkpoints_ = 0;
  Status last_checkpoint_status_;
  CheckpointStats last_checkpoint_stats_;
  HoardSelection last_selection_;
};

}  // namespace seer

#endif  // SRC_CORE_HOARD_DAEMON_H_
