#include "src/core/clustering.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>

#include "src/util/dsu.h"
#include "src/util/path.h"
#include "src/util/thread_pool.h"

namespace seer {

namespace {

constexpr uint32_t kNoSlot = static_cast<uint32_t>(-1);

// Per-slot rescore modes (rescore_). Partial keeps cached edges to clean
// targets and rescores only edges touching dirty files; full rebuilds the
// bucket from scratch.
constexpr uint8_t kKeepBucket = 0;
constexpr uint8_t kPartialRescore = 1;
constexpr uint8_t kFullRescore = 2;

// Task granularity for the parallel phases. Chunks are coarse and
// thread-proportional — a few contiguous ranges per worker — rather than a
// fixed small size: candidate slots ascend by FileId, so a contiguous
// range covers whole 256-file relation stripes and each worker walks slab
// rows it recently touched instead of interleaving cache lines with its
// peers. kChunksPerThread > 1 keeps dynamic balancing across skewed
// neighbor lists; kMinChunk bounds the claim-counter traffic; work below
// kSerialCutoff items skips the pool dispatch entirely (at small N the
// wake/join round-trip used to cost more than the scoring itself).
constexpr size_t kChunksPerThread = 4;
constexpr size_t kMinChunk = 64;
constexpr size_t kSerialCutoff = 2048;

// Number of non-empty '/'-separated segments, as SplitPath counts them.
size_t CountComponents(std::string_view path) {
  size_t count = 0;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    if (i >= path.size()) {
      break;
    }
    ++count;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
  }
  return count;
}

}  // namespace

ClusterIndexSpan ClusterSet::ClustersOf(FileId id) const {
  if (membership_offset.empty() || id + 1 >= membership_offset.size()) {
    return ClusterIndexSpan();
  }
  const uint32_t begin = membership_offset[id];
  const uint32_t end = membership_offset[id + 1];
  return ClusterIndexSpan(membership_ids.data() + begin, end - begin);
}

ClusterBuilder::ClusterBuilder(const SeerParams& params, const FileTable* files,
                               const RelationTable* relations)
    : params_(params),
      files_(files),
      relations_(relations),
      // PairKey packs lo < hi, so all-ones can never be a real key.
      investigated_(static_cast<uint64_t>(-1)) {}

ClusterBuilder::~ClusterBuilder() = default;

uint64_t ClusterBuilder::PairKey(FileId a, FileId b) const {
  const FileId lo = std::min(a, b);
  const FileId hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

void ClusterBuilder::AddInvestigatedPair(FileId a, FileId b, double strength) {
  if (a == b || a == kInvalidFileId || b == kInvalidFileId) {
    return;
  }
  bool inserted = false;
  investigated_.InsertOrGet(PairKey(a, b), &inserted) += strength;
  if (inserted) {
    const FileId hi = std::max(a, b);
    if (inv_partners_.size() <= hi) {
      inv_partners_.resize(hi + 1);
    }
    inv_partners_[a].push_back(b);
    inv_partners_[b].push_back(a);
  }
  // Even a repeat pair changes the accumulated strength, hence both
  // endpoints' edge scores.
  inv_dirty_.push_back(a);
  inv_dirty_.push_back(b);
}

void ClusterBuilder::ClearInvestigatedPairs() {
  investigated_.Clear();
  inv_partners_.clear();
  inv_dirty_.clear();
  inv_cleared_ = true;
}

double ClusterBuilder::InvestigatedStrength(FileId a, FileId b) const {
  const double* strength = investigated_.Find(PairKey(a, b));
  return strength == nullptr ? 0.0 : *strength;
}

void ClusterBuilder::set_threads(int threads) {
  threads_ = threads;
  const int want = threads_ > 0 ? threads_ : DefaultThreadCount();
  if (pool_ != nullptr && pool_threads_ != want) {
    pool_.reset();
  }
}

int ClusterBuilder::threads() const {
  return threads_ > 0 ? threads_ : DefaultThreadCount();
}

void ClusterBuilder::set_shared_pool(ThreadPool* pool) {
  shared_pool_ = pool;
  if (pool != nullptr) {
    pool_.reset();
  }
}

ThreadPool* ClusterBuilder::Pool() const {
  if (shared_pool_ != nullptr) {
    return shared_pool_;
  }
  const int want = threads_ > 0 ? threads_ : DefaultThreadCount();
  if (pool_ == nullptr || pool_threads_ != want) {
    pool_ = std::make_unique<ThreadPool>(want);
    pool_threads_ = want;
  }
  return pool_.get();
}

double ClusterBuilder::AdjustedSharedCount(FileId from, FileId to) const {
  // Raw shared-neighbor count over the relation table's (partial)
  // knowledge.
  std::vector<FileId> a;
  std::vector<FileId> b;
  a.reserve(relations_->max_neighbors());
  b.reserve(relations_->max_neighbors());
  relations_->LiveNeighborIds(from, &a);
  relations_->LiveNeighborIds(to, &b);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t shared = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++shared;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }

  double x = static_cast<double>(shared);
  // Directory distance is evidence of separation: subtract (Section 3.3.3).
  if (params_.dir_distance_weight > 0.0) {
    x -= params_.dir_distance_weight *
         static_cast<double>(DirectoryDistance(files_->PathOf(from), files_->PathOf(to)));
  }
  // Investigator relations are evidence of closeness: add.
  x += params_.investigator_weight * InvestigatedStrength(from, to);
  return x;
}

void ClusterBuilder::RefreshFileInputs(FileId f) const {
  std::vector<FileId>& row = live_row_[f];
  row.clear();
  // Append overload: one pass over the id stripe, no temporary vector.
  relations_->LiveNeighborIds(f, &row);
  std::sort(row.begin(), row.end());

  // One interner shared-lock hit per refreshed file, not per scored edge;
  // the view is stable (the interner is append-only).
  const std::string_view path = files_->PathOf(f);
  file_path_[f] = path;
  std::vector<std::string_view>& dirs = file_dirs_[f];
  dirs.clear();
  const size_t comps = CountComponents(path);
  const size_t want = comps > 0 ? comps - 1 : 0;  // drop the basename
  dirs.reserve(want);
  size_t pos = 0;
  while (pos < path.size() && dirs.size() < want) {
    while (pos < path.size() && path[pos] == '/') {
      ++pos;
    }
    const size_t start = pos;
    while (pos < path.size() && path[pos] != '/') {
      ++pos;
    }
    if (pos > start) {
      dirs.push_back(path.substr(start, pos - start));
    }
  }
}

int ClusterBuilder::DirDistance(FileId a, FileId b) const {
  const std::vector<std::string_view>& da = file_dirs_[a];
  const std::vector<std::string_view>& db = file_dirs_[b];
  size_t common = 0;
  while (common < da.size() && common < db.size() && da[common] == db[common]) {
    ++common;
  }
  return static_cast<int>((da.size() - common) + (db.size() - common));
}

bool ClusterBuilder::PlanIncremental(const std::vector<FileId>& candidates) const {
  const size_t n = candidates.size();
  rescore_.assign(n, kFullRescore);
  fast_union_ok_ = false;
  stats_.dirty_files = 0;
  if (!incremental_enabled_ || !cache_valid_ || inv_cleared_) {
    return false;
  }

  // D: files whose live neighbor sets (or investigated strengths, or
  // candidacy) may have changed since the cached build. Files entering or
  // leaving the candidate set dirty their reverse neighbors too: those
  // rows gained or lost a live member without any relation-table event.
  std::vector<FileId> dirty;
  relations_->CollectChangedSince(built_epoch_, &dirty);
  dirty.insert(dirty.end(), inv_dirty_.begin(), inv_dirty_.end());
  fast_union_ok_ = true;
  for (const FileId f : candidates) {
    if (f >= was_candidate_.size() || !was_candidate_[f]) {
      dirty.push_back(f);
      const std::vector<FileId>& rev = relations_->ReverseNeighborsOf(f);
      dirty.insert(dirty.end(), rev.begin(), rev.end());
    }
  }
  for (const FileId f : cached_candidates_) {
    if (f >= slot_of_.size() || slot_of_[f] == kNoSlot) {
      // A removed candidate may have been the only connection between its
      // former cluster-mates, so the cached component labels are void.
      fast_union_ok_ = false;
      dirty.push_back(f);
      const std::vector<FileId>& rev = relations_->ReverseNeighborsOf(f);
      dirty.insert(dirty.end(), rev.begin(), rev.end());
    }
  }

  dirty_flag_.assign(slot_of_.size(), 0);
  std::vector<FileId> unique_dirty;
  unique_dirty.reserve(dirty.size());
  for (const FileId d : dirty) {
    if (d >= dirty_flag_.size() || dirty_flag_[d]) {
      continue;  // beyond every table: no slot, no rows, nothing to rescore
    }
    dirty_flag_[d] = 1;
    unique_dirty.push_back(d);
  }
  stats_.dirty_files = unique_dirty.size();

  // A: candidate slots whose cached edge buckets may hold a stale score —
  // the dirty files themselves (their own row changed: full rescore), plus
  // every file whose list names a dirty file and every investigated
  // partner (only edges *to* the dirty file are stale: partial rescore).
  rescore_.assign(n, kKeepBucket);
  size_t rescore_count = 0;
  auto mark = [&](FileId f, uint8_t mode) {
    if (f >= slot_of_.size()) {
      return;
    }
    const uint32_t slot = slot_of_[f];
    if (slot == kNoSlot) {
      return;
    }
    if (rescore_[slot] == kKeepBucket) {
      ++rescore_count;
    }
    if (rescore_[slot] < mode) {
      rescore_[slot] = mode;
    }
  };
  for (const FileId d : unique_dirty) {
    mark(d, kFullRescore);
    for (const FileId owner : relations_->ReverseNeighborsOf(d)) {
      mark(owner, kPartialRescore);
    }
    if (d < inv_partners_.size()) {
      for (const FileId partner : inv_partners_[d]) {
        mark(partner, kPartialRescore);
      }
    }
  }

  if (static_cast<double>(rescore_count) >
      kIncrementalFallbackFraction * static_cast<double>(n)) {
    rescore_.assign(n, kFullRescore);
    return false;
  }

  // Only dirty candidates need their cached scoring inputs rebuilt; every
  // other candidate's row/path/dir caches are unchanged by construction.
  refresh_.clear();
  for (const FileId d : unique_dirty) {
    if (slot_of_[d] != kNoSlot) {
      refresh_.push_back(d);
    }
  }
  return true;
}

struct ClusterBuilder::ScoreScratch {
  std::vector<FileId> near;
  std::vector<FileId> far;
  std::vector<FileId> old_near;
};

void ClusterBuilder::ScoreSlot(uint32_t slot, const std::vector<FileId>& candidates,
                               uint8_t mode, ScoreScratch* s, size_t* edges_scored,
                               uint8_t* removed_flag) const {
  const FileId f = candidates[slot];
  std::vector<FileId>& bucket = edge_cache_[f];
  const std::vector<FileId>& frow = live_row_[f];
  const double near_threshold = static_cast<double>(params_.cluster_near);
  const double far_threshold = static_cast<double>(params_.cluster_far);
  s->near.clear();
  s->far.clear();
  s->old_near.clear();

  // For the fast union path: remember which near edges (to still-live
  // candidates) the cached bucket had, to detect disappearing ones below.
  // A file re-entering the candidate set may carry a stale bucket from two
  // builds ago; its label is unusable anyway, so don't let it flag.
  const bool track_removal =
      removed_flag != nullptr && f < was_candidate_.size() && was_candidate_[f];
  if (track_removal) {
    const uint32_t nc = std::min<uint32_t>(near_count_[f], bucket.size());
    for (uint32_t i = 0; i < nc; ++i) {
      const FileId g = bucket[i];
      if (g < slot_of_.size() && slot_of_[g] != kNoSlot) {
        s->old_near.push_back(g);
      }
    }
  }

  auto score_edge = [&](FileId g) {
    const std::vector<FileId>& grow = live_row_[g];
    size_t shared = 0;
    size_t a = 0;
    size_t b = 0;
    while (a < frow.size() && b < grow.size()) {
      if (frow[a] == grow[b]) {
        ++shared;
        ++a;
        ++b;
      } else if (frow[a] < grow[b]) {
        ++a;
      } else {
        ++b;
      }
    }
    double x = static_cast<double>(shared);
    if (params_.dir_distance_weight > 0.0) {
      x -= params_.dir_distance_weight * static_cast<double>(DirDistance(f, g));
    }
    x += params_.investigator_weight * InvestigatedStrength(f, g);
    ++*edges_scored;
    if (x >= near_threshold) {
      s->near.push_back(g);
    } else if (x >= far_threshold) {
      s->far.push_back(g);
    }
  };

  if (mode == kFullRescore) {
    for (const FileId g : frow) {
      if (g == f || g >= slot_of_.size() || slot_of_[g] == kNoSlot) {
        continue;
      }
      score_edge(g);
    }
    if (f < inv_partners_.size()) {
      for (const FileId partner : inv_partners_[f]) {
        if (partner >= slot_of_.size() || slot_of_[partner] == kNoSlot) {
          continue;
        }
        // Already scored through the neighbor row above.
        if (std::binary_search(frow.begin(), frow.end(), partner)) {
          continue;
        }
        score_edge(partner);
      }
    }
  } else {
    // Partial: f's own row is unchanged, so only edges touching dirty
    // targets can have moved. Keep every clean cached edge and rescore
    // exactly the dirty ones (dropped here, re-examined below — any edge
    // to a dirty target must come back through f's row or partner list,
    // both of which are stable for a clean f).
    const uint32_t nc = std::min<uint32_t>(near_count_[f], bucket.size());
    for (uint32_t i = 0; i < bucket.size(); ++i) {
      const FileId g = bucket[i];
      if (g < dirty_flag_.size() && dirty_flag_[g]) {
        continue;
      }
      (i < nc ? s->near : s->far).push_back(g);
    }
    for (const FileId g : frow) {
      if (g == f || g >= slot_of_.size() || slot_of_[g] == kNoSlot || !dirty_flag_[g]) {
        continue;
      }
      score_edge(g);
    }
    if (f < inv_partners_.size()) {
      for (const FileId partner : inv_partners_[f]) {
        if (partner >= slot_of_.size() || slot_of_[partner] == kNoSlot ||
            !dirty_flag_[partner]) {
          continue;
        }
        if (std::binary_search(frow.begin(), frow.end(), partner)) {
          continue;
        }
        score_edge(partner);
      }
    }
  }

  if (track_removal) {
    for (const FileId g : s->old_near) {
      if (std::find(s->near.begin(), s->near.end(), g) == s->near.end()) {
        *removed_flag = 1;
        break;
      }
    }
  }

  bucket.clear();
  bucket.reserve(s->near.size() + s->far.size());
  bucket.insert(bucket.end(), s->near.begin(), s->near.end());
  bucket.insert(bucket.end(), s->far.begin(), s->far.end());
  near_count_[f] = static_cast<uint32_t>(s->near.size());
  has_far_[f] = s->far.empty() ? 0 : 1;
}

ClusterSet ClusterBuilder::Build(const std::vector<FileId>& candidates) const {
  const auto start = std::chrono::steady_clock::now();
  const uint64_t epoch_now = relations_->set_change_epoch();
  const size_t n = candidates.size();

  stats_ = ClusterBuildStats{};
  stats_.candidates = n;

  const auto MsSince = [](std::chrono::steady_clock::time_point from) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - from)
        .count();
  };

  auto mark = std::chrono::steady_clock::now();
  size_t max_file = files_->size();
  for (const FileId f : candidates) {
    max_file = std::max(max_file, static_cast<size_t>(f) + 1);
  }
  slot_of_.assign(max_file, kNoSlot);
  for (size_t i = 0; i < n; ++i) {
    slot_of_[candidates[i]] = static_cast<uint32_t>(i);
  }
  if (live_row_.size() < max_file) {
    live_row_.resize(max_file);
    file_path_.resize(max_file);
    file_dirs_.resize(max_file);
  }
  if (edge_cache_.size() < max_file) {
    edge_cache_.resize(max_file);
    near_count_.resize(max_file, 0);
    has_far_.resize(max_file, 0);
  }
  stats_.pack_ms = MsSince(mark);

  mark = std::chrono::steady_clock::now();
  const bool incremental = PlanIncremental(candidates);
  stats_.plan_ms = MsSince(mark);
  stats_.incremental = incremental;
  if (!incremental) {
    refresh_ = candidates;  // full pass: rebuild every candidate's inputs
  }

  ThreadPool* pool = Pool();
  stats_.threads = pool->threads();

  // Shared dispatcher for the parallel phases: runs body(lo, hi) over
  // [0, items), inline when the pool is serial or the work is under the
  // adaptive cutoff, otherwise in coarse contiguous ranges (see the
  // granularity constants above). Every body is a pure per-item function
  // with disjoint writes, so the split cannot affect results.
  const auto RunRanges = [&](size_t items, const std::function<void(size_t, size_t)>& body) {
    const size_t workers = static_cast<size_t>(pool->threads());
    const size_t chunks =
        std::min(workers * kChunksPerThread, (items + kMinChunk - 1) / kMinChunk);
    if (workers <= 1 || items <= kSerialCutoff || chunks <= 1) {
      body(0, items);
      return;
    }
    const size_t per = (items + chunks - 1) / chunks;
    pool->ParallelChunks(chunks, [&](size_t c) {
      const size_t lo = c * per;
      const size_t hi = std::min(items, lo + per);
      if (lo < hi) {
        body(lo, hi);
      }
    });
  };

  // Input refresh: rebuild the cached live-neighbor rows / path views of
  // refresh_ in parallel. Writes are disjoint per file and each result is a
  // pure per-file function, so order (and thread count) cannot matter.
  mark = std::chrono::steady_clock::now();
  if (!refresh_.empty()) {
    RunRanges(refresh_.size(), [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        RefreshFileInputs(refresh_[i]);
      }
    });
  }
  stats_.pack_ms += MsSince(mark);

  // Scoring phase: recompute the edge bucket of every slot marked for
  // rescore, in parallel. Buckets are disjoint per slot, all other state is
  // read-only, and the bucket content is a pure function of the cached
  // inputs — so the merge below is order-independent and the output is
  // identical at any thread count. The removal flag is an OR over slots,
  // equally order-independent.
  std::vector<uint32_t> work;
  work.reserve(n);
  for (uint32_t slot = 0; slot < n; ++slot) {
    if (rescore_[slot] != kKeepBucket) {
      work.push_back(slot);
    }
  }
  mark = std::chrono::steady_clock::now();
  std::atomic<size_t> edges_scored{0};
  std::vector<uint8_t> edge_removed(n, 0);  // per slot, disjoint writes
  const bool fast_union = incremental && fast_union_ok_ && comp_valid_;
  if (!work.empty()) {
    RunRanges(work.size(), [&](size_t lo, size_t hi) {
      ScoreScratch scratch;
      size_t local = 0;
      for (size_t w = lo; w < hi; ++w) {
        ScoreSlot(work[w], candidates, rescore_[work[w]], &scratch, &local,
                  fast_union ? &edge_removed[work[w]] : nullptr);
      }
      edges_scored.fetch_add(local, std::memory_order_relaxed);
    });
  }
  stats_.files_rescored = work.size();
  stats_.edges_scored = edges_scored.load(std::memory_order_relaxed);
  stats_.score_ms = MsSince(mark);
  mark = std::chrono::steady_clock::now();

  // Phase one (sequential): combine clusters across near edges. Cached
  // buckets may name files that are no longer candidates; the slot lookup
  // filters them. On the fast path, a component whose near edges all
  // survived is replayed from its cached label (one trivial union per
  // member); a component that lost a near edge may have split, so every
  // member's bucket is rescanned — near edges never cross phase-one
  // component boundaries, so per-component re-derivation is complete.
  // Rescored buckets are always scanned to pick up brand-new edges.
  // Either way the final relation equals components(current edge set), so
  // the output matches a full scan exactly.
  Dsu dsu(n);
  std::vector<uint8_t> comp_dirty;  // by representative FileId
  if (fast_union) {
    comp_dirty.assign(comp_rep_.size(), 0);
    for (uint32_t slot = 0; slot < n; ++slot) {
      if (!edge_removed[slot]) {
        continue;
      }
      const FileId f = candidates[slot];
      if (f < comp_rep_.size() && comp_rep_[f] != kInvalidFileId) {
        comp_dirty[comp_rep_[f]] = 1;
      }
    }
  }
  for (uint32_t slot = 0; slot < n; ++slot) {
    const FileId f = candidates[slot];
    if (fast_union) {
      bool scan = rescore_[slot] != kKeepBucket;
      if (f < was_candidate_.size() && was_candidate_[f]) {
        const FileId rep = comp_rep_[f];
        if (rep != kInvalidFileId && comp_dirty[rep]) {
          scan = true;
        } else if (rep != f && rep < slot_of_.size() && slot_of_[rep] != kNoSlot) {
          dsu.Union(slot, slot_of_[rep]);
        }
      }
      if (!scan) {
        continue;
      }
    }
    const std::vector<FileId>& bucket = edge_cache_[f];
    const uint32_t nc = std::min<uint32_t>(near_count_[f], bucket.size());
    for (uint32_t i = 0; i < nc; ++i) {
      const FileId g = bucket[i];
      const uint32_t other = g < slot_of_.size() ? slot_of_[g] : kNoSlot;
      if (other != kNoSlot) {
        dsu.Union(slot, other);
      }
    }
  }

  // Materialise phase-one clusters, numbered by first-touched member so the
  // output order is independent of DSU root identity. The first member also
  // becomes the component's cached label for the next fast union.
  std::vector<uint32_t> root_to_cluster(n, kNoSlot);
  std::vector<uint32_t> cluster_of(n);
  std::vector<FileId> first_member;
  std::vector<std::vector<FileId>> members;
  if (comp_rep_.size() < max_file) {
    comp_rep_.resize(max_file, kInvalidFileId);
  }
  for (uint32_t slot = 0; slot < n; ++slot) {
    const uint32_t root = dsu.Find(slot);
    if (root_to_cluster[root] == kNoSlot) {
      root_to_cluster[root] = static_cast<uint32_t>(members.size());
      members.emplace_back();
      first_member.push_back(candidates[slot]);
    }
    const uint32_t cluster = root_to_cluster[root];
    members[cluster].push_back(candidates[slot]);
    cluster_of[slot] = cluster;
    comp_rep_[candidates[slot]] = first_member[cluster];
  }
  comp_valid_ = true;

  // Phase two: overlap clusters across far edges — each file joins the
  // other's phase-one cluster, with no merge. Clusters untouched here keep
  // their phase-one member lists, which are already sorted and unique
  // (slots are walked in order and candidates ascend), so only touched
  // clusters need the sort/dedup below.
  std::vector<uint8_t> cluster_touched(members.size(), 0);
  for (uint32_t slot = 0; slot < n; ++slot) {
    const FileId f = candidates[slot];
    if (!has_far_[f]) {
      continue;  // flag maintained with the bucket: skip the header load
    }
    const std::vector<FileId>& bucket = edge_cache_[f];
    const uint32_t nc = std::min<uint32_t>(near_count_[f], bucket.size());
    for (uint32_t i = nc; i < bucket.size(); ++i) {
      const FileId g = bucket[i];
      const uint32_t other = g < slot_of_.size() ? slot_of_[g] : kNoSlot;
      if (other == kNoSlot || cluster_of[slot] == cluster_of[other]) {
        continue;
      }
      members[cluster_of[other]].push_back(f);
      members[cluster_of[slot]].push_back(candidates[other]);
      cluster_touched[cluster_of[other]] = 1;
      cluster_touched[cluster_of[slot]] = 1;
    }
  }

  // Sort/dedup the touched clusters' members in parallel (clusters are
  // disjoint vectors; sorting is per-cluster pure, so order cannot matter).
  std::vector<uint32_t> touched_list;
  for (uint32_t c = 0; c < cluster_touched.size(); ++c) {
    if (cluster_touched[c]) {
      touched_list.push_back(c);
    }
  }
  if (!touched_list.empty()) {
    RunRanges(touched_list.size(), [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        std::vector<FileId>& m = members[touched_list[i]];
        std::sort(m.begin(), m.end());
        m.erase(std::unique(m.begin(), m.end()), m.end());
      }
    });
  }

  // Identical clusters can only arise from far overlap (phase-one clusters
  // are disjoint), so only touched clusters need the duplicate check:
  // overlapping two singletons yields two identical clusters; keep one.
  ClusterSet out;
  out.clusters.reserve(members.size());
  std::set<std::vector<FileId>> emitted;
  for (uint32_t c = 0; c < members.size(); ++c) {
    std::vector<FileId>& m = members[c];
    if (cluster_touched[c] && !emitted.insert(m).second) {
      continue;
    }
    out.clusters.push_back(Cluster{std::move(m)});
  }

  // Membership identity hashes for the hoard plane's aggregate cache.
  // Members are sorted unique, so the fold is deterministic; computed here
  // where the members are already hot in cache.
  out.member_hash.resize(out.clusters.size());
  for (size_t ci = 0; ci < out.clusters.size(); ++ci) {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const FileId id : out.clusters[ci].members) {
      uint64_t x = h ^ (static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ull);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      h = x ^ (x >> 31);
    }
    out.member_hash[ci] = h;
  }

  // Membership as CSR: count, prefix-sum, fill. Clusters are walked in
  // ascending index order, so each file's index list comes out ascending.
  const size_t nf = slot_of_.size();
  out.membership_offset.assign(nf + 1, 0);
  for (const Cluster& c : out.clusters) {
    for (const FileId id : c.members) {
      ++out.membership_offset[id + 1];
    }
  }
  for (size_t i = 0; i < nf; ++i) {
    out.membership_offset[i + 1] += out.membership_offset[i];
  }
  out.membership_ids.resize(out.membership_offset[nf]);
  std::vector<uint32_t> cursor(out.membership_offset.begin(), out.membership_offset.end() - 1);
  for (size_t ci = 0; ci < out.clusters.size(); ++ci) {
    for (const FileId id : out.clusters[ci].members) {
      out.membership_ids[cursor[id]++] = static_cast<uint32_t>(ci);
    }
  }

  stats_.merge_ms = MsSince(mark);

  cache_valid_ = true;
  built_epoch_ = epoch_now;
  cached_candidates_ = candidates;
  was_candidate_.assign(slot_of_.size(), 0);
  for (const FileId f : candidates) {
    was_candidate_[f] = 1;
  }
  inv_dirty_.clear();
  inv_cleared_ = false;

  stats_.build_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return out;
}

}  // namespace seer
