#include "src/core/clustering.h"

#include <algorithm>
#include <set>

#include "src/util/path.h"

namespace seer {

namespace {

// Disjoint-set union with path halving.
class Dsu {
 public:
  explicit Dsu(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) {
      parent_[i] = static_cast<uint32_t>(i);
    }
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) {
      parent_[b] = a;
    }
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

const std::vector<uint32_t>& ClusterSet::ClustersOf(FileId id) const {
  static const std::vector<uint32_t> kEmpty;
  const auto it = membership.find(id);
  return it == membership.end() ? kEmpty : it->second;
}

ClusterBuilder::ClusterBuilder(const SeerParams& params, const FileTable* files,
                               const RelationTable* relations)
    : params_(params), files_(files), relations_(relations) {}

uint64_t ClusterBuilder::PairKey(FileId a, FileId b) const {
  const FileId lo = std::min(a, b);
  const FileId hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

void ClusterBuilder::AddInvestigatedPair(FileId a, FileId b, double strength) {
  if (a == b) {
    return;
  }
  investigated_[PairKey(a, b)] += strength;
}

void ClusterBuilder::ClearInvestigatedPairs() { investigated_.clear(); }

double ClusterBuilder::InvestigatedStrength(FileId a, FileId b) const {
  const auto it = investigated_.find(PairKey(a, b));
  return it == investigated_.end() ? 0.0 : it->second;
}

double ClusterBuilder::AdjustedSharedCount(FileId from, FileId to) const {
  // Raw shared-neighbor count over the relation table's (partial)
  // knowledge.
  std::vector<FileId> a = relations_->LiveNeighborIds(from);
  std::vector<FileId> b = relations_->LiveNeighborIds(to);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t shared = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++shared;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }

  double x = static_cast<double>(shared);
  // Directory distance is evidence of separation: subtract (Section 3.3.3).
  if (params_.dir_distance_weight > 0.0) {
    x -= params_.dir_distance_weight *
         static_cast<double>(DirectoryDistance(files_->PathOf(from), files_->PathOf(to)));
  }
  // Investigator relations are evidence of closeness: add.
  x += params_.investigator_weight * InvestigatedStrength(from, to);
  return x;
}

ClusterSet ClusterBuilder::Build(const std::vector<FileId>& candidates) const {
  // Dense re-index so the DSU array covers only candidate files.
  std::unordered_map<FileId, uint32_t> index;
  index.reserve(candidates.size());
  for (uint32_t i = 0; i < candidates.size(); ++i) {
    index.emplace(candidates[i], i);
  }

  // Candidate pairs: (F, G) where G is in F's relation list, plus every
  // investigated pair — the latter are tested regardless of whether a
  // semantic distance was ever stored (Section 3.3.3).
  struct Pair {
    uint32_t a;
    uint32_t b;
    double x;
  };
  std::vector<Pair> near_pairs;
  std::vector<Pair> far_pairs;

  auto consider = [&](FileId f, FileId g) {
    const auto ia = index.find(f);
    const auto ib = index.find(g);
    if (ia == index.end() || ib == index.end()) {
      return;
    }
    const double x = AdjustedSharedCount(f, g);
    if (x >= static_cast<double>(params_.cluster_near)) {
      near_pairs.push_back({ia->second, ib->second, x});
    } else if (x >= static_cast<double>(params_.cluster_far)) {
      far_pairs.push_back({ia->second, ib->second, x});
    }
  };

  std::set<uint64_t> seen;
  for (const FileId f : candidates) {
    for (const FileId g : relations_->LiveNeighborIds(f)) {
      if (f != g && seen.insert(PairKey(f, g) * 2 + (f > g ? 1 : 0)).second) {
        consider(f, g);
      }
    }
  }
  for (const auto& [key, strength] : investigated_) {
    const FileId a = static_cast<FileId>(key >> 32);
    const FileId b = static_cast<FileId>(key & 0xffffffffu);
    if (seen.insert(key * 2).second) {
      consider(a, b);
    }
    if (seen.insert(key * 2 + 1).second) {
      consider(b, a);
    }
  }

  // Phase one: combine clusters of pairs sharing at least kn neighbors.
  Dsu dsu(candidates.size());
  for (const Pair& p : near_pairs) {
    dsu.Union(p.a, p.b);
  }

  // Materialise phase-one clusters.
  std::unordered_map<uint32_t, uint32_t> root_to_cluster;
  std::vector<std::set<FileId>> members;
  std::vector<uint32_t> cluster_of(candidates.size());
  for (uint32_t i = 0; i < candidates.size(); ++i) {
    const uint32_t root = dsu.Find(i);
    auto [it, inserted] = root_to_cluster.emplace(root, static_cast<uint32_t>(members.size()));
    if (inserted) {
      members.emplace_back();
    }
    members[it->second].insert(candidates[i]);
    cluster_of[i] = it->second;
  }

  // Phase two: overlap clusters of pairs sharing at least kf (but fewer
  // than kn) neighbors — each file joins the other's cluster, with no
  // merge.
  for (const Pair& p : far_pairs) {
    if (cluster_of[p.a] == cluster_of[p.b]) {
      continue;  // already together
    }
    members[cluster_of[p.b]].insert(candidates[p.a]);
    members[cluster_of[p.a]].insert(candidates[p.b]);
  }

  ClusterSet out;
  out.clusters.reserve(members.size());
  std::set<std::vector<FileId>> emitted;
  for (auto& m : members) {
    Cluster c;
    c.members.assign(m.begin(), m.end());
    // Overlapping two singletons yields two identical clusters; keep one.
    if (!emitted.insert(c.members).second) {
      continue;
    }
    const uint32_t cluster_index = static_cast<uint32_t>(out.clusters.size());
    for (const FileId id : c.members) {
      out.membership[id].push_back(cluster_index);
    }
    out.clusters.push_back(std::move(c));
  }
  return out;
}

}  // namespace seer
