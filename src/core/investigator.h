// External investigators.
//
// An external investigator is an auxiliary program that examines selected
// files, extracts application-specific relationship information, and feeds
// it to the correlator as groups of related files with a strength weight
// (Section 3.2). The clustering stage adds the strength to the
// shared-neighbor count (Section 3.3.3), so a strong enough investigator
// can force files into one project.
//
// Two concrete investigators ship with the library:
//   * IncludeScanner — reads C/C++ sources for #include "..." lines (the
//     paper's example investigator);
//   * MakefileInvestigator — parses `target: dep...` rules, able to
//     identify every file needed to build a program (the paper's suggested
//     extension).
#ifndef SRC_CORE_INVESTIGATOR_H_
#define SRC_CORE_INVESTIGATOR_H_

#include <string>
#include <vector>

#include "src/vfs/sim_filesystem.h"

namespace seer {

// A group of mutually related files; every pair inside the group receives
// `strength` as additional shared-neighbor evidence.
struct InvestigatedRelation {
  std::vector<std::string> files;
  double strength = 1.0;
};

class Investigator {
 public:
  virtual ~Investigator() = default;

  virtual std::string Name() const = 0;

  // Examines `candidates` (absolute paths) against the filesystem and
  // returns any discovered relations.
  virtual std::vector<InvestigatedRelation> Investigate(
      const SimFilesystem& fs, const std::vector<std::string>& candidates) = 0;
};

// Discovers `#include "relative/path.h"` relationships in C/C++ sources.
// Only quoted includes are followed (angle-bracket system headers are the
// frequently-referenced-file filter's business). Relative targets are
// resolved against the including file's directory.
class IncludeScanner : public Investigator {
 public:
  explicit IncludeScanner(double strength = 4.0) : strength_(strength) {}

  std::string Name() const override { return "include-scanner"; }

  std::vector<InvestigatedRelation> Investigate(
      const SimFilesystem& fs, const std::vector<std::string>& candidates) override;

  // Extracts quoted include targets from one source text (exposed for
  // testing).
  static std::vector<std::string> ParseIncludes(const std::string& source);

  // Extracts angle-bracket (system) include targets. The scanner itself
  // ignores these — system headers are the frequent-file filter's business —
  // but the workload's simulated compiler needs them to open the right
  // headers.
  static std::vector<std::string> ParseSystemIncludes(const std::string& source);

 private:
  double strength_;
};

// Discovers `target: dep1 dep2 ...` rules in files named "Makefile" or
// "makefile". Each rule yields one relation containing the target and all
// of its dependencies, resolved against the Makefile's directory.
class MakefileInvestigator : public Investigator {
 public:
  explicit MakefileInvestigator(double strength = 6.0) : strength_(strength) {}

  std::string Name() const override { return "makefile"; }

  std::vector<InvestigatedRelation> Investigate(
      const SimFilesystem& fs, const std::vector<std::string>& candidates) override;

  // Parses rules from one Makefile text; returns (target, deps) pairs.
  static std::vector<std::pair<std::string, std::vector<std::string>>> ParseRules(
      const std::string& text);

 private:
  double strength_;
};

// Discovers document embedding links — the analogue of WINDOWS OLE "hot
// links" the paper names as a third source of relationship information
// (Section 3.2). Our document format marks embeddings with lines of the
// form "LINK: relative/or/absolute/path"; each document yields one relation
// containing itself and every resolvable link target.
class HotLinkInvestigator : public Investigator {
 public:
  explicit HotLinkInvestigator(double strength = 5.0) : strength_(strength) {}

  std::string Name() const override { return "hot-links"; }

  std::vector<InvestigatedRelation> Investigate(
      const SimFilesystem& fs, const std::vector<std::string>& candidates) override;

  // Extracts link targets from one document body (exposed for testing).
  static std::vector<std::string> ParseLinks(const std::string& text);

 private:
  double strength_;
};

}  // namespace seer

#endif  // SRC_CORE_INVESTIGATOR_H_
