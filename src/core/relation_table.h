// Per-file nearest-neighbor relation table.
//
// Storing all O(N^2) pairwise distances is prohibitive (Section 3.1.3), so
// SEER keeps, for each file, only the n closest neighbors it has observed.
// Each entry accumulates the observed reference distances with a geometric
// (or, for ablation, arithmetic) mean. When a closer candidate arrives and
// the list is full, replacement follows the paper's priority:
//   1. an entry whose file is marked for deletion;
//   2. the entry with the largest current mean distance (ties broken
//      randomly), replaced only if its mean exceeds the candidate's value;
//   3. an aged entry — very old and inactive — may be replaced by a newer
//      candidate regardless of distance.
#ifndef SRC_CORE_RELATION_TABLE_H_
#define SRC_CORE_RELATION_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/core/file_table.h"
#include "src/core/params.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace seer {

struct Neighbor {
  FileId id = kInvalidFileId;
  double log_sum = 0.0;       // geometric-mean accumulator (log space)
  double linear_sum = 0.0;    // arithmetic-mean accumulator
  uint32_t observations = 0;
  uint64_t last_update = 0;   // global update counter value

  double MeanDistance(MeanKind kind) const;
};

class RelationTable {
 public:
  RelationTable(const SeerParams& params, const FileTable* files, uint64_t seed = 0x5ee12);

  // Records an observation `distance` for the ordered pair (from -> to).
  void Observe(FileId from, FileId to, double distance);

  // Neighbor list of `from` (unordered). Empty for unknown files.
  const std::vector<Neighbor>& NeighborsOf(FileId from) const;

  // Neighbor ids only (excluding deletion-marked and excluded files).
  std::vector<FileId> LiveNeighborIds(FileId from) const;

  // Mean distance from -> to, or a negative value when not tracked.
  double DistanceOrNegative(FileId from, FileId to) const;

  // Drops `id` from every list and clears its own list. Called when a file
  // is purged after its deletion delay or excluded as frequent. O(degree)
  // via the reverse index, not a scan of every list.
  void Purge(FileId id);

  uint64_t update_count() const { return update_count_; }

  // --- clustering support: set-change epochs + reverse index ---------------
  //
  // The incremental cluster rebuild needs to know which files' *live
  // neighbor sets* may differ from the last build. The table stamps a
  // monotonically increasing epoch on every structural list change (entry
  // added, replaced, or removed — folding a new observation into an
  // existing entry does not change the set and is not stamped), and the
  // correlator calls MarkSetChanged when a file's liveness or pathname
  // flips out-of-band (rename), which dirties the file and every list that
  // names it.

  // Current global set-change epoch (stamped value of the latest change).
  uint64_t set_change_epoch() const { return set_change_epoch_; }

  // Appends every file whose set-change stamp is newer than `epoch`.
  void CollectChangedSince(uint64_t epoch, std::vector<FileId>* out) const;

  // Files whose neighbor lists currently contain `id` (unordered).
  const std::vector<FileId>& ReverseNeighborsOf(FileId id) const;

  // Records that `id`'s liveness or pathname changed: stamps `id` and every
  // reverse neighbor (their live sets changed too).
  void MarkSetChanged(FileId id);

  // Approximate bytes used, for the Section 5.3 memory accounting bench.
  size_t MemoryBytes() const;

  // --- persistence support --------------------------------------------------
  void RestoreList(FileId from, std::vector<Neighbor> neighbors);
  void set_update_count(uint64_t count) { update_count_ = count; }

  // The tie-break generator state travels with the snapshot so that
  // updates replayed from the WAL after recovery break ties exactly as the
  // never-crashed instance would have.
  void GetRngState(uint64_t out[4]) const { rng_.GetState(out); }
  void SetRngState(const uint64_t in[4]) { rng_.SetState(in); }

 private:
  void EnsureSize(FileId id);
  void Stamp(FileId id);
  void RevAdd(FileId owner, FileId neighbor);
  void RevRemove(FileId owner, FileId neighbor);

  SeerParams params_;
  const FileTable* files_;
  std::vector<std::vector<Neighbor>> lists_;
  // reverse_[id] = files whose lists contain id. Maintained by every list
  // mutation; an id appears at most once per owner (lists are id-unique).
  std::vector<std::vector<FileId>> reverse_;
  // Per-file stamp of the last set change, against set_change_epoch_.
  std::vector<uint64_t> set_stamp_;
  uint64_t set_change_epoch_ = 0;
  uint64_t update_count_ = 0;
  mutable Rng rng_;
  std::vector<Neighbor> empty_;
  std::vector<FileId> empty_ids_;
};

}  // namespace seer

#endif  // SRC_CORE_RELATION_TABLE_H_
