// Per-file nearest-neighbor relation table.
//
// Storing all O(N^2) pairwise distances is prohibitive (Section 3.1.3), so
// SEER keeps, for each file, only the n closest neighbors it has observed.
// Each entry accumulates the observed reference distances with a geometric
// (or, for ablation, arithmetic) mean. When a closer candidate arrives and
// the list is full, replacement follows the paper's priority:
//   1. an entry whose file is marked for deletion;
//   2. the entry with the largest current mean distance (ties broken
//      randomly), replaced only if its mean exceeds the candidate's value;
//   3. an aged entry — very old and inactive — may be replaced by a newer
//      candidate regardless of distance.
//
// Storage is a fixed-capacity inline slab, not per-file heap vectors: each
// file owns n slots in structure-of-arrays form, indexed
// `from * max_neighbors + slot`, with a dense-prefix entry count per file.
// Appends push onto the prefix, replacements overwrite a slot in place and
// removals swap the last entry down — exactly the ordering the old
// vector<Neighbor> lists produced, so snapshots are byte-compatible — but
// a full-list scan is one contiguous stripe of each array (the id stripe
// for membership, the mean stripe for replacement) and steady-state
// ingest performs no per-list allocation at all.
#ifndef SRC_CORE_RELATION_TABLE_H_
#define SRC_CORE_RELATION_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/core/file_table.h"
#include "src/core/params.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace seer {

// Copy of one stripe of the relation slab, taken at a checkpoint seal.
// Entries are packed file-major — file f's neighbors occupy the range
// [sum(counts[0..f)), +counts[f]) of each array — so the seal copies only
// live entries, never the slab's dead capacity slots. Sealing is the only
// work done while ingest is paused; keeping it proportional to live data
// (not reserved capacity) is what bounds the checkpoint stall.
struct RelationStripeCopy {
  uint32_t index = 0;       // stripe number (file id >> kStripeShift)
  uint32_t begin = 0;       // first file id covered
  uint32_t files = 0;       // files covered (last stripe may be short)
  std::vector<uint32_t> counts;   // size `files`
  std::vector<uint32_t> ids;      // size sum(counts), packed
  std::vector<double> logs;
  std::vector<double> lins;
  std::vector<uint32_t> obs;
  std::vector<uint64_t> upds;
};

// Materialized view of one slab entry (also the persistence carrier).
struct Neighbor {
  FileId id = kInvalidFileId;
  double log_sum = 0.0;       // geometric-mean accumulator (log space)
  double linear_sum = 0.0;    // arithmetic-mean accumulator
  uint32_t observations = 0;
  uint64_t last_update = 0;   // global update counter value

  double MeanDistance(MeanKind kind) const;
};

class RelationTable {
 public:
  // Lightweight view over one file's slab stripe. Iteration materializes
  // Neighbor values, so existing consumers (`for (const Neighbor& nb : ...)`)
  // compile unchanged; the view is invalidated by any table mutation.
  class NeighborRange {
   public:
    class Iterator {
     public:
      Iterator(const RelationTable* table, size_t slot) : table_(table), slot_(slot) {}
      Neighbor operator*() const { return table_->MaterializeSlot(slot_); }
      Iterator& operator++() {
        ++slot_;
        return *this;
      }
      bool operator!=(const Iterator& other) const { return slot_ != other.slot_; }
      bool operator==(const Iterator& other) const { return slot_ == other.slot_; }

     private:
      const RelationTable* table_;
      size_t slot_;
    };

    NeighborRange() : table_(nullptr), base_(0), count_(0) {}
    NeighborRange(const RelationTable* table, size_t base, uint32_t count)
        : table_(table), base_(base), count_(count) {}

    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    Iterator begin() const { return Iterator(table_, base_); }
    Iterator end() const { return Iterator(table_, base_ + count_); }
    Neighbor operator[](size_t i) const { return table_->MaterializeSlot(base_ + i); }

   private:
    const RelationTable* table_;
    size_t base_;
    uint32_t count_;
  };

  RelationTable(const SeerParams& params, const FileTable* files, uint64_t seed = 0x5ee12);

  // Live-tuning override (`params set` against a running service): swaps
  // in the new aging/distance knobs but pins max_neighbors to the value
  // the slab was built with — cap_ bakes the stripe geometry, so changing
  // it takes a snapshot round-trip, not an override.
  void OverrideParams(SeerParams params) {
    params.max_neighbors = params_.max_neighbors;
    params_ = params;
  }

  // Records an observation `distance` for the ordered pair (from -> to).
  void Observe(FileId from, FileId to, double distance);

  // Observe with a slot hint from FindSlot(), taken at a moment when no
  // table mutation has intervened for entries of `from` other than batched
  // folds: a valid hint (same id still in that slot) skips the membership
  // scan; a stale or absent hint falls back to the full scan, so the
  // result is always identical to Observe().
  void ObserveHinted(FileId from, FileId to, double distance, int32_t hint);

  // --- stripe-sharded fold (parallel batched ingest) ------------------------
  //
  // The batched ingest path folds each 256-file stripe on its own worker:
  // every slab write of FoldObservation(from, ...) lands in `from`'s slot
  // range, so two observations race only if their `from` files share a
  // stripe — and one worker owns all of a stripe's observations, applied
  // in trace order. The pieces that cross stripes (the reverse index, the
  // set/data epoch clocks) are deferred into a per-stripe log and replayed
  // sequentially by ApplyFoldLog. See DESIGN.md §15 for why this yields
  // byte-identical snapshots at any thread count.

  // Cross-stripe side effects deferred by one stripe's fold.
  struct StripeFoldLog {
    struct RevOp {
      FileId owner = kInvalidFileId;    // file whose list changed
      FileId removed = kInvalidFileId;  // replaced neighbor (invalid = none)
      FileId added = kInvalidFileId;    // inserted neighbor
    };
    std::vector<RevOp> rev_ops;  // structural list changes, in trace order
    bool data_touched = false;   // any slab write happened in this stripe
  };

  // Core of ObserveHinted with the global update ordinal passed in.
  // log == nullptr applies all side effects immediately (the serial path).
  // With a log, slab writes stay confined to `from`'s slot range and the
  // cross-stripe effects are recorded for ApplyFoldLog. Caller contract for
  // the parallel mode: EnsureCapacity() already covers every id involved,
  // from != to, and ordinals are the observation's 1-based position in the
  // global trace appended to the prior update_count().
  void FoldObservation(FileId from, FileId to, double distance, int32_t hint,
                       uint64_t ordinal, StripeFoldLog* log);

  // Replays one stripe's deferred effects. Call sequentially, in ascending
  // stripe order, after all workers have joined.
  void ApplyFoldLog(uint32_t stripe, const StripeFoldLog& log);

  // Pre-sizes the slab and side tables to cover ids [0, max_id]. The
  // parallel fold requires it: workers must never resize shared arrays.
  void EnsureCapacity(FileId max_id) { EnsureSize(max_id); }

  // Prefetches `from`'s id/update rows (the fold loop hides slab-row
  // latency by prefetching the next observation's target).
  void PrefetchRow(FileId from) const {
#if defined(__GNUC__) || defined(__clang__)
    if (from < nb_count_.size()) {
      const size_t base = static_cast<size_t>(from) * cap_;
      __builtin_prefetch(nb_id_.data() + base, 1, 3);
      __builtin_prefetch(nb_upd_.data() + base, 1, 1);
    }
#else
    (void)from;
#endif
  }

  // Slot index of `to` in `from`'s list, or -1 when untracked. Pure read —
  // safe to call concurrently with other reads (the parallel ingest
  // measure phase uses it to pre-compute fold hints).
  int32_t FindSlot(FileId from, FileId to) const;

  // Neighbor list of `from` (unordered). Empty for unknown files.
  NeighborRange NeighborsOf(FileId from) const;

  // Neighbor ids only (excluding deletion-marked and excluded files).
  std::vector<FileId> LiveNeighborIds(FileId from) const;

  // Allocation-free variant: appends the live neighbor ids to `out`
  // (clustering and hoard hot loops reuse one scratch buffer).
  void LiveNeighborIds(FileId from, std::vector<FileId>* out) const;

  // Mean distance from -> to, or a negative value when not tracked.
  double DistanceOrNegative(FileId from, FileId to) const;

  // Drops `id` from every list and clears its own list. Called when a file
  // is purged after its deletion delay or excluded as frequent. O(degree)
  // via the reverse index, not a scan of every list.
  void Purge(FileId id);

  uint64_t update_count() const { return update_count_; }
  int max_neighbors() const { return cap_; }

  // --- clustering support: set-change epochs + reverse index ---------------
  //
  // The incremental cluster rebuild needs to know which files' *live
  // neighbor sets* may differ from the last build. The table stamps a
  // monotonically increasing epoch on every structural list change (entry
  // added, replaced, or removed — folding a new observation into an
  // existing entry does not change the set and is not stamped), and the
  // correlator calls MarkSetChanged when a file's liveness or pathname
  // flips out-of-band (rename), which dirties the file and every list that
  // names it.

  // Current global set-change epoch (stamped value of the latest change).
  uint64_t set_change_epoch() const { return set_change_epoch_; }

  // Appends every file whose set-change stamp is newer than `epoch`.
  void CollectChangedSince(uint64_t epoch, std::vector<FileId>* out) const;

  // Files whose neighbor lists currently contain `id` (unordered).
  const std::vector<FileId>& ReverseNeighborsOf(FileId id) const;

  // Records that `id`'s liveness or pathname changed: stamps `id` and every
  // reverse neighbor (their live sets changed too).
  void MarkSetChanged(FileId id);

  // Approximate bytes used, for the Section 5.3 memory accounting bench.
  size_t MemoryBytes() const;

  // --- checkpoint-plane support: stripe dirty epochs + seal copies ----------
  //
  // Delta checkpoints need to know which parts of the *slab data* changed
  // since the last generation. The set-change epochs above deliberately do
  // not stamp folds (an accumulated observation changes no live set), so
  // the table keeps a second, coarser clock: the slab is divided into
  // stripes of kStripeSize files, and every slab mutation — fold, insert,
  // replace, swap-remove, restore — stamps the owning file's stripe with a
  // fresh data epoch. A stripe whose stamp is older than the last sealed
  // cut is bit-identical to the previous snapshot and can be omitted.

  static constexpr uint32_t kStripeShift = 8;
  static constexpr uint32_t kStripeSize = 1u << kStripeShift;  // files per stripe

  // Current data epoch (stamped value of the latest slab mutation).
  uint64_t data_epoch() const { return data_epoch_; }

  // Appends stripe copies covering files [0, file_count) to `out`.
  // full: every stripe holding at least one entry (all-empty stripes are
  // skipped — a reader treats an absent stripe as empty). Otherwise: every
  // stripe stamped after `since_epoch`, *including* now-empty ones, so a
  // delta can mask a stale base stripe.
  void CopyStripes(bool full, uint64_t since_epoch, size_t file_count,
                   std::vector<RelationStripeCopy>* out) const;

  // --- persistence support --------------------------------------------------
  void RestoreList(FileId from, std::vector<Neighbor> neighbors);

  // In-place parallel restore (snapshot chain decode): BeginRestore sizes
  // the slab for `file_count` files and hands back raw array pointers;
  // workers then fill disjoint stripe ranges (ids/logs/lins/obs/upds plus
  // the per-file counts) concurrently. FinishRestore rebuilds the reverse
  // index and set stamps sequentially. Only valid on a freshly constructed
  // table.
  struct SlabAccess {
    FileId* ids = nullptr;
    double* logs = nullptr;
    double* lins = nullptr;
    uint32_t* obs = nullptr;
    uint64_t* upds = nullptr;
    uint32_t* counts = nullptr;
    size_t cap = 0;
  };
  SlabAccess BeginRestore(size_t file_count);
  void FinishRestore(size_t file_count);

  void set_update_count(uint64_t count) { update_count_ = count; }

  // The tie-break key state travels with the snapshot so that updates
  // replayed from the WAL after recovery break ties exactly as the
  // never-crashed instance would have. The state never advances: tie
  // decisions are a pure function (TieDraw) of this key and the
  // observation's global ordinal, which is what lets per-stripe workers
  // break ties identically to serial ingest without sharing a generator.
  void GetRngState(uint64_t out[4]) const { rng_.GetState(out); }
  void SetRngState(const uint64_t in[4]) {
    rng_.SetState(in);
    RefreshTieKey();
  }

 private:
  friend class NeighborRange;

  void EnsureSize(FileId id);
  void Stamp(FileId id);
  void StampData(FileId id);
  void RevAdd(FileId owner, FileId neighbor);
  void RevRemove(FileId owner, FileId neighbor);

  // Fold helpers: apply (serial) or defer (parallel) the cross-stripe
  // effects of a slab mutation under `from`.
  void NoteDataTouched(FileId from, StripeFoldLog* log);
  void NoteStructure(FileId from, FileId removed, FileId added, StripeFoldLog* log);

  // Stateless tie-break draw for the priority-2 reservoir: a pure hash of
  // the never-advancing key, the observation's global ordinal, and the
  // tying slot index — identical under serial and sharded folds.
  uint64_t TieDraw(uint64_t ordinal, uint32_t slot) const;
  void RefreshTieKey();

  Neighbor MaterializeSlot(size_t slot) const;

  // Mean of slab entry `slot` computed fresh (no cache access).
  double MeanOfSlot(size_t slot) const;

  // Cached mean of slab entry `slot`. Validity is epoch-based: the line is
  // current iff nb_mean_upd_[slot] equals the entry's last-update ordinal
  // (ordinals only grow, so any fold or overwrite invalidates implicitly —
  // the hot loop never writes a sentinel). The cached value is
  // bit-identical to a fresh computation, so caching never changes a
  // replacement decision, and the cache is never serialized.
  double CachedMean(size_t slot);

  // Overwrites slab entry `slot` with a fresh single-observation candidate
  // stamped with the observation's global ordinal.
  void WriteCandidate(size_t slot, FileId to, double cand_log, double distance,
                      uint64_t ordinal);

  SeerParams params_;
  const FileTable* files_;
  int cap_ = 0;  // slots per file (params_.max_neighbors)

  // The slab: structure-of-arrays, file `f` owns [f * cap_, f * cap_ + cap_).
  // Only the first nb_count_[f] slots of a stripe are live.
  std::vector<FileId> nb_id_;
  std::vector<double> nb_log_;
  std::vector<double> nb_lin_;
  std::vector<uint32_t> nb_obs_;
  std::vector<uint64_t> nb_upd_;
  std::vector<double> nb_mean_;      // lazy mean cache (see CachedMean)
  std::vector<uint64_t> nb_mean_upd_;  // nb_upd_ value the cache line is for
  std::vector<uint32_t> nb_count_;

  // reverse_[id] = files whose lists contain id. Maintained by every list
  // mutation; an id appears at most once per owner (lists are id-unique).
  std::vector<std::vector<FileId>> reverse_;
  // Per-file stamp of the last set change, against set_change_epoch_.
  std::vector<uint64_t> set_stamp_;
  uint64_t set_change_epoch_ = 0;
  // Per-stripe stamp of the last slab data mutation, against data_epoch_.
  std::vector<uint64_t> stripe_stamp_;
  uint64_t data_epoch_ = 0;
  uint64_t update_count_ = 0;
  mutable Rng rng_;        // serialized tie-break state; never advances
  uint64_t tie_key_ = 0;   // derived from rng_ state (RefreshTieKey)
  std::vector<FileId> empty_ids_;
};

}  // namespace seer

#endif  // SRC_CORE_RELATION_TABLE_H_
