// SeerParams text parsing.
//
// The correlator's parameters (Section 4.9) can be loaded from a small text
// file so deployments and the parameter-search harness need no recompile:
//
//   # comment
//   n 20              # neighbors per file
//   M 100             # update horizon
//   kn 10             # combine threshold
//   kf 6              # overlap threshold
//   distance lifetime # lifetime | sequence | temporal
//   mean geometric    # geometric | arithmetic
//   per-process on
//   aging-updates 50000
//   delete-delay 64
//   dir-weight 1.0
//   investigator-weight 1.0
//   temporal-horizon 600
#ifndef SRC_CORE_PARAMS_IO_H_
#define SRC_CORE_PARAMS_IO_H_

#include <string>
#include <string_view>

#include "src/core/params.h"
#include "src/util/status.h"

namespace seer {

// Parses directives on top of `base`; kInvalidArgument with a
// line-numbered message on bad input.
StatusOr<SeerParams> ParseSeerParams(std::string_view text, const SeerParams& base = {});

// Renders params as parseable text.
std::string FormatSeerParams(const SeerParams& params);

}  // namespace seer

#endif  // SRC_CORE_PARAMS_IO_H_
