#include "src/core/async_pipeline.h"

#include <algorithm>

namespace seer {

AsyncCorrelator::AsyncCorrelator(const SeerParams& params, uint64_t seed, size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity),
      correlator_(params, seed),
      ring_(capacity_) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

AsyncCorrelator::~AsyncCorrelator() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  }
}

void AsyncCorrelator::Enqueue(const Message& message) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_not_full_.wait(lock, [this] { return count_ < capacity_ || stopping_; });
  if (stopping_) {
    return;
  }
  ring_[(head_ + count_) % capacity_] = message;
  ++count_;
  ++enqueued_;
  high_watermark_ = std::max(high_watermark_, count_);
  lock.unlock();
  queue_not_empty_.notify_one();
}

void AsyncCorrelator::OnReference(const FileReference& ref) {
  Message m;
  m.kind = Message::Kind::kReference;
  m.ref = ref;
  Enqueue(m);
}

void AsyncCorrelator::OnProcessFork(Pid parent, Pid child) {
  Message m;
  m.kind = Message::Kind::kFork;
  m.parent = parent;
  m.child = child;
  Enqueue(m);
}

void AsyncCorrelator::OnProcessExit(Pid pid) {
  Message m;
  m.kind = Message::Kind::kExit;
  m.child = pid;
  Enqueue(m);
}

void AsyncCorrelator::OnFileDeleted(PathId path, Time time) {
  Message m;
  m.kind = Message::Kind::kDeleted;
  m.path = path;
  m.time = time;
  Enqueue(m);
}

void AsyncCorrelator::OnFileRenamed(PathId from, PathId to, Time time) {
  Message m;
  m.kind = Message::Kind::kRenamed;
  m.path = from;
  m.path2 = to;
  m.time = time;
  Enqueue(m);
}

void AsyncCorrelator::OnFileExcluded(PathId path) {
  Message m;
  m.kind = Message::Kind::kExcluded;
  m.path = path;
  Enqueue(m);
}

void AsyncCorrelator::WorkerLoop() {
  // Reused drain buffer: the worker takes everything queued in one lock
  // hold, frees the whole ring for producers, then applies the batch via
  // the sharded ingest pipeline — a deep backlog becomes a wide batch whose
  // distance measurement parallelises across process streams.
  std::vector<Message> batch;
  batch.reserve(capacity_);
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_not_empty_.wait(lock, [this] { return count_ > 0 || stopping_; });
      if (count_ == 0) {
        // stopping_ with an empty queue: signal any drain waiters and exit.
        drained_.notify_all();
        return;
      }
      const size_t n = count_;
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(ring_[head_]);
        head_ = (head_ + 1) % capacity_;
      }
      count_ = 0;
    }
    queue_not_full_.notify_all();  // a whole ring of slots just freed
    {
      std::lock_guard<std::mutex> lock(correlator_mutex_);
      correlator_.IngestBatch(batch.data(), batch.size());
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      processed_ += batch.size();
      if (count_ == 0) {
        drained_.notify_all();
      }
    }
  }
}

void AsyncCorrelator::Drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  drained_.wait(lock, [this] { return processed_ == enqueued_ || stopping_; });
}

ClusterSet AsyncCorrelator::BuildClusters() {
  return Query([](const Correlator& c) { return c.BuildClusters(); });
}

double AsyncCorrelator::Distance(const std::string& from, const std::string& to) {
  return Query([&](const Correlator& c) { return c.Distance(from, to); });
}

size_t AsyncCorrelator::KnownFiles() {
  return Query([](const Correlator& c) { return c.files().size(); });
}

void AsyncCorrelator::SetClusterThreads(int threads) {
  std::lock_guard<std::mutex> lock(correlator_mutex_);
  correlator_.SetClusterThreads(threads);
}

ClusterBuildStats AsyncCorrelator::LastClusterStats() {
  return Query([](const Correlator& c) { return c.last_cluster_stats(); });
}

void AsyncCorrelator::SetIngestThreads(int threads) {
  std::lock_guard<std::mutex> lock(correlator_mutex_);
  correlator_.SetIngestThreads(threads);
}

IngestStats AsyncCorrelator::LastIngestStats() {
  return Query([](const Correlator& c) { return c.ingest_stats(); });
}

size_t AsyncCorrelator::enqueued() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return enqueued_;
}

size_t AsyncCorrelator::processed() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return processed_;
}

size_t AsyncCorrelator::high_watermark() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return high_watermark_;
}

size_t AsyncCorrelator::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return count_;
}

}  // namespace seer
