// Tunable parameters for SEER's semantic-distance and clustering algorithms.
//
// The paper's published values: n = 20 neighbors per file and M = 100 for
// the update horizon (Section 3.1.3); kn and kf are described but their
// values are in the author's thesis, so our defaults come from the parameter
// search that bench/ablation_params reproduces (Section 4.9's methodology).
#ifndef SRC_CORE_PARAMS_H_
#define SRC_CORE_PARAMS_H_

#include <cstdint>

namespace seer {

// Distance definition in use (Section 3.1.1). Lifetime distance is SEER's
// production setting; the others exist for the ablation benches.
enum class DistanceKind : uint8_t {
  kTemporal,  // Definition 1: elapsed clock time
  kSequence,  // Definition 2: intervening references
  kLifetime,  // Definition 3: intervening opens, 0 while the source is open
};

// Reduction from per-reference distances to a per-file-pair value
// (Section 3.1.2).
enum class MeanKind : uint8_t {
  kArithmetic,
  kGeometric,
};

struct SeerParams {
  // n: nearest-neighbor distances kept per file (Section 3.1.3).
  int max_neighbors = 20;

  // M: a new reference updates only distances from files referenced within
  // the last M opens; larger computed values are clamped to M
  // (the compensation insertion, Section 3.1.3).
  int distance_horizon = 100;

  // kn / kf: shared-neighbor thresholds for combining and overlapping
  // clusters, kn > kf (Section 3.3.2).
  int cluster_near = 10;
  int cluster_far = 6;

  DistanceKind distance_kind = DistanceKind::kLifetime;
  MeanKind mean_kind = MeanKind::kGeometric;

  // Geometric-mean floor for zero distances (Section 3.1.2 keeps zero
  // meaningful: a run of zeros must stay below every nonzero distance).
  double geometric_zero_floor = 0.5;

  // Per-process streams (Section 4.7). Disable for the ablation bench that
  // shows why interleaved streams create spurious relationships.
  bool per_process_streams = true;

  // Aging (Section 3.1.3): a neighbor entry not updated for this many
  // relation-table updates may be replaced by a newer candidate even when
  // its distance is smaller.
  uint64_t aging_updates = 50'000;

  // File deletion is soft; the entry is purged only after this many further
  // deletions (Section 4.8).
  uint64_t delete_delay = 64;

  // Weight applied to the directory-distance measure when adjusting
  // shared-neighbor counts (subtracted; Section 3.3.3). 0 disables.
  double dir_distance_weight = 1.0;

  // Multiplier on investigator-provided relation strengths when adjusting
  // shared-neighbor counts (added; Section 3.3.3).
  double investigator_weight = 1.0;

  // Temporal distances (Definition 1) are measured in seconds and clamped
  // to this ceiling before reduction, playing the role M plays for
  // open-count distances.
  double temporal_horizon_seconds = 600.0;
};

}  // namespace seer

#endif  // SRC_CORE_PARAMS_H_
