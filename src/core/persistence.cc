// Correlator database persistence.
//
// The paper left SEER's ~1 KB/file database in virtual memory and noted
// that storing it on disk would be a straightforward later optimisation
// (Section 5.3). This is the on-disk format: a versioned, line-oriented
// text file holding the parameters, the file table, and the relation
// table. Reference streams are per-process transient state and are not
// persisted — after a reload, distance accumulation simply resumes with
// fresh windows, exactly as it would after a reboot.
//
//   SEERDB 1
//   params <n-lines>
//   <FormatSeerParams() body>
//   files <count> <deletion-count> <global-ref-seq>
//   <escaped-path|-> <last-ref-time> <last-ref-seq> <ref-count>
//       <deleted> <excluded> <deleted-at>        (one line per record)
//   relations <update-count>
//   list <from> <entries>
//   <to> <log-sum> <linear-sum> <observations> <last-update>
//   end
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/core/correlator.h"
#include "src/core/params_io.h"
#include "src/trace/trace_io.h"

namespace seer {

namespace {

constexpr int kFormatVersion = 1;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string word;
  while (in >> word) {
    out.push_back(word);
  }
  return out;
}

template <typename T>
bool ParseWord(const std::string& word, T* out) {
  const auto [ptr, ec] = std::from_chars(word.data(), word.data() + word.size(), *out);
  return ec == std::errc() && ptr == word.data() + word.size();
}

bool ParseWord(const std::string& word, double* out) {
  // Accepts both decimal and the "%a" hex-float form ("0x1.8p+1"), which
  // from_chars parses only without the 0x prefix.
  std::string_view s(word);
  bool negative = false;
  if (!s.empty() && s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  std::from_chars_result r{};
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
    r = std::from_chars(s.data(), s.data() + s.size(), *out, std::chars_format::hex);
  } else {
    r = std::from_chars(s.data(), s.data() + s.size(), *out);
  }
  if (r.ec != std::errc() || r.ptr != s.data() + s.size()) {
    return false;
  }
  if (negative) {
    *out = -*out;
  }
  return true;
}

}  // namespace

void Correlator::SaveTo(std::ostream& out) const {
  out << "SEERDB " << kFormatVersion << '\n';

  const std::string params_text = FormatSeerParams(params_);
  size_t param_lines = 0;
  for (const char c : params_text) {
    if (c == '\n') {
      ++param_lines;
    }
  }
  out << "params " << param_lines << '\n' << params_text;

  out << "files " << files_.size() << ' ' << files_.deletion_count() << ' ' << global_ref_seq_
      << '\n';
  for (FileId id = 0; id < files_.size(); ++id) {
    const FileRecord& rec = files_.Get(id);
    out << (rec.path == kInvalidPathId ? "-" : EscapePath(GlobalPaths().PathOf(rec.path)))
        << ' ' << rec.last_ref_time << ' '
        << rec.last_ref_seq << ' ' << rec.ref_count << ' ' << (rec.deleted ? 1 : 0) << ' '
        << (rec.excluded ? 1 : 0) << ' ' << rec.deleted_at_deletion_count << '\n';
  }

  out << "relations " << relations_.update_count() << '\n';
  for (FileId id = 0; id < files_.size(); ++id) {
    const auto& neighbors = relations_.NeighborsOf(id);
    if (neighbors.empty()) {
      continue;
    }
    out << "list " << id << ' ' << neighbors.size() << '\n';
    for (const Neighbor& nb : neighbors) {
      // Hex float round-trips exactly through from_chars.
      char log_buf[64];
      char lin_buf[64];
      std::snprintf(log_buf, sizeof(log_buf), "%a", nb.log_sum);
      std::snprintf(lin_buf, sizeof(lin_buf), "%a", nb.linear_sum);
      out << nb.id << ' ' << log_buf << ' ' << lin_buf << ' ' << nb.observations << ' '
          << nb.last_update << '\n';
    }
  }
  out << "end\n";
}

std::unique_ptr<Correlator> Correlator::LoadFrom(std::istream& in, std::string* error) {
  std::string line;
  if (!std::getline(in, line)) {
    SetError(error, "empty stream");
    return nullptr;
  }
  int version = 0;
  {
    const auto words = SplitWords(line);
    if (words.size() != 2 || words[0] != "SEERDB" || !ParseWord(words[1], &version) ||
        version != kFormatVersion) {
      SetError(error, "bad header: " + line);
      return nullptr;
    }
  }

  // --- params ---------------------------------------------------------------
  if (!std::getline(in, line)) {
    SetError(error, "truncated before params");
    return nullptr;
  }
  size_t param_lines = 0;
  {
    const auto words = SplitWords(line);
    if (words.size() != 2 || words[0] != "params" || !ParseWord(words[1], &param_lines)) {
      SetError(error, "bad params header: " + line);
      return nullptr;
    }
  }
  std::string params_text;
  for (size_t i = 0; i < param_lines; ++i) {
    if (!std::getline(in, line)) {
      SetError(error, "truncated inside params");
      return nullptr;
    }
    params_text += line;
    params_text += '\n';
  }
  std::string params_error;
  const auto params = ParseSeerParams(params_text, SeerParams{}, &params_error);
  if (!params.has_value()) {
    SetError(error, "bad params: " + params_error);
    return nullptr;
  }

  auto correlator = std::make_unique<Correlator>(*params);

  // --- files -----------------------------------------------------------------
  if (!std::getline(in, line)) {
    SetError(error, "truncated before files");
    return nullptr;
  }
  size_t file_count = 0;
  uint64_t deletion_count = 0;
  {
    const auto words = SplitWords(line);
    if (words.size() != 4 || words[0] != "files" || !ParseWord(words[1], &file_count) ||
        !ParseWord(words[2], &deletion_count) ||
        !ParseWord(words[3], &correlator->global_ref_seq_)) {
      SetError(error, "bad files header: " + line);
      return nullptr;
    }
  }
  for (size_t i = 0; i < file_count; ++i) {
    if (!std::getline(in, line)) {
      SetError(error, "truncated inside files");
      return nullptr;
    }
    const auto words = SplitWords(line);
    FileRecord rec;
    int deleted = 0;
    int excluded = 0;
    if (words.size() != 7 || !ParseWord(words[1], &rec.last_ref_time) ||
        !ParseWord(words[2], &rec.last_ref_seq) || !ParseWord(words[3], &rec.ref_count) ||
        !ParseWord(words[4], &deleted) || !ParseWord(words[5], &excluded) ||
        !ParseWord(words[6], &rec.deleted_at_deletion_count)) {
      SetError(error, "bad file record: " + line);
      return nullptr;
    }
    rec.path =
        words[0] == "-" ? kInvalidPathId : GlobalPaths().Intern(UnescapePath(words[0]));
    rec.deleted = deleted != 0;
    rec.excluded = excluded != 0;
    correlator->files_.RestoreRecord(rec);
  }
  correlator->files_.set_deletion_count(deletion_count);
  correlator->files_.RebuildPurgeQueue();

  // --- relations ---------------------------------------------------------------
  if (!std::getline(in, line)) {
    SetError(error, "truncated before relations");
    return nullptr;
  }
  uint64_t update_count = 0;
  {
    const auto words = SplitWords(line);
    if (words.size() != 2 || words[0] != "relations" || !ParseWord(words[1], &update_count)) {
      SetError(error, "bad relations header: " + line);
      return nullptr;
    }
  }
  while (std::getline(in, line)) {
    if (line == "end") {
      correlator->relations_.set_update_count(update_count);
      return correlator;
    }
    const auto words = SplitWords(line);
    FileId from = 0;
    size_t entries = 0;
    if (words.size() != 3 || words[0] != "list" || !ParseWord(words[1], &from) ||
        !ParseWord(words[2], &entries) || from >= correlator->files_.size()) {
      SetError(error, "bad list header: " + line);
      return nullptr;
    }
    std::vector<Neighbor> neighbors;
    neighbors.reserve(entries);
    for (size_t i = 0; i < entries; ++i) {
      if (!std::getline(in, line)) {
        SetError(error, "truncated inside list");
        return nullptr;
      }
      const auto nb_words = SplitWords(line);
      Neighbor nb;
      if (nb_words.size() != 5 || !ParseWord(nb_words[0], &nb.id) ||
          !ParseWord(nb_words[1], &nb.log_sum) || !ParseWord(nb_words[2], &nb.linear_sum) ||
          !ParseWord(nb_words[3], &nb.observations) || !ParseWord(nb_words[4], &nb.last_update) ||
          nb.id >= correlator->files_.size()) {
        SetError(error, "bad neighbor record: " + line);
        return nullptr;
      }
      neighbors.push_back(nb);
    }
    correlator->relations_.RestoreList(from, std::move(neighbors));
  }
  SetError(error, "missing end marker");
  return nullptr;
}

}  // namespace seer
