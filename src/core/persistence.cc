// Correlator database persistence — both on-disk representations.
//
// Text format (SaveTo/LoadFrom): a versioned, line-oriented dump holding
// the parameters, the file table, and the relation table. Greppable,
// diffable, hand-editable; reference streams and the tie-break RNG are per
// -run transient state here — after a reload, distance accumulation simply
// resumes with fresh windows, exactly as it would after a reboot.
//
//   SEERDB 1
//   params <n-lines>
//   <FormatSeerParams() body>
//   files <count> <deletion-count> <global-ref-seq>
//   <escaped-path|-> <last-ref-time> <last-ref-seq> <ref-count>
//       <deleted> <excluded> <deleted-at>        (one line per record)
//   relations <update-count>
//   list <from> <entries>
//   <to> <log-sum> <linear-sum> <observations> <last-update>
//   end
//
// Binary snapshot (EncodeSnapshot/DecodeSnapshot): the crash-consistent
// checkpoint format used by SnapshotStore. Fixed little-endian layout:
//
//   magic "SEERSNP1"
//   sections, in order PRMS PATH FILE RELS STRM END!; each section is
//     u32 tag | u64 payload-size | u32 crc32(payload) | payload
//
// Unlike the text dump this captures the COMPLETE learning state — the
// purge queue verbatim, the relation table's RNG, and the live reference
// streams — so snapshot + WAL replay reproduces the never-crashed
// correlator bit for bit. Doubles travel as raw IEEE-754 bits (no text
// round-trip at all); every section is CRC-checked so a torn write is a
// typed kDataLoss, never a half-loaded database.
#include <algorithm>
#include <charconv>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "src/core/correlator.h"
#include "src/core/params_io.h"
#include "src/trace/trace_io.h"
#include "src/util/bytes.h"
#include "src/util/crc32.h"

namespace seer {

namespace {

constexpr int kFormatVersion = 1;

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string word;
  while (in >> word) {
    out.push_back(word);
  }
  return out;
}

template <typename T>
bool ParseWord(const std::string& word, T* out) {
  const auto [ptr, ec] = std::from_chars(word.data(), word.data() + word.size(), *out);
  return ec == std::errc() && ptr == word.data() + word.size();
}

// Floating-point fields: from_chars only (locale-independent by
// construction — a host locale that renders decimals as "1,5" can neither
// produce nor accept our files), the whole word must be consumed, and the
// value must be finite. from_chars happily parses "nan" and "inf", but no
// finite accumulator sum can legitimately be either: accepting a NaN here
// would poison every mean distance computed from the record, so both are
// rejected as corruption.
bool ParseWord(const std::string& word, double* out) {
  // Accepts both decimal and the "%a" hex-float form ("0x1.8p+1"), which
  // from_chars parses only without the 0x prefix.
  std::string_view s(word);
  bool negative = false;
  if (!s.empty() && s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) {
    return false;  // "--3" must not double-negate its way in
  }
  std::from_chars_result r{};
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
    r = std::from_chars(s.data(), s.data() + s.size(), *out, std::chars_format::hex);
  } else {
    r = std::from_chars(s.data(), s.data() + s.size(), *out);
  }
  if (r.ec != std::errc() || r.ptr != s.data() + s.size()) {
    return false;
  }
  if (!std::isfinite(*out)) {
    return false;
  }
  if (negative) {
    *out = -*out;
  }
  return true;
}

}  // namespace

// --- text format -------------------------------------------------------------

void Correlator::SaveTo(std::ostream& out) const {
  out << "SEERDB " << kFormatVersion << '\n';

  const std::string params_text = FormatSeerParams(params_);
  size_t param_lines = 0;
  for (const char c : params_text) {
    if (c == '\n') {
      ++param_lines;
    }
  }
  out << "params " << param_lines << '\n' << params_text;

  out << "files " << files_.size() << ' ' << files_.deletion_count() << ' ' << global_ref_seq_
      << '\n';
  for (FileId id = 0; id < files_.size(); ++id) {
    const FileRecord& rec = files_.Get(id);
    out << (rec.path == kInvalidPathId ? "-" : EscapePath(GlobalPaths().PathOf(rec.path)))
        << ' ' << rec.last_ref_time << ' '
        << rec.last_ref_seq << ' ' << rec.ref_count << ' ' << (rec.deleted ? 1 : 0) << ' '
        << (rec.excluded ? 1 : 0) << ' ' << rec.deleted_at_deletion_count << '\n';
  }

  out << "relations " << relations_.update_count() << '\n';
  for (FileId id = 0; id < files_.size(); ++id) {
    const auto& neighbors = relations_.NeighborsOf(id);
    if (neighbors.empty()) {
      continue;
    }
    out << "list " << id << ' ' << neighbors.size() << '\n';
    for (const Neighbor& nb : neighbors) {
      // Hex float round-trips exactly through from_chars.
      char log_buf[64];
      char lin_buf[64];
      std::snprintf(log_buf, sizeof(log_buf), "%a", nb.log_sum);
      std::snprintf(lin_buf, sizeof(lin_buf), "%a", nb.linear_sum);
      out << nb.id << ' ' << log_buf << ' ' << lin_buf << ' ' << nb.observations << ' '
          << nb.last_update << '\n';
    }
  }
  out << "end\n";
}

StatusOr<std::unique_ptr<Correlator>> Correlator::LoadFrom(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty stream");
  }
  int version = 0;
  {
    const auto words = SplitWords(line);
    if (words.size() != 2 || words[0] != "SEERDB" || !ParseWord(words[1], &version) ||
        version != kFormatVersion) {
      return Status::InvalidArgument("bad header: " + line);
    }
  }

  // --- params ---------------------------------------------------------------
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("truncated before params");
  }
  size_t param_lines = 0;
  {
    const auto words = SplitWords(line);
    if (words.size() != 2 || words[0] != "params" || !ParseWord(words[1], &param_lines)) {
      return Status::InvalidArgument("bad params header: " + line);
    }
  }
  std::string params_text;
  for (size_t i = 0; i < param_lines; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated inside params");
    }
    params_text += line;
    params_text += '\n';
  }
  const auto params = ParseSeerParams(params_text);
  if (!params.ok()) {
    return Status::InvalidArgument("bad params: " + params.status().message());
  }

  auto correlator = std::make_unique<Correlator>(*params);

  // --- files -----------------------------------------------------------------
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("truncated before files");
  }
  size_t file_count = 0;
  uint64_t deletion_count = 0;
  {
    const auto words = SplitWords(line);
    if (words.size() != 4 || words[0] != "files" || !ParseWord(words[1], &file_count) ||
        !ParseWord(words[2], &deletion_count) ||
        !ParseWord(words[3], &correlator->global_ref_seq_)) {
      return Status::InvalidArgument("bad files header: " + line);
    }
  }
  for (size_t i = 0; i < file_count; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated inside files");
    }
    const auto words = SplitWords(line);
    FileRecord rec;
    int deleted = 0;
    int excluded = 0;
    if (words.size() != 7 || !ParseWord(words[1], &rec.last_ref_time) ||
        !ParseWord(words[2], &rec.last_ref_seq) || !ParseWord(words[3], &rec.ref_count) ||
        !ParseWord(words[4], &deleted) || !ParseWord(words[5], &excluded) ||
        !ParseWord(words[6], &rec.deleted_at_deletion_count)) {
      return Status::InvalidArgument("bad file record: " + line);
    }
    rec.path =
        words[0] == "-" ? kInvalidPathId : GlobalPaths().Intern(UnescapePath(words[0]));
    rec.deleted = deleted != 0;
    rec.excluded = excluded != 0;
    correlator->files_.RestoreRecord(rec);
  }
  correlator->files_.set_deletion_count(deletion_count);
  correlator->files_.RebuildPurgeQueue();

  // --- relations ---------------------------------------------------------------
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("truncated before relations");
  }
  uint64_t update_count = 0;
  {
    const auto words = SplitWords(line);
    if (words.size() != 2 || words[0] != "relations" || !ParseWord(words[1], &update_count)) {
      return Status::InvalidArgument("bad relations header: " + line);
    }
  }
  while (std::getline(in, line)) {
    if (line == "end") {
      correlator->relations_.set_update_count(update_count);
      return correlator;
    }
    const auto words = SplitWords(line);
    FileId from = 0;
    size_t entries = 0;
    if (words.size() != 3 || words[0] != "list" || !ParseWord(words[1], &from) ||
        !ParseWord(words[2], &entries) || from >= correlator->files_.size()) {
      return Status::InvalidArgument("bad list header: " + line);
    }
    std::vector<Neighbor> neighbors;
    neighbors.reserve(entries);
    for (size_t i = 0; i < entries; ++i) {
      if (!std::getline(in, line)) {
        return Status::InvalidArgument("truncated inside list");
      }
      const auto nb_words = SplitWords(line);
      Neighbor nb;
      if (nb_words.size() != 5 || !ParseWord(nb_words[0], &nb.id) ||
          !ParseWord(nb_words[1], &nb.log_sum) || !ParseWord(nb_words[2], &nb.linear_sum) ||
          !ParseWord(nb_words[3], &nb.observations) || !ParseWord(nb_words[4], &nb.last_update) ||
          nb.id >= correlator->files_.size()) {
        return Status::InvalidArgument("bad neighbor record: " + line);
      }
      neighbors.push_back(nb);
    }
    correlator->relations_.RestoreList(from, std::move(neighbors));
  }
  return Status::InvalidArgument("missing end marker");
}

// --- binary snapshot ---------------------------------------------------------
//
// Framing helpers and tags live in snapshot_codec.h (shared with the v2
// sectioned codec and the store's deep verify).

namespace {

using namespace snapshot_internal;  // NOLINT(build/namespaces)

constexpr std::string_view kSnapshotMagic = kMagicV1;

}  // namespace

std::string Correlator::EncodeSnapshotLegacyV1() const {
  // Path table: every distinct live spelling referenced by a file record,
  // indexed densely in record order.
  std::vector<std::string_view> paths;
  std::vector<uint32_t> record_path_index(files_.size(), kNoPath);
  for (FileId id = 0; id < files_.size(); ++id) {
    const FileRecord& rec = files_.Get(id);
    if (rec.path == kInvalidPathId) {
      continue;
    }
    record_path_index[id] = static_cast<uint32_t>(paths.size());
    paths.push_back(GlobalPaths().PathOf(rec.path));
  }

  ByteWriter params;
  params.PutString(FormatSeerParams(params_));

  ByteWriter path_table;
  path_table.PutU32(static_cast<uint32_t>(paths.size()));
  for (const std::string_view p : paths) {
    path_table.PutString(p);
  }

  ByteWriter file_table;
  file_table.PutU64(files_.size());
  file_table.PutU64(files_.deletion_count());
  file_table.PutU64(global_ref_seq_);
  file_table.PutU64(references_processed_);
  for (FileId id = 0; id < files_.size(); ++id) {
    const FileRecord& rec = files_.Get(id);
    file_table.PutU32(record_path_index[id]);
    file_table.PutI64(rec.last_ref_time);
    file_table.PutU64(rec.last_ref_seq);
    file_table.PutU64(rec.ref_count);
    file_table.PutU8(static_cast<uint8_t>((rec.deleted ? 1 : 0) | (rec.excluded ? 2 : 0)));
    file_table.PutU64(rec.deleted_at_deletion_count);
  }
  const auto& purge = files_.pending_purge();
  file_table.PutU32(static_cast<uint32_t>(purge.size()));
  for (const FileId id : purge) {
    file_table.PutU32(id);
  }

  ByteWriter relations;
  relations.PutU64(relations_.update_count());
  uint64_t rng_state[4];
  relations_.GetRngState(rng_state);
  for (const uint64_t s : rng_state) {
    relations.PutU64(s);
  }
  uint32_t list_count = 0;
  for (FileId id = 0; id < files_.size(); ++id) {
    if (!relations_.NeighborsOf(id).empty()) {
      ++list_count;
    }
  }
  relations.PutU32(list_count);
  for (FileId id = 0; id < files_.size(); ++id) {
    const auto& neighbors = relations_.NeighborsOf(id);
    if (neighbors.empty()) {
      continue;
    }
    relations.PutU32(id);
    relations.PutU32(static_cast<uint32_t>(neighbors.size()));
    for (const Neighbor& nb : neighbors) {
      relations.PutU32(nb.id);
      relations.PutDouble(nb.log_sum);
      relations.PutDouble(nb.linear_sum);
      relations.PutU32(nb.observations);
      relations.PutU64(nb.last_update);
    }
  }

  ByteWriter streams;
  const auto exported = streams_.Export();
  streams.PutU32(static_cast<uint32_t>(exported.size()));
  for (const auto& s : exported) {
    streams.PutI32(s.pid);
    streams.PutI32(s.parent);
    streams.PutU64(s.open_counter);
    streams.PutU64(s.ref_counter);
    streams.PutU32(static_cast<uint32_t>(s.files.size()));
    for (const auto& f : s.files) {
      streams.PutU32(f.file);
      streams.PutU64(f.last_open_index);
      streams.PutU64(f.last_ref_index);
      streams.PutI64(f.last_open_time);
      streams.PutU32(f.open_nesting);
      streams.PutU8(f.compensated ? 1 : 0);
    }
    streams.PutU32(static_cast<uint32_t>(s.window.size()));
    for (const auto& [file, idx] : s.window) {
      streams.PutU32(file);
      streams.PutU64(idx);
    }
  }

  ByteWriter out;
  out.PutBytes(kSnapshotMagic);
  PutSection(&out, kTagParams, params.data());
  PutSection(&out, kTagPaths, path_table.data());
  PutSection(&out, kTagFiles, file_table.data());
  PutSection(&out, kTagRelations, relations.data());
  PutSection(&out, kTagStreams, streams.data());
  PutSection(&out, kTagEnd, {});
  return out.Take();
}

StatusOr<std::unique_ptr<Correlator>> Correlator::DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() >= kMagicV2.size() && bytes.substr(0, kMagicV2.size()) == kMagicV2) {
    return DecodeSnapshotChain({bytes}, nullptr);
  }
  return DecodeSnapshotV1(bytes);
}

StatusOr<std::unique_ptr<Correlator>> Correlator::DecodeSnapshotV1(std::string_view bytes) {
  ByteReader reader(bytes);
  if (reader.GetBytes(kSnapshotMagic.size()) != kSnapshotMagic) {
    return Status::DataLoss("snapshot: bad magic");
  }

  SEER_ASSIGN_OR_RETURN(const std::string_view params_bytes,
                        GetSection(&reader, kTagParams, "params"));
  SEER_ASSIGN_OR_RETURN(const std::string_view path_bytes,
                        GetSection(&reader, kTagPaths, "paths"));
  SEER_ASSIGN_OR_RETURN(const std::string_view file_bytes,
                        GetSection(&reader, kTagFiles, "files"));
  SEER_ASSIGN_OR_RETURN(const std::string_view rel_bytes,
                        GetSection(&reader, kTagRelations, "relations"));
  SEER_ASSIGN_OR_RETURN(const std::string_view stream_bytes,
                        GetSection(&reader, kTagStreams, "streams"));
  SEER_RETURN_IF_ERROR(GetSection(&reader, kTagEnd, "end").status());

  // --- params ---------------------------------------------------------------
  ByteReader params_reader(params_bytes);
  const std::string_view params_text = params_reader.GetString();
  if (!params_reader.ok()) {
    return Status::DataLoss("snapshot: malformed params section");
  }
  const auto params = ParseSeerParams(params_text);
  if (!params.ok()) {
    return Status::DataLoss("snapshot: bad params: " + params.status().message());
  }
  auto correlator = std::make_unique<Correlator>(*params);

  // --- paths ----------------------------------------------------------------
  ByteReader path_reader(path_bytes);
  const uint32_t path_count = path_reader.GetU32();
  std::vector<PathId> path_ids;
  path_ids.reserve(path_count);
  for (uint32_t i = 0; i < path_count; ++i) {
    const std::string_view p = path_reader.GetString();
    if (!path_reader.ok()) {
      return Status::DataLoss("snapshot: malformed path table");
    }
    path_ids.push_back(GlobalPaths().Intern(p));
  }

  // --- files ----------------------------------------------------------------
  ByteReader file_reader(file_bytes);
  const uint64_t file_count = file_reader.GetU64();
  const uint64_t deletion_count = file_reader.GetU64();
  correlator->global_ref_seq_ = file_reader.GetU64();
  correlator->references_processed_ = file_reader.GetU64();
  for (uint64_t i = 0; i < file_count; ++i) {
    FileRecord rec;
    const uint32_t path_index = file_reader.GetU32();
    rec.last_ref_time = file_reader.GetI64();
    rec.last_ref_seq = file_reader.GetU64();
    rec.ref_count = file_reader.GetU64();
    const uint8_t flags = file_reader.GetU8();
    rec.deleted_at_deletion_count = file_reader.GetU64();
    if (!file_reader.ok()) {
      return Status::DataLoss("snapshot: truncated file record");
    }
    if (path_index != kNoPath && path_index >= path_ids.size()) {
      return Status::DataLoss("snapshot: file record references unknown path");
    }
    rec.path = path_index == kNoPath ? kInvalidPathId : path_ids[path_index];
    rec.deleted = (flags & 1) != 0;
    rec.excluded = (flags & 2) != 0;
    correlator->files_.RestoreRecord(rec);
  }
  correlator->files_.set_deletion_count(deletion_count);
  const uint32_t purge_count = file_reader.GetU32();
  std::vector<FileId> purge;
  purge.reserve(purge_count);
  for (uint32_t i = 0; i < purge_count; ++i) {
    const FileId id = file_reader.GetU32();
    if (!file_reader.ok() || id >= file_count) {
      return Status::DataLoss("snapshot: bad purge queue entry");
    }
    purge.push_back(id);
  }
  correlator->files_.RestorePurgeQueue(purge);

  // --- relations ------------------------------------------------------------
  ByteReader rel_reader(rel_bytes);
  correlator->relations_.set_update_count(rel_reader.GetU64());
  uint64_t rng_state[4];
  for (uint64_t& s : rng_state) {
    s = rel_reader.GetU64();
  }
  correlator->relations_.SetRngState(rng_state);
  const uint32_t list_count = rel_reader.GetU32();
  for (uint32_t i = 0; i < list_count; ++i) {
    const FileId from = rel_reader.GetU32();
    const uint32_t entries = rel_reader.GetU32();
    if (!rel_reader.ok() || from >= file_count) {
      return Status::DataLoss("snapshot: bad relation list header");
    }
    std::vector<Neighbor> neighbors;
    neighbors.reserve(entries);
    for (uint32_t e = 0; e < entries; ++e) {
      Neighbor nb;
      nb.id = rel_reader.GetU32();
      nb.log_sum = rel_reader.GetDouble();
      nb.linear_sum = rel_reader.GetDouble();
      nb.observations = rel_reader.GetU32();
      nb.last_update = rel_reader.GetU64();
      if (!rel_reader.ok() || nb.id >= file_count || !std::isfinite(nb.log_sum) ||
          !std::isfinite(nb.linear_sum)) {
        return Status::DataLoss("snapshot: bad neighbor record");
      }
      neighbors.push_back(nb);
    }
    correlator->relations_.RestoreList(from, std::move(neighbors));
  }

  // --- streams --------------------------------------------------------------
  ByteReader stream_reader(stream_bytes);
  const uint32_t stream_count = stream_reader.GetU32();
  std::vector<ReferenceStreams::ExportedStream> exported;
  exported.reserve(stream_count);
  for (uint32_t i = 0; i < stream_count; ++i) {
    ReferenceStreams::ExportedStream s;
    s.pid = stream_reader.GetI32();
    s.parent = stream_reader.GetI32();
    s.open_counter = stream_reader.GetU64();
    s.ref_counter = stream_reader.GetU64();
    const uint32_t n_files = stream_reader.GetU32();
    s.files.reserve(n_files);
    for (uint32_t f = 0; f < n_files; ++f) {
      ReferenceStreams::ExportedFileState st;
      st.file = stream_reader.GetU32();
      st.last_open_index = stream_reader.GetU64();
      st.last_ref_index = stream_reader.GetU64();
      st.last_open_time = stream_reader.GetI64();
      st.open_nesting = stream_reader.GetU32();
      st.compensated = stream_reader.GetU8() != 0;
      if (!stream_reader.ok() || st.file >= file_count) {
        return Status::DataLoss("snapshot: bad stream file state");
      }
      s.files.push_back(st);
    }
    const uint32_t n_window = stream_reader.GetU32();
    s.window.reserve(n_window);
    for (uint32_t w = 0; w < n_window; ++w) {
      const FileId file = stream_reader.GetU32();
      const uint64_t idx = stream_reader.GetU64();
      if (!stream_reader.ok() || file >= file_count) {
        return Status::DataLoss("snapshot: bad stream window entry");
      }
      s.window.emplace_back(file, idx);
    }
    exported.push_back(std::move(s));
  }
  if (!stream_reader.ok()) {
    return Status::DataLoss("snapshot: truncated streams section");
  }
  correlator->streams_.Restore(exported);

  return correlator;
}

// --- v2 checkpoint plane -----------------------------------------------------

std::string Correlator::EncodeSnapshot() const {
  return EncodeSealedSnapshot(SealSnapshot(), nullptr);
}

SealedSnapshot Correlator::SealSnapshot(const SealRequest& req) const {
  SealedSnapshot seal;
  seal.delta = req.delta;
  seal.base_generation = req.base_generation;
  seal.params_text = FormatSeerParams(params_);

  seal.record_path_index.assign(files_.size(), kNoPath);
  seal.records.reserve(files_.size());
  for (FileId id = 0; id < files_.size(); ++id) {
    const FileRecord& rec = files_.Get(id);
    if (rec.path != kInvalidPathId) {
      seal.record_path_index[id] = static_cast<uint32_t>(seal.paths.size());
      seal.paths.emplace_back(GlobalPaths().PathOf(rec.path));
    }
    seal.records.push_back(rec);
  }
  const auto& purge = files_.pending_purge();
  seal.purge_queue.assign(purge.begin(), purge.end());
  seal.deletion_count = files_.deletion_count();
  seal.global_ref_seq = global_ref_seq_;
  seal.references_processed = references_processed_;

  seal.update_count = relations_.update_count();
  relations_.GetRngState(seal.rng_state);
  seal.file_count = files_.size();
  seal.stripe_size = RelationTable::kStripeSize;
  relations_.CopyStripes(/*full=*/!req.delta, req.relation_epoch, files_.size(),
                         &seal.stripes);

  if (req.delta) {
    seal.removed_pids = streams_.RemovedSince(req.stream_epoch);
    seal.streams = streams_.ExportDirtySince(req.stream_epoch);
  } else {
    seal.streams = streams_.Export();
  }
  seal.relation_epoch = relations_.data_epoch();
  seal.stream_epoch = streams_.mutation_epoch();
  return seal;
}

namespace {

// Decodes one v2 STRM payload: pids removed since the base, then full
// copies of the streams touched since it (every stream, for a full
// snapshot).
Status DecodeStreamSection(std::string_view payload, uint64_t file_count,
                           std::vector<Pid>* removed,
                           std::vector<ReferenceStreams::ExportedStream>* upserts) {
  ByteReader r(payload);
  const uint32_t removed_count = r.GetU32();
  removed->reserve(removed_count);
  for (uint32_t i = 0; i < removed_count; ++i) {
    removed->push_back(r.GetI32());
  }
  const uint32_t stream_count = r.GetU32();
  upserts->reserve(stream_count);
  for (uint32_t i = 0; i < stream_count; ++i) {
    ReferenceStreams::ExportedStream s;
    s.pid = r.GetI32();
    s.parent = r.GetI32();
    s.open_counter = r.GetU64();
    s.ref_counter = r.GetU64();
    const uint32_t n_files = r.GetU32();
    s.files.reserve(n_files);
    for (uint32_t f = 0; f < n_files; ++f) {
      ReferenceStreams::ExportedFileState st;
      st.file = r.GetU32();
      st.last_open_index = r.GetU64();
      st.last_ref_index = r.GetU64();
      st.last_open_time = r.GetI64();
      st.open_nesting = r.GetU32();
      st.compensated = r.GetU8() != 0;
      if (!r.ok() || st.file >= file_count) {
        return Status::DataLoss("snapshot: bad stream file state");
      }
      s.files.push_back(st);
    }
    const uint32_t n_window = r.GetU32();
    s.window.reserve(n_window);
    for (uint32_t w = 0; w < n_window; ++w) {
      const FileId file = r.GetU32();
      const uint64_t idx = r.GetU64();
      if (!r.ok() || file >= file_count) {
        return Status::DataLoss("snapshot: bad stream window entry");
      }
      s.window.emplace_back(file, idx);
    }
    upserts->push_back(std::move(s));
  }
  if (!r.ok()) {
    return Status::DataLoss("snapshot: truncated streams section");
  }
  return Status::Ok();
}

// Decodes one CRC-verified stripe payload straight into the slab arrays.
// Every write lands inside the stripe's own [begin, end) file range —
// validated before writing — so concurrent stripe decodes never touch the
// same slot.
Status DecodeStripeInPlace(std::string_view payload, uint32_t expect_index,
                           uint32_t stripe_size, uint64_t file_count,
                           const RelationTable::SlabAccess& slab) {
  ByteReader r(payload);
  const uint32_t index = r.GetU32();
  const uint32_t list_count = r.GetU32();
  if (!r.ok() || index != expect_index) {
    return Status::DataLoss("snapshot: stripe section index mismatch");
  }
  const uint64_t begin = static_cast<uint64_t>(index) * stripe_size;
  const uint64_t end = std::min(begin + stripe_size, file_count);
  for (uint32_t l = 0; l < list_count; ++l) {
    const uint32_t from = r.GetU32();
    const uint32_t count = r.GetU32();
    if (!r.ok() || from < begin || from >= end ||
        count > static_cast<uint32_t>(slab.cap)) {
      return Status::DataLoss("snapshot: bad relation list header");
    }
    const size_t base = static_cast<size_t>(from) * slab.cap;
    for (uint32_t i = 0; i < count; ++i) {
      const uint32_t id = r.GetU32();
      const double log_sum = r.GetDouble();
      const double linear_sum = r.GetDouble();
      const uint32_t obs = r.GetU32();
      const uint64_t upd = r.GetU64();
      if (!r.ok() || id >= file_count || !std::isfinite(log_sum) ||
          !std::isfinite(linear_sum)) {
        return Status::DataLoss("snapshot: bad neighbor record");
      }
      slab.ids[base + i] = id;
      slab.logs[base + i] = log_sum;
      slab.lins[base + i] = linear_sum;
      slab.obs[base + i] = obs;
      slab.upds[base + i] = upd;
    }
    slab.counts[from] = count;
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<Correlator>> Correlator::DecodeSnapshotChain(
    const std::vector<std::string_view>& chain, ThreadPool* pool) {
  if (chain.empty()) {
    return Status::InvalidArgument("snapshot chain: empty");
  }
  // A v1 snapshot stands alone — deltas are a v2 invention, and the store
  // forces the first post-recovery checkpoint full, so no delta ever
  // chains onto a v1 base.
  if (chain[0].size() >= kMagicV1.size() &&
      chain[0].substr(0, kMagicV1.size()) == kMagicV1) {
    if (chain.size() != 1) {
      return Status::DataLoss("snapshot chain: v1 snapshot cannot anchor deltas");
    }
    return DecodeSnapshotV1(chain[0]);
  }

  struct ParsedFile {
    SnapshotMeta meta;
    const RawSection* params = nullptr;
    const RawSection* paths = nullptr;
    const RawSection* file_table = nullptr;
    const RawSection* rel_head = nullptr;
    const RawSection* streams = nullptr;
  };
  std::vector<std::vector<RawSection>> sections(chain.size());
  std::vector<ParsedFile> parsed(chain.size());
  // Every stripe section across the chain, with the file it came from; the
  // newest file carrying a given stripe index wins.
  struct StripeRef {
    uint32_t index = 0;
    const RawSection* section = nullptr;
  };
  std::vector<StripeRef> all_stripes;

  for (size_t k = 0; k < chain.size(); ++k) {
    SEER_ASSIGN_OR_RETURN(parsed[k].meta, ReadSnapshotMeta(chain[k]));
    if (parsed[k].meta.version != 2) {
      return Status::DataLoss("snapshot chain: mixed format versions");
    }
    if (k == 0 && parsed[k].meta.delta) {
      return Status::DataLoss("snapshot chain: starts with a delta");
    }
    if (k > 0 && !parsed[k].meta.delta) {
      return Status::DataLoss("snapshot chain: full snapshot mid-chain");
    }
    if (parsed[k].meta.stripe_size != parsed[0].meta.stripe_size ||
        parsed[k].meta.stripe_size == 0) {
      return Status::DataLoss("snapshot chain: inconsistent stripe size");
    }
    SEER_ASSIGN_OR_RETURN(sections[k], ParseSections(chain[k]));
    for (const RawSection& s : sections[k]) {
      switch (s.tag) {
        case kTagParams:
          parsed[k].params = &s;
          break;
        case kTagPaths:
          parsed[k].paths = &s;
          break;
        case kTagFiles:
          parsed[k].file_table = &s;
          break;
        case kTagRelHead:
          parsed[k].rel_head = &s;
          break;
        case kTagStreams:
          parsed[k].streams = &s;
          break;
        case kTagStripe: {
          // The stripe index is read before CRC verification (the parallel
          // phase below checks every stripe's CRC, so a corrupt index can
          // only fail the decode, never smuggle data in).
          ByteReader idx_reader(s.payload);
          const uint32_t index = idx_reader.GetU32();
          if (!idx_reader.ok()) {
            return Status::DataLoss("snapshot: truncated stripe section");
          }
          all_stripes.push_back({index, &s});
          break;
        }
        default:
          break;  // META (already parsed), END!, and future sections
      }
    }
    if (parsed[k].params == nullptr || parsed[k].paths == nullptr ||
        parsed[k].file_table == nullptr || parsed[k].rel_head == nullptr ||
        parsed[k].streams == nullptr) {
      return Status::DataLoss("snapshot: missing required section");
    }
  }

  const ParsedFile& newest = parsed.back();
  // Non-stripe sections are decoded from the newest file only (every
  // snapshot, delta included, carries them in full); verify their CRCs
  // here, plus every file's stream section (those fold across the chain).
  SEER_RETURN_IF_ERROR(CheckCrc(*newest.params, 0));
  SEER_RETURN_IF_ERROR(CheckCrc(*newest.paths, 0));
  SEER_RETURN_IF_ERROR(CheckCrc(*newest.file_table, 0));
  SEER_RETURN_IF_ERROR(CheckCrc(*newest.rel_head, 0));
  for (size_t k = 0; k < chain.size(); ++k) {
    SEER_RETURN_IF_ERROR(CheckCrc(*parsed[k].streams, k));
  }

  // --- params ---------------------------------------------------------------
  ByteReader params_reader(newest.params->payload);
  const std::string_view params_text = params_reader.GetString();
  if (!params_reader.ok()) {
    return Status::DataLoss("snapshot: malformed params section");
  }
  const auto params = ParseSeerParams(params_text);
  if (!params.ok()) {
    return Status::DataLoss("snapshot: bad params: " + params.status().message());
  }
  auto correlator = std::make_unique<Correlator>(*params);

  // --- paths ----------------------------------------------------------------
  ByteReader path_reader(newest.paths->payload);
  const uint32_t path_count = path_reader.GetU32();
  std::vector<PathId> path_ids;
  path_ids.reserve(path_count);
  for (uint32_t i = 0; i < path_count; ++i) {
    const std::string_view p = path_reader.GetString();
    if (!path_reader.ok()) {
      return Status::DataLoss("snapshot: malformed path table");
    }
    path_ids.push_back(GlobalPaths().Intern(p));
  }

  // --- files ----------------------------------------------------------------
  ByteReader file_reader(newest.file_table->payload);
  const uint64_t file_count = file_reader.GetU64();
  const uint64_t deletion_count = file_reader.GetU64();
  correlator->global_ref_seq_ = file_reader.GetU64();
  correlator->references_processed_ = file_reader.GetU64();
  if (file_count != newest.meta.file_count) {
    return Status::DataLoss("snapshot: meta/file-table count mismatch");
  }
  for (uint64_t i = 0; i < file_count; ++i) {
    FileRecord rec;
    const uint32_t path_index = file_reader.GetU32();
    rec.last_ref_time = file_reader.GetI64();
    rec.last_ref_seq = file_reader.GetU64();
    rec.ref_count = file_reader.GetU64();
    const uint8_t flags = file_reader.GetU8();
    rec.deleted_at_deletion_count = file_reader.GetU64();
    if (!file_reader.ok()) {
      return Status::DataLoss("snapshot: truncated file record");
    }
    if (path_index != kNoPath && path_index >= path_ids.size()) {
      return Status::DataLoss("snapshot: file record references unknown path");
    }
    rec.path = path_index == kNoPath ? kInvalidPathId : path_ids[path_index];
    rec.deleted = (flags & 1) != 0;
    rec.excluded = (flags & 2) != 0;
    correlator->files_.RestoreRecord(rec);
  }
  correlator->files_.set_deletion_count(deletion_count);
  const uint32_t purge_count = file_reader.GetU32();
  std::vector<FileId> purge;
  purge.reserve(purge_count);
  for (uint32_t i = 0; i < purge_count; ++i) {
    const FileId id = file_reader.GetU32();
    if (!file_reader.ok() || id >= file_count) {
      return Status::DataLoss("snapshot: bad purge queue entry");
    }
    purge.push_back(id);
  }
  correlator->files_.RestorePurgeQueue(purge);

  // --- relation head --------------------------------------------------------
  ByteReader head_reader(newest.rel_head->payload);
  correlator->relations_.set_update_count(head_reader.GetU64());
  uint64_t rng_state[4];
  for (uint64_t& s : rng_state) {
    s = head_reader.GetU64();
  }
  if (!head_reader.ok()) {
    return Status::DataLoss("snapshot: malformed relation head section");
  }
  correlator->relations_.SetRngState(rng_state);

  // --- relation stripes, in parallel, in place ------------------------------
  // Winner per stripe index: the newest file carrying it. Older copies are
  // masked (their data was superseded); absent stripes are all-empty.
  const uint32_t stripe_size = newest.meta.stripe_size;
  std::vector<const RawSection*> winner_of_index;
  for (const StripeRef& ref : all_stripes) {  // chain order: later wins
    const uint64_t begin = static_cast<uint64_t>(ref.index) * stripe_size;
    if (begin >= file_count) {
      return Status::DataLoss("snapshot: stripe section beyond file count");
    }
    if (winner_of_index.size() <= ref.index) {
      winner_of_index.resize(ref.index + 1, nullptr);
    }
    winner_of_index[ref.index] = ref.section;
  }
  std::vector<StripeRef> winners;
  for (uint32_t index = 0; index < winner_of_index.size(); ++index) {
    if (winner_of_index[index] != nullptr) {
      winners.push_back({index, winner_of_index[index]});
    }
  }

  const RelationTable::SlabAccess slab =
      correlator->relations_.BeginRestore(static_cast<size_t>(file_count));
  std::vector<Status> stripe_status(winners.size());
  const auto decode_one = [&](size_t i) {
    const StripeRef& ref = winners[i];
    Status st = CheckCrc(*ref.section, ref.index);
    if (st.ok()) {
      st = DecodeStripeInPlace(ref.section->payload, ref.index, stripe_size,
                               file_count, slab);
    }
    stripe_status[i] = std::move(st);
  };
  if (pool != nullptr && winners.size() > 1) {
    pool->ParallelChunks(winners.size(), decode_one);
  } else {
    for (size_t i = 0; i < winners.size(); ++i) {
      decode_one(i);
    }
  }
  for (const Status& st : stripe_status) {
    SEER_RETURN_IF_ERROR(st);
  }
  correlator->relations_.FinishRestore(static_cast<size_t>(file_count));

  // --- streams, folded across the chain -------------------------------------
  std::map<Pid, ReferenceStreams::ExportedStream> folded;
  for (size_t k = 0; k < chain.size(); ++k) {
    std::vector<Pid> removed;
    std::vector<ReferenceStreams::ExportedStream> upserts;
    SEER_RETURN_IF_ERROR(DecodeStreamSection(parsed[k].streams->payload, file_count,
                                             &removed, &upserts));
    for (const Pid pid : removed) {
      folded.erase(pid);
    }
    for (auto& s : upserts) {
      folded[s.pid] = std::move(s);
    }
  }
  std::vector<ReferenceStreams::ExportedStream> exported;
  exported.reserve(folded.size());
  for (auto& [pid, s] : folded) {
    exported.push_back(std::move(s));  // std::map iterates pid-ascending
  }
  correlator->streams_.Restore(exported);

  return correlator;
}

}  // namespace seer
