#include "src/core/snapshot_codec.h"

#include <string>

#include "src/util/crc32.h"
#include "src/util/thread_pool.h"

namespace seer {

namespace snapshot_internal {

void PutSection(ByteWriter* out, uint32_t tag, std::string_view payload) {
  out->PutU32(tag);
  out->PutU64(payload.size());
  out->PutU32(Crc32(payload));
  out->PutBytes(payload);
}

StatusOr<std::string_view> GetSection(ByteReader* reader, uint32_t want_tag,
                                      const char* name) {
  const uint32_t tag = reader->GetU32();
  const uint64_t size = reader->GetU64();
  const uint32_t crc = reader->GetU32();
  if (!reader->ok() || tag != want_tag) {
    return Status::DataLoss(std::string("snapshot: bad or missing section header for ") + name);
  }
  if (size > reader->remaining()) {
    return Status::DataLoss(std::string("snapshot: truncated ") + name + " section");
  }
  const std::string_view payload = reader->GetBytes(static_cast<size_t>(size));
  if (!reader->ok() || Crc32(payload) != crc) {
    return Status::DataLoss(std::string("snapshot: bad crc in ") + name + " section");
  }
  return payload;
}

std::string FourCc(uint32_t tag) {
  std::string out(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xff);
    if (c >= 0x20 && c < 0x7f) {
      out[i] = c;
    }
  }
  return out;
}

StatusOr<std::vector<RawSection>> ParseSections(std::string_view bytes) {
  ByteReader reader(bytes);
  const std::string_view magic = reader.GetBytes(kMagicV1.size());
  if (magic != kMagicV1 && magic != kMagicV2) {
    return Status::DataLoss("snapshot: bad magic");
  }
  std::vector<RawSection> sections;
  while (!reader.AtEnd()) {
    RawSection s;
    s.tag = reader.GetU32();
    const uint64_t size = reader.GetU64();
    s.crc = reader.GetU32();
    if (!reader.ok() || size > reader.remaining()) {
      return Status::DataLoss("snapshot: truncated section #" +
                              std::to_string(sections.size()));
    }
    s.payload = reader.GetBytes(static_cast<size_t>(size));
    sections.push_back(s);
  }
  if (sections.empty() || sections.back().tag != kTagEnd) {
    return Status::DataLoss("snapshot: missing end section");
  }
  return sections;
}

Status CheckCrc(const RawSection& section, size_t ordinal) {
  if (Crc32(section.payload) != section.crc) {
    return Status::DataLoss("snapshot: bad crc in section " + FourCc(section.tag) +
                            " (#" + std::to_string(ordinal) + ")");
  }
  return Status::Ok();
}

}  // namespace snapshot_internal

namespace {

using namespace snapshot_internal;  // NOLINT

// Frames one relation stripe into a complete `tag|size|crc|payload` block.
// Pure function of the stripe copy, so stripes can be framed concurrently.
std::string EncodeStripeSection(const RelationStripeCopy& stripe) {
  ByteWriter payload;
  payload.PutU32(stripe.index);
  uint32_t list_count = 0;
  for (const uint32_t count : stripe.counts) {
    if (count > 0) {
      ++list_count;
    }
  }
  payload.PutU32(list_count);
  size_t base = 0;  // packed: file f's entries follow file f-1's
  for (uint32_t f = 0; f < stripe.files; ++f) {
    const uint32_t count = stripe.counts[f];
    if (count == 0) {
      continue;
    }
    payload.PutU32(stripe.begin + f);
    payload.PutU32(count);
    for (uint32_t i = 0; i < count; ++i) {
      payload.PutU32(stripe.ids[base + i]);
      payload.PutDouble(stripe.logs[base + i]);
      payload.PutDouble(stripe.lins[base + i]);
      payload.PutU32(stripe.obs[base + i]);
      payload.PutU64(stripe.upds[base + i]);
    }
    base += count;
  }
  ByteWriter section;
  PutSection(&section, kTagStripe, payload.data());
  return section.Take();
}

}  // namespace

std::string EncodeSealedSnapshot(const SealedSnapshot& seal, ThreadPool* pool) {
  ByteWriter meta;
  meta.PutU32(2);
  meta.PutU8(seal.delta ? 1 : 0);
  meta.PutU64(seal.base_generation);
  meta.PutU64(seal.file_count);
  meta.PutU32(seal.stripe_size);
  meta.PutU32(static_cast<uint32_t>(seal.stripes.size()));

  ByteWriter params;
  params.PutString(seal.params_text);

  ByteWriter path_table;
  path_table.PutU32(static_cast<uint32_t>(seal.paths.size()));
  for (const std::string& p : seal.paths) {
    path_table.PutString(p);
  }

  ByteWriter file_table;
  file_table.PutU64(seal.records.size());
  file_table.PutU64(seal.deletion_count);
  file_table.PutU64(seal.global_ref_seq);
  file_table.PutU64(seal.references_processed);
  for (size_t id = 0; id < seal.records.size(); ++id) {
    const FileRecord& rec = seal.records[id];
    file_table.PutU32(seal.record_path_index[id]);
    file_table.PutI64(rec.last_ref_time);
    file_table.PutU64(rec.last_ref_seq);
    file_table.PutU64(rec.ref_count);
    file_table.PutU8(static_cast<uint8_t>((rec.deleted ? 1 : 0) | (rec.excluded ? 2 : 0)));
    file_table.PutU64(rec.deleted_at_deletion_count);
  }
  file_table.PutU32(static_cast<uint32_t>(seal.purge_queue.size()));
  for (const FileId id : seal.purge_queue) {
    file_table.PutU32(id);
  }

  ByteWriter rel_head;
  rel_head.PutU64(seal.update_count);
  for (const uint64_t s : seal.rng_state) {
    rel_head.PutU64(s);
  }

  ByteWriter streams;
  streams.PutU32(static_cast<uint32_t>(seal.removed_pids.size()));
  for (const Pid pid : seal.removed_pids) {
    streams.PutI32(pid);
  }
  streams.PutU32(static_cast<uint32_t>(seal.streams.size()));
  for (const auto& s : seal.streams) {
    streams.PutI32(s.pid);
    streams.PutI32(s.parent);
    streams.PutU64(s.open_counter);
    streams.PutU64(s.ref_counter);
    streams.PutU32(static_cast<uint32_t>(s.files.size()));
    for (const auto& f : s.files) {
      streams.PutU32(f.file);
      streams.PutU64(f.last_open_index);
      streams.PutU64(f.last_ref_index);
      streams.PutI64(f.last_open_time);
      streams.PutU32(f.open_nesting);
      streams.PutU8(f.compensated ? 1 : 0);
    }
    streams.PutU32(static_cast<uint32_t>(s.window.size()));
    for (const auto& [file, idx] : s.window) {
      streams.PutU32(file);
      streams.PutU64(idx);
    }
  }

  // The stripe sections dominate the encode at scale; frame them in
  // parallel. Each slot is written by exactly one worker and assembly below
  // follows slot order, so the output is identical at any thread count.
  std::vector<std::string> stripe_sections(seal.stripes.size());
  if (pool != nullptr && seal.stripes.size() > 1) {
    pool->ParallelChunks(seal.stripes.size(), [&](size_t i) {
      stripe_sections[i] = EncodeStripeSection(seal.stripes[i]);
    });
  } else {
    for (size_t i = 0; i < seal.stripes.size(); ++i) {
      stripe_sections[i] = EncodeStripeSection(seal.stripes[i]);
    }
  }

  ByteWriter out;
  out.PutBytes(kMagicV2);
  PutSection(&out, kTagMeta, meta.data());
  PutSection(&out, kTagParams, params.data());
  PutSection(&out, kTagPaths, path_table.data());
  PutSection(&out, kTagFiles, file_table.data());
  PutSection(&out, kTagRelHead, rel_head.data());
  PutSection(&out, kTagStreams, streams.data());
  for (const std::string& s : stripe_sections) {
    out.PutBytes(s);
  }
  PutSection(&out, kTagEnd, {});
  return out.Take();
}

StatusOr<SnapshotMeta> ReadSnapshotMeta(std::string_view bytes) {
  ByteReader reader(bytes);
  const std::string_view magic = reader.GetBytes(kMagicV1.size());
  if (magic == kMagicV1) {
    SnapshotMeta meta;
    meta.version = 1;
    return meta;
  }
  if (magic != kMagicV2) {
    return Status::DataLoss("snapshot: bad magic");
  }
  SEER_ASSIGN_OR_RETURN(const std::string_view payload,
                        GetSection(&reader, kTagMeta, "meta"));
  ByteReader meta_reader(payload);
  SnapshotMeta meta;
  meta.version = meta_reader.GetU32();
  meta.delta = meta_reader.GetU8() != 0;
  meta.base_generation = meta_reader.GetU64();
  meta.file_count = meta_reader.GetU64();
  meta.stripe_size = meta_reader.GetU32();
  meta.stripe_sections = meta_reader.GetU32();
  if (!meta_reader.ok() || meta.version != 2) {
    return Status::DataLoss("snapshot: malformed meta section");
  }
  return meta;
}

Status VerifySnapshotSections(std::string_view bytes) {
  SEER_ASSIGN_OR_RETURN(const std::vector<RawSection> sections,
                        ParseSections(bytes));
  for (size_t i = 0; i < sections.size(); ++i) {
    SEER_RETURN_IF_ERROR(CheckCrc(sections[i], i));
  }
  return Status::Ok();
}

}  // namespace seer
