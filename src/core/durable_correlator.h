// Crash-safe correlator: the in-memory Correlator plus its durability.
//
// DurableCorrelator is a ReferenceSink that fans every event into the
// correlator AND the current generation's WAL, so the on-disk store always
// holds snapshot + log for the live state. Open() recovers from whatever
// the directory contains (including mid-crash wreckage) and immediately
// checkpoints, so each process run works against its own fresh generation
// and the WAL's path dictionary never straddles runs.
//
// Sink callbacks are void, so WAL append failures latch into wal_status()
// (first error kept) instead of throwing; the correlator keeps learning
// in memory either way and a later successful checkpoint re-establishes
// durability.
#ifndef SRC_CORE_DURABLE_CORRELATOR_H_
#define SRC_CORE_DURABLE_CORRELATOR_H_

#include <memory>
#include <string>

#include "src/core/correlator.h"
#include "src/core/snapshot_store.h"
#include "src/core/wal.h"
#include "src/util/fs.h"
#include "src/util/status.h"

namespace seer {

class DurableCorrelator : public ReferenceSink {
 public:
  struct OpenStats {
    // What recovery found.
    uint64_t recovered_generation = 0;  // 0 = store was empty
    bool fresh = false;
    uint64_t snapshots_discarded = 0;
    uint64_t wal_records_replayed = 0;
    bool torn_wal_tail = false;
  };

  // Recovers (or starts fresh) and checkpoints the recovered state as a
  // new generation.
  static StatusOr<std::unique_ptr<DurableCorrelator>> Open(
      Fs* fs, std::string dir, const SeerParams& defaults = {},
      SnapshotStoreOptions options = {});

  // --- ReferenceSink: forward to the correlator, append to the WAL ------
  void OnReference(const FileReference& ref) override;
  void OnProcessFork(Pid parent, Pid child) override;
  void OnProcessExit(Pid pid) override;
  void OnFileDeleted(PathId path, Time time) override;
  void OnFileRenamed(PathId from, PathId to, Time time) override;
  void OnFileExcluded(PathId path) override;

  // Reading the correlator flushes the ingest batcher first, so callers
  // always see every event delivered to the sink applied.
  Correlator& correlator() {
    batcher_.Flush();
    return *correlator_;
  }
  const Correlator& correlator() const {
    batcher_.Flush();
    return *correlator_;
  }
  SnapshotStore& store() { return store_; }

  // Snapshot the current state as the next generation and rotate the WAL.
  Status Checkpoint();

  // Push buffered WAL records to stable storage (durability point for
  // everything observed so far).
  Status Sync();

  uint64_t generation() const { return generation_; }
  uint64_t wal_bytes() const { return wal_ != nullptr ? wal_->bytes_logged() : 0; }
  const Status& wal_status() const { return wal_status_; }
  const OpenStats& open_stats() const { return open_stats_; }

 private:
  DurableCorrelator(SnapshotStore store, std::unique_ptr<Correlator> correlator);

  void Latch(Status status) {
    if (wal_status_.ok() && !status.ok()) {
      wal_status_ = std::move(status);
    }
  }

  SnapshotStore store_;
  std::unique_ptr<Correlator> correlator_;
  // Events are WAL-appended eagerly (one per sink call, order preserved)
  // but applied to the correlator in batches through the sharded ingest
  // pipeline; Checkpoint() and the correlator() accessors flush first, so
  // batch boundaries always align with WAL checkpoints and recovery's
  // serial replay reproduces the batched state exactly (the pipelines are
  // bit-equivalent). Mutable: a const read must still be able to flush.
  mutable IngestBatcher batcher_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t generation_ = 0;
  Status wal_status_;
  OpenStats open_stats_;
};

}  // namespace seer

#endif  // SRC_CORE_DURABLE_CORRELATOR_H_
