// Crash-safe correlator: the in-memory Correlator plus its durability.
//
// DurableCorrelator is a ReferenceSink that fans every event into the
// correlator AND the current generation's WAL, so the on-disk store always
// holds snapshot + log for the live state. Open() recovers from whatever
// the directory contains (including mid-crash wreckage) and immediately
// checkpoints, so each process run works against its own fresh generation
// and the WAL's path dictionary never straddles runs.
//
// Checkpointing is split so ingest only stalls for the seal, never for the
// encode or the disk write:
//
//   BeginCheckpoint()   flush + sync the outgoing WAL, seal an owning copy
//                       of the correlator state (SealSnapshot), rotate to
//                       the new generation's WAL, then hand the sealed copy
//                       to a background thread that encodes it (parallel
//                       sharded sections), writes it atomically, and prunes.
//                       Ingest resumes the moment this returns.
//   CheckpointDone()    true once the background work has finished.
//   FinishCheckpoint()  join + harvest: commit the delta cut epochs, record
//                       CheckpointStats, trim the stream removal log. On
//                       failure the next checkpoint is forced full.
//   Checkpoint()        the synchronous composition of the three — same
//                       Fs-op sequence from the calling thread, so
//                       fault-injection op counting stays deterministic
//                       (pool threads never touch the Fs).
//
// Every full_checkpoint_every-th snapshot is full; the ones between are
// deltas carrying only the relation stripes and streams dirtied since the
// previous snapshot's seal cut (see snapshot_codec.h). A failed or
// discarded checkpoint forces the next one full, so a delta's base is
// always the immediately preceding durable snapshot file.
//
// Sink callbacks are void, so WAL append failures latch into wal_status()
// (first error kept) instead of throwing; the correlator keeps learning
// in memory either way and a later successful checkpoint re-establishes
// durability.
#ifndef SRC_CORE_DURABLE_CORRELATOR_H_
#define SRC_CORE_DURABLE_CORRELATOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "src/core/correlator.h"
#include "src/core/snapshot_store.h"
#include "src/core/wal.h"
#include "src/util/fs.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace seer {

class DurableCorrelator : public ReferenceSink {
 public:
  struct OpenStats {
    // What recovery found.
    uint64_t recovered_generation = 0;  // 0 = store was empty
    bool fresh = false;
    uint64_t snapshots_discarded = 0;
    uint64_t wal_records_replayed = 0;
    bool torn_wal_tail = false;
  };

  // Recovers (or starts fresh) and checkpoints the recovered state as a
  // new generation. `shared_pool`, when given, runs the recovery decode,
  // the genesis checkpoint encode, and (via UseSharedPool) all later
  // parallel phases — the multi-tenant router opens thousands of these
  // against one pool.
  static StatusOr<std::unique_ptr<DurableCorrelator>> Open(
      Fs* fs, std::string dir, const SeerParams& defaults = {},
      SnapshotStoreOptions options = {}, ThreadPool* shared_pool = nullptr);

  // Joins any in-flight checkpoint (its result is discarded unharvested;
  // the snapshot it wrote — if it got that far — is still on disk).
  ~DurableCorrelator() override;

  // --- ReferenceSink: forward to the correlator, append to the WAL ------
  void OnReference(const FileReference& ref) override;
  void OnProcessFork(Pid parent, Pid child) override;
  void OnProcessExit(Pid pid) override;
  void OnFileDeleted(PathId path, Time time) override;
  void OnFileRenamed(PathId from, PathId to, Time time) override;
  void OnFileExcluded(PathId path) override;

  // Reading the correlator flushes the ingest batcher first, so callers
  // always see every event delivered to the sink applied.
  Correlator& correlator() {
    batcher_.Flush();
    return *correlator_;
  }
  const Correlator& correlator() const {
    batcher_.Flush();
    return *correlator_;
  }
  SnapshotStore& store() { return store_; }

  // Encode snapshots (and, forwarded to the correlator, measure and score)
  // on a caller-owned pool. Must not be called while a checkpoint is in
  // flight. nullptr restores private pools.
  void UseSharedPool(ThreadPool* pool);

  // Snapshot the current state as the next generation and rotate the WAL,
  // synchronously (seal + encode + write + prune before returning).
  Status Checkpoint();

  // Seal + rotate, then encode/write/prune on a background thread. The
  // caller keeps ingesting immediately; poll CheckpointDone() and call
  // FinishCheckpoint() to harvest. At most one checkpoint is in flight —
  // beginning another first finishes the previous one (blocking).
  Status BeginCheckpoint();
  bool checkpoint_in_flight() const { return inflight_active_; }
  bool CheckpointDone() const {
    return inflight_active_ && inflight_done_.load(std::memory_order_acquire);
  }
  // Blocks until the in-flight checkpoint (if any) completes and commits
  // its result. Returns the background work's status; Ok and a no-op when
  // nothing is in flight.
  Status FinishCheckpoint();

  // Stats for the most recently harvested checkpoint (zeros before the
  // first one completes).
  const CheckpointStats& last_checkpoint_stats() const { return last_stats_; }

  // Push buffered WAL records to stable storage (durability point for
  // everything observed so far).
  Status Sync();

  uint64_t generation() const { return generation_; }
  uint64_t wal_bytes() const { return wal_ != nullptr ? wal_->bytes_logged() : 0; }
  const Status& wal_status() const { return wal_status_; }
  const OpenStats& open_stats() const { return open_stats_; }

 private:
  DurableCorrelator(SnapshotStore store, std::unique_ptr<Correlator> correlator);

  // The shared seal-and-rotate prologue plus the encode/write/prune job;
  // async spawns the job on a thread, sync runs it inline and harvests.
  Status DoCheckpoint(bool async);

  void Latch(Status status) {
    if (wal_status_.ok() && !status.ok()) {
      wal_status_ = std::move(status);
    }
  }

  SnapshotStore store_;
  std::unique_ptr<Correlator> correlator_;
  // Events are WAL-appended eagerly (one per sink call, order preserved)
  // but applied to the correlator in batches through the sharded ingest
  // pipeline; Checkpoint() and the correlator() accessors flush first, so
  // batch boundaries always align with WAL checkpoints and recovery's
  // serial replay reproduces the batched state exactly (the pipelines are
  // bit-equivalent). Mutable: a const read must still be able to flush.
  mutable IngestBatcher batcher_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t generation_ = 0;
  Status wal_status_;
  OpenStats open_stats_;

  // --- checkpoint plane -------------------------------------------------
  // Owned lazily; encodes sealed sections in parallel. Pool workers only
  // touch memory, never the Fs.
  std::unique_ptr<ThreadPool> encode_pool_;
  ThreadPool* shared_pool_ = nullptr;  // not owned; overrides encode_pool_
  ThreadPool* EncodePool();
  std::thread inflight_thread_;
  bool inflight_active_ = false;           // main-thread view: join pending
  std::atomic<bool> inflight_done_{false};  // set by the background job
  // Written by the job before inflight_done_, read after (release/acquire).
  Status inflight_status_;
  CheckpointStats inflight_stats_;
  // What the in-flight snapshot will establish once harvested.
  bool pending_delta_ = false;
  uint64_t pending_generation_ = 0;
  uint64_t pending_relation_epoch_ = 0;
  uint64_t pending_stream_epoch_ = 0;
  // Committed cut: the epochs the last durable snapshot covers. The next
  // delta carries exactly the stripes/streams dirtied after these.
  uint64_t cut_relation_epoch_ = 0;
  uint64_t cut_stream_epoch_ = 0;
  uint64_t last_snapshot_generation_ = 0;  // base for the next delta
  uint64_t last_full_bytes_ = 0;           // denominator for delta_ratio
  uint64_t snapshots_since_full_ = 0;
  bool have_base_ = false;   // a durable snapshot exists to delta against
  bool force_full_ = false;  // a failed/unharvested checkpoint poisons deltas
  CheckpointStats last_stats_;
};

}  // namespace seer

#endif  // SRC_CORE_DURABLE_CORRELATOR_H_
