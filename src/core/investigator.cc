#include "src/core/investigator.h"

#include <sstream>

#include "src/util/path.h"

namespace seer {

namespace {

bool IsSourceExtension(const std::string& ext) {
  return ext == "c" || ext == "cc" || ext == "cpp" || ext == "cxx" || ext == "h" ||
         ext == "hh" || ext == "hpp";
}

// Trims leading/trailing spaces and tabs.
std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace

std::vector<std::string> IncludeScanner::ParseIncludes(const std::string& source) {
  std::vector<std::string> out;
  std::istringstream in(source);
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view t = Trim(line);
    if (t.size() < 10 || t[0] != '#') {
      continue;
    }
    std::string_view rest = Trim(t.substr(1));
    if (rest.compare(0, 7, "include") != 0) {
      continue;
    }
    rest = Trim(rest.substr(7));
    if (rest.size() < 2 || rest.front() != '"') {
      continue;  // angle-bracket includes are ignored
    }
    const size_t close = rest.find('"', 1);
    if (close == std::string_view::npos || close == 1) {
      continue;
    }
    out.emplace_back(rest.substr(1, close - 1));
  }
  return out;
}

std::vector<std::string> IncludeScanner::ParseSystemIncludes(const std::string& source) {
  std::vector<std::string> out;
  std::istringstream in(source);
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view t = Trim(line);
    if (t.size() < 10 || t[0] != '#') {
      continue;
    }
    std::string_view rest = Trim(t.substr(1));
    if (rest.compare(0, 7, "include") != 0) {
      continue;
    }
    rest = Trim(rest.substr(7));
    if (rest.size() < 2 || rest.front() != '<') {
      continue;
    }
    const size_t close = rest.find('>', 1);
    if (close == std::string_view::npos || close == 1) {
      continue;
    }
    out.emplace_back(rest.substr(1, close - 1));
  }
  return out;
}

std::vector<InvestigatedRelation> IncludeScanner::Investigate(
    const SimFilesystem& fs, const std::vector<std::string>& candidates) {
  std::vector<InvestigatedRelation> relations;
  for (const auto& path : candidates) {
    if (!IsSourceExtension(Extension(path))) {
      continue;
    }
    const auto content = fs.ReadContent(path);
    if (!content.has_value()) {
      continue;
    }
    InvestigatedRelation rel;
    rel.strength = strength_;
    rel.files.push_back(path);
    for (const auto& inc : ParseIncludes(*content)) {
      const std::string target = AbsolutePath(Dirname(path), inc);
      if (fs.Exists(target)) {
        rel.files.push_back(target);
      }
    }
    if (rel.files.size() > 1) {
      relations.push_back(std::move(rel));
    }
  }
  return relations;
}

std::vector<std::pair<std::string, std::vector<std::string>>> MakefileInvestigator::ParseRules(
    const std::string& text) {
  std::vector<std::pair<std::string, std::vector<std::string>>> rules;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '\t' || line[0] == '#') {
      continue;  // recipe lines and comments
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    const std::string target(Trim(std::string_view(line).substr(0, colon)));
    if (target.empty() || target.find(' ') != std::string::npos || target == ".PHONY") {
      continue;
    }
    std::vector<std::string> deps;
    std::istringstream dep_stream(line.substr(colon + 1));
    std::string dep;
    while (dep_stream >> dep) {
      deps.push_back(dep);
    }
    rules.emplace_back(target, std::move(deps));
  }
  return rules;
}

std::vector<InvestigatedRelation> MakefileInvestigator::Investigate(
    const SimFilesystem& fs, const std::vector<std::string>& candidates) {
  std::vector<InvestigatedRelation> relations;
  for (const auto& path : candidates) {
    const std::string base = Basename(path);
    if (base != "Makefile" && base != "makefile") {
      continue;
    }
    const auto content = fs.ReadContent(path);
    if (!content.has_value()) {
      continue;
    }
    const std::string dir = Dirname(path);
    for (const auto& [target, deps] : ParseRules(*content)) {
      InvestigatedRelation rel;
      rel.strength = strength_;
      rel.files.push_back(path);
      const std::string target_abs = AbsolutePath(dir, target);
      if (fs.Exists(target_abs)) {
        rel.files.push_back(target_abs);
      }
      for (const auto& dep : deps) {
        const std::string dep_abs = AbsolutePath(dir, dep);
        if (fs.Exists(dep_abs)) {
          rel.files.push_back(dep_abs);
        }
      }
      if (rel.files.size() > 1) {
        relations.push_back(std::move(rel));
      }
    }
  }
  return relations;
}

std::vector<std::string> HotLinkInvestigator::ParseLinks(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view t = Trim(line);
    if (t.compare(0, 5, "LINK:") != 0) {
      continue;
    }
    const std::string_view target = Trim(t.substr(5));
    if (!target.empty()) {
      out.emplace_back(target);
    }
  }
  return out;
}

std::vector<InvestigatedRelation> HotLinkInvestigator::Investigate(
    const SimFilesystem& fs, const std::vector<std::string>& candidates) {
  std::vector<InvestigatedRelation> relations;
  for (const auto& path : candidates) {
    const auto content = fs.ReadContent(path);
    if (!content.has_value() || content->find("LINK:") == std::string::npos) {
      continue;
    }
    InvestigatedRelation rel;
    rel.strength = strength_;
    rel.files.push_back(path);
    for (const auto& link : ParseLinks(*content)) {
      const std::string target = AbsolutePath(Dirname(path), link);
      if (fs.Exists(target)) {
        rel.files.push_back(target);
      }
    }
    if (rel.files.size() > 1) {
      relations.push_back(std::move(rel));
    }
  }
  return relations;
}

}  // namespace seer
