#include "src/core/file_table.h"

#include <algorithm>

namespace seer {

FileId FileTable::Lookup(PathId path) const {
  return path < by_path_.size() ? by_path_[path] : kInvalidFileId;
}

void FileTable::Bind(PathId path, FileId id) {
  if (path >= by_path_.size()) {
    by_path_.resize(path + 1, kInvalidFileId);
  }
  by_path_[path] = id;
}

FileId FileTable::Intern(PathId path) {
  if (path == kInvalidPathId) {
    return kInvalidFileId;
  }
  const FileId existing = Lookup(path);
  if (existing != kInvalidFileId) {
    FileRecord& rec = records_[existing];
    if (rec.deleted) {
      // Name reuse after deletion: resurrect the record so relationship
      // information built under the old name survives (Section 4.8).
      rec.deleted = false;
      flags_[existing] &= static_cast<uint8_t>(~kFlagDeleted);
      Touch(existing);
    }
    return existing;
  }
  const FileId id = static_cast<FileId>(records_.size());
  FileRecord rec;
  rec.path = path;
  records_.push_back(rec);
  flags_.push_back(0);
  touch_stamp_.push_back(0);
  Bind(path, id);
  Touch(id);
  return id;
}

FileId FileTable::Find(PathId path) const {
  return path == kInvalidPathId ? kInvalidFileId : Lookup(path);
}

FileId FileTable::FindPath(std::string_view path) const {
  return Find(GlobalPaths().Find(path));
}

std::string_view FileTable::PathOf(FileId id) const {
  const PathId path = records_[id].path;
  return path == kInvalidPathId ? std::string_view() : GlobalPaths().PathOf(path);
}

void FileTable::RecordReference(FileId id, Time time, uint64_t seq) {
  FileRecord& rec = records_[id];
  rec.last_ref_time = time;
  rec.last_ref_seq = seq;
  ++rec.ref_count;
  Touch(id);
}

std::vector<FileId> FileTable::MarkDeleted(FileId id, uint64_t delete_delay) {
  FileRecord& rec = records_[id];
  if (!rec.deleted) {
    rec.deleted = true;
    flags_[id] |= kFlagDeleted;
    rec.deleted_at_deletion_count = ++deletion_count_;
    pending_purge_.push_back(id);
    Touch(id);
  }
  // Expire entries whose grace period (measured in total deletions,
  // Section 4.8) has elapsed — and which are still deleted.
  std::vector<FileId> expired;
  while (!pending_purge_.empty()) {
    const FileId head = pending_purge_.front();
    const FileRecord& head_rec = records_[head];
    if (!head_rec.deleted) {
      pending_purge_.pop_front();  // resurrected meanwhile
      continue;
    }
    if (deletion_count_ - head_rec.deleted_at_deletion_count < delete_delay) {
      break;
    }
    expired.push_back(head);
    pending_purge_.pop_front();
  }
  return expired;
}

void FileTable::MarkExcluded(FileId id) {
  records_[id].excluded = true;
  flags_[id] |= kFlagExcluded;
  Touch(id);
}

void FileTable::RenameFile(FileId from, PathId to) {
  FileRecord& rec = records_[from];
  // If the target name already has a record, retire it: the rename
  // replaced that file.
  const FileId existing = Find(to);
  if (existing != kInvalidFileId && existing != from) {
    records_[existing].deleted = true;
    flags_[existing] |= kFlagDeleted;
    records_[existing].path = kInvalidPathId;
    Touch(existing);
  }
  if (rec.path != kInvalidPathId && rec.path < by_path_.size()) {
    by_path_[rec.path] = kInvalidFileId;
  }
  rec.path = to;
  Bind(to, from);
  Touch(from);
}

FileId FileTable::RestoreRecord(const FileRecord& record) {
  const FileId id = static_cast<FileId>(records_.size());
  records_.push_back(record);
  flags_.push_back(static_cast<uint8_t>((record.deleted ? kFlagDeleted : 0) |
                                        (record.excluded ? kFlagExcluded : 0)));
  touch_stamp_.push_back(0);
  if (record.path != kInvalidPathId) {
    Bind(record.path, id);
  }
  Touch(id);
  return id;
}

void FileTable::RebuildPurgeQueue() {
  std::vector<FileId> deleted;
  for (FileId id = 0; id < records_.size(); ++id) {
    if (records_[id].deleted) {
      deleted.push_back(id);
    }
  }
  std::sort(deleted.begin(), deleted.end(), [this](FileId a, FileId b) {
    return records_[a].deleted_at_deletion_count < records_[b].deleted_at_deletion_count;
  });
  pending_purge_.assign(deleted.begin(), deleted.end());
}

std::vector<FileId> FileTable::LiveIds() const {
  std::vector<FileId> out;
  out.reserve(records_.size());
  for (FileId id = 0; id < records_.size(); ++id) {
    if (!records_[id].deleted && !records_[id].excluded &&
        records_[id].path != kInvalidPathId) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace seer
