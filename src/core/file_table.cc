#include "src/core/file_table.h"

#include <algorithm>

namespace seer {

FileId FileTable::Intern(std::string_view path) {
  const auto it = by_path_.find(std::string(path));
  if (it != by_path_.end()) {
    FileRecord& rec = records_[it->second];
    if (rec.deleted) {
      // Name reuse after deletion: resurrect the record so relationship
      // information built under the old name survives (Section 4.8).
      rec.deleted = false;
    }
    return it->second;
  }
  const FileId id = static_cast<FileId>(records_.size());
  FileRecord rec;
  rec.path = std::string(path);
  records_.push_back(std::move(rec));
  by_path_.emplace(records_.back().path, id);
  return id;
}

FileId FileTable::Find(std::string_view path) const {
  const auto it = by_path_.find(std::string(path));
  return it == by_path_.end() ? kInvalidFileId : it->second;
}

void FileTable::RecordReference(FileId id, Time time, uint64_t seq) {
  FileRecord& rec = records_[id];
  rec.last_ref_time = time;
  rec.last_ref_seq = seq;
  ++rec.ref_count;
}

std::vector<FileId> FileTable::MarkDeleted(FileId id, uint64_t delete_delay) {
  FileRecord& rec = records_[id];
  if (!rec.deleted) {
    rec.deleted = true;
    rec.deleted_at_deletion_count = ++deletion_count_;
    pending_purge_.push_back(id);
  }
  // Expire entries whose grace period (measured in total deletions,
  // Section 4.8) has elapsed — and which are still deleted.
  std::vector<FileId> expired;
  while (!pending_purge_.empty()) {
    const FileId head = pending_purge_.front();
    const FileRecord& head_rec = records_[head];
    if (!head_rec.deleted) {
      pending_purge_.pop_front();  // resurrected meanwhile
      continue;
    }
    if (deletion_count_ - head_rec.deleted_at_deletion_count < delete_delay) {
      break;
    }
    expired.push_back(head);
    pending_purge_.pop_front();
  }
  return expired;
}

void FileTable::RenameFile(FileId from, std::string_view to) {
  FileRecord& rec = records_[from];
  // If the target name already has a record, retire it: the rename
  // replaced that file.
  const FileId existing = Find(to);
  if (existing != kInvalidFileId && existing != from) {
    records_[existing].deleted = true;
    by_path_.erase(records_[existing].path);
    records_[existing].path.clear();
  }
  by_path_.erase(rec.path);
  rec.path = std::string(to);
  by_path_.emplace(rec.path, from);
}

FileId FileTable::RestoreRecord(const FileRecord& record) {
  const FileId id = static_cast<FileId>(records_.size());
  records_.push_back(record);
  if (!record.path.empty()) {
    by_path_.emplace(records_.back().path, id);
  }
  return id;
}

void FileTable::RebuildPurgeQueue() {
  std::vector<FileId> deleted;
  for (FileId id = 0; id < records_.size(); ++id) {
    if (records_[id].deleted) {
      deleted.push_back(id);
    }
  }
  std::sort(deleted.begin(), deleted.end(), [this](FileId a, FileId b) {
    return records_[a].deleted_at_deletion_count < records_[b].deleted_at_deletion_count;
  });
  pending_purge_.assign(deleted.begin(), deleted.end());
}

std::vector<FileId> FileTable::LiveIds() const {
  std::vector<FileId> out;
  out.reserve(records_.size());
  for (FileId id = 0; id < records_.size(); ++id) {
    if (!records_[id].deleted && !records_[id].excluded && !records_[id].path.empty()) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace seer
