// Generation-based durable storage for the correlator database.
//
// A store directory holds numbered snapshot/WAL generations:
//
//   snap-000007.seersnap   full binary snapshot (v1 or v2 sectioned)
//   delta-000008.seersnap  delta snapshot: only relation stripes/streams
//                          touched since generation 7 (v2 only)
//   wal-000008.seerwal     sink events observed after generation 8
//
// Checkpointing writes snapshot N+1 via the atomic-commit protocol (temp
// file + fsync + rename + directory fsync), opens wal-(N+1) for the
// records that follow, and prunes old generations. A delta snapshot's META
// names the generation it applies over — its base is always the snapshot
// file immediately preceding it, so a chain is a full plus the contiguous
// run of deltas after it. Recovery walks heads newest-first: for each head
// it collects the chain back to the nearest full, validates META linkage,
// and folds the chain in one decode — falling back head by head past torn
// files — then replays every retained WAL of the head generation and
// newer, in order. A torn WAL tail simply ends the replay: the result is
// always a consistent state the correlator actually passed through.
//
// Invariants the layout maintains (see DESIGN.md):
//   * snapshot files are only ever observed complete (atomic rename) and
//     self-validating (per-section CRCs).
//   * wal-N is created only after generation N's snapshot is durable, and
//     generation N+1 is written only after wal-N is synced — so the
//     fallback chain snap/delta-K, wal-K, wal-K+1, ..., replayed in
//     order, is gapless for every retained K.
//   * pruning keeps whole chains: the cutoff is always a retained full
//     generation, so every retained delta's base is retained too.
#ifndef SRC_CORE_SNAPSHOT_STORE_H_
#define SRC_CORE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/correlator.h"
#include "src/core/wal.h"
#include "src/util/fs.h"
#include "src/util/status.h"

namespace seer {

struct SnapshotStoreOptions {
  // FULL snapshot generations retained after a checkpoint (with the delta
  // chains and WALs built on them). At least 2, so a torn newest chain
  // always has a fallback.
  size_t keep_generations = 2;
  // WAL write-buffer size (bytes buffered before an Fs append).
  size_t wal_flush_bytes = 1 << 16;
  // Every K-th checkpoint is a full snapshot; the K-1 between are deltas
  // (bounds chain length and recovery work). 1 disables deltas entirely.
  uint64_t full_checkpoint_every = 4;
};

class SnapshotStore {
 public:
  SnapshotStore(Fs* fs, std::string dir, SnapshotStoreOptions options = {});

  // Creates the store directory if needed.
  Status Open();

  const std::string& dir() const { return dir_; }
  const SnapshotStoreOptions& options() const { return options_; }

  std::string SnapshotPath(uint64_t generation) const;
  std::string DeltaPath(uint64_t generation) const;
  std::string WalPath(uint64_t generation) const;

  // Present snapshot generation numbers (full and delta), ascending.
  StatusOr<std::vector<uint64_t>> ListSnapshots() const;
  StatusOr<std::vector<uint64_t>> ListWals() const;

  // Snapshot files with their kind, ascending by generation. A generation
  // holds either a full or a delta, never both.
  struct SnapshotFileInfo {
    uint64_t generation = 0;
    bool delta = false;
  };
  StatusOr<std::vector<SnapshotFileInfo>> ListSnapshotFiles() const;

  // Smallest generation number above every artifact present (minimum 1).
  StatusOr<uint64_t> NextGeneration() const;

  struct RecoveryResult {
    std::unique_ptr<Correlator> correlator;
    // Generation of the snapshot loaded; 0 when the store was empty and
    // `correlator` is fresh.
    uint64_t generation = 0;
    bool fresh = false;
    uint64_t snapshots_discarded = 0;  // torn/corrupt snapshots skipped
    uint64_t wals_replayed = 0;
    uint64_t wal_records_replayed = 0;
    bool torn_wal_tail = false;  // replay ended at a damaged record
  };
  // Never writes; safe to call on a store another process produced.
  // `defaults` seeds the correlator when the store is empty. `pool`, when
  // given, runs the chain decode; otherwise a transient pool is created
  // (the multi-tenant router restores thousands of stores and cannot
  // afford a pool per call).
  StatusOr<RecoveryResult> Recover(const SeerParams& defaults = {},
                                   ThreadPool* pool = nullptr) const;

  // Atomically writes `generation`'s full snapshot (temp + fsync + rename
  // + dir fsync). Fails with kAlreadyExists if that generation is present.
  Status WriteSnapshot(const Correlator& correlator, uint64_t generation);

  // Same atomic protocol for pre-encoded bytes (the async checkpoint path
  // encodes off-thread and hands the result here). `delta` selects the
  // delta-NNNNNN.seersnap name.
  Status WriteSnapshotBytes(std::string_view bytes, uint64_t generation, bool delta);

  // Creates generation `generation`'s WAL (headered, synced, dir-synced).
  StatusOr<std::unique_ptr<WalWriter>> CreateWal(uint64_t generation);

  struct CheckpointResult {
    uint64_t generation = 0;
    // The new generation's WAL, created and headered; subsequent sink
    // events belong to it.
    std::unique_ptr<WalWriter> wal;
  };
  // Snapshot the correlator as the next generation, open its WAL, prune.
  StatusOr<CheckpointResult> Checkpoint(const Correlator& correlator);

  // Removes whole chains beyond keep_generations full snapshots (the
  // cutoff is always a full generation, so retained deltas keep their
  // bases), WALs older than the cutoff, and stray temp files.
  Status Prune();

  struct GenerationInfo {
    uint64_t generation = 0;
    bool has_snapshot = false;
    bool is_delta = false;
    uint64_t snapshot_bytes = 0;
    bool snapshot_ok = false;  // full: decodes cleanly; delta: sections pass
    bool has_wal = false;
    uint64_t wal_bytes = 0;
    uint64_t wal_records = 0;
    WalReplayStats::Tail wal_tail = WalReplayStats::Tail::kClean;
  };
  struct StoreInfo {
    std::vector<GenerationInfo> generations;  // ascending
  };
  // Inspects every artifact (decodes snapshots, scans WALs). Read-only.
  StatusOr<StoreInfo> GetInfo() const;

  // OK iff the store recovers cleanly: at least the newest retained chain
  // is intact and WAL damage is at worst a torn tail. Per-section CRC
  // failures name the damaged section (fourcc + ordinal). `deep`
  // additionally checks every snapshot file's sections, decodes every
  // full, and validates every delta's META linkage — not just the chain
  // recovery would use.
  Status Verify(bool deep = false) const;

  // --- Multi-tenant layout ------------------------------------------------
  // A multi-tenant store root holds one ordinary store directory per
  // tenant, named tenant-NNNNNNNN (zero-padded decimal TenantId). Each is
  // a self-contained single-instance store: `seerctl db ...` and a
  // standalone DurableCorrelator read a tenant directory unchanged.
  static std::string TenantDirectory(const std::string& root, TenantId tenant);
  // TenantIds present under `root`, ascending. Non-conforming entries are
  // ignored. NotFound roots yield an empty list (a fresh server).
  static StatusOr<std::vector<TenantId>> ListTenants(Fs* fs, const std::string& root);

 private:
  StatusOr<std::vector<uint64_t>> ListByPattern(const std::string& prefix,
                                                const std::string& suffix) const;

  // Chain of files recovery would fold for the head at `head_index`:
  // nearest older full through the head, with META linkage validated.
  // Reads every chain file into `bytes`.
  Status LoadChain(const std::vector<SnapshotFileInfo>& files, size_t head_index,
                   std::vector<std::string>* bytes) const;

  std::string SnapshotFilePath(const SnapshotFileInfo& info) const;

  Fs* fs_;
  std::string dir_;
  SnapshotStoreOptions options_;
};

}  // namespace seer

#endif  // SRC_CORE_SNAPSHOT_STORE_H_
