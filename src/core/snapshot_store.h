// Generation-based durable storage for the correlator database.
//
// A store directory holds numbered snapshot/WAL generation pairs:
//
//   snap-000007.seersnap   binary snapshot (Correlator::EncodeSnapshot)
//   wal-000007.seerwal     sink events observed after snap-000007
//
// Checkpointing writes snapshot N+1 via the atomic-commit protocol (temp
// file + fsync + rename + directory fsync), opens wal-(N+1) for the
// records that follow, and prunes old generations. Recovery loads the
// newest snapshot that decodes cleanly — falling back generation by
// generation past torn ones — then replays every retained WAL of that
// generation and newer, in order. A torn WAL tail simply ends the replay:
// the result is always a consistent state the correlator actually passed
// through.
//
// Invariants the layout maintains (see DESIGN.md):
//   * snap-N is only ever observed complete (atomic rename) and
//     self-validating (per-section CRCs).
//   * wal-N is created only after snap-N is durable, and snap-(N+1) is
//     written only after wal-N is synced — so the fallback chain
//     snap-K, wal-K, wal-K+1, ..., replayed in order, is gapless for
//     every retained K.
#ifndef SRC_CORE_SNAPSHOT_STORE_H_
#define SRC_CORE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/correlator.h"
#include "src/core/wal.h"
#include "src/util/fs.h"
#include "src/util/status.h"

namespace seer {

struct SnapshotStoreOptions {
  // Snapshot generations retained after a checkpoint (with their WALs).
  // At least 2, so a torn newest snapshot always has a fallback.
  size_t keep_generations = 2;
  // WAL write-buffer size (bytes buffered before an Fs append).
  size_t wal_flush_bytes = 1 << 16;
};

class SnapshotStore {
 public:
  SnapshotStore(Fs* fs, std::string dir, SnapshotStoreOptions options = {});

  // Creates the store directory if needed.
  Status Open();

  const std::string& dir() const { return dir_; }

  std::string SnapshotPath(uint64_t generation) const;
  std::string WalPath(uint64_t generation) const;

  // Present generation numbers, ascending.
  StatusOr<std::vector<uint64_t>> ListSnapshots() const;
  StatusOr<std::vector<uint64_t>> ListWals() const;

  struct RecoveryResult {
    std::unique_ptr<Correlator> correlator;
    // Generation of the snapshot loaded; 0 when the store was empty and
    // `correlator` is fresh.
    uint64_t generation = 0;
    bool fresh = false;
    uint64_t snapshots_discarded = 0;  // torn/corrupt snapshots skipped
    uint64_t wals_replayed = 0;
    uint64_t wal_records_replayed = 0;
    bool torn_wal_tail = false;  // replay ended at a damaged record
  };
  // Never writes; safe to call on a store another process produced.
  // `defaults` seeds the correlator when the store is empty.
  StatusOr<RecoveryResult> Recover(const SeerParams& defaults = {}) const;

  // Atomically writes `generation`'s snapshot (temp + fsync + rename +
  // dir fsync). Fails with kAlreadyExists if that generation is present.
  Status WriteSnapshot(const Correlator& correlator, uint64_t generation);

  struct CheckpointResult {
    uint64_t generation = 0;
    // The new generation's WAL, created and headered; subsequent sink
    // events belong to it.
    std::unique_ptr<WalWriter> wal;
  };
  // Snapshot the correlator as the next generation, open its WAL, prune.
  StatusOr<CheckpointResult> Checkpoint(const Correlator& correlator);

  // Removes snapshots beyond keep_generations (oldest first), WALs older
  // than the oldest retained snapshot, and stray temp files.
  Status Prune();

  struct GenerationInfo {
    uint64_t generation = 0;
    bool has_snapshot = false;
    uint64_t snapshot_bytes = 0;
    bool snapshot_ok = false;  // decodes cleanly
    bool has_wal = false;
    uint64_t wal_bytes = 0;
    uint64_t wal_records = 0;
    WalReplayStats::Tail wal_tail = WalReplayStats::Tail::kClean;
  };
  struct StoreInfo {
    std::vector<GenerationInfo> generations;  // ascending
  };
  // Inspects every artifact (decodes snapshots, scans WALs). Read-only.
  StatusOr<StoreInfo> GetInfo() const;

  // OK iff the store recovers cleanly: at least the newest retained chain
  // is intact and WAL damage is at worst a torn tail.
  Status Verify() const;

 private:
  StatusOr<std::vector<uint64_t>> ListByPattern(const std::string& prefix,
                                                const std::string& suffix) const;

  Fs* fs_;
  std::string dir_;
  SnapshotStoreOptions options_;
};

}  // namespace seer

#endif  // SRC_CORE_SNAPSHOT_STORE_H_
