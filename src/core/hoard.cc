#include "src/core/hoard.h"

#include <algorithm>
#include <chrono>

#include "src/util/thread_pool.h"

namespace seer {

namespace {

// Parallel-fill granularity. Same shape as the clustering plane: several
// chunks per worker for dynamic balance, a floor per chunk to bound
// claim-counter traffic, and a serial cutoff below which pool dispatch
// costs more than the work (typical single-tenant fills stay serial).
constexpr size_t kChunksPerThread = 4;
constexpr size_t kMinChunk = 64;
constexpr size_t kSerialCutoff = 512;

double MsSince(std::chrono::steady_clock::time_point mark) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - mark)
      .count();
}

}  // namespace

bool HoardSelection::Contains(PathId path) const {
  if (sorted_ids.size() == files.size()) {
    return std::binary_search(sorted_ids.begin(), sorted_ids.end(), path);
  }
  // Hand-assembled selection without the index: fall back to a scan.
  return std::find(files.begin(), files.end(), path) != files.end();
}

std::vector<std::string> HoardSelection::PathStrings() const {
  std::vector<std::string> out;
  out.reserve(files.size());
  for (const PathId id : files) {
    out.emplace_back(GlobalPaths().PathOf(id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

HoardManager::~HoardManager() = default;

void HoardManager::set_threads(int threads) {
  threads_ = threads;
  const int want = threads_ > 0 ? threads_ : DefaultThreadCount();
  if (pool_ != nullptr && pool_threads_ != want) {
    pool_.reset();
  }
}

int HoardManager::threads() const { return threads_ > 0 ? threads_ : DefaultThreadCount(); }

void HoardManager::set_shared_pool(ThreadPool* pool) {
  shared_pool_ = pool;
  if (pool != nullptr) {
    pool_.reset();
  }
}

ThreadPool* HoardManager::Pool() const {
  if (shared_pool_ != nullptr) {
    return shared_pool_;
  }
  const int want = threads_ > 0 ? threads_ : DefaultThreadCount();
  if (pool_ == nullptr || pool_threads_ != want) {
    pool_ = std::make_unique<ThreadPool>(want);
    pool_threads_ = want;
  }
  return pool_.get();
}

HoardSelection HoardManager::ChooseHoard(const Correlator& correlator,
                                         const ClusterSet& clusters,
                                         const std::set<PathId>& always_hoard,
                                         const SizeFn& size_of) const {
  const auto start = std::chrono::steady_clock::now();
  auto mark = start;

  HoardSelection sel;
  sel.budget_bytes = budget_bytes_;
  // The conservative all-directories-hoarded space assumption
  // (Section 4.6): charged before any file competes for the budget.
  sel.bytes_used = reserved_bytes_;

  const FileTable& files = correlator.files();
  const size_t n_clusters = clusters.clusters.size();
  const uint64_t epoch_now = files.touch_epoch();
  // A hand-assembled ClusterSet (tests) may lack membership hashes; without
  // them cluster identity cannot be validated, so fill from scratch.
  const bool have_hash = clusters.member_hash.size() == n_clusters;
  const bool warm = incremental_fill_ && fill_cache_valid_ && have_hash &&
                    cache_source_ == static_cast<const void*>(&correlator);

  fill_stats_ = HoardFillStats{};
  fill_stats_.clusters = n_clusters;
  fill_stats_.incremental = warm;

  // --- plan: which clusters moved since the cached epoch -------------------
  touched_.clear();
  cluster_dirty_.assign(n_clusters, warm ? 0 : 1);
  if (warm) {
    files.CollectTouchedSince(cache_epoch_, &touched_);
    for (const FileId f : touched_) {
      for (const uint32_t c : clusters.ClustersOf(f)) {
        cluster_dirty_[c] = 1;
      }
    }
  }
  fill_stats_.touched_files = touched_.size();

  // Reuse cached aggregates for clean clusters whose identity still
  // matches; everything else lands on the dirty list.
  agg_scratch_.assign(n_clusters, ClusterAggregate{});
  dirty_.clear();
  for (uint32_t c = 0; c < n_clusters; ++c) {
    const std::vector<FileId>& members = clusters.clusters[c].members;
    if (warm && !cluster_dirty_[c] && !members.empty()) {
      const uint32_t* idx = rep_index_.Find(members[0]);
      if (idx != nullptr && agg_cache_[*idx].member_hash == clusters.member_hash[c]) {
        agg_scratch_[c] = agg_cache_[*idx];
        continue;
      }
    }
    dirty_.push_back(c);
  }
  fill_stats_.dirty_clusters = dirty_.size();
  fill_stats_.reused_aggregates = n_clusters - dirty_.size();

  // --- size column refresh --------------------------------------------------
  // Resolve size_of once per (touched, live) file into a PathId-indexed
  // column; untouched files keep their cached size (SizeFn contract: a size
  // change is always accompanied by a file-table touch). A cold fill
  // resolves every live file.
  resolve_.clear();
  if (warm) {
    for (const FileId f : touched_) {
      const FileRecord& rec = files.Get(f);
      if (!rec.deleted && rec.path != kInvalidPathId) {
        resolve_.push_back(f);
      }
    }
  } else {
    for (FileId f = 0; f < files.size(); ++f) {
      const FileRecord& rec = files.Get(f);
      if (!rec.deleted && rec.path != kInvalidPathId) {
        resolve_.push_back(f);
      }
    }
  }
  fill_stats_.sizes_resolved = resolve_.size();
  if (size_col_.size() < GlobalPaths().size()) {
    size_col_.resize(GlobalPaths().size(), 0);
  }

  // Shared dispatcher for the two parallel phases: runs body(lo, hi) over
  // [0, items), inline when serial or under the cutoff. Every body writes
  // disjoint slots of a pre-sized array and reads only immutable state, so
  // the split (and thread count) cannot affect the result — the merge below
  // is sequential and deterministic.
  ThreadPool* pool = nullptr;
  const auto run_ranges = [&](size_t items, const std::function<void(size_t, size_t)>& body) {
    const size_t workers = static_cast<size_t>(threads());
    const size_t chunks =
        std::min(workers * kChunksPerThread, (items + kMinChunk - 1) / kMinChunk);
    if (workers <= 1 || items <= kSerialCutoff || chunks <= 1) {
      body(0, items);
      return;
    }
    if (pool == nullptr) {
      pool = Pool();
    }
    const size_t per = (items + chunks - 1) / chunks;
    pool->ParallelChunks(chunks, [&](size_t c) {
      const size_t lo = c * per;
      const size_t hi = std::min(items, lo + per);
      if (lo < hi) {
        body(lo, hi);
      }
    });
  };

  run_ranges(resolve_.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const PathId path = files.Get(resolve_[i]).path;
      size_col_[path] = size_of(path);
    }
  });

  // --- recompute dirty aggregates in parallel -------------------------------
  // Each dirty cluster is summarised by exactly one chunk; priority is a
  // max and live_bytes a sum over that cluster's members, both order-free.
  run_ranges(dirty_.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const uint32_t c = dirty_[i];
      const std::vector<FileId>& members = clusters.clusters[c].members;
      ClusterAggregate agg;
      agg.rep = members.empty() ? kInvalidFileId : members[0];
      agg.member_hash = have_hash ? clusters.member_hash[c] : 0;
      for (const FileId id : members) {
        const FileRecord& rec = files.Get(id);
        agg.priority = std::max(agg.priority, rec.last_ref_seq);
        if (!rec.deleted && rec.path != kInvalidPathId) {
          agg.live_bytes += size_col_[rec.path];
          ++agg.live_count;
        }
      }
      agg_scratch_[c] = agg;
    }
  });
  fill_stats_.agg_ms = MsSince(mark);
  mark = std::chrono::steady_clock::now();

  // --- rank: sequential deterministic merge ---------------------------------
  // A project is as recent as its most recently referenced member; ties
  // break on cluster index, giving a total order (the scratch and
  // incremental paths rank the identical aggregate table, so they cannot
  // diverge).
  rank_order_.resize(n_clusters);
  for (uint32_t c = 0; c < n_clusters; ++c) {
    rank_order_[c] = c;
  }
  std::sort(rank_order_.begin(), rank_order_.end(), [&](uint32_t a, uint32_t b) {
    if (agg_scratch_[a].priority != agg_scratch_[b].priority) {
      return agg_scratch_[a].priority > agg_scratch_[b].priority;
    }
    return a < b;
  });
  fill_stats_.rank_ms = MsSince(mark);
  mark = std::chrono::steady_clock::now();

  // --- greedy budgeted selection --------------------------------------------
  // Dense membership test: a PathId-indexed mark column (stamped per fill,
  // never cleared) plus the append-order selection vector. `sel_in_cluster_`
  // tracks, per cluster, the bytes of its live members already selected, so
  // a cluster's incremental cost is one subtraction instead of a member
  // walk — only clusters actually taken (or partially filled) are walked.
  ++sel_mark_;
  if (sel_mark_ == 0) {  // mark wrapped: old stamps could alias; reset all
    in_sel_mark_.assign(in_sel_mark_.size(), 0);
    sel_mark_ = 1;
  }
  if (in_sel_mark_.size() < GlobalPaths().size()) {
    in_sel_mark_.resize(GlobalPaths().size(), 0);
  }
  sel_in_cluster_.assign(n_clusters, 0);

  // Size of a selected path: live files come from the column (resolved
  // above); paths with no live record (non-file objects, pins to deleted
  // files) fall through to the caller's oracle, exactly as before.
  const auto size_of_path = [&](PathId path) -> uint64_t {
    const FileId id = files.Find(path);
    if (id != kInvalidFileId && !files.Get(id).deleted) {
      return size_col_[path];
    }
    return size_of(path);
  };

  const auto in_selection = [&](PathId path) { return in_sel_mark_[path] == sel_mark_; };

  // Ingress for always-hoard and pins: arbitrary paths, so file identity
  // must be looked up to resolve size and cluster membership.
  const auto add_file = [&](PathId path) {
    if (path == kInvalidPathId || in_selection(path)) {
      return;
    }
    in_sel_mark_[path] = sel_mark_;
    const uint64_t bytes = size_of_path(path);
    sel.bytes_used += bytes;
    sel.files.push_back(path);
    const FileId id = files.Find(path);
    if (id != kInvalidFileId && !files.Get(id).deleted) {
      for (const uint32_t c : clusters.ClustersOf(id)) {
        sel_in_cluster_[c] += bytes;
      }
    }
  };

  // Ingress for cluster members: the caller holds a live FileId, so no
  // path->id lookups — the size comes straight from the column and the
  // credit walk from the CSR membership index.
  const auto add_member = [&](FileId id, PathId path) {
    if (in_selection(path)) {
      return;
    }
    in_sel_mark_[path] = sel_mark_;
    const uint64_t bytes = size_col_[path];
    sel.bytes_used += bytes;
    sel.files.push_back(path);
    for (const uint32_t c : clusters.ClustersOf(id)) {
      sel_in_cluster_[c] += bytes;
    }
  };

  // Unconditional contents first: critical files, dot-files, non-files,
  // frequent files, and explicit user pins. These are included regardless
  // of the budget — the paper treats them as outside SEER's discretion.
  for (const PathId path : always_hoard) {
    add_file(path);
  }
  for (const PathId path : pinned_) {
    add_file(path);
  }

  // Greedily take whole projects while they fit. By default a project that
  // does not fit is skipped whole — partial projects are never hoarded
  // (Section 2); in the ablation mode it contributes its most recent
  // members instead.
  for (const uint32_t c : rank_order_) {
    const ClusterAggregate& agg = agg_scratch_[c];
    // Live bytes not yet selected — exact, because every selected live
    // file credited all clusters it belongs to at add time.
    const uint64_t extra = agg.live_bytes - sel_in_cluster_[c];
    if (sel.bytes_used + extra > budget_bytes_) {
      if (!allow_partial_) {
        ++sel.projects_skipped;
        continue;
      }
      // Partial fill (ablation mode): take the project's members most
      // recently referenced first, while they fit.
      const std::vector<FileId>& members = clusters.clusters[c].members;
      by_recency_.clear();
      for (const FileId id : members) {
        const FileRecord& rec = files.Get(id);
        if (!rec.deleted && rec.path != kInvalidPathId) {
          by_recency_.emplace_back(rec.last_ref_seq, id);
        }
      }
      std::sort(by_recency_.rbegin(), by_recency_.rend());
      bool took_any = false;
      for (const auto& [seq, id] : by_recency_) {
        const PathId path = files.Get(id).path;
        const uint64_t bytes = in_selection(path) ? 0 : size_col_[path];
        if (sel.bytes_used + bytes <= budget_bytes_) {
          add_member(id, path);
          took_any = true;
        }
      }
      if (took_any) {
        ++sel.projects_hoarded;
      } else {
        ++sel.projects_skipped;
      }
      continue;
    }
    for (const FileId id : clusters.clusters[c].members) {
      const FileRecord& rec = files.Get(id);
      if (!rec.deleted && rec.path != kInvalidPathId) {
        add_member(id, rec.path);
      }
    }
    ++sel.projects_hoarded;
  }

  sel.sorted_ids = sel.files;
  std::sort(sel.sorted_ids.begin(), sel.sorted_ids.end());
  fill_stats_.select_ms = MsSince(mark);

  // --- publish the cache for the next fill ----------------------------------
  agg_cache_.swap(agg_scratch_);
  rep_index_.Clear();
  for (uint32_t c = 0; c < n_clusters; ++c) {
    if (agg_cache_[c].rep != kInvalidFileId) {
      // Overlapping clusters may share a representative; the loser of this
      // slot simply misses its cache hit next fill (hash check recomputes).
      rep_index_.InsertOrGet(agg_cache_[c].rep) = c;
    }
  }
  cache_epoch_ = epoch_now;
  cache_source_ = static_cast<const void*>(&correlator);
  fill_cache_valid_ = have_hash;

  fill_stats_.threads = threads();
  fill_stats_.fill_ms = MsSince(start);
  return sel;
}

void MissLog::CountRecord(const MissRecord& rec) {
  if (rec.automatic) {
    ++automatic_count_;
  } else if (static_cast<size_t>(rec.severity) < 5) {
    ++manual_by_severity_[static_cast<size_t>(rec.severity)];
  }
}

void MissLog::RecordManual(PathId path, Time time, MissSeverity severity) {
  MissRecord rec;
  rec.path = path;
  rec.time = time;
  rec.severity = severity;
  rec.automatic = false;
  records_.push_back(rec);
  CountRecord(rec);
  pending_hoard_.insert(path);
  seen_this_disconnection_.insert(path);
}

void MissLog::OnNotLocalAccess(PathId path, Pid /*pid*/, Time time) {
  if (!seen_this_disconnection_.insert(path).second) {
    return;  // already recorded this disconnection
  }
  MissRecord rec;
  rec.path = path;
  rec.time = time;
  rec.severity = MissSeverity::kMinor;
  rec.automatic = true;
  records_.push_back(rec);
  CountRecord(rec);
  pending_hoard_.insert(path);
}

void MissLog::StartDisconnection(Time /*time*/) {
  disconnected_ = true;
  disconnection_start_index_ = records_.size();
  seen_this_disconnection_.clear();
}

void MissLog::EndDisconnection() {
  disconnected_ = false;
  seen_this_disconnection_.clear();
}

size_t MissLog::CurrentDisconnectionMissCount() const {
  return records_.size() - disconnection_start_index_;
}

std::vector<PathId> MissLog::TakeFilesToHoard() {
  std::vector<PathId> out(pending_hoard_.begin(), pending_hoard_.end());
  pending_hoard_.clear();
  return out;
}

void MissLog::RestoreState(std::vector<MissRecord> records, std::set<PathId> pending_hoard) {
  records_ = std::move(records);
  pending_hoard_ = std::move(pending_hoard);
  seen_this_disconnection_.clear();
  disconnection_start_index_ = records_.size();
  disconnected_ = false;
  std::fill(std::begin(manual_by_severity_), std::end(manual_by_severity_), 0);
  automatic_count_ = 0;
  for (const MissRecord& rec : records_) {
    CountRecord(rec);
  }
}

}  // namespace seer
