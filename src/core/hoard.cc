#include "src/core/hoard.h"

#include <algorithm>

namespace seer {

std::set<std::string> HoardSelection::PathStrings() const {
  std::set<std::string> out;
  for (const PathId id : files) {
    out.emplace(GlobalPaths().PathOf(id));
  }
  return out;
}

HoardSelection HoardManager::ChooseHoard(const Correlator& correlator,
                                         const ClusterSet& clusters,
                                         const std::set<PathId>& always_hoard,
                                         const SizeFn& size_of) const {
  HoardSelection sel;
  sel.budget_bytes = budget_bytes_;
  // The conservative all-directories-hoarded space assumption
  // (Section 4.6): charged before any file competes for the budget.
  sel.bytes_used = reserved_bytes_;

  auto add_file = [&](PathId path) {
    if (path == kInvalidPathId || sel.files.count(path) != 0) {
      return;
    }
    sel.bytes_used += size_of(path);
    sel.files.insert(path);
  };

  // Unconditional contents first: critical files, dot-files, non-files,
  // frequent files, and explicit user pins. These are included regardless
  // of the budget — the paper treats them as outside SEER's discretion.
  for (const PathId path : always_hoard) {
    add_file(path);
  }
  for (const PathId path : pinned_) {
    add_file(path);
  }

  // Rank projects by activity: a project is as recent as its most recently
  // referenced member.
  const FileTable& files = correlator.files();
  struct Ranked {
    uint64_t priority = 0;
    uint32_t index = 0;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(clusters.clusters.size());
  for (uint32_t i = 0; i < clusters.clusters.size(); ++i) {
    uint64_t priority = 0;
    for (const FileId id : clusters.clusters[i].members) {
      priority = std::max(priority, files.Get(id).last_ref_seq);
    }
    ranked.push_back({priority, i});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.priority > b.priority; });

  // Greedily take whole projects while they fit. By default a project that
  // does not fit is skipped whole — partial projects are never hoarded
  // (Section 2); in the ablation mode it contributes its most recent
  // members instead.
  for (const Ranked& r : ranked) {
    const Cluster& cluster = clusters.clusters[r.index];
    uint64_t extra = 0;
    for (const FileId id : cluster.members) {
      const FileRecord& rec = files.Get(id);
      if (rec.deleted || rec.path == kInvalidPathId) {
        continue;
      }
      if (sel.files.count(rec.path) == 0) {
        extra += size_of(rec.path);
      }
    }
    if (sel.bytes_used + extra > budget_bytes_) {
      if (!allow_partial_) {
        ++sel.projects_skipped;
        continue;
      }
      // Partial fill (ablation mode): take the project's members most
      // recently referenced first, while they fit.
      std::vector<std::pair<uint64_t, FileId>> by_recency;
      for (const FileId id : cluster.members) {
        const FileRecord& rec = files.Get(id);
        if (!rec.deleted && rec.path != kInvalidPathId) {
          by_recency.emplace_back(rec.last_ref_seq, id);
        }
      }
      std::sort(by_recency.rbegin(), by_recency.rend());
      bool took_any = false;
      for (const auto& [seq, id] : by_recency) {
        const PathId path = files.Get(id).path;
        const uint64_t bytes = sel.files.count(path) != 0 ? 0 : size_of(path);
        if (sel.bytes_used + bytes <= budget_bytes_) {
          add_file(path);
          took_any = true;
        }
      }
      if (took_any) {
        ++sel.projects_hoarded;
      } else {
        ++sel.projects_skipped;
      }
      continue;
    }
    for (const FileId id : cluster.members) {
      const FileRecord& rec = files.Get(id);
      if (!rec.deleted && rec.path != kInvalidPathId) {
        add_file(rec.path);
      }
    }
    ++sel.projects_hoarded;
  }
  return sel;
}

void MissLog::RecordManual(PathId path, Time time, MissSeverity severity) {
  MissRecord rec;
  rec.path = path;
  rec.time = time;
  rec.severity = severity;
  rec.automatic = false;
  records_.push_back(rec);
  pending_hoard_.insert(path);
  seen_this_disconnection_.insert(path);
}

void MissLog::OnNotLocalAccess(PathId path, Pid /*pid*/, Time time) {
  if (!seen_this_disconnection_.insert(path).second) {
    return;  // already recorded this disconnection
  }
  MissRecord rec;
  rec.path = path;
  rec.time = time;
  rec.severity = MissSeverity::kMinor;
  rec.automatic = true;
  records_.push_back(rec);
  pending_hoard_.insert(path);
}

void MissLog::StartDisconnection(Time /*time*/) {
  disconnected_ = true;
  disconnection_start_index_ = records_.size();
  seen_this_disconnection_.clear();
}

void MissLog::EndDisconnection() {
  disconnected_ = false;
  seen_this_disconnection_.clear();
}

size_t MissLog::CurrentDisconnectionMissCount() const {
  return records_.size() - disconnection_start_index_;
}

std::vector<PathId> MissLog::TakeFilesToHoard() {
  std::vector<PathId> out(pending_hoard_.begin(), pending_hoard_.end());
  pending_hoard_.clear();
  return out;
}

void MissLog::RestoreState(std::vector<MissRecord> records, std::set<PathId> pending_hoard) {
  records_ = std::move(records);
  pending_hoard_ = std::move(pending_hoard);
  seen_this_disconnection_.clear();
  disconnection_start_index_ = records_.size();
  disconnected_ = false;
}

size_t MissLog::CountAtSeverity(MissSeverity severity) const {
  size_t n = 0;
  for (const auto& rec : records_) {
    if (!rec.automatic && rec.severity == severity) {
      ++n;
    }
  }
  return n;
}

size_t MissLog::automatic_count() const {
  size_t n = 0;
  for (const auto& rec : records_) {
    if (rec.automatic) {
      ++n;
    }
  }
  return n;
}

}  // namespace seer
