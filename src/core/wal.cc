#include "src/core/wal.h"

#include <string>

#include "src/util/crc32.h"
#include "src/util/path_interner.h"

namespace seer {

namespace {

constexpr std::string_view kWalMagic = "SEERWAL1";

enum RecordType : uint8_t {
  kPathDef = 0x01,    // u32 index | string path
  kReference = 0x02,  // u32 path-index | i32 pid | u8 kind | i64 time | u8 write
  kDeleted = 0x03,    // u32 path-index | i64 time
  kRenamed = 0x04,    // u32 from-index | u32 to-index | i64 time
  kExcluded = 0x05,   // u32 path-index
  kFork = 0x06,       // i32 parent | i32 child
  kExit = 0x07,       // i32 pid
};

constexpr size_t kRecordHeaderBytes = 1 + 4 + 4;  // type | size | crc

}  // namespace

WalWriter::WalWriter(Fs* fs, std::string path, uint64_t generation, size_t flush_bytes)
    : fs_(fs), path_(std::move(path)), generation_(generation), flush_bytes_(flush_bytes) {}

Status WalWriter::Create() {
  if (fs_->Exists(path_)) {
    return Status::AlreadyExists("wal already exists: " + path_);
  }
  ByteWriter header;
  header.PutBytes(kWalMagic);
  header.PutU64(generation_);
  bytes_logged_ = header.size();
  return fs_->WriteFile(path_, header.data());
}

uint32_t WalWriter::PathIndex(PathId path) {
  const auto it = dictionary_.find(path);
  if (it != dictionary_.end()) {
    return it->second;
  }
  const uint32_t index = static_cast<uint32_t>(dictionary_.size());
  dictionary_.emplace(path, index);
  ByteWriter def;
  def.PutU32(index);
  def.PutString(GlobalPaths().PathOf(path));
  // A failed dictionary append surfaces on the next Flush/Sync; the index
  // stays assigned so the stream stays consistent if the write succeeds.
  (void)AppendRecord(kPathDef, def);
  return index;
}

Status WalWriter::AppendRecord(uint8_t type, const ByteWriter& payload) {
  ByteWriter record;
  record.PutU8(type);
  record.PutU32(static_cast<uint32_t>(payload.size()));
  record.PutU32(Crc32(payload.data()));
  record.PutBytes(payload.data());
  buffer_.append(record.data());
  bytes_logged_ += record.size();
  ++records_logged_;
  if (buffer_.size() >= flush_bytes_) {
    return Flush();
  }
  return Status::Ok();
}

Status WalWriter::AppendReference(const FileReference& ref) {
  const uint32_t path_index = PathIndex(ref.path);
  ByteWriter payload;
  payload.PutU32(path_index);
  payload.PutI32(ref.pid);
  payload.PutU8(static_cast<uint8_t>(ref.kind));
  payload.PutI64(ref.time);
  payload.PutU8(ref.write ? 1 : 0);
  return AppendRecord(kReference, payload);
}

Status WalWriter::AppendFork(Pid parent, Pid child) {
  ByteWriter payload;
  payload.PutI32(parent);
  payload.PutI32(child);
  return AppendRecord(kFork, payload);
}

Status WalWriter::AppendExit(Pid pid) {
  ByteWriter payload;
  payload.PutI32(pid);
  return AppendRecord(kExit, payload);
}

Status WalWriter::AppendDeleted(PathId path, Time time) {
  const uint32_t path_index = PathIndex(path);
  ByteWriter payload;
  payload.PutU32(path_index);
  payload.PutI64(time);
  return AppendRecord(kDeleted, payload);
}

Status WalWriter::AppendRenamed(PathId from, PathId to, Time time) {
  const uint32_t from_index = PathIndex(from);
  const uint32_t to_index = PathIndex(to);
  ByteWriter payload;
  payload.PutU32(from_index);
  payload.PutU32(to_index);
  payload.PutI64(time);
  return AppendRecord(kRenamed, payload);
}

Status WalWriter::AppendExcluded(PathId path) {
  const uint32_t path_index = PathIndex(path);
  ByteWriter payload;
  payload.PutU32(path_index);
  return AppendRecord(kExcluded, payload);
}

Status WalWriter::Flush() {
  if (buffer_.empty()) {
    return Status::Ok();
  }
  std::string pending;
  pending.swap(buffer_);
  const Status status = fs_->AppendFile(path_, pending);
  if (!status.ok()) {
    // Put the records back so a later retry does not drop them (and
    // bytes_logged_ keeps triggering the checkpoint path).
    pending.append(buffer_);
    buffer_.swap(pending);
  }
  return status;
}

Status WalWriter::Sync() {
  SEER_RETURN_IF_ERROR(Flush());
  return fs_->SyncFile(path_);
}

StatusOr<WalReplayStats> ReplayWal(std::string_view bytes, ReferenceSink* sink) {
  ByteReader reader(bytes);
  if (reader.GetBytes(kWalMagic.size()) != kWalMagic) {
    return Status::DataLoss("wal: bad magic");
  }
  WalReplayStats stats;
  stats.generation = reader.GetU64();
  if (!reader.ok()) {
    return Status::DataLoss("wal: truncated header");
  }
  stats.bytes_applied = kWalMagic.size() + 8;

  std::vector<std::string> dictionary;
  // Interned lazily, only when a record actually applies.
  std::vector<PathId> dictionary_ids;

  const auto path_at = [&](uint32_t index) -> PathId {
    if (dictionary_ids[index] == kInvalidPathId) {
      dictionary_ids[index] = GlobalPaths().Intern(dictionary[index]);
    }
    return dictionary_ids[index];
  };

  // Applies one intact record; a non-empty return is a corruption message.
  const auto apply = [&](uint8_t type, std::string_view payload) -> std::string {
    ByteReader p(payload);
    const auto check_path = [&](uint32_t index) { return index < dictionary.size(); };
    switch (type) {
      case kPathDef: {
        const uint32_t index = p.GetU32();
        const std::string_view path = p.GetString();
        if (!p.ok() || !p.AtEnd() || index != dictionary.size()) {
          return "bad path definition";
        }
        dictionary.emplace_back(path);
        dictionary_ids.push_back(kInvalidPathId);
        ++stats.paths_defined;
        return {};
      }
      case kReference: {
        const uint32_t index = p.GetU32();
        FileReference ref;
        ref.pid = p.GetI32();
        ref.kind = static_cast<RefKind>(p.GetU8());
        ref.time = p.GetI64();
        ref.write = p.GetU8() != 0;
        if (!p.ok() || !p.AtEnd() || !check_path(index) || ref.kind > RefKind::kPoint) {
          return "bad reference record";
        }
        if (sink != nullptr) {
          ref.path = path_at(index);
          sink->OnReference(ref);
        }
        return {};
      }
      case kDeleted: {
        const uint32_t index = p.GetU32();
        const Time time = p.GetI64();
        if (!p.ok() || !p.AtEnd() || !check_path(index)) {
          return "bad delete record";
        }
        if (sink != nullptr) {
          sink->OnFileDeleted(path_at(index), time);
        }
        return {};
      }
      case kRenamed: {
        const uint32_t from = p.GetU32();
        const uint32_t to = p.GetU32();
        const Time time = p.GetI64();
        if (!p.ok() || !p.AtEnd() || !check_path(from) || !check_path(to)) {
          return "bad rename record";
        }
        if (sink != nullptr) {
          sink->OnFileRenamed(path_at(from), path_at(to), time);
        }
        return {};
      }
      case kExcluded: {
        const uint32_t index = p.GetU32();
        if (!p.ok() || !p.AtEnd() || !check_path(index)) {
          return "bad exclude record";
        }
        if (sink != nullptr) {
          sink->OnFileExcluded(path_at(index));
        }
        return {};
      }
      case kFork: {
        const Pid parent = p.GetI32();
        const Pid child = p.GetI32();
        if (!p.ok() || !p.AtEnd()) {
          return "bad fork record";
        }
        if (sink != nullptr) {
          sink->OnProcessFork(parent, child);
        }
        return {};
      }
      case kExit: {
        const Pid pid = p.GetI32();
        if (!p.ok() || !p.AtEnd()) {
          return "bad exit record";
        }
        if (sink != nullptr) {
          sink->OnProcessExit(pid);
        }
        return {};
      }
      default:
        return "unknown record type " + std::to_string(type);
    }
  };

  while (!reader.AtEnd()) {
    if (reader.remaining() < kRecordHeaderBytes) {
      stats.tail = WalReplayStats::Tail::kTorn;
      break;
    }
    const uint8_t type = reader.GetU8();
    const uint32_t size = reader.GetU32();
    const uint32_t crc = reader.GetU32();
    if (size > reader.remaining()) {
      stats.tail = WalReplayStats::Tail::kTorn;
      break;
    }
    const std::string_view payload = reader.GetBytes(size);
    if (Crc32(payload) != crc) {
      stats.tail = WalReplayStats::Tail::kTorn;
      break;
    }
    // The record is intact; damage found inside it is corruption, not a
    // torn tail.
    std::string corruption = apply(type, payload);
    if (!corruption.empty()) {
      stats.tail = WalReplayStats::Tail::kCorrupt;
      stats.corruption = std::move(corruption);
      break;
    }
    ++stats.records_applied;
    stats.bytes_applied = bytes.size() - reader.remaining();
  }
  return stats;
}

}  // namespace seer
