// Sectioned binary snapshot codec — the v2 checkpoint wire format.
//
// A v2 snapshot is a sequence of independently CRC'd sections, the relation
// table split into per-stripe sections so encode can be sharded across a
// thread pool and recovery can decode stripes in parallel straight into the
// slab (zero-copy: one file read, per-section CRC checks, in-place writes).
//
//   magic "SEERSNP2"
//   META  u32 version=2 | u8 kind (0 full, 1 delta) | u64 base-generation
//         | u64 file-count | u32 stripe-size | u32 stripe-section-count
//   PRMS  u32 len | params text                      (same layout as v1)
//   PATH  u32 count | (u32 len | bytes)*             (same layout as v1)
//   FILE  v1 file-table payload (records + purge queue)
//   RLHD  u64 update-count | 4 x u64 rng state       (v1 RELS header, split
//                                                     out so stripes stand
//                                                     alone)
//   STRM  u32 removed-count | i32 pid* | u32 stream-count | v1 per-stream
//         encoding (removed pids: processes that exited since the base —
//         empty in a full snapshot)
//   RST0* u32 stripe-index | u32 list-count |
//         (u32 from | u32 count | (u32 id | f64 log | f64 lin | u32 obs
//          | u64 upd)*)*                              (ascending index; a
//                                                     full snapshot omits
//                                                     all-empty stripes, a
//                                                     delta carries every
//                                                     dirty stripe so it
//                                                     can mask its base)
//   END!  empty
//
// Every section is `u32 tag | u64 size | u32 crc32(payload) | payload`,
// identical framing to v1 — so the v1 decoder's section walk, and the
// store's Verify, work on both generations of the format. A delta snapshot
// carries the full PRMS/PATH/FILE sections (they are small and their
// interleaving with relation state is subtle) but only dirty relation
// stripes and dirty/removed streams.
#ifndef SRC_CORE_SNAPSHOT_CODEC_H_
#define SRC_CORE_SNAPSHOT_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/file_table.h"
#include "src/core/reference_streams.h"
#include "src/core/relation_table.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace seer {

class ThreadPool;

// Everything a checkpoint needs, deep-copied from the correlator at the
// seal point. Building this is the ONLY work done while ingest is paused;
// encoding and writing proceed off-thread against the copy. The copy is
// memcpy-dominated (string table + slab stripes), so sealing is an order of
// magnitude cheaper than the byte-at-a-time encode it unblocks.
struct SealedSnapshot {
  bool delta = false;
  uint64_t base_generation = 0;  // delta only: generation this applies over

  std::string params_text;
  std::vector<std::string> paths;              // dense path table
  std::vector<uint32_t> record_path_index;     // per record, or kNoPath
  std::vector<FileRecord> records;
  std::vector<FileId> purge_queue;
  uint64_t deletion_count = 0;
  uint64_t global_ref_seq = 0;
  uint64_t references_processed = 0;

  uint64_t update_count = 0;
  uint64_t rng_state[4] = {0, 0, 0, 0};
  uint64_t file_count = 0;
  uint32_t stripe_size = 0;
  std::vector<RelationStripeCopy> stripes;     // ascending stripe index

  std::vector<Pid> removed_pids;               // exits since the base cut
  std::vector<ReferenceStreams::ExportedStream> streams;

  // Epoch cuts this seal represents; the next delta exports changes after
  // these. Not serialized — the durable layer tracks them in memory.
  uint64_t relation_epoch = 0;
  uint64_t stream_epoch = 0;
};

// Parsed META section (or its v1 equivalent).
struct SnapshotMeta {
  uint32_t version = 0;          // 1 or 2
  bool delta = false;
  uint64_t base_generation = 0;
  uint64_t file_count = 0;
  uint32_t stripe_size = 0;
  uint32_t stripe_sections = 0;
};

// What one checkpoint cost, for `seerctl db info --stats` and the bench.
struct CheckpointStats {
  uint64_t generation = 0;
  bool delta = false;
  uint64_t seal_micros = 0;      // ingest stall: time spent copying state
  uint64_t encode_micros = 0;    // off-thread: sharded section encode
  uint64_t write_micros = 0;     // off-thread: atomic write + fsync + prune
  uint64_t bytes = 0;            // encoded snapshot size
  uint64_t full_bytes = 0;       // last full snapshot's size (ratio base)
  double delta_ratio = 0.0;      // bytes / full_bytes (1.0 for a full)
};

// Encodes a sealed snapshot to v2 bytes. Stripe sections are framed
// concurrently on `pool` (nullptr encodes serially); assembly order is
// fixed, so the output is byte-identical at any thread count.
std::string EncodeSealedSnapshot(const SealedSnapshot& seal, ThreadPool* pool);

// Reads the version/META header of a v1 or v2 snapshot. Cheap: touches only
// the magic and (for v2) the META section, CRC-checked.
StatusOr<SnapshotMeta> ReadSnapshotMeta(std::string_view bytes);

// Walks every section of a v1 or v2 snapshot verifying framing and CRCs.
// On corruption the status names the section (fourcc + ordinal), so a
// deep verify can say *what* is damaged, not just that the file is.
Status VerifySnapshotSections(std::string_view bytes);

namespace snapshot_internal {

constexpr std::string_view kMagicV1 = "SEERSNP1";
constexpr std::string_view kMagicV2 = "SEERSNP2";

// Section tags, as little-endian fourcc values.
constexpr uint32_t Tag(const char (&t)[5]) {
  return static_cast<uint32_t>(static_cast<unsigned char>(t[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(t[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(t[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(t[3])) << 24;
}
constexpr uint32_t kTagMeta = Tag("META");
constexpr uint32_t kTagParams = Tag("PRMS");
constexpr uint32_t kTagPaths = Tag("PATH");
constexpr uint32_t kTagFiles = Tag("FILE");
constexpr uint32_t kTagRelations = Tag("RELS");  // v1 only
constexpr uint32_t kTagRelHead = Tag("RLHD");
constexpr uint32_t kTagStreams = Tag("STRM");
constexpr uint32_t kTagStripe = Tag("RST0");
constexpr uint32_t kTagEnd = Tag("END!");

constexpr uint32_t kNoPath = 0xffffffffu;

void PutSection(ByteWriter* out, uint32_t tag, std::string_view payload);

// Pulls the next section out of `reader`, verifying tag and CRC.
StatusOr<std::string_view> GetSection(ByteReader* reader, uint32_t want_tag,
                                      const char* name);

// One section located in a buffer, framing parsed but payload NOT yet
// CRC-verified — verification happens per consumer (in parallel for
// stripes), so a chain decode reads each byte range exactly once.
struct RawSection {
  uint32_t tag = 0;
  uint32_t crc = 0;
  std::string_view payload;
};

// Splits a v1 or v2 snapshot into its sections (framing checks only).
StatusOr<std::vector<RawSection>> ParseSections(std::string_view bytes);

// "RST0"-style printable name for a tag.
std::string FourCc(uint32_t tag);

// CRC check of one parsed section; names the section on failure.
Status CheckCrc(const RawSection& section, size_t ordinal);

}  // namespace snapshot_internal

}  // namespace seer

#endif  // SRC_CORE_SNAPSHOT_CODEC_H_
