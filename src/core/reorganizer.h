// Directory reorganisation suggestions (Section 7, future work).
//
// The paper's closing section proposes applying SEER's inference to
// "directory reorganization": if semantic clustering says a file belongs
// to a project whose members overwhelmingly live in another directory, the
// namespace probably mis-files it. The reorganizer scans a correlator's
// clusters and, for each file whose cluster-mates are concentrated
// elsewhere, suggests the move — with a confidence based on how lopsided
// the concentration is.
//
// Suggestions are advisory: renaming is the user's (or a tool's) decision,
// and executing a move through the tracer keeps the correlator's identity
// tracking intact (Section 4.8 rename handling).
#ifndef SRC_CORE_REORGANIZER_H_
#define SRC_CORE_REORGANIZER_H_

#include <string>
#include <vector>

#include "src/core/correlator.h"

namespace seer {

struct ReorgSuggestion {
  std::string path;        // the file that looks mis-filed
  std::string from_dir;    // where it lives
  std::string to_dir;      // where its project lives
  double confidence = 0;   // fraction of cluster-mates in to_dir, (0.5, 1]
  size_t cluster_size = 0;
};

struct ReorganizerConfig {
  // A move is suggested only when at least this fraction of the file's
  // cluster-mates share the target directory.
  double min_confidence = 0.6;
  // ...and the cluster has at least this many other members (tiny clusters
  // carry no signal).
  size_t min_cluster_mates = 4;
  // Directories never suggested as sources or targets (system trees are
  // organised by packaging, not by project).
  std::vector<std::string> frozen_prefixes = {"/usr", "/bin", "/lib", "/etc", "/dev", "/sbin",
                                              "/boot", "/tmp", "/var", "/proc"};
};

// Scans all clusters and returns suggestions ordered by descending
// confidence. A file belonging to several clusters is judged by its
// largest cluster.
std::vector<ReorgSuggestion> SuggestReorganization(const Correlator& correlator,
                                                   const ClusterSet& clusters,
                                                   const ReorganizerConfig& config = {});

}  // namespace seer

#endif  // SRC_CORE_REORGANIZER_H_
