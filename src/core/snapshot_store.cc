#include "src/core/snapshot_store.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "src/core/snapshot_codec.h"
#include "src/util/thread_pool.h"

namespace seer {

namespace {

constexpr char kSnapPrefix[] = "snap-";
constexpr char kDeltaPrefix[] = "delta-";
constexpr char kSnapSuffix[] = ".seersnap";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".seerwal";
constexpr char kTmpSuffix[] = ".tmp";

std::string GenerationName(const char* prefix, uint64_t generation, const char* suffix) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu", static_cast<unsigned long long>(generation));
  return std::string(prefix) + buf + suffix;
}

bool ParseGeneration(const std::string& name, const std::string& prefix,
                     const std::string& suffix, uint64_t* generation) {
  if (name.size() <= prefix.size() + suffix.size() || name.compare(0, prefix.size(), prefix) != 0 ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string digits = name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), *generation);
  return ec == std::errc() && ptr == digits.data() + digits.size();
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

SnapshotStore::SnapshotStore(Fs* fs, std::string dir, SnapshotStoreOptions options)
    : fs_(fs), dir_(std::move(dir)), options_(options) {
  if (options_.keep_generations < 2) {
    options_.keep_generations = 2;
  }
}

Status SnapshotStore::Open() { return fs_->MakeDirs(dir_); }

std::string SnapshotStore::SnapshotPath(uint64_t generation) const {
  return dir_ + "/" + GenerationName(kSnapPrefix, generation, kSnapSuffix);
}

std::string SnapshotStore::DeltaPath(uint64_t generation) const {
  return dir_ + "/" + GenerationName(kDeltaPrefix, generation, kSnapSuffix);
}

std::string SnapshotStore::WalPath(uint64_t generation) const {
  return dir_ + "/" + GenerationName(kWalPrefix, generation, kWalSuffix);
}

std::string SnapshotStore::SnapshotFilePath(const SnapshotFileInfo& info) const {
  return info.delta ? DeltaPath(info.generation) : SnapshotPath(info.generation);
}

StatusOr<std::vector<uint64_t>> SnapshotStore::ListByPattern(const std::string& prefix,
                                                             const std::string& suffix) const {
  SEER_ASSIGN_OR_RETURN(const std::vector<std::string> entries, fs_->ListDir(dir_));
  std::vector<uint64_t> generations;
  for (const std::string& name : entries) {
    uint64_t generation = 0;
    if (ParseGeneration(name, prefix, suffix, &generation)) {
      generations.push_back(generation);
    }
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

StatusOr<std::vector<uint64_t>> SnapshotStore::ListSnapshots() const {
  SEER_ASSIGN_OR_RETURN(const std::vector<SnapshotFileInfo> files, ListSnapshotFiles());
  std::vector<uint64_t> generations;
  generations.reserve(files.size());
  for (const SnapshotFileInfo& f : files) {
    generations.push_back(f.generation);
  }
  return generations;
}

StatusOr<std::vector<SnapshotStore::SnapshotFileInfo>> SnapshotStore::ListSnapshotFiles()
    const {
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> fulls,
                        ListByPattern(kSnapPrefix, kSnapSuffix));
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> deltas,
                        ListByPattern(kDeltaPrefix, kSnapSuffix));
  std::vector<SnapshotFileInfo> files;
  files.reserve(fulls.size() + deltas.size());
  for (const uint64_t g : fulls) {
    files.push_back({g, false});
  }
  for (const uint64_t g : deltas) {
    files.push_back({g, true});
  }
  std::sort(files.begin(), files.end(),
            [](const SnapshotFileInfo& a, const SnapshotFileInfo& b) {
              return a.generation < b.generation;
            });
  return files;
}

StatusOr<std::vector<uint64_t>> SnapshotStore::ListWals() const {
  return ListByPattern(kWalPrefix, kWalSuffix);
}

StatusOr<uint64_t> SnapshotStore::NextGeneration() const {
  SEER_ASSIGN_OR_RETURN(const std::vector<SnapshotFileInfo> files, ListSnapshotFiles());
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> wals, ListWals());
  uint64_t next = 1;
  if (!files.empty()) {
    next = std::max(next, files.back().generation + 1);
  }
  if (!wals.empty()) {
    next = std::max(next, wals.back() + 1);
  }
  return next;
}

Status SnapshotStore::LoadChain(const std::vector<SnapshotFileInfo>& files,
                                size_t head_index, std::vector<std::string>* bytes) const {
  // Walk back from the head to the nearest full snapshot.
  size_t first = head_index;
  while (files[first].delta) {
    if (first == 0) {
      return Status::DataLoss("delta without a base full snapshot: " +
                              SnapshotFilePath(files[head_index]));
    }
    --first;
  }
  bytes->clear();
  for (size_t k = first; k <= head_index; ++k) {
    SEER_ASSIGN_OR_RETURN(std::string b, fs_->ReadFile(SnapshotFilePath(files[k])));
    bytes->push_back(std::move(b));
  }
  // A delta applies over exactly the snapshot file preceding it; a missing
  // or foreign base makes the whole head unusable.
  for (size_t k = first + 1; k <= head_index; ++k) {
    const auto meta = ReadSnapshotMeta((*bytes)[k - first]);
    if (!meta.ok()) {
      return meta.status();
    }
    if (!meta->delta || meta->base_generation != files[k - 1].generation) {
      return Status::DataLoss("delta chain linkage broken at " +
                              SnapshotFilePath(files[k]));
    }
  }
  return Status::Ok();
}

StatusOr<SnapshotStore::RecoveryResult> SnapshotStore::Recover(const SeerParams& defaults,
                                                               ThreadPool* pool) const {
  SEER_ASSIGN_OR_RETURN(const std::vector<SnapshotFileInfo> snapshots, ListSnapshotFiles());
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> wals, ListWals());

  RecoveryResult result;

  // Newest head whose chain (nearest full + deltas) folds cleanly wins;
  // heads with torn or mislinked files are skipped. The chain decode runs
  // relation stripes in parallel; pool workers never touch the Fs, so the
  // fault-injection op ordering stays deterministic.
  if (!snapshots.empty()) {
    std::unique_ptr<ThreadPool> own_pool;
    if (pool == nullptr) {
      own_pool = std::make_unique<ThreadPool>();
      pool = own_pool.get();
    }
    for (size_t h = snapshots.size(); h-- > 0;) {
      std::vector<std::string> chain_bytes;
      if (!LoadChain(snapshots, h, &chain_bytes).ok()) {
        ++result.snapshots_discarded;
        continue;
      }
      const std::vector<std::string_view> views(chain_bytes.begin(), chain_bytes.end());
      auto decoded = Correlator::DecodeSnapshotChain(views, pool);
      if (!decoded.ok()) {
        ++result.snapshots_discarded;
        continue;
      }
      result.correlator = *std::move(decoded);
      result.generation = snapshots[h].generation;
      break;
    }
  }
  if (result.correlator == nullptr) {
    if (!snapshots.empty()) {
      return Status::DataLoss("every snapshot in " + dir_ + " is damaged");
    }
    if (!wals.empty()) {
      // A WAL is only created after its snapshot is durable, so WALs with
      // no snapshot at all mean the snapshots were deleted out from under
      // us — replaying them against a fresh correlator would fabricate
      // state we never held.
      return Status::DataLoss("wal files without any snapshot in " + dir_);
    }
    result.correlator = std::make_unique<Correlator>(defaults);
    result.fresh = true;
    return result;
  }

  // Replay the retained chain: wal-G, wal-G+1, ... in order, stopping at
  // the first gap or damaged record. Records in wal-K for K < the loaded
  // generation are already baked into the snapshot.
  uint64_t expected = result.generation;
  for (const uint64_t generation : wals) {
    if (generation < result.generation) {
      continue;
    }
    if (generation != expected) {
      break;  // gap — later logs assume the missing one was applied
    }
    const auto bytes = fs_->ReadFile(WalPath(generation));
    if (!bytes.ok()) {
      break;
    }
    const auto stats = ReplayWal(*bytes, result.correlator.get());
    if (!stats.ok()) {
      // Unusable header: the crash hit WAL creation itself. Nothing from
      // this log was applied; the state is the previous durable point.
      result.torn_wal_tail = true;
      break;
    }
    if (stats->generation != generation) {
      result.torn_wal_tail = true;
      break;
    }
    ++result.wals_replayed;
    result.wal_records_replayed += stats->records_applied;
    if (stats->tail != WalReplayStats::Tail::kClean) {
      result.torn_wal_tail = true;
      break;
    }
    ++expected;
  }
  return result;
}

Status SnapshotStore::WriteSnapshot(const Correlator& correlator, uint64_t generation) {
  return WriteSnapshotBytes(correlator.EncodeSnapshot(), generation, /*delta=*/false);
}

Status SnapshotStore::WriteSnapshotBytes(std::string_view bytes, uint64_t generation,
                                         bool delta) {
  if (fs_->Exists(SnapshotPath(generation)) || fs_->Exists(DeltaPath(generation))) {
    return Status::AlreadyExists("snapshot already exists: " +
                                 (delta ? DeltaPath(generation) : SnapshotPath(generation)));
  }
  const std::string path = delta ? DeltaPath(generation) : SnapshotPath(generation);
  const std::string tmp = path + kTmpSuffix;
  // temp + fsync + rename + dir fsync: the target name only ever points at
  // complete, durable bytes.
  SEER_RETURN_IF_ERROR(fs_->WriteFile(tmp, bytes));
  SEER_RETURN_IF_ERROR(fs_->SyncFile(tmp));
  SEER_RETURN_IF_ERROR(fs_->RenameFile(tmp, path));
  return fs_->SyncDir(dir_);
}

StatusOr<std::unique_ptr<WalWriter>> SnapshotStore::CreateWal(uint64_t generation) {
  auto wal =
      std::make_unique<WalWriter>(fs_, WalPath(generation), generation, options_.wal_flush_bytes);
  SEER_RETURN_IF_ERROR(wal->Create());
  SEER_RETURN_IF_ERROR(fs_->SyncFile(WalPath(generation)));
  SEER_RETURN_IF_ERROR(fs_->SyncDir(dir_));
  return wal;
}

StatusOr<SnapshotStore::CheckpointResult> SnapshotStore::Checkpoint(const Correlator& correlator) {
  SEER_ASSIGN_OR_RETURN(const uint64_t next, NextGeneration());
  SEER_RETURN_IF_ERROR(WriteSnapshot(correlator, next));

  CheckpointResult result;
  result.generation = next;
  SEER_ASSIGN_OR_RETURN(result.wal, CreateWal(next));
  SEER_RETURN_IF_ERROR(Prune());
  return result;
}

Status SnapshotStore::Prune() {
  SEER_ASSIGN_OR_RETURN(const std::vector<SnapshotFileInfo> files, ListSnapshotFiles());
  // The cutoff is the keep_generations-th newest FULL generation: deltas and
  // WALs below it are dead (their chains hang off pruned fulls), everything
  // at or above it stays, keeping every retained chain whole.
  std::vector<uint64_t> fulls;
  for (const SnapshotFileInfo& f : files) {
    if (!f.delta) {
      fulls.push_back(f.generation);
    }
  }
  uint64_t oldest_kept = 0;
  if (fulls.size() > options_.keep_generations) {
    oldest_kept = fulls[fulls.size() - options_.keep_generations];
  } else if (!fulls.empty()) {
    oldest_kept = fulls.front();
  }
  for (const SnapshotFileInfo& f : files) {
    if (f.generation < oldest_kept) {
      SEER_RETURN_IF_ERROR(fs_->RemoveFile(SnapshotFilePath(f)));
    }
  }

  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> wals, ListWals());
  for (const uint64_t generation : wals) {
    if (generation < oldest_kept) {
      SEER_RETURN_IF_ERROR(fs_->RemoveFile(WalPath(generation)));
    }
  }

  // Stray temp files are dead by construction (rename is the commit).
  SEER_ASSIGN_OR_RETURN(const std::vector<std::string> entries, fs_->ListDir(dir_));
  for (const std::string& name : entries) {
    if (EndsWith(name, kTmpSuffix)) {
      SEER_RETURN_IF_ERROR(fs_->RemoveFile(dir_ + "/" + name));
    }
  }
  return Status::Ok();
}

StatusOr<SnapshotStore::StoreInfo> SnapshotStore::GetInfo() const {
  SEER_ASSIGN_OR_RETURN(const std::vector<SnapshotFileInfo> snapshots, ListSnapshotFiles());
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> wals, ListWals());

  std::vector<uint64_t> all;
  all.reserve(snapshots.size() + wals.size());
  for (const SnapshotFileInfo& f : snapshots) {
    all.push_back(f.generation);
  }
  all.insert(all.end(), wals.begin(), wals.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  StoreInfo info;
  for (const uint64_t generation : all) {
    GenerationInfo gen_info;
    gen_info.generation = generation;
    const auto snap_it =
        std::find_if(snapshots.begin(), snapshots.end(), [generation](const SnapshotFileInfo& f) {
          return f.generation == generation;
        });
    if (snap_it != snapshots.end()) {
      gen_info.has_snapshot = true;
      gen_info.is_delta = snap_it->delta;
      const auto bytes = fs_->ReadFile(SnapshotFilePath(*snap_it));
      if (bytes.ok()) {
        gen_info.snapshot_bytes = bytes->size();
        // A delta is not independently decodable; section CRCs are the
        // per-file health check. Chain health is Verify's job.
        gen_info.snapshot_ok = snap_it->delta ? VerifySnapshotSections(*bytes).ok()
                                              : Correlator::DecodeSnapshot(*bytes).ok();
      }
    }
    if (std::binary_search(wals.begin(), wals.end(), generation)) {
      gen_info.has_wal = true;
      const auto bytes = fs_->ReadFile(WalPath(generation));
      if (bytes.ok()) {
        gen_info.wal_bytes = bytes->size();
        const auto stats = ReplayWal(*bytes, nullptr);
        if (stats.ok()) {
          gen_info.wal_records = stats->records_applied;
          gen_info.wal_tail = stats->tail;
        } else {
          gen_info.wal_tail = WalReplayStats::Tail::kCorrupt;
        }
      }
    }
    info.generations.push_back(gen_info);
  }
  return info;
}

Status SnapshotStore::Verify(bool deep) const {
  SEER_ASSIGN_OR_RETURN(const std::vector<SnapshotFileInfo> snapshots, ListSnapshotFiles());
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> wals, ListWals());
  if (snapshots.empty() && wals.empty()) {
    return Status::Ok();  // an empty store recovers to an empty correlator
  }
  if (snapshots.empty()) {
    return Status::DataLoss("wal files without any snapshot in " + dir_);
  }

  // The newest chain must itself be good — fallback is for crash recovery,
  // a store whose newest head is torn is not healthy. Per-section CRC
  // checks run first so the error names the damaged section.
  const uint64_t newest = snapshots.back().generation;
  {
    std::vector<std::string> chain_bytes;
    SEER_RETURN_IF_ERROR(LoadChain(snapshots, snapshots.size() - 1, &chain_bytes));
    for (size_t k = 0; k < chain_bytes.size(); ++k) {
      const Status sections = VerifySnapshotSections(chain_bytes[k]);
      if (!sections.ok()) {
        const size_t first = snapshots.size() - chain_bytes.size();
        return Status::DataLoss("newest snapshot chain damaged: " +
                                SnapshotFilePath(snapshots[first + k]) + ": " +
                                sections.message());
      }
    }
    const std::vector<std::string_view> views(chain_bytes.begin(), chain_bytes.end());
    const auto decoded = Correlator::DecodeSnapshotChain(views, nullptr);
    if (!decoded.ok()) {
      return Status::DataLoss("newest snapshot chain damaged: " + decoded.status().message());
    }
  }

  if (deep) {
    // Every snapshot file, not just the chain recovery would use: section
    // CRCs for all, a full decode for fulls, META linkage for deltas.
    for (size_t i = 0; i < snapshots.size(); ++i) {
      const std::string path = SnapshotFilePath(snapshots[i]);
      SEER_ASSIGN_OR_RETURN(const std::string bytes, fs_->ReadFile(path));
      const Status sections = VerifySnapshotSections(bytes);
      if (!sections.ok()) {
        return Status::DataLoss(path + ": " + sections.message());
      }
      if (!snapshots[i].delta) {
        const auto decoded = Correlator::DecodeSnapshot(bytes);
        if (!decoded.ok()) {
          return Status::DataLoss(path + ": " + decoded.status().message());
        }
        continue;
      }
      const auto meta = ReadSnapshotMeta(bytes);
      if (!meta.ok()) {
        return Status::DataLoss(path + ": " + meta.status().message());
      }
      if (i == 0 || !meta->delta || meta->base_generation != snapshots[i - 1].generation) {
        return Status::DataLoss("delta chain linkage broken at " + path);
      }
    }
  }

  // Chain WALs: contiguous from the newest generation; every log but the
  // last must be clean (it was synced before the next snapshot), the last
  // may at worst have a torn tail.
  std::vector<uint64_t> chain;
  for (const uint64_t generation : wals) {
    if (generation >= newest) {
      chain.push_back(generation);
    }
  }
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i] != newest + i) {
      return Status::DataLoss("wal chain has a gap at generation " +
                              std::to_string(newest + i));
    }
    const bool last = i + 1 == chain.size();
    SEER_ASSIGN_OR_RETURN(const std::string bytes, fs_->ReadFile(WalPath(chain[i])));
    const auto stats = ReplayWal(bytes, nullptr);
    if (!stats.ok()) {
      if (last) {
        continue;  // torn during creation — the expected crash artifact
      }
      return Status::DataLoss("mid-chain wal unreadable: " + stats.status().message());
    }
    if (stats->generation != chain[i]) {
      return Status::DataLoss("wal header generation mismatch in " + WalPath(chain[i]));
    }
    if (stats->tail == WalReplayStats::Tail::kCorrupt) {
      return Status::DataLoss("wal corrupt: " + stats->corruption);
    }
    if (!last && stats->tail != WalReplayStats::Tail::kClean) {
      return Status::DataLoss("mid-chain wal has a torn tail: " + WalPath(chain[i]));
    }
  }
  return Status::Ok();
}

std::string SnapshotStore::TenantDirectory(const std::string& root, TenantId tenant) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "tenant-%08u", tenant);
  return root + "/" + buf;
}

StatusOr<std::vector<TenantId>> SnapshotStore::ListTenants(Fs* fs, const std::string& root) {
  std::vector<TenantId> tenants;
  if (!fs->Exists(root)) {
    return tenants;
  }
  SEER_ASSIGN_OR_RETURN(const std::vector<std::string> names, fs->ListDir(root));
  constexpr char kPrefix[] = "tenant-";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  for (const std::string& name : names) {
    // TenantDirectory prints %08u: exactly 8 digits zero-padded below 1e8,
    // 9-10 digits above. Accept the whole uint32 id range back.
    if (name.size() < kPrefixLen + 8 || name.size() > kPrefixLen + 10 ||
        name.compare(0, kPrefixLen, kPrefix) != 0) {
      continue;
    }
    uint32_t id = 0;
    const char* begin = name.data() + kPrefixLen;
    const auto [ptr, ec] = std::from_chars(begin, name.data() + name.size(), id);
    if (ec != std::errc() || ptr != name.data() + name.size()) {
      continue;
    }
    tenants.push_back(id);
  }
  std::sort(tenants.begin(), tenants.end());
  return tenants;
}

}  // namespace seer
