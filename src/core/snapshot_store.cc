#include "src/core/snapshot_store.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace seer {

namespace {

constexpr char kSnapPrefix[] = "snap-";
constexpr char kSnapSuffix[] = ".seersnap";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".seerwal";
constexpr char kTmpSuffix[] = ".tmp";

std::string GenerationName(const char* prefix, uint64_t generation, const char* suffix) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu", static_cast<unsigned long long>(generation));
  return std::string(prefix) + buf + suffix;
}

bool ParseGeneration(const std::string& name, const std::string& prefix,
                     const std::string& suffix, uint64_t* generation) {
  if (name.size() <= prefix.size() + suffix.size() || name.compare(0, prefix.size(), prefix) != 0 ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string digits = name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), *generation);
  return ec == std::errc() && ptr == digits.data() + digits.size();
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

SnapshotStore::SnapshotStore(Fs* fs, std::string dir, SnapshotStoreOptions options)
    : fs_(fs), dir_(std::move(dir)), options_(options) {
  if (options_.keep_generations < 2) {
    options_.keep_generations = 2;
  }
}

Status SnapshotStore::Open() { return fs_->MakeDirs(dir_); }

std::string SnapshotStore::SnapshotPath(uint64_t generation) const {
  return dir_ + "/" + GenerationName(kSnapPrefix, generation, kSnapSuffix);
}

std::string SnapshotStore::WalPath(uint64_t generation) const {
  return dir_ + "/" + GenerationName(kWalPrefix, generation, kWalSuffix);
}

StatusOr<std::vector<uint64_t>> SnapshotStore::ListByPattern(const std::string& prefix,
                                                             const std::string& suffix) const {
  SEER_ASSIGN_OR_RETURN(const std::vector<std::string> entries, fs_->ListDir(dir_));
  std::vector<uint64_t> generations;
  for (const std::string& name : entries) {
    uint64_t generation = 0;
    if (ParseGeneration(name, prefix, suffix, &generation)) {
      generations.push_back(generation);
    }
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

StatusOr<std::vector<uint64_t>> SnapshotStore::ListSnapshots() const {
  return ListByPattern(kSnapPrefix, kSnapSuffix);
}

StatusOr<std::vector<uint64_t>> SnapshotStore::ListWals() const {
  return ListByPattern(kWalPrefix, kWalSuffix);
}

StatusOr<SnapshotStore::RecoveryResult> SnapshotStore::Recover(const SeerParams& defaults) const {
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> snapshots, ListSnapshots());
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> wals, ListWals());

  RecoveryResult result;

  // Newest snapshot that decodes cleanly wins; torn ones are skipped.
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    const auto bytes = fs_->ReadFile(SnapshotPath(*it));
    if (!bytes.ok()) {
      ++result.snapshots_discarded;
      continue;
    }
    auto decoded = Correlator::DecodeSnapshot(*bytes);
    if (!decoded.ok()) {
      ++result.snapshots_discarded;
      continue;
    }
    result.correlator = *std::move(decoded);
    result.generation = *it;
    break;
  }
  if (result.correlator == nullptr) {
    if (!snapshots.empty()) {
      return Status::DataLoss("every snapshot in " + dir_ + " is damaged");
    }
    if (!wals.empty()) {
      // A WAL is only created after its snapshot is durable, so WALs with
      // no snapshot at all mean the snapshots were deleted out from under
      // us — replaying them against a fresh correlator would fabricate
      // state we never held.
      return Status::DataLoss("wal files without any snapshot in " + dir_);
    }
    result.correlator = std::make_unique<Correlator>(defaults);
    result.fresh = true;
    return result;
  }

  // Replay the retained chain: wal-G, wal-G+1, ... in order, stopping at
  // the first gap or damaged record. Records in wal-K for K < the loaded
  // generation are already baked into the snapshot.
  uint64_t expected = result.generation;
  for (const uint64_t generation : wals) {
    if (generation < result.generation) {
      continue;
    }
    if (generation != expected) {
      break;  // gap — later logs assume the missing one was applied
    }
    const auto bytes = fs_->ReadFile(WalPath(generation));
    if (!bytes.ok()) {
      break;
    }
    const auto stats = ReplayWal(*bytes, result.correlator.get());
    if (!stats.ok()) {
      // Unusable header: the crash hit WAL creation itself. Nothing from
      // this log was applied; the state is the previous durable point.
      result.torn_wal_tail = true;
      break;
    }
    if (stats->generation != generation) {
      result.torn_wal_tail = true;
      break;
    }
    ++result.wals_replayed;
    result.wal_records_replayed += stats->records_applied;
    if (stats->tail != WalReplayStats::Tail::kClean) {
      result.torn_wal_tail = true;
      break;
    }
    ++expected;
  }
  return result;
}

Status SnapshotStore::WriteSnapshot(const Correlator& correlator, uint64_t generation) {
  const std::string path = SnapshotPath(generation);
  if (fs_->Exists(path)) {
    return Status::AlreadyExists("snapshot already exists: " + path);
  }
  const std::string tmp = path + kTmpSuffix;
  // temp + fsync + rename + dir fsync: the target name only ever points at
  // complete, durable bytes.
  SEER_RETURN_IF_ERROR(fs_->WriteFile(tmp, correlator.EncodeSnapshot()));
  SEER_RETURN_IF_ERROR(fs_->SyncFile(tmp));
  SEER_RETURN_IF_ERROR(fs_->RenameFile(tmp, path));
  return fs_->SyncDir(dir_);
}

StatusOr<SnapshotStore::CheckpointResult> SnapshotStore::Checkpoint(const Correlator& correlator) {
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> snapshots, ListSnapshots());
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> wals, ListWals());
  uint64_t next = 1;
  if (!snapshots.empty()) {
    next = std::max(next, snapshots.back() + 1);
  }
  if (!wals.empty()) {
    next = std::max(next, wals.back() + 1);
  }

  SEER_RETURN_IF_ERROR(WriteSnapshot(correlator, next));

  CheckpointResult result;
  result.generation = next;
  result.wal = std::make_unique<WalWriter>(fs_, WalPath(next), next, options_.wal_flush_bytes);
  SEER_RETURN_IF_ERROR(result.wal->Create());
  SEER_RETURN_IF_ERROR(fs_->SyncFile(WalPath(next)));
  SEER_RETURN_IF_ERROR(fs_->SyncDir(dir_));
  SEER_RETURN_IF_ERROR(Prune());
  return result;
}

Status SnapshotStore::Prune() {
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> snapshots, ListSnapshots());
  uint64_t oldest_kept = 0;
  if (snapshots.size() > options_.keep_generations) {
    const size_t drop = snapshots.size() - options_.keep_generations;
    for (size_t i = 0; i < drop; ++i) {
      SEER_RETURN_IF_ERROR(fs_->RemoveFile(SnapshotPath(snapshots[i])));
    }
    oldest_kept = snapshots[drop];
  } else if (!snapshots.empty()) {
    oldest_kept = snapshots.front();
  }

  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> wals, ListWals());
  for (const uint64_t generation : wals) {
    if (generation < oldest_kept) {
      SEER_RETURN_IF_ERROR(fs_->RemoveFile(WalPath(generation)));
    }
  }

  // Stray temp files are dead by construction (rename is the commit).
  SEER_ASSIGN_OR_RETURN(const std::vector<std::string> entries, fs_->ListDir(dir_));
  for (const std::string& name : entries) {
    if (EndsWith(name, kTmpSuffix)) {
      SEER_RETURN_IF_ERROR(fs_->RemoveFile(dir_ + "/" + name));
    }
  }
  return Status::Ok();
}

StatusOr<SnapshotStore::StoreInfo> SnapshotStore::GetInfo() const {
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> snapshots, ListSnapshots());
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> wals, ListWals());

  std::vector<uint64_t> all;
  all.reserve(snapshots.size() + wals.size());
  all.insert(all.end(), snapshots.begin(), snapshots.end());
  all.insert(all.end(), wals.begin(), wals.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  StoreInfo info;
  for (const uint64_t generation : all) {
    GenerationInfo gen_info;
    gen_info.generation = generation;
    if (std::binary_search(snapshots.begin(), snapshots.end(), generation)) {
      gen_info.has_snapshot = true;
      const auto bytes = fs_->ReadFile(SnapshotPath(generation));
      if (bytes.ok()) {
        gen_info.snapshot_bytes = bytes->size();
        gen_info.snapshot_ok = Correlator::DecodeSnapshot(*bytes).ok();
      }
    }
    if (std::binary_search(wals.begin(), wals.end(), generation)) {
      gen_info.has_wal = true;
      const auto bytes = fs_->ReadFile(WalPath(generation));
      if (bytes.ok()) {
        gen_info.wal_bytes = bytes->size();
        const auto stats = ReplayWal(*bytes, nullptr);
        if (stats.ok()) {
          gen_info.wal_records = stats->records_applied;
          gen_info.wal_tail = stats->tail;
        } else {
          gen_info.wal_tail = WalReplayStats::Tail::kCorrupt;
        }
      }
    }
    info.generations.push_back(gen_info);
  }
  return info;
}

Status SnapshotStore::Verify() const {
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> snapshots, ListSnapshots());
  SEER_ASSIGN_OR_RETURN(const std::vector<uint64_t> wals, ListWals());
  if (snapshots.empty() && wals.empty()) {
    return Status::Ok();  // an empty store recovers to an empty correlator
  }
  if (snapshots.empty()) {
    return Status::DataLoss("wal files without any snapshot in " + dir_);
  }

  // The newest snapshot must itself be good — fallback is for crash
  // recovery, a store whose newest snapshot is torn is not healthy.
  const uint64_t newest = snapshots.back();
  SEER_ASSIGN_OR_RETURN(const std::string snap_bytes, fs_->ReadFile(SnapshotPath(newest)));
  {
    const auto decoded = Correlator::DecodeSnapshot(snap_bytes);
    if (!decoded.ok()) {
      return Status::DataLoss("newest snapshot damaged: " + decoded.status().message());
    }
  }

  // Chain WALs: contiguous from the newest generation; every log but the
  // last must be clean (it was synced before the next snapshot), the last
  // may at worst have a torn tail.
  std::vector<uint64_t> chain;
  for (const uint64_t generation : wals) {
    if (generation >= newest) {
      chain.push_back(generation);
    }
  }
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i] != newest + i) {
      return Status::DataLoss("wal chain has a gap at generation " +
                              std::to_string(newest + i));
    }
    const bool last = i + 1 == chain.size();
    SEER_ASSIGN_OR_RETURN(const std::string bytes, fs_->ReadFile(WalPath(chain[i])));
    const auto stats = ReplayWal(bytes, nullptr);
    if (!stats.ok()) {
      if (last) {
        continue;  // torn during creation — the expected crash artifact
      }
      return Status::DataLoss("mid-chain wal unreadable: " + stats.status().message());
    }
    if (stats->generation != chain[i]) {
      return Status::DataLoss("wal header generation mismatch in " + WalPath(chain[i]));
    }
    if (stats->tail == WalReplayStats::Tail::kCorrupt) {
      return Status::DataLoss("wal corrupt: " + stats->corruption);
    }
    if (!last && stats->tail != WalReplayStats::Tail::kClean) {
      return Status::DataLoss("mid-chain wal has a torn tail: " + WalPath(chain[i]));
    }
  }
  return Status::Ok();
}

}  // namespace seer
