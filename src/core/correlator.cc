#include "src/core/correlator.h"

#include <algorithm>
#include <chrono>

namespace seer {

namespace {

inline uint64_t MicrosSince(std::chrono::steady_clock::time_point from) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - from)
                                   .count());
}

}  // namespace

Correlator::Correlator(const SeerParams& params, uint64_t seed)
    : params_(params),
      relations_(params, &files_, seed),
      streams_(params),
      clusters_(params, &files_, &relations_) {
  scratch_obs_.reserve(256);
}

void Correlator::OnReference(const FileReference& ref) {
  ++references_processed_;
  const FileId id = files_.Intern(ref.path);
  if (id == kInvalidFileId) {
    return;
  }
  files_.RecordReference(id, ref.time, ++global_ref_seq_);

  scratch_obs_.clear();
  switch (ref.kind) {
    case RefKind::kBegin:
      streams_.OnBegin(ref.pid, id, ref.time, &scratch_obs_);
      break;
    case RefKind::kEnd:
      streams_.OnEnd(ref.pid, id);
      return;
    case RefKind::kPoint:
      streams_.OnPoint(ref.pid, id, ref.time, &scratch_obs_);
      break;
  }
  for (const DistanceObservation& obs : scratch_obs_) {
    const FileRecord& from = files_.Get(obs.from);
    if (from.deleted || from.excluded) {
      continue;
    }
    relations_.Observe(obs.from, obs.to, obs.distance);
  }
}

void Correlator::SetIngestThreads(int threads) {
  ingest_threads_ = threads;
  const int want = ingest_threads_ > 0 ? ingest_threads_ : DefaultThreadCount();
  if (ingest_pool_ != nullptr && ingest_pool_threads_ != want) {
    ingest_pool_.reset();
  }
}

int Correlator::ingest_threads() const {
  return ingest_threads_ > 0 ? ingest_threads_ : DefaultThreadCount();
}

void Correlator::UseSharedPool(ThreadPool* pool) {
  shared_pool_ = pool;
  clusters_.set_shared_pool(pool);
  if (pool != nullptr) {
    ingest_pool_.reset();
  }
}

void Correlator::OverrideTuningParams(const SeerParams& params) {
  SeerParams effective = params;
  effective.max_neighbors = params_.max_neighbors;  // slab geometry is baked
  params_ = effective;
  relations_.OverrideParams(effective);
  streams_.OverrideParams(effective);
  clusters_.OverrideParams(effective);
}

ThreadPool* Correlator::IngestPool() {
  if (shared_pool_ != nullptr) {
    return shared_pool_;
  }
  const int want = ingest_threads_ > 0 ? ingest_threads_ : DefaultThreadCount();
  if (ingest_pool_ == nullptr || ingest_pool_threads_ != want) {
    ingest_pool_ = std::make_unique<ThreadPool>(want);
    ingest_pool_threads_ = want;
  }
  return ingest_pool_.get();
}

void Correlator::AddRefToSegment(RefKind kind, Pid pid, FileId id, Time time) {
  // Shard key mirrors the stream mapping: one shard per process, or a
  // single shard when per-process separation is disabled.
  const Pid key_pid = params_.per_process_streams ? pid : 0;
  const uint64_t key = static_cast<uint64_t>(static_cast<uint32_t>(key_pid)) + 1;
  uint32_t shard;
  bool inserted = false;
  uint32_t& slot = shard_of_pid_.InsertOrGet(key, &inserted);
  if (inserted) {
    if (active_shards_ == shards_.size()) {
      shards_.emplace_back();
    }
    shard = static_cast<uint32_t>(active_shards_++);
    slot = shard;
    // Prepare (stream creation) happens here, on the sequential partition
    // path — the parallel measure phase then only ever touches existing,
    // stable Stream nodes.
    shards_[shard].stream = streams_.Prepare(key_pid);
  } else {
    shard = slot;
  }
  IngestShard& sh = shards_[shard];
  sh.refs.push_back({kind, id, time});
  ref_order_.push_back({shard, static_cast<uint32_t>(sh.refs.size() - 1)});
}

void Correlator::MeasureShard(IngestShard* shard) {
  IngestShard& sh = *shard;
  sh.obs.clear();
  sh.offsets.clear();
  sh.offsets.reserve(sh.refs.size() + 1);
  sh.offsets.push_back(0);
  for (const PendingRef& r : sh.refs) {
    sh.scratch.clear();
    switch (r.kind) {
      case RefKind::kBegin:
        streams_.MeasureBegin(sh.stream, r.id, r.time, &sh.scratch);
        break;
      case RefKind::kEnd:
        streams_.MeasureEnd(sh.stream, r.id);
        break;
      case RefKind::kPoint:
        streams_.MeasurePoint(sh.stream, r.id, r.time, &sh.scratch);
        break;
    }
    for (const DistanceObservation& obs : sh.scratch) {
      // Liveness flags are frozen for the whole segment (barriers and
      // would-resurrect references cut segments), so filtering here equals
      // the serial per-reference filter. Self-observations are dropped here
      // too (the fold would no-op them): the sharded fold assigns one
      // global ordinal per surviving observation, so the obs list must be
      // exactly the updates the serial path would apply.
      if (obs.from == obs.to) {
        continue;
      }
      const FileRecord& from = files_.Get(obs.from);
      if (from.deleted || from.excluded) {
        continue;
      }
      sh.obs.push_back(
          {obs.from, obs.to, obs.distance, relations_.FindSlot(obs.from, obs.to)});
    }
    sh.offsets.push_back(static_cast<uint32_t>(sh.obs.size()));
  }
}

void Correlator::FlushSegment() {
  if (ref_order_.empty()) {
    return;
  }
  ++ingest_stats_.segments;
  ingest_stats_.shards += active_shards_;
  ingest_stats_.refs += ref_order_.size();
  for (size_t i = 0; i < active_shards_; ++i) {
    ingest_stats_.max_shard_refs =
        std::max<uint64_t>(ingest_stats_.max_shard_refs, shards_[i].refs.size());
  }

  // Phase B: measure every shard in parallel. Measurement mutates only its
  // own stream; files_ and relations_ are read-only here (liveness filter,
  // slot hints), so shards never race.
  auto mark = std::chrono::steady_clock::now();
  IngestPool()->ParallelChunks(active_shards_,
                               [this](size_t sh) { MeasureShard(&shards_[sh]); });
  ingest_stats_.measure_us += MicrosSince(mark);

  // Phase C: fold observations into the relation table, partitioned by the
  // table's 256-file stripes (one worker per stripe, trace order within).
  // Small segments fold serially — same end state either way, the sharded
  // path just isn't worth the dispatch below the cutoff.
  mark = std::chrono::steady_clock::now();
  size_t total_obs = 0;
  for (size_t i = 0; i < active_shards_; ++i) {
    total_obs += shards_[i].obs.size();
  }
  if (total_obs >= kParallelFoldMinObs && IngestPool()->threads() > 1) {
    ++ingest_stats_.parallel_folds;
    FoldSegmentSharded(total_obs);
  } else {
    ++ingest_stats_.serial_folds;
    for (const RefLoc& loc : ref_order_) {
      const IngestShard& sh = shards_[loc.shard];
      const uint32_t begin = sh.offsets[loc.index];
      const uint32_t end = sh.offsets[loc.index + 1];
      for (uint32_t i = begin; i < end; ++i) {
        const MeasuredObs& o = sh.obs[i];
        relations_.ObserveHinted(o.from, o.to, o.distance, o.hint);
      }
    }
  }
  ingest_stats_.fold_us += MicrosSince(mark);

  for (size_t i = 0; i < active_shards_; ++i) {
    shards_[i].refs.clear();
  }
  shard_of_pid_.Clear();
  active_shards_ = 0;
  ref_order_.clear();
}

void Correlator::FoldSegmentSharded(size_t total_obs) {
  // The relation slab must cover every id the workers will touch before
  // they start: worker-side folds never resize shared arrays.
  relations_.EnsureCapacity(static_cast<FileId>(files_.size() - 1));

  // Count observations per 256-file stripe of their `from` file (order
  // doesn't matter for counting), then prefix-sum into bucket offsets.
  const size_t num_stripes =
      (files_.size() + RelationTable::kStripeSize - 1) >> RelationTable::kStripeShift;
  stripe_offsets_.assign(num_stripes + 1, 0);
  for (size_t s = 0; s < active_shards_; ++s) {
    for (const MeasuredObs& o : shards_[s].obs) {
      ++stripe_offsets_[(o.from >> RelationTable::kStripeShift) + 1];
    }
  }
  for (size_t sx = 0; sx < num_stripes; ++sx) {
    stripe_offsets_[sx + 1] += stripe_offsets_[sx];
  }

  // Counting-sort the observations into their stripe buckets, walking
  // ref_order_ so each bucket keeps trace order, and assign each surviving
  // observation its global update ordinal (1-based position appended to
  // the table's update count) — exactly the ordinal serial ingest's
  // update_count_ increment would have given it.
  fold_items_.resize(total_obs);
  stripe_cursor_.assign(stripe_offsets_.begin(), stripe_offsets_.end() - 1);
  uint32_t ord = 0;
  for (const RefLoc& loc : ref_order_) {
    const IngestShard& sh = shards_[loc.shard];
    const uint32_t begin = sh.offsets[loc.index];
    const uint32_t end = sh.offsets[loc.index + 1];
    for (uint32_t i = begin; i < end; ++i) {
      const uint32_t sx = sh.obs[i].from >> RelationTable::kStripeShift;
      fold_items_[stripe_cursor_[sx]++] = {loc.shard, i, ++ord};
    }
  }

  touched_stripes_.clear();
  for (uint32_t sx = 0; sx < num_stripes; ++sx) {
    if (stripe_offsets_[sx + 1] > stripe_offsets_[sx]) {
      touched_stripes_.push_back(sx);
    }
  }
  ingest_stats_.fold_stripes += touched_stripes_.size();

  // Parallel fold: each worker owns whole stripes, so every slab write
  // lands in slot ranges no other worker touches; cross-stripe effects
  // (reverse index, epoch clocks) go into the per-stripe log. Prefetching
  // the next observation's slab row hides the gather latency of jumping
  // between files within a stripe.
  const uint64_t base_count = relations_.update_count();
  fold_logs_.assign(touched_stripes_.size(), RelationTable::StripeFoldLog{});
  IngestPool()->ParallelChunks(touched_stripes_.size(), [&](size_t k) {
    const uint32_t sx = touched_stripes_[k];
    RelationTable::StripeFoldLog* log = &fold_logs_[k];
    const uint32_t lo = stripe_offsets_[sx];
    const uint32_t hi = stripe_offsets_[sx + 1];
    for (uint32_t t = lo; t < hi; ++t) {
      if (t + 1 < hi) {
        const FoldItem& nx = fold_items_[t + 1];
        relations_.PrefetchRow(shards_[nx.shard].obs[nx.index].from);
      }
      const FoldItem& item = fold_items_[t];
      const MeasuredObs& o = shards_[item.shard].obs[item.index];
      relations_.FoldObservation(o.from, o.to, o.distance, o.hint, base_count + item.ord,
                                 log);
    }
  });
  relations_.set_update_count(base_count + total_obs);

  // Sequential replay of the deferred cross-stripe effects, in ascending
  // stripe order. The dirty sets this produces (set stamps, stripe data
  // stamps, reverse-index membership) equal the serial path's; only the
  // unserialized epoch orderings differ.
  for (size_t k = 0; k < touched_stripes_.size(); ++k) {
    relations_.ApplyFoldLog(touched_stripes_[k], fold_logs_[k]);
  }
}

void Correlator::IngestBatch(const IngestEvent* events, size_t count) {
  ++ingest_stats_.batches;
  for (size_t i = 0; i < count; ++i) {
    const IngestEvent& e = events[i];
    if (e.kind == IngestEvent::Kind::kReference) {
      // Segment cut: interning can resurrect a deleted record, flipping the
      // liveness flag that already-pending observations must be filtered
      // against. Flush the segment first so their filter sees the
      // pre-resurrection flag, exactly as serial ingest would.
      if (!ref_order_.empty()) {
        const FileId existing = files_.Find(e.ref.path);
        if (existing != kInvalidFileId && files_.Get(existing).deleted) {
          FlushSegment();
        }
      }
      ++references_processed_;
      const FileId id = files_.Intern(e.ref.path);
      if (id == kInvalidFileId) {
        continue;
      }
      files_.RecordReference(id, e.ref.time, ++global_ref_seq_);
      AddRefToSegment(e.ref.kind, e.ref.pid, id, e.ref.time);
    } else {
      // Barrier: stream topology or liveness changes. Apply after flushing
      // everything measured so far.
      FlushSegment();
      ++ingest_stats_.barriers;
      switch (e.kind) {
        case IngestEvent::Kind::kFork:
          OnProcessFork(e.parent, e.child);
          break;
        case IngestEvent::Kind::kExit:
          OnProcessExit(e.child);
          break;
        case IngestEvent::Kind::kDeleted:
          OnFileDeleted(e.path, e.time);
          break;
        case IngestEvent::Kind::kRenamed:
          OnFileRenamed(e.path, e.path2, e.time);
          break;
        case IngestEvent::Kind::kExcluded:
          OnFileExcluded(e.path);
          break;
        case IngestEvent::Kind::kReference:
          break;  // unreachable
      }
    }
  }
  FlushSegment();
}

void Correlator::OnProcessFork(Pid parent, Pid child) { streams_.OnFork(parent, child); }

void Correlator::OnProcessExit(Pid pid) { streams_.OnExit(pid); }

void Correlator::OnFileDeleted(PathId path, Time /*time*/) {
  const FileId id = files_.Find(path);
  if (id == kInvalidFileId) {
    return;
  }
  // Deletion is soft; relationship data survives for a grace period in
  // case the name is immediately reused (Section 4.8). Entries whose grace
  // period has now expired are purged for real.
  for (const FileId expired : files_.MarkDeleted(id, params_.delete_delay)) {
    relations_.Purge(expired);
  }
  // The mark flips liveness without touching any relation list: every list
  // naming this file just lost a live member, so stamp them for the
  // incremental recluster.
  relations_.MarkSetChanged(id);
}

void Correlator::OnFileRenamed(PathId from, PathId to, Time /*time*/) {
  const FileId id = files_.Find(from);
  if (id == kInvalidFileId) {
    // Renaming a file we never saw: just intern the new name.
    files_.Intern(to);
    return;
  }
  const FileId replaced = files_.Find(to);
  files_.RenameFile(id, to);
  // The pathname feeds directory distance; a replaced target record flips
  // liveness. Both dirty the file and every list naming it.
  relations_.MarkSetChanged(id);
  if (replaced != kInvalidFileId && replaced != id) {
    relations_.MarkSetChanged(replaced);
  }
}

void Correlator::OnFileExcluded(PathId path) {
  const FileId id = files_.Find(path);
  if (id == kInvalidFileId) {
    return;
  }
  files_.MarkExcluded(id);
  relations_.MarkSetChanged(id);
  relations_.Purge(id);
}

void Correlator::AddInvestigator(std::unique_ptr<Investigator> investigator) {
  investigators_.push_back(std::move(investigator));
}

void Correlator::AddInvestigatedRelation(const InvestigatedRelation& relation) {
  std::vector<FileId> ids;
  ids.reserve(relation.files.size());
  for (const auto& path : relation.files) {
    ids.push_back(files_.Intern(GlobalPaths().Intern(path)));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      clusters_.AddInvestigatedPair(ids[i], ids[j], relation.strength);
    }
  }
}

void Correlator::RunInvestigators(const SimFilesystem& fs) {
  if (investigators_.empty()) {
    return;
  }
  std::vector<std::string> candidates;
  for (const FileId id : files_.LiveIds()) {
    candidates.emplace_back(files_.PathOf(id));
  }
  clusters_.ClearInvestigatedPairs();
  for (const auto& inv : investigators_) {
    for (const auto& relation : inv->Investigate(fs, candidates)) {
      AddInvestigatedRelation(relation);
    }
  }
}

ClusterSet Correlator::BuildClusters() const { return clusters_.Build(files_.LiveIds()); }

double Correlator::Distance(const std::string& from, const std::string& to) const {
  const FileId a = files_.FindPath(from);
  const FileId b = files_.FindPath(to);
  if (a == kInvalidFileId || b == kInvalidFileId) {
    return -1.0;
  }
  return relations_.DistanceOrNegative(a, b);
}

std::vector<std::string> Correlator::NeighborPaths(const std::string& path) const {
  std::vector<std::string> out;
  const FileId id = files_.FindPath(path);
  if (id == kInvalidFileId) {
    return out;
  }
  std::vector<FileId> ids;
  ids.reserve(relations_.max_neighbors());
  relations_.LiveNeighborIds(id, &ids);
  for (const FileId nb : ids) {
    out.emplace_back(files_.PathOf(nb));
  }
  return out;
}

size_t Correlator::MemoryBytes() const {
  size_t bytes = relations_.MemoryBytes() + streams_.MemoryBytes();
  for (FileId id = 0; id < files_.size(); ++id) {
    bytes += sizeof(FileRecord) + files_.PathOf(id).size();
  }
  return bytes;
}

}  // namespace seer
