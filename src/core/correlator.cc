#include "src/core/correlator.h"

namespace seer {

Correlator::Correlator(const SeerParams& params, uint64_t seed)
    : params_(params),
      relations_(params, &files_, seed),
      streams_(params),
      clusters_(params, &files_, &relations_) {
  scratch_obs_.reserve(256);
}

void Correlator::OnReference(const FileReference& ref) {
  ++references_processed_;
  const FileId id = files_.Intern(ref.path);
  if (id == kInvalidFileId) {
    return;
  }
  files_.RecordReference(id, ref.time, ++global_ref_seq_);

  scratch_obs_.clear();
  switch (ref.kind) {
    case RefKind::kBegin:
      streams_.OnBegin(ref.pid, id, ref.time, &scratch_obs_);
      break;
    case RefKind::kEnd:
      streams_.OnEnd(ref.pid, id);
      return;
    case RefKind::kPoint:
      streams_.OnPoint(ref.pid, id, ref.time, &scratch_obs_);
      break;
  }
  for (const DistanceObservation& obs : scratch_obs_) {
    const FileRecord& from = files_.Get(obs.from);
    if (from.deleted || from.excluded) {
      continue;
    }
    relations_.Observe(obs.from, obs.to, obs.distance);
  }
}

void Correlator::OnProcessFork(Pid parent, Pid child) { streams_.OnFork(parent, child); }

void Correlator::OnProcessExit(Pid pid) { streams_.OnExit(pid); }

void Correlator::OnFileDeleted(PathId path, Time /*time*/) {
  const FileId id = files_.Find(path);
  if (id == kInvalidFileId) {
    return;
  }
  // Deletion is soft; relationship data survives for a grace period in
  // case the name is immediately reused (Section 4.8). Entries whose grace
  // period has now expired are purged for real.
  for (const FileId expired : files_.MarkDeleted(id, params_.delete_delay)) {
    relations_.Purge(expired);
  }
  // The mark flips liveness without touching any relation list: every list
  // naming this file just lost a live member, so stamp them for the
  // incremental recluster.
  relations_.MarkSetChanged(id);
}

void Correlator::OnFileRenamed(PathId from, PathId to, Time /*time*/) {
  const FileId id = files_.Find(from);
  if (id == kInvalidFileId) {
    // Renaming a file we never saw: just intern the new name.
    files_.Intern(to);
    return;
  }
  const FileId replaced = files_.Find(to);
  files_.RenameFile(id, to);
  // The pathname feeds directory distance; a replaced target record flips
  // liveness. Both dirty the file and every list naming it.
  relations_.MarkSetChanged(id);
  if (replaced != kInvalidFileId && replaced != id) {
    relations_.MarkSetChanged(replaced);
  }
}

void Correlator::OnFileExcluded(PathId path) {
  const FileId id = files_.Find(path);
  if (id == kInvalidFileId) {
    return;
  }
  files_.GetMutable(id).excluded = true;
  relations_.MarkSetChanged(id);
  relations_.Purge(id);
}

void Correlator::AddInvestigator(std::unique_ptr<Investigator> investigator) {
  investigators_.push_back(std::move(investigator));
}

void Correlator::AddInvestigatedRelation(const InvestigatedRelation& relation) {
  std::vector<FileId> ids;
  ids.reserve(relation.files.size());
  for (const auto& path : relation.files) {
    ids.push_back(files_.Intern(GlobalPaths().Intern(path)));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      clusters_.AddInvestigatedPair(ids[i], ids[j], relation.strength);
    }
  }
}

void Correlator::RunInvestigators(const SimFilesystem& fs) {
  if (investigators_.empty()) {
    return;
  }
  std::vector<std::string> candidates;
  for (const FileId id : files_.LiveIds()) {
    candidates.emplace_back(files_.PathOf(id));
  }
  clusters_.ClearInvestigatedPairs();
  for (const auto& inv : investigators_) {
    for (const auto& relation : inv->Investigate(fs, candidates)) {
      AddInvestigatedRelation(relation);
    }
  }
}

ClusterSet Correlator::BuildClusters() const { return clusters_.Build(files_.LiveIds()); }

double Correlator::Distance(const std::string& from, const std::string& to) const {
  const FileId a = files_.FindPath(from);
  const FileId b = files_.FindPath(to);
  if (a == kInvalidFileId || b == kInvalidFileId) {
    return -1.0;
  }
  return relations_.DistanceOrNegative(a, b);
}

std::vector<std::string> Correlator::NeighborPaths(const std::string& path) const {
  std::vector<std::string> out;
  const FileId id = files_.FindPath(path);
  if (id == kInvalidFileId) {
    return out;
  }
  for (const FileId nb : relations_.LiveNeighborIds(id)) {
    out.emplace_back(files_.PathOf(nb));
  }
  return out;
}

size_t Correlator::MemoryBytes() const {
  size_t bytes = relations_.MemoryBytes() + streams_.MemoryBytes();
  for (FileId id = 0; id < files_.size(); ++id) {
    bytes += sizeof(FileRecord) + files_.PathOf(id).size();
  }
  return bytes;
}

}  // namespace seer
