#include "src/core/reorganizer.h"

#include <algorithm>
#include <string>

#include "src/util/flat_map.h"
#include "src/util/path.h"

namespace seer {

namespace {

bool Frozen(std::string_view path, const ReorganizerConfig& config) {
  for (const auto& prefix : config.frozen_prefixes) {
    if (IsUnder(path, prefix)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<ReorgSuggestion> SuggestReorganization(const Correlator& correlator,
                                                   const ClusterSet& clusters,
                                                   const ReorganizerConfig& config) {
  const FileTable& files = correlator.files();
  std::vector<ReorgSuggestion> suggestions;

  // Intern every file's directory once up front. A file is visited as a
  // cluster-mate of each of its neighbours, so computing (and allocating)
  // Dirname per mate repeats the same work |cluster| times; one
  // FileId-indexed column of interned dir ids makes each mate visit an
  // array read, and lets votes be counted by PathId instead of by string.
  const size_t n = files.size();
  std::vector<PathId> dir_of(n, kInvalidPathId);
  std::vector<uint8_t> frozen(n, 0);
  for (FileId id = 0; id < n; ++id) {
    const std::string_view path = files.PathOf(id);
    if (path.empty()) {
      continue;
    }
    dir_of[id] = GlobalPaths().Intern(Dirname(path));
    frozen[id] = Frozen(path, config) ? 1 : 0;
  }

  FlatMap<PathId, uint32_t> dir_votes(kInvalidPathId);
  for (const FileId id : files.LiveIds()) {
    const std::string_view path = files.PathOf(id);
    if (path.empty() || frozen[id]) {
      continue;
    }

    // Judge by the file's largest cluster.
    const Cluster* largest = nullptr;
    for (const uint32_t c : clusters.ClustersOf(id)) {
      if (largest == nullptr || clusters.clusters[c].members.size() > largest->members.size()) {
        largest = &clusters.clusters[c];
      }
    }
    if (largest == nullptr || largest->members.size() < config.min_cluster_mates + 1) {
      continue;
    }

    // Where do the cluster-mates live?
    dir_votes.Clear();
    size_t mates = 0;
    for (const FileId mate : largest->members) {
      if (mate == id) {
        continue;
      }
      if (files.Get(mate).deleted || dir_of[mate] == kInvalidPathId || frozen[mate]) {
        continue;
      }
      ++dir_votes.InsertOrGet(dir_of[mate]);
      ++mates;
    }
    if (mates < config.min_cluster_mates) {
      continue;
    }

    // Most-voted directory; ties go to the lexicographically smallest dir
    // (the order the old std::map walk produced).
    PathId best_dir = kInvalidPathId;
    size_t best_votes = 0;
    dir_votes.ForEach([&](PathId dir, const uint32_t& votes) {
      if (votes > best_votes ||
          (votes == best_votes && best_dir != kInvalidPathId &&
           GlobalPaths().PathOf(dir) < GlobalPaths().PathOf(best_dir))) {
        best_votes = votes;
        best_dir = dir;
      }
    });
    const std::string home_dir = Dirname(path);
    const double confidence = static_cast<double>(best_votes) / static_cast<double>(mates);
    if (best_dir == kInvalidPathId || GlobalPaths().PathOf(best_dir) == home_dir ||
        confidence < config.min_confidence) {
      continue;
    }

    ReorgSuggestion s;
    s.path = std::string(path);
    s.from_dir = home_dir;
    s.to_dir = std::string(GlobalPaths().PathOf(best_dir));
    s.confidence = confidence;
    s.cluster_size = largest->members.size();
    suggestions.push_back(std::move(s));
  }

  std::sort(suggestions.begin(), suggestions.end(),
            [](const ReorgSuggestion& a, const ReorgSuggestion& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.path < b.path;
            });
  return suggestions;
}

}  // namespace seer
