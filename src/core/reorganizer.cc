#include "src/core/reorganizer.h"

#include <algorithm>
#include <map>

#include "src/util/path.h"

namespace seer {

namespace {

bool Frozen(std::string_view path, const ReorganizerConfig& config) {
  for (const auto& prefix : config.frozen_prefixes) {
    if (IsUnder(path, prefix)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<ReorgSuggestion> SuggestReorganization(const Correlator& correlator,
                                                   const ClusterSet& clusters,
                                                   const ReorganizerConfig& config) {
  const FileTable& files = correlator.files();
  std::vector<ReorgSuggestion> suggestions;

  for (const FileId id : files.LiveIds()) {
    const std::string_view path = files.PathOf(id);
    if (path.empty() || Frozen(path, config)) {
      continue;
    }

    // Judge by the file's largest cluster.
    const Cluster* largest = nullptr;
    for (const uint32_t c : clusters.ClustersOf(id)) {
      if (largest == nullptr || clusters.clusters[c].members.size() > largest->members.size()) {
        largest = &clusters.clusters[c];
      }
    }
    if (largest == nullptr || largest->members.size() < config.min_cluster_mates + 1) {
      continue;
    }

    // Where do the cluster-mates live?
    std::map<std::string, size_t> dir_votes;
    size_t mates = 0;
    for (const FileId mate : largest->members) {
      if (mate == id) {
        continue;
      }
      const FileRecord& mate_rec = files.Get(mate);
      const std::string_view mate_path = files.PathOf(mate);
      if (mate_rec.deleted || mate_path.empty() || Frozen(mate_path, config)) {
        continue;
      }
      ++dir_votes[Dirname(mate_path)];
      ++mates;
    }
    if (mates < config.min_cluster_mates) {
      continue;
    }

    std::string best_dir;
    size_t best_votes = 0;
    for (const auto& [dir, votes] : dir_votes) {
      if (votes > best_votes) {
        best_votes = votes;
        best_dir = dir;
      }
    }
    const std::string home_dir = Dirname(path);
    const double confidence = static_cast<double>(best_votes) / static_cast<double>(mates);
    if (best_dir.empty() || best_dir == home_dir || confidence < config.min_confidence) {
      continue;
    }

    ReorgSuggestion s;
    s.path = std::string(path);
    s.from_dir = home_dir;
    s.to_dir = best_dir;
    s.confidence = confidence;
    s.cluster_size = largest->members.size();
    suggestions.push_back(std::move(s));
  }

  std::sort(suggestions.begin(), suggestions.end(),
            [](const ReorgSuggestion& a, const ReorgSuggestion& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.path < b.path;
            });
  return suggestions;
}

}  // namespace seer
