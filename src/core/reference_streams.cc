#include "src/core/reference_streams.h"

#include <algorithm>

namespace seer {

namespace {

// Sentinel pid used when per-process separation is disabled (ablation of
// Section 4.7).
constexpr Pid kGlobalStream = 0;

}  // namespace

ReferenceStreams::Stream& ReferenceStreams::GetStream(Pid pid) {
  return streams_[params_.per_process_streams ? pid : kGlobalStream];
}

void ReferenceStreams::PruneWindow(Stream& s) {
  const uint64_t horizon = static_cast<uint64_t>(params_.distance_horizon);
  while (!s.window.empty()) {
    const auto& [file, idx] = s.window.front();
    const auto it = s.files.find(file);
    const bool stale = it == s.files.end() || it->second.last_open_index != idx;
    const bool expired = idx + horizon < s.open_counter;
    if (stale) {
      s.window.pop_front();
      continue;
    }
    if (!expired) {
      break;
    }
    // A file that is still open stays semantically at distance 0 to
    // everything; it is tracked via open_nesting and its state survives the
    // window (see OnEnd's compensation).
    if (it->second.open_nesting == 0) {
      s.files.erase(it);
    }
    s.window.pop_front();
  }
}

void ReferenceStreams::Reference(Stream& s, FileId file, Time time, bool keep_open,
                                 std::vector<DistanceObservation>* out) {
  const uint64_t idx = ++s.open_counter;
  const uint64_t ref = ++s.ref_counter;
  const double horizon = static_cast<double>(params_.distance_horizon);

  // Evict entries that fell outside the horizon BEFORE collecting
  // observations: only files within the last M opens may update
  // (Section 3.1.3).
  PruneWindow(s);

  std::vector<DistanceObservation>& obs = *out;

  // Distance-0 sources: files currently held open (lifetime measure only).
  // These may not have window entries any more, so walk the state map for
  // open files first; the map stays small because closed files age out.
  if (params_.distance_kind == DistanceKind::kLifetime) {
    for (const auto& [from, state] : s.files) {
      if (from != file && state.open_nesting > 0) {
        obs.push_back({from, file, 0.0});
      }
    }
  }

  for (const auto& [from, from_idx] : s.window) {
    if (from == file) {
      continue;
    }
    const auto it = s.files.find(from);
    if (it == s.files.end() || it->second.last_open_index != from_idx) {
      continue;  // superseded by a later open of the same file
    }
    const FileState& st = it->second;
    double d = 0.0;
    switch (params_.distance_kind) {
      case DistanceKind::kLifetime: {
        if (st.open_nesting > 0) {
          continue;  // already emitted above
        }
        d = st.compensated ? horizon : static_cast<double>(idx - st.last_open_index);
        break;
      }
      case DistanceKind::kSequence: {
        d = static_cast<double>(ref - st.last_ref_index) - 1.0;
        break;
      }
      case DistanceKind::kTemporal: {
        d = static_cast<double>(time - st.last_open_time) /
            static_cast<double>(kMicrosPerSecond);
        break;
      }
    }
    const double cap = params_.distance_kind == DistanceKind::kTemporal
                           ? params_.temporal_horizon_seconds
                           : horizon;
    obs.push_back({from, file, std::min(d, cap)});
  }

  FileState& st = s.files[file];
  st.last_open_index = idx;
  st.last_ref_index = ref;
  st.last_open_time = time;
  st.compensated = false;
  if (keep_open) {
    ++st.open_nesting;
  }
  s.window.emplace_back(file, idx);
  PruneWindow(s);
}

void ReferenceStreams::OnBegin(Pid pid, FileId file, Time time,
                               std::vector<DistanceObservation>* out) {
  Reference(GetStream(pid), file, time, /*keep_open=*/true, out);
}

void ReferenceStreams::OnPoint(Pid pid, FileId file, Time time,
                               std::vector<DistanceObservation>* out) {
  Reference(GetStream(pid), file, time, /*keep_open=*/false, out);
}

void ReferenceStreams::OnEnd(Pid pid, FileId file) {
  Stream& s = GetStream(pid);
  const auto it = s.files.find(file);
  if (it == s.files.end() || it->second.open_nesting == 0) {
    return;  // close of a reference we never saw open — ignore
  }
  FileState& st = it->second;
  --st.open_nesting;
  if (st.open_nesting > 0) {
    return;
  }
  const uint64_t horizon = static_cast<uint64_t>(params_.distance_horizon);
  if (s.open_counter - st.last_open_index > horizon) {
    // The open happened more than M opens ago: any true distance from it
    // would exceed M. Re-stamp the file at the close point with the
    // `compensated` flag so later references see exactly M — the paper's
    // compensation insertion (Section 3.1.3).
    st.last_open_index = s.open_counter;
    st.compensated = true;
    s.window.emplace_back(file, st.last_open_index);
  }
}

void ReferenceStreams::OnFork(Pid parent, Pid child) {
  if (!params_.per_process_streams || parent == child) {
    return;
  }
  const auto it = streams_.find(parent);
  if (it == streams_.end()) {
    return;
  }
  // The child inherits a copy of the parent's reference history
  // (Section 4.7) — but begins with nothing held open, since descriptors
  // are not shared in our substrate.
  Stream copy = it->second;
  copy.parent = parent;
  for (auto& [file, state] : copy.files) {
    state.open_nesting = 0;
  }
  streams_[child] = std::move(copy);
}

void ReferenceStreams::OnExit(Pid pid) {
  if (!params_.per_process_streams) {
    return;
  }
  const auto it = streams_.find(pid);
  if (it == streams_.end()) {
    return;
  }
  Stream child = std::move(it->second);
  streams_.erase(it);

  const auto parent_it = streams_.find(child.parent);
  if (parent_it == streams_.end()) {
    return;
  }
  Stream& parent = parent_it->second;

  // Merge: the child's recent history is replayed quietly into the parent
  // so future parent references can relate to the child's files
  // (Section 4.7). No observations are generated here — child-internal
  // pairs were already measured inside the child's own stream.
  for (const auto& [file, idx] : child.window) {
    const auto st_it = child.files.find(file);
    if (st_it == child.files.end() || st_it->second.last_open_index != idx) {
      continue;
    }
    FileState& pst = parent.files[file];
    if (pst.open_nesting > 0) {
      continue;  // the parent itself holds it open; keep that state
    }
    pst.last_open_index = ++parent.open_counter;
    pst.last_ref_index = ++parent.ref_counter;
    pst.last_open_time = st_it->second.last_open_time;
    pst.open_nesting = 0;
    pst.compensated = false;
    parent.window.emplace_back(file, pst.last_open_index);
  }
  PruneWindow(parent);
}

std::vector<ReferenceStreams::ExportedStream> ReferenceStreams::Export() const {
  std::vector<ExportedStream> out;
  out.reserve(streams_.size());
  for (const auto& [pid, s] : streams_) {
    ExportedStream e;
    e.pid = pid;
    e.parent = s.parent;
    e.open_counter = s.open_counter;
    e.ref_counter = s.ref_counter;
    e.files.reserve(s.files.size());
    for (const auto& [file, st] : s.files) {
      e.files.push_back({file, st.last_open_index, st.last_ref_index, st.last_open_time,
                         st.open_nesting, st.compensated});
    }
    std::sort(e.files.begin(), e.files.end(),
              [](const ExportedFileState& a, const ExportedFileState& b) {
                return a.file < b.file;
              });
    e.window.assign(s.window.begin(), s.window.end());
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const ExportedStream& a, const ExportedStream& b) { return a.pid < b.pid; });
  return out;
}

void ReferenceStreams::Restore(const std::vector<ExportedStream>& streams) {
  streams_.clear();
  for (const ExportedStream& e : streams) {
    Stream& s = streams_[e.pid];
    s.parent = e.parent;
    s.open_counter = e.open_counter;
    s.ref_counter = e.ref_counter;
    for (const ExportedFileState& f : e.files) {
      s.files[f.file] = {f.last_open_index, f.last_ref_index, f.last_open_time, f.open_nesting,
                         f.compensated};
    }
    s.window.assign(e.window.begin(), e.window.end());
  }
}

size_t ReferenceStreams::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [pid, s] : streams_) {
    bytes += sizeof(Stream);
    bytes += s.files.size() * (sizeof(FileId) + sizeof(FileState) + 16);
    bytes += s.window.size() * sizeof(std::pair<FileId, uint64_t>);
  }
  return bytes;
}

}  // namespace seer
