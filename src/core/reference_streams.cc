#include "src/core/reference_streams.h"

#include <algorithm>

namespace seer {

namespace {

// Sentinel pid used when per-process separation is disabled (ablation of
// Section 4.7).
constexpr Pid kGlobalStream = 0;

}  // namespace

ReferenceStreams::Stream& ReferenceStreams::GetStream(Pid pid) {
  Stream& s = streams_[params_.per_process_streams ? pid : kGlobalStream];
  // Conservative dirty stamp: every sequential access that may mutate the
  // stream marks it for the next delta checkpoint. Reads over-stamp, which
  // only costs delta bytes, never correctness.
  s.dirty_stamp = ++mutation_epoch_;
  return s;
}

ReferenceStreams::Stream* ReferenceStreams::Prepare(Pid pid) {
  return &GetStream(pid);
}

void ReferenceStreams::OpenAdd(Stream& s, FileId file) {
  const auto it = std::lower_bound(s.open_files.begin(), s.open_files.end(), file);
  if (it == s.open_files.end() || *it != file) {
    s.open_files.insert(it, file);
  }
}

void ReferenceStreams::OpenRemove(Stream& s, FileId file) {
  const auto it = std::lower_bound(s.open_files.begin(), s.open_files.end(), file);
  if (it != s.open_files.end() && *it == file) {
    s.open_files.erase(it);
  }
}

void ReferenceStreams::PruneWindow(Stream& s) {
  const uint64_t horizon = static_cast<uint64_t>(params_.distance_horizon);
  while (!s.window.empty()) {
    const WindowRing::Entry& e = s.window.front();
    const FileState* st = s.files.Find(e.file);
    const bool stale = st == nullptr || st->last_open_index != e.idx;
    const bool expired = e.idx + horizon < s.open_counter;
    if (stale) {
      s.window.pop_front();
      continue;
    }
    if (!expired) {
      break;
    }
    // A file that is still open stays semantically at distance 0 to
    // everything; it is tracked via open_nesting and its state survives the
    // window (see EndOn's compensation).
    if (st->open_nesting == 0) {
      s.files.Erase(e.file);
    }
    s.window.pop_front();
  }
}

void ReferenceStreams::Reference(Stream& s, FileId file, Time time, bool keep_open,
                                 std::vector<DistanceObservation>* out) {
  const uint64_t idx = ++s.open_counter;
  const uint64_t ref = ++s.ref_counter;
  const double horizon = static_cast<double>(params_.distance_horizon);

  // Evict entries that fell outside the horizon BEFORE collecting
  // observations: only files within the last M opens may update
  // (Section 3.1.3).
  PruneWindow(s);

  std::vector<DistanceObservation>& obs = *out;

  // Distance-0 sources: files currently held open (lifetime measure only).
  // These may not have window entries any more, so the open set is tracked
  // separately — and kept sorted, so emission order is ascending FileId no
  // matter what the hash layout looks like (live and snapshot-restored
  // streams emit identically).
  if (params_.distance_kind == DistanceKind::kLifetime) {
    for (const FileId from : s.open_files) {
      if (from != file) {
        obs.push_back({from, file, 0.0});
      }
    }
  }

  s.window.ForEach([&](FileId from, uint64_t from_idx) {
    if (from == file) {
      return;
    }
    const FileState* st = s.files.Find(from);
    if (st == nullptr || st->last_open_index != from_idx) {
      return;  // superseded by a later open of the same file
    }
    double d = 0.0;
    switch (params_.distance_kind) {
      case DistanceKind::kLifetime: {
        if (st->open_nesting > 0) {
          return;  // already emitted above
        }
        d = st->compensated ? horizon : static_cast<double>(idx - st->last_open_index);
        break;
      }
      case DistanceKind::kSequence: {
        d = static_cast<double>(ref - st->last_ref_index) - 1.0;
        break;
      }
      case DistanceKind::kTemporal: {
        d = static_cast<double>(time - st->last_open_time) /
            static_cast<double>(kMicrosPerSecond);
        break;
      }
    }
    const double cap = params_.distance_kind == DistanceKind::kTemporal
                           ? params_.temporal_horizon_seconds
                           : horizon;
    obs.push_back({from, file, std::min(d, cap)});
  });

  FileState& st = s.files.InsertOrGet(file);
  st.last_open_index = idx;
  st.last_ref_index = ref;
  st.last_open_time = time;
  st.compensated = false;
  if (keep_open) {
    if (st.open_nesting == 0) {
      OpenAdd(s, file);
    }
    ++st.open_nesting;
  }
  s.window.push_back(file, idx);
  PruneWindow(s);
}

void ReferenceStreams::OnBegin(Pid pid, FileId file, Time time,
                               std::vector<DistanceObservation>* out) {
  Reference(GetStream(pid), file, time, /*keep_open=*/true, out);
}

void ReferenceStreams::OnPoint(Pid pid, FileId file, Time time,
                               std::vector<DistanceObservation>* out) {
  Reference(GetStream(pid), file, time, /*keep_open=*/false, out);
}

void ReferenceStreams::OnEnd(Pid pid, FileId file) { EndOn(GetStream(pid), file); }

void ReferenceStreams::EndOn(Stream& s, FileId file) {
  FileState* st = s.files.FindMutable(file);
  if (st == nullptr || st->open_nesting == 0) {
    return;  // close of a reference we never saw open — ignore
  }
  --st->open_nesting;
  if (st->open_nesting > 0) {
    return;
  }
  OpenRemove(s, file);
  const uint64_t horizon = static_cast<uint64_t>(params_.distance_horizon);
  if (s.open_counter - st->last_open_index > horizon) {
    // The open happened more than M opens ago: any true distance from it
    // would exceed M. Re-stamp the file at the close point with the
    // `compensated` flag so later references see exactly M — the paper's
    // compensation insertion (Section 3.1.3).
    st->last_open_index = s.open_counter;
    st->compensated = true;
    s.window.push_back(file, st->last_open_index);
  }
}

void ReferenceStreams::OnFork(Pid parent, Pid child) {
  if (!params_.per_process_streams || parent == child) {
    return;
  }
  const auto it = streams_.find(parent);
  if (it == streams_.end()) {
    return;
  }
  // The child inherits a copy of the parent's reference history
  // (Section 4.7) — but begins with nothing held open, since descriptors
  // are not shared in our substrate.
  Stream copy = it->second;
  copy.parent = parent;
  copy.files.ForEach([](FileId, FileState& state) { state.open_nesting = 0; });
  copy.open_files.clear();
  copy.dirty_stamp = ++mutation_epoch_;
  streams_[child] = std::move(copy);
}

void ReferenceStreams::OnExit(Pid pid) {
  if (!params_.per_process_streams) {
    return;
  }
  const auto it = streams_.find(pid);
  if (it == streams_.end()) {
    return;
  }
  Stream child = std::move(it->second);
  streams_.erase(it);
  removals_.push_back({++mutation_epoch_, pid});

  const auto parent_it = streams_.find(child.parent);
  if (parent_it == streams_.end()) {
    return;
  }
  Stream& parent = parent_it->second;
  parent.dirty_stamp = ++mutation_epoch_;

  // Merge: the child's recent history is replayed quietly into the parent
  // so future parent references can relate to the child's files
  // (Section 4.7). No observations are generated here — child-internal
  // pairs were already measured inside the child's own stream.
  child.window.ForEach([&](FileId file, uint64_t idx) {
    const FileState* cst = child.files.Find(file);
    if (cst == nullptr || cst->last_open_index != idx) {
      return;
    }
    FileState& pst = parent.files.InsertOrGet(file);
    if (pst.open_nesting > 0) {
      return;  // the parent itself holds it open; keep that state
    }
    pst.last_open_index = ++parent.open_counter;
    pst.last_ref_index = ++parent.ref_counter;
    pst.last_open_time = cst->last_open_time;
    pst.open_nesting = 0;
    pst.compensated = false;
    parent.window.push_back(file, pst.last_open_index);
  });
  PruneWindow(parent);
}

ReferenceStreams::ExportedStream ReferenceStreams::ExportOne(Pid pid, const Stream& s) {
  ExportedStream e;
  e.pid = pid;
  e.parent = s.parent;
  e.open_counter = s.open_counter;
  e.ref_counter = s.ref_counter;
  e.files.reserve(s.files.size());
  s.files.ForEach([&](FileId file, const FileState& st) {
    e.files.push_back({file, st.last_open_index, st.last_ref_index, st.last_open_time,
                       st.open_nesting, st.compensated});
  });
  std::sort(e.files.begin(), e.files.end(),
            [](const ExportedFileState& a, const ExportedFileState& b) {
              return a.file < b.file;
            });
  e.window.reserve(s.window.size());
  s.window.ForEach([&](FileId file, uint64_t idx) { e.window.emplace_back(file, idx); });
  return e;
}

std::vector<ReferenceStreams::ExportedStream> ReferenceStreams::Export() const {
  std::vector<ExportedStream> out;
  out.reserve(streams_.size());
  for (const auto& [pid, s] : streams_) {
    out.push_back(ExportOne(pid, s));
  }
  std::sort(out.begin(), out.end(),
            [](const ExportedStream& a, const ExportedStream& b) { return a.pid < b.pid; });
  return out;
}

std::vector<ReferenceStreams::ExportedStream> ReferenceStreams::ExportDirtySince(
    uint64_t epoch) const {
  std::vector<ExportedStream> out;
  for (const auto& [pid, s] : streams_) {
    if (s.dirty_stamp > epoch) {
      out.push_back(ExportOne(pid, s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ExportedStream& a, const ExportedStream& b) { return a.pid < b.pid; });
  return out;
}

std::vector<Pid> ReferenceStreams::RemovedSince(uint64_t epoch) const {
  std::vector<Pid> out;
  for (const auto& [at, pid] : removals_) {
    if (at > epoch) {
      out.push_back(pid);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void ReferenceStreams::TrimRemovalLog(uint64_t epoch) {
  // Append-ordered by epoch: drop the committed prefix.
  size_t keep = 0;
  while (keep < removals_.size() && removals_[keep].first <= epoch) {
    ++keep;
  }
  removals_.erase(removals_.begin(), removals_.begin() + keep);
}

void ReferenceStreams::Restore(const std::vector<ExportedStream>& streams) {
  streams_.clear();
  removals_.clear();
  mutation_epoch_ = 0;
  for (const ExportedStream& e : streams) {
    Stream& s = streams_[e.pid];
    s.parent = e.parent;
    s.open_counter = e.open_counter;
    s.ref_counter = e.ref_counter;
    for (const ExportedFileState& f : e.files) {
      s.files.InsertOrGet(f.file) = {f.last_open_index, f.last_ref_index, f.last_open_time,
                                     f.open_nesting, f.compensated};
      if (f.open_nesting > 0) {
        s.open_files.push_back(f.file);  // e.files is sorted, so this stays sorted
      }
    }
    for (const auto& [file, idx] : e.window) {
      s.window.push_back(file, idx);
    }
  }
}

size_t ReferenceStreams::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [pid, s] : streams_) {
    bytes += sizeof(Stream);
    bytes += s.files.MemoryBytes();
    bytes += s.window.MemoryBytes();
    bytes += s.open_files.capacity() * sizeof(FileId);
  }
  return bytes;
}

}  // namespace seer
