#include "src/core/params_io.h"

#include <charconv>
#include <sstream>

namespace seer {

namespace {

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

// Strips a trailing "# comment".
std::string_view StripComment(std::string_view s) {
  const size_t pos = s.find('#');
  return pos == std::string_view::npos ? s : Trim(s.substr(0, pos));
}

template <typename T>
bool ParseNum(std::string_view value, T* out) {
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), *out);
  return ec == std::errc() && ptr == value.data() + value.size();
}

Status Fail(int line_number, const std::string& message) {
  std::ostringstream out;
  out << "line " << line_number << ": " << message;
  return Status::InvalidArgument(out.str());
}

}  // namespace

StatusOr<SeerParams> ParseSeerParams(std::string_view text, const SeerParams& base) {
  SeerParams params = base;
  std::istringstream in{std::string(text)};
  std::string raw;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const std::string_view line = StripComment(Trim(raw));
    if (line.empty()) {
      continue;
    }
    const size_t pos = line.find_first_of(" \t");
    const std::string_view key = pos == std::string_view::npos ? line : line.substr(0, pos);
    const std::string_view value =
        pos == std::string_view::npos ? std::string_view() : Trim(line.substr(pos + 1));

    bool ok = true;
    if (key == "n") {
      ok = ParseNum(value, &params.max_neighbors) && params.max_neighbors > 0;
    } else if (key == "M") {
      ok = ParseNum(value, &params.distance_horizon) && params.distance_horizon > 0;
    } else if (key == "kn") {
      ok = ParseNum(value, &params.cluster_near) && params.cluster_near > 0;
    } else if (key == "kf") {
      ok = ParseNum(value, &params.cluster_far) && params.cluster_far > 0;
    } else if (key == "distance") {
      if (value == "lifetime") {
        params.distance_kind = DistanceKind::kLifetime;
      } else if (value == "sequence") {
        params.distance_kind = DistanceKind::kSequence;
      } else if (value == "temporal") {
        params.distance_kind = DistanceKind::kTemporal;
      } else {
        ok = false;
      }
    } else if (key == "mean") {
      if (value == "geometric") {
        params.mean_kind = MeanKind::kGeometric;
      } else if (value == "arithmetic") {
        params.mean_kind = MeanKind::kArithmetic;
      } else {
        ok = false;
      }
    } else if (key == "per-process") {
      if (value == "on" || value == "true") {
        params.per_process_streams = true;
      } else if (value == "off" || value == "false") {
        params.per_process_streams = false;
      } else {
        ok = false;
      }
    } else if (key == "aging-updates") {
      ok = ParseNum(value, &params.aging_updates);
    } else if (key == "delete-delay") {
      ok = ParseNum(value, &params.delete_delay);
    } else if (key == "dir-weight") {
      ok = ParseNum(value, &params.dir_distance_weight) && params.dir_distance_weight >= 0.0;
    } else if (key == "investigator-weight") {
      ok = ParseNum(value, &params.investigator_weight) && params.investigator_weight >= 0.0;
    } else if (key == "temporal-horizon") {
      ok = ParseNum(value, &params.temporal_horizon_seconds) &&
           params.temporal_horizon_seconds > 0.0;
    } else {
      return Fail(line_number, "unknown parameter '" + std::string(key) + "'");
    }
    if (!ok) {
      return Fail(line_number,
                  "bad value '" + std::string(value) + "' for '" + std::string(key) + "'");
    }
  }
  if (params.cluster_far >= params.cluster_near) {
    return Fail(line_number, "kf must be smaller than kn (smaller thresholds are more lenient)");
  }
  return params;
}

std::string FormatSeerParams(const SeerParams& params) {
  std::ostringstream out;
  out << "# SEER correlator parameters\n";
  out << "n " << params.max_neighbors << '\n';
  out << "M " << params.distance_horizon << '\n';
  out << "kn " << params.cluster_near << '\n';
  out << "kf " << params.cluster_far << '\n';
  out << "distance "
      << (params.distance_kind == DistanceKind::kLifetime
              ? "lifetime"
              : params.distance_kind == DistanceKind::kSequence ? "sequence" : "temporal")
      << '\n';
  out << "mean " << (params.mean_kind == MeanKind::kGeometric ? "geometric" : "arithmetic")
      << '\n';
  out << "per-process " << (params.per_process_streams ? "on" : "off") << '\n';
  out << "aging-updates " << params.aging_updates << '\n';
  out << "delete-delay " << params.delete_delay << '\n';
  out << "dir-weight " << params.dir_distance_weight << '\n';
  out << "investigator-weight " << params.investigator_weight << '\n';
  out << "temporal-horizon " << params.temporal_horizon_seconds << '\n';
  return out.str();
}

}  // namespace seer
