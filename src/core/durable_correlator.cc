#include "src/core/durable_correlator.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace seer {

namespace {

uint64_t MicrosSince(std::chrono::steady_clock::time_point begin) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - begin)
                                   .count());
}

}  // namespace

DurableCorrelator::DurableCorrelator(SnapshotStore store, std::unique_ptr<Correlator> correlator)
    : store_(std::move(store)),
      correlator_(std::move(correlator)),
      batcher_(correlator_.get()) {}

DurableCorrelator::~DurableCorrelator() {
  if (inflight_thread_.joinable()) {
    inflight_thread_.join();
  }
}

StatusOr<std::unique_ptr<DurableCorrelator>> DurableCorrelator::Open(
    Fs* fs, std::string dir, const SeerParams& defaults, SnapshotStoreOptions options,
    ThreadPool* shared_pool) {
  SnapshotStore store(fs, std::move(dir), options);
  SEER_RETURN_IF_ERROR(store.Open());
  SEER_ASSIGN_OR_RETURN(SnapshotStore::RecoveryResult recovered,
                        store.Recover(defaults, shared_pool));

  auto durable = std::unique_ptr<DurableCorrelator>(
      new DurableCorrelator(std::move(store), std::move(recovered.correlator)));
  durable->UseSharedPool(shared_pool);
  durable->open_stats_.recovered_generation = recovered.generation;
  durable->open_stats_.fresh = recovered.fresh;
  durable->open_stats_.snapshots_discarded = recovered.snapshots_discarded;
  durable->open_stats_.wal_records_replayed = recovered.wal_records_replayed;
  durable->open_stats_.torn_wal_tail = recovered.torn_wal_tail;

  // Fold the recovered state into a fresh generation right away: the new
  // WAL starts empty (its path dictionary must not straddle runs) and any
  // crash wreckage is superseded before we take new references.
  SEER_RETURN_IF_ERROR(durable->Checkpoint());
  return durable;
}

void DurableCorrelator::UseSharedPool(ThreadPool* pool) {
  shared_pool_ = pool;
  correlator_->UseSharedPool(pool);
  if (pool != nullptr) {
    encode_pool_.reset();
  }
}

ThreadPool* DurableCorrelator::EncodePool() {
  if (shared_pool_ != nullptr) {
    return shared_pool_;
  }
  if (encode_pool_ == nullptr) {
    encode_pool_ = std::make_unique<ThreadPool>();
  }
  return encode_pool_.get();
}

// Each sink call appends to the WAL immediately (event order on disk is the
// trace order) while the in-memory application rides the ingest batcher.
// Recovery replays the WAL serially; batched and serial ingest are
// bit-equivalent, so the recovered state matches the batched live state.

void DurableCorrelator::OnReference(const FileReference& ref) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kReference;
  e.ref = ref;
  batcher_.Add(e);
  Latch(wal_->AppendReference(ref));
}

void DurableCorrelator::OnProcessFork(Pid parent, Pid child) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kFork;
  e.parent = parent;
  e.child = child;
  batcher_.Add(e);
  Latch(wal_->AppendFork(parent, child));
}

void DurableCorrelator::OnProcessExit(Pid pid) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kExit;
  e.child = pid;
  batcher_.Add(e);
  Latch(wal_->AppendExit(pid));
}

void DurableCorrelator::OnFileDeleted(PathId path, Time time) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kDeleted;
  e.path = path;
  e.time = time;
  batcher_.Add(e);
  Latch(wal_->AppendDeleted(path, time));
}

void DurableCorrelator::OnFileRenamed(PathId from, PathId to, Time time) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kRenamed;
  e.path = from;
  e.path2 = to;
  e.time = time;
  batcher_.Add(e);
  Latch(wal_->AppendRenamed(from, to, time));
}

void DurableCorrelator::OnFileExcluded(PathId path) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kExcluded;
  e.path = path;
  batcher_.Add(e);
  Latch(wal_->AppendExcluded(path));
}

Status DurableCorrelator::Checkpoint() { return DoCheckpoint(/*async=*/false); }

Status DurableCorrelator::BeginCheckpoint() { return DoCheckpoint(/*async=*/true); }

Status DurableCorrelator::DoCheckpoint(bool async) {
  // At most one checkpoint in flight: settle the previous one first so the
  // generation and delta-cut bookkeeping below start from committed state.
  // Its failure doesn't block this checkpoint — FinishCheckpoint already
  // forced it full — but the caller learns about it.
  const Status previous = FinishCheckpoint();

  const auto stall_begin = std::chrono::steady_clock::now();

  // The snapshot must cover every event handed to the sink so far: apply
  // the batched tail before sealing. This also pins batch boundaries to
  // checkpoint boundaries — a generation's snapshot never reflects half a
  // batch.
  batcher_.Flush();
  if (wal_ != nullptr) {
    // Complete the outgoing log first: the new snapshot must cover at
    // least everything the old log holds, or a fallback to the previous
    // generation could lose synced records.
    SEER_RETURN_IF_ERROR(wal_->Sync());
  }

  SEER_ASSIGN_OR_RETURN(const uint64_t next, store_.NextGeneration());
  const uint64_t every = std::max<uint64_t>(1, store_.options().full_checkpoint_every);
  const bool delta =
      !force_full_ && have_base_ && every > 1 && snapshots_since_full_ + 1 < every;

  Correlator::SealRequest req;
  req.delta = delta;
  req.base_generation = last_snapshot_generation_;
  req.relation_epoch = cut_relation_epoch_;
  req.stream_epoch = cut_stream_epoch_;
  SealedSnapshot seal = correlator_->SealSnapshot(req);

  pending_delta_ = delta;
  pending_generation_ = next;
  pending_relation_epoch_ = seal.relation_epoch;
  pending_stream_epoch_ = seal.stream_epoch;

  ThreadPool* encode_pool = EncodePool();
  const uint64_t full_bytes_before = last_full_bytes_;
  inflight_stats_ = CheckpointStats{};
  inflight_stats_.generation = next;
  inflight_stats_.delta = delta;

  // Encode + atomic write + prune. Pool workers only touch memory; every
  // Fs operation happens on the thread running this job.
  auto job = [this, seal = std::move(seal), next, delta, full_bytes_before, encode_pool]() {
    CheckpointStats& stats = inflight_stats_;
    const auto encode_begin = std::chrono::steady_clock::now();
    const std::string bytes = EncodeSealedSnapshot(seal, encode_pool);
    stats.encode_micros = MicrosSince(encode_begin);
    stats.bytes = bytes.size();
    stats.full_bytes = delta ? full_bytes_before : bytes.size();
    stats.delta_ratio =
        stats.full_bytes != 0
            ? static_cast<double>(bytes.size()) / static_cast<double>(stats.full_bytes)
            : 1.0;

    const auto write_begin = std::chrono::steady_clock::now();
    Status status = store_.WriteSnapshotBytes(bytes, next, delta);
    if (status.ok()) {
      status = store_.Prune();
    }
    stats.write_micros = MicrosSince(write_begin);

    inflight_status_ = std::move(status);
    inflight_done_.store(true, std::memory_order_release);
  };

  if (async) {
    // Rotate to the new generation's WAL first, so ingest resumes the
    // moment this returns; the encode/write runs behind it. Creating
    // wal-N before snap-N lands is safe here because Open()'s synchronous
    // genesis checkpoint guarantees an older snapshot exists: if we crash
    // mid-encode, recovery folds the previous head's chain and replays
    // wal-(N-1) (synced above) then wal-N.
    SEER_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> wal, store_.CreateWal(next));
    wal_ = std::move(wal);
    generation_ = next;
    wal_status_ = Status::Ok();
    inflight_stats_.seal_micros = MicrosSince(stall_begin);
    inflight_active_ = true;
    inflight_done_.store(false, std::memory_order_relaxed);
    inflight_thread_ = std::thread(std::move(job));
    return previous;
  }

  // Synchronous: snapshot-first ordering, exactly the sequence the store
  // has always produced — wal-N is only ever created after snapshot N is
  // durable, so even a genesis-checkpoint crash leaves a recoverable
  // store, and fault-injection op counting stays deterministic.
  inflight_stats_.seal_micros = MicrosSince(stall_begin);
  inflight_active_ = true;
  inflight_done_.store(false, std::memory_order_relaxed);
  job();
  if (inflight_status_.ok()) {
    auto rotate_result = store_.CreateWal(next);
    if (rotate_result.ok()) {
      wal_ = *std::move(rotate_result);
      generation_ = next;
      wal_status_ = Status::Ok();
    } else {
      inflight_status_ = rotate_result.status();
    }
  }
  SEER_RETURN_IF_ERROR(FinishCheckpoint());
  return previous;
}

Status DurableCorrelator::FinishCheckpoint() {
  if (!inflight_active_) {
    return Status::Ok();
  }
  if (inflight_thread_.joinable()) {
    inflight_thread_.join();
  }
  inflight_active_ = false;
  inflight_done_.load(std::memory_order_acquire);
  const Status status = inflight_status_;
  if (!status.ok()) {
    // The snapshot never landed (or pruning failed under it): nothing to
    // delta against until a full succeeds.
    force_full_ = true;
    return status;
  }
  last_stats_ = inflight_stats_;
  last_snapshot_generation_ = pending_generation_;
  cut_relation_epoch_ = pending_relation_epoch_;
  cut_stream_epoch_ = pending_stream_epoch_;
  have_base_ = true;
  force_full_ = false;
  if (pending_delta_) {
    ++snapshots_since_full_;
  } else {
    snapshots_since_full_ = 0;
    last_full_bytes_ = inflight_stats_.bytes;
  }
  // Stream removals at or before the committed cut are baked into the
  // durable snapshot; only newer ones matter for the next delta.
  correlator_->TrimStreamRemovals(cut_stream_epoch_);
  return Status::Ok();
}

Status DurableCorrelator::Sync() {
  SEER_RETURN_IF_ERROR(wal_status_);
  return wal_->Sync();
}

}  // namespace seer
