#include "src/core/durable_correlator.h"

#include <utility>

namespace seer {

DurableCorrelator::DurableCorrelator(SnapshotStore store, std::unique_ptr<Correlator> correlator)
    : store_(std::move(store)),
      correlator_(std::move(correlator)),
      batcher_(correlator_.get()) {}

StatusOr<std::unique_ptr<DurableCorrelator>> DurableCorrelator::Open(
    Fs* fs, std::string dir, const SeerParams& defaults, SnapshotStoreOptions options) {
  SnapshotStore store(fs, std::move(dir), options);
  SEER_RETURN_IF_ERROR(store.Open());
  SEER_ASSIGN_OR_RETURN(SnapshotStore::RecoveryResult recovered, store.Recover(defaults));

  auto durable = std::unique_ptr<DurableCorrelator>(
      new DurableCorrelator(std::move(store), std::move(recovered.correlator)));
  durable->open_stats_.recovered_generation = recovered.generation;
  durable->open_stats_.fresh = recovered.fresh;
  durable->open_stats_.snapshots_discarded = recovered.snapshots_discarded;
  durable->open_stats_.wal_records_replayed = recovered.wal_records_replayed;
  durable->open_stats_.torn_wal_tail = recovered.torn_wal_tail;

  // Fold the recovered state into a fresh generation right away: the new
  // WAL starts empty (its path dictionary must not straddle runs) and any
  // crash wreckage is superseded before we take new references.
  SEER_RETURN_IF_ERROR(durable->Checkpoint());
  return durable;
}

// Each sink call appends to the WAL immediately (event order on disk is the
// trace order) while the in-memory application rides the ingest batcher.
// Recovery replays the WAL serially; batched and serial ingest are
// bit-equivalent, so the recovered state matches the batched live state.

void DurableCorrelator::OnReference(const FileReference& ref) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kReference;
  e.ref = ref;
  batcher_.Add(e);
  Latch(wal_->AppendReference(ref));
}

void DurableCorrelator::OnProcessFork(Pid parent, Pid child) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kFork;
  e.parent = parent;
  e.child = child;
  batcher_.Add(e);
  Latch(wal_->AppendFork(parent, child));
}

void DurableCorrelator::OnProcessExit(Pid pid) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kExit;
  e.child = pid;
  batcher_.Add(e);
  Latch(wal_->AppendExit(pid));
}

void DurableCorrelator::OnFileDeleted(PathId path, Time time) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kDeleted;
  e.path = path;
  e.time = time;
  batcher_.Add(e);
  Latch(wal_->AppendDeleted(path, time));
}

void DurableCorrelator::OnFileRenamed(PathId from, PathId to, Time time) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kRenamed;
  e.path = from;
  e.path2 = to;
  e.time = time;
  batcher_.Add(e);
  Latch(wal_->AppendRenamed(from, to, time));
}

void DurableCorrelator::OnFileExcluded(PathId path) {
  IngestEvent e;
  e.kind = IngestEvent::Kind::kExcluded;
  e.path = path;
  batcher_.Add(e);
  Latch(wal_->AppendExcluded(path));
}

Status DurableCorrelator::Checkpoint() {
  // The snapshot must cover every event handed to the sink so far: apply
  // the batched tail before encoding. This also pins batch boundaries to
  // checkpoint boundaries — a generation's snapshot never reflects half a
  // batch.
  batcher_.Flush();
  if (wal_ != nullptr) {
    // Complete the outgoing log first: the new snapshot must cover at
    // least everything the old log holds, or a fallback to the previous
    // generation could lose synced records.
    SEER_RETURN_IF_ERROR(wal_->Sync());
  }
  SEER_ASSIGN_OR_RETURN(SnapshotStore::CheckpointResult result,
                        store_.Checkpoint(*correlator_));
  wal_ = std::move(result.wal);
  generation_ = result.generation;
  wal_status_ = Status::Ok();
  return Status::Ok();
}

Status DurableCorrelator::Sync() {
  SEER_RETURN_IF_ERROR(wal_status_);
  return wal_->Sync();
}

}  // namespace seer
