#include "src/core/durable_correlator.h"

#include <utility>

namespace seer {

DurableCorrelator::DurableCorrelator(SnapshotStore store, std::unique_ptr<Correlator> correlator)
    : store_(std::move(store)), correlator_(std::move(correlator)) {}

StatusOr<std::unique_ptr<DurableCorrelator>> DurableCorrelator::Open(
    Fs* fs, std::string dir, const SeerParams& defaults, SnapshotStoreOptions options) {
  SnapshotStore store(fs, std::move(dir), options);
  SEER_RETURN_IF_ERROR(store.Open());
  SEER_ASSIGN_OR_RETURN(SnapshotStore::RecoveryResult recovered, store.Recover(defaults));

  auto durable = std::unique_ptr<DurableCorrelator>(
      new DurableCorrelator(std::move(store), std::move(recovered.correlator)));
  durable->open_stats_.recovered_generation = recovered.generation;
  durable->open_stats_.fresh = recovered.fresh;
  durable->open_stats_.snapshots_discarded = recovered.snapshots_discarded;
  durable->open_stats_.wal_records_replayed = recovered.wal_records_replayed;
  durable->open_stats_.torn_wal_tail = recovered.torn_wal_tail;

  // Fold the recovered state into a fresh generation right away: the new
  // WAL starts empty (its path dictionary must not straddle runs) and any
  // crash wreckage is superseded before we take new references.
  SEER_RETURN_IF_ERROR(durable->Checkpoint());
  return durable;
}

void DurableCorrelator::OnReference(const FileReference& ref) {
  correlator_->OnReference(ref);
  Latch(wal_->AppendReference(ref));
}

void DurableCorrelator::OnProcessFork(Pid parent, Pid child) {
  correlator_->OnProcessFork(parent, child);
  Latch(wal_->AppendFork(parent, child));
}

void DurableCorrelator::OnProcessExit(Pid pid) {
  correlator_->OnProcessExit(pid);
  Latch(wal_->AppendExit(pid));
}

void DurableCorrelator::OnFileDeleted(PathId path, Time time) {
  correlator_->OnFileDeleted(path, time);
  Latch(wal_->AppendDeleted(path, time));
}

void DurableCorrelator::OnFileRenamed(PathId from, PathId to, Time time) {
  correlator_->OnFileRenamed(from, to, time);
  Latch(wal_->AppendRenamed(from, to, time));
}

void DurableCorrelator::OnFileExcluded(PathId path) {
  correlator_->OnFileExcluded(path);
  Latch(wal_->AppendExcluded(path));
}

Status DurableCorrelator::Checkpoint() {
  if (wal_ != nullptr) {
    // Complete the outgoing log first: the new snapshot must cover at
    // least everything the old log holds, or a fallback to the previous
    // generation could lose synced records.
    SEER_RETURN_IF_ERROR(wal_->Sync());
  }
  SEER_ASSIGN_OR_RETURN(SnapshotStore::CheckpointResult result,
                        store_.Checkpoint(*correlator_));
  wal_ = std::move(result.wal);
  generation_ = result.generation;
  wal_status_ = Status::Ok();
  return Status::Ok();
}

Status DurableCorrelator::Sync() {
  SEER_RETURN_IF_ERROR(wal_status_);
  return wal_->Sync();
}

}  // namespace seer
