#include "src/core/relation_table.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace seer {

namespace {

// A mean-cache stamp no real ordinal can take: freshly sized or restored
// slots start invalid without the hot path ever storing a sentinel value.
constexpr uint64_t kMeanStampInvalid = UINT64_MAX;

// SplitMix64 finalizer: the stateless tie-break mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double Neighbor::MeanDistance(MeanKind kind) const {
  if (observations == 0) {
    return 0.0;
  }
  if (kind == MeanKind::kArithmetic) {
    return linear_sum / static_cast<double>(observations);
  }
  return std::exp(log_sum / static_cast<double>(observations));
}

RelationTable::RelationTable(const SeerParams& params, const FileTable* files, uint64_t seed)
    : params_(params), files_(files), cap_(params.max_neighbors), rng_(seed) {
  RefreshTieKey();
}

void RelationTable::RefreshTieKey() {
  uint64_t s[4];
  rng_.GetState(s);
  tie_key_ = Mix64(s[0] ^ Mix64(s[1] ^ Mix64(s[2] ^ Mix64(s[3]))));
}

uint64_t RelationTable::TieDraw(uint64_t ordinal, uint32_t slot) const {
  return Mix64(tie_key_ ^ (ordinal * 0x9e3779b97f4a7c15ULL) ^
               (static_cast<uint64_t>(slot) << 32));
}

void RelationTable::EnsureSize(FileId id) {
  if (nb_count_.size() <= id) {
    const size_t files = static_cast<size_t>(id) + 1;
    nb_count_.resize(files, 0);
    reverse_.resize(files);
    set_stamp_.resize(files, 0);
    stripe_stamp_.resize((files + kStripeSize - 1) >> kStripeShift, 0);
    const size_t slots = files * static_cast<size_t>(cap_);
    nb_id_.resize(slots, kInvalidFileId);
    nb_log_.resize(slots, 0.0);
    nb_lin_.resize(slots, 0.0);
    nb_obs_.resize(slots, 0);
    nb_upd_.resize(slots, 0);
    nb_mean_.resize(slots, 0.0);
    nb_mean_upd_.resize(slots, kMeanStampInvalid);
  }
}

void RelationTable::Stamp(FileId id) {
  EnsureSize(id);
  set_stamp_[id] = ++set_change_epoch_;
}

void RelationTable::StampData(FileId id) {
  stripe_stamp_[id >> kStripeShift] = ++data_epoch_;
}

void RelationTable::RevAdd(FileId owner, FileId neighbor) {
  EnsureSize(neighbor);
  reverse_[neighbor].push_back(owner);
}

void RelationTable::RevRemove(FileId owner, FileId neighbor) {
  if (neighbor >= reverse_.size()) {
    return;
  }
  std::vector<FileId>& rev = reverse_[neighbor];
  for (size_t i = 0; i < rev.size(); ++i) {
    if (rev[i] == owner) {
      rev[i] = rev.back();
      rev.pop_back();
      return;
    }
  }
}

Neighbor RelationTable::MaterializeSlot(size_t slot) const {
  Neighbor nb;
  nb.id = nb_id_[slot];
  nb.log_sum = nb_log_[slot];
  nb.linear_sum = nb_lin_[slot];
  nb.observations = nb_obs_[slot];
  nb.last_update = nb_upd_[slot];
  return nb;
}

double RelationTable::MeanOfSlot(size_t slot) const {
  const uint32_t obs = nb_obs_[slot];
  if (obs == 0) {
    return 0.0;
  }
  if (params_.mean_kind == MeanKind::kArithmetic) {
    return nb_lin_[slot] / static_cast<double>(obs);
  }
  return std::exp(nb_log_[slot] / static_cast<double>(obs));
}

double RelationTable::CachedMean(size_t slot) {
  if (nb_mean_upd_[slot] != nb_upd_[slot]) {
    nb_mean_[slot] = MeanOfSlot(slot);
    nb_mean_upd_[slot] = nb_upd_[slot];
  }
  return nb_mean_[slot];
}

void RelationTable::WriteCandidate(size_t slot, FileId to, double cand_log, double distance,
                                   uint64_t ordinal) {
  nb_id_[slot] = to;
  nb_log_[slot] = cand_log;
  nb_lin_[slot] = distance;
  nb_obs_[slot] = 1;
  // The fresh ordinal can never match the slot's mean stamp, so the cache
  // line is invalid without an extra store.
  nb_upd_[slot] = ordinal;
}

int32_t RelationTable::FindSlot(FileId from, FileId to) const {
  if (from >= nb_count_.size()) {
    return -1;
  }
  const size_t base = static_cast<size_t>(from) * cap_;
  const uint32_t count = nb_count_[from];
  for (uint32_t i = 0; i < count; ++i) {
    if (nb_id_[base + i] == to) {
      return static_cast<int32_t>(i);
    }
  }
  return -1;
}

void RelationTable::Observe(FileId from, FileId to, double distance) {
  ObserveHinted(from, to, distance, -1);
}

void RelationTable::ObserveHinted(FileId from, FileId to, double distance, int32_t hint) {
  if (from == to) {
    return;
  }
  EnsureSize(from);
  ++update_count_;
  FoldObservation(from, to, distance, hint, update_count_, nullptr);
}

void RelationTable::NoteDataTouched(FileId from, StripeFoldLog* log) {
  if (log == nullptr) {
    StampData(from);
  } else {
    log->data_touched = true;
  }
}

void RelationTable::NoteStructure(FileId from, FileId removed, FileId added,
                                  StripeFoldLog* log) {
  if (log == nullptr) {
    if (removed != kInvalidFileId) {
      RevRemove(from, removed);
    }
    Stamp(from);
    RevAdd(from, added);
    StampData(from);
  } else {
    log->rev_ops.push_back({from, removed, added});
    log->data_touched = true;
  }
}

void RelationTable::FoldObservation(FileId from, FileId to, double distance, int32_t hint,
                                    uint64_t ordinal, StripeFoldLog* log) {
  const double floored =
      distance > 0.0 ? distance : params_.geometric_zero_floor;
  const size_t base = static_cast<size_t>(from) * cap_;
  const uint32_t count = nb_count_[from];
  const FileId* ids = nb_id_.data() + base;

  // Existing entry: fold in the new observation. A hint that still names
  // `to` skips the membership scan (the batched ingest path pre-computes
  // it in parallel); anything else — including hint == -1, since an
  // earlier fold in the same batch may have inserted `to` — rescans. The
  // scan is blocked: branchless selects inside each 8-wide block (-O3
  // turns them into vector compares over the contiguous id stripe) with
  // one well-predicted exit test per block, so an early hit doesn't pay
  // for the whole stripe. Ids are unique within a list, so any match is
  // the only match.
  int32_t slot = -1;
  if (hint >= 0 && static_cast<uint32_t>(hint) < count && ids[hint] == to) {
    slot = hint;
  } else {
    uint32_t i = 0;
    for (; i + 8 <= count; i += 8) {
      int32_t block_hit = -1;
      for (uint32_t j = 0; j < 8; ++j) {
        block_hit = ids[i + j] == to ? static_cast<int32_t>(i + j) : block_hit;
      }
      if (block_hit >= 0) {
        slot = block_hit;
        break;
      }
    }
    if (slot < 0) {
      for (; i < count; ++i) {
        slot = ids[i] == to ? static_cast<int32_t>(i) : slot;
      }
    }
  }
  if (slot >= 0) {
    const size_t s = base + static_cast<size_t>(slot);
    nb_log_[s] += std::log(floored);
    nb_lin_[s] += distance;
    ++nb_obs_[s];
    // The new ordinal outruns the slot's mean stamp, so the cache line
    // goes stale with no extra store (see CachedMean).
    nb_upd_[s] = ordinal;
    NoteDataTouched(from, log);
    return;
  }

  const double cand_log = std::log(floored);

  if (count < static_cast<uint32_t>(cap_)) {
    WriteCandidate(base + count, to, cand_log, distance, ordinal);
    nb_count_[from] = count + 1;
    NoteStructure(from, kInvalidFileId, to, log);
    return;
  }
  if (count == 0) {
    return;  // cap of zero: nothing to track
  }

  // Replacement priority 1: the first neighbor marked for deletion. One
  // packed liveness byte per id (not a FileRecord load); the backward
  // select keeps first-match semantics branch-free.
  const uint8_t* flags = files_->liveness_flags();
  int32_t dead = -1;
  for (uint32_t i = count; i > 0; --i) {
    dead = (flags[ids[i - 1]] & FileTable::kFlagDeleted) ? static_cast<int32_t>(i - 1) : dead;
  }
  if (dead >= 0) {
    const FileId removed = ids[dead];
    WriteCandidate(base + static_cast<size_t>(dead), to, cand_log, distance, ordinal);
    NoteStructure(from, removed, to, log);
    return;
  }

  // Priority 2: the entry with the largest mean distance (random
  // tie-break), replaced only when it is farther than the candidate.
  // Pass one refreshes stale mean-cache lines (arithmetic only for entries
  // whose accumulators changed); pass two is a branchless max over the
  // contiguous mean stripe; pass three applies the reservoir tie-break to
  // the (rare) slots holding the maximum.
  for (uint32_t i = 0; i < count; ++i) {
    const size_t s = base + i;
    if (nb_mean_upd_[s] != nb_upd_[s]) {
      nb_mean_[s] = MeanOfSlot(s);
      nb_mean_upd_[s] = nb_upd_[s];
    }
  }
  const double* means = nb_mean_.data() + base;
  double worst_dist = means[0];
  for (uint32_t i = 1; i < count; ++i) {
    worst_dist = means[i] > worst_dist ? means[i] : worst_dist;
  }
  uint32_t worst = 0;
  size_t ties = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if (means[i] == worst_dist) {
      ++ties;
      if (ties == 1) {
        worst = i;
      } else if (TieDraw(ordinal, i) % ties == 0) {
        worst = i;
      }
    }
  }
  const double candidate_dist = params_.mean_kind == MeanKind::kArithmetic
                                    ? distance / 1.0
                                    : std::exp(cand_log / 1.0);
  if (worst_dist > candidate_dist) {
    const FileId removed = ids[worst];
    WriteCandidate(base + worst, to, cand_log, distance, ordinal);
    NoteStructure(from, removed, to, log);
    return;
  }

  // Priority 3: aging — a very old, inactive entry yields to fresh data so
  // the table can track changes in user behaviour and shed incorrectly
  // inferred relationships (Section 3.1.3). Branchless min over the
  // contiguous update-ordinal stripe.
  const uint64_t* upds = nb_upd_.data() + base;
  uint32_t oldest = 0;
  uint64_t oldest_update = upds[0];
  for (uint32_t i = 1; i < count; ++i) {
    const bool older = upds[i] < oldest_update;
    oldest = older ? i : oldest;
    oldest_update = older ? upds[i] : oldest_update;
  }
  if (ordinal - oldest_update > params_.aging_updates) {
    const FileId removed = ids[oldest];
    WriteCandidate(base + oldest, to, cand_log, distance, ordinal);
    NoteStructure(from, removed, to, log);
  }
}

void RelationTable::ApplyFoldLog(uint32_t stripe, const StripeFoldLog& log) {
  for (const StripeFoldLog::RevOp& op : log.rev_ops) {
    if (op.removed != kInvalidFileId) {
      RevRemove(op.owner, op.removed);
    }
    Stamp(op.owner);
    RevAdd(op.owner, op.added);
  }
  if (log.data_touched) {
    if (stripe_stamp_.size() <= stripe) {
      stripe_stamp_.resize(static_cast<size_t>(stripe) + 1, 0);
    }
    stripe_stamp_[stripe] = ++data_epoch_;
  }
}

RelationTable::NeighborRange RelationTable::NeighborsOf(FileId from) const {
  if (from >= nb_count_.size()) {
    return NeighborRange(this, 0, 0);
  }
  return NeighborRange(this, static_cast<size_t>(from) * cap_, nb_count_[from]);
}

std::vector<FileId> RelationTable::LiveNeighborIds(FileId from) const {
  std::vector<FileId> out;
  LiveNeighborIds(from, &out);
  return out;
}

void RelationTable::LiveNeighborIds(FileId from, std::vector<FileId>* out) const {
  if (from >= nb_count_.size()) {
    return;
  }
  const size_t base = static_cast<size_t>(from) * cap_;
  const uint32_t count = nb_count_[from];
  // One packed liveness byte per neighbor (zero means live), not a whole
  // FileRecord: the scan is a contiguous id-stripe walk plus a byte-array
  // gather, the dominant loop of cluster input refresh.
  const uint8_t* flags = files_->liveness_flags();
  const FileId* ids = nb_id_.data() + base;
  for (uint32_t i = 0; i < count; ++i) {
    const FileId id = ids[i];
    if (flags[id] == 0) {
      out->push_back(id);
    }
  }
}

double RelationTable::DistanceOrNegative(FileId from, FileId to) const {
  const int32_t slot = FindSlot(from, to);
  if (slot < 0) {
    return -1.0;
  }
  return MeanOfSlot(static_cast<size_t>(from) * cap_ + static_cast<size_t>(slot));
}

void RelationTable::Purge(FileId id) {
  if (id >= nb_count_.size()) {
    return;
  }
  // Our own list: unregister from every neighbor's reverse entry.
  const size_t base = static_cast<size_t>(id) * cap_;
  if (nb_count_[id] > 0) {
    const uint32_t count = nb_count_[id];
    for (uint32_t i = 0; i < count; ++i) {
      RevRemove(id, nb_id_[base + i]);
    }
    nb_count_[id] = 0;
    Stamp(id);
    StampData(id);
  }
  // Every list naming us, found via the reverse index. Iterated by index:
  // Stamp never mutates reverse_[id] (the owners already exist).
  std::vector<FileId>& rev = reverse_[id];
  for (size_t r = 0; r < rev.size(); ++r) {
    const FileId owner = rev[r];
    const size_t obase = static_cast<size_t>(owner) * cap_;
    const uint32_t ocount = nb_count_[owner];
    for (uint32_t i = 0; i < ocount; ++i) {
      if (nb_id_[obase + i] == id) {
        // Swap-remove: move the last live entry (and its cache line) down.
        const uint32_t last = ocount - 1;
        if (i != last) {
          nb_id_[obase + i] = nb_id_[obase + last];
          nb_log_[obase + i] = nb_log_[obase + last];
          nb_lin_[obase + i] = nb_lin_[obase + last];
          nb_obs_[obase + i] = nb_obs_[obase + last];
          nb_upd_[obase + i] = nb_upd_[obase + last];
          nb_mean_[obase + i] = nb_mean_[obase + last];
          nb_mean_upd_[obase + i] = nb_mean_upd_[obase + last];
        }
        nb_count_[owner] = last;
        StampData(owner);
        break;
      }
    }
    Stamp(owner);
  }
  rev.clear();
}

void RelationTable::CollectChangedSince(uint64_t epoch, std::vector<FileId>* out) const {
  for (FileId id = 0; id < set_stamp_.size(); ++id) {
    if (set_stamp_[id] > epoch) {
      out->push_back(id);
    }
  }
}

const std::vector<FileId>& RelationTable::ReverseNeighborsOf(FileId id) const {
  return id < reverse_.size() ? reverse_[id] : empty_ids_;
}

void RelationTable::MarkSetChanged(FileId id) {
  Stamp(id);
  if (id < reverse_.size()) {
    // By index, not a copy: Stamp may resize the outer tables when `id`
    // itself was new, but every owner in reverse_[id] already has a list,
    // so the stamps below never resize — and even if they did, the fresh
    // reverse_[id] lookup per step stays valid. Rename storms hit this
    // path once per renamed file, so the old per-call vector copy was the
    // dominant cost of a bulk rename.
    for (size_t i = 0; i < reverse_[id].size(); ++i) {
      Stamp(reverse_[id][i]);
    }
  }
}

void RelationTable::RestoreList(FileId from, std::vector<Neighbor> neighbors) {
  EnsureSize(from);
  const size_t base = static_cast<size_t>(from) * cap_;
  const uint32_t old_count = nb_count_[from];
  for (uint32_t i = 0; i < old_count; ++i) {
    RevRemove(from, nb_id_[base + i]);
  }
  // Entries beyond the slab capacity (a hand-edited dump whose lists
  // exceed its own n) are dropped; files written by SaveTo never have any.
  const uint32_t count =
      static_cast<uint32_t>(std::min(neighbors.size(), static_cast<size_t>(cap_)));
  nb_count_[from] = count;
  for (uint32_t i = 0; i < count; ++i) {
    const Neighbor& nb = neighbors[i];
    nb_id_[base + i] = nb.id;
    nb_log_[base + i] = nb.log_sum;
    nb_lin_[base + i] = nb.linear_sum;
    nb_obs_[base + i] = nb.observations;
    nb_upd_[base + i] = nb.last_update;
    // A restored ordinal may collide with a stale mean stamp at this slot;
    // force the cache line invalid.
    nb_mean_upd_[base + i] = kMeanStampInvalid;
  }
  for (uint32_t i = 0; i < count; ++i) {
    RevAdd(from, nb_id_[base + i]);
  }
  Stamp(from);
  StampData(from);
}

void RelationTable::CopyStripes(bool full, uint64_t since_epoch, size_t file_count,
                                std::vector<RelationStripeCopy>* out) const {
  if (file_count == 0) {
    return;
  }
  const size_t known = nb_count_.size();
  const uint32_t stripes =
      static_cast<uint32_t>((file_count + kStripeSize - 1) >> kStripeShift);
  for (uint32_t sx = 0; sx < stripes; ++sx) {
    const size_t begin = static_cast<size_t>(sx) << kStripeShift;
    const size_t end = std::min(begin + kStripeSize, file_count);
    const uint64_t stamp = sx < stripe_stamp_.size() ? stripe_stamp_[sx] : 0;
    if (full) {
      // A reader treats an absent stripe as all-empty, so skip stripes
      // with no live entry at all.
      bool any = false;
      for (size_t f = begin; f < end && !any; ++f) {
        any = f < known && nb_count_[f] > 0;
      }
      if (!any) {
        continue;
      }
    } else if (stamp <= since_epoch) {
      continue;  // untouched since the cut: base stripe is still exact
    }
    RelationStripeCopy copy;
    copy.index = sx;
    copy.begin = static_cast<uint32_t>(begin);
    copy.files = static_cast<uint32_t>(end - begin);
    copy.counts.resize(copy.files, 0);
    // Pack only the live prefix of every file's slot range; the slab's
    // reserved-but-dead capacity never gets touched, so a seal costs
    // O(live entries), not O(files * cap).
    size_t live = 0;
    const size_t seen_end = std::min(end, known);
    for (size_t f = begin; f < seen_end; ++f) {
      copy.counts[f - begin] = nb_count_[f];
      live += nb_count_[f];
    }
    copy.ids.resize(live);
    copy.logs.resize(live);
    copy.lins.resize(live);
    copy.obs.resize(live);
    copy.upds.resize(live);
    size_t dst = 0;
    for (size_t f = begin; f < seen_end; ++f) {
      const uint32_t count = nb_count_[f];
      const size_t src = f * static_cast<size_t>(cap_);
      std::copy_n(nb_id_.begin() + src, count, copy.ids.begin() + dst);
      std::copy_n(nb_log_.begin() + src, count, copy.logs.begin() + dst);
      std::copy_n(nb_lin_.begin() + src, count, copy.lins.begin() + dst);
      std::copy_n(nb_obs_.begin() + src, count, copy.obs.begin() + dst);
      std::copy_n(nb_upd_.begin() + src, count, copy.upds.begin() + dst);
      dst += count;
    }
    out->push_back(std::move(copy));
  }
}

RelationTable::SlabAccess RelationTable::BeginRestore(size_t file_count) {
  if (file_count > 0) {
    EnsureSize(static_cast<FileId>(file_count - 1));
  }
  SlabAccess access;
  access.ids = nb_id_.data();
  access.logs = nb_log_.data();
  access.lins = nb_lin_.data();
  access.obs = nb_obs_.data();
  access.upds = nb_upd_.data();
  access.counts = nb_count_.data();
  access.cap = static_cast<size_t>(cap_);
  return access;
}

void RelationTable::FinishRestore(size_t file_count) {
  for (size_t f = 0; f < file_count; ++f) {
    const uint32_t count = nb_count_[f];
    if (count == 0) {
      continue;
    }
    const size_t base = f * static_cast<size_t>(cap_);
    for (uint32_t i = 0; i < count; ++i) {
      RevAdd(static_cast<FileId>(f), nb_id_[base + i]);
    }
    Stamp(static_cast<FileId>(f));
    StampData(static_cast<FileId>(f));
  }
}

size_t RelationTable::MemoryBytes() const {
  size_t bytes = nb_id_.capacity() * sizeof(FileId) + nb_log_.capacity() * sizeof(double) +
                 nb_lin_.capacity() * sizeof(double) + nb_obs_.capacity() * sizeof(uint32_t) +
                 nb_upd_.capacity() * sizeof(uint64_t) + nb_mean_.capacity() * sizeof(double) +
                 nb_mean_upd_.capacity() * sizeof(uint64_t) +
                 nb_count_.capacity() * sizeof(uint32_t) +
                 reverse_.capacity() * sizeof(std::vector<FileId>) +
                 set_stamp_.capacity() * sizeof(uint64_t) +
                 stripe_stamp_.capacity() * sizeof(uint64_t);
  for (const auto& rev : reverse_) {
    bytes += rev.capacity() * sizeof(FileId);
  }
  return bytes;
}

}  // namespace seer
