#include "src/core/relation_table.h"

#include <cmath>

namespace seer {

double Neighbor::MeanDistance(MeanKind kind) const {
  if (observations == 0) {
    return 0.0;
  }
  if (kind == MeanKind::kArithmetic) {
    return linear_sum / static_cast<double>(observations);
  }
  return std::exp(log_sum / static_cast<double>(observations));
}

RelationTable::RelationTable(const SeerParams& params, const FileTable* files, uint64_t seed)
    : params_(params), files_(files), rng_(seed) {}

void RelationTable::EnsureSize(FileId id) {
  if (lists_.size() <= id) {
    lists_.resize(id + 1);
    reverse_.resize(id + 1);
    set_stamp_.resize(id + 1, 0);
  }
}

void RelationTable::Stamp(FileId id) {
  EnsureSize(id);
  set_stamp_[id] = ++set_change_epoch_;
}

void RelationTable::RevAdd(FileId owner, FileId neighbor) {
  EnsureSize(neighbor);
  reverse_[neighbor].push_back(owner);
}

void RelationTable::RevRemove(FileId owner, FileId neighbor) {
  if (neighbor >= reverse_.size()) {
    return;
  }
  std::vector<FileId>& rev = reverse_[neighbor];
  for (size_t i = 0; i < rev.size(); ++i) {
    if (rev[i] == owner) {
      rev[i] = rev.back();
      rev.pop_back();
      return;
    }
  }
}

void RelationTable::Observe(FileId from, FileId to, double distance) {
  if (from == to) {
    return;
  }
  EnsureSize(from);
  ++update_count_;

  const double floored =
      distance > 0.0 ? distance : params_.geometric_zero_floor;
  std::vector<Neighbor>& list = lists_[from];

  // Existing entry: fold in the new observation.
  for (Neighbor& nb : list) {
    if (nb.id == to) {
      nb.log_sum += std::log(floored);
      nb.linear_sum += distance;
      ++nb.observations;
      nb.last_update = update_count_;
      return;
    }
  }

  Neighbor candidate;
  candidate.id = to;
  candidate.log_sum = std::log(floored);
  candidate.linear_sum = distance;
  candidate.observations = 1;
  candidate.last_update = update_count_;

  if (list.size() < static_cast<size_t>(params_.max_neighbors)) {
    list.push_back(candidate);
    Stamp(from);
    RevAdd(from, to);
    return;
  }

  // Replacement priority 1: a neighbor marked for deletion.
  for (Neighbor& nb : list) {
    if (files_->Get(nb.id).deleted) {
      RevRemove(from, nb.id);
      nb = candidate;
      Stamp(from);
      RevAdd(from, to);
      return;
    }
  }

  // Priority 2: the entry with the largest mean distance (random
  // tie-break), replaced only when it is farther than the candidate.
  size_t worst = 0;
  double worst_dist = -1.0;
  size_t ties = 0;
  for (size_t i = 0; i < list.size(); ++i) {
    const double d = list[i].MeanDistance(params_.mean_kind);
    if (d > worst_dist) {
      worst_dist = d;
      worst = i;
      ties = 1;
    } else if (d == worst_dist) {
      // Reservoir-style random tie-break.
      ++ties;
      if (rng_.NextBounded(ties) == 0) {
        worst = i;
      }
    }
  }
  const double candidate_dist = candidate.MeanDistance(params_.mean_kind);
  if (worst_dist > candidate_dist) {
    RevRemove(from, list[worst].id);
    list[worst] = candidate;
    Stamp(from);
    RevAdd(from, to);
    return;
  }

  // Priority 3: aging — a very old, inactive entry yields to fresh data so
  // the table can track changes in user behaviour and shed incorrectly
  // inferred relationships (Section 3.1.3).
  size_t oldest = 0;
  uint64_t oldest_update = UINT64_MAX;
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].last_update < oldest_update) {
      oldest_update = list[i].last_update;
      oldest = i;
    }
  }
  if (update_count_ - oldest_update > params_.aging_updates) {
    RevRemove(from, list[oldest].id);
    list[oldest] = candidate;
    Stamp(from);
    RevAdd(from, to);
  }
}

const std::vector<Neighbor>& RelationTable::NeighborsOf(FileId from) const {
  if (from >= lists_.size()) {
    return empty_;
  }
  return lists_[from];
}

std::vector<FileId> RelationTable::LiveNeighborIds(FileId from) const {
  std::vector<FileId> out;
  for (const Neighbor& nb : NeighborsOf(from)) {
    const FileRecord& rec = files_->Get(nb.id);
    if (!rec.deleted && !rec.excluded) {
      out.push_back(nb.id);
    }
  }
  return out;
}

double RelationTable::DistanceOrNegative(FileId from, FileId to) const {
  for (const Neighbor& nb : NeighborsOf(from)) {
    if (nb.id == to) {
      return nb.MeanDistance(params_.mean_kind);
    }
  }
  return -1.0;
}

void RelationTable::Purge(FileId id) {
  if (id >= lists_.size()) {
    return;
  }
  // Our own list: unregister from every neighbor's reverse entry.
  if (!lists_[id].empty()) {
    for (const Neighbor& nb : lists_[id]) {
      RevRemove(id, nb.id);
    }
    lists_[id].clear();
    lists_[id].shrink_to_fit();
    Stamp(id);
  }
  // Every list naming us, found via the reverse index.
  for (const FileId owner : reverse_[id]) {
    std::vector<Neighbor>& list = lists_[owner];
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].id == id) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
    Stamp(owner);
  }
  reverse_[id].clear();
}

void RelationTable::CollectChangedSince(uint64_t epoch, std::vector<FileId>* out) const {
  for (FileId id = 0; id < set_stamp_.size(); ++id) {
    if (set_stamp_[id] > epoch) {
      out->push_back(id);
    }
  }
}

const std::vector<FileId>& RelationTable::ReverseNeighborsOf(FileId id) const {
  return id < reverse_.size() ? reverse_[id] : empty_ids_;
}

void RelationTable::MarkSetChanged(FileId id) {
  Stamp(id);
  if (id < reverse_.size()) {
    // Copy: Stamp may resize the vectors reverse_ lives next to, but never
    // reverse_ itself — still, don't iterate a member while mutating state.
    for (const FileId owner : std::vector<FileId>(reverse_[id])) {
      Stamp(owner);
    }
  }
}

void RelationTable::RestoreList(FileId from, std::vector<Neighbor> neighbors) {
  EnsureSize(from);
  for (const Neighbor& nb : lists_[from]) {
    RevRemove(from, nb.id);
  }
  lists_[from] = std::move(neighbors);
  for (const Neighbor& nb : lists_[from]) {
    RevAdd(from, nb.id);
  }
  Stamp(from);
}

size_t RelationTable::MemoryBytes() const {
  size_t bytes = lists_.capacity() * sizeof(std::vector<Neighbor>) +
                 reverse_.capacity() * sizeof(std::vector<FileId>) +
                 set_stamp_.capacity() * sizeof(uint64_t);
  for (const auto& list : lists_) {
    bytes += list.capacity() * sizeof(Neighbor);
  }
  for (const auto& rev : reverse_) {
    bytes += rev.capacity() * sizeof(FileId);
  }
  return bytes;
}

}  // namespace seer
