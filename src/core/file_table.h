// File identity registry.
//
// The correlator tracks tens of thousands of files (the paper's typical
// user had ~20,000); all internal structures use dense 32-bit FileIds
// rather than strings. The table also carries the per-file metadata SEER
// needs for hoarding decisions: last-reference ordering for project
// ranking, deletion marks with delayed purge (Section 4.8), and exclusion
// marks for frequently-referenced files (Section 4.2).
#ifndef SRC_CORE_FILE_TABLE_H_
#define SRC_CORE_FILE_TABLE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/trace/event.h"

namespace seer {

using FileId = uint32_t;
constexpr FileId kInvalidFileId = static_cast<FileId>(-1);

struct FileRecord {
  std::string path;
  Time last_ref_time = 0;
  uint64_t last_ref_seq = 0;  // global reference counter value at last access
  uint64_t ref_count = 0;
  bool deleted = false;       // marked for deletion, purge pending
  bool excluded = false;      // dropped from distance calculations
  uint64_t deleted_at_deletion_count = 0;  // global deletion counter at mark
};

class FileTable {
 public:
  // Returns the id for `path`, creating a record if needed. A deleted
  // record is resurrected on re-reference (name reuse, Section 4.8).
  FileId Intern(std::string_view path);

  // Lookup without creating; kInvalidFileId when absent.
  FileId Find(std::string_view path) const;

  const FileRecord& Get(FileId id) const { return records_[id]; }
  FileRecord& GetMutable(FileId id) { return records_[id]; }

  size_t size() const { return records_.size(); }

  void RecordReference(FileId id, Time time, uint64_t seq);

  // Marks `id` deleted at the current global deletion count and returns
  // the ids whose delayed purge has now expired.
  std::vector<FileId> MarkDeleted(FileId id, uint64_t delete_delay);

  // Transfers the identity of `from` to the path `to` (rename keeps the
  // relationship data, Section 4.8).
  void RenameFile(FileId from, std::string_view to);

  uint64_t deletion_count() const { return deletion_count_; }

  // All live (not deleted, not excluded) ids.
  std::vector<FileId> LiveIds() const;

  // --- persistence support --------------------------------------------------

  // Appends a fully-populated record (ids are assigned densely in call
  // order). Used when reloading a saved database.
  FileId RestoreRecord(const FileRecord& record);
  void set_deletion_count(uint64_t count) { deletion_count_ = count; }

  // Rebuilds the delayed-purge queue from the deleted records' marks
  // (called once after a reload).
  void RebuildPurgeQueue();

 private:
  std::vector<FileRecord> records_;
  std::unordered_map<std::string, FileId> by_path_;
  uint64_t deletion_count_ = 0;
  std::deque<FileId> pending_purge_;  // deletion-marked, FIFO
};

}  // namespace seer

#endif  // SRC_CORE_FILE_TABLE_H_
