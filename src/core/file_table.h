// File identity registry.
//
// The correlator tracks tens of thousands of files (the paper's typical
// user had ~20,000); all internal structures use dense 32-bit FileIds
// rather than strings. Ingress identity is the observer's interned PathId:
// the table maps PathId -> FileId with a flat array, so the per-reference
// lookup is O(1) and allocation-free once a path has been seen. Rename is
// an id re-binding — the new PathId is pointed at the file's existing
// FileId — so the relation table, streams and clusters never rebuild
// state (Section 4.8). The table also carries the per-file metadata SEER
// needs for hoarding decisions: last-reference ordering for project
// ranking, deletion marks with delayed purge (Section 4.8), and exclusion
// marks for frequently-referenced files (Section 4.2).
#ifndef SRC_CORE_FILE_TABLE_H_
#define SRC_CORE_FILE_TABLE_H_

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "src/trace/event.h"
#include "src/util/path_interner.h"

namespace seer {

using FileId = uint32_t;
constexpr FileId kInvalidFileId = static_cast<FileId>(-1);

struct FileRecord {
  PathId path = kInvalidPathId;  // current name; kInvalidPathId when retired
  Time last_ref_time = 0;
  uint64_t last_ref_seq = 0;  // global reference counter value at last access
  uint64_t ref_count = 0;
  bool deleted = false;       // marked for deletion, purge pending
  bool excluded = false;      // dropped from distance calculations
  uint64_t deleted_at_deletion_count = 0;  // global deletion counter at mark
};

class FileTable {
 public:
  // Packed per-file liveness flags, mirrored from the FileRecord booleans.
  // The relation table's replacement and live-neighbor scans are the
  // hottest loops in ingest; loading one byte per neighbor id instead of a
  // whole FileRecord keeps them cache-dense and auto-vectorizable. The
  // mirror stays exact because every liveness flip goes through a table
  // method (Intern resurrect, MarkDeleted, MarkExcluded, RenameFile,
  // RestoreRecord) — never through GetMutable.
  static constexpr uint8_t kFlagDeleted = 1u << 0;
  static constexpr uint8_t kFlagExcluded = 1u << 1;

  // Byte per FileId: 0 = live, else kFlagDeleted|kFlagExcluded bits.
  // Valid for every id < size(); invalidated by record creation.
  const uint8_t* liveness_flags() const { return flags_.data(); }

  // --- touch epochs ---------------------------------------------------------
  //
  // Monotone counter bumped by every mutation that can change a file's
  // hoarding inputs: creation, resurrection, reference recency, deletion,
  // exclusion and rename (both ends). Consumers (the incremental hoard-fill
  // plane) snapshot touch_epoch() after a pass and later ask which files
  // moved since that snapshot — the same cheap-epoch idiom the relation
  // table uses for incremental reclustering.
  uint64_t touch_epoch() const { return touch_epoch_; }

  // Appends every id whose last touch is newer than `epoch`. A flat O(size)
  // scan over the stamp column — ~8 bytes/file of sequential reads, far
  // cheaper than the cluster walks it lets callers skip.
  void CollectTouchedSince(uint64_t epoch, std::vector<FileId>* out) const {
    for (FileId id = 0; id < touch_stamp_.size(); ++id) {
      if (touch_stamp_[id] > epoch) {
        out->push_back(id);
      }
    }
  }

  // Returns the id for `path`, creating a record if needed. A deleted
  // record is resurrected on re-reference (name reuse, Section 4.8).
  FileId Intern(PathId path);

  // Lookup without creating; kInvalidFileId when absent.
  FileId Find(PathId path) const;

  // String-ingress conveniences for query egress paths and tests.
  FileId FindPath(std::string_view path) const;

  const FileRecord& Get(FileId id) const { return records_[id]; }
  FileRecord& GetMutable(FileId id) { return records_[id]; }

  // Current spelling of `id` via the global interner (empty when retired).
  std::string_view PathOf(FileId id) const;

  size_t size() const { return records_.size(); }

  void RecordReference(FileId id, Time time, uint64_t seq);

  // Marks `id` deleted at the current global deletion count and returns
  // the ids whose delayed purge has now expired.
  std::vector<FileId> MarkDeleted(FileId id, uint64_t delete_delay);

  // Marks `id` excluded from distance calculations (Section 4.2).
  void MarkExcluded(FileId id);

  // Re-binds the identity of `from` to the interned name `to` (rename
  // keeps the relationship data, Section 4.8). A record previously living
  // at `to` is retired: the rename replaced that file.
  void RenameFile(FileId from, PathId to);

  uint64_t deletion_count() const { return deletion_count_; }

  // All live (not deleted, not excluded) ids.
  std::vector<FileId> LiveIds() const;

  // --- persistence support --------------------------------------------------

  // Appends a fully-populated record (ids are assigned densely in call
  // order). Used when reloading a saved database.
  FileId RestoreRecord(const FileRecord& record);
  void set_deletion_count(uint64_t count) { deletion_count_ = count; }

  // Rebuilds the delayed-purge queue from the deleted records' marks
  // (called once after a text-format reload). The result can differ from
  // the live queue when a name was deleted, resurrected, and deleted again
  // — the binary snapshot therefore carries the queue verbatim via
  // pending_purge()/RestorePurgeQueue instead.
  void RebuildPurgeQueue();

  const std::deque<FileId>& pending_purge() const { return pending_purge_; }
  void RestorePurgeQueue(const std::vector<FileId>& queue) {
    pending_purge_.assign(queue.begin(), queue.end());
  }

 private:
  void Bind(PathId path, FileId id);
  FileId Lookup(PathId path) const;
  void Touch(FileId id) { touch_stamp_[id] = ++touch_epoch_; }

  std::vector<FileRecord> records_;
  // Parallel to records_: packed deleted/excluded bits (see liveness_flags).
  std::vector<uint8_t> flags_;
  // Parallel to records_: touch_epoch_ value at the file's last mutation.
  std::vector<uint64_t> touch_stamp_;
  uint64_t touch_epoch_ = 0;
  // PathId -> FileId, indexed by PathId. Sparse (kInvalidFileId holes) but
  // flat: one array read per reference.
  std::vector<FileId> by_path_;
  uint64_t deletion_count_ = 0;
  std::deque<FileId> pending_purge_;  // deletion-marked, FIFO
};

}  // namespace seer

#endif  // SRC_CORE_FILE_TABLE_H_
