// Umbrella header for the SEER library.
//
// Pulls in the whole public API: the simulated OS substrate, the observer,
// the correlator and its hoarding machinery, the replication systems, the
// baselines, the synthetic workloads, and the evaluation harness. Fine-
// grained consumers should include individual headers instead; this exists
// for quick starts and exploratory code.
#ifndef SRC_SEER_H_
#define SRC_SEER_H_

// Utilities.
#include "src/util/path.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

// Trace model and formats.
#include "src/trace/binary_trace.h"
#include "src/trace/event.h"
#include "src/trace/trace_io.h"

// Simulated OS substrate.
#include "src/process/clock.h"
#include "src/process/process_table.h"
#include "src/process/syscall_tracer.h"
#include "src/vfs/sim_filesystem.h"

// The observer (Section 4 heuristics).
#include "src/observer/control_file.h"
#include "src/observer/observer.h"
#include "src/observer/observer_config.h"
#include "src/observer/reference.h"

// The correlator and hoarding core (Sections 2-3).
#include "src/core/access_predictor.h"
#include "src/core/async_pipeline.h"
#include "src/core/clustering.h"
#include "src/core/correlator.h"
#include "src/core/hoard.h"
#include "src/core/hoard_daemon.h"
#include "src/core/investigator.h"
#include "src/core/params.h"
#include "src/core/params_io.h"
#include "src/core/reorganizer.h"

// Replication substrates.
#include "src/replication/gossip.h"
#include "src/replication/replication_system.h"
#include "src/replication/replicators.h"
#include "src/replication/version_vector.h"

// Baselines and evaluation.
#include "src/baselines/coda_priority.h"
#include "src/baselines/lru.h"
#include "src/sim/disconnect_model.h"
#include "src/sim/live_sim.h"
#include "src/sim/machine_sim.h"
#include "src/sim/missfree.h"
#include "src/workload/environment.h"
#include "src/workload/machine_profile.h"
#include "src/workload/user_model.h"

#endif  // SRC_SEER_H_
