// Per-machine profiles for the nine laptops of the paper's evaluation.
//
// The live deployment covered nine 486 laptops (users A through I) over
// 71-252 days. Table 3 gives each machine's disconnection statistics and
// Table 4 its configured hoard size; the text gives usage levels (trace
// sizes from ~40,000 ops for C and H up to ~326M for G), notes that A, B
// and E disconnected only occasionally, that B, C, E and H were lightly
// used, and that F's working set often exceeded its deliberately small
// 50 MB hoard. These profiles encode those published parameters and drive
// the synthetic workload at a laptop-simulation scale (activity hours are
// scaled down uniformly so the full nine-machine sweep runs in seconds to
// minutes; the *relative* usage levels across machines follow the paper).
#ifndef SRC_WORKLOAD_MACHINE_PROFILE_H_
#define SRC_WORKLOAD_MACHINE_PROFILE_H_

#include <string>
#include <vector>

#include "src/workload/environment.h"
#include "src/workload/user_model.h"

namespace seer {

struct MachineProfile {
  char name = '?';

  // Table 3 columns.
  int days_measured = 0;
  int disconnections = 0;
  double total_disc_hours = 0.0;
  double mean_disc_hours = 0.0;
  double median_disc_hours = 0.0;
  double sigma_disc_hours = 0.0;
  double max_disc_hours = 0.0;

  // Table 4.
  double hoard_mb = 50.0;

  // Marked with '*' in Figure 2: evaluated with and without external
  // investigators.
  bool investigator_variant = false;

  // Simulation-scale knobs.
  EnvironmentConfig env;
  UserModelConfig user;
  double active_hours_per_day = 1.0;

  uint64_t seed_base = 0;
};

// Profile for machine 'A'..'I'.
MachineProfile GetMachineProfile(char name);

// All nine, in order.
std::vector<MachineProfile> AllMachineProfiles();

}  // namespace seer

#endif  // SRC_WORKLOAD_MACHINE_PROFILE_H_
