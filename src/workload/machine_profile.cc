#include "src/workload/machine_profile.h"

namespace seer {

namespace {

// Table 3 rows: days, disconnections, total, mean, median, sigma, max.
struct Table3Row {
  char name;
  int days;
  int discs;
  double total;
  double mean;
  double median;
  double sigma;
  double max;
};

constexpr Table3Row kTable3[] = {
    {'A', 111, 38, 424, 11.16, 3.24, 15.82, 71.89},
    {'B', 79, 10, 431, 43.20, 0.57, 127.19, 404.94},
    {'C', 113, 75, 745, 9.94, 1.12, 40.87, 348.20},
    {'D', 118, 90, 271, 3.01, 1.38, 4.46, 26.50},
    {'E', 71, 25, 47, 1.87, 0.81, 2.54, 12.08},
    {'F', 252, 184, 1711, 9.30, 2.00, 16.33, 90.62},
    {'G', 132, 107, 862, 8.06, 1.47, 38.29, 390.60},
    {'H', 113, 75, 763, 10.17, 1.12, 41.09, 348.20},
    {'I', 123, 116, 274, 2.36, 0.78, 4.26, 27.68},
};

}  // namespace

MachineProfile GetMachineProfile(char name) {
  MachineProfile p;
  for (const Table3Row& row : kTable3) {
    if (row.name == name) {
      p.name = row.name;
      p.days_measured = row.days;
      p.disconnections = row.discs;
      p.total_disc_hours = row.total;
      p.mean_disc_hours = row.mean;
      p.median_disc_hours = row.median;
      p.sigma_disc_hours = row.sigma;
      p.max_disc_hours = row.max;
      break;
    }
  }
  p.seed_base = 0x5eedu + static_cast<uint64_t>(name) * 7919u;
  p.env.user = std::string(1, static_cast<char>(name + ('a' - 'A')));

  // Defaults, then per-machine adjustments.
  p.hoard_mb = 50.0;
  p.env.num_projects = 6;
  p.env.size_scale = 4.0;
  p.active_hours_per_day = 0.6;
  p.user.find_prob = 0.05;  // software developers run find/grep regularly

  switch (name) {
    case 'A':
      // Used regularly but disconnected only occasionally.
      p.active_hours_per_day = 0.5;
      break;
    case 'B':
      // Lightly used; few, very long disconnections.
      p.active_hours_per_day = 0.15;
      p.env.num_projects = 4;
      p.investigator_variant = true;
      break;
    case 'C':
      // One of the least-used machines (~40k traced ops).
      p.active_hours_per_day = 0.08;
      p.env.num_projects = 3;
      p.env.size_scale = 2.0;
      break;
    case 'D':
      p.active_hours_per_day = 0.5;
      break;
    case 'E':
      p.active_hours_per_day = 0.12;
      p.env.num_projects = 3;
      p.env.size_scale = 2.0;
      break;
    case 'F':
      // The most heavily used machine. Its working set often exceeded the
      // deliberately small 50 MB hoard, producing the paper's only
      // significant miss population (Tables 4, 5).
      p.active_hours_per_day = 1.0;
      p.env.num_projects = 13;
      p.env.sources_per_project = 8;
      p.env.size_scale = 12.0;
      p.user.attention_shift_prob = 0.25;
      p.user.preload_note_prob = 0.008;
      p.investigator_variant = true;
      break;
    case 'G':
      // Heavy tracer (largest op count) but a 98 MB hoard, so miss-free.
      p.active_hours_per_day = 0.9;
      p.hoard_mb = 98.0;
      p.env.num_projects = 8;
      p.env.size_scale = 6.0;
      p.investigator_variant = true;
      break;
    case 'H':
      p.active_hours_per_day = 0.08;
      p.env.num_projects = 3;
      p.env.size_scale = 2.0;
      break;
    case 'I':
      p.active_hours_per_day = 0.5;
      p.user.attention_shift_prob = 0.2;
      break;
    default:
      break;
  }
  return p;
}

std::vector<MachineProfile> AllMachineProfiles() {
  std::vector<MachineProfile> out;
  for (const Table3Row& row : kTable3) {
    out.push_back(GetMachineProfile(row.name));
  }
  return out;
}

}  // namespace seer
