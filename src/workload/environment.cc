#include "src/workload/environment.h"

#include <sstream>

namespace seer {

namespace {

// Rounds a double size to bytes with a sane floor.
uint64_t Bytes(double v) { return v < 64.0 ? 64 : static_cast<uint64_t>(v); }

void CreateTool(SimFilesystem* fs, const std::string& path, uint64_t size) {
  fs->CreateFile(path, size);
}

}  // namespace

UserEnvironment BuildEnvironment(SimFilesystem* fs, const EnvironmentConfig& config, Rng* rng) {
  UserEnvironment env;
  env.home = "/home/" + config.user;

  // --- system tree ---------------------------------------------------------
  for (const char* dir : {"/bin", "/usr", "/usr/bin", "/usr/lib", "/usr/include", "/lib",
                          "/etc", "/dev", "/tmp", "/var", "/var/tmp", "/var/spool",
                          "/var/spool/mail", "/home", "/usr/share", "/usr/share/dict", "/sbin",
                          "/boot"}) {
    fs->MkdirAll(dir);
  }
  fs->MkdirAll(env.home);

  // Shared libraries: every program references them, which is exactly the
  // noise the frequent-file filter must absorb (Section 4.2).
  for (const char* lib : {"/lib/libc.so", "/lib/libm.so", "/lib/ld.so", "/usr/lib/libX11.so"}) {
    fs->CreateFile(lib, Bytes(300'000 + rng->NextBounded(400'000)));
    env.shared_libs.emplace_back(lib);
  }

  // Tool binaries.
  for (const std::string& tool :
       {env.sh, env.editor, env.compiler, env.linker, env.make, env.find, env.mailer,
        env.formatter, env.pager, env.ls, std::string("/usr/bin/xargs"),
        std::string("/usr/bin/grep"), std::string("/usr/bin/rdist")}) {
    CreateTool(fs, tool, Bytes(40'000 + rng->NextBounded(300'000)));
  }

  // Critical system files (left outside SEER's control, Section 4.3).
  for (const char* f : {"/etc/passwd", "/etc/fstab", "/etc/hosts", "/etc/termcap",
                        "/etc/resolv.conf", "/sbin/init", "/boot/vmlinuz"}) {
    fs->CreateFile(f, Bytes(500 + rng->NextBounded(20'000)));
  }

  // Device and pseudo nodes (always hoarded, Section 4.6).
  fs->CreateSpecial("/dev/console", NodeKind::kDevice);
  fs->CreateSpecial("/dev/null", NodeKind::kDevice);
  fs->CreateSpecial("/dev/tty1", NodeKind::kDevice);
  fs->MkdirAll("/proc");
  fs->CreateSpecial("/proc/meminfo", NodeKind::kPseudo);

  // System headers, included by compiles; individually none should cross
  // the 1% frequent threshold, unlike the shared libraries.
  for (int i = 0; i < config.num_system_headers; ++i) {
    std::ostringstream name;
    name << "/usr/include/sys" << i << ".h";
    fs->CreateFile(name.str(), Bytes(1'000 + rng->NextBounded(8'000)));
    env.system_headers.push_back(name.str());
  }
  fs->CreateFile("/usr/share/dict/words", 200'000);

  // --- user home -----------------------------------------------------------

  // Dot files: personal startup/configuration (Section 4.3).
  for (const char* dot : {".login", ".cshrc", ".emacs", ".mailrc", ".plan"}) {
    const std::string path = env.home + "/" + dot;
    fs->CreateFile(path, Bytes(200 + rng->NextBounded(4'000)));
    env.dot_files.push_back(path);
  }

  // Projects: genuine #include structure plus a Makefile so the external
  // investigators have something real to read.
  for (int p = 0; p < config.num_projects; ++p) {
    ProjectInfo proj;
    std::ostringstream dir;
    dir << env.home << "/proj" << p;
    proj.dir = dir.str();
    fs->MkdirAll(proj.dir);

    for (int h = 0; h < config.headers_per_project; ++h) {
      std::ostringstream path;
      path << proj.dir << "/mod" << h << ".h";
      fs->CreateFile(path.str(), 0);
      std::ostringstream content;
      content << "/* header " << h << " of project " << p << " */\n";
      fs->WriteContent(path.str(), content.str() + std::string(Bytes(
          config.size_scale * (800 + rng->NextBounded(4'000))), '/'));
      proj.headers.push_back(path.str());
    }

    for (int s = 0; s < config.sources_per_project; ++s) {
      std::ostringstream path;
      path << proj.dir << "/mod" << s << ".c";
      fs->CreateFile(path.str(), 0);
      // Each source includes a few project headers and a system header.
      std::ostringstream content;
      for (int k = 0; k < config.includes_per_source && !proj.headers.empty(); ++k) {
        const auto& header =
            proj.headers[(s + k) % proj.headers.size()];
        content << "#include \"" << header.substr(proj.dir.size() + 1) << "\"\n";
      }
      // System headers follow a Zipf popularity law — a few (the stdio.h
      // analogues) are included by nearly everything and will cross the
      // frequent-file threshold, while the tail is source-specific.
      content << "#include <sys"
              << rng->NextZipf(static_cast<uint64_t>(config.num_system_headers), 1.4)
              << ".h>\n";
      content << std::string(Bytes(config.size_scale * (2'000 + rng->NextBounded(20'000))), 'x');
      fs->WriteContent(path.str(), content.str());
      proj.sources.push_back(path.str());

      std::ostringstream obj;
      obj << proj.dir << "/mod" << s << ".o";
      proj.objects.push_back(obj.str());  // created on first build
    }

    proj.binary = proj.dir + "/prog";

    proj.makefile = proj.dir + "/Makefile";
    fs->CreateFile(proj.makefile, 0);
    std::ostringstream mk;
    mk << "prog:";
    for (const auto& obj : proj.objects) {
      mk << ' ' << obj.substr(proj.dir.size() + 1);
    }
    mk << '\n' << "\tcc -o prog *.o\n";
    for (size_t s = 0; s < proj.sources.size(); ++s) {
      mk << proj.objects[s].substr(proj.dir.size() + 1) << ": "
         << proj.sources[s].substr(proj.dir.size() + 1);
      for (int k = 0; k < config.includes_per_source && !proj.headers.empty(); ++k) {
        mk << ' ' << proj.headers[(s + k) % proj.headers.size()].substr(proj.dir.size() + 1);
      }
      mk << '\n' << "\tcc -c $<\n";
    }
    fs->WriteContent(proj.makefile, mk.str());

    for (int n = 0; n < config.notes_per_project; ++n) {
      std::ostringstream path;
      path << proj.dir << (n == 0 ? "/README" : "/NOTES");
      if (n > 1) {
        path << n;
      }
      fs->CreateFile(path.str(),
                     Bytes(config.size_scale * (1'000 + rng->NextBounded(10'000))));
      proj.notes.push_back(path.str());
    }
    env.projects.push_back(std::move(proj));
  }

  // Documents with support files (styles, figures).
  fs->MkdirAll(env.home + "/doc");
  for (int d = 0; d < config.num_documents; ++d) {
    DocumentInfo doc;
    std::ostringstream path;
    path << env.home << "/doc/paper" << d << ".ms";
    doc.path = path.str();
    fs->CreateFile(doc.path, 0);
    for (int s = 0; s < config.support_per_document; ++s) {
      std::ostringstream sup;
      sup << env.home << "/doc/paper" << d << (s == 0 ? ".refs" : ".fig");
      if (s > 1) {
        sup << s;
      }
      fs->CreateFile(sup.str(), Bytes(config.size_scale * (2'000 + rng->NextBounded(30'000))));
      doc.support.push_back(sup.str());
    }
    // The document embeds its support files via hot links (the OLE
    // analogue of Section 3.2), so the HotLinkInvestigator has real input.
    std::ostringstream body;
    for (const auto& support : doc.support) {
      body << "LINK: " << support << "\n";
    }
    body << std::string(Bytes(config.size_scale * (10'000 + rng->NextBounded(80'000))), 't');
    fs->WriteContent(doc.path, body.str());
    env.documents.push_back(std::move(doc));
  }

  // Mail.
  fs->MkdirAll(env.home + "/mail");
  env.mailbox = "/var/spool/mail/" + config.user;
  fs->CreateFile(env.mailbox, Bytes(config.size_scale * (50'000 + rng->NextBounded(200'000))));
  for (int m = 0; m < config.num_mail_folders; ++m) {
    std::ostringstream path;
    path << env.home << "/mail/folder" << m;
    fs->CreateFile(path.str(), Bytes(config.size_scale * (20'000 + rng->NextBounded(100'000))));
    env.mail_folders.push_back(path.str());
  }

  // Clutter: files that exist but are rarely or never used. Their presence
  // is what makes hoarding matter — most disks are mostly wastage
  // (Section 5.2.1).
  fs->MkdirAll(env.home + "/old");
  for (int i = 0; i < config.num_misc_files; ++i) {
    std::ostringstream path;
    path << env.home << "/old/junk" << i;
    // Wastage is not proportional to how busy the user is; old archives
    // and core dumps are the same size on every machine.
    fs->CreateFile(path.str(), Bytes(20'000 + rng->NextBounded(400'000)));
    env.misc_files.push_back(path.str());
  }

  return env;
}

}  // namespace seer
